# SprintCon reproduction — common targets.

GO ?= go

.PHONY: all build vet test race chaos chaos-service soak fuzz bench bench-check gobench report experiments docs-check clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

chaos:
	$(GO) test -run TestChaos -v ./internal/core/ ./internal/cluster/

# Service chaos: submission storms with abusive stream clients against a
# live sprintd, then kill -9 + restart of a real sprintd process on a
# shared state dir. Zero lost records, zero stuck runs, a live /healthz
# throughout. Set SPRINTD_CHAOS_STATE to keep the journal for inspection.
chaos-service:
	$(GO) test -run TestChaosService -v ./cmd/sprintd/

# Soak: randomized fault storms — rack-local storms with controller crashes
# (core), and network storms over the control link (cluster), alternating
# restore-from-checkpoint and fail-safe restarts. Every run must stay trip-,
# outage- and SoC-breach-free. SOAK_RUNS scales it.
soak:
	SOAK_RUNS=40 $(GO) test -run TestSoak -v ./internal/core/ ./internal/cluster/

# Fuzz smoke: the checkpoint decoder and the scenario loader, a few seconds
# each (CI runs the same budget; leave the fuzzers running longer locally
# with go test -fuzz=... -fuzztime=10m).
fuzz:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=10s -run='^$$' ./internal/checkpoint/
	$(GO) test -fuzz='^FuzzScenarioJSON$$' -fuzztime=10s -run='^$$' ./internal/sim/

# Full pinned-scenario benchmark: writes BENCH_<date>.json and compares
# against the committed baseline (skipped when the baseline's -quick flag
# differs from the run's).
bench:
	$(GO) run ./cmd/bench -o BENCH_$$(date +%F).json

# CI regression gate: quick scenarios vs the committed quick-mode baseline;
# fails on >20% regression (see cmd/bench for the per-metric rules).
bench-check:
	$(GO) run ./cmd/bench -quick -o bench_check.json

# Raw go-test micro-benchmarks (per-function, -benchmem).
gobench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

report:
	$(GO) run ./cmd/report -o REPORT.md -figdir figs

experiments:
	$(GO) run ./cmd/experiments -exp all

# Documentation gate: vet, every relative link and #anchor in the
# operator-facing documents must resolve (cmd/docscheck), and the core
# packages' godoc must render (a missing package or broken example fails
# `go doc`).
docs-check:
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/OPERATING.md
	$(GO) doc sprintcon/internal/hier >/dev/null
	$(GO) doc sprintcon/internal/cluster >/dev/null
	$(GO) doc sprintcon/internal/link >/dev/null
	$(GO) doc sprintcon/internal/core >/dev/null

# Keep figs/hierarchy.svg: it is the committed architecture diagram
# (DESIGN.md §14), not a cmd/report artifact.
clean:
	rm -f REPORT.md bench_output.txt bench_check.json test_output.txt
	rm -f figs/sgct*.svg figs/sprintcon*.svg
