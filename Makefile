# SprintCon reproduction — common targets.

GO ?= go

.PHONY: all build vet test race chaos bench report experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

chaos:
	$(GO) test -run TestChaos -v ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

report:
	$(GO) run ./cmd/report -o REPORT.md -figdir figs

experiments:
	$(GO) run ./cmd/experiments -exp all

clean:
	rm -f REPORT.md bench_output.txt test_output.txt
	rm -rf figs
