// Deadline sweep: reproduce the paper's Fig. 8 locally — how tightening or
// loosening the batch deadline changes completion-time use and UPS wear
// for SprintCon versus the idealized baselines.
//
//	go run ./examples/deadline_sweep
package main

import (
	"fmt"
	"log"

	"sprintcon"
	"sprintcon/internal/ups"
)

func main() {
	fmt.Println("deadline  policy     time_use  dod    cycles@dod  lifetime_years(10/day)")
	for _, deadlineMin := range []float64{9, 12, 15} {
		for _, name := range []string{"sprintcon", "sgct-v1", "sgct-v2"} {
			scn := sprintcon.DefaultScenario()
			scn.BatchDeadlineS = deadlineMin * 60

			var policy sprintcon.Policy
			if name == "sprintcon" {
				policy = sprintcon.New(sprintcon.DefaultConfig())
			} else {
				var err error
				policy, err = sprintcon.NewBaseline(name)
				if err != nil {
					log.Fatal(err)
				}
			}
			res, err := sprintcon.Run(scn, policy)
			if err != nil {
				log.Fatal(err)
			}
			// The paper's battery-cost argument: cycle life falls
			// steeply with depth of discharge (LFP model from [32]).
			cycles := ups.CycleLife(res.UPSDoD)
			life := ups.LifetimeYears(res.UPSDoD, 10)
			fmt.Printf("%5.0fmin  %-9s  %.3f     %.3f  %9.0f  %.1f\n",
				deadlineMin, res.Policy, res.NormalizedTimeUse(), res.UPSDoD, cycles, life)
		}
	}
	fmt.Println("\nSprintCon finishes closest to the deadline (no wasted speed) at a")
	fmt.Println("fraction of the baselines' battery wear.")
}
