// Multi-rack: coordinate four SprintCon racks sharing one data-center
// feeder. Staggering the racks' breaker-overload phases keeps the
// aggregate draw under a feeder provisioned for only two concurrent
// overloads — the data-center-level headroom concern the paper raises.
//
//	go run ./examples/multirack
package main

import (
	"fmt"
	"log"

	"sprintcon/internal/cluster"
	"sprintcon/internal/seriesio"
)

func main() {
	for _, stagger := range []bool{false, true} {
		cfg := cluster.DefaultConfig()
		cfg.Stagger = stagger

		res, err := cluster.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		mode := "synchronized overload phases"
		if stagger {
			mode = "staggered overload phases"
		}
		fmt.Printf("=== %d racks, %s ===\n", cfg.NumRacks, mode)
		fmt.Printf("feeder peak %.0f W | mean %.0f W | over budget %.1f%% of ticks | trips %d | misses %d\n",
			res.PeakW, res.MeanW, 100*res.OverBudgetFrac, res.CBTrips, res.DeadlineMisses)
		fmt.Println(seriesio.PlotRow("feeder", res.AggregateW, 80, "W"))
		fmt.Printf("(budget %.0f W)\n\n", cfg.FeederBudgetW)
	}
	fmt.Println("Staggering shifts when each rack draws its overload bonus; no energy is shed.")
}
