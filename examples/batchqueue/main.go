// Batch queue: the job front end a production deployment puts in front of
// SprintCon's batch cores — EDF dispatch with admission control sized by
// the frequency the rack's power budget can sustain.
//
//	go run ./examples/batchqueue
package main

import (
	"fmt"
	"log"

	"sprintcon"
	"sprintcon/internal/sched"
)

func main() {
	specs := sprintcon.SpecCPU2006()

	// The power budget sustains roughly this average batch frequency on
	// the default rack (see the fig7 experiment); admission plans with it
	// rather than with peak frequency.
	const sustainableGHz = 1.0
	const cores = 8 // one server's batch cores ×2

	q := sched.NewQueue()
	fmt.Printf("admission at %.1f GHz sustainable on %d cores:\n", sustainableGHz, cores)
	admitted, rejected := 0, 0
	for i := 0; i < 24; i++ {
		j := sched.Job{
			ID:        fmt.Sprintf("job-%02d", i),
			Spec:      specs[i%len(specs)],
			ReleaseS:  0,
			DeadlineS: 600 + float64(i%4)*120, // 10-16 minute deadlines
			WorkScale: 0.8,
		}
		ok, reason, err := q.Admit(0, j, cores, sustainableGHz, 2.0)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			admitted++
		} else {
			rejected++
			if rejected == 1 {
				fmt.Printf("  first rejection (%s): %s\n", j.ID, reason)
			}
		}
	}
	fmt.Printf("  admitted %d, rejected %d\n\n", admitted, rejected)

	// Drain in EDF order onto the cores.
	fmt.Println("EDF dispatch order (job: start -> done / deadline):")
	coreFree := make([]float64, cores)
	for q.Len() > 0 {
		c := 0
		for i := range coreFree {
			if coreFree[i] < coreFree[c] {
				c = i
			}
		}
		j, ok := q.PopEDF(coreFree[c])
		if !ok {
			break
		}
		start := coreFree[c]
		done := start + j.WallSecondsAt(sustainableGHz, 2.0)
		status := "ok"
		if done > j.DeadlineS {
			status = "LATE (fluid bound is optimistic; keep a margin)"
		}
		fmt.Printf("  %-8s core%d %6.0fs -> %6.0fs / %5.0fs  %s\n",
			j.ID, c, start, done, j.DeadlineS, status)
		coreFree[c] = done
	}
}
