// Quickstart: run the paper's default 15-minute sprint under SprintCon and
// print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sprintcon"
)

func main() {
	// The paper's evaluation setup: 16 servers (150–300 W each) behind a
	// 3.2 kW breaker with a 400 Wh UPS, a flash crowd on the interactive
	// cores and SPEC-like batch jobs due 12 minutes in.
	scn := sprintcon.DefaultScenario()

	res, err := sprintcon.Run(scn, sprintcon.New(sprintcon.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SprintCon 15-minute sprint")
	fmt.Printf("  interactive frequency: %.2f of peak (the point of sprinting)\n", res.AvgFreqInter)
	fmt.Printf("  batch frequency:       %.2f of peak (throttled to just meet deadlines)\n", res.AvgFreqBatch)
	fmt.Printf("  breaker trips:         %d\n", res.CBTrips)
	fmt.Printf("  outage:                %.0f s\n", res.OutageS)
	fmt.Printf("  UPS depth of discharge %.0f %% (battery wear)\n", 100*res.UPSDoD)
	fmt.Printf("  batch deadlines:       %d/%d met, latest done at %.2f of deadline\n",
		res.JobsTotal-res.DeadlineMisses, res.JobsTotal, res.NormalizedTimeUse())

	// The same sprint under the uncontrolled sprinting game, for contrast.
	sgct, err := sprintcon.NewBaseline("sgct")
	if err != nil {
		log.Fatal(err)
	}
	bad, err := sprintcon.Run(scn, sgct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nUncontrolled sprinting (SGCT), same sprint")
	fmt.Printf("  breaker trips:         %d\n", bad.CBTrips)
	fmt.Printf("  outage:                %.0f s\n", bad.OutageS)
	fmt.Printf("  UPS depth of discharge %.0f %%\n", 100*bad.UPSDoD)
	fmt.Printf("  interactive frequency: %.2f of peak\n", bad.AvgFreqInter)
}
