// Fault storm: the rack power monitor freezes during the first scheduled
// breaker-overload window and the UPS discharge path fails shortly after —
// the two faults that most directly attack a sprinting controller's safety
// assumptions. The hardened SprintCon detects both (watchdog events below),
// suspends overloading and finishes the sprint safely; the fault-oblivious
// SGCT-V2 baseline keeps drawing against battery cover that never arrives.
//
//	go run ./examples/faultstorm
package main

import (
	"fmt"
	"log"
	"strings"

	"sprintcon"
)

func main() {
	scn := sprintcon.DefaultScenario()
	for _, spec := range []string{
		// The monitor freezes at 30 s — right as the first 150 s overload
		// window is under way — and stays frozen through the window.
		"monitor-freeze:30:300",
		// The battery discharge path fails at minute 5 for five minutes.
		"ups-path-failure:300:300",
	} {
		f, err := sprintcon.ParseFault(spec)
		if err != nil {
			log.Fatal(err)
		}
		scn.Faults.Faults = append(scn.Faults.Faults, f)
	}

	baseline, err := sprintcon.NewBaseline("sgct-v2")
	if err != nil {
		log.Fatal(err)
	}
	for _, policy := range []sprintcon.Policy{
		sprintcon.New(sprintcon.DefaultConfig()),
		baseline,
	} {
		res, err := sprintcon.Run(scn, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", res.Policy)
		fmt.Printf("trips %d | outage %.0fs | DoD %.0f%% | misses %d | interactive %.2f | batch %.2f\n",
			res.CBTrips, res.OutageS, 100*res.UPSDoD, res.DeadlineMisses,
			res.AvgFreqInter, res.AvgFreqBatch)
		for _, e := range res.Events {
			switch {
			case e.Kind == "fault-onset", e.Kind == "fault-clear",
				e.Kind == "watchdog", e.Kind == "cb-trip",
				strings.HasPrefix(e.Kind, "outage"):
				fmt.Println(" ", e)
			}
		}
		fmt.Println()
	}
}
