// Flash crowd: a stress scenario beyond the paper's default — a sharper,
// larger interactive burst arriving mid-sprint — comparing SprintCon with
// the interactive-priority baseline SGCT-V2, with ASCII plots of the power
// and frequency series.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"sprintcon"
	"sprintcon/internal/seriesio"
)

func main() {
	scn := sprintcon.DefaultScenario()
	// A brutal crowd: idle-ish until minute 4, then a near-saturating
	// spike for five minutes.
	scn.Interactive.Base = 0.35
	scn.Interactive.BurstStartS = 240
	scn.Interactive.BurstEndS = 540
	scn.Interactive.BurstPeak = 0.95
	scn.Interactive.RampS = 20
	scn.Interactive.SpikeProb = 0.03

	fmt.Println("flash crowd: demand 0.35 → 0.95 of capacity at minute 4")
	for _, name := range []string{"sprintcon", "sgct-v2"} {
		var policy sprintcon.Policy
		if name == "sprintcon" {
			policy = sprintcon.New(sprintcon.DefaultConfig())
		} else {
			var err error
			policy, err = sprintcon.NewBaseline(name)
			if err != nil {
				log.Fatal(err)
			}
		}
		res, err := sprintcon.Run(scn, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s ===\n", res.Policy)
		fmt.Printf("interactive %.2f | batch %.2f | trips %d | outage %.0fs | DoD %.0f%% | misses %d\n",
			res.AvgFreqInter, res.AvgFreqBatch, res.CBTrips, res.OutageS,
			100*res.UPSDoD, res.DeadlineMisses)
		const width = 72
		fmt.Println(seriesio.PlotRow("total", res.Series.TotalW, width, "W"))
		fmt.Println(seriesio.PlotRow("cb", res.Series.CBW, width, "W"))
		fmt.Println(seriesio.PlotRow("ups", res.Series.UPSW, width, "W"))
		fmt.Println(seriesio.PlotRow("freq batch", res.Series.FreqBatch, width, "norm"))
		fmt.Println(seriesio.PlotRow("ups soc", res.Series.SoC, width, "frac"))
	}
}
