// Host DVFS: drive SprintCon's server-modulator path against a (fake)
// Linux sysfs tree — the exact file writes a real deployment would issue
// to cpufreq, plus per-core utilization sampling from /proc/stat.
//
//	go run ./examples/hostdvfs
package main

import (
	"fmt"
	"log"

	"sprintcon/internal/hostctl"
)

func main() {
	// An in-memory host with 8 cores at 0.4–2.0 GHz, exactly the paper's
	// per-server configuration. Swap hostctl.NewMapFS()/SeedFakeHost for
	// hostctl.OSFS{} to drive a real machine (root required).
	fs := hostctl.NewMapFS()
	hostctl.SeedFakeHost(fs, 8, []int{400000, 800000, 1200000, 1600000, 2000000})

	mod, err := hostctl.NewModulator(fs, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered cores: %v (peak %.1f GHz)\n", mod.Cores(), mod.MaxGHz(0))

	// The MPC controller emits continuous frequency commands; the
	// modulator quantizes them onto the host's P-state table.
	commands := []float64{1.37, 0.95, 2.0, 0.4, 1.62, 1.1, 1.8, 0.77}
	for core, ghz := range commands {
		if err := mod.Apply(core, ghz); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nsysfs writes a real host would receive:")
	for _, w := range fs.Writes() {
		fmt.Println(" ", w)
	}

	// Utilization monitoring: two /proc/stat samples bracket a control
	// period; the delta yields per-core utilization.
	sampler := hostctl.NewStatSampler(fs, "")
	if _, err := sampler.Sample(); err != nil { // prime
		log.Fatal(err)
	}
	fs.Set("/proc/stat",
		"cpu  0 0 0 0 0\n"+
			"cpu0 200 0 100 800 0 0 0 0\ncpu1 150 0 75 900 0 0 0 0\n"+
			"cpu2 300 0 150 700 0 0 0 0\ncpu3 110 0 55 990 0 0 0 0\n"+
			"cpu4 250 0 125 850 0 0 0 0\ncpu5 180 0 90 880 0 0 0 0\n"+
			"cpu6 280 0 140 760 0 0 0 0\ncpu7 120 0 60 950 0 0 0 0\n")
	utils, err := sampler.Sample()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-core utilization over the period:")
	for _, core := range mod.Cores() {
		fmt.Printf("  cpu%d: %.2f\n", core, utils[core])
	}
}
