// Partition storm: rack 0 loses the coordinator↔rack control link for most
// of the sprint, starting just before the first overload window. The
// coordinator notices the missing heartbeats, presumes the rack degraded and
// hands its overload slot to another rack; the partitioned rack's lease
// expires within one TTL, so it falls back to rated power with overloads
// suspended — and the feeder never sees more concurrent overloads than it
// funds. The naive client that keeps trusting its last grant sprints on the
// reassigned slot instead: three concurrent overloads against a two-slot
// budget, and the feeder draw shows it.
//
//	go run ./examples/partitionstorm
package main

import (
	"fmt"
	"log"

	"sprintcon/internal/cluster"
	"sprintcon/internal/faults"
	"sprintcon/internal/seriesio"
)

func main() {
	for _, naive := range []bool{false, true} {
		cfg := cluster.DefaultConfig()
		cfg.Link.Enabled = true
		cfg.Link.NaiveTrustLastGrant = naive
		// Cut rack 0 off the control network from t=10 s until t=700 s.
		cfg.Scenario.Faults.Faults = []faults.Fault{
			{Kind: faults.LinkPartition, Server: 0, OnsetS: 10, DurationS: 690, Severity: 1},
		}

		res, err := cluster.RunLinked(cfg)
		if err != nil {
			log.Fatal(err)
		}

		mode := "lease-disciplined link"
		if naive {
			mode = "naive trust-last-grant link"
		}
		fmt.Printf("=== %d racks, %s ===\n", cfg.NumRacks, mode)
		fmt.Printf("feeder peak %.0f W | exceedance %.1f%% of ticks | feeder trips %d | rack trips %d\n",
			res.PeakW, 100*res.FeederExceedFrac, res.FeederTrips, res.CBTrips)
		fmt.Printf("degraded %.0f rack-seconds | resyncs %d | coordinator repacks %d, presumed-degraded %d\n",
			res.DegradedS(), res.Resyncs(), res.Coord.Repacks, res.Coord.Presumed)
		fmt.Println(seriesio.PlotRow("feeder", res.AggregateW, 80, "W"))
		fmt.Printf("(budget %.0f W)\n\n", cfg.FeederBudgetW)
	}
	fmt.Println("The lease TTL turns a silent partition into a bounded, local degradation;")
	fmt.Println("trusting the last grant turns it into a feeder overdraw nobody scheduled.")
}
