package sprintcon

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (plus the DESIGN.md ablations). Each benchmark
// regenerates its artifact end-to-end — workload generation, simulation,
// controllers, baselines — and reports domain-specific metrics alongside
// ns/op. Run everything with:
//
//	go test -bench=. -benchmem
//
// Absolute wall-clock numbers measure this reproduction's simulator, not
// the authors' testbed; the reported custom metrics (DoD, frequencies,
// time use) are the quantities to compare against the paper.

import (
	"io"
	"testing"

	"sprintcon/internal/experiments"
	"sprintcon/internal/sim"
)

// benchTable runs an experiment constructor once per iteration.
func benchTable(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1PerWattSpeedup regenerates Fig. 1 (motivation: per-watt
// speedup falls as frequency rises).
func BenchmarkFig1PerWattSpeedup(b *testing.B) {
	benchTable(b, experiments.Fig1PerWattSpeedup)
}

// BenchmarkFig2TripCurve regenerates Fig. 2 (breaker trip-time curve).
func BenchmarkFig2TripCurve(b *testing.B) {
	benchTable(b, experiments.Fig2TripCurve)
}

// BenchmarkFig3PeriodicSprint regenerates Fig. 3 (18 s periodic sprinting).
func BenchmarkFig3PeriodicSprint(b *testing.B) {
	benchTable(b, experiments.Fig3PeriodicSprint)
}

// BenchmarkFig5Uncontrolled regenerates Fig. 5: the uncontrolled (SGCT)
// failure sequence — trip, UPS drain, outage.
func BenchmarkFig5Uncontrolled(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.Fig5Uncontrolled()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CBTrips), "trips")
	b.ReportMetric(res.OutageS, "outage_s")
	b.ReportMetric(100*res.UPSDoD, "dod_%")
}

// BenchmarkFig6PowerBehavior regenerates Fig. 6: power behaviour of
// SprintCon vs SGCT-V1 vs SGCT-V2.
func BenchmarkFig6PowerBehavior(b *testing.B) {
	var all map[string]*sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, all, err = experiments.Fig6PowerBehavior()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(all["SprintCon"].UPSDischargedWh, "sprintcon_ups_wh")
	b.ReportMetric(all["SGCT-V1"].UPSDischargedWh, "v1_ups_wh")
}

// BenchmarkFig7FrequencyBehavior regenerates Fig. 7: the average normalized
// frequencies per policy (paper: 1.00/0.59, 0.64/0.71, 0.84/0.91, 0.94/0.84).
func BenchmarkFig7FrequencyBehavior(b *testing.B) {
	var res map[string]*sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAll(sim.DefaultScenario())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res["SprintCon"].AvgFreqInter, "sc_inter")
	b.ReportMetric(res["SprintCon"].AvgFreqBatch, "sc_batch")
	b.ReportMetric(res["SGCT-V2"].AvgFreqInter, "v2_inter")
	b.ReportMetric(res["SGCT-V1"].AvgFreqBatch, "v1_batch")
}

// BenchmarkFig8aTimeUse regenerates Fig. 8(a): normalized completion time
// across the 9/12/15-minute deadlines.
func BenchmarkFig8aTimeUse(b *testing.B) {
	benchTable(b, experiments.Fig8aTimeUse)
}

// BenchmarkFig8bDoD regenerates Fig. 8(b): UPS depth of discharge across
// deadlines and policies.
func BenchmarkFig8bDoD(b *testing.B) {
	benchTable(b, experiments.Fig8bDoD)
}

// BenchmarkHeadline regenerates the abstract's 6–56 % / up-to-87 % claims.
func BenchmarkHeadline(b *testing.B) {
	benchTable(b, experiments.Headline)
}

// BenchmarkAblationMPCvsPI regenerates ablation A1.
func BenchmarkAblationMPCvsPI(b *testing.B) {
	benchTable(b, experiments.AblationController)
}

// BenchmarkAblationOverloadSchedule regenerates ablation A2.
func BenchmarkAblationOverloadSchedule(b *testing.B) {
	benchTable(b, experiments.AblationOverloadSchedule)
}

// BenchmarkAblationUPSControl regenerates ablation A3.
func BenchmarkAblationUPSControl(b *testing.B) {
	benchTable(b, experiments.AblationUPSControl)
}

// BenchmarkSensitivity regenerates the A4 period/τ_r sweep.
func BenchmarkSensitivity(b *testing.B) {
	benchTable(b, experiments.Sensitivity)
}

// BenchmarkQoSComparison regenerates extension E10: interactive latency
// under each policy.
func BenchmarkQoSComparison(b *testing.B) {
	benchTable(b, experiments.QoSComparison)
}

// BenchmarkDailyCost regenerates extension E11: the 10-year cost of
// 10 sprints/day (paper Section VII-D economics).
func BenchmarkDailyCost(b *testing.B) {
	benchTable(b, experiments.DailyCost)
}

// BenchmarkClusterStagger regenerates extension E12: four racks on one
// feeder with synchronized vs staggered overload phases.
func BenchmarkClusterStagger(b *testing.B) {
	benchTable(b, experiments.ClusterStagger)
}

// BenchmarkAblationEstimation regenerates extension E13: online model
// estimation under a miscalibrated power model.
func BenchmarkAblationEstimation(b *testing.B) {
	benchTable(b, experiments.AblationEstimation)
}

// BenchmarkSprintConTick measures the per-tick cost of the full SprintCon
// control stack (allocator + MPC QP over 64 cores + UPS controller) on the
// default rack — the overhead a deployment would pay each control period.
func BenchmarkSprintConTick(b *testing.B) {
	scn := DefaultScenario()
	scn.DurationS = float64(b.N)
	if scn.DurationS < 60 {
		scn.DurationS = 60
	}
	scn.BurstDurationS = scn.DurationS
	scn.BatchDeadlineS = scn.DurationS * 0.8
	b.ResetTimer()
	if _, err := Run(scn, New(DefaultConfig())); err != nil {
		b.Fatal(err)
	}
}

// benchRunWith runs the default scenario repeatedly with the given options
// and reports per-tick cost, for comparing the telemetry tax.
func benchRunWith(b *testing.B, mkOpts func() RunOptions) {
	b.Helper()
	scn := DefaultScenario()
	scn.DurationS = 120
	scn.BurstDurationS = 120
	scn.BatchDeadlineS = 96
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWith(scn, New(DefaultConfig()), mkOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTelemetryOff is the baseline for the telemetry-tax pair: a
// run with no registry and no sink, i.e. the legacy hot path where every
// instrument is a nil no-op. Compare against BenchmarkRunTelemetryOn — the
// design requires the Off/On gap under ~2 % and Off to match plain Run.
func BenchmarkRunTelemetryOff(b *testing.B) {
	benchRunWith(b, func() RunOptions { return RunOptions{} })
}

// BenchmarkRunTelemetryOn measures the fully instrumented run: metrics
// registry plus a decision trace encoded to io.Discard.
func BenchmarkRunTelemetryOn(b *testing.B) {
	benchRunWith(b, func() RunOptions {
		return RunOptions{
			Metrics:   NewMetricsRegistry(),
			Decisions: NewDecisionSink(io.Discard),
		}
	})
}
