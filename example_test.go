package sprintcon_test

import (
	"fmt"
	"strings"

	"sprintcon"
)

// Run a short sprint under SprintCon and check the safety invariants.
func Example() {
	scn := sprintcon.DefaultScenario()
	scn.DurationS = 120
	scn.BurstDurationS = 120
	scn.BatchDeadlineS = 110
	scn.WorkReferenceS = 110

	res, err := sprintcon.Run(scn, sprintcon.New(sprintcon.DefaultConfig()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("trips=%d outage=%.0fs interactive=%.2f\n",
		res.CBTrips, res.OutageS, res.AvgFreqInter)
	// Output:
	// trips=0 outage=0s interactive=1.00
}

// Compare against one of the paper's baselines.
func ExampleNewBaseline() {
	p, err := sprintcon.NewBaseline("sgct-v2")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name())
	// Output:
	// SGCT-V2
}

// Replay a production interactive trace instead of the generator.
func ExampleTraceFromCSV() {
	csv := "time_s,demand_frac\n0,0.5\n1,0.6\n2,0.7\n"
	tr, err := sprintcon.TraceFromCSV(strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f samples at dt=%.0fs, demand(1s)=%.1f\n",
		float64(len(tr.Demand)), tr.DtS, tr.At(1))
	// Output:
	// 3 samples at dt=1s, demand(1s)=0.6
}

// The paper's battery-economics argument, end to end.
func ExampleEvaluateDaily() {
	plan := sprintcon.DefaultDailyPlan()
	out, err := sprintcon.EvaluateDaily(plan, sprintcon.New(sprintcon.DefaultConfig()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("replacements over 10y: %d, recharge feasible: %v\n",
		out.Replacements, out.RechargeFeasible)
	// Output:
	// replacements over 10y: 0, recharge feasible: true
}
