package cluster

import (
	"math"
	"strings"
	"testing"

	"sprintcon/internal/alloc"
	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/link"
	"sprintcon/internal/sim"
)

func linkedConfig() Config {
	cfg := DefaultConfig()
	cfg.Link.Enabled = true
	return cfg
}

// partitionAt cuts rack `rack` off the control link for [onset, onset+dur).
func partitionAt(rack int, onset, dur float64) faults.Fault {
	return faults.Fault{Kind: faults.LinkPartition, Server: rack, OnsetS: onset, DurationS: dur, Severity: 1}
}

// clientStatsEqual is ClientStats equality with NaN-tolerant LastResyncS
// (NaN marks "never resynced" and must compare equal to itself).
func clientStatsEqual(a, b link.ClientStats) bool {
	if math.IsNaN(a.LastResyncS) != math.IsNaN(b.LastResyncS) {
		return false
	}
	if !math.IsNaN(a.LastResyncS) && a.LastResyncS != b.LastResyncS {
		return false
	}
	a.LastResyncS, b.LastResyncS = 0, 0
	return a == b
}

func TestLinkedConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nan feeder budget", func(c *Config) { c.FeederBudgetW = math.NaN() }},
		{"inf feeder budget", func(c *Config) { c.FeederBudgetW = math.Inf(1) }},
		{"negative feeder budget", func(c *Config) { c.FeederBudgetW = -1 }},
		{"zero feeder budget on linked run", func(c *Config) { c.FeederBudgetW = 0 }},
		{"nan link TTL", func(c *Config) {
			c.Link.Protocol = link.DefaultConfig()
			c.Link.Protocol.TTLS = math.NaN()
		}},
		{"negative link refresh", func(c *Config) {
			c.Link.Protocol = link.DefaultConfig()
			c.Link.Protocol.RefreshS = -4
		}},
		{"link schedule disagrees with allocator", func(c *Config) {
			c.Link.Protocol = link.DefaultConfig()
			c.Link.Protocol.OverloadS = 100
			c.Link.Protocol.CycleS = 300
		}},
		{"feeder budget below one overload bonus", func(c *Config) {
			// N·rated + less than one bonus ⇒ slot capacity K = 0.
			c.FeederBudgetW = 4*c.Scenario.Breaker.RatedPower + 100
		}},
		{"more racks than overload slots can hold", func(c *Config) {
			// K=2 per slot × 3 slots holds 6 racks, not 7.
			c.NumRacks = 7
		}},
		{"partition target beyond rack count", func(c *Config) {
			c.Scenario.Faults.Faults = append(c.Scenario.Faults.Faults, partitionAt(9, 100, 50))
		}},
		{"alloc override without overload headroom", func(c *Config) {
			acfg := alloc.DefaultConfig(c.Scenario.Breaker.RatedPower, c.Scenario.Breaker.TripBudget())
			acfg.OverloadDegree = 1 // bonus = rated·(degree−1) = 0
			c.SprintCon.AllocOverride = &acfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := linkedConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want validation error, got nil")
			}
			if _, err := RunLinked(cfg); err == nil {
				t.Fatal("RunLinked accepted an invalid config")
			}
		})
	}
	if err := linkedConfig().Validate(); err != nil {
		t.Fatalf("base linked config invalid: %v", err)
	}
	// The degenerate allocator override must be reported as its real cause —
	// the overload degree — not as a misleading derived-slot-capacity error.
	degenerate := linkedConfig()
	dcfg := alloc.DefaultConfig(degenerate.Scenario.Breaker.RatedPower, degenerate.Scenario.Breaker.TripBudget())
	dcfg.OverloadDegree = 1
	degenerate.SprintCon.AllocOverride = &dcfg
	if err := degenerate.Validate(); err == nil || !strings.Contains(err.Error(), "OverloadDegree") {
		t.Fatalf("want an OverloadDegree error for a degree-1 override, got %v", err)
	}
	// Link-scoped faults are valid in a linked cluster config but must be
	// rejected by the same scenario in single-rack form (the injector has no
	// link) and in an unlinked cluster.
	withFault := linkedConfig()
	withFault.Scenario.Faults.Faults = append(withFault.Scenario.Faults.Faults, partitionAt(0, 100, 50))
	if err := withFault.Validate(); err != nil {
		t.Fatalf("linked cluster rejected a link fault: %v", err)
	}
	unlinked := withFault
	unlinked.Link.Enabled = false
	if err := unlinked.Validate(); err == nil {
		t.Fatal("unlinked cluster accepted a link-scoped fault")
	}
}

func TestLinkedRequiresEnable(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := RunLinked(cfg); err == nil {
		t.Fatal("RunLinked ran without Link.Enabled")
	}
}

// A fault-free linked run must behave like the statically staggered cluster:
// coordinated sprinting, no degraded time, and a feeder that stays at or
// under its budget.
func TestLinkedHealthyStaysCoordinated(t *testing.T) {
	res, err := RunLinked(linkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CBTrips != 0 || res.OutageS != 0 || res.FeederTrips != 0 {
		t.Fatalf("healthy linked run unsafe: rack trips=%d outage=%g feeder trips=%d",
			res.CBTrips, res.OutageS, res.FeederTrips)
	}
	if res.FeederExceedFrac > 0.01 {
		t.Fatalf("healthy linked run exceeds feeder budget %.1f%% of the time", 100*res.FeederExceedFrac)
	}
	if d := res.DegradedS(); d != 0 {
		t.Fatalf("healthy linked run spent %g rack-seconds degraded", d)
	}
	if res.Resyncs() != 0 {
		t.Fatalf("healthy linked run logged %d resyncs", res.Resyncs())
	}
	for i, c := range res.Clients {
		if c.Expiries != 0 {
			t.Fatalf("rack %d lease expired %d times on a healthy link", i, c.Expiries)
		}
	}
	if res.Transport.GrantsLost != 0 || res.Transport.GrantsPartition != 0 {
		t.Fatalf("healthy link lost traffic: %+v", res.Transport)
	}
	// The energy throughput must match coordinated sprinting, not the
	// degraded fallback: mean draw comfortably above N·rated would only
	// hold with overloads running.
	if res.MeanW < 4*DefaultConfig().Scenario.Breaker.RatedPower*0.95 {
		t.Fatalf("linked mean draw %g W suggests overloads never ran", res.MeanW)
	}
	for i, inv := range res.Invariants {
		if inv.CBMargin != 0 || inv.SoCFloor != 0 {
			t.Fatalf("rack %d invariant breaches %+v", i, inv)
		}
	}
}

// Serial and parallel linked runs must be bit-identical, including under
// active link faults — all link state lives on the coordinating goroutine.
func TestLinkedParallelMatchesSerial(t *testing.T) {
	cfg := linkedConfig()
	cfg.NumRacks = 3
	cfg.FeederBudgetW = 3*cfg.Scenario.Breaker.RatedPower + 0.25*cfg.Scenario.Breaker.RatedPower*2
	cfg.Scenario.DurationS = 400
	cfg.Scenario.BurstDurationS = 400
	cfg.Scenario.Faults.Faults = []faults.Fault{
		{Kind: faults.LinkLoss, OnsetS: 50, DurationS: 200, Severity: 0.3},
		{Kind: faults.LinkDelay, OnsetS: 50, DurationS: 200, Severity: 3},
		partitionAt(0, 150, 120),
	}

	par, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Serial = true
	ser, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Racks {
		p, s := par.Racks[i], ser.Racks[i]
		for tk := range p.Series.TotalW {
			if p.Series.TotalW[tk] != s.Series.TotalW[tk] || p.Series.CBW[tk] != s.Series.CBW[tk] ||
				p.Series.SoC[tk] != s.Series.SoC[tk] || p.Series.FreqBatch[tk] != s.Series.FreqBatch[tk] {
				t.Fatalf("rack %d diverges at tick %d", i, tk)
			}
		}
		if !clientStatsEqual(par.Clients[i], ser.Clients[i]) {
			t.Fatalf("rack %d link stats diverge: %+v vs %+v", i, par.Clients[i], ser.Clients[i])
		}
	}
	for tk := range par.AggregateW {
		if par.AggregateW[tk] != ser.AggregateW[tk] {
			t.Fatalf("aggregate diverges at tick %d", tk)
		}
	}
	if par.Transport != ser.Transport || par.Coord != ser.Coord {
		t.Fatalf("link accounting diverges:\npar %+v / %+v\nser %+v / %+v",
			par.Transport, par.Coord, ser.Transport, ser.Coord)
	}
}

// A sustained partition must push the cut-off rack into the degraded
// fallback within one control period of lease expiry, and re-sync it within
// one control period of the heal.
func TestLinkedPartitionDegradesAndResyncs(t *testing.T) {
	cfg := linkedConfig()
	const onset, dur = 300.0, 300.0
	cfg.Scenario.Faults.Faults = []faults.Fault{partitionAt(0, onset, dur)}

	res, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proto, _, err := cfg.linkSetup()
	if err != nil {
		t.Fatal(err)
	}
	ctl := cfg.SprintCon.ControlPeriodS
	if ctl == 0 {
		ctl = 4
	}

	c0 := res.Clients[0]
	if c0.Expiries == 0 || c0.Resyncs == 0 {
		t.Fatalf("partitioned rack never cycled degraded: %+v", c0)
	}
	// Degraded entry: the last pre-partition grant expires at most
	// onset+TTL; from expiry to fallback is at most one control period.
	minDegraded := dur - proto.TTLS - ctl
	if c0.DegradedS < minDegraded {
		t.Fatalf("rack 0 degraded %g s, want ≥ %g (partition %g s minus lease tail)", c0.DegradedS, minDegraded, dur)
	}
	// Re-entry: a fresh grant must land within one control period of the
	// heal (heartbeat out, grant back, each one tick of transit).
	heal := onset + dur
	if c0.LastResyncS > heal+ctl {
		t.Fatalf("rack 0 re-synced at t=%g, more than one control period after the heal at t=%g", c0.LastResyncS, heal)
	}
	// The coordinator noticed, reclaimed the slot, and repacked.
	if res.Coord.Presumed == 0 || res.Coord.Repacks == 0 || res.Coord.Probes == 0 {
		t.Fatalf("coordinator never reacted to the partition: %+v", res.Coord)
	}
	// Unpartitioned racks never degraded.
	for i := 1; i < cfg.NumRacks; i++ {
		if res.Clients[i].Expiries != 0 {
			t.Fatalf("rack %d lease expired despite a healthy link: %+v", i, res.Clients[i])
		}
	}
	// And through all of it the feeder stayed within budget and nothing
	// tripped: the lease discipline is what makes the partition safe.
	if res.CBTrips != 0 || res.FeederTrips != 0 {
		t.Fatalf("partition run tripped: rack=%d feeder=%d", res.CBTrips, res.FeederTrips)
	}
	if res.FeederExceedFrac > 0.01 {
		t.Fatalf("partition run exceeded the feeder budget %.1f%% of ticks", 100*res.FeederExceedFrac)
	}
}

// The E19 headline: under the same sustained partition, the naive
// always-trust-last-grant client keeps sprinting in a slot the coordinator
// has reassigned — three concurrent overloads against a budget funding two —
// while the lease discipline stays within budget.
func TestLinkedNaiveExceedsWhereLeaseHolds(t *testing.T) {
	base := linkedConfig()
	// Cut rack 0 off before anyone has overloaded: its slot is reassigned
	// to rack 2 within ~30 s (lease expiry + beat timeout), and since rack 2
	// has no overload history yet, the client-side recovery guard does not
	// delay it — it only sits out the in-flight first window. The second
	// slot-0 window (450–600 s) is where the schedules collide: racks 1 and
	// 2 own it, and the naive rack 0 still believes its stale grant covers
	// it — three concurrent overloads against a budget funding two.
	base.Scenario.Faults.Faults = []faults.Fault{partitionAt(0, 10, 690)}

	naive := base
	naive.Link.NaiveTrustLastGrant = true
	nres, err := RunLinked(naive)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := RunLinked(base)
	if err != nil {
		t.Fatal(err)
	}

	if nres.FeederExceedFrac < 0.02 && nres.FeederTrips == 0 {
		t.Fatalf("naive client never overran the feeder: exceed=%.2f%% trips=%d",
			100*nres.FeederExceedFrac, nres.FeederTrips)
	}
	if lres.FeederExceedFrac > 0.01 || lres.FeederTrips != 0 {
		t.Fatalf("lease client overran the feeder: exceed=%.2f%% trips=%d",
			100*lres.FeederExceedFrac, lres.FeederTrips)
	}
	if lres.CBTrips != 0 {
		t.Fatalf("lease run tripped a rack breaker %d times", lres.CBTrips)
	}
	if nres.FeederExceedFrac <= lres.FeederExceedFrac {
		t.Fatalf("naive exceedance %.3f not above lease exceedance %.3f",
			nres.FeederExceedFrac, lres.FeederExceedFrac)
	}
}

// Satellite of the PR-4 bit-identity guarantee: a rack whose controller
// crashes *mid-partition* and restores from a fresh checkpoint — link client
// state included — must reproduce the uninterrupted linked run bit-exactly.
func TestLinkedCrashRestoreMidPartitionBitIdentical(t *testing.T) {
	base := linkedConfig()
	base.Scenario.DurationS = 700
	base.Scenario.BurstDurationS = 700
	base.Scenario.Faults.Faults = []faults.Fault{partitionAt(0, 300, 250)}

	ref, err := RunLinked(base)
	if err != nil {
		t.Fatal(err)
	}

	crashed := base
	crashed.Scenario.Faults.Faults = append([]faults.Fault{
		// Rack-scoped controller crash at t=450, deep inside the partition,
		// with zero restart delay: the restore comes from the snapshot
		// taken one tick earlier. The fault rides the shared scenario plan,
		// so *every* rack's controller crashes — each needs its own store.
		{Kind: faults.ControllerCrash, OnsetS: 450, DurationS: 1, Severity: 0},
	}, base.Scenario.Faults.Faults...)
	crashed.Link.RackOptions = func(rack int) sim.RunOptions {
		return sim.RunOptions{Checkpoint: &sim.CheckpointOptions{Store: checkpoint.NewMemStore()}}
	}
	cres, err := RunLinked(crashed)
	if err != nil {
		t.Fatal(err)
	}

	for i := range ref.Racks {
		r, c := ref.Racks[i], cres.Racks[i]
		if len(r.Series.TotalW) != len(c.Series.TotalW) {
			t.Fatalf("rack %d series lengths differ", i)
		}
		for tk := range r.Series.TotalW {
			if r.Series.TotalW[tk] != c.Series.TotalW[tk] || r.Series.CBW[tk] != c.Series.CBW[tk] ||
				r.Series.SoC[tk] != c.Series.SoC[tk] || r.Series.FreqBatch[tk] != c.Series.FreqBatch[tk] {
				t.Fatalf("rack %d diverges at tick %d (t=%d s)", i, tk, tk)
			}
		}
	}
	for tk := range ref.AggregateW {
		if ref.AggregateW[tk] != cres.AggregateW[tk] {
			t.Fatalf("aggregate diverges at tick %d", tk)
		}
	}
	// The lease ladder's accounting survived the crash too, on every rack.
	// Accepted/Stale may differ by one: a grant delivered on the crash tick
	// is forgotten when the restore rewinds the client to the snapshot taken
	// a tick earlier — in-flight messages die with the process. Everything
	// the degraded-mode ladder rests on must match exactly.
	for i := range ref.Clients {
		r, c := ref.Clients[i], cres.Clients[i]
		if r.Expiries != c.Expiries || r.Resyncs != c.Resyncs || r.DegradedS != c.DegradedS ||
			(math.IsNaN(r.LastResyncS) != math.IsNaN(c.LastResyncS)) ||
			(!math.IsNaN(r.LastResyncS) && r.LastResyncS != c.LastResyncS) {
			t.Fatalf("rack %d ladder stats diverge after restore:\nref   %+v\ncrash %+v", i, r, c)
		}
		if d := r.Accepted - c.Accepted; d < 0 || d > 1 {
			t.Fatalf("rack %d accepted-grant count diverges by %d:\nref   %+v\ncrash %+v", i, d, r, c)
		}
	}
	for i := range cres.Racks {
		restarts := 0
		for _, e := range cres.Racks[i].Events {
			if e.Kind == "ctl-restart" {
				restarts++
			}
		}
		if restarts != 1 {
			t.Fatalf("expected exactly 1 controller restart on rack %d, saw %d", i, restarts)
		}
	}
}

// A coordinator crash is survivable without any rack degrading when the
// outage is short enough that a lease issued just before the crash outlives
// the recovery: worst case the last grant goes out one refresh before the
// onset, and after the restart the coordinator needs a heartbeat echo (one
// tick of transit) to recover its version counters before the first
// re-grant (one more tick) — so the no-degrade bound is
// TTL − Refresh − 2·dt = 12 − 4 − 2 = 6 s with the defaults.
func TestLinkedCoordinatorCrashRecovers(t *testing.T) {
	cfg := linkedConfig()
	cfg.Scenario.Faults.Faults = []faults.Fault{
		{Kind: faults.CoordinatorCrash, OnsetS: 200, DurationS: 4, Severity: 1},
	}
	res, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Outage (4 s) under the no-degrade bound: leases ride it out.
	if d := res.DegradedS(); d != 0 {
		t.Fatalf("racks degraded %g s during a short coordinator outage", d)
	}
	if res.CBTrips != 0 || res.FeederTrips != 0 || res.FeederExceedFrac > 0.01 {
		t.Fatalf("coordinator crash run unsafe: trips=%d feeder=%d exceed=%.2f%%",
			res.CBTrips, res.FeederTrips, 100*res.FeederExceedFrac)
	}
	// Post-restart grants must not be rejected wholesale as stale: the
	// version-recovery path keeps acceptance flowing.
	var accepted int
	for _, c := range res.Clients {
		accepted += c.Accepted
	}
	if accepted == 0 {
		t.Fatal("no grants accepted at all")
	}
	// A longer outage *does* degrade racks — and they all come back.
	long := linkedConfig()
	long.Scenario.Faults.Faults = []faults.Fault{
		{Kind: faults.CoordinatorCrash, OnsetS: 200, DurationS: 60, Severity: 1},
	}
	lres, err := RunLinked(long)
	if err != nil {
		t.Fatal(err)
	}
	if lres.DegradedS() == 0 {
		t.Fatal("no rack degraded during a 60 s coordinator outage (TTL is 12 s)")
	}
	if lres.Resyncs() < long.NumRacks {
		t.Fatalf("only %d resyncs after coordinator restart; want every rack back", lres.Resyncs())
	}
	if lres.CBTrips != 0 || lres.FeederTrips != 0 {
		t.Fatalf("long coordinator outage unsafe: trips=%d feeder=%d", lres.CBTrips, lres.FeederTrips)
	}
}

// A fail-safe controller restart (crash with no usable checkpoint) re-announces
// the burst anchored at the restart time instead of t=0 — but the coordinator's
// slot assignments live in the t=0 frame. The linked policy must translate the
// granted offset into the allocator's live anchor frame: without that, the
// restarted rack overloads shifted by (restart time mod cycle), lands on other
// racks' slots, and the feeder sees more than SlotCapacity concurrent
// overloads.
func TestLinkedFailSafeRestartKeepsSlotPhase(t *testing.T) {
	cfg := linkedConfig()
	// Crash every controller at t=208 — deliberately not cycle-aligned — with
	// an immediate restart. Racks 1–3 restore from fresh snapshots (schedule
	// anchor preserved); rack 0 has no checkpoint store, so its restore takes
	// the fail-safe path and re-anchors its schedule at the restart time.
	cfg.Scenario.Faults.Faults = []faults.Fault{
		{Kind: faults.ControllerCrash, OnsetS: 208, DurationS: 1, Severity: 0},
	}
	cfg.Link.RackOptions = func(rack int) sim.RunOptions {
		if rack == 0 {
			return sim.RunOptions{}
		}
		return sim.RunOptions{Checkpoint: &sim.CheckpointOptions{Store: checkpoint.NewMemStore()}}
	}

	res, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fail-safe restore dropped rack 0's lease; it must have fallen back
	// and re-synced when the coordinator's next refresh grant landed.
	if res.Clients[0].Expiries == 0 || res.Clients[0].Resyncs == 0 {
		t.Fatalf("rack 0 never cycled degraded→coordinated after its fail-safe restart: %+v", res.Clients[0])
	}
	// And its post-restart overloads landed in its assigned slot: the feeder
	// never saw more than SlotCapacity concurrent overloads.
	if res.CBTrips != 0 || res.FeederTrips != 0 {
		t.Fatalf("fail-safe restart run tripped: rack=%d feeder=%d", res.CBTrips, res.FeederTrips)
	}
	if res.FeederExceedFrac > 0.01 {
		t.Fatalf("feeder exceeded its budget %.1f%% of ticks: the restarted rack overloads outside its assigned slot",
			100*res.FeederExceedFrac)
	}
}
