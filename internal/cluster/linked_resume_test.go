package cluster

import (
	"errors"
	"sync"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/sim"
)

// captureSink collects every coherent snapshot set the lock-step driver
// emits (safe for the concurrent per-row use hier makes of it).
type captureSink struct {
	mu   sync.Mutex
	sets [][]*checkpoint.Snapshot
}

func (c *captureSink) sink(snaps []*checkpoint.Snapshot) {
	c.mu.Lock()
	c.sets = append(c.sets, snaps)
	c.mu.Unlock()
}

func (c *captureSink) all() [][]*checkpoint.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]*checkpoint.Snapshot(nil), c.sets...)
}

// TestLinkedCheckpointCaptureCoherent: the driver captures every rack at
// the same lock-step boundary, on the configured cadence, even while
// injected controller crashes would make per-rack checkpoint runtimes
// skip.
func TestLinkedCheckpointCaptureCoherent(t *testing.T) {
	cfg := linkedConfig()
	cfg.Scenario.DurationS = 600
	cap := &captureSink{}
	cfg.Checkpoint = &LinkedCheckpoint{EveryS: 120, Sink: cap.sink}
	if _, err := RunLinked(cfg); err != nil {
		t.Fatal(err)
	}
	sets := cap.all()
	if len(sets) != 5 { // 120, 240, 360, 480, 600
		t.Fatalf("captured %d sets, want 5", len(sets))
	}
	for i, set := range sets {
		if len(set) != cfg.NumRacks {
			t.Fatalf("set %d has %d racks, want %d", i, len(set), cfg.NumRacks)
		}
		for j, sp := range set {
			if sp.Step != set[0].Step {
				t.Fatalf("set %d rack %d at step %d, rack 0 at %d: incoherent capture", i, j, sp.Step, set[0].Step)
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("set %d rack %d: %v", i, j, err)
			}
		}
		if want := int64(120 * (i + 1)); set[0].Step != want {
			t.Errorf("set %d at step %d, want %d", i, set[0].Step, want)
		}
	}
}

// TestLinkedResumeFromCheckpoint: a run resumed from a mid-run snapshot
// set starts at the snapshot step, covers exactly the remaining window,
// stays safe, and is deterministic (two resumes from the same snapshots
// are bit-identical).
func TestLinkedResumeFromCheckpoint(t *testing.T) {
	cfg := linkedConfig()
	cfg.Scenario.DurationS = 600
	cap := &captureSink{}
	cfg.Checkpoint = &LinkedCheckpoint{EveryS: 120, Sink: cap.sink}
	full, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := cap.all()[1] // step 240

	rcfg := cfg
	rcfg.Checkpoint = nil
	rcfg.Resume = mid
	res, err := RunLinked(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartStep != int(mid[0].Step) {
		t.Fatalf("StartStep = %d, want %d", res.StartStep, mid[0].Step)
	}
	steps := int(cfg.Scenario.DurationS / cfg.Scenario.DtS)
	if len(res.AggregateW) != steps-res.StartStep {
		t.Fatalf("aggregate covers %d steps, want %d", len(res.AggregateW), steps-res.StartStep)
	}
	if res.CBTrips != 0 || res.OutageS != 0 || res.FeederTrips != 0 {
		t.Fatalf("resumed run tripped: cb=%d outage=%g feeder=%d", res.CBTrips, res.OutageS, res.FeederTrips)
	}
	if full.StartStep != 0 {
		t.Fatalf("fresh run StartStep = %d, want 0", full.StartStep)
	}

	res2, err := RunLinked(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.AggregateW {
		if res.AggregateW[i] != res2.AggregateW[i] {
			t.Fatalf("resume not deterministic at step %d: %g vs %g", res.StartStep+i, res.AggregateW[i], res2.AggregateW[i])
		}
	}
	for i := range res.Racks {
		if res.Racks[i].EnergyTotalWh != res2.Racks[i].EnergyTotalWh {
			t.Fatalf("rack %d energy differs between identical resumes", i)
		}
	}
}

// TestLinkedResumeValidation: malformed resume sets and checkpoint
// configurations are rejected before any simulation work.
func TestLinkedResumeValidation(t *testing.T) {
	base := linkedConfig()
	base.Scenario.DurationS = 300
	cap := &captureSink{}
	base.Checkpoint = &LinkedCheckpoint{EveryS: 100, Sink: cap.sink}
	if _, err := RunLinked(base); err != nil {
		t.Fatal(err)
	}
	good := cap.all()[0]

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"resume with wrong rack count", func(c *Config) { c.Resume = good[:len(good)-1] }},
		{"resume with nil snapshot", func(c *Config) {
			bad := append([]*checkpoint.Snapshot(nil), good...)
			bad[1] = nil
			c.Resume = bad
		}},
		{"resume with incoherent steps", func(c *Config) {
			bad := append([]*checkpoint.Snapshot(nil), good...)
			cp := *bad[0]
			cp.Step++
			bad[0] = &cp
			c.Resume = bad
		}},
		{"resume without link", func(c *Config) {
			c.Link.Enabled = false
			c.Resume = good
		}},
		{"checkpoint without sink", func(c *Config) { c.Checkpoint = &LinkedCheckpoint{EveryS: 100} }},
		{"checkpoint cadence under dt", func(c *Config) {
			c.Checkpoint = &LinkedCheckpoint{EveryS: 0.1, Sink: cap.sink}
		}},
		{"checkpoint without link", func(c *Config) {
			c.Link.Enabled = false
			c.Checkpoint = &LinkedCheckpoint{EveryS: 100, Sink: cap.sink}
		}},
	}
	for _, tc := range cases {
		cfg := linkedConfig()
		cfg.Scenario.DurationS = 300
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted it", tc.name)
		}
		if cfg.Link.Enabled { // RunLinked must reject it too
			if _, err := RunLinked(cfg); err == nil {
				t.Errorf("%s: RunLinked accepted it", tc.name)
			}
		}
	}
}

// TestLinkedCancelDuringSetup: a stop that closes before or during the
// expensive runner-construction phase (per-tick series preallocation is
// seconds per rack at day-long horizons) aborts RunLinked promptly with
// sim.ErrCanceled instead of building every remaining rack first.
func TestLinkedCancelDuringSetup(t *testing.T) {
	cfg := linkedConfig()
	stop := make(chan struct{})
	close(stop)
	cfg.Stop = stop
	if _, err := RunLinked(cfg); !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("pre-closed stop: err = %v, want sim.ErrCanceled", err)
	}
}

// TestLinkedCancelCheckpointsAndResumes: closing Stop abandons the run
// within one tick with sim.ErrCanceled, a final coherent capture lands at
// the cancellation boundary, and the run completes correctly when resumed
// from it.
func TestLinkedCancelCheckpointsAndResumes(t *testing.T) {
	cfg := linkedConfig()
	cfg.Scenario.DurationS = 600
	stop := make(chan struct{})
	cfg.Stop = stop
	cap := &captureSink{}
	cfg.Checkpoint = &LinkedCheckpoint{EveryS: 1e6, Sink: cap.sink} // cadence beyond the run: only the cancel capture fires
	var once sync.Once
	cfg.Link.OnTick = func(step int, _, _ float64) {
		if step >= 99 {
			once.Do(func() { close(stop) })
		}
	}
	_, err := RunLinked(cfg)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want sim.ErrCanceled", err)
	}
	sets := cap.all()
	if len(sets) != 1 {
		t.Fatalf("captured %d sets on cancel, want exactly the final capture", len(sets))
	}
	set := sets[0]
	if set[0].Step != 100 {
		t.Fatalf("cancel capture at step %d, want 100 (one tick after the stop)", set[0].Step)
	}

	rcfg := cfg
	rcfg.Stop = nil
	rcfg.Checkpoint = nil
	rcfg.Link.OnTick = nil
	rcfg.Resume = set
	res, err := RunLinked(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StartStep != 100 {
		t.Fatalf("resumed StartStep = %d, want 100", res.StartStep)
	}
	steps := int(cfg.Scenario.DurationS / cfg.Scenario.DtS)
	if len(res.AggregateW) != steps-100 {
		t.Fatalf("resumed aggregate covers %d steps, want %d", len(res.AggregateW), steps-100)
	}
}
