package cluster

import (
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.NumRacks = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero racks should error")
	}
	bad = DefaultConfig()
	bad.FeederBudgetW = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative budget should error")
	}
	bad = DefaultConfig()
	bad.Scenario.DurationS = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad scenario should error")
	}
	if _, err := Run(bad); err == nil {
		t.Fatal("Run should reject invalid config")
	}
}

func TestStaggeringFlattensAggregate(t *testing.T) {
	sync := DefaultConfig()
	sync.Stagger = false
	syncRes, err := Run(sync)
	if err != nil {
		t.Fatal(err)
	}

	stag := DefaultConfig()
	stag.Stagger = true
	stagRes, err := Run(stag)
	if err != nil {
		t.Fatal(err)
	}

	// Synchronized racks all overload together: aggregate peak near
	// 4 × 4.0 kW. Staggered racks keep at most ⌈4·150/450⌉ = 2 racks
	// overloading at once.
	if stagRes.PeakW >= syncRes.PeakW-500 {
		t.Fatalf("staggered peak %v not clearly below synchronized %v", stagRes.PeakW, syncRes.PeakW)
	}
	// Against a feeder sized for staggered operation, synchronization
	// violates the budget, staggering stays within it.
	if syncRes.OverBudgetFrac < 0.05 {
		t.Fatalf("synchronized over-budget fraction %v implausibly low", syncRes.OverBudgetFrac)
	}
	// The feeder is sized for exactly two concurrent overload bonuses,
	// so brief demand spikes can still poke above it — but staggering
	// must cut the violation rate by a large factor.
	if stagRes.OverBudgetFrac > 0.05 || stagRes.OverBudgetFrac > syncRes.OverBudgetFrac/4 {
		t.Fatalf("staggered over-budget fraction %v vs synchronized %v", stagRes.OverBudgetFrac, syncRes.OverBudgetFrac)
	}
	// Energy throughput stays comparable: staggering shifts, not sheds.
	if stagRes.MeanW < 0.9*syncRes.MeanW {
		t.Fatalf("staggered mean %v lost energy vs %v", stagRes.MeanW, syncRes.MeanW)
	}
}

func TestClusterSafetyRollups(t *testing.T) {
	res, err := Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Racks) != 4 {
		t.Fatalf("racks = %d", len(res.Racks))
	}
	if res.CBTrips != 0 || res.OutageS != 0 {
		t.Fatalf("cluster safety violated: trips=%d outage=%v", res.CBTrips, res.OutageS)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("cluster misses = %d", res.DeadlineMisses)
	}
	// Racks see different traffic (different seeds).
	if res.Racks[0].InteractiveDemand.Mean == res.Racks[1].InteractiveDemand.Mean {
		t.Fatal("racks should not share an identical trace")
	}
}

func TestNumRacksBounds(t *testing.T) {
	bad := DefaultConfig()
	bad.NumRacks = MaxRacks + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("NumRacks above MaxRacks should error")
	}
	ok := DefaultConfig()
	ok.NumRacks = MaxRacks
	ok.Scenario.DurationS = 0 // invalid scenario, but NumRacks itself passes
	if err := ok.Validate(); err == nil || err.Error() == "cluster: NumRacks 1024 exceeds MaxRacks 1024" {
		t.Fatalf("NumRacks = MaxRacks must pass the bounds check, got %v", err)
	}
}

// Parallel and serial cluster runs must produce bit-identical results: every
// rack is an independent seeded simulation, so scheduling cannot leak into
// the output.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRacks = 3
	cfg.Scenario.DurationS = 300

	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Serial = true
	ser, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(par.Racks) != len(ser.Racks) {
		t.Fatalf("rack counts differ: %d vs %d", len(par.Racks), len(ser.Racks))
	}
	for i := range par.Racks {
		p, s := par.Racks[i], ser.Racks[i]
		if len(p.Series.TotalW) != len(s.Series.TotalW) {
			t.Fatalf("rack %d series lengths differ", i)
		}
		for tk := range p.Series.TotalW {
			if p.Series.TotalW[tk] != s.Series.TotalW[tk] || p.Series.CBW[tk] != s.Series.CBW[tk] ||
				p.Series.SoC[tk] != s.Series.SoC[tk] || p.Series.FreqBatch[tk] != s.Series.FreqBatch[tk] {
				t.Fatalf("rack %d diverges at tick %d", i, tk)
			}
		}
		if p.CBTrips != s.CBTrips || p.OutageS != s.OutageS || p.DeadlineMisses != s.DeadlineMisses {
			t.Fatalf("rack %d summary stats diverge", i)
		}
	}
	for tk := range par.AggregateW {
		if par.AggregateW[tk] != ser.AggregateW[tk] {
			t.Fatalf("aggregate diverges at tick %d", tk)
		}
	}
}
