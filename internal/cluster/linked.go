package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"sprintcon/internal/breaker"
	"sprintcon/internal/checkpoint"
	"sprintcon/internal/core"
	"sprintcon/internal/link"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
)

// FeederTolerance is the relative slack applied before an aggregate-draw
// sample counts as a feeder exceedance. A correctly packed cluster sits
// *exactly* at the budget while SlotCapacity racks overload — the budget
// funds K overloads and the coordinator schedules K — so control-tracking
// noise alone reaches ~3% of the budget at the peaks. One *extra*
// uncoordinated overload adds a full bonus, rated·(degree−1), ≈5.6% of the
// default budget. The tolerance sits between the two: tracking noise does
// not count as an exceedance, a stolen overload slot always does. The
// hierarchical runner applies the same slack at the row and building
// levels, where the reasoning carries over unchanged.
const FeederTolerance = 0.035

// LinkedResult extends Result with the feeder safety record and the control
// link's accounting.
type LinkedResult struct {
	Result

	// StartStep is the first executed step: 0 for a fresh run, the resume
	// snapshots' step for a run resumed through Config.Resume. AggregateW
	// and the feeder statistics cover [StartStep, steps) only.
	StartStep int

	// FeederExceedFrac is the fraction of ticks the aggregate draw exceeded
	// the feeder budget by more than the tracking tolerance.
	FeederExceedFrac float64
	// FeederTrips counts trips of a shadow feeder breaker rated at the
	// budget (metric-only: power is never actually cut).
	FeederTrips int

	Transport link.TransportStats
	Coord     link.CoordStats
	// Clients holds each rack's lease-lifecycle counters, index = rack id.
	Clients []link.ClientStats
	// Invariants holds each rack's safety-invariant breach counters.
	Invariants []core.InvariantReport
}

// DegradedS sums degraded-mode seconds across racks.
func (r *LinkedResult) DegradedS() float64 {
	var s float64
	for _, c := range r.Clients {
		s += c.DegradedS
	}
	return s
}

// Resyncs sums degraded→coordinated recoveries across racks.
func (r *LinkedResult) Resyncs() int {
	var n int
	for _, c := range r.Clients {
		n += c.Resyncs
	}
	return n
}

// linkedPolicy adapts one rack's SprintCon to the control link: each tick it
// advances the rack's lease ladder, imposes the resulting budget on the
// controller (tighten-only), and caches the telemetry the next heartbeat
// carries. It forwards checkpointing with the link client's state embedded,
// so a crash-restore mid-partition resumes the ladder bit-identically.
type linkedPolicy struct {
	inner  *core.SprintCon
	client *link.Client
	ratedW float64
	cycleS float64
}

func (lp *linkedPolicy) Name() string { return lp.inner.Name() + "-linked" }

func (lp *linkedPolicy) Start(env *sim.Env, scn sim.Scenario) error {
	return lp.inner.Start(env, scn)
}

func (lp *linkedPolicy) Tick(env *sim.Env, snap sim.Snapshot) float64 {
	b := lp.client.Advance(snap.Now, snap.Dt)
	if !b.Degraded {
		// The degraded fallback freezes the schedule phase: overloads are
		// suspended anyway, and keeping the last offset means a re-sync to
		// an unchanged slot resumes seamlessly.
		//
		// Grant offsets are in the coordinator's absolute frame (schedule
		// anchored at t=0), but a fail-safe controller restart re-anchors
		// the allocator's square wave at the restart time. Fold the live
		// anchor into the offset so the rack's overload window lands in its
		// assigned slot whatever the anchor — otherwise a restarted rack
		// overloads shifted by (restart time mod cycle), on top of other
		// racks' slots, and the feeder exceeds the SlotCapacity bound.
		off := b.PhaseOffsetS
		if anchor := lp.inner.ScheduleAnchorS(); anchor != 0 {
			off = math.Mod(off+anchor, lp.cycleS)
			if off < 0 {
				off += lp.cycleS
			}
		}
		lp.inner.SetPhaseOffset(off)
	}
	lp.inner.SetExternalBudget(core.ExternalBudget{
		Active:        true,
		PCbCapW:       b.PCbCapW,
		AllowOverload: b.AllowOverload,
		AllowUPS:      b.AllowUPS,
	})
	req := lp.inner.Tick(env, snap)
	pcb, _ := lp.inner.Targets(snap.Now)
	lp.client.NoteTelemetry(snap.MeasuredTotalW, snap.UPSSoC,
		pcb > lp.ratedW*(1+1e-9), int(lp.inner.Mode()))
	return req
}

// Targets implements sim.TargetReporter.
func (lp *linkedPolicy) Targets(now float64) (float64, float64) {
	return lp.inner.Targets(now)
}

// ExportCheckpoint implements sim.Checkpointable.
func (lp *linkedPolicy) ExportCheckpoint(now float64) checkpoint.ControllerState {
	st := lp.inner.ExportCheckpoint(now)
	st.HasLink = true
	st.Link = lp.client.ExportState()
	return st
}

// RestoreCheckpoint implements sim.Checkpointable. A snapshot without link
// state (or a nil fail-safe restore) drops the lease: the rack re-enters
// degraded mode until the coordinator re-grants — the safe direction.
func (lp *linkedPolicy) RestoreCheckpoint(env *sim.Env, scn sim.Scenario, st *checkpoint.ControllerState, now float64) error {
	if err := lp.inner.RestoreCheckpoint(env, scn, st, now); err != nil {
		return err
	}
	if st != nil && st.HasLink {
		return lp.client.RestoreState(st.Link)
	}
	lp.client.FailSafe(now)
	return nil
}

// linkedRackJob is rackJob for linked runs: the same per-rack seed offsets,
// the rack-scoped half of the fault plan, and the bootstrap lease's slot as
// the initial overload phase (the link re-imposes the offset every tick, so
// this only matters for the instant before the first Tick).
func linkedRackJob(cfg Config, i int, rackPlan sim.Scenario, bootOffsetS float64) (sim.Scenario, *core.SprintCon) {
	scn := rackPlan
	scn.Interactive.Seed += int64(i)
	scn.Rack.Seed += int64(i)
	scn.Faults.Seed += int64(i)

	pcfg := cfg.SprintCon
	acfg := cfg.allocConfig()
	acfg.PhaseOffsetS = bootOffsetS
	pcfg.AllocOverride = &acfg
	return scn, core.New(pcfg)
}

// RunLinked simulates the cluster in lock-step with the control link in the
// loop: every tick the transport's fault schedule advances, due grants reach
// the rack clients, all racks execute one physics tick (concurrently unless
// Config.Serial — results are bit-identical either way, since racks only
// exchange state through the link on the coordinating goroutine), heartbeats
// travel back, and the coordinator issues fresh leases. The feeder draw is
// scored against a shadow breaker rated at the budget.
func RunLinked(cfg Config) (*LinkedResult, error) {
	if !cfg.Link.Enabled {
		return nil, fmt.Errorf("cluster: RunLinked needs Link.Enabled (use Run for static phase offsets)")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	proto, ccfg, err := cfg.linkSetup()
	if err != nil {
		return nil, err
	}
	coord, err := link.NewCoordinator(ccfg)
	if err != nil {
		return nil, err
	}
	if cfg.Link.Obs != nil {
		if len(cfg.Link.Obs.Racks) < cfg.NumRacks {
			return nil, fmt.Errorf("cluster: observability plane has %d rack planes for %d racks", len(cfg.Link.Obs.Racks), cfg.NumRacks)
		}
		// Attach before Bootstrap so the bootstrap grants are spanned and
		// their IDs reach the clients' initial leases.
		coord.Attach(cfg.Link.Obs.Coord)
	}
	rackPlan, linkPlan := cfg.Scenario.Faults.Split()
	rackScn := cfg.Scenario
	rackScn.Faults = rackPlan

	dt := cfg.Scenario.DtS
	tr := link.NewTransport(linkPlan, cfg.NumRacks, cfg.Link.Seed, dt)
	boot := coord.Bootstrap()

	runners := make([]*sim.Runner, cfg.NumRacks)
	clients := make([]*link.Client, cfg.NumRacks)
	inners := make([]*core.SprintCon, cfg.NumRacks)
	for i := range runners {
		// Runner construction is the expensive pre-run phase (per-tick
		// series preallocation, trace generation — seconds per rack at
		// day-long horizons), so honor cancellation between racks: a run
		// stopped during setup returns within one rack's build, not after
		// all of them.
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				return nil, sim.ErrCanceled
			default:
			}
		}
		scn, inner := linkedRackJob(cfg, i, rackScn, boot[i].PhaseOffsetS)
		inners[i] = inner
		b := boot[i]
		clients[i] = link.NewClient(proto, i, &b)
		lp := &linkedPolicy{inner: inner, client: clients[i], ratedW: scn.Breaker.RatedPower, cycleS: proto.CycleS}
		var opts sim.RunOptions
		if cfg.Link.RackOptions != nil {
			opts = cfg.Link.RackOptions(i)
		}
		if cfg.Link.Obs != nil {
			clients[i].Attach(cfg.Link.Obs.Racks[i])
			opts.Obs = cfg.Link.Obs.Racks[i]
		}
		if cfg.Resume != nil {
			opts.Resume = cfg.Resume[i]
		}
		r, err := sim.NewRunner(scn, lp, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: rack %d: %w", i, err)
		}
		runners[i] = r
	}

	steps := runners[0].StepsTotal()
	start := runners[0].StepIndex()
	if start > 0 {
		// A resumed run: the coordinator is a fresh process over restored
		// racks. Bring it up through its crash-restart path so its lease
		// bookkeeping matches reality (no beats seen yet, a full TTL of
		// conservatism for grants the racks may still hold).
		coord.Restart(float64(start) * dt)
	}
	aggregate := make([]float64, steps-start)
	workers := runtime.GOMAXPROCS(0)
	stepErrs := make([]error, cfg.NumRacks)
	coordDown := false
	canceled := false

	// Coherent row snapshots: every rack exported at the same tick
	// boundary, handed to the sink as one set.
	lastCkS := float64(start) * dt
	captureRow := func(tNext float64) error {
		snaps := make([]*checkpoint.Snapshot, len(runners))
		for i, r := range runners {
			sp, err := r.ExportSnapshot()
			if err != nil {
				return fmt.Errorf("cluster: rack %d checkpoint: %w", i, err)
			}
			snaps[i] = sp
		}
		cfg.Checkpoint.Sink(snaps)
		lastCkS = tNext
		return nil
	}

	for step := start; step < steps; step++ {
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				canceled = true
			default:
			}
			if canceled {
				break
			}
		}
		now := float64(step) * dt

		// 1. Network fault schedule, and the coordinator's crash/restart
		// edge: process restart (soft-state wipe) when the downtime ends.
		tr.Step(now)
		down := tr.CoordinatorDown()
		if coordDown && !down {
			coord.Restart(now)
		}
		coordDown = down

		// 2. Due grants reach the rack clients, in rack order.
		for i, c := range clients {
			for _, l := range tr.DeliverGrants(i, now) {
				c.Offer(now, l)
			}
		}

		// 3. One physics tick per rack. Racks are independent given their
		// delivered grants, so the sweep parallelizes without affecting
		// the result.
		if cfg.Serial || workers <= 1 {
			for i, r := range runners {
				if err := r.Step(); err != nil {
					return nil, fmt.Errorf("cluster: rack %d: %w", i, err)
				}
			}
		} else {
			var wg sync.WaitGroup
			sem := make(chan struct{}, workers)
			for i, r := range runners {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int, r *sim.Runner) {
					defer wg.Done()
					defer func() { <-sem }()
					defer sim.RecoverPanic(&stepErrs[i])
					stepErrs[i] = r.Step()
				}(i, r)
			}
			wg.Wait()
			for i, e := range stepErrs {
				if e != nil {
					return nil, fmt.Errorf("cluster: rack %d: %w", i, e)
				}
			}
		}

		// 4. Heartbeats out (a dead controller process sends none, and
		// neither does a dark rack — a rack in a power outage must look
		// unreachable so the coordinator's timeout path reclaims its slot),
		// then due beats into the coordinator, then fresh grants onto the
		// wire.
		for i, c := range clients {
			if runners[i].ControllerDead() || runners[i].Dark() {
				continue
			}
			if hb, ok := c.MaybeBeat(now); ok {
				tr.SendBeat(now, hb)
			}
		}
		for _, hb := range tr.DeliverBeats(now) {
			coord.Observe(hb, now)
		}
		if !down {
			for _, l := range coord.Step(now) {
				tr.SendGrant(now, l)
			}
		}

		// 5. Feeder accounting from the tick's conducted powers.
		var agg float64
		for _, r := range runners {
			agg += r.LastCBPowerW()
		}
		aggregate[step-start] = agg
		if cfg.Link.OnTick != nil {
			cfg.Link.OnTick(step, now, agg)
		}

		// 6. Cadenced coherent checkpoint at the tick boundary just
		// crossed (the exported step is step+1, the next to execute).
		if cfg.Checkpoint != nil {
			tNext := float64(step+1) * dt
			if tNext >= lastCkS+cfg.Checkpoint.EveryS-1e-9 {
				if err := captureRow(tNext); err != nil {
					return nil, err
				}
			}
		}
	}

	if canceled {
		// A drain wants the freshest possible resume point: capture the
		// boundary the run stopped at, then report the cancellation.
		if cfg.Checkpoint != nil {
			if err := captureRow(math.NaN()); err != nil {
				return nil, err
			}
		}
		return nil, sim.ErrCanceled
	}

	out := &LinkedResult{
		Result:     Result{Racks: make([]*sim.Result, cfg.NumRacks), AggregateW: aggregate},
		StartStep:  start,
		Transport:  tr.Stats(),
		Coord:      coord.Stats(),
		Clients:    make([]link.ClientStats, cfg.NumRacks),
		Invariants: make([]core.InvariantReport, cfg.NumRacks),
	}
	for i, r := range runners {
		res := r.Finish()
		out.Racks[i] = res
		out.CBTrips += res.CBTrips
		out.OutageS += res.OutageS
		out.DeadlineMisses += res.DeadlineMisses
		out.Clients[i] = clients[i].Stats()
		out.Invariants[i] = inners[i].InvariantViolations()
	}
	out.PeakW = stats.Max(aggregate)
	out.MeanW = stats.Mean(aggregate)
	out.OverBudgetFrac = stats.FracAbove(aggregate, cfg.FeederBudgetW)
	out.FeederExceedFrac = stats.FracAbove(aggregate, cfg.FeederBudgetW*(1+FeederTolerance))
	out.FeederTrips = ShadowTrips(cfg.FeederBudgetW, aggregate, dt)

	if cfg.Link.Metrics != nil {
		registerLinkMetrics(cfg, out, clients, steps, dt)
	}
	return out, nil
}

// ShadowTrips runs a shadow breaker rated at budgetW over an aggregate draw
// series sampled every dtS seconds, and returns the trip count. It is
// metric-only — while "tripped" it cools and recloses rather than cutting
// power, so one sustained violation can score several trips but never
// alters the simulation. The linked cluster scores its feeder with it, and
// the hierarchical runner reuses it for the row and building breakers.
func ShadowTrips(budgetW float64, aggregate []float64, dtS float64) int {
	bcfg := breaker.DefaultConfig()
	bcfg.RatedPower = budgetW
	fb, err := breaker.New(bcfg)
	if err != nil {
		return 0
	}
	for _, w := range aggregate {
		if fb.Tripped() {
			fb.Cool(dtS)
			if fb.CanReclose() {
				_ = fb.Reclose()
			}
			continue
		}
		fb.Step(w, dtS)
	}
	return fb.Trips()
}

// registerLinkMetrics publishes the run's link accounting on the configured
// registry.
func registerLinkMetrics(cfg Config, out *LinkedResult, clients []*link.Client, steps int, dt float64) {
	m := cfg.Link.Metrics
	m.Counter("link_grants_sent_total", "budget leases put on the wire").Add(float64(out.Transport.GrantsSent))
	m.Counter("link_grants_lost_total", "leases dropped by loss faults, partitions or coordinator downtime").
		Add(float64(out.Transport.GrantsLost + out.Transport.GrantsPartition))
	m.Counter("link_beats_sent_total", "heartbeats put on the wire").Add(float64(out.Transport.BeatsSent))
	m.Counter("link_beats_lost_total", "heartbeats dropped by loss faults, partitions or coordinator downtime").
		Add(float64(out.Transport.BeatsLost + out.Transport.BeatsPartition))
	m.Counter("link_resyncs_total", "degraded→coordinated recoveries across racks").Add(float64(out.Resyncs()))
	m.Counter("link_probes_total", "re-sync probes issued to unreachable racks").Add(float64(out.Coord.Probes))
	m.Counter("link_repacks_total", "overload slot-assignment changes").Add(float64(out.Coord.Repacks))
	m.Counter("link_presumed_degraded_total", "coordinator transitions into presumed-degraded").Add(float64(out.Coord.Presumed))
	var expiries int
	for _, c := range out.Clients {
		expiries += c.Expiries
	}
	m.Counter("link_expiries_total", "lease expiries (degraded-mode entries) across racks").Add(float64(expiries))
	m.Gauge("link_regrant_backoff_peak_seconds", "largest re-grant retry backoff reached").Set(out.Coord.PeakBackoffS)
	m.Gauge("link_degraded_seconds", "total rack-seconds spent in the degraded standalone fallback").Set(out.DegradedS())
	endS := float64(steps) * dt
	age := 0.0
	for _, c := range clients {
		if a := c.LeaseAgeS(endS); !math.IsNaN(a) && a > age {
			age = a
		}
	}
	m.Gauge("link_lease_age_seconds", "oldest live lease age at end of run").Set(age)
}
