// Package cluster coordinates SprintCon across multiple racks sharing a
// data-center feeder — the scale the paper motivates ("the sprinting power
// can consume the headroom in the data-center level power budget",
// Section I) but leaves to future work. Each rack runs its own SprintCon
// instance against its own breaker and UPS; the coordinator's one lever is
// the *phase offset* of each rack's periodic overload schedule.
//
// Without coordination every rack overloads its breaker at the same time
// and the feeder sees the full 1.25× aggregate peak. Staggering the
// offsets by cycle/N keeps at most ⌈N·150/450⌉ racks in an overload phase
// at once, flattening the aggregate draw.
package cluster

import (
	"errors"
	"fmt"

	"sprintcon/internal/alloc"
	"sprintcon/internal/core"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
)

// Config describes the rack group.
type Config struct {
	// NumRacks is the group size.
	NumRacks int
	// Scenario is the per-rack scenario; rack i runs it with the
	// interactive seed offset by i so the racks see distinct traffic.
	Scenario sim.Scenario
	// Stagger spreads the racks' overload phases across the cycle.
	Stagger bool
	// FeederBudgetW is the shared feeder capacity for the group; the
	// result reports how often the aggregate exceeds it. Zero disables
	// the check.
	FeederBudgetW float64
	// SprintCon tunes the per-rack policy.
	SprintCon core.Config
}

// DefaultConfig returns four paper racks behind a feeder provisioned at
// the sum of the breaker ratings plus one rack's overload bonus — enough
// for staggered sprinting, not for synchronized sprinting.
func DefaultConfig() Config {
	scn := sim.DefaultScenario()
	return Config{
		NumRacks:      4,
		Scenario:      scn,
		Stagger:       true,
		FeederBudgetW: 4*scn.Breaker.RatedPower + 0.25*scn.Breaker.RatedPower*2,
		SprintCon:     core.DefaultConfig(),
	}
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	if c.NumRacks <= 0 {
		return errors.New("cluster: NumRacks must be positive")
	}
	if c.FeederBudgetW < 0 {
		return errors.New("cluster: FeederBudgetW must be non-negative")
	}
	return c.Scenario.Validate()
}

// Result aggregates a coordinated run.
type Result struct {
	Racks []*sim.Result // per-rack results, index = rack id

	// AggregateW is the feeder draw per tick (sum of rack CB draws; UPS
	// discharge is rack-local and does not load the feeder).
	AggregateW []float64
	// PeakW and MeanW summarize the feeder draw.
	PeakW, MeanW float64
	// OverBudgetFrac is the fraction of ticks above the feeder budget
	// (0 when no budget is configured).
	OverBudgetFrac float64
	// Safety rollups across racks.
	CBTrips        int
	OutageS        float64
	DeadlineMisses int
}

// Run simulates every rack and aggregates the feeder draw.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cycle := 0.0
	out := &Result{}
	for i := 0; i < cfg.NumRacks; i++ {
		scn := cfg.Scenario
		scn.Interactive.Seed += int64(i)
		scn.Rack.Seed += int64(i)

		pcfg := cfg.SprintCon
		acfg := alloc.DefaultConfig(scn.Breaker.RatedPower, scn.Breaker.TripBudget())
		if pcfg.AllocOverride != nil {
			acfg = *pcfg.AllocOverride
		}
		if cfg.Stagger {
			cycle = acfg.OverloadS + acfg.RecoveryS
			acfg.PhaseOffsetS = float64(i) * cycle / float64(cfg.NumRacks)
		}
		pcfg.AllocOverride = &acfg

		res, err := sim.Run(scn, core.New(pcfg))
		if err != nil {
			return nil, fmt.Errorf("cluster: rack %d: %w", i, err)
		}
		out.Racks = append(out.Racks, res)
		out.CBTrips += res.CBTrips
		out.OutageS += res.OutageS
		out.DeadlineMisses += res.DeadlineMisses

		if out.AggregateW == nil {
			out.AggregateW = make([]float64, len(res.Series.CBW))
		}
		if len(res.Series.CBW) != len(out.AggregateW) {
			return nil, fmt.Errorf("cluster: rack %d series length mismatch", i)
		}
		for t, w := range res.Series.CBW {
			out.AggregateW[t] += w
		}
	}
	out.PeakW = stats.Max(out.AggregateW)
	out.MeanW = stats.Mean(out.AggregateW)
	if cfg.FeederBudgetW > 0 {
		out.OverBudgetFrac = stats.FracAbove(out.AggregateW, cfg.FeederBudgetW)
	}
	return out, nil
}
