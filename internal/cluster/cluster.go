// Package cluster coordinates SprintCon across multiple racks sharing a
// data-center feeder — the scale the paper motivates ("the sprinting power
// can consume the headroom in the data-center level power budget",
// Section I) but leaves to future work. Each rack runs its own SprintCon
// instance against its own breaker and UPS; the coordinator's levers are
// the *phase offset* of each rack's periodic overload schedule and, in
// linked mode, the per-tick lease budget each rack may spend.
//
// Without coordination every rack overloads its breaker at the same time
// and the feeder sees the full 1.25× aggregate peak. Run staggers static
// offsets by cycle/N, keeping at most ⌈N·150/450⌉ racks in an overload
// phase at once; RunLinked drives the same packing live over the
// lease-based control link (package link), surviving message loss and
// partitions. internal/hier stacks row and building feeders above this
// package, running one linked cluster per row feeder.
//
// Racks are independent seeded simulations, so Run executes them on the
// sim worker pool (bounded by GOMAXPROCS) and assembles results in rack
// order — output is bit-identical to a serial run (Config.Serial forces
// one for benchmark comparisons). Each rack's interactive-trace, rack and
// fault-plan seeds are offset by the rack index so the racks experience
// independent traffic, noise and fault timings.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/alloc"
	"sprintcon/internal/checkpoint"
	"sprintcon/internal/core"
	"sprintcon/internal/link"
	"sprintcon/internal/obs"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
	"sprintcon/internal/telemetry"
)

// Config describes the rack group.
type Config struct {
	// NumRacks is the group size, in [1, MaxRacks].
	NumRacks int
	// Scenario is the per-rack scenario; rack i runs it with the
	// interactive, rack and fault-plan seeds offset by i so the racks
	// see distinct traffic, measurement noise and fault timings.
	Scenario sim.Scenario
	// Stagger spreads the racks' overload phases across the cycle.
	Stagger bool
	// FeederBudgetW is the shared feeder capacity (W) for the group; the
	// result reports how often the aggregate exceeds it. Zero disables
	// the check.
	FeederBudgetW float64
	// SprintCon tunes the per-rack policy.
	SprintCon core.Config
	// Serial runs the racks one at a time instead of on the worker pool.
	// Results are bit-identical either way; the knob exists so the
	// benchmark harness can measure the parallel speedup.
	Serial bool
	// Stop, when non-nil, cancels the run once the channel closes:
	// RunLinked polls it between lock-step ticks (so cancellation lands
	// within one tick), takes a final coherent checkpoint when Checkpoint
	// is configured, and returns sim.ErrCanceled.
	Stop <-chan struct{}
	// Checkpoint, when non-nil, captures coherent row snapshots during
	// RunLinked: every rack's full control+plant state at the same tick
	// boundary, every EveryS simulated seconds (see LinkedCheckpoint).
	Checkpoint *LinkedCheckpoint
	// Resume, when non-nil, resumes RunLinked from a coherent snapshot
	// set — one checkpoint.Snapshot per rack, all at the same step, as a
	// LinkedCheckpoint sink previously received. The plant and controller
	// of every rack restore bit-identically; the coordinator comes up
	// through its crash-restart path (soft-state wipe, heartbeat version
	// recovery), so the link re-syncs exactly as it would after a real
	// coordinator restart. The Result covers only the resumed window
	// (StartStep onward).
	Resume []*checkpoint.Snapshot
	// Link configures the coordinator↔rack control link (RunLinked).
	Link LinkConfig
}

// LinkedCheckpoint configures coherent row snapshots during RunLinked.
type LinkedCheckpoint struct {
	// EveryS is the capture cadence in simulated seconds (≥ one tick).
	// The first capture lands one cadence after the run (or resume)
	// starts; a cancellation through Config.Stop always captures a final
	// set before returning, so a drain loses at most the canceled tick.
	EveryS float64
	// Sink receives each capture on the coordinating goroutine: one
	// snapshot per rack, all at the same Step. It must return quickly —
	// the whole row waits on it. Persisting the set atomically (all racks
	// or none) is the sink's job; cmd/sprintd writes one framed file per
	// row for exactly that reason.
	Sink func(snaps []*checkpoint.Snapshot)
}

// LinkConfig enables and tunes the lease-based control link of RunLinked
// (DESIGN.md §12). The zero value leaves the cluster in the static
// phase-offset mode of Run.
type LinkConfig struct {
	// Enabled turns the link on; Run ignores it, RunLinked requires it.
	Enabled bool
	// Protocol holds the lease/heartbeat timing parameters. The zero value
	// takes link.DefaultConfig with the overload schedule copied from the
	// allocator configuration; a non-zero value must agree with that
	// schedule, or the coordinator's slot arithmetic would describe a
	// different square wave than the racks run.
	Protocol link.Config
	// Seed drives the transport's fault randomness (loss, delay,
	// duplication draws).
	Seed int64
	// NaiveTrustLastGrant selects the baseline client that ignores lease
	// expiry and keeps sprinting on the last grant it ever heard — the
	// unsafe strawman experiment E19 measures against.
	NaiveTrustLastGrant bool
	// Metrics, when non-nil, receives the link instruments (grants
	// sent/lost, degraded-mode seconds, re-sync count, lease age).
	Metrics *telemetry.Registry
	// RackOptions, when non-nil, supplies per-rack run options — the hook
	// for per-rack checkpoint stores in crash/restore tests.
	RackOptions func(rack int) sim.RunOptions
	// Obs, when non-nil, is the cluster's observability plane: RunLinked
	// attaches one plane per rack (spans, rollups, detectors) and the
	// coordinator's, all merged through obs.Cluster. It must hold at
	// least NumRacks rack planes.
	Obs *obs.Cluster
	// OnTick, when non-nil, is called on the coordinating goroutine at the
	// end of every lock-step tick with the step index, the simulated time
	// and that tick's feeder aggregate draw (W) — the live-progress hook
	// the hierarchical runner and the sprintd service use. It must return
	// quickly: the whole cluster waits on it.
	OnTick func(step int, nowS, aggregateW float64)
}

// MaxRacks bounds NumRacks: each rack is a full seeded simulation holding
// its series in memory, and a group beyond this size indicates a
// misconfigured sweep rather than a plausible feeder group.
const MaxRacks = 1024

// DefaultConfig returns four paper racks behind a feeder provisioned at
// the sum of the breaker ratings plus one rack's overload bonus — enough
// for staggered sprinting, not for synchronized sprinting.
func DefaultConfig() Config {
	scn := sim.DefaultScenario()
	return Config{
		NumRacks:      4,
		Scenario:      scn,
		Stagger:       true,
		FeederBudgetW: 4*scn.Breaker.RatedPower + 0.25*scn.Breaker.RatedPower*2,
		SprintCon:     core.DefaultConfig(),
	}
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	if c.NumRacks <= 0 {
		return errors.New("cluster: NumRacks must be positive")
	}
	if c.NumRacks > MaxRacks {
		return fmt.Errorf("cluster: NumRacks %d exceeds MaxRacks %d", c.NumRacks, MaxRacks)
	}
	if math.IsNaN(c.FeederBudgetW) || math.IsInf(c.FeederBudgetW, 0) {
		return fmt.Errorf("cluster: FeederBudgetW is %g; the feeder budget must be finite", c.FeederBudgetW)
	}
	if c.FeederBudgetW < 0 {
		return errors.New("cluster: FeederBudgetW must be non-negative")
	}
	if c.Checkpoint != nil {
		if !c.Link.Enabled {
			return errors.New("cluster: Checkpoint requires Link.Enabled (coherent row snapshots are a linked-run feature)")
		}
		if c.Checkpoint.EveryS < c.Scenario.DtS {
			return fmt.Errorf("cluster: Checkpoint.EveryS %g s is below the tick %g s", c.Checkpoint.EveryS, c.Scenario.DtS)
		}
		if c.Checkpoint.Sink == nil {
			return errors.New("cluster: Checkpoint.Sink must be set")
		}
	}
	if c.Resume != nil {
		if !c.Link.Enabled {
			return errors.New("cluster: Resume requires Link.Enabled")
		}
		if len(c.Resume) != c.NumRacks {
			return fmt.Errorf("cluster: Resume holds %d snapshots for %d racks", len(c.Resume), c.NumRacks)
		}
		for i, sp := range c.Resume {
			if sp == nil {
				return fmt.Errorf("cluster: Resume snapshot for rack %d is nil", i)
			}
			if sp.Step != c.Resume[0].Step {
				return fmt.Errorf("cluster: Resume snapshots are incoherent: rack %d at step %d, rack 0 at step %d",
					i, sp.Step, c.Resume[0].Step)
			}
		}
	}
	if !c.Link.Enabled {
		return c.Scenario.Validate()
	}
	// Linked run: the scenario's fault plan may carry link-scoped faults,
	// which the per-rack validation rejects — split first and validate each
	// half against its consumer.
	rackPlan, linkPlan := c.Scenario.Faults.Split()
	scn := c.Scenario
	scn.Faults = rackPlan
	if err := scn.Validate(); err != nil {
		return err
	}
	if err := linkPlan.ValidateForCluster(c.NumRacks, c.Scenario.Rack.NumServers); err != nil {
		return err
	}
	_, ccfg, err := c.linkSetup()
	if err != nil {
		return err
	}
	return ccfg.Validate()
}

// allocConfig returns the per-rack allocator configuration the policies will
// run (the override, or the default for the scenario's breaker).
func (c Config) allocConfig() alloc.Config {
	if c.SprintCon.AllocOverride != nil {
		return *c.SprintCon.AllocOverride
	}
	return alloc.DefaultConfig(c.Scenario.Breaker.RatedPower, c.Scenario.Breaker.TripBudget())
}

// linkSetup resolves the effective link protocol and coordinator
// configuration: protocol defaults filled from the allocator schedule, and
// the slot capacity K = ⌊(budget − N·rated) / bonus⌋ the feeder headroom
// funds, where bonus = rated·(degree−1) is one rack's overload surcharge.
func (c Config) linkSetup() (link.Config, link.CoordConfig, error) {
	acfg := c.allocConfig()
	// The slot-capacity derivation below divides by the overload bonus
	// rated·(degree−1); validate the allocator config first so a degenerate
	// override (OverloadDegree ≤ 1 ⇒ bonus ≤ 0) reports its real cause
	// instead of a misleading SlotCapacity error from int(±Inf).
	if err := acfg.Validate(); err != nil {
		return link.Config{}, link.CoordConfig{}, fmt.Errorf("cluster: allocator config: %w", err)
	}
	proto := c.Link.Protocol
	if proto == (link.Config{}) {
		proto = link.DefaultConfig()
		proto.OverloadS, proto.CycleS = 0, 0
	}
	if proto.OverloadS == 0 && proto.CycleS == 0 {
		proto.OverloadS = acfg.OverloadS
		proto.CycleS = acfg.OverloadS + acfg.RecoveryS
	}
	proto.TrustLastGrant = c.Link.NaiveTrustLastGrant
	if proto.OverloadS != acfg.OverloadS || proto.CycleS != acfg.OverloadS+acfg.RecoveryS {
		return proto, link.CoordConfig{}, fmt.Errorf(
			"cluster: link schedule (%g s overload / %g s cycle) disagrees with the allocator's (%g / %g); the coordinator's slot packing must describe the schedule the racks run",
			proto.OverloadS, proto.CycleS, acfg.OverloadS, acfg.OverloadS+acfg.RecoveryS)
	}
	if err := proto.Validate(); err != nil {
		return proto, link.CoordConfig{}, err
	}
	if c.FeederBudgetW <= 0 {
		return proto, link.CoordConfig{}, errors.New("cluster: a linked run needs a positive FeederBudgetW; the slot capacity is derived from it")
	}
	rated := c.Scenario.Breaker.RatedPower
	bonus := rated * (acfg.OverloadDegree - 1)
	// Floor with a tolerance: a budget assembled as N·rated + K·bonus can
	// land a hair under the exact product in floats, and plain truncation
	// would then fund K−1 slots — enough to fail the coordinator's packing
	// check for a budget that is, by construction, sufficient.
	k := int((c.FeederBudgetW-float64(c.NumRacks)*rated)/bonus + 1e-9)
	ccfg := link.CoordConfig{Link: proto, NumRacks: c.NumRacks, SlotCapacity: k}
	return proto, ccfg, nil
}

// Result aggregates a coordinated run.
type Result struct {
	Racks []*sim.Result // per-rack results, index = rack id

	// AggregateW is the feeder draw per tick (sum of rack CB draws; UPS
	// discharge is rack-local and does not load the feeder).
	AggregateW []float64
	// PeakW and MeanW summarize the feeder draw.
	PeakW, MeanW float64
	// OverBudgetFrac is the fraction of ticks above the feeder budget
	// (0 when no budget is configured).
	OverBudgetFrac float64
	// Safety rollups summed across racks: breaker trips (count),
	// interactive-service outage (s), and batch deadline misses (count).
	CBTrips        int
	OutageS        float64
	DeadlineMisses int
}

// rackJob builds rack i's scenario and policy: the per-rack seed offsets
// and the staggered overload phase.
func rackJob(cfg Config, i int) (sim.Scenario, sim.Policy) {
	scn := cfg.Scenario
	scn.Interactive.Seed += int64(i)
	scn.Rack.Seed += int64(i)
	// Fault-plan seed too: without this offset every rack replays the
	// same jittered fault timings, a synchronized failure wave no real
	// deployment exhibits.
	scn.Faults.Seed += int64(i)

	pcfg := cfg.SprintCon
	acfg := alloc.DefaultConfig(scn.Breaker.RatedPower, scn.Breaker.TripBudget())
	if pcfg.AllocOverride != nil {
		acfg = *pcfg.AllocOverride
	}
	if cfg.Stagger {
		cycle := acfg.OverloadS + acfg.RecoveryS
		acfg.PhaseOffsetS = float64(i) * cycle / float64(cfg.NumRacks)
	}
	pcfg.AllocOverride = &acfg
	return scn, core.New(pcfg)
}

// Run simulates every rack (concurrently unless Config.Serial) and
// aggregates the feeder draw. Results are deterministic: rack i's result
// depends only on the configuration and i, never on scheduling.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	racks := make([]*sim.Result, cfg.NumRacks)
	if cfg.Serial {
		for i := 0; i < cfg.NumRacks; i++ {
			scn, p := rackJob(cfg, i)
			res, err := sim.Run(scn, p)
			if err != nil {
				return nil, fmt.Errorf("cluster: rack %d: %w", i, err)
			}
			racks[i] = res
		}
	} else {
		jobs := make([]sim.Job, cfg.NumRacks)
		for i := range jobs {
			scn, p := rackJob(cfg, i)
			jobs[i] = sim.Job{Key: fmt.Sprintf("rack%d", i), Scenario: scn, Policy: p}
		}
		var err error
		racks, err = sim.RunManyOrdered(jobs)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}

	out := &Result{Racks: racks}
	for i, res := range racks {
		out.CBTrips += res.CBTrips
		out.OutageS += res.OutageS
		out.DeadlineMisses += res.DeadlineMisses

		if out.AggregateW == nil {
			out.AggregateW = make([]float64, len(res.Series.CBW))
		}
		if len(res.Series.CBW) != len(out.AggregateW) {
			return nil, fmt.Errorf("cluster: rack %d series length mismatch", i)
		}
		for t, w := range res.Series.CBW {
			out.AggregateW[t] += w
		}
	}
	out.PeakW = stats.Max(out.AggregateW)
	out.MeanW = stats.Mean(out.AggregateW)
	if cfg.FeederBudgetW > 0 {
		out.OverBudgetFrac = stats.FracAbove(out.AggregateW, cfg.FeederBudgetW)
	}
	return out, nil
}
