package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
)

// Chaos and soak testing for the control link (make chaos / make soak):
// randomized seeded network-fault storms — loss, delay, duplication,
// partitions, coordinator crashes — composed with the rack-scoped storms the
// core package soaks. Whatever the storm, the invariants the lease
// discipline exists for must hold: zero rack breaker trips, zero SoC-floor
// breaches, zero feeder-breaker trips. Schedules are deterministic per seed,
// so a failing storm reproduces exactly.

// randomNetworkStorm draws 2–5 link-scoped faults. Severities cover the
// ranges the transport models: loss/dup probabilities, delay spreads wide
// enough to reorder several refresh rounds, partitions of one rack or the
// whole cluster, and coordinator outages from sub-TTL blips to over a
// minute.
func randomNetworkStorm(rng *rand.Rand, numRacks int) []faults.Fault {
	n := 2 + rng.Intn(4)
	kinds := faults.KindsForScope(faults.ScopeLink)
	var out []faults.Fault
	for i := 0; i < n; i++ {
		f := faults.Fault{
			Kind:      kinds[rng.Intn(len(kinds))],
			OnsetS:    float64(rng.Intn(600)),
			DurationS: 30 + float64(rng.Intn(400)),
		}
		switch f.Kind {
		case faults.LinkLoss:
			f.Severity = 0.05 + 0.55*rng.Float64()
		case faults.LinkDelay:
			f.Severity = 1 + float64(rng.Intn(6))
		case faults.LinkDup:
			f.Severity = 0.05 + 0.75*rng.Float64()
		case faults.LinkPartition:
			f.Severity = 1
			if rng.Intn(3) == 0 {
				f.Server = faults.AllRacks
			} else {
				f.Server = rng.Intn(numRacks)
			}
		case faults.CoordinatorCrash:
			f.Severity = 1
			f.DurationS = 5 + float64(rng.Intn(120))
		}
		out = append(out, f)
	}
	return out
}

func assertLinkedSafe(t *testing.T, res *LinkedResult, plan []faults.Fault, label string) {
	t.Helper()
	if res.CBTrips != 0 {
		t.Errorf("%s: %d rack breaker trips under %v", label, res.CBTrips, plan)
	}
	if res.FeederTrips != 0 {
		t.Errorf("%s: %d feeder trips under %v", label, res.FeederTrips, plan)
	}
	for i, inv := range res.Invariants {
		if inv.SoCFloor != 0 {
			t.Errorf("%s: rack %d SoC-floor breaches %d under %v", label, i, inv.SoCFloor, plan)
		}
	}
}

func TestChaosNetworkStormsStaySafe(t *testing.T) {
	const storms = 8
	n := storms
	if testing.Short() {
		n = 3
	}
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("storm-%02d", i), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(90_000 + 7919*i)))
			cfg := linkedConfig()
			cfg.Scenario.Interactive.Seed = rng.Int63()
			cfg.Link.Seed = rng.Int63()
			cfg.Scenario.Faults.Faults = randomNetworkStorm(rng, cfg.NumRacks)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("generated invalid config: %v", err)
			}
			res, err := RunLinked(cfg)
			if err != nil {
				t.Fatalf("run failed under %v: %v", cfg.Scenario.Faults.Faults, err)
			}
			assertLinkedSafe(t, res, cfg.Scenario.Faults.Faults, "chaos")
		})
	}
}

// TestChaosNetworkStormDeterminism pins that a network storm re-run with the
// same seeds reproduces the exact same headline metrics and link accounting,
// so any chaos failure is replayable.
func TestChaosNetworkStormDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	cfg := linkedConfig()
	cfg.Link.Seed = 99
	cfg.Scenario.Faults.Faults = randomNetworkStorm(rng, cfg.NumRacks)
	a, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CBTrips != b.CBTrips || a.FeederExceedFrac != b.FeederExceedFrac ||
		a.DegradedS() != b.DegradedS() || a.Transport != b.Transport || a.Coord != b.Coord {
		t.Fatalf("identical storm runs diverged:\na %+v / %+v\nb %+v / %+v",
			a.Transport, a.Coord, b.Transport, b.Coord)
	}
}

func soakRuns() int {
	if s := os.Getenv("SOAK_RUNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 2
	}
	return 4
}

// Soak: network storms composed with rack-local controller crashes, run
// alternately with per-rack checkpoint stores (restore path) and without
// (fail-safe path). The combination exercises the full degraded-mode ladder:
// leases expiring mid-partition, crashes mid-degraded, re-syncs after heals —
// and must stay trip- and SoC-breach-free throughout.
func TestSoakLinkedStormsStaySafe(t *testing.T) {
	n := soakRuns()
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("run-%03d", i), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(130_000 + 104_729*i)))
			cfg := linkedConfig()
			cfg.Scenario.Interactive.Seed = rng.Int63()
			cfg.Link.Seed = rng.Int63()
			plan := randomNetworkStorm(rng, cfg.NumRacks)
			plan = append(plan, faults.Fault{
				Kind:      faults.ControllerCrash,
				OnsetS:    float64(rng.Intn(700)),
				DurationS: 10,
				Severity:  3 * rng.Float64(),
			})
			cfg.Scenario.Faults.Faults = plan
			if i%2 == 0 {
				cfg.Link.RackOptions = func(rack int) sim.RunOptions {
					return sim.RunOptions{Checkpoint: &sim.CheckpointOptions{Store: checkpoint.NewMemStore()}}
				}
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("generated invalid config: %v", err)
			}
			res, err := RunLinked(cfg)
			if err != nil {
				t.Fatalf("run failed under %v: %v", plan, err)
			}
			assertLinkedSafe(t, res, plan, fmt.Sprintf("soak (checkpointed=%v)", i%2 == 0))
		})
	}
}
