package cluster

import (
	"math"
	"testing"

	"sprintcon/internal/sim"
)

// Linked racks are structurally tick-bound: the lock-step loop interleaves
// the coordinator between rack ticks and linkedPolicy applies an
// always-active external budget, so the quiescence digest can never certify
// a span. Selecting the event engine for linked racks must therefore
// degenerate honestly — bit-identical results to the default run, zero
// spans, zero skipped ticks.
func TestLinkedEventEngineDegeneratesToTick(t *testing.T) {
	cfg := linkedConfig()
	cfg.NumRacks = 3
	cfg.FeederBudgetW = 3*cfg.Scenario.Breaker.RatedPower + 0.25*cfg.Scenario.Breaker.RatedPower*2
	cfg.Scenario.DurationS = 400
	cfg.Scenario.BurstDurationS = 400

	base, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ev := cfg
	ev.Link.RackOptions = func(rack int) sim.RunOptions {
		return sim.RunOptions{Engine: "event"}
	}
	eres, err := RunLinked(ev)
	if err != nil {
		t.Fatal(err)
	}

	for i := range base.Racks {
		b, e := &base.Racks[i].Series, &eres.Racks[i].Series
		for tk := range b.TotalW {
			if math.Float64bits(b.TotalW[tk]) != math.Float64bits(e.TotalW[tk]) ||
				math.Float64bits(b.CBW[tk]) != math.Float64bits(e.CBW[tk]) ||
				math.Float64bits(b.SoC[tk]) != math.Float64bits(e.SoC[tk]) ||
				math.Float64bits(b.FreqBatch[tk]) != math.Float64bits(e.FreqBatch[tk]) ||
				math.Float64bits(b.PCbW[tk]) != math.Float64bits(e.PCbW[tk]) {
				t.Fatalf("rack %d diverges at tick %d under the event engine label", i, tk)
			}
		}
		st := eres.Racks[i].Engine
		if st.Name != "event" {
			t.Fatalf("rack %d engine label %q, want event", i, st.Name)
		}
		if st.Spans != 0 || st.TicksSkipped != 0 {
			t.Fatalf("rack %d fast-forwarded inside a lock-step linked run: %+v", i, st)
		}
		if !clientStatsEqual(base.Clients[i], eres.Clients[i]) {
			t.Fatalf("rack %d link stats diverge: %+v vs %+v", i, base.Clients[i], eres.Clients[i])
		}
	}
	for tk := range base.AggregateW {
		if math.Float64bits(base.AggregateW[tk]) != math.Float64bits(eres.AggregateW[tk]) {
			t.Fatalf("aggregate diverges at tick %d", tk)
		}
	}
	if base.Transport != eres.Transport || base.Coord != eres.Coord {
		t.Fatalf("link accounting diverges:\nbase %+v / %+v\nevent %+v / %+v",
			base.Transport, base.Coord, eres.Transport, eres.Coord)
	}
}

// An unknown engine name via Link.RackOptions must fail rack construction.
func TestLinkedRejectsUnknownEngine(t *testing.T) {
	cfg := linkedConfig()
	cfg.Scenario.DurationS = 120
	cfg.Scenario.BurstDurationS = 120
	cfg.Link.RackOptions = func(rack int) sim.RunOptions {
		return sim.RunOptions{Engine: "warp"}
	}
	if _, err := RunLinked(cfg); err == nil {
		t.Fatal("linked run accepted an unknown engine name")
	}
}
