package cluster

import (
	"bytes"
	"math"
	"testing"

	"sprintcon/internal/faults"
	"sprintcon/internal/obs"
	"sprintcon/internal/telemetry"
)

// obsPartitionConfig is the span-test scenario: rack 0 cut off long enough
// to expire its lease, degrade, and resync after the heal.
func obsPartitionConfig() Config {
	cfg := linkedConfig()
	cfg.Scenario.Faults.Faults = []faults.Fault{partitionAt(0, 10, 690)}
	return cfg
}

func runWithSpans(t *testing.T, cfg Config) (*LinkedResult, *obs.Cluster) {
	t.Helper()
	oc := obs.NewCluster(cfg.NumRacks, obs.DefaultDetectorConfig())
	cfg.Link.Obs = oc
	res, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, oc
}

// TestLinkedSpanTraceDeterministic is the tentpole's diffability guarantee:
// two identical seeded runs — including the parallel rack stepping — emit
// byte-identical merged span traces.
func TestLinkedSpanTraceDeterministic(t *testing.T) {
	render := func() []byte {
		_, oc := runWithSpans(t, obsPartitionConfig())
		var buf bytes.Buffer
		if err := telemetry.WriteSpans(&buf, oc.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("linked run emitted no spans")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("span traces differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// TestLinkedSpanCausality walks the partition run's trace and checks the
// causal chain the plane promises: every lease accept points at a
// coordinator grant/probe, every degraded span points at the accept of the
// lease that expired, and every degraded episode that healed was closed by
// a resync child.
func TestLinkedSpanCausality(t *testing.T) {
	_, oc := runWithSpans(t, obsPartitionConfig())
	spans := oc.Spans()
	byID := make(map[uint64]telemetry.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	kinds := make(map[string]int)
	for _, s := range spans {
		kinds[s.Kind]++
		switch s.Kind {
		case "lease-accept":
			p, ok := byID[s.Parent]
			if !ok || (p.Kind != "lease-grant" && p.Kind != "lease-probe") {
				t.Fatalf("accept span %d parent %d is %q, want a coordinator grant/probe", s.ID, s.Parent, p.Kind)
			}
			if p.LeaseVersion != s.LeaseVersion {
				t.Fatalf("accept v%d linked to grant v%d", s.LeaseVersion, p.LeaseVersion)
			}
		case "degraded":
			p, ok := byID[s.Parent]
			if !ok || p.Kind != "lease-accept" {
				t.Fatalf("degraded span %d parent %d is %q, want the expired lease's accept", s.ID, s.Parent, p.Kind)
			}
			if s.Open() {
				t.Fatalf("degraded span %d still open after the partition healed", s.ID)
			}
		case "lease-resync":
			if _, ok := byID[s.Parent]; !ok {
				t.Fatalf("resync span %d orphaned (parent %d)", s.ID, s.Parent)
			}
		case "control-period":
			// Coordinated periods anchor to the live accept; degraded-mode
			// periods run without a lease and are roots.
			if s.Parent != 0 {
				if p := byID[s.Parent]; p.Kind != "lease-accept" {
					t.Fatalf("control-period %d anchored to %q", s.ID, p.Kind)
				}
			}
		}
	}
	for _, want := range []string{"lease-grant", "lease-accept", "degraded", "lease-resync", "presumed-degraded", "lease-probe", "heartbeat", "control-period"} {
		if kinds[want] == 0 {
			t.Fatalf("partition trace has no %q spans (kinds: %v)", want, kinds)
		}
	}
	// The partition run must raise the rack-degraded and rack-silent
	// alerts, each anchored to a real span in the trace.
	var sawDegraded, sawSilent bool
	for _, a := range oc.Alerts() {
		switch a.Detector {
		case obs.DetectorRackDegraded:
			sawDegraded = true
		case obs.DetectorRackSilent:
			sawSilent = true
		}
		if a.SpanID != 0 {
			if _, ok := byID[a.SpanID]; !ok {
				t.Fatalf("alert %+v anchored to unknown span", a)
			}
		}
	}
	if !sawDegraded || !sawSilent {
		t.Fatalf("partition run missing alerts: degraded=%v silent=%v", sawDegraded, sawSilent)
	}
}

// TestRegisterLinkMetricsUnderPartition exercises the full link metric set
// against a sustained partition: every counter the exporter publishes must
// agree with the run's own accounting.
func TestRegisterLinkMetricsUnderPartition(t *testing.T) {
	cfg := obsPartitionConfig()
	reg := telemetry.NewRegistry()
	cfg.Link.Metrics = reg
	res, err := RunLinked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	get := func(name string) float64 {
		t.Helper()
		v, ok := snap.Value(name)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		return v
	}

	if got := get("link_grants_sent_total"); got != float64(res.Transport.GrantsSent) {
		t.Fatalf("grants_sent %v, accounting says %d", got, res.Transport.GrantsSent)
	}
	if got := get("link_grants_lost_total"); got != float64(res.Transport.GrantsLost+res.Transport.GrantsPartition) {
		t.Fatalf("grants_lost %v, accounting says %d", got, res.Transport.GrantsLost+res.Transport.GrantsPartition)
	}
	if get("link_grants_lost_total") == 0 {
		t.Fatal("sustained partition lost no grants")
	}
	var expiries int
	for _, c := range res.Clients {
		expiries += c.Expiries
	}
	if expiries == 0 {
		t.Fatal("sustained partition produced no lease expiry")
	}
	if got := get("link_expiries_total"); got != float64(expiries) {
		t.Fatalf("expiries_total %v, accounting says %d", got, expiries)
	}
	if got := get("link_resyncs_total"); got != float64(res.Resyncs()) || got == 0 {
		t.Fatalf("resyncs_total %v, accounting says %d", got, res.Resyncs())
	}
	if got := get("link_probes_total"); got != float64(res.Coord.Probes) || got == 0 {
		t.Fatalf("probes_total %v, accounting says %d", got, res.Coord.Probes)
	}
	if got := get("link_repacks_total"); got != float64(res.Coord.Repacks) || got == 0 {
		t.Fatalf("repacks_total %v, accounting says %d", got, res.Coord.Repacks)
	}
	if got := get("link_presumed_degraded_total"); got != float64(res.Coord.Presumed) || got == 0 {
		t.Fatalf("presumed_degraded_total %v, accounting says %d", got, res.Coord.Presumed)
	}
	proto, _, err := cfg.linkSetup()
	if err != nil {
		t.Fatal(err)
	}
	// A 690 s partition walks the re-grant backoff all the way to its cap.
	if got := get("link_regrant_backoff_peak_seconds"); got != proto.MaxBackoffS {
		t.Fatalf("backoff peak %v, want cap %v", got, proto.MaxBackoffS)
	}
	if got := get("link_degraded_seconds"); got != res.DegradedS() || got == 0 {
		t.Fatalf("degraded_seconds %v, accounting says %v", got, res.DegradedS())
	}
	age := get("link_lease_age_seconds")
	if math.IsNaN(age) || age < 0 || age > proto.TTLS {
		t.Fatalf("end-of-run lease age %v outside [0, TTL=%v]", age, proto.TTLS)
	}
}
