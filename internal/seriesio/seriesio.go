// Package seriesio exports simulation time series as CSV or JSON and
// renders quick ASCII sparkline plots for terminal inspection of the
// paper's figures.
package seriesio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sprintcon/internal/sim"
)

// WriteCSV writes the series with one row per tick.
func WriteCSV(w io.Writer, s *sim.Series) error {
	cw := csv.NewWriter(w)
	header := []string{"time_s", "total_w", "cb_w", "ups_w", "pcb_target_w", "pbatch_target_w", "freq_inter_norm", "freq_batch_norm", "ups_soc"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range s.Time {
		row := []string{
			f(s.Time[i]), f(s.TotalW[i]), f(s.CBW[i]), f(s.UPSW[i]),
			f(s.PCbW[i]), f(s.PBatchW[i]), f(s.FreqInter[i]), f(s.FreqBatch[i]), f(s.SoC[i]),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// ReadCSV parses a series previously written by WriteCSV. Empty cells decode
// as NaN, inverting WriteCSV's encoding of NaN (policies without a batch
// budget write empty pbatch_target_w columns). Columns are resolved by
// header name, so a reordered or extended file still reads correctly as
// long as the WriteCSV columns are present.
func ReadCSV(r io.Reader) (*sim.Series, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("seriesio: reading header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[name] = i
	}
	var s sim.Series
	dests := []struct {
		name string
		dst  *[]float64
	}{
		{"time_s", &s.Time}, {"total_w", &s.TotalW}, {"cb_w", &s.CBW},
		{"ups_w", &s.UPSW}, {"pcb_target_w", &s.PCbW}, {"pbatch_target_w", &s.PBatchW},
		{"freq_inter_norm", &s.FreqInter}, {"freq_batch_norm", &s.FreqBatch}, {"ups_soc", &s.SoC},
	}
	for _, d := range dests {
		if _, ok := col[d.name]; !ok {
			return nil, fmt.Errorf("seriesio: missing column %q", d.name)
		}
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("seriesio: line %d: %w", line, err)
		}
		for _, d := range dests {
			cell := row[col[d.name]]
			if cell == "" {
				*d.dst = append(*d.dst, math.NaN())
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("seriesio: line %d, column %s: %w", line, d.name, err)
			}
			*d.dst = append(*d.dst, v)
		}
	}
	return &s, nil
}

// WriteJSON writes the series as one JSON object of parallel arrays.
func WriteJSON(w io.Writer, s *sim.Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// Sparkline renders values as a one-line unicode sparkline, downsampled to
// width columns (mean pooling). Empty input yields an empty string.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	pooled := pool(values, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range pooled {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(pooled))
	}
	var b strings.Builder
	for _, v := range pooled {
		if math.IsNaN(v) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}

// PlotRow formats a labeled sparkline with its range, e.g.
// "total   ▁▃▅▇ [2400, 4100] W".
func PlotRow(label string, values []float64, width int, unit string) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return fmt.Sprintf("%-12s (no data)", label)
	}
	return fmt.Sprintf("%-12s %s [%.2f, %.2f] %s", label, Sparkline(values, width), lo, hi, unit)
}

// pool mean-pools values into width buckets (NaNs skipped; all-NaN buckets
// stay NaN).
func pool(values []float64, width int) []float64 {
	if len(values) <= width {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, width)
	for b := 0; b < width; b++ {
		start := b * len(values) / width
		end := (b + 1) * len(values) / width
		var sum float64
		var n int
		for _, v := range values[start:end] {
			if math.IsNaN(v) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			out[b] = math.NaN()
		} else {
			out[b] = sum / float64(n)
		}
	}
	return out
}
