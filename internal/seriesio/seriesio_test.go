package seriesio

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"sprintcon/internal/sim"
)

func demoSeries() *sim.Series {
	return &sim.Series{
		DtS:       1,
		Time:      []float64{0, 1, 2},
		TotalW:    []float64{3000, 3100, 3200},
		CBW:       []float64{3000, 3050, 3100},
		UPSW:      []float64{0, 50, 100},
		PCbW:      []float64{math.NaN(), 3200, 3200},
		PBatchW:   []float64{1500, 1500, math.NaN()},
		FreqInter: []float64{1, 1, 1},
		FreqBatch: []float64{0.4, 0.5, 0.6},
		SoC:       []float64{1, 0.99, 0.98},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, demoSeries()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 ticks
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "time_s" || len(rows[0]) != 9 {
		t.Fatalf("header = %v", rows[0])
	}
	// NaN cells are empty.
	if rows[1][4] != "" {
		t.Fatalf("NaN cell should be empty, got %q", rows[1][4])
	}
	if rows[2][4] != "3200.000" {
		t.Fatalf("pcb cell = %q", rows[2][4])
	}
}

// TestCSVRoundTripNaN pins the ReadCSV ↔ WriteCSV inverse on a series with
// NaN budget columns — the shape every SGCT run produces (no batch budget)
// and any run's pre-control warmup tick produces (no CB budget yet).
func TestCSVRoundTripNaN(t *testing.T) {
	want := demoSeries()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cols := []struct {
		name       string
		want, have []float64
	}{
		{"Time", want.Time, got.Time},
		{"TotalW", want.TotalW, got.TotalW},
		{"CBW", want.CBW, got.CBW},
		{"UPSW", want.UPSW, got.UPSW},
		{"PCbW", want.PCbW, got.PCbW},
		{"PBatchW", want.PBatchW, got.PBatchW},
		{"FreqInter", want.FreqInter, got.FreqInter},
		{"FreqBatch", want.FreqBatch, got.FreqBatch},
		{"SoC", want.SoC, got.SoC},
	}
	for _, c := range cols {
		if len(c.have) != len(c.want) {
			t.Fatalf("%s: len = %d, want %d", c.name, len(c.have), len(c.want))
		}
		for i := range c.want {
			// demoSeries uses ≤ 3 decimals, so WriteCSV's %.3f is lossless
			// here and equality (NaN ↔ NaN) must hold exactly.
			if math.IsNaN(c.want[i]) != math.IsNaN(c.have[i]) ||
				(!math.IsNaN(c.want[i]) && c.want[i] != c.have[i]) {
				t.Errorf("%s[%d] = %v, want %v", c.name, i, c.have[i], c.want[i])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("time_s,total_w\n0,1\n")); err == nil {
		t.Fatal("missing columns should error")
	}
	bad := "time_s,total_w,cb_w,ups_w,pcb_target_w,pbatch_target_w,freq_inter_norm,freq_batch_norm,ups_soc\n" +
		"0,x,0,0,0,0,0,0,0\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "total_w") {
		t.Fatalf("unparsable cell should name its column, got %v", err)
	}
}

func TestWriteJSON(t *testing.T) {
	s := demoSeries()
	s.PCbW = []float64{3200, 3200, 3200} // JSON cannot carry NaN
	s.PBatchW = []float64{1500, 1500, 1500}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["Time"]; !ok {
		t.Fatal("JSON missing Time field")
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3}, 4)
	if utf8.RuneCountInString(got) != 4 {
		t.Fatalf("sparkline %q has %d runes", got, utf8.RuneCountInString(got))
	}
	if !strings.HasPrefix(got, "▁") || !strings.HasSuffix(got, "█") {
		t.Fatalf("sparkline %q should rise from ▁ to █", got)
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should yield empty string")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Fatal("zero width should yield empty string")
	}
	// Constant series renders the lowest tick everywhere.
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
	// NaN becomes a space.
	withNaN := Sparkline([]float64{math.NaN(), 1, 2}, 3)
	if !strings.HasPrefix(withNaN, " ") {
		t.Fatalf("NaN should render as space: %q", withNaN)
	}
}

func TestSparklineDownsamples(t *testing.T) {
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	got := Sparkline(long, 50)
	if utf8.RuneCountInString(got) != 50 {
		t.Fatalf("downsampled width %d", utf8.RuneCountInString(got))
	}
}

func TestPlotRow(t *testing.T) {
	row := PlotRow("total", []float64{100, 200}, 10, "W")
	if !strings.Contains(row, "total") || !strings.Contains(row, "[100.00, 200.00] W") {
		t.Fatalf("PlotRow = %q", row)
	}
	empty := PlotRow("x", []float64{math.NaN()}, 10, "W")
	if !strings.Contains(empty, "no data") {
		t.Fatalf("all-NaN PlotRow = %q", empty)
	}
}

func TestPoolMeanPooling(t *testing.T) {
	out := pool([]float64{1, 3, 5, 7}, 2)
	if len(out) != 2 || out[0] != 2 || out[1] != 6 {
		t.Fatalf("pool = %v", out)
	}
	// Shorter than width: copied through.
	out = pool([]float64{1, 2}, 5)
	if len(out) != 2 {
		t.Fatalf("short pool = %v", out)
	}
	// All-NaN bucket stays NaN.
	out = pool([]float64{math.NaN(), math.NaN(), 4, 4}, 2)
	if !math.IsNaN(out[0]) || out[1] != 4 {
		t.Fatalf("NaN pool = %v", out)
	}
}
