// Package mathx provides the small dense linear-algebra kernel used by
// SprintCon's model-predictive controller: vectors, row-major matrices,
// Cholesky factorization and triangular solves. It is deliberately minimal
// and stdlib-only; sizes in this project are at most a few hundred, so
// clarity is preferred over blocking or SIMD tricks.
package mathx

import (
	"fmt"
	"math"
)

// Vector is a dense column vector of float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Constant returns a length-n vector with every element set to v.
func Constant(n int, v float64) Vector {
	x := make(Vector, n)
	FillSlice(x, v)
	return x
}

// Clone returns a copy of x.
func (x Vector) Clone() Vector {
	y := make(Vector, len(x))
	copy(y, x)
	return y
}

// Dot returns the inner product of x and y. It panics if lengths differ.
func (x Vector) Dot(y Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	return DotSlices(x, y)
}

// Add returns x + y as a new vector.
func (x Vector) Add(y Vector) Vector {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: Add length mismatch %d vs %d", len(x), len(y)))
	}
	z := make(Vector, len(x))
	for i := range x {
		z[i] = x[i] + y[i]
	}
	return z
}

// Sub returns x − y as a new vector.
func (x Vector) Sub(y Vector) Vector {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: Sub length mismatch %d vs %d", len(x), len(y)))
	}
	z := make(Vector, len(x))
	for i := range x {
		z[i] = x[i] - y[i]
	}
	return z
}

// Scale returns a·x as a new vector. (Copy-then-scale is bit-identical to
// the elementwise a·x[i]: IEEE-754 multiplication is commutative.)
func (x Vector) Scale(a float64) Vector {
	z := make(Vector, len(x))
	copy(z, x)
	ScaleSlice(a, z)
	return z
}

// AXPY performs x ← x + a·y in place.
func (x Vector) AXPY(a float64, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	Axpy(a, y, x)
}

// Norm2 returns the Euclidean norm of x.
func (x Vector) Norm2() float64 {
	// Scaled accumulation avoids overflow for extreme magnitudes.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of x (0 for an empty vector).
func (x Vector) NormInf() float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the elements of x.
func (x Vector) Sum() float64 { return SumSlice(x) }

// Mean returns the arithmetic mean of x, or 0 for an empty vector.
func (x Vector) Mean() float64 {
	if len(x) == 0 {
		return 0
	}
	return x.Sum() / float64(len(x))
}

// Clamp limits every element of x to [lo[i], hi[i]] in place.
func (x Vector) Clamp(lo, hi Vector) {
	if len(x) != len(lo) || len(x) != len(hi) {
		panic("mathx: Clamp length mismatch")
	}
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		} else if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}
