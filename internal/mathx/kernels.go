package mathx

// Fused slice kernels for the struct-of-arrays hot path. These operate on
// contiguous float64 slices with simple branch-free inner loops the compiler
// can keep in registers (and, where profitable, auto-vectorize). They are
// deliberately free of bounds re-checks beyond the initial length match so
// the per-core plant math (power, clamping, quantization) runs as tight
// batch loops instead of per-struct method calls.

// Axpy computes y[i] += alpha*x[i] over matching slices.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mathx: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// ScaleSlice computes x[i] *= alpha in place.
func ScaleSlice(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// ClampSlice clamps every element of x into [lo, hi] in place.
func ClampSlice(x []float64, lo, hi float64) {
	for i, v := range x {
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		x[i] = v
	}
}

// QuantizeSlice maps every element of x onto the nearest value of the sorted
// grid, in place, with ties rounding up — elementwise identical to the
// scalar binary-search quantization it replaces. The grid must be
// non-empty and ascending.
func QuantizeSlice(x []float64, grid []float64) {
	n := len(grid)
	if n == 0 {
		panic("mathx: QuantizeSlice with empty grid")
	}
	min, max := grid[0], grid[n-1]
	for i, f := range x {
		switch {
		case f <= min:
			x[i] = min
		case f >= max:
			x[i] = max
		default:
			lo, hi := 0, n-1
			for lo < hi {
				mid := (lo + hi) / 2
				if grid[mid] < f {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo > 0 && f-grid[lo-1] < grid[lo]-f {
				lo--
			}
			x[i] = grid[lo]
		}
	}
}

// DotSlices returns Σ x[i]·y[i] over matching slices.
func DotSlices(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mathx: DotSlices length mismatch")
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// SumSlice returns Σ x[i].
func SumSlice(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// FillSlice sets every element of x to v.
func FillSlice(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}
