package mathx

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: NewMatrix negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Inc adds v to the element at row i, column j.
func (m *Matrix) Inc(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Zero resets every element to 0 in place, so a preallocated matrix can be
// rebuilt each control period without allocating.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns row i as a vector that shares storage with m.
func (m *Matrix) Row(i int) Vector { return Vector(m.data[i*m.cols : (i+1)*m.cols]) }

// MulVec returns m·x.
func (m *Matrix) MulVec(x Vector) Vector {
	return m.MulVecInto(make(Vector, m.rows), x)
}

// MulVecInto computes dst = m·x in place and returns dst, for allocation-free
// hot paths. dst must have length m.Rows() and must not alias x.
func (m *Matrix) MulVecInto(dst, x Vector) Vector {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mathx: MulVec dimension mismatch %dx%d · %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("mathx: MulVecInto dst length %d for %d rows", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mathx: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	c := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			crow := c.data[i*c.cols : (i+1)*c.cols]
			for j, v := range brow {
				crow[j] += a * v
			}
		}
	}
	return c
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// AddScaled performs m ← m + a·b in place. Panics on shape mismatch.
func (m *Matrix) AddScaled(a float64, b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mathx: AddScaled shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] += a * b.data[i]
	}
}

// OuterAdd performs m ← m + a·x·yᵀ in place.
func (m *Matrix) OuterAdd(a float64, x, y Vector) {
	if len(x) != m.rows || len(y) != m.cols {
		panic("mathx: OuterAdd dimension mismatch")
	}
	for i := 0; i < m.rows; i++ {
		ax := a * x[i]
		if ax == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range y {
			row[j] += ax * v
		}
	}
}

// SymmetricMaxDiff returns max |m − mᵀ| over all elements, a cheap check
// that a matrix intended to be symmetric actually is.
func (m *Matrix) SymmetricMaxDiff() float64 {
	if m.rows != m.cols {
		return math.Inf(1)
	}
	var d float64
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if v := math.Abs(m.At(i, j) - m.At(j, i)); v > d {
				d = v
			}
		}
	}
	return d
}

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ.
// m must be symmetric positive definite; otherwise an error is returned.
// m is not modified.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("mathx: Cholesky of non-square %dx%d matrix", m.rows, m.cols)
	}
	l := NewMatrix(m.rows, m.rows)
	if err := m.CholeskyInto(l); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskyInto factors m = L·Lᵀ into the preallocated l (same shape as m),
// overwriting l's lower triangle; entries above the diagonal are left as-is
// and are never read by SolveCholesky. It performs no allocation, so a
// warm-started solver can refactor every period without garbage.
func (m *Matrix) CholeskyInto(l *Matrix) error {
	if m.rows != m.cols {
		return fmt.Errorf("mathx: Cholesky of non-square %dx%d matrix", m.rows, m.cols)
	}
	if l.rows != m.rows || l.cols != m.cols {
		return fmt.Errorf("mathx: CholeskyInto destination %dx%d for %dx%d matrix", l.rows, l.cols, m.rows, m.cols)
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return fmt.Errorf("mathx: Cholesky: matrix not positive definite at pivot %d (value %g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return nil
}

// SolveCholesky solves m·x = b given the Cholesky factor l of m
// (forward then backward substitution).
func SolveCholesky(l *Matrix, b Vector) Vector {
	n := l.rows
	return SolveCholeskyInto(l, b, make(Vector, n), make(Vector, n))
}

// SolveCholeskyInto solves m·x = b given the Cholesky factor l of m, writing
// the intermediate forward solve into y and the solution into x (both length
// l.Rows(); x is returned). It performs no allocation. b may alias x but not y.
func SolveCholeskyInto(l *Matrix, b, y, x Vector) Vector {
	n := l.rows
	if len(b) != n || len(y) != n || len(x) != n {
		panic(fmt.Sprintf("mathx: SolveCholesky dimension mismatch %d vs b=%d y=%d x=%d", n, len(b), len(y), len(x)))
	}
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves m·x = b for a symmetric positive-definite m.
func (m *Matrix) SolveSPD(b Vector) (Vector, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b), nil
}
