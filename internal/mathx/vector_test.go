package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{4, -5, 6}
	if got := x.Dot(y); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddSubScale(t *testing.T) {
	x := Vector{1, 2}
	y := Vector{3, 5}
	if got := x.Add(y); got[0] != 4 || got[1] != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := y.Sub(x); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := x.Scale(-2); got[0] != -2 || got[1] != -4 {
		t.Fatalf("Scale = %v", got)
	}
}

func TestVectorAXPY(t *testing.T) {
	x := Vector{1, 1, 1}
	x.AXPY(2, Vector{1, 2, 3})
	want := Vector{3, 5, 7}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("AXPY = %v, want %v", x, want)
		}
	}
}

func TestVectorNorm2(t *testing.T) {
	if got := (Vector{3, 4}).Norm2(); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := (Vector{}).Norm2(); got != 0 {
		t.Fatalf("empty Norm2 = %v, want 0", got)
	}
	// Scaled accumulation must not overflow.
	big := Constant(4, 1e200)
	if got := big.Norm2(); math.IsInf(got, 0) || !almostEq(got, 2e200, 1e188) {
		t.Fatalf("Norm2 of large vector = %v", got)
	}
}

func TestVectorNormInf(t *testing.T) {
	if got := (Vector{-7, 3, 5}).NormInf(); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
}

func TestVectorSumMean(t *testing.T) {
	x := Vector{1, 2, 3, 4}
	if x.Sum() != 10 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 2.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if (Vector{}).Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
}

func TestVectorClamp(t *testing.T) {
	x := Vector{-1, 0.5, 2}
	x.Clamp(Constant(3, 0), Constant(3, 1))
	want := Vector{0, 0.5, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Clamp = %v, want %v", x, want)
		}
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	x := Vector{1, 2}
	y := x.Clone()
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

// Property: Cauchy–Schwarz |x·y| ≤ ‖x‖‖y‖ for arbitrary vectors.
func TestVectorCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := make(Vector, 8), make(Vector, 8)
		for i := range a {
			// Bound the magnitude so the product cannot overflow.
			x[i] = math.Mod(a[i], 1e6)
			y[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		lhs := math.Abs(x.Dot(y))
		rhs := x.Norm2() * y.Norm2()
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality ‖x+y‖ ≤ ‖x‖+‖y‖.
func TestVectorTriangleInequalityProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		x, y := make(Vector, 6), make(Vector, 6)
		for i := range a {
			x[i] = math.Mod(a[i], 1e6)
			y[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		return x.Add(y).Norm2() <= x.Norm2()+y.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
