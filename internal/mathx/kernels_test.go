package mathx

import (
	"math"
	"testing"
)

// The kernels back the Vector methods on the QP/MPC hot path, so their
// contract is bitwise agreement with the scalar loops they replaced.

func TestAxpyBitwise(t *testing.T) {
	x := []float64{1.5, -2.25, 0, math.Pi, 1e-300}
	y := []float64{0.5, 3.75, -1, math.E, 1e300}
	want := make([]float64, len(y))
	copy(want, y)
	const a = -0.3
	for i := range want {
		want[i] += a * x[i]
	}
	Axpy(a, x, y)
	for i := range y {
		if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Axpy(1, x, y[:2])
}

func TestScaleSliceBitwise(t *testing.T) {
	x := []float64{1.5, -2.25, 0, math.Pi}
	want := make([]float64, len(x))
	const a = 0.7
	for i, v := range x {
		want[i] = a * v // commuted operand order must not matter
	}
	ScaleSlice(a, x)
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestClampSlice(t *testing.T) {
	x := []float64{-3, -1, 0, 1, 3, math.Inf(1), math.Inf(-1)}
	ClampSlice(x, -1, 1)
	want := []float64{-1, -1, 0, 1, 1, 1, -1}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

// QuantizeSlice must agree element-for-element with the scalar nearest-grid
// binary search it replaces (the cpu package's P-state quantization): ties
// round up, out-of-range clamps, exact grid points map to themselves.
func TestQuantizeSliceMatchesScalar(t *testing.T) {
	grid := []float64{0.4, 0.5, 0.6, 0.8, 1.1, 1.7, 2.0}
	scalar := func(f float64) float64 {
		if f <= grid[0] {
			return grid[0]
		}
		last := len(grid) - 1
		if f >= grid[last] {
			return grid[last]
		}
		lo, hi := 0, last
		for lo < hi {
			mid := (lo + hi) / 2
			if grid[mid] < f {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 && f-grid[lo-1] < grid[lo]-f {
			lo--
		}
		return grid[lo]
	}

	var in []float64
	for f := -0.5; f <= 2.5; f += 0.013 {
		in = append(in, f)
	}
	in = append(in, grid...)                          // exact grid points
	in = append(in, 0.45, 0.55, 0.7, 0.95, 1.4, 1.85) // exact midpoints: ties
	want := make([]float64, len(in))
	for i, f := range in {
		want[i] = scalar(f)
	}
	QuantizeSlice(in, grid)
	for i := range in {
		if math.Float64bits(in[i]) != math.Float64bits(want[i]) {
			t.Fatalf("element %d: %v, want %v", i, in[i], want[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("empty grid did not panic")
		}
	}()
	QuantizeSlice([]float64{1}, nil)
}

func TestDotSumFillBitwise(t *testing.T) {
	x := []float64{1e-9, 1e9, -2.5, 0.125, math.Pi}
	y := []float64{3, -1e-9, 4, 8, 1}
	var dot, sum float64
	for i := range x {
		dot += x[i] * y[i]
		sum += x[i]
	}
	if math.Float64bits(DotSlices(x, y)) != math.Float64bits(dot) {
		t.Fatalf("DotSlices = %v, want %v", DotSlices(x, y), dot)
	}
	if math.Float64bits(SumSlice(x)) != math.Float64bits(sum) {
		t.Fatalf("SumSlice = %v, want %v", SumSlice(x), sum)
	}

	z := make([]float64, 4)
	FillSlice(z, -3.5)
	for i, v := range z {
		if v != -3.5 {
			t.Fatalf("z[%d] = %v after FillSlice", i, v)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("DotSlices length mismatch did not panic")
		}
	}()
	DotSlices(x, y[:2])
}
