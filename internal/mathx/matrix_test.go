package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Inc(1, 2, 2)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 {
		t.Fatalf("At values wrong: %v %v", m.At(0, 0), m.At(1, 2))
	}
}

func TestIdentityMulVec(t *testing.T) {
	m := Identity(4)
	x := Vector{1, 2, 3, 4}
	y := m.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I·x = %v", y)
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	vals := []float64{1, 2, 3, 4, 5, 6}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, vals[i*3+j])
		}
	}
	valsB := []float64{7, 8, 9, 10, 11, 12}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			b.Set(i, j, valsB[i*2+j])
		}
	}
	c := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	a.Set(0, 1, 5)
	a.Set(1, 2, -3)
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows(), at.Cols())
	}
	if at.At(1, 0) != 5 || at.At(2, 1) != -3 {
		t.Fatal("transpose values wrong")
	}
}

func TestOuterAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.OuterAdd(2, Vector{1, 2}, Vector{3, 4})
	want := [][]float64{{6, 8}, {12, 16}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("OuterAdd[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestAddScaled(t *testing.T) {
	a := Identity(2)
	b := Identity(2)
	a.AddScaled(3, b)
	if a.At(0, 0) != 4 || a.At(1, 1) != 4 || a.At(0, 1) != 0 {
		t.Fatal("AddScaled wrong")
	}
}

func TestSymmetricMaxDiff(t *testing.T) {
	m := Identity(3)
	if m.SymmetricMaxDiff() != 0 {
		t.Fatal("identity should be symmetric")
	}
	m.Set(0, 2, 1)
	if m.SymmetricMaxDiff() != 1 {
		t.Fatalf("SymmetricMaxDiff = %v", m.SymmetricMaxDiff())
	}
	r := NewMatrix(2, 3)
	if !math.IsInf(r.SymmetricMaxDiff(), 1) {
		t.Fatal("non-square should report +Inf")
	}
}

// randomSPD builds A = Bᵀ·B + εI, guaranteed symmetric positive definite.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Inc(i, i, 0.5)
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		l, err := a.Cholesky()
		if err != nil {
			t.Fatalf("Cholesky failed: %v", err)
		}
		rec := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(rec.At(i, j), a.At(i, j), 1e-8*(1+math.Abs(a.At(i, j)))) {
					t.Fatalf("trial %d: L·Lᵀ ≠ A at (%d,%d): %v vs %v", trial, i, j, rec.At(i, j), a.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := Identity(2)
	m.Set(1, 1, -1)
	if _, err := m.Cholesky(); err == nil {
		t.Fatal("Cholesky should reject an indefinite matrix")
	}
	r := NewMatrix(2, 3)
	if _, err := r.Cholesky(); err == nil {
		t.Fatal("Cholesky should reject a non-square matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := a.SolveSPD(b)
		if err != nil {
			t.Fatalf("SolveSPD: %v", err)
		}
		if diff := got.Sub(want).Norm2(); diff > 1e-7*(1+want.Norm2()) {
			t.Fatalf("trial %d: solution error %v", trial, diff)
		}
	}
}

// Property: (AB)ᵀ = BᵀAᵀ on small random matrices.
func TestTransposeOfProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewMatrix(3, 4)
		b := NewMatrix(4, 2)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 2; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		lhs := a.Mul(b).Transpose()
		rhs := b.Transpose().Mul(a.Transpose())
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				if !almostEq(lhs.At(i, j), rhs.At(i, j), 1e-10) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong length should panic")
		}
	}()
	Identity(3).MulVec(Vector{1, 2})
}
