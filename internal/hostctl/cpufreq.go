package hostctl

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultSysfsRoot is the standard cpufreq location.
const DefaultSysfsRoot = "/sys/devices/system/cpu"

// CPUFreq drives per-core DVFS through the cpufreq sysfs interface — the
// paper's "server modulator".
type CPUFreq struct {
	fs   FS
	root string
}

// NewCPUFreq returns a driver rooted at root ("" selects the default).
func NewCPUFreq(fsys FS, root string) *CPUFreq {
	if root == "" {
		root = DefaultSysfsRoot
	}
	return &CPUFreq{fs: fsys, root: root}
}

// cpufreqPath returns the path of one attribute file of one core.
func (c *CPUFreq) cpufreqPath(core int, attr string) string {
	return filepath.Join(c.root, fmt.Sprintf("cpu%d", core), "cpufreq", attr)
}

// Cores lists the core indices that expose a cpufreq directory.
func (c *CPUFreq) Cores() ([]int, error) {
	matches, err := c.fs.Glob(filepath.Join(c.root, "cpu*", "cpufreq", "scaling_governor"))
	if err != nil {
		return nil, fmt.Errorf("hostctl: %w", err)
	}
	var cores []int
	for _, m := range matches {
		dir := filepath.Base(filepath.Dir(filepath.Dir(m))) // cpuN
		n, err := strconv.Atoi(strings.TrimPrefix(dir, "cpu"))
		if err != nil {
			continue // cpuidle, cpufreq, etc.
		}
		cores = append(cores, n)
	}
	sort.Ints(cores)
	if len(cores) == 0 {
		return nil, fmt.Errorf("hostctl: no cpufreq-capable cores under %s", c.root)
	}
	return cores, nil
}

// AvailableFreqsKHz returns a core's P-state table in kHz, ascending.
func (c *CPUFreq) AvailableFreqsKHz(core int) ([]int, error) {
	data, err := c.fs.ReadFile(c.cpufreqPath(core, "scaling_available_frequencies"))
	if err != nil {
		return nil, fmt.Errorf("hostctl: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return nil, fmt.Errorf("hostctl: cpu%d has an empty frequency table", core)
	}
	freqs := make([]int, 0, len(fields))
	for _, f := range fields {
		khz, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("hostctl: cpu%d: bad frequency %q", core, f)
		}
		freqs = append(freqs, khz)
	}
	sort.Ints(freqs)
	return freqs, nil
}

// SetGovernor selects a core's cpufreq governor. SprintCon needs
// "userspace" so that scaling_setspeed is honored.
func (c *CPUFreq) SetGovernor(core int, governor string) error {
	path := c.cpufreqPath(core, "scaling_governor")
	if err := c.fs.WriteFile(path, []byte(governor+"\n"), 0o644); err != nil {
		return fmt.Errorf("hostctl: set governor: %w", err)
	}
	return nil
}

// Governor reads a core's current governor.
func (c *CPUFreq) Governor(core int) (string, error) {
	data, err := c.fs.ReadFile(c.cpufreqPath(core, "scaling_governor"))
	if err != nil {
		return "", fmt.Errorf("hostctl: %w", err)
	}
	return strings.TrimSpace(string(data)), nil
}

// SetFreqKHz writes a core's target frequency (userspace governor).
func (c *CPUFreq) SetFreqKHz(core, khz int) error {
	path := c.cpufreqPath(core, "scaling_setspeed")
	if err := c.fs.WriteFile(path, []byte(strconv.Itoa(khz)+"\n"), 0o644); err != nil {
		return fmt.Errorf("hostctl: set frequency: %w", err)
	}
	return nil
}

// CurFreqKHz reads a core's current frequency.
func (c *CPUFreq) CurFreqKHz(core int) (int, error) {
	data, err := c.fs.ReadFile(c.cpufreqPath(core, "scaling_cur_freq"))
	if err != nil {
		return 0, fmt.Errorf("hostctl: %w", err)
	}
	khz, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return 0, fmt.Errorf("hostctl: bad scaling_cur_freq: %w", err)
	}
	return khz, nil
}

// Modulator applies the controller's continuous GHz commands to a host:
// it quantizes to each core's available table and writes sysfs, switching
// the governor to userspace on first use.
type Modulator struct {
	cf     *CPUFreq
	tables map[int][]int // core → ascending kHz table
	armed  map[int]bool  // governor switched
}

// NewModulator discovers the host's cores and frequency tables.
func NewModulator(fsys FS, root string) (*Modulator, error) {
	cf := NewCPUFreq(fsys, root)
	cores, err := cf.Cores()
	if err != nil {
		return nil, err
	}
	m := &Modulator{cf: cf, tables: make(map[int][]int), armed: make(map[int]bool)}
	for _, core := range cores {
		tbl, err := cf.AvailableFreqsKHz(core)
		if err != nil {
			return nil, err
		}
		m.tables[core] = tbl
	}
	return m, nil
}

// Cores returns the discovered core indices, ascending.
func (m *Modulator) Cores() []int {
	out := make([]int, 0, len(m.tables))
	for c := range m.tables {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// MaxGHz returns a core's top frequency in GHz (0 for unknown cores).
func (m *Modulator) MaxGHz(core int) float64 {
	tbl := m.tables[core]
	if len(tbl) == 0 {
		return 0
	}
	return float64(tbl[len(tbl)-1]) / 1e6
}

// Apply sets a core to the nearest available frequency to ghz.
func (m *Modulator) Apply(core int, ghz float64) error {
	tbl, ok := m.tables[core]
	if !ok {
		return fmt.Errorf("hostctl: unknown core %d", core)
	}
	if !m.armed[core] {
		if err := m.cf.SetGovernor(core, "userspace"); err != nil {
			return err
		}
		m.armed[core] = true
	}
	target := int(ghz * 1e6)
	best := tbl[0]
	bestDiff := abs(target - best)
	for _, khz := range tbl[1:] {
		if d := abs(target - khz); d < bestDiff {
			best, bestDiff = khz, d
		}
	}
	return m.cf.SetFreqKHz(core, best)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
