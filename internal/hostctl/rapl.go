package hostctl

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultRAPLRoot is the standard Linux powercap location.
const DefaultRAPLRoot = "/sys/class/powercap"

// RAPLSampler reads CPU package power from the Linux powercap (Intel RAPL)
// interface — the host-side realization of the paper's "power monitor".
// Each intel-rapl:N directory exposes a monotonically increasing energy_uj
// counter that wraps at max_energy_range_uj; power is the energy delta over
// the sampling interval.
type RAPLSampler struct {
	fs   FS
	root string
	// per-domain previous counter and wrap range
	last   map[string]uint64
	ranges map[string]uint64
}

// NewRAPLSampler discovers the RAPL domains under root ("" selects the
// default). It returns an error when no domain exposes an energy counter.
func NewRAPLSampler(fsys FS, root string) (*RAPLSampler, error) {
	if root == "" {
		root = DefaultRAPLRoot
	}
	s := &RAPLSampler{
		fs:     fsys,
		root:   root,
		last:   make(map[string]uint64),
		ranges: make(map[string]uint64),
	}
	domains, err := s.Domains()
	if err != nil {
		return nil, err
	}
	for _, d := range domains {
		rng, err := s.readUint(filepath.Join(root, d, "max_energy_range_uj"))
		if err != nil {
			// A missing range file disables wrap handling for the
			// domain but does not reject the host.
			rng = 0
		}
		s.ranges[d] = rng
	}
	return s, nil
}

// Domains lists the package-level RAPL domains (intel-rapl:N), sorted.
func (s *RAPLSampler) Domains() ([]string, error) {
	matches, err := s.fs.Glob(filepath.Join(s.root, "intel-rapl:*", "energy_uj"))
	if err != nil {
		return nil, fmt.Errorf("hostctl: %w", err)
	}
	var out []string
	for _, m := range matches {
		name := filepath.Base(filepath.Dir(m))
		// Package domains only: exclude sub-domains like intel-rapl:0:0
		// (their energy is contained in the parent's counter).
		if strings.Count(name, ":") == 1 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("hostctl: no RAPL package domains under %s", s.root)
	}
	return out, nil
}

// Sample reads every domain's energy counter and returns the average power
// in watts per domain since the previous call, given the elapsed seconds.
// The first call primes the counters and returns an empty map.
func (s *RAPLSampler) Sample(elapsedS float64) (map[string]float64, error) {
	if elapsedS <= 0 {
		return nil, fmt.Errorf("hostctl: elapsed must be positive")
	}
	domains, err := s.Domains()
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, d := range domains {
		cur, err := s.readUint(filepath.Join(s.root, d, "energy_uj"))
		if err != nil {
			return nil, err
		}
		prev, ok := s.last[d]
		s.last[d] = cur
		if !ok {
			continue
		}
		var deltaUJ uint64
		if cur >= prev {
			deltaUJ = cur - prev
		} else if rng := s.ranges[d]; rng > 0 {
			deltaUJ = rng - prev + cur // counter wrapped
		} else {
			continue // wrap with unknown range: skip this interval
		}
		out[d] = float64(deltaUJ) / 1e6 / elapsedS
	}
	return out, nil
}

// TotalPowerW sums the per-domain powers of one Sample call.
func TotalPowerW(sample map[string]float64) float64 {
	var sum float64
	for _, w := range sample {
		sum += w
	}
	return sum
}

// readUint parses a sysfs integer file.
func (s *RAPLSampler) readUint(path string) (uint64, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("hostctl: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("hostctl: bad counter in %s: %w", path, err)
	}
	return v, nil
}

// SeedFakeRAPL populates a MapFS with a RAPL tree of n package domains,
// each with the given wrap range in µJ and a zeroed energy counter.
func SeedFakeRAPL(m *MapFS, n int, rangeUJ uint64) {
	for i := 0; i < n; i++ {
		base := fmt.Sprintf("%s/intel-rapl:%d", DefaultRAPLRoot, i)
		m.Set(base+"/energy_uj", "0\n")
		m.Set(base+"/max_energy_range_uj", fmt.Sprintf("%d\n", rangeUJ))
		// A core sub-domain that must be excluded from package sums.
		sub := fmt.Sprintf("%s/intel-rapl:%d:0", DefaultRAPLRoot, i)
		m.Set(sub+"/energy_uj", "0\n")
	}
}
