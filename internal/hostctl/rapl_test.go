package hostctl

import (
	"fmt"
	"math"
	"testing"
)

func fakeRAPL(t *testing.T) (*MapFS, *RAPLSampler) {
	t.Helper()
	m := NewMapFS()
	SeedFakeRAPL(m, 2, 262143328850)
	s, err := NewRAPLSampler(m, "")
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func setEnergy(m *MapFS, domain int, uj uint64) {
	m.Set(fmt.Sprintf("%s/intel-rapl:%d/energy_uj", DefaultRAPLRoot, domain),
		fmt.Sprintf("%d\n", uj))
}

func TestRAPLDomainsExcludeSubdomains(t *testing.T) {
	_, s := fakeRAPL(t)
	domains, err := s.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 2 || domains[0] != "intel-rapl:0" || domains[1] != "intel-rapl:1" {
		t.Fatalf("domains = %v", domains)
	}
}

func TestRAPLSampleComputesWatts(t *testing.T) {
	m, s := fakeRAPL(t)
	first, err := s.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 0 {
		t.Fatalf("first sample should prime, got %v", first)
	}
	// 50 J on package 0 and 30 J on package 1 over 2 s → 25 W and 15 W.
	setEnergy(m, 0, 50_000_000)
	setEnergy(m, 1, 30_000_000)
	got, err := s.Sample(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["intel-rapl:0"]-25) > 1e-9 || math.Abs(got["intel-rapl:1"]-15) > 1e-9 {
		t.Fatalf("sample = %v", got)
	}
	if w := TotalPowerW(got); math.Abs(w-40) > 1e-9 {
		t.Fatalf("total = %v", w)
	}
}

func TestRAPLWraparound(t *testing.T) {
	m := NewMapFS()
	const rng = 1_000_000 // tiny 1 J wrap range for the test
	SeedFakeRAPL(m, 1, rng)
	setEnergy(m, 0, 900_000)
	s, err := NewRAPLSampler(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(1); err != nil {
		t.Fatal(err)
	}
	setEnergy(m, 0, 100_000) // wrapped: 0.1 J + (1 − 0.9) J = 0.2 J
	got, err := s.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["intel-rapl:0"]-0.2) > 1e-9 {
		t.Fatalf("wrapped power = %v, want 0.2 W", got["intel-rapl:0"])
	}
}

func TestRAPLErrors(t *testing.T) {
	if _, err := NewRAPLSampler(NewMapFS(), ""); err == nil {
		t.Fatal("no domains should error")
	}
	m, s := fakeRAPL(t)
	if _, err := s.Sample(0); err == nil {
		t.Fatal("zero elapsed should error")
	}
	m.Set(DefaultRAPLRoot+"/intel-rapl:0/energy_uj", "garbage\n")
	if _, err := s.Sample(1); err == nil {
		t.Fatal("garbage counter should error")
	}
}
