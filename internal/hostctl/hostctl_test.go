package hostctl

import (
	"fmt"
	"strings"
	"testing"
)

func fakeHost(t *testing.T, cores int) *MapFS {
	t.Helper()
	m := NewMapFS()
	SeedFakeHost(m, cores, []int{400000, 800000, 1200000, 1600000, 2000000})
	return m
}

func TestMapFSBasics(t *testing.T) {
	m := NewMapFS()
	m.Set("/a/b", "hello")
	data, err := m.ReadFile("/a/b")
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := m.ReadFile("/missing"); err == nil {
		t.Fatal("missing file should error")
	}
	if err := m.WriteFile("/missing", []byte("x"), 0o644); err == nil {
		t.Fatal("writing a nonexistent sysfs file should error")
	}
	if err := m.WriteFile("/a/b", []byte("world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := m.Writes(); len(got) != 1 || got[0] != "/a/b=world" {
		t.Fatalf("Writes = %v", got)
	}
	// Mutating the returned slice must not affect stored data.
	data, _ = m.ReadFile("/a/b")
	data[0] = 'X'
	again, _ := m.ReadFile("/a/b")
	if string(again) != "world" {
		t.Fatal("ReadFile must return a copy")
	}
}

func TestMapFSGlob(t *testing.T) {
	m := NewMapFS()
	m.Set("/sys/cpu0/f", "1")
	m.Set("/sys/cpu1/f", "1")
	m.Set("/sys/other", "1")
	got, err := m.Glob("/sys/cpu*/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/sys/cpu0/f" {
		t.Fatalf("Glob = %v", got)
	}
}

func TestCoresDiscovery(t *testing.T) {
	m := fakeHost(t, 4)
	cf := NewCPUFreq(m, "")
	cores, err := cf.Cores()
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 4 || cores[0] != 0 || cores[3] != 3 {
		t.Fatalf("cores = %v", cores)
	}
	empty := NewCPUFreq(NewMapFS(), "")
	if _, err := empty.Cores(); err == nil {
		t.Fatal("no cores should error")
	}
}

func TestAvailableFreqs(t *testing.T) {
	m := fakeHost(t, 1)
	cf := NewCPUFreq(m, "")
	freqs, err := cf.AvailableFreqsKHz(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != 5 || freqs[0] != 400000 || freqs[4] != 2000000 {
		t.Fatalf("freqs = %v", freqs)
	}
	m.Set("/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies", "garbage\n")
	if _, err := cf.AvailableFreqsKHz(0); err == nil {
		t.Fatal("garbage table should error")
	}
}

func TestGovernorAndSetSpeed(t *testing.T) {
	m := fakeHost(t, 2)
	cf := NewCPUFreq(m, "")
	if gov, err := cf.Governor(1); err != nil || gov != "ondemand" {
		t.Fatalf("Governor = %q, %v", gov, err)
	}
	if err := cf.SetGovernor(1, "userspace"); err != nil {
		t.Fatal(err)
	}
	if gov, _ := cf.Governor(1); gov != "userspace" {
		t.Fatalf("governor after set = %q", gov)
	}
	if err := cf.SetFreqKHz(1, 1200000); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range m.Writes() {
		if strings.Contains(w, "cpu1/cpufreq/scaling_setspeed=1200000") {
			found = true
		}
	}
	if !found {
		t.Fatalf("setspeed write missing from %v", m.Writes())
	}
}

func TestCurFreq(t *testing.T) {
	m := fakeHost(t, 1)
	cf := NewCPUFreq(m, "")
	khz, err := cf.CurFreqKHz(0)
	if err != nil || khz != 400000 {
		t.Fatalf("CurFreqKHz = %d, %v", khz, err)
	}
	m.Set("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq", "notanumber\n")
	if _, err := cf.CurFreqKHz(0); err == nil {
		t.Fatal("bad cur_freq should error")
	}
}

func TestModulatorQuantizesAndArmsGovernor(t *testing.T) {
	m := fakeHost(t, 2)
	mod, err := NewModulator(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := mod.Cores(); len(got) != 2 {
		t.Fatalf("Cores = %v", got)
	}
	if got := mod.MaxGHz(0); got != 2.0 {
		t.Fatalf("MaxGHz = %v", got)
	}
	if mod.MaxGHz(99) != 0 {
		t.Fatal("unknown core MaxGHz should be 0")
	}
	// 1.234 GHz quantizes to the nearest table entry, 1.2 GHz.
	if err := mod.Apply(0, 1.234); err != nil {
		t.Fatal(err)
	}
	writes := m.Writes()
	if len(writes) != 2 {
		t.Fatalf("want governor write + setspeed write, got %v", writes)
	}
	if !strings.Contains(writes[0], "scaling_governor=userspace") {
		t.Fatalf("first write should arm the userspace governor: %v", writes[0])
	}
	if !strings.Contains(writes[1], "scaling_setspeed=1200000") {
		t.Fatalf("setspeed write = %v", writes[1])
	}
	// The governor is armed once per core, not per Apply.
	if err := mod.Apply(0, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Writes()); got != 3 {
		t.Fatalf("second Apply should add exactly one write, have %d", got)
	}
	if err := mod.Apply(7, 1.0); err == nil {
		t.Fatal("unknown core should error")
	}
}

func TestStatSamplerUtilization(t *testing.T) {
	m := NewMapFS()
	m.Set("/proc/stat", "cpu  0 0 0 0 0\ncpu0 100 0 100 800 0 0 0 0\ncpu1 50 0 50 900 0 0 0 0\n")
	s := NewStatSampler(m, "")
	first, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 0 {
		t.Fatalf("first sample should prime only, got %v", first)
	}
	// Advance: cpu0 +100 busy +100 idle (50 %); cpu1 +10 busy +90 idle (10 %).
	m.Set("/proc/stat", "cpu  0 0 0 0 0\ncpu0 150 0 150 900 0 0 0 0\ncpu1 55 0 55 990 0 0 0 0\n")
	got, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if u := got[0]; u < 0.49 || u > 0.51 {
		t.Fatalf("cpu0 util = %v, want 0.5", u)
	}
	if u := got[1]; u < 0.09 || u > 0.11 {
		t.Fatalf("cpu1 util = %v, want 0.1", u)
	}
}

func TestStatSamplerIdleIncludesIOWait(t *testing.T) {
	m := NewMapFS()
	m.Set("/proc/stat", "cpu0 0 0 0 0 0 0 0 0\n")
	s := NewStatSampler(m, "")
	if _, err := s.Sample(); err != nil {
		t.Fatal(err)
	}
	// +50 busy, +25 idle, +25 iowait → 50 % utilization.
	m.Set("/proc/stat", "cpu0 50 0 0 25 25 0 0 0\n")
	got, err := s.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if u := got[0]; u != 0.5 {
		t.Fatalf("util = %v, want 0.5 (iowait counted idle)", u)
	}
}

func TestStatSamplerErrors(t *testing.T) {
	m := NewMapFS()
	s := NewStatSampler(m, "")
	if _, err := s.Sample(); err == nil {
		t.Fatal("missing /proc/stat should error")
	}
	m.Set("/proc/stat", "cpu  1 2 3 4 5\n") // aggregate only, no per-core lines
	if _, err := s.Sample(); err == nil {
		t.Fatal("no per-core lines should error")
	}
	m.Set("/proc/stat", "cpu0 1 2 x 4 5\n")
	if _, err := s.Sample(); err == nil {
		t.Fatal("garbage jiffies should error")
	}
}

func TestSeedFakeHostShape(t *testing.T) {
	m := NewMapFS()
	SeedFakeHost(m, 3, []int{400000, 2000000})
	for c := 0; c < 3; c++ {
		path := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpufreq/scaling_available_frequencies", c)
		if _, err := m.ReadFile(path); err != nil {
			t.Fatalf("missing %s", path)
		}
	}
	if _, err := m.ReadFile("/proc/stat"); err != nil {
		t.Fatal("missing /proc/stat")
	}
}
