package hostctl

import (
	"fmt"
	"strconv"
	"strings"
)

// cpuTimes holds one /proc/stat cpu line's jiffy counters.
type cpuTimes struct {
	busy, idle uint64
}

// StatSampler computes per-core utilization between consecutive samples of
// /proc/stat — the paper's "server monitors report the utilization of each
// CPU core in the last control period".
type StatSampler struct {
	fs   FS
	path string
	last map[int]cpuTimes
}

// NewStatSampler returns a sampler reading path ("" selects /proc/stat).
func NewStatSampler(fsys FS, path string) *StatSampler {
	if path == "" {
		path = "/proc/stat"
	}
	return &StatSampler{fs: fsys, path: path, last: make(map[int]cpuTimes)}
}

// Sample reads /proc/stat and returns utilization per core since the
// previous call (first call primes the counters and returns an empty map).
func (s *StatSampler) Sample() (map[int]float64, error) {
	cur, err := s.read()
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64)
	for core, now := range cur {
		prev, ok := s.last[core]
		if !ok {
			continue
		}
		dBusy := now.busy - prev.busy
		dIdle := now.idle - prev.idle
		total := dBusy + dIdle
		if total > 0 {
			out[core] = float64(dBusy) / float64(total)
		}
	}
	s.last = cur
	return out, nil
}

// read parses the per-core lines of /proc/stat.
func (s *StatSampler) read() (map[int]cpuTimes, error) {
	data, err := s.fs.ReadFile(s.path)
	if err != nil {
		return nil, fmt.Errorf("hostctl: %w", err)
	}
	out := make(map[int]cpuTimes)
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 || !strings.HasPrefix(fields[0], "cpu") || fields[0] == "cpu" {
			continue
		}
		core, err := strconv.Atoi(strings.TrimPrefix(fields[0], "cpu"))
		if err != nil {
			continue
		}
		var vals []uint64
		for _, f := range fields[1:] {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("hostctl: bad /proc/stat field %q", f)
			}
			vals = append(vals, v)
		}
		// user nice system idle iowait irq softirq steal ...
		var t cpuTimes
		for i, v := range vals {
			if i == 3 || i == 4 { // idle + iowait
				t.idle += v
			} else {
				t.busy += v
			}
		}
		out[core] = t
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hostctl: no per-core lines in %s", s.path)
	}
	return out, nil
}
