// Package hostctl adapts SprintCon's server power controller to a real
// Linux host: the "server modulators adjust the frequencies of CPU cores
// (e.g., with writing system files)" step of paper Section IV-C, and the
// "server monitors report the utilization of each CPU core" step, are
// implemented against the cpufreq sysfs interface and /proc/stat. All file
// access goes through a small FS interface so the package is fully testable
// (and demonstrable) with an in-memory fake.
package hostctl

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the file-access surface hostctl needs. OSFS touches the real
// system; MapFS is an in-memory fake for tests and demos.
type FS interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte, perm fs.FileMode) error
	Glob(pattern string) ([]string, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile implements FS.
func (OSFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(path, data, perm)
}

// Glob implements FS.
func (OSFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// MapFS is an in-memory FS keyed by absolute path. The zero value is not
// usable; create with NewMapFS. It is safe for concurrent use.
type MapFS struct {
	mu    sync.Mutex
	files map[string][]byte
	// Writes records every WriteFile in order (path=data), so tests and
	// demos can assert exactly what would have been written to sysfs.
	writes []string
}

// NewMapFS returns an empty in-memory filesystem.
func NewMapFS() *MapFS {
	return &MapFS{files: make(map[string][]byte)}
}

// Set seeds a file.
func (m *MapFS) Set(path, content string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = []byte(content)
}

// ReadFile implements FS.
func (m *MapFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// WriteFile implements FS.
func (m *MapFS) WriteFile(path string, data []byte, _ fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return &fs.PathError{Op: "write", Path: path, Err: fs.ErrNotExist}
	}
	m.files[path] = append([]byte(nil), data...)
	m.writes = append(m.writes, path+"="+string(data))
	return nil
}

// Glob implements FS (supports the patterns hostctl uses).
func (m *MapFS) Glob(pattern string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for path := range m.files {
		ok, err := filepath.Match(pattern, path)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Writes returns the ordered log of writes ("path=data").
func (m *MapFS) Writes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.writes))
	copy(out, m.writes)
	return out
}

// SeedFakeHost populates a MapFS with a cpufreq sysfs tree and /proc/stat
// for n cores with the given available frequencies (kHz), matching what
// hostctl expects of a Linux host.
func SeedFakeHost(m *MapFS, n int, freqsKHz []int) {
	avail := ""
	for i, f := range freqsKHz {
		if i > 0 {
			avail += " "
		}
		avail += fmt.Sprintf("%d", f)
	}
	for c := 0; c < n; c++ {
		base := fmt.Sprintf("/sys/devices/system/cpu/cpu%d/cpufreq", c)
		m.Set(base+"/scaling_available_frequencies", avail+"\n")
		m.Set(base+"/scaling_governor", "ondemand\n")
		m.Set(base+"/scaling_setspeed", "<unsupported>\n")
		m.Set(base+"/scaling_cur_freq", fmt.Sprintf("%d\n", freqsKHz[0]))
	}
	stat := "cpu  0 0 0 0 0 0 0 0 0 0\n"
	for c := 0; c < n; c++ {
		stat += fmt.Sprintf("cpu%d 100 0 50 800 50 0 0 0 0 0\n", c)
	}
	m.Set("/proc/stat", stat)
}
