// Package server models one data-center server: a multi-core CPU with
// per-core DVFS plus the two power models the paper distinguishes.
//
// The *measurement* model (used by the simulation to play the role of the
// physical rack and its power monitor) follows Horvath & Skadron [29]: power
// depends on both frequency and utilization, with a super-linear frequency
// term and a fan/ambient disturbance. The *design* model used by SprintCon's
// controllers is the deliberately simpler linear form of paper Eq. (1)–(2):
// p_i = K_i·f_i + C_i. Evaluating the controller against the richer model is
// exactly how the paper demonstrates robustness to modeling error
// (Section VI-A).
package server

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/cpu"
)

// Params describes a server model.
type Params struct {
	// IdleW is the power at zero utilization (paper: 150 W).
	IdleW float64
	// MaxW is the power fully loaded at peak frequency (paper: 300 W).
	MaxW float64
	// Cores is the number of CPU cores (paper: two 4-core CPUs → 8).
	Cores int
	// PStates is the DVFS table shared by all cores.
	PStates cpu.PStateTable
	// Alpha splits per-core dynamic power between a linear and a cubic
	// frequency term: dyn ∝ u·(α·f̂ + (1−α)·f̂³) with f̂ = f/f_max.
	// α < 1 makes the true model super-linear in f, so the controller's
	// linear design model carries a realistic error.
	Alpha float64
	// FanW scales the fan/ambient disturbance added to measured power.
	// Zero disables the disturbance.
	FanW float64
}

// DefaultParams returns the paper's evaluation server: 150 W idle, 300 W
// full, 8 cores at 0.4–2.0 GHz.
func DefaultParams() Params {
	return Params{
		IdleW:   150,
		MaxW:    300,
		Cores:   8,
		PStates: cpu.DefaultPStates(),
		Alpha:   0.4,
		FanW:    6,
	}
}

// Validate reports structural errors in the parameters.
func (p Params) Validate() error {
	switch {
	case p.IdleW <= 0:
		return errors.New("server: IdleW must be positive")
	case p.MaxW <= p.IdleW:
		return errors.New("server: MaxW must exceed IdleW")
	case p.Cores <= 0:
		return errors.New("server: Cores must be positive")
	case p.PStates.Len() == 0:
		return errors.New("server: empty P-state table")
	case p.Alpha < 0 || p.Alpha > 1:
		return errors.New("server: Alpha must be in [0, 1]")
	case p.FanW < 0:
		return errors.New("server: FanW must be non-negative")
	}
	return nil
}

// perCoreMaxW returns the dynamic power of one fully-utilized core at peak
// frequency.
func (p Params) perCoreMaxW() float64 {
	return (p.MaxW - p.IdleW) / float64(p.Cores)
}

// coreDynamicW is the measurement model's per-core dynamic power.
func (p Params) coreDynamicW(freqGHz, util float64) float64 {
	fn := freqGHz / p.PStates.Max()
	return p.perCoreMaxW() * util * (p.Alpha*fn + (1-p.Alpha)*fn*fn*fn)
}

// Environment carries the rack-level disturbance inputs the controllers do
// not model (paper Section V-A: fan power depends on the temperature set
// point and ambient air temperature).
type Environment struct {
	// AmbientC is the inlet air temperature in °C (nominal 25).
	AmbientC float64
}

// Server is one server's mutable state.
type Server struct {
	id  int
	p   Params
	cpu *cpu.CPU
}

// New returns a server with all cores idle at the lowest P-state.
func New(id int, p Params) (*Server, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c, err := cpu.New(p.Cores, p.PStates)
	if err != nil {
		return nil, err
	}
	return &Server{id: id, p: p, cpu: c}, nil
}

// ID returns the server's identifier.
func (s *Server) ID() int { return s.id }

// Params returns the server's model parameters.
func (s *Server) Params() Params { return s.p }

// CPU exposes the server's cores for class/frequency/utilization updates.
func (s *Server) CPU() *cpu.CPU { return s.cpu }

// fanW is the unmodeled disturbance: grows super-linearly with the dynamic
// load and with ambient temperature above the 25 °C set point.
func (s *Server) fanW(dynW float64, env Environment) float64 {
	if s.p.FanW == 0 {
		return 0
	}
	loadFrac := dynW / (s.p.MaxW - s.p.IdleW)
	tempFactor := 1 + 0.04*(env.AmbientC-25)
	if tempFactor < 0 {
		tempFactor = 0
	}
	return s.p.FanW * math.Pow(loadFrac, 1.5) * tempFactor
}

// Power returns the measured server power (measurement model + fan). The
// summation runs fused over the CPU's struct-of-arrays frequency and
// utilization slices with hoisted constants; every per-core operation is
// performed in the same order as the scalar model, so the result is
// bit-identical to summing coreDynamicW per core.
func (s *Server) Power(env Environment) float64 {
	freqs, utils := s.cpu.Freqs(), s.cpu.Utils()
	pcm := s.p.perCoreMaxW()
	fmax := s.p.PStates.Max()
	a := s.p.Alpha
	b := 1 - s.p.Alpha
	var dyn float64
	for i, f := range freqs {
		fn := f / fmax
		dyn += pcm * utils[i] * (a*fn + b*fn*fn*fn)
	}
	return s.p.IdleW + dyn + s.fanW(dyn, env)
}

// PowerOfClass returns this server's ground-truth power attributable to
// cores of class cl, following the paper's Eq. (1) attribution: each core
// carries its dynamic power plus an equal share c_i·m_i/M_i of the
// frequency-independent power (the fan disturbance is attributed
// proportionally to dynamic power).
func (s *Server) PowerOfClass(cl cpu.Class, env Environment) float64 {
	var dynClass, dynTotal float64
	var nClass int
	for i := 0; i < s.cpu.NumCores(); i++ {
		c := s.cpu.Core(i)
		d := s.p.coreDynamicW(c.Freq, c.Util)
		dynTotal += d
		if c.Class == cl {
			dynClass += d
			nClass++
		}
	}
	idleShare := s.p.IdleW * float64(nClass) / float64(s.cpu.NumCores())
	fan := s.fanW(dynTotal, env)
	fanShare := 0.0
	if dynTotal > 0 {
		fanShare = fan * dynClass / dynTotal
	}
	return idleShare + dynClass + fanShare
}

// --- Design (controller) model --------------------------------------------

// LinearCoeffs holds the per-core constants of the controllers' linear
// design model (paper Eq. 1): p_core ≈ KWPerGHz·f + CIdleShareW.
type LinearCoeffs struct {
	KWPerGHz    float64 // slope of power versus core frequency
	CIdleShareW float64 // frequency-independent share per core
}

// DesignCoeffs linearizes the measurement model across the frequency range
// at the given reference utilization (batch cores run nearly saturated, so
// the paper's linearization at constant utilization is a good fit there).
func (p Params) DesignCoeffs(refUtil float64) LinearCoeffs {
	fmin, fmax := p.PStates.Min(), p.PStates.Max()
	dLo := p.coreDynamicW(fmin, refUtil)
	dHi := p.coreDynamicW(fmax, refUtil)
	k := (dHi - dLo) / (fmax - fmin)
	c := p.IdleW/float64(p.Cores) + dLo - k*fmin
	return LinearCoeffs{KWPerGHz: k, CIdleShareW: c}
}

// InteractiveCoeffs returns the per-core constants of the paper's Eq. (5)
// interactive power model p = K'·u + C', valid because interactive cores run
// at peak frequency during sprinting: at f = f_max the measurement model's
// dynamic power is exactly perCoreMax·u.
func (p Params) InteractiveCoeffs() LinearCoeffs {
	return LinearCoeffs{
		KWPerGHz:    p.perCoreMaxW(), // here: watts per unit utilization
		CIdleShareW: p.IdleW / float64(p.Cores),
	}
}

// String identifies the server in logs.
func (s *Server) String() string {
	return fmt.Sprintf("server%02d(%d cores)", s.id, s.cpu.NumCores())
}
