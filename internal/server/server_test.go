package server

import (
	"math"
	"testing"
	"testing/quick"

	"sprintcon/internal/cpu"
)

func mustNew(t *testing.T) *Server {
	t.Helper()
	s, err := New(0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func env() Environment { return Environment{AmbientC: 25} }

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero idle", func(p *Params) { p.IdleW = 0 }},
		{"max below idle", func(p *Params) { p.MaxW = 100 }},
		{"zero cores", func(p *Params) { p.Cores = 0 }},
		{"empty pstates", func(p *Params) { p.PStates = cpu.PStateTable{} }},
		{"bad alpha", func(p *Params) { p.Alpha = 1.5 }},
		{"negative fan", func(p *Params) { p.FanW = -1 }},
	}
	for _, tc := range cases {
		p := DefaultParams()
		tc.mutate(&p)
		if _, err := New(0, p); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestIdlePowerIs150W(t *testing.T) {
	s := mustNew(t)
	if got := s.Power(env()); math.Abs(got-150) > 1e-9 {
		t.Fatalf("idle power = %v, want 150", got)
	}
}

func TestFullLoadPeakPowerNear300W(t *testing.T) {
	s := mustNew(t)
	for i := 0; i < s.CPU().NumCores(); i++ {
		s.CPU().SetClass(i, cpu.Batch)
		s.CPU().SetFreq(i, 2.0)
		s.CPU().SetUtil(i, 1)
	}
	got := s.Power(env())
	// 300 W plus the small fan disturbance at full load.
	if got < 300 || got > 300+s.Params().FanW+1 {
		t.Fatalf("full-load power = %v, want ≈300 (+fan)", got)
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	s := mustNew(t)
	for i := 0; i < 8; i++ {
		s.CPU().SetClass(i, cpu.Batch)
		s.CPU().SetUtil(i, 0.9)
	}
	prev := 0.0
	for _, f := range s.Params().PStates.Freqs() {
		for i := 0; i < 8; i++ {
			s.CPU().SetFreq(i, f)
		}
		p := s.Power(env())
		if p <= prev {
			t.Fatalf("power not increasing at f=%v: %v <= %v", f, p, prev)
		}
		prev = p
	}
}

func TestPowerSuperLinearInFrequency(t *testing.T) {
	// The measurement model must be super-linear so the controller's
	// linear design model has real error to reject.
	s := mustNew(t)
	for i := 0; i < 8; i++ {
		s.CPU().SetClass(i, cpu.Batch)
		s.CPU().SetUtil(i, 1)
	}
	powerAt := func(f float64) float64 {
		for i := 0; i < 8; i++ {
			s.CPU().SetFreq(i, f)
		}
		return s.Power(env())
	}
	lo, mid, hi := powerAt(0.4), powerAt(1.2), powerAt(2.0)
	// Convexity check: the chord midpoint exceeds the curve midpoint.
	if (lo+hi)/2 <= mid {
		t.Fatalf("power curve not convex: ends %v/%v mid %v", lo, hi, mid)
	}
}

func TestPowerScalesWithUtilization(t *testing.T) {
	s := mustNew(t)
	s.CPU().SetClass(0, cpu.Interactive)
	s.CPU().SetFreq(0, 2.0)
	s.CPU().SetUtil(0, 0.5)
	half := s.Power(env()) - 150
	s.CPU().SetUtil(0, 1.0)
	full := s.Power(env()) - 150
	if half <= 0 || full <= half {
		t.Fatalf("dynamic power should grow with utilization: %v vs %v", half, full)
	}
}

func TestFanDisturbanceRespondsToAmbient(t *testing.T) {
	s := mustNew(t)
	for i := 0; i < 8; i++ {
		s.CPU().SetClass(i, cpu.Batch)
		s.CPU().SetFreq(i, 2.0)
		s.CPU().SetUtil(i, 1)
	}
	cool := s.Power(Environment{AmbientC: 20})
	hot := s.Power(Environment{AmbientC: 35})
	if hot <= cool {
		t.Fatalf("hotter ambient should raise fan power: %v vs %v", hot, cool)
	}
}

func TestPowerOfClassPartitionsTotal(t *testing.T) {
	s := mustNew(t)
	for i := 0; i < 4; i++ {
		s.CPU().SetClass(i, cpu.Interactive)
		s.CPU().SetFreq(i, 2.0)
		s.CPU().SetUtil(i, 0.7)
	}
	for i := 4; i < 8; i++ {
		s.CPU().SetClass(i, cpu.Batch)
		s.CPU().SetFreq(i, 1.1)
		s.CPU().SetUtil(i, 0.95)
	}
	total := s.Power(env())
	sum := s.PowerOfClass(cpu.Interactive, env()) +
		s.PowerOfClass(cpu.Batch, env()) +
		s.PowerOfClass(cpu.Idle, env())
	if math.Abs(total-sum) > 1e-9 {
		t.Fatalf("class powers %v do not sum to total %v", sum, total)
	}
}

// Property: class partition holds for arbitrary core states.
func TestPowerOfClassPartitionProperty(t *testing.T) {
	f := func(freqs [8]float64, utils [8]float64, classes [8]uint8) bool {
		s, err := New(0, DefaultParams())
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			s.CPU().SetClass(i, cpu.Class(classes[i]%3))
			s.CPU().SetFreq(i, 0.4+math.Mod(math.Abs(freqs[i]), 1.6))
			s.CPU().SetUtil(i, math.Mod(math.Abs(utils[i]), 1))
		}
		e := Environment{AmbientC: 28}
		total := s.Power(e)
		sum := s.PowerOfClass(cpu.Interactive, e) + s.PowerOfClass(cpu.Batch, e) + s.PowerOfClass(cpu.Idle, e)
		return math.Abs(total-sum) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDesignCoeffsApproximateMeasurement(t *testing.T) {
	p := DefaultParams()
	co := p.DesignCoeffs(0.9)
	if co.KWPerGHz <= 0 {
		t.Fatalf("K = %v, want positive", co.KWPerGHz)
	}
	// The linear model should track the true per-core power within a
	// bounded error over the frequency range at the reference utilization.
	for _, f := range p.PStates.Freqs() {
		truth := p.IdleW/float64(p.Cores) + p.coreDynamicW(f, 0.9)
		approx := co.KWPerGHz*f + co.CIdleShareW
		if math.Abs(truth-approx) > 0.25*p.perCoreMaxW() {
			t.Fatalf("linear model error too large at f=%v: truth %v approx %v", f, truth, approx)
		}
	}
	// Exact at the secant endpoints.
	for _, f := range []float64{p.PStates.Min(), p.PStates.Max()} {
		truth := p.IdleW/float64(p.Cores) + p.coreDynamicW(f, 0.9)
		approx := co.KWPerGHz*f + co.CIdleShareW
		if math.Abs(truth-approx) > 1e-9 {
			t.Fatalf("secant endpoint mismatch at f=%v", f)
		}
	}
}

func TestInteractiveCoeffsExactAtPeak(t *testing.T) {
	p := DefaultParams()
	co := p.InteractiveCoeffs()
	for _, u := range []float64{0, 0.3, 0.7, 1} {
		truth := p.IdleW/float64(p.Cores) + p.coreDynamicW(p.PStates.Max(), u)
		approx := co.KWPerGHz*u + co.CIdleShareW
		if math.Abs(truth-approx) > 1e-9 {
			t.Fatalf("Eq.(5) model wrong at u=%v: truth %v approx %v", u, truth, approx)
		}
	}
}

func TestStringer(t *testing.T) {
	s := mustNew(t)
	if s.String() == "" || s.ID() != 0 {
		t.Fatal("String/ID broken")
	}
}
