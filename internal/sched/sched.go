// Package sched provides the batch-job front end a production SprintCon
// deployment needs: the paper assumes each batch core already holds a job
// with a deadline "in minutes after being postponed" (Section I), which
// implies a queue and an admission decision upstream. This package supplies
// both: an EDF (earliest-deadline-first) dispatch queue with release times,
// and a fluid-schedulability admission test that decides — given the rack's
// batch cores and the average frequency the power budget sustains — whether
// a new job can be accepted without endangering the existing deadlines.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"sprintcon/internal/workload"
)

// Job is a schedulable batch job.
type Job struct {
	// ID names the job (unique within a queue).
	ID string
	// Spec is the workload model (progress/DVFS behaviour).
	Spec workload.BatchSpec
	// ReleaseS is the earliest start time; DeadlineS the absolute
	// completion deadline.
	ReleaseS  float64
	DeadlineS float64
	// WorkScale multiplies Spec.PeakSeconds (≤ 0 means 1).
	WorkScale float64
}

// WorkPeakS returns the job's work in peak-seconds.
func (j Job) WorkPeakS() float64 {
	scale := j.WorkScale
	if scale <= 0 {
		scale = 1
	}
	return j.Spec.PeakSeconds * scale
}

// WallSecondsAt returns the job's execution time at frequency f.
func (j Job) WallSecondsAt(f, fmax float64) float64 {
	r := j.Spec.Rate(f, fmax)
	if r <= 0 {
		return 0
	}
	return j.WorkPeakS() / r
}

// Validate reports structural errors in the job.
func (j Job) Validate() error {
	if j.ID == "" {
		return errors.New("sched: job needs an ID")
	}
	if err := j.Spec.Validate(); err != nil {
		return err
	}
	if j.DeadlineS <= j.ReleaseS {
		return fmt.Errorf("sched: job %s: deadline %g not after release %g", j.ID, j.DeadlineS, j.ReleaseS)
	}
	return nil
}

// Queue is an EDF dispatch queue. Not safe for concurrent use.
type Queue struct {
	pending []Job
	ids     map[string]bool
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{ids: make(map[string]bool)}
}

// Len returns the number of pending jobs.
func (q *Queue) Len() int { return len(q.pending) }

// Pending returns a copy of the pending jobs.
func (q *Queue) Pending() []Job {
	out := make([]Job, len(q.pending))
	copy(out, q.pending)
	return out
}

// Add enqueues a job without admission control.
func (q *Queue) Add(j Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if q.ids[j.ID] {
		return fmt.Errorf("sched: duplicate job ID %q", j.ID)
	}
	q.ids[j.ID] = true
	q.pending = append(q.pending, j)
	return nil
}

// PopEDF removes and returns the released job with the earliest deadline
// (ties broken by ID for determinism). ok is false when nothing is
// released at time now.
func (q *Queue) PopEDF(now float64) (Job, bool) {
	best := -1
	for i, j := range q.pending {
		if j.ReleaseS > now {
			continue
		}
		if best < 0 ||
			j.DeadlineS < q.pending[best].DeadlineS ||
			(j.DeadlineS == q.pending[best].DeadlineS && j.ID < q.pending[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return Job{}, false
	}
	j := q.pending[best]
	q.pending = append(q.pending[:best], q.pending[best+1:]...)
	delete(q.ids, j.ID)
	return j, true
}

// Feasible applies the fluid (processor-sharing) schedulability test: for
// every deadline d among the jobs, the total wall-time demand of jobs due
// by d — each converted to wall seconds at the sustainable frequency f —
// must fit into cores·(d − now) machine-seconds, counting release times.
// This is exact for the fluid/migrating model (McNaughton) and a close,
// slightly optimistic bound for non-migrating EDF; the caller should keep
// a margin (the power load allocator's DeadlineMargin plays that role).
// The returned reason names the first violated deadline.
func Feasible(now float64, jobs []Job, cores int, fGHz, fmaxGHz float64) (bool, string) {
	if cores <= 0 {
		return false, "no cores"
	}
	sorted := make([]Job, len(jobs))
	copy(sorted, jobs)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].DeadlineS < sorted[b].DeadlineS })
	for i := range sorted {
		d := sorted[i].DeadlineS
		if d <= now {
			return false, fmt.Sprintf("job %s deadline already passed", sorted[i].ID)
		}
		var demand float64
		for _, j := range sorted[:i+1] {
			w := j.WallSecondsAt(fGHz, fmaxGHz)
			if w == 0 {
				return false, fmt.Sprintf("job %s cannot run at %g GHz", j.ID, fGHz)
			}
			// A job released in the future can only demand time
			// after its release.
			demand += w
			if avail := d - j.ReleaseS; avail < w && j.ReleaseS > now {
				return false, fmt.Sprintf("job %s cannot fit between release and deadline", j.ID)
			}
		}
		if demand > float64(cores)*(d-now) {
			return false, fmt.Sprintf("demand %.0fs exceeds %d cores x %.0fs by deadline %.0f",
				demand, cores, d-now, d)
		}
	}
	return true, ""
}

// Admit enqueues the job only if the queue (plus the job) remains feasible
// on the given capacity; the boolean reports the decision and reason the
// rejection cause.
func (q *Queue) Admit(now float64, j Job, cores int, fGHz, fmaxGHz float64) (bool, string, error) {
	if err := j.Validate(); err != nil {
		return false, "", err
	}
	if q.ids[j.ID] {
		return false, "", fmt.Errorf("sched: duplicate job ID %q", j.ID)
	}
	candidate := append(q.Pending(), j)
	ok, reason := Feasible(now, candidate, cores, fGHz, fmaxGHz)
	if !ok {
		return false, reason, nil
	}
	return true, "", q.Add(j)
}
