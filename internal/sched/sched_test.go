package sched

import (
	"fmt"
	"math"
	"testing"

	"sprintcon/internal/workload"
)

func spec(beta float64) workload.BatchSpec {
	return workload.BatchSpec{Name: "b", MemBound: beta, Util: 0.95, PeakSeconds: 100}
}

func job(id string, release, deadline float64) Job {
	return Job{ID: id, Spec: spec(0), ReleaseS: release, DeadlineS: deadline}
}

func TestJobValidate(t *testing.T) {
	if err := job("a", 0, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := job("", 0, 100)
	if err := bad.Validate(); err == nil {
		t.Fatal("missing ID should fail")
	}
	bad = job("a", 100, 100)
	if err := bad.Validate(); err == nil {
		t.Fatal("deadline == release should fail")
	}
	bad = job("a", 0, 100)
	bad.Spec = workload.BatchSpec{}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid spec should fail")
	}
}

func TestWorkAndWallSeconds(t *testing.T) {
	j := job("a", 0, 1000)
	if j.WorkPeakS() != 100 {
		t.Fatalf("WorkPeakS = %v", j.WorkPeakS())
	}
	j.WorkScale = 2
	if j.WorkPeakS() != 200 {
		t.Fatalf("scaled WorkPeakS = %v", j.WorkPeakS())
	}
	// Compute-bound at half frequency runs half speed.
	if got := j.WallSecondsAt(1.0, 2.0); math.Abs(got-400) > 1e-9 {
		t.Fatalf("WallSecondsAt = %v, want 400", got)
	}
	if got := j.WallSecondsAt(0, 2.0); got != 0 {
		t.Fatalf("zero frequency wall time sentinel = %v", got)
	}
}

func TestQueueAddAndDuplicates(t *testing.T) {
	q := NewQueue()
	if err := q.Add(job("a", 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := q.Add(job("a", 0, 200)); err == nil {
		t.Fatal("duplicate ID should fail")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	// Pending returns a copy.
	p := q.Pending()
	p[0].ID = "mutated"
	if q.Pending()[0].ID != "a" {
		t.Fatal("Pending must copy")
	}
}

func TestPopEDFOrderAndRelease(t *testing.T) {
	q := NewQueue()
	q.Add(job("late", 0, 300))
	q.Add(job("early", 0, 100))
	q.Add(job("future", 50, 60)) // earliest deadline but not yet released
	j, ok := q.PopEDF(0)
	if !ok || j.ID != "early" {
		t.Fatalf("PopEDF = %v, %v", j.ID, ok)
	}
	j, ok = q.PopEDF(55) // now the future job is released and most urgent
	if !ok || j.ID != "future" {
		t.Fatalf("PopEDF = %v", j.ID)
	}
	j, ok = q.PopEDF(55)
	if !ok || j.ID != "late" {
		t.Fatalf("PopEDF = %v", j.ID)
	}
	if _, ok := q.PopEDF(55); ok {
		t.Fatal("empty queue should not pop")
	}
	// A popped ID may be re-added.
	if err := q.Add(job("early", 0, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestPopEDFDeterministicTieBreak(t *testing.T) {
	q := NewQueue()
	q.Add(job("b", 0, 100))
	q.Add(job("a", 0, 100))
	j, _ := q.PopEDF(0)
	if j.ID != "a" {
		t.Fatalf("tie break = %v, want a", j.ID)
	}
}

func TestFeasibleBasic(t *testing.T) {
	// Two 100-peak-second compute-bound jobs at peak frequency on one
	// core: 200 s of demand by deadline 200 → exactly feasible.
	jobs := []Job{job("a", 0, 200), job("b", 0, 200)}
	ok, _ := Feasible(0, jobs, 1, 2.0, 2.0)
	if !ok {
		t.Fatal("exactly-fitting set should be feasible")
	}
	// Both due one second earlier: 200 s of demand in 199 s is not.
	jobs[0].DeadlineS = 199
	jobs[1].DeadlineS = 199
	ok, reason := Feasible(0, jobs, 1, 2.0, 2.0)
	if ok {
		t.Fatal("overloaded set should be infeasible")
	}
	if reason == "" {
		t.Fatal("rejection needs a reason")
	}
	// Two cores make it feasible again.
	ok, _ = Feasible(0, jobs, 2, 2.0, 2.0)
	if !ok {
		t.Fatal("two cores should fit")
	}
}

func TestFeasibleFrequencyMatters(t *testing.T) {
	jobs := []Job{job("a", 0, 150)}
	// At peak: 100 s of work by 150 → fine. At half frequency: 200 s → no.
	if ok, _ := Feasible(0, jobs, 1, 2.0, 2.0); !ok {
		t.Fatal("peak frequency should fit")
	}
	if ok, _ := Feasible(0, jobs, 1, 1.0, 2.0); ok {
		t.Fatal("half frequency should not fit")
	}
	// A memory-bound job is less frequency sensitive.
	mb := Job{ID: "m", Spec: spec(0.6), DeadlineS: 150}
	if ok, _ := Feasible(0, []Job{mb}, 1, 1.0, 2.0); !ok {
		t.Fatal("memory-bound job at half frequency should fit (rate 0.71)")
	}
}

func TestFeasibleEdgeCases(t *testing.T) {
	if ok, _ := Feasible(0, nil, 1, 2.0, 2.0); !ok {
		t.Fatal("empty set is feasible")
	}
	if ok, _ := Feasible(0, []Job{job("a", 0, 100)}, 0, 2.0, 2.0); ok {
		t.Fatal("zero cores is infeasible")
	}
	if ok, _ := Feasible(200, []Job{job("a", 0, 100)}, 1, 2.0, 2.0); ok {
		t.Fatal("passed deadline is infeasible")
	}
	if ok, _ := Feasible(0, []Job{job("a", 0, 100)}, 1, 0, 2.0); ok {
		t.Fatal("zero frequency is infeasible")
	}
	// A future release too close to its deadline.
	tight := job("t", 90, 120) // 100 s of work in a 30 s window
	if ok, _ := Feasible(0, []Job{tight}, 4, 2.0, 2.0); ok {
		t.Fatal("release-to-deadline window too small")
	}
}

func TestAdmitControlsOverload(t *testing.T) {
	q := NewQueue()
	// One core at peak: 100 s jobs against a 250 s horizon. Two fit;
	// the third must be rejected.
	for i := 0; i < 2; i++ {
		ok, reason, err := q.Admit(0, job(fmt.Sprintf("j%d", i), 0, 250), 1, 2.0, 2.0)
		if err != nil || !ok {
			t.Fatalf("job %d rejected: %v %v", i, reason, err)
		}
	}
	ok, reason, err := q.Admit(0, job("j2", 0, 250), 1, 2.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("third job should be rejected")
	}
	if reason == "" {
		t.Fatal("rejection needs a reason")
	}
	if q.Len() != 2 {
		t.Fatalf("queue length %d after rejection", q.Len())
	}
	// Rejected jobs are not enqueued; invalid jobs error.
	if _, _, err := q.Admit(0, Job{}, 1, 2.0, 2.0); err == nil {
		t.Fatal("invalid job should error")
	}
}

// End-to-end shape: draining an admitted EDF queue on simulated cores
// meets every deadline. The fluid admission bound is optimistic for
// non-migrating EDF, so admission keeps a one-core margin — the role the
// allocator's DeadlineMargin plays in the full system.
func TestEDFDrainMeetsDeadlines(t *testing.T) {
	q := NewQueue()
	const cores = 4
	// Admit jobs with staggered deadlines until one is rejected.
	admitted := 0
	for i := 0; ; i++ {
		d := 120 + float64(i)*20
		ok, _, err := q.Admit(0, job(fmt.Sprintf("j%02d", i), 0, d), cores-1, 2.0, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		admitted++
		if admitted > 100 {
			t.Fatal("admission never saturated")
		}
	}
	if admitted < cores {
		t.Fatalf("only %d jobs admitted", admitted)
	}
	// Drain: each core takes the EDF head; completion = start + wall time.
	coreFree := make([]float64, cores)
	for q.Len() > 0 {
		// The earliest-free core pulls next.
		c := 0
		for i := range coreFree {
			if coreFree[i] < coreFree[c] {
				c = i
			}
		}
		j, ok := q.PopEDF(coreFree[c])
		if !ok {
			t.Fatal("queue stuck")
		}
		done := coreFree[c] + j.WallSecondsAt(2.0, 2.0)
		if done > j.DeadlineS+1e-9 {
			t.Fatalf("job %s done at %v, deadline %v", j.ID, done, j.DeadlineS)
		}
		coreFree[c] = done
	}
}
