package breaker_test

import (
	"fmt"

	"sprintcon/internal/breaker"
)

// The trip-time curve of the paper's Fig. 2: how long each overload degree
// can be sustained from cold.
func ExampleBreaker_TripTime() {
	b, err := breaker.New(breaker.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, o := range []float64{1.25, 1.5, 2.0} {
		fmt.Printf("%.2fx -> %.0f s\n", o, b.TripTime(o))
	}
	// Output:
	// 1.25x -> 155 s
	// 1.50x -> 70 s
	// 2.00x -> 29 s
}

// The paper's periodic overload schedule never trips: 150 s at 1.25× then
// 300 s of recovery.
func ExampleBreaker_Step() {
	b, err := breaker.New(breaker.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		for s := 0; s < 150; s++ {
			b.Step(1.25*b.RatedPower(), 1)
		}
		for s := 0; s < 300; s++ {
			b.Step(b.RatedPower(), 1)
		}
	}
	fmt.Printf("tripped=%v thermal=%.2f\n", b.Tripped(), b.ThermalFraction())
	// Output:
	// tripped=false thermal=0.00
}
