package breaker

import (
	"fmt"
	"math"
)

// State is the serializable snapshot of a breaker's mutable state. The
// thermal accumulator is stored as a fraction of the trip budget so that a
// snapshot restores correctly even if the budget calibration is recomputed
// from the same configuration.
type State struct {
	ThermalFrac float64 // θ/Θ_trip in [0, 1]
	Tripped     bool
	Trips       int // lifetime trip count
}

// ExportState captures the breaker's mutable state.
func (b *Breaker) ExportState() State {
	return State{ThermalFrac: b.theta / b.budget, Tripped: b.tripped, Trips: b.trips}
}

// RestoreState overwrites the breaker's mutable state from a snapshot. It
// rejects non-finite or out-of-range values so a corrupt snapshot can never
// install an impossible thermal state (e.g. a negative accumulator that
// would grant extra overload budget).
func (b *Breaker) RestoreState(st State) error {
	if math.IsNaN(st.ThermalFrac) || st.ThermalFrac < 0 || st.ThermalFrac > 1 {
		return fmt.Errorf("breaker: snapshot thermal fraction %g outside [0, 1]", st.ThermalFrac)
	}
	if st.Trips < 0 {
		return fmt.Errorf("breaker: snapshot trip count %d is negative", st.Trips)
	}
	b.theta = st.ThermalFrac * b.budget
	b.tripped = st.Tripped
	b.trips = st.Trips
	return nil
}
