package breaker

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T) *Breaker {
	t.Helper()
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero rated power", func(c *Config) { c.RatedPower = 0 }},
		{"overload below 1", func(c *Config) { c.RefOverload = 0.9 }},
		{"zero trip time", func(c *Config) { c.RefTripTime = 0 }},
		{"zero recovery", func(c *Config) { c.RecoveryTime = 0 }},
		{"bad near-trip", func(c *Config) { c.NearTripFraction = 1.5 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTripTimeCurveShape(t *testing.T) {
	b := mustNew(t)
	// Fig. 2: nonlinear decreasing trip time with overload degree.
	prev := math.Inf(1)
	for _, o := range []float64{1.05, 1.1, 1.25, 1.5, 2, 3, 5} {
		tt := b.TripTime(o)
		if tt >= prev {
			t.Fatalf("trip time not strictly decreasing at o=%v: %v >= %v", o, tt, prev)
		}
		prev = tt
	}
	if !math.IsInf(b.TripTime(1.0), 1) || !math.IsInf(b.TripTime(0.5), 1) {
		t.Fatal("no trip at or below rated power")
	}
	// Calibration point: 1.25 overload sustainable just over 150 s.
	if tt := b.TripTime(1.25); tt < 150 || tt > 160 {
		t.Fatalf("trip time at 1.25 = %v, want ~155 s", tt)
	}
}

func TestSustainedOverloadTripsAtPredictedTime(t *testing.T) {
	b := mustNew(t)
	o := 1.4
	predicted := b.TripTime(o)
	p := o * b.RatedPower()
	dt := 0.1
	var elapsed float64
	for !b.Tripped() {
		b.Step(p, dt)
		elapsed += dt
		if elapsed > 2*predicted {
			t.Fatalf("no trip after %v s (predicted %v)", elapsed, predicted)
		}
	}
	if math.Abs(elapsed-predicted) > 2*dt+1e-9 {
		t.Fatalf("tripped at %v s, predicted %v s", elapsed, predicted)
	}
	if b.Trips() != 1 {
		t.Fatalf("trip count = %d", b.Trips())
	}
}

func TestPaperOverloadScheduleNeverTrips(t *testing.T) {
	// The paper's schedule: 150 s at overload degree 1.25, then 300 s at
	// rated power, repeated for 15 minutes. This must never trip.
	b := mustNew(t)
	dt := 1.0
	for cycle := 0; cycle < 2; cycle++ {
		for s := 0; s < 150; s++ {
			b.Step(1.25*b.RatedPower(), dt)
			if b.Tripped() {
				t.Fatalf("tripped during overload at cycle %d s %d", cycle, s)
			}
		}
		for s := 0; s < 300; s++ {
			b.Step(b.RatedPower(), dt)
		}
		if got := b.ThermalFraction(); got > 0.01 {
			t.Fatalf("cycle %d: not recovered, thermal fraction %v", cycle, got)
		}
	}
}

func TestSlightBudgetViolationTrips(t *testing.T) {
	// SGCT's behaviour in Fig. 5: exceeding the 1.25 budget slightly
	// (e.g. 1.30 sustained) trips within the 150 s overload window.
	b := mustNew(t)
	dt := 1.0
	for s := 0; s < 150; s++ {
		b.Step(1.30*b.RatedPower(), dt)
	}
	if !b.Tripped() {
		t.Fatal("sustained 1.30 overload should trip within 150 s")
	}
}

func TestTrippedBreakerConductsNothing(t *testing.T) {
	b := mustNew(t)
	for !b.Tripped() {
		b.Step(2*b.RatedPower(), 1)
	}
	if got := b.Step(1000, 1); got != 0 {
		t.Fatalf("tripped breaker conducted %v W", got)
	}
}

func TestRecloseRequiresCooling(t *testing.T) {
	b := mustNew(t)
	for !b.Tripped() {
		b.Step(2*b.RatedPower(), 1)
	}
	if err := b.Reclose(); err == nil {
		t.Fatal("reclose immediately after trip should fail")
	}
	// Cool for the full recovery time.
	var cooled float64
	for !b.CanReclose() {
		b.Cool(1)
		cooled++
		if cooled > 2*b.Config().RecoveryTime {
			t.Fatal("breaker never cooled")
		}
	}
	if cooled > b.Config().RecoveryTime+1 {
		t.Fatalf("cooling took %v s, config promises ≤ %v", cooled, b.Config().RecoveryTime)
	}
	if err := b.Reclose(); err != nil {
		t.Fatalf("reclose after cooling: %v", err)
	}
	if b.Tripped() {
		t.Fatal("breaker still tripped after reclose")
	}
}

func TestNearTripFiresBeforeTrip(t *testing.T) {
	b := mustNew(t)
	sawNearTrip := false
	for !b.Tripped() {
		if b.NearTrip() {
			sawNearTrip = true
		}
		b.Step(1.5*b.RatedPower(), 0.5)
	}
	if !sawNearTrip {
		t.Fatal("NearTrip never reported before tripping")
	}
}

func TestHeadroomSecondsDecreasesUnderLoad(t *testing.T) {
	b := mustNew(t)
	h0 := b.HeadroomSeconds(1.25)
	b.Step(1.25*b.RatedPower(), 30)
	h1 := b.HeadroomSeconds(1.25)
	if h1 >= h0 {
		t.Fatalf("headroom did not shrink: %v -> %v", h0, h1)
	}
	if math.Abs((h0-h1)-30) > 1e-6 {
		t.Fatalf("headroom at the same overload should shrink by wall time, got %v", h0-h1)
	}
	if !math.IsInf(b.HeadroomSeconds(0.9), 1) {
		t.Fatal("headroom below rating must be infinite")
	}
}

func TestRecoveryWhileLoadedAtRating(t *testing.T) {
	b := mustNew(t)
	b.Step(1.25*b.RatedPower(), 100) // accumulate
	f0 := b.ThermalFraction()
	b.Step(b.RatedPower(), 50) // rated load still recovers
	if b.ThermalFraction() >= f0 {
		t.Fatal("thermal state should decay at rated load")
	}
	b.Step(0.5*b.RatedPower(), 1000)
	if b.ThermalFraction() != 0 {
		t.Fatal("thermal state should decay to zero")
	}
}

func TestStepNegativeDtPanics(t *testing.T) {
	b := mustNew(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt should panic")
		}
	}()
	b.Step(100, -1)
}

// Property: for any overload degree o in (1, 6], integrating the thermal
// model at constant o trips within one step of the analytic TripTime.
func TestTripTimeConsistencyProperty(t *testing.T) {
	f := func(raw float64) bool {
		o := 1.01 + math.Mod(math.Abs(raw), 5.0)
		b, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		predicted := b.TripTime(o)
		dt := predicted / 1000
		var elapsed float64
		for !b.Tripped() {
			b.Step(o*b.RatedPower(), dt)
			elapsed += dt
			if elapsed > 2*predicted {
				return false
			}
		}
		return math.Abs(elapsed-predicted) <= 2*dt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
