// Package breaker models a data-center branch circuit breaker with an
// inverse-time (I²t) thermal trip characteristic, as used by SprintCon to
// reason about how much and how long the breaker may be overloaded
// (paper Sections III and VI-A; Fig. 2).
//
// The model integrates a dimensionless thermal state θ:
//
//	dθ/dt = (P/P_rated)² − 1     while overloaded (P > P_rated)
//	dθ/dt = −Θ_trip/T_recovery   while at or below rating (θ ≥ 0)
//
// and trips when θ reaches Θ_trip. This yields the classic trip-time curve
// τ(o) = Θ_trip/(o²−1): a nonlinear, decreasing function of the overload
// degree o, matching the Bulletin 1489-A shape shown in the paper's Fig. 2.
// The default calibration follows the paper's evaluation setup: overload
// degree 1.25 sustainable for 150 s, full recovery within 300 s.
package breaker

import (
	"errors"
	"fmt"
	"math"
)

// Config calibrates a Breaker.
type Config struct {
	// RatedPower is the continuous rating in watts (paper: 3.2 kW).
	RatedPower float64
	// RefOverload and RefTripTime pin one point of the trip curve:
	// sustaining RefOverload×RatedPower trips after RefTripTime seconds.
	// The paper sustains 1.25 for 150 s; the default curve is calibrated
	// with a small safety margin at (1.25, 155 s) so that a controller
	// which ends its overload period at exactly 150 s never trips.
	RefOverload float64
	RefTripTime float64
	// RecoveryTime is the time to shed the full trip budget once power
	// returns to the rating (paper: ≤ 300 s).
	RecoveryTime float64
	// NearTripFraction is the fraction of the trip budget at which
	// NearTrip reports true and a safe controller must stop overloading.
	NearTripFraction float64
}

// DefaultConfig returns the paper's evaluation calibration.
func DefaultConfig() Config {
	return Config{
		RatedPower:       3200,
		RefOverload:      1.25,
		RefTripTime:      155,
		RecoveryTime:     300,
		NearTripFraction: 0.95,
	}
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	switch {
	case c.RatedPower <= 0:
		return errors.New("breaker: RatedPower must be positive")
	case c.RefOverload <= 1:
		return errors.New("breaker: RefOverload must exceed 1")
	case c.RefTripTime <= 0:
		return errors.New("breaker: RefTripTime must be positive")
	case c.RecoveryTime <= 0:
		return errors.New("breaker: RecoveryTime must be positive")
	case c.NearTripFraction <= 0 || c.NearTripFraction > 1:
		return errors.New("breaker: NearTripFraction must be in (0, 1]")
	}
	return nil
}

// TripBudget returns the overload-seconds budget Θ_trip implied by the
// reference calibration point: sustaining overload degree o consumes
// (o²−1) of it per second. Consumers (e.g. the power load allocator) use it
// to size safe overload schedules.
func (c Config) TripBudget() float64 {
	return c.RefTripTime * (c.RefOverload*c.RefOverload - 1)
}

// Breaker is the mutable thermal state of one circuit breaker.
type Breaker struct {
	cfg     Config
	budget  float64 // Θ_trip
	theta   float64 // accumulated thermal state in [0, budget]
	tripped bool
	trips   int // lifetime trip count
}

// New returns a cold breaker. It returns an error for invalid configs.
func New(cfg Config) (*Breaker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Breaker{cfg: cfg, budget: cfg.TripBudget()}, nil
}

// Config returns the breaker's configuration.
func (b *Breaker) Config() Config { return b.cfg }

// RatedPower returns the continuous rating in watts.
func (b *Breaker) RatedPower() float64 { return b.cfg.RatedPower }

// Step advances the thermal model by dt seconds with the given delivered
// power and returns the power actually conducted: the full demand while
// closed, zero once tripped. A trip takes effect at the end of the step in
// which the budget is exhausted.
func (b *Breaker) Step(powerW, dt float64) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("breaker: negative dt %g", dt))
	}
	if b.tripped {
		return 0
	}
	o := powerW / b.cfg.RatedPower
	if o > 1 {
		b.theta += dt * (o*o - 1)
	} else {
		b.theta -= dt * b.budget / b.cfg.RecoveryTime
		if b.theta < 0 {
			b.theta = 0
		}
	}
	if b.theta >= b.budget {
		b.theta = b.budget
		b.tripped = true
		b.trips++
		return powerW // the tripping step still conducted
	}
	return powerW
}

// Tripped reports whether the breaker is open.
func (b *Breaker) Tripped() bool { return b.tripped }

// Trips returns the lifetime trip count.
func (b *Breaker) Trips() int { return b.trips }

// ThermalFraction returns θ/Θ_trip in [0, 1].
func (b *Breaker) ThermalFraction() float64 { return b.theta / b.budget }

// NearTrip reports whether the thermal state has crossed the configured
// near-trip fraction; a safe controller must stop overloading now.
func (b *Breaker) NearTrip() bool {
	return b.theta >= b.cfg.NearTripFraction*b.budget
}

// TripTime returns the time in seconds the breaker would sustain a constant
// overload degree o starting cold; +Inf for o ≤ 1. This is the curve of the
// paper's Fig. 2.
func (b *Breaker) TripTime(o float64) float64 {
	if o <= 1 {
		return math.Inf(1)
	}
	return b.budget / (o*o - 1)
}

// HeadroomSeconds returns how long the breaker can sustain overload degree o
// from its current thermal state before tripping; +Inf for o ≤ 1.
func (b *Breaker) HeadroomSeconds(o float64) float64 {
	if o <= 1 {
		return math.Inf(1)
	}
	return (b.budget - b.theta) / (o*o - 1)
}

// CanReclose reports whether a tripped breaker has cooled enough to close
// again (θ back to zero). Real breakers require a manual or motorized
// reclose; the simulation models that as Reclose after cooling.
func (b *Breaker) CanReclose() bool { return b.tripped && b.theta <= 0 }

// Cool advances recovery for a tripped (open) breaker by dt seconds.
func (b *Breaker) Cool(dt float64) {
	if !b.tripped {
		return
	}
	b.theta -= dt * b.budget / b.cfg.RecoveryTime
	if b.theta < 0 {
		b.theta = 0
	}
}

// Reclose closes a tripped breaker. It returns an error if the breaker has
// not cooled completely.
func (b *Breaker) Reclose() error {
	if !b.tripped {
		return nil
	}
	if b.theta > 0 {
		return fmt.Errorf("breaker: reclose before cooling complete (thermal fraction %.2f)", b.ThermalFraction())
	}
	b.tripped = false
	return nil
}

// Reset returns the breaker to cold, closed state (test support).
func (b *Breaker) Reset() {
	b.theta = 0
	b.tripped = false
}
