package link

import (
	"fmt"
	"math"
)

// ClientState is the Client's complete mutable state, embedded in controller
// checkpoints so a crash-restore mid-partition resumes the lease ladder
// bit-identically (degraded-mode seconds, stale counters and all) instead of
// resetting it.
type ClientState struct {
	HasLease       bool
	Lease          Lease
	Degraded       bool
	SuppressUntilS float64

	LastOverloadEndS float64
	EverOverloaded   bool

	LastBeatS float64
	BeatEver  bool

	BeatMeasuredW   float64
	BeatSoC         float64
	BeatOverloading bool
	BeatMode        int

	Stats ClientStats
}

// ExportState captures the client for a checkpoint.
func (c *Client) ExportState() ClientState {
	return ClientState{
		HasLease:         c.hasLease,
		Lease:            c.lease,
		Degraded:         c.degraded,
		SuppressUntilS:   c.suppressUntilS,
		LastOverloadEndS: c.lastOverloadEndS,
		EverOverloaded:   c.everOverloaded,
		LastBeatS:        c.lastBeatS,
		BeatEver:         c.beatEver,
		BeatMeasuredW:    c.beatMeasuredW,
		BeatSoC:          c.beatSoC,
		BeatOverloading:  c.beatOverloading,
		BeatMode:         c.beatMode,
		Stats:            c.stats,
	}
}

// RestoreState replaces the client's state from a checkpoint. The protocol
// configuration and rack identity are not part of the state — they come from
// the live run — so a snapshot for a different rack is rejected.
func (c *Client) RestoreState(st ClientState) error {
	if st.HasLease && st.Lease.RackID != c.id {
		return fmt.Errorf("link: restoring rack %d state into rack %d client", st.Lease.RackID, c.id)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"lease issue time", st.Lease.IssuedAtS},
		{"lease TTL", st.Lease.TTLS},
		{"lease cap", st.Lease.PCbCapW},
		{"lease phase offset", st.Lease.PhaseOffsetS},
		{"suppress-until", st.SuppressUntilS},
		{"last-overload-end", st.LastOverloadEndS},
		{"last-beat time", st.LastBeatS},
		{"beat power", st.BeatMeasuredW},
		{"beat SoC", st.BeatSoC},
		{"degraded seconds", st.Stats.DegradedS},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("link: checkpoint %s is %g", f.name, f.v)
		}
	}
	if st.Stats.DegradedS < 0 {
		return fmt.Errorf("link: checkpoint degraded seconds %g negative", st.Stats.DegradedS)
	}
	if st.Stats.Accepted < 0 || st.Stats.Stale < 0 || st.Stats.Expiries < 0 || st.Stats.Resyncs < 0 {
		return fmt.Errorf("link: checkpoint lease counters negative")
	}
	c.hasLease = st.HasLease
	c.lease = st.Lease
	c.lease.RackID = c.id
	c.degraded = st.Degraded
	c.suppressUntilS = st.SuppressUntilS
	c.lastOverloadEndS = st.LastOverloadEndS
	c.everOverloaded = st.EverOverloaded
	c.lastBeatS = st.LastBeatS
	c.beatEver = st.BeatEver
	c.beatMeasuredW = st.BeatMeasuredW
	c.beatSoC = st.BeatSoC
	c.beatOverloading = st.BeatOverloading
	c.beatMode = st.BeatMode
	c.stats = st.Stats
	return nil
}
