package link

import (
	"math"
	"testing"

	"sprintcon/internal/faults"
)

func testCfg() Config {
	c := DefaultConfig()
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default", func(c *Config) {}, false},
		{"nan ttl", func(c *Config) { c.TTLS = math.NaN() }, true},
		{"inf refresh", func(c *Config) { c.RefreshS = math.Inf(1) }, true},
		{"negative beat period", func(c *Config) { c.BeatPeriodS = -1 }, true},
		{"zero beat timeout", func(c *Config) { c.BeatTimeoutS = 0 }, true},
		{"nan backoff", func(c *Config) { c.RetryBackoffS = math.NaN() }, true},
		{"negative max backoff", func(c *Config) { c.MaxBackoffS = -2 }, true},
		{"zero overload", func(c *Config) { c.OverloadS = 0 }, true},
		{"inf cycle", func(c *Config) { c.CycleS = math.Inf(-1) }, true},
		{"ttl not past refresh", func(c *Config) { c.TTLS = c.RefreshS }, true},
		{"timeout under beat period", func(c *Config) { c.BeatTimeoutS = c.BeatPeriodS / 2 }, true},
		{"max backoff under retry", func(c *Config) { c.MaxBackoffS = c.RetryBackoffS / 2 }, true},
		{"cycle not past overload", func(c *Config) { c.CycleS = c.OverloadS }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCfg()
			tc.mutate(&c)
			err := c.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestCoordConfigValidate(t *testing.T) {
	base := CoordConfig{Link: testCfg(), NumRacks: 4, SlotCapacity: 2}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	if n := base.NumSlots(); n != 3 {
		t.Fatalf("NumSlots = %d, want 3 for 450/150", n)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*CoordConfig)
	}{
		{"no racks", func(c *CoordConfig) { c.NumRacks = 0 }},
		{"zero capacity", func(c *CoordConfig) { c.SlotCapacity = 0 }},
		{"too many racks for slots", func(c *CoordConfig) { c.NumRacks = 7 }}, // ceil(7/2)=4 > 3 slots
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestClientVersionMonotone(t *testing.T) {
	cfg := testCfg()
	c := NewClient(cfg, 0, nil)
	l2 := Lease{RackID: 0, Version: 2, IssuedAtS: 0, TTLS: cfg.TTLS, AllowOverload: true}
	if !c.Offer(0, l2) {
		t.Fatal("fresh lease rejected")
	}
	if c.Offer(0, l2) {
		t.Fatal("duplicate accepted")
	}
	l1 := l2
	l1.Version = 1
	if c.Offer(0, l1) {
		t.Fatal("stale (reordered) lease accepted")
	}
	l3 := l2
	l3.Version = 3
	if !c.Offer(0, l3) {
		t.Fatal("newer lease rejected")
	}
	wrong := l3
	wrong.Version = 9
	wrong.RackID = 1
	if c.Offer(0, wrong) {
		t.Fatal("lease for another rack accepted")
	}
	st := c.Stats()
	if st.Accepted != 2 || st.Stale != 2 {
		t.Fatalf("stats = %+v, want 2 accepted / 2 stale", st)
	}
}

func TestClientDegradedLadderAndResync(t *testing.T) {
	cfg := testCfg()
	c := NewClient(cfg, 0, &Lease{RackID: 0, Version: 1, IssuedAtS: 0, TTLS: cfg.TTLS, AllowOverload: true, AllowUPS: true})
	dt := 1.0
	b := c.Advance(0, dt)
	if b.Degraded || !b.AllowOverload || !b.AllowUPS {
		t.Fatalf("boot budget degraded: %+v", b)
	}
	// Let the lease expire with no refresh.
	b = c.Advance(cfg.TTLS+1, dt)
	if !b.Degraded || b.AllowOverload || b.AllowUPS {
		t.Fatalf("expired lease still granted: %+v", b)
	}
	b = c.Advance(cfg.TTLS+2, dt)
	if !b.Degraded {
		t.Fatal("second degraded tick not degraded")
	}
	st := c.Stats()
	if st.Expiries != 1 || st.DegradedS != 2*dt {
		t.Fatalf("stats = %+v, want 1 expiry / %g degraded seconds", st, 2*dt)
	}
	// Heal: a fresh grant re-syncs on the next advance.
	heal := cfg.TTLS + 3
	if !c.Offer(heal, Lease{RackID: 0, Version: 2, IssuedAtS: heal, TTLS: cfg.TTLS, AllowOverload: true, AllowUPS: true}) {
		t.Fatal("re-sync grant rejected")
	}
	b = c.Advance(heal, dt)
	if b.Degraded {
		t.Fatal("still degraded after fresh grant")
	}
	st = c.Stats()
	if st.Resyncs != 1 || st.LastResyncS != heal {
		t.Fatalf("stats = %+v, want resync at t=%g", st, heal)
	}
}

func TestClientTrustLastGrantNeverDegrades(t *testing.T) {
	cfg := testCfg()
	cfg.TrustLastGrant = true
	c := NewClient(cfg, 0, &Lease{RackID: 0, Version: 1, IssuedAtS: 0, TTLS: cfg.TTLS, AllowOverload: true})
	b := c.Advance(10*cfg.TTLS, 1)
	if b.Degraded || !b.AllowOverload {
		t.Fatalf("naive client degraded: %+v", b)
	}
	if c.Stats().Expiries != 0 {
		t.Fatal("naive client counted an expiry")
	}
}

func TestClientRePhaseEntryGuard(t *testing.T) {
	cfg := testCfg()
	c := NewClient(cfg, 0, &Lease{RackID: 0, Version: 1, IssuedAtS: 0, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: cfg.CycleS - cfg.OverloadS})
	// At t=20 the boot slot (window [150,300)) is quiet; the new lease moves
	// the rack to slot 0, whose window [0,150) is mid-flight. Entering late
	// must be suppressed until that window ends at t=150.
	now := 20.0
	if !c.Offer(now, Lease{RackID: 0, Version: 2, IssuedAtS: now, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: 0}) {
		t.Fatal("re-phase grant rejected")
	}
	b := c.Advance(now, 1)
	if b.Degraded || b.AllowOverload {
		t.Fatalf("mid-window entry not suppressed: %+v", b)
	}
	// Keep the lease fresh and check permission returns when the window ends.
	if !c.Offer(145, Lease{RackID: 0, Version: 3, IssuedAtS: 145, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: 0}) {
		t.Fatal("refresh rejected")
	}
	if b := c.Advance(145, 1); b.AllowOverload {
		t.Fatal("suppression lifted early")
	}
	if b := c.Advance(cfg.OverloadS+1, 1); !b.AllowOverload {
		t.Fatal("suppression never lifted")
	}
}

// A re-pack to an earlier slot must not shorten the breaker's recovery: after
// holding an overload window, the client withholds overload permission until a
// full CycleS−OverloadS has elapsed since its last overload second, whatever
// slot the new lease assigns.
func TestClientRepackRecoveryGuard(t *testing.T) {
	cfg := testCfg()
	slot1 := cfg.CycleS - cfg.OverloadS // window [150, 300) on the default 450 s cycle
	c := NewClient(cfg, 0, &Lease{RackID: 0, Version: 1, IssuedAtS: 0, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: slot1})
	v := uint64(2)
	refresh := func(now, offset float64) {
		t.Helper()
		if !c.Offer(now, Lease{RackID: 0, Version: v, IssuedAtS: now, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: offset}) {
			t.Fatalf("refresh at t=%g rejected", now)
		}
		v++
	}
	// March through the rack's own window; the client records the overload.
	for now := 150.0; now < 300; now += 10 {
		refresh(now, slot1)
		if b := c.Advance(now, 1); b.Degraded || !b.AllowOverload {
			t.Fatalf("own window t=%g: %+v", now, b)
		}
	}
	// Re-pack to slot 0 between windows (no window mid-flight for either
	// slot at t=310, so only the recovery guard applies). Slot 0's next
	// window [450, 600) starts 160 s after the rack's last overload second
	// at t=290 — less than the 300 s recovery the schedule guarantees.
	refresh(310, 0)
	refresh(460, 0)
	if b := c.Advance(460, 1); b.AllowOverload {
		t.Fatal("overload allowed 170 s into a 300 s recovery")
	}
	refresh(585, 0)
	if b := c.Advance(589, 1); b.AllowOverload {
		t.Fatal("overload allowed just before recovery completes")
	}
	if b := c.Advance(595, 1); !b.AllowOverload {
		t.Fatal("overload still suppressed after a full recovery period")
	}
}

func TestTransportBaseLatencyAndOrdering(t *testing.T) {
	tr := NewTransport(faults.Plan{}, 2, 1, 1)
	tr.Step(0)
	tr.SendGrant(0, Lease{RackID: 0, Version: 1})
	tr.SendGrant(0, Lease{RackID: 0, Version: 2})
	tr.SendGrant(0, Lease{RackID: 1, Version: 1})
	if got := tr.DeliverGrants(0, 0); len(got) != 0 {
		t.Fatalf("delivered same tick: %d msgs", len(got))
	}
	got := tr.DeliverGrants(0, 1)
	if len(got) != 2 || got[0].Version != 1 || got[1].Version != 2 {
		t.Fatalf("rack 0 deliveries = %+v, want versions 1,2 in order", got)
	}
	if got := tr.DeliverGrants(1, 1); len(got) != 1 || got[0].RackID != 1 {
		t.Fatalf("rack 1 deliveries wrong: %+v", got)
	}
	tr.SendBeat(1, Heartbeat{RackID: 0, SentAtS: 1})
	if hbs := tr.DeliverBeats(2); len(hbs) != 1 || hbs[0].RackID != 0 {
		t.Fatalf("beat delivery wrong: %+v", hbs)
	}
}

func TestTransportLossDelayDupDeterministic(t *testing.T) {
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkLoss, OnsetS: 0, DurationS: 1000, Severity: 0.5},
		{Kind: faults.LinkDelay, OnsetS: 0, DurationS: 1000, Severity: 5},
		{Kind: faults.LinkDup, OnsetS: 0, DurationS: 1000, Severity: 0.3},
	}}
	run := func() []uint64 {
		tr := NewTransport(plan, 1, 42, 1)
		tr.Step(0)
		for i := 0; i < 50; i++ {
			tr.SendGrant(float64(i), Lease{RackID: 0, Version: uint64(i + 1)})
		}
		var got []uint64
		for now := 0.0; now < 70; now++ {
			for _, l := range tr.DeliverGrants(0, now) {
				got = append(got, l.Version)
			}
		}
		return got
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("loss fault had no visible effect: %d of 50 delivered (plus dups)", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic delivery order at %d: %d vs %d", i, a[i], b[i])
		}
	}
	tr := NewTransport(plan, 1, 42, 1)
	tr.Step(0)
	for i := 0; i < 50; i++ {
		tr.SendGrant(float64(i), Lease{RackID: 0, Version: uint64(i + 1)})
	}
	st := tr.Stats()
	if st.GrantsLost == 0 || st.GrantsDuped == 0 {
		t.Fatalf("expected losses and duplicates under active faults: %+v", st)
	}
	if st.GrantsSent != 50 {
		t.Fatalf("GrantsSent = %d, want 50", st.GrantsSent)
	}
}

func TestTransportPartitionBlocksBothDirections(t *testing.T) {
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.LinkPartition, Server: 0, OnsetS: 10, DurationS: 100, Severity: 1},
	}}
	tr := NewTransport(plan, 2, 7, 1)
	tr.Step(20)
	tr.SendGrant(20, Lease{RackID: 0, Version: 1})
	tr.SendGrant(20, Lease{RackID: 1, Version: 1})
	tr.SendBeat(20, Heartbeat{RackID: 0})
	tr.SendBeat(20, Heartbeat{RackID: 1})
	if got := tr.DeliverGrants(0, 21); len(got) != 0 {
		t.Fatal("grant crossed an active partition")
	}
	if got := tr.DeliverGrants(1, 21); len(got) != 1 {
		t.Fatal("unpartitioned rack lost its grant")
	}
	hbs := tr.DeliverBeats(21)
	if len(hbs) != 1 || hbs[0].RackID != 1 {
		t.Fatalf("beats across partition = %+v, want only rack 1", hbs)
	}
	st := tr.Stats()
	if st.GrantsPartition == 0 || st.BeatsPartition == 0 {
		t.Fatalf("partition drops not counted: %+v", st)
	}
	// Partition at delivery time also drops in-flight messages.
	tr2 := NewTransport(plan, 2, 7, 1)
	tr2.Step(9)
	tr2.SendGrant(9, Lease{RackID: 0, Version: 1}) // lands at t=10, inside the partition
	tr2.Step(10)
	if got := tr2.DeliverGrants(0, 10); len(got) != 0 {
		t.Fatal("in-flight grant survived partition onset")
	}
}

func TestTransportCoordinatorDown(t *testing.T) {
	plan := faults.Plan{Faults: []faults.Fault{
		{Kind: faults.CoordinatorCrash, OnsetS: 0, DurationS: 100, Severity: 1},
	}}
	tr := NewTransport(plan, 1, 3, 1)
	tr.Step(1)
	if !tr.CoordinatorDown() {
		t.Fatal("coordinator not down during crash fault")
	}
	tr.SendGrant(1, Lease{RackID: 0, Version: 1})
	tr.SendBeat(1, Heartbeat{RackID: 0})
	if got := tr.DeliverGrants(0, 2); len(got) != 0 {
		t.Fatal("down coordinator issued a grant")
	}
	if hbs := tr.DeliverBeats(2); len(hbs) != 0 {
		t.Fatal("down coordinator heard a beat")
	}
}

func TestTransportRejectsNonLinkFaults(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTransport accepted a server-scoped fault")
		}
	}()
	NewTransport(faults.Plan{Faults: []faults.Fault{
		{Kind: faults.MonitorDropout, OnsetS: 0, DurationS: 10, Severity: 1},
	}}, 1, 1, 1)
}

func coordForTest(t *testing.T) (*Coordinator, CoordConfig) {
	t.Helper()
	cfg := CoordConfig{Link: testCfg(), NumRacks: 4, SlotCapacity: 2}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, cfg
}

func beatAll(c *Coordinator, now float64, racks ...int) {
	for _, r := range racks {
		c.Observe(Heartbeat{RackID: r, SentAtS: now, LeaseVersion: 1}, now)
	}
}

func TestCoordinatorBootstrapSlots(t *testing.T) {
	c, cfg := coordForTest(t)
	boot := c.Bootstrap()
	if len(boot) != 4 {
		t.Fatalf("bootstrap %d leases, want 4", len(boot))
	}
	for i, l := range boot {
		want := cfg.slotOffset(i / 2)
		if l.PhaseOffsetS != want || !l.AllowOverload || !l.AllowUPS || l.Version != 1 {
			t.Fatalf("bootstrap lease %d = %+v, want offset %g overload+UPS v1", i, l, want)
		}
	}
	// Slot offsets place windows back to back: slot 0 overloads at t∈[0,150),
	// slot 1 at [150,300).
	if !scheduleOverloading(cfg.Link, boot[0].PhaseOffsetS, 10) {
		t.Fatal("slot 0 not overloading at t=10")
	}
	if scheduleOverloading(cfg.Link, boot[2].PhaseOffsetS, 10) {
		t.Fatal("slot 1 overloading during slot 0's window")
	}
	if !scheduleOverloading(cfg.Link, boot[2].PhaseOffsetS, 160) {
		t.Fatal("slot 1 not overloading at t=160")
	}
}

func TestCoordinatorRefreshCadence(t *testing.T) {
	c, cfg := coordForTest(t)
	if out := c.Step(1); len(out) != 0 {
		t.Fatalf("grants before first refresh due: %+v", out)
	}
	beatAll(c, 2, 0, 1, 2, 3)
	out := c.Step(cfg.Link.RefreshS)
	if len(out) != 4 {
		t.Fatalf("%d grants at refresh, want 4", len(out))
	}
	for i, l := range out {
		if l.RackID != i || l.Version != 2 || !l.AllowOverload {
			t.Fatalf("refresh grant %d = %+v", i, l)
		}
	}
	if out := c.Step(cfg.Link.RefreshS + 1); len(out) != 0 {
		t.Fatal("re-granted before next refresh")
	}
}

func TestCoordinatorPresumeDegradedAndRepack(t *testing.T) {
	c, cfg := coordForTest(t)
	// Rack 0 goes silent; the others keep beating.
	var lastGrants []Lease
	var now float64
	for now = cfg.Link.BeatPeriodS; now <= 40; now += cfg.Link.BeatPeriodS {
		beatAll(c, now, 1, 2, 3)
		lastGrants = append(lastGrants, c.Step(now)...)
	}
	if !c.PresumedDegraded(0) {
		t.Fatal("silent rack not presumed degraded after timeout + sprint expiry")
	}
	if c.PresumedDegraded(1) {
		t.Fatal("beating rack presumed degraded")
	}
	// After the repack, live racks 1,2,3 pack as {1,2}@slot0, {3}@slot1:
	// rack 2 moved, racks 1 and 3 kept their offsets.
	offs := map[int]float64{}
	for _, l := range lastGrants {
		if l.AllowOverload {
			offs[l.RackID] = l.PhaseOffsetS
		}
	}
	if offs[1] != cfg.slotOffset(0) || offs[2] != cfg.slotOffset(0) || offs[3] != cfg.slotOffset(1) {
		t.Fatalf("post-repack offsets = %v, want 1,2@%g 3@%g", offs, cfg.slotOffset(0), cfg.slotOffset(1))
	}
	if c.Stats().Repacks == 0 || c.Stats().Presumed != 1 {
		t.Fatalf("stats = %+v, want ≥1 repack and exactly 1 presumed", c.Stats())
	}
	// Once the beat timeout has passed, the silent rack gets only probes —
	// never overload permission. (Before the timeout the coordinator cannot
	// yet know the rack is gone, so early sprint grants are legitimate.)
	for _, l := range lastGrants {
		if l.RackID == 0 && l.AllowOverload && l.IssuedAtS > cfg.Link.BeatTimeoutS {
			t.Fatalf("unreachable rack got a sprint grant: %+v", l)
		}
	}
	if c.Stats().Probes == 0 {
		t.Fatal("no re-sync probes sent to the unreachable rack")
	}
	// Heal: one beat from rack 0 and the next step restores a full grant
	// (within a refresh period) and repacks it into the free capacity.
	beatAll(c, now, 0, 1, 2, 3)
	healed := c.Step(now)
	var r0 *Lease
	for i := range healed {
		if healed[i].RackID == 0 {
			r0 = &healed[i]
		}
	}
	if r0 == nil || !r0.AllowOverload {
		t.Fatalf("healed rack not re-granted immediately: %+v", healed)
	}
	if c.PresumedDegraded(0) {
		t.Fatal("healed rack still presumed degraded")
	}
}

func TestCoordinatorBackoff(t *testing.T) {
	c, cfg := coordForTest(t)
	probes := 0
	// All racks silent: drive well past timeout and count per-rack probes.
	for now := 0.0; now <= 60; now++ {
		for _, l := range c.Step(now) {
			if l.RackID == 0 && !l.AllowOverload {
				probes++
			}
		}
	}
	// With retry 1 s doubling to max 8 s over ~47 s of unreachability the
	// probe count must be far below one-per-second but nonzero.
	if probes == 0 || probes > 15 {
		t.Fatalf("probe count %d; exponential backoff not in effect", probes)
	}
	_ = cfg
}

func TestCoordinatorRestartRecoversVersions(t *testing.T) {
	c, cfg := coordForTest(t)
	beatAll(c, 2, 0, 1, 2, 3)
	c.Step(cfg.Link.RefreshS) // issues version 2 everywhere
	c.Restart(20)
	// Racks echo their lease versions in beats; the coordinator must resume
	// the monotone counter above them.
	c.Observe(Heartbeat{RackID: 0, SentAtS: 21, LeaseVersion: 2}, 21)
	out := c.Step(21)
	var r0 *Lease
	for i := range out {
		if out[i].RackID == 0 {
			r0 = &out[i]
		}
	}
	if r0 == nil {
		t.Fatal("no grant to beating rack after restart")
	}
	if r0.Version <= 2 {
		t.Fatalf("restarted coordinator issued stale version %d", r0.Version)
	}
}

func TestClientStateRoundTrip(t *testing.T) {
	cfg := testCfg()
	c := NewClient(cfg, 3, &Lease{RackID: 3, Version: 5, IssuedAtS: 10, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: 150})
	c.Advance(11, 1)
	c.NoteTelemetry(2500, 0.8, true, 1)
	c.MaybeBeat(12)
	st := c.ExportState()
	c2 := NewClient(cfg, 3, nil)
	if err := c2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if c2.LeaseVersion() != 5 || c2.Degraded() != c.Degraded() {
		t.Fatalf("restore mismatch: v%d degraded=%v", c2.LeaseVersion(), c2.Degraded())
	}
	b1, b2 := c.Advance(13, 1), c2.Advance(13, 1)
	if b1 != b2 {
		t.Fatalf("budgets diverge after restore: %+v vs %+v", b1, b2)
	}
	// Wrong rack and non-finite fields are rejected.
	c4 := NewClient(cfg, 4, nil)
	if err := c4.RestoreState(st); err == nil {
		t.Fatal("cross-rack restore accepted")
	}
	bad := st
	bad.SuppressUntilS = math.NaN()
	if err := c2.RestoreState(bad); err == nil {
		t.Fatal("NaN suppress-until accepted")
	}
}

// The first grant accepted after a fail-safe restart must re-run both
// overload-entry guards: FailSafe drops the lease, and guards gated on
// holding one would let a restarted rack join a window mid-flight or
// re-overload before a full recovery period has elapsed.
func TestClientFailSafeReappliesEntryGuards(t *testing.T) {
	cfg := testCfg()
	c := NewClient(cfg, 0, &Lease{RackID: 0, Version: 1, IssuedAtS: 0, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: 0})
	v := uint64(2)
	refresh := func(now, offset float64) {
		t.Helper()
		if !c.Offer(now, Lease{RackID: 0, Version: v, IssuedAtS: now, TTLS: cfg.TTLS, AllowOverload: true, PhaseOffsetS: offset}) {
			t.Fatalf("grant at t=%g rejected", now)
		}
		v++
	}
	// March through the rack's slot-0 window [0,150): overload history with
	// the last overload second at t=140.
	for now := 0.0; now < 150; now += 10 {
		refresh(now, 0)
		if b := c.Advance(now, 1); b.Degraded || !b.AllowOverload {
			t.Fatalf("own window t=%g: %+v", now, b)
		}
	}
	// The controller restarts fail-safe at t=200: the lease is dropped and
	// the client falls back.
	c.FailSafe(200)
	if b := c.Advance(200, 1); !b.Degraded {
		t.Fatal("client not degraded after FailSafe")
	}
	// Re-grant at t=210 into slot 1, whose window [150,300) is mid-flight:
	// the mid-window guard must keep the rack out of it, and the recovery
	// guard must hold overload until t=440 — CycleS−OverloadS after the
	// rack's last overload second.
	slot1 := cfg.CycleS - cfg.OverloadS
	refresh(210, slot1)
	if b := c.Advance(210, 1); b.Degraded || b.AllowOverload {
		t.Fatalf("mid-window entry after fail-safe not suppressed: %+v", b)
	}
	refresh(295, slot1)
	if b := c.Advance(295, 1); b.AllowOverload {
		t.Fatal("suppression lifted before the in-flight window ended")
	}
	// The window is over at t=320, but recovery from the pre-restart
	// overload still pends.
	refresh(320, slot1)
	if b := c.Advance(320, 1); b.AllowOverload {
		t.Fatal("overload allowed 180 s into a 300 s recovery")
	}
	refresh(435, slot1)
	if b := c.Advance(435, 1); b.AllowOverload {
		t.Fatal("overload allowed just before recovery completes")
	}
	refresh(445, slot1)
	if b := c.Advance(445, 1); !b.AllowOverload {
		t.Fatal("overload still suppressed after a full recovery period")
	}
}

// NumSlots must survive float-representation error on exact ratios: 0.3/0.1
// evaluates to 2.999… in binary floating point, and plain truncation would
// lose a slot and make Validate reject a configuration that fits.
func TestNumSlotsToleratesFloatRatio(t *testing.T) {
	cfg := testCfg()
	cfg.OverloadS, cfg.CycleS = 0.1, 0.3
	cc := CoordConfig{Link: cfg, NumRacks: 3, SlotCapacity: 1}
	if n := cc.NumSlots(); n != 3 {
		t.Fatalf("NumSlots = %d, want 3 (0.3/0.1 truncates to 2 without a tolerance)", n)
	}
	if err := cc.Validate(); err != nil {
		t.Fatalf("3 racks × 1 per slot fit 3 slots, but Validate rejected: %v", err)
	}
}
