package link

import (
	"math"

	"sprintcon/internal/obs"
)

// Client is the rack-side end of the control link. It owns the lease
// discipline: version-monotone acceptance of grants, the degraded-mode
// ladder on expiry, re-sync accounting on heal, and the heartbeat cadence.
// It holds no pointer into the rack's controller — each tick the cluster
// loop feeds accepted grants in via Offer, advances the ladder with Advance,
// and applies the returned Budget to the rack's SprintCon.
type Client struct {
	cfg Config
	id  int

	lease    Lease
	hasLease bool
	degraded bool

	// suppressUntilS is the overload-entry guard: when a re-phase lands
	// mid-window while the rack was not overloading, entering the window
	// late would stack a partial overload onto other racks' slots, so the
	// client withholds overload permission until that window ends.
	suppressUntilS float64

	// lastOverloadEndS tracks the most recent time the budget permitted a
	// scheduled overload (valid when everOverloaded). A re-phase to an
	// earlier slot would otherwise shorten the breaker's recovery interval
	// below CycleS−OverloadS — the margin the schedule's thermal safety
	// argument rests on — so overload entry after a re-phase waits out a
	// full recovery period from this point.
	lastOverloadEndS float64
	everOverloaded   bool

	lastBeatS float64
	beatEver  bool

	// Telemetry the cluster loop caches for the next heartbeat, captured
	// from the rack's tick snapshot (never by re-measuring the plant, which
	// would consume rack RNG).
	beatMeasuredW   float64
	beatSoC         float64
	beatOverloading bool
	beatMode        int

	stats ClientStats

	// plane is the rack's observability plane (nil = disabled). Every
	// lease state transition is mirrored there as a span causally linked
	// to the grant that crossed the transport.
	plane *obs.Plane
}

// ClientStats counts the client's lease lifecycle events.
type ClientStats struct {
	Accepted  int     // grants accepted (version advanced)
	Stale     int     // grants rejected as stale or duplicate
	Expiries  int     // lease expiries (degraded-mode entries)
	Resyncs   int     // degraded→coordinated recoveries
	DegradedS float64 // total seconds spent in degraded mode
	// LastResyncS is the simulation time of the most recent recovery
	// (NaN until one happens); experiments use it to measure re-entry
	// latency after a heal.
	LastResyncS float64
}

// NewClient builds the link client for one rack. boot, when non-nil, is the
// rack's initial lease — the static configuration it powered on with —
// so a cluster starts coordinated instead of spending the first TTL
// degraded.
func NewClient(cfg Config, rackID int, boot *Lease) *Client {
	c := &Client{cfg: cfg, id: rackID}
	c.stats.LastResyncS = math.NaN()
	if boot != nil {
		c.lease = *boot
		c.hasLease = true
	}
	return c
}

// Offer presents a delivered grant. Only versions strictly newer than the
// current lease are accepted; duplicates and reordered stale grants are
// counted and dropped. now is the delivery time, used by the re-phase
// overload-entry guard.
func (c *Client) Offer(now float64, l Lease) bool {
	if l.RackID != c.id {
		return false
	}
	if c.hasLease && l.Version <= c.lease.Version {
		c.stats.Stale++
		c.plane.LeaseStale(now, l.SpanID, l.Version)
		return false
	}
	prevOffset := c.lease.PhaseOffsetS
	hadLease := c.hasLease
	wasOverloading := hadLease && !c.degraded && c.lease.AllowOverload &&
		scheduleOverloading(c.cfg, prevOffset, now)
	// A grant re-phases when it assigns a slot different from the live
	// lease's — or when there is no live lease to compare against (first
	// grant after a fail-safe restart dropped it), where the prior slot is
	// unknown and both guards must assume the worst.
	rephased := !hadLease || l.PhaseOffsetS != prevOffset
	c.lease = l
	c.hasLease = true
	c.stats.Accepted++
	c.plane.LeaseAccepted(now, l.SpanID, l.Version)
	// Re-phase guard: if the new slot is already mid-window and the rack
	// wasn't overloading, joining late would overlap the tail of this
	// window with whoever owns the next slot. Sit this window out.
	if rephased && !wasOverloading &&
		l.AllowOverload && scheduleOverloading(c.cfg, l.PhaseOffsetS, now) {
		phase := math.Mod(now+l.PhaseOffsetS, c.cfg.CycleS)
		if phase < 0 {
			phase += c.cfg.CycleS
		}
		if until := now + (c.cfg.OverloadS - phase); until > c.suppressUntilS {
			c.suppressUntilS = until
		}
	}
	// Recovery guard: a re-phase to an earlier slot would start the next
	// overload window less than a full recovery period after the last one,
	// leaving the breaker's thermal accumulator partly charged. Withhold
	// overload until CycleS−OverloadS has elapsed since the rack last held
	// an overload window, whatever slot the new lease assigns. (For a grant
	// that keeps the slot this is a no-op: the next scheduled window is
	// never sooner than that.)
	if rephased && l.AllowOverload && c.everOverloaded {
		if until := c.lastOverloadEndS + (c.cfg.CycleS - c.cfg.OverloadS); until > c.suppressUntilS {
			c.suppressUntilS = until
		}
	}
	return true
}

// Advance moves the ladder to time now and returns the budget the rack's
// controller must run under for this tick. dt is the tick length, used to
// accumulate degraded-mode seconds.
func (c *Client) Advance(now, dt float64) Budget {
	valid := c.hasLease && (c.cfg.TrustLastGrant || now < c.lease.ExpiresAtS()+1e-9)
	if valid && c.degraded {
		c.degraded = false
		c.stats.Resyncs++
		c.stats.LastResyncS = now
		c.plane.LeaseResynced(now, c.lease.Version)
	}
	if !valid && !c.degraded {
		c.degraded = true
		c.stats.Expiries++
		c.plane.LeaseExpired(now, c.lease.Version)
	}
	c.plane.ObserveLink(c.LeaseAgeS(now))
	if c.degraded {
		c.stats.DegradedS += dt
		// The standalone fallback: rated breaker power only, overloads
		// suspended, UPS discharge disabled — safe without coordination.
		return Budget{Degraded: true}
	}
	b := Budget{
		PCbCapW:       c.lease.PCbCapW,
		AllowOverload: c.lease.AllowOverload,
		AllowUPS:      c.lease.AllowUPS,
		PhaseOffsetS:  c.lease.PhaseOffsetS,
	}
	if b.AllowOverload && now < c.suppressUntilS-1e-9 {
		b.AllowOverload = false
	}
	if b.AllowOverload && scheduleOverloading(c.cfg, b.PhaseOffsetS, now) {
		c.everOverloaded = true
		c.lastOverloadEndS = now
	}
	return b
}

// Degraded reports whether the client is currently in the standalone
// fallback.
func (c *Client) Degraded() bool { return c.degraded }

// LeaseVersion returns the current lease version (0 when none was ever
// held).
func (c *Client) LeaseVersion() uint64 {
	if !c.hasLease {
		return 0
	}
	return c.lease.Version
}

// LeaseAgeS returns how long ago the current lease was issued, or NaN when
// none is held; exported as a telemetry gauge.
func (c *Client) LeaseAgeS(now float64) float64 {
	if !c.hasLease {
		return math.NaN()
	}
	return now - c.lease.IssuedAtS
}

// Stats returns the lifecycle counters.
func (c *Client) Stats() ClientStats { return c.stats }

// NoteTelemetry caches the rack observations the next heartbeat will carry.
func (c *Client) NoteTelemetry(measuredW, soc float64, overloading bool, mode int) {
	c.beatMeasuredW = measuredW
	c.beatSoC = soc
	c.beatOverloading = overloading
	c.beatMode = mode
}

// MaybeBeat returns the heartbeat due at time now, if any: one beat every
// BeatPeriodS, starting at the first call.
func (c *Client) MaybeBeat(now float64) (Heartbeat, bool) {
	if c.beatEver && now < c.lastBeatS+c.cfg.BeatPeriodS-1e-9 {
		return Heartbeat{}, false
	}
	c.beatEver = true
	c.lastBeatS = now
	c.plane.HeartbeatSent(now, c.LeaseVersion())
	return Heartbeat{
		RackID:       c.id,
		SentAtS:      now,
		MeasuredW:    c.beatMeasuredW,
		SoC:          c.beatSoC,
		Overloading:  c.beatOverloading,
		Mode:         c.beatMode,
		LeaseVersion: c.LeaseVersion(),
		Degraded:     c.degraded,
	}, true
}

// FailSafe drops the lease outright — the rack's controller restarted
// without link state (e.g. a checkpoint predating the link) and must fall
// back until the coordinator re-grants. The overload-entry guard state
// (suppression window, overload history) survives: the next accepted grant
// re-runs both entry guards as if it were a re-phase, so a restart cannot be
// used to join a window mid-flight or skip the recovery interval.
func (c *Client) FailSafe(now float64) {
	c.hasLease = false
	c.lease = Lease{RackID: c.id}
	c.plane.LeaseFailSafe(now)
}

// Attach wires the rack's observability plane into the lease lifecycle
// (nil detaches). Purely observational: no control decision changes. A
// lease already held (the bootstrap lease) is recorded as accepted at its
// issue time, so the trace's causal chain starts at the bootstrap grant.
func (c *Client) Attach(p *obs.Plane) {
	c.plane = p
	if p != nil && c.hasLease {
		p.LeaseAccepted(c.lease.IssuedAtS, c.lease.SpanID, c.lease.Version)
	}
}

// ID returns the rack id this client serves.
func (c *Client) ID() int { return c.id }
