package link

import (
	"fmt"
	"math"

	"sprintcon/internal/obs"
)

// CoordConfig parameterises the cluster coordinator.
type CoordConfig struct {
	Link     Config
	NumRacks int
	// SlotCapacity is K, the number of racks the feeder budget lets
	// overload concurrently: K = floor((FeederBudgetW − N·rated)/bonusW).
	// The coordinator packs live racks K at a time into the
	// floor(CycleS/OverloadS) non-overlapping overload slots of the cycle.
	SlotCapacity int
}

// NumSlots returns how many non-overlapping overload windows fit in one
// cycle; it delegates to the link configuration's schedule arithmetic.
func (c CoordConfig) NumSlots() int {
	return c.Link.NumSlots()
}

// Validate reports structural errors: the link config itself, and whether
// every rack can be given a slot when all are live.
func (c CoordConfig) Validate() error {
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if c.NumRacks <= 0 {
		return fmt.Errorf("link: coordinator needs at least one rack (got %d)", c.NumRacks)
	}
	if c.SlotCapacity < 1 {
		return fmt.Errorf("link: slot capacity %d; the feeder budget must fund at least one concurrent overload", c.SlotCapacity)
	}
	if need := (c.NumRacks + c.SlotCapacity - 1) / c.SlotCapacity; need > c.NumSlots() {
		return fmt.Errorf("link: %d racks at %d per slot need %d slots but the %g s cycle holds only %d overload windows of %g s",
			c.NumRacks, c.SlotCapacity, need, c.Link.CycleS, c.NumSlots(), c.Link.OverloadS)
	}
	return nil
}

// slotOffset returns the allocator phase offset that places a rack's
// overload window at [k·OverloadS, (k+1)·OverloadS) within the cycle. The
// allocator overloads when mod(now + offset, cycle) < OverloadS, so slot k
// needs offset (cycle − k·overload) mod cycle — always non-negative, as the
// allocator requires.
func (c CoordConfig) slotOffset(k int) float64 {
	return math.Mod(c.Link.CycleS-float64(k)*c.Link.OverloadS, c.Link.CycleS)
}

// rackState is the coordinator's per-rack view of the link.
type rackState struct {
	nextVersion uint64
	lastBeatS   float64
	haveBeat    bool
	// sprintExpiryS is the expiry of the newest AllowOverload grant ever
	// sent. Until it passes, the rack may legitimately still be sprinting
	// in its slot, so the slot cannot be reassigned.
	sprintExpiryS float64
	nextSendS     float64
	nextRetryS    float64
	backoffS      float64
	// Last grant contents actually sent, to force an immediate re-grant
	// when the packing moves the rack.
	sentOffset   float64
	sentOverload bool
	everSent     bool
	presumedDown bool
	degradedByHb bool // rack itself reported degraded in its last beat
	// lastSpanID is the observability span of the newest grant put on the
	// wire for this rack — the causal parent of a later presumed-degraded
	// or silent-rack event. Soft state: a coordinator restart wipes it.
	lastSpanID uint64
}

// CoordStats counts coordinator-side events.
type CoordStats struct {
	Grants   int // full (sprint) grants issued
	Probes   int // degraded re-sync probes issued to unreachable racks
	Repacks  int // slot-assignment changes
	Presumed int // transitions into presumed-degraded
	// PeakBackoffS is the largest re-grant retry backoff actually used
	// (capped at the link's MaxBackoffS); under a sustained partition it
	// climbs the exponential ladder to the cap.
	PeakBackoffS float64
}

// Coordinator is the cluster-side end of the control link: it turns
// heartbeat traffic into per-rack link health, issues leases on the refresh
// cadence with exponential backoff toward unreachable racks, and packs the
// overload slots so at most SlotCapacity live racks sprint concurrently.
// Deterministic: all decisions are functions of configuration, observed
// beats and the simulation clock.
type Coordinator struct {
	cfg   CoordConfig
	racks []rackState
	stats CoordStats
	plane *obs.Plane
}

// Attach wires the coordinator's observability plane (nil detaches): grant
// and probe spans, presumed-degraded transitions, restart edges, and the
// silent-rack detector. Purely observational.
func (c *Coordinator) Attach(p *obs.Plane) { c.plane = p }

// NewCoordinator builds a coordinator that assumes every rack checked in at
// time zero holding its bootstrap lease (see Bootstrap).
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, racks: make([]rackState, cfg.NumRacks)}
	for i := range c.racks {
		c.racks[i] = rackState{
			nextVersion:   2, // version 1 is the bootstrap lease
			haveBeat:      true,
			sprintExpiryS: cfg.Link.TTLS,
			nextSendS:     cfg.Link.RefreshS,
			backoffS:      cfg.Link.RetryBackoffS,
			sentOffset:    cfg.slotOffset(i / cfg.SlotCapacity),
			sentOverload:  true,
			everSent:      true,
		}
	}
	return c, nil
}

// Bootstrap returns the version-1 leases each rack powers on with — the
// static slot assignment a freshly commissioned cluster is configured with
// before any network traffic flows.
func (c *Coordinator) Bootstrap() []Lease {
	out := make([]Lease, c.cfg.NumRacks)
	for i := range out {
		out[i] = Lease{
			RackID:        i,
			Version:       1,
			IssuedAtS:     0,
			TTLS:          c.cfg.Link.TTLS,
			AllowOverload: true,
			AllowUPS:      true,
			PhaseOffsetS:  c.cfg.slotOffset(i / c.cfg.SlotCapacity),
		}
		out[i].SpanID = c.plane.GrantSpan(0, i, 1, false, false, 0)
		c.racks[i].lastSpanID = out[i].SpanID
	}
	return out
}

// Observe ingests one delivered heartbeat at time now.
func (c *Coordinator) Observe(hb Heartbeat, now float64) {
	if hb.RackID < 0 || hb.RackID >= len(c.racks) {
		return
	}
	r := &c.racks[hb.RackID]
	r.lastBeatS = now
	r.haveBeat = true
	r.degradedByHb = hb.Degraded
	r.backoffS = c.cfg.Link.RetryBackoffS
	// Version recovery: after a coordinator restart the echoed lease
	// version is the only record of where the monotone counter got to.
	if hb.LeaseVersion >= r.nextVersion {
		r.nextVersion = hb.LeaseVersion + 1
	}
}

// reachable reports whether the rack's last beat is within the timeout.
func (c *Coordinator) reachable(rack int, now float64) bool {
	r := &c.racks[rack]
	return r.haveBeat && now-r.lastBeatS <= c.cfg.Link.BeatTimeoutS+1e-9
}

// PresumedDegraded reports whether the coordinator has written the rack off
// as running standalone (unreachable and every sprint grant expired).
func (c *Coordinator) PresumedDegraded(rack int) bool {
	return c.racks[rack].presumedDown
}

// Stats returns the coordinator counters.
func (c *Coordinator) Stats() CoordStats { return c.stats }

// Restart wipes the coordinator's soft state as a crash-restart would: no
// beats seen, version counters at zero pending heartbeat recovery, and —
// conservatively — a full TTL during which any rack may still hold a sprint
// grant issued before the crash.
func (c *Coordinator) Restart(now float64) {
	c.plane.CoordRestart(now)
	for i := range c.racks {
		c.racks[i] = rackState{
			nextVersion:   1,
			sprintExpiryS: now + c.cfg.Link.TTLS,
			nextSendS:     now,
			backoffS:      c.cfg.Link.RetryBackoffS,
		}
	}
}

// Step advances the coordinator to time now and returns the leases to put
// on the wire, in rack-ID order. The caller sends them through the
// Transport.
func (c *Coordinator) Step(now float64) []Lease {
	// Pass 1: reachability and presumed-degraded transitions, then the live
	// set. A slot is reclaimed only after the newest sprint grant the rack
	// could be holding has expired — before that the rack may legitimately
	// still be sprinting, and doubling up its slot would overrun the feeder.
	live := make([]int, 0, len(c.racks))
	for i := range c.racks {
		r := &c.racks[i]
		// Silent-rack detection: the heartbeat age is the coordinator's
		// only liveness signal, and it is evaluated here — while the
		// coordinator itself is down Step never runs, so a dead
		// coordinator cannot accuse racks of silence.
		if c.plane != nil {
			age := math.NaN()
			if r.haveBeat {
				age = now - r.lastBeatS
			}
			c.plane.ObserveBeatAge(now, i, age, r.lastSpanID)
		}
		down := !c.reachable(i, now) && now > r.sprintExpiryS+1e-9
		if down && !r.presumedDown {
			c.stats.Presumed++
			c.plane.PresumedDegraded(now, i, r.lastSpanID)
		}
		r.presumedDown = down
		if !down {
			live = append(live, i)
		}
	}

	// Pass 2: pack live racks K at a time into slots, in ID order. A single
	// membership change moves at most the racks after the gap, and in the
	// common one-rack-lost case exactly one rack shifts slots.
	offset := make(map[int]float64, len(live))
	for idx, rack := range live {
		offset[rack] = c.cfg.slotOffset(idx / c.cfg.SlotCapacity)
	}

	// Pass 3: issue grants.
	var out []Lease
	for i := range c.racks {
		r := &c.racks[i]
		if c.reachable(i, now) {
			want := offset[i] // reachable ⇒ never presumed down ⇒ always packed
			moved := r.everSent && (want != r.sentOffset || !r.sentOverload)
			if now < r.nextSendS-1e-9 && !moved {
				continue
			}
			if moved && want != r.sentOffset {
				c.stats.Repacks++
			}
			l := Lease{
				RackID:        i,
				Version:       r.nextVersion,
				IssuedAtS:     now,
				TTLS:          c.cfg.Link.TTLS,
				AllowOverload: true,
				AllowUPS:      true,
				PhaseOffsetS:  want,
			}
			l.SpanID = c.plane.GrantSpan(now, i, l.Version, false, moved && want != r.sentOffset, 0)
			r.lastSpanID = l.SpanID
			r.nextVersion++
			r.sprintExpiryS = l.ExpiresAtS()
			r.nextSendS = now + c.cfg.Link.RefreshS
			r.sentOffset = want
			r.sentOverload = true
			r.everSent = true
			c.stats.Grants++
			out = append(out, l)
			continue
		}
		// Unreachable: retry with exponential backoff, but send only
		// degraded probes — a sprint grant to a rack we cannot hear might
		// land while its slot is being reassigned. A probe, if it arrives,
		// moves the rack to the safe standalone budget and solicits the
		// heartbeat that heals the link.
		if now < r.nextRetryS-1e-9 {
			continue
		}
		l := Lease{
			RackID:       i,
			Version:      r.nextVersion,
			IssuedAtS:    now,
			TTLS:         c.cfg.Link.TTLS,
			PhaseOffsetS: r.sentOffset,
		}
		l.SpanID = c.plane.GrantSpan(now, i, l.Version, true, false, r.backoffS)
		r.lastSpanID = l.SpanID
		r.nextVersion++
		r.nextRetryS = now + r.backoffS
		if r.backoffS > c.stats.PeakBackoffS {
			c.stats.PeakBackoffS = r.backoffS
		}
		r.backoffS = math.Min(r.backoffS*2, c.cfg.Link.MaxBackoffS)
		r.sentOverload = false
		r.everSent = true
		c.stats.Probes++
		out = append(out, l)
	}
	return out
}
