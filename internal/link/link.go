// Package link is the coordinator↔rack control link of a linked cluster run
// (DESIGN.md §12): an explicit message-passing channel carrying power-budget
// grants from the cluster coordinator to each rack's SprintCon instance and
// telemetry heartbeats back. Where cluster.Run hands each rack a static
// phase offset at construction time — an in-memory call that can never be
// lost — the link models the real network ROADMAP item 1 puts there, with
// deterministic seeded fault hooks for message loss, delay (reordering),
// duplication, rack↔coordinator partition and coordinator crash/restart.
//
// Budgets travel as *leases*: a grant names a CB power cap, overload and UPS
// permissions and an overload phase slot, and is valid for a bounded TTL
// under a monotonically increasing per-rack version. The rack-side Client
// enforces the lease discipline — stale and duplicate grants are rejected,
// and on expiry the rack falls back within one control period to its
// last-known safe standalone budget (rated breaker power, overloads
// suspended, UPS discharge disabled) until a fresh grant re-syncs it. The
// coordinator side tracks per-rack link health from heartbeat age, re-grants
// with exponential backoff toward unreachable racks, and redistributes
// overload slots away from racks it must presume degraded.
//
// Everything here is pure state-machine logic over the simulation clock: two
// runs with identical configurations, schedules and seeds are bit-identical,
// serial or parallel.
package link

import (
	"errors"
	"fmt"
	"math"
)

// Lease is one budget grant from the coordinator to a rack. It is valid
// from IssuedAtS for TTLS seconds; Version increases monotonically per rack
// so clients can reject stale or duplicated grants after reordering.
type Lease struct {
	RackID  int
	Version uint64
	// IssuedAtS and TTLS bound the lease's validity window.
	IssuedAtS float64
	TTLS      float64
	// PCbCapW caps the rack's CB power target (0 = no cap beyond the
	// rack's own schedule).
	PCbCapW float64
	// AllowOverload and AllowUPS gate breaker overloads and battery
	// discharge; both false is the degraded standalone budget.
	AllowOverload bool
	AllowUPS      bool
	// PhaseOffsetS is the overload slot the coordinator assigned (the
	// allocator's schedule phase offset).
	PhaseOffsetS float64
	// SpanID is the coordinator-side grant span's ID, carried across the
	// transport so the rack's lifecycle spans (accept, degraded, control
	// periods) causally link back to the grant that authorized them. Zero
	// when the coordinator runs without an observability plane; purely
	// observational — no control decision reads it.
	SpanID uint64
}

// ExpiresAtS returns the simulation time the lease stops being valid.
func (l Lease) ExpiresAtS() float64 { return l.IssuedAtS + l.TTLS }

// Heartbeat is one rack→coordinator telemetry beat. LeaseVersion echoes the
// rack's current lease so a restarted coordinator can recover its version
// counters from live traffic instead of persistent state.
type Heartbeat struct {
	RackID       int
	SentAtS      float64
	MeasuredW    float64
	SoC          float64
	Overloading  bool
	Mode         int
	LeaseVersion uint64
	Degraded     bool
}

// Config holds the link protocol parameters shared by the Client and the
// Coordinator.
type Config struct {
	// TTLS is the lease validity window. It must cover at least one
	// refresh period plus transit, or healthy racks would flap degraded.
	TTLS float64
	// RefreshS is the coordinator's grant-refresh cadence per rack (the
	// link control period).
	RefreshS float64
	// BeatPeriodS is the rack heartbeat cadence.
	BeatPeriodS float64
	// BeatTimeoutS marks a rack unreachable when its last heartbeat is
	// older than this.
	BeatTimeoutS float64
	// RetryBackoffS and MaxBackoffS bound the coordinator's exponential
	// re-grant backoff toward unreachable racks.
	RetryBackoffS float64
	MaxBackoffS   float64
	// OverloadS and CycleS describe the racks' overload schedule (window
	// length and full overload+recovery period); the client's re-phase
	// guard and the coordinator's slot packing both need them.
	OverloadS float64
	CycleS    float64
	// TrustLastGrant is the naive baseline: the client ignores lease
	// expiry and keeps acting on the last grant it ever accepted. It
	// exists to demonstrate why the TTL matters (experiment E19).
	TrustLastGrant bool
}

// NumSlots returns how many non-overlapping overload windows fit in one
// cycle — the number of distinct phase offsets the coordinator can assign.
// The quotient is floored with a tolerance: plain truncation turns
// float-representation error on exact ratios (0.3/0.1 = 2.999…) into a
// lost slot and a spurious Validate rejection.
func (c Config) NumSlots() int {
	return int(math.Floor(c.CycleS/c.OverloadS + 1e-9))
}

// DefaultConfig returns link parameters matched to the paper's schedule
// (150 s overload / 300 s recovery) and SprintCon's 4 s control period.
func DefaultConfig() Config {
	return Config{
		TTLS:          12,
		RefreshS:      4,
		BeatPeriodS:   2,
		BeatTimeoutS:  8,
		RetryBackoffS: 1,
		MaxBackoffS:   8,
		OverloadS:     150,
		CycleS:        450,
	}
}

// Validate reports structural errors in the configuration. Every duration is
// rejected when NaN, Inf or non-positive — a single NaN TTL silently
// disables the entire degraded-mode ladder.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"TTLS", c.TTLS},
		{"RefreshS", c.RefreshS},
		{"BeatPeriodS", c.BeatPeriodS},
		{"BeatTimeoutS", c.BeatTimeoutS},
		{"RetryBackoffS", c.RetryBackoffS},
		{"MaxBackoffS", c.MaxBackoffS},
		{"OverloadS", c.OverloadS},
		{"CycleS", c.CycleS},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("link: %s is %g; every link parameter must be finite", f.name, f.v)
		}
		if f.v <= 0 {
			return fmt.Errorf("link: %s must be positive (got %g)", f.name, f.v)
		}
	}
	switch {
	case c.TTLS <= c.RefreshS:
		return errors.New("link: TTLS must exceed RefreshS, or healthy racks flap degraded between refreshes")
	case c.BeatTimeoutS < c.BeatPeriodS:
		return errors.New("link: BeatTimeoutS must be at least BeatPeriodS")
	case c.MaxBackoffS < c.RetryBackoffS:
		return errors.New("link: MaxBackoffS must be at least RetryBackoffS")
	case c.CycleS <= c.OverloadS:
		return errors.New("link: CycleS must exceed OverloadS")
	}
	return nil
}

// Budget is the effective budget a Client exposes to its rack's controller
// each tick: either the live lease's grant or the degraded standalone
// fallback.
type Budget struct {
	PCbCapW       float64
	AllowOverload bool
	AllowUPS      bool
	PhaseOffsetS  float64
	// Degraded reports that the budget is the standalone fallback (no
	// valid lease).
	Degraded bool
}

// scheduleOverloading reports whether the periodic overload schedule with
// the given phase offset is inside an overload window at time now (the same
// square wave the allocator runs, anchored at burst start 0).
func scheduleOverloading(cfg Config, offsetS, now float64) bool {
	phase := math.Mod(now+offsetS, cfg.CycleS)
	if phase < 0 {
		phase += cfg.CycleS
	}
	return phase < cfg.OverloadS
}
