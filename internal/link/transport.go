package link

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sprintcon/internal/faults"
)

// Transport is the simulated coordinator↔rack network. Messages incur one
// tick of base latency; the link-scoped faults of a Plan add seeded loss,
// delay (and therefore reordering), duplication, per-rack partitions and
// coordinator downtime on top. The RNG is consumed only while a loss, delay
// or duplication fault is active, so a fault-free link costs nothing and
// stays bit-identical to runs that never construct faults.
//
// Not safe for concurrent use: the cluster loop drives it in sequential
// per-tick phases (fault step → deliveries → rack ticks → sends).
type Transport struct {
	plan     faults.Plan
	active   []bool
	numRacks int
	dt       float64
	rng      *rand.Rand
	now      float64

	seq    uint64
	grants []pendingMsg // coordinator → racks, in flight
	beats  []pendingMsg // racks → coordinator, in flight

	grantBuf []Lease
	beatBuf  []Heartbeat

	stats TransportStats
}

type pendingMsg struct {
	deliverAtS float64
	seq        uint64
	grant      Lease
	beat       Heartbeat
	isGrant    bool
}

// TransportStats counts the link's traffic and losses.
type TransportStats struct {
	GrantsSent      int // grant send attempts (before faults)
	GrantsLost      int // dropped by loss faults
	GrantsPartition int // dropped by partitions or coordinator downtime
	GrantsDuped     int // extra copies injected by duplication faults
	BeatsSent       int
	BeatsLost       int
	BeatsPartition  int
	BeatsDuped      int
}

// NewTransport builds the network for a validated link-scoped fault plan.
// It panics when handed a non-link fault — Plan.Split is the supported way
// to carve a scenario's schedule — or an invalid rack count, dt or plan.
func NewTransport(plan faults.Plan, numRacks int, seed int64, dt float64) *Transport {
	if err := plan.Validate(); err != nil {
		panic(fmt.Sprintf("link: NewTransport on invalid plan: %v", err))
	}
	for _, f := range plan.Faults {
		if f.Kind.Scope() != faults.ScopeLink {
			panic(fmt.Sprintf("link: NewTransport handed %s-scoped fault %s; the transport consumes only link faults (use Plan.Split)",
				f.Kind.Scope(), f.Kind))
		}
	}
	if numRacks <= 0 {
		panic(fmt.Sprintf("link: NewTransport with %d racks", numRacks))
	}
	if dt <= 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("link: NewTransport with dt %g", dt))
	}
	return &Transport{
		plan:     plan,
		active:   make([]bool, len(plan.Faults)),
		numRacks: numRacks,
		dt:       dt,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Step advances the fault schedule to time now and returns the faults whose
// active state changed this tick, for the caller's event log.
func (t *Transport) Step(now float64) (onsets, clears []faults.Fault) {
	t.now = now
	for i, f := range t.plan.Faults {
		a := f.Active(now)
		if a == t.active[i] {
			continue
		}
		t.active[i] = a
		if a {
			onsets = append(onsets, f)
		} else {
			clears = append(clears, f)
		}
	}
	return onsets, clears
}

// anyActive returns the largest-severity active fault of the kind.
func (t *Transport) anyActive(k faults.Kind) (faults.Fault, bool) {
	var best faults.Fault
	found := false
	for i, f := range t.plan.Faults {
		if !t.active[i] || f.Kind != k {
			continue
		}
		if !found || math.Abs(f.Severity) > math.Abs(best.Severity) {
			best = f
		}
		found = true
	}
	return best, found
}

// CoordinatorDown reports whether a coordinator-crash fault is active.
func (t *Transport) CoordinatorDown() bool {
	_, ok := t.anyActive(faults.CoordinatorCrash)
	return ok
}

// Partitioned reports whether the given rack is currently cut off from the
// coordinator (both directions).
func (t *Transport) Partitioned(rack int) bool {
	for i, f := range t.plan.Faults {
		if !t.active[i] || f.Kind != faults.LinkPartition {
			continue
		}
		if f.Server == faults.AllRacks || f.Server == rack {
			return true
		}
	}
	return false
}

// Stats returns the traffic counters.
func (t *Transport) Stats() TransportStats { return t.stats }

// transit decides one message's fate: dropped (lost=true), or delivered at
// the returned time (plus optionally duplicated). The RNG draw order is
// fixed — loss, then delay, then duplication — and draws happen only while
// the corresponding fault is active, keeping fault-free traffic free of RNG
// consumption.
func (t *Transport) transit(now float64) (deliverAt float64, dup, lost bool) {
	if f, ok := t.anyActive(faults.LinkLoss); ok {
		if t.rng.Float64() < f.Severity {
			return 0, false, true
		}
	}
	deliverAt = now + t.dt
	if f, ok := t.anyActive(faults.LinkDelay); ok {
		deliverAt += t.rng.Float64() * f.Severity
	}
	if f, ok := t.anyActive(faults.LinkDup); ok {
		dup = t.rng.Float64() < f.Severity
	}
	return deliverAt, dup, false
}

// SendGrant puts a coordinator→rack lease on the wire at time now.
func (t *Transport) SendGrant(now float64, l Lease) {
	t.stats.GrantsSent++
	if t.Partitioned(l.RackID) || t.CoordinatorDown() {
		t.stats.GrantsPartition++
		return
	}
	at, dup, lost := t.transit(now)
	if lost {
		t.stats.GrantsLost++
		return
	}
	t.seq++
	t.grants = append(t.grants, pendingMsg{deliverAtS: at, seq: t.seq, grant: l, isGrant: true})
	if dup {
		// The duplicate trails the original by one tick: same payload,
		// distinct arrival, no extra RNG.
		t.stats.GrantsDuped++
		t.seq++
		t.grants = append(t.grants, pendingMsg{deliverAtS: at + t.dt, seq: t.seq, grant: l, isGrant: true})
	}
}

// SendBeat puts a rack→coordinator heartbeat on the wire at time now.
func (t *Transport) SendBeat(now float64, hb Heartbeat) {
	t.stats.BeatsSent++
	if t.Partitioned(hb.RackID) {
		t.stats.BeatsPartition++
		return
	}
	at, dup, lost := t.transit(now)
	if lost {
		t.stats.BeatsLost++
		return
	}
	t.seq++
	t.beats = append(t.beats, pendingMsg{deliverAtS: at, seq: t.seq, beat: hb})
	if dup {
		t.stats.BeatsDuped++
		t.seq++
		t.beats = append(t.beats, pendingMsg{deliverAtS: at + t.dt, seq: t.seq, beat: hb})
	}
}

// drain moves every message due at or before now out of queue, ordered by
// (deliverAt, seq) so reordered deliveries are still deterministic. A
// partition at delivery time drops the message — the link was down when the
// bits would have arrived.
func drain(queue []pendingMsg, now float64) (due, rest []pendingMsg) {
	rest = queue[:0]
	for _, m := range queue {
		if m.deliverAtS <= now+1e-9 {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].deliverAtS != due[j].deliverAtS {
			return due[i].deliverAtS < due[j].deliverAtS
		}
		return due[i].seq < due[j].seq
	})
	return due, rest
}

// DeliverGrants returns the leases arriving at rack `rack` by time now, in
// arrival order. Grants whose destination is partitioned at delivery time
// are dropped.
func (t *Transport) DeliverGrants(rack int, now float64) []Lease {
	var out []pendingMsg
	kept := t.grants[:0]
	for _, m := range t.grants {
		if m.grant.RackID != rack {
			kept = append(kept, m)
			continue
		}
		if m.deliverAtS > now+1e-9 {
			kept = append(kept, m)
			continue
		}
		if t.Partitioned(rack) {
			t.stats.GrantsPartition++
			continue
		}
		out = append(out, m)
	}
	t.grants = kept
	sort.Slice(out, func(i, j int) bool {
		if out[i].deliverAtS != out[j].deliverAtS {
			return out[i].deliverAtS < out[j].deliverAtS
		}
		return out[i].seq < out[j].seq
	})
	res := t.grantBuf[:0]
	for _, m := range out {
		res = append(res, m.grant)
	}
	t.grantBuf = res
	return res
}

// DeliverBeats returns the heartbeats arriving at the coordinator by time
// now, in arrival order. Beats from a rack partitioned at delivery time, or
// arriving while the coordinator is down, are dropped.
func (t *Transport) DeliverBeats(now float64) []Heartbeat {
	var due []pendingMsg
	due, t.beats = drain(t.beats, now)
	out := t.beatBuf[:0]
	for _, m := range due {
		if t.Partitioned(m.beat.RackID) || t.CoordinatorDown() {
			t.stats.BeatsPartition++
			continue
		}
		out = append(out, m.beat)
	}
	t.beatBuf = out
	return out
}
