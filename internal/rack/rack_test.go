package rack

import (
	"math"
	"testing"

	"sprintcon/internal/cpu"
	"sprintcon/internal/workload"
)

func mustNew(t *testing.T) *Rack {
	t.Helper()
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero servers", func(c *Config) { c.NumServers = 0 }},
		{"too many cores", func(c *Config) { c.InteractiveCoresPerServer = 8; c.BatchCoresPerServer = 8 }},
		{"zero batch cores", func(c *Config) { c.BatchCoresPerServer = 0 }},
		{"negative noise", func(c *Config) { c.MonitorNoiseStd = -1 }},
		{"bad server", func(c *Config) { c.ServerParams.IdleW = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTopology(t *testing.T) {
	r := mustNew(t)
	if len(r.Servers()) != 16 {
		t.Fatalf("servers = %d", len(r.Servers()))
	}
	if len(r.InteractiveCores()) != 64 || len(r.BatchCores()) != 64 {
		t.Fatalf("core partition %d/%d, want 64/64", len(r.InteractiveCores()), len(r.BatchCores()))
	}
	// Interactive cores start at peak; batch cores at the floor.
	for _, ref := range r.InteractiveCores() {
		if f := r.Servers()[ref.Server].CPU().Core(ref.Core).Freq; f != 2.0 {
			t.Fatalf("interactive core %v at %v, want 2.0", ref, f)
		}
	}
	for _, ref := range r.BatchCores() {
		if f := r.Servers()[ref.Server].CPU().Core(ref.Core).Freq; f != 0.4 {
			t.Fatalf("batch core %v at %v, want 0.4", ref, f)
		}
	}
}

func TestRackMaxPowerMatchesPaper(t *testing.T) {
	// Paper: 16 servers × 300 W = 4.8 kW maximum.
	cfg := DefaultConfig()
	cfg.MonitorNoiseStd = 0
	cfg.UtilJitterStd = 0
	cfg.ServerParams.FanW = 0
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Servers() {
		for c := 0; c < 8; c++ {
			s.CPU().SetFreq(c, 2.0)
			s.CPU().SetUtil(c, 1)
		}
	}
	if got := r.TruePower(); math.Abs(got-4800) > 1e-6 {
		t.Fatalf("max rack power = %v, want 4800", got)
	}
}

func TestRackIdlePower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServerParams.FanW = 0
	r, _ := New(cfg)
	if got := r.TruePower(); math.Abs(got-16*150) > 1e-6 {
		t.Fatalf("idle rack power = %v, want 2400", got)
	}
}

func TestBindAndAdvanceJobs(t *testing.T) {
	r := mustNew(t)
	specs := workload.SpecCPU2006()
	for i, ref := range r.BatchCores() {
		j, err := workload.NewBatchJob(specs[i%len(specs)], 0, 900)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.BindJob(ref, j); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Jobs()) != 64 {
		t.Fatalf("jobs = %d", len(r.Jobs()))
	}
	// Run all batch cores at peak for 60 s; every job must make progress.
	freqs := make([]float64, 64)
	for i := range freqs {
		freqs[i] = 2.0
	}
	if _, err := r.SetBatchFreqs(freqs); err != nil {
		t.Fatal(err)
	}
	r.AdvanceBatch(60, 0)
	for i, j := range r.Jobs() {
		if j.Progress() <= 0 {
			t.Fatalf("job %d made no progress", i)
		}
	}
	// Batch utilization reflects the specs.
	for _, ref := range r.BatchCores() {
		u := r.Servers()[ref.Server].CPU().Core(ref.Core).Util
		if u < 0.9 {
			t.Fatalf("batch core %v util %v, want spec value ≥0.9", ref, u)
		}
	}
}

func TestBindJobRejectsNonBatchCore(t *testing.T) {
	r := mustNew(t)
	j, _ := workload.NewBatchJob(workload.SpecCPU2006()[0], 0, 900)
	if err := r.BindJob(CoreRef{Server: 0, Core: 0}, j); err == nil {
		t.Fatal("binding to an interactive core should fail")
	}
	if err := r.BindJob(CoreRef{Server: 99, Core: 0}, j); err == nil {
		t.Fatal("binding to a bad server should fail")
	}
}

func TestApplyInteractiveDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UtilJitterStd = 0
	r, _ := New(cfg)
	r.ApplyInteractiveDemand(0.7)
	for _, ref := range r.InteractiveCores() {
		if u := r.Servers()[ref.Server].CPU().Core(ref.Core).Util; math.Abs(u-0.7) > 1e-9 {
			t.Fatalf("core %v util %v, want 0.7", ref, u)
		}
	}
	r.ApplyInteractiveDemand(1.5) // saturates
	for _, ref := range r.InteractiveCores() {
		if u := r.Servers()[ref.Server].CPU().Core(ref.Core).Util; u != 1 {
			t.Fatalf("core %v util %v, want clamp to 1", ref, u)
		}
	}
}

func TestInteractiveUtilizationRisesWhenThrottled(t *testing.T) {
	// Demand is defined relative to a peak-frequency core: the same
	// request stream makes a throttled core proportionally busier.
	cfg := DefaultConfig()
	cfg.UtilJitterStd = 0
	r, _ := New(cfg)
	r.SetInteractiveFreq(1.0) // half of peak
	r.ApplyInteractiveDemand(0.3)
	for _, ref := range r.InteractiveCores() {
		u := r.Servers()[ref.Server].CPU().Core(ref.Core).Util
		if math.Abs(u-0.6) > 1e-9 {
			t.Fatalf("core %v util %v, want 0.6 (= 0.3 x 2.0/1.0)", ref, u)
		}
	}
	// Saturation: demand beyond the throttled capacity clamps to 1.
	r.ApplyInteractiveDemand(0.7)
	for _, ref := range r.InteractiveCores() {
		if u := r.Servers()[ref.Server].CPU().Core(ref.Core).Util; u != 1 {
			t.Fatalf("core %v util %v, want saturated", ref, u)
		}
	}
}

func TestSetBatchFreqsQuantizesAndValidates(t *testing.T) {
	r := mustNew(t)
	freqs := make([]float64, 64)
	for i := range freqs {
		freqs[i] = 1.234
	}
	applied, err := r.SetBatchFreqs(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range applied {
		if f != 1.2 {
			t.Fatalf("applied %v, want quantized 1.2", f)
		}
	}
	got := r.BatchFreqs()
	for _, f := range got {
		if f != 1.2 {
			t.Fatalf("BatchFreqs returned %v", f)
		}
	}
	if _, err := r.SetBatchFreqs(freqs[:3]); err == nil {
		t.Fatal("wrong length should fail")
	}
}

func TestMeasuredPowerNoise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MonitorNoiseStd = 0.01
	r, _ := New(cfg)
	truth := r.TruePower()
	var deviated bool
	for i := 0; i < 32; i++ {
		m := r.MeasuredPower()
		if math.Abs(m-truth) > 0.1*truth {
			t.Fatalf("measurement %v implausibly far from %v", m, truth)
		}
		if m != truth {
			deviated = true
		}
	}
	if !deviated {
		t.Fatal("noisy monitor never deviated from truth")
	}
	cfg.MonitorNoiseStd = 0
	r2, _ := New(cfg)
	if r2.MeasuredPower() != r2.TruePower() {
		t.Fatal("zero noise must measure exactly")
	}
}

func TestBatchFeedbackTracksTrueBatchPower(t *testing.T) {
	// Eq. (6) with exact measurement should approximate the true batch
	// power within the interactive model error.
	cfg := DefaultConfig()
	cfg.MonitorNoiseStd = 0
	cfg.UtilJitterStd = 0
	cfg.ServerParams.FanW = 0 // remove disturbance for the exactness check
	r, _ := New(cfg)
	specs := workload.SpecCPU2006()
	for i, ref := range r.BatchCores() {
		j, _ := workload.NewBatchJob(specs[i%len(specs)], 0, 900)
		r.BindJob(ref, j)
	}
	r.ApplyInteractiveDemand(0.6)
	freqs := make([]float64, 64)
	for i := range freqs {
		freqs[i] = 1.5
	}
	r.SetBatchFreqs(freqs)
	r.AdvanceBatch(1, 0)

	fb := r.BatchFeedback(r.TruePower())
	truth := r.TruePowerOfClass(cpu.Batch)
	if rel := math.Abs(fb-truth) / truth; rel > 0.02 {
		t.Fatalf("feedback %v vs true batch power %v (rel err %.3f)", fb, truth, rel)
	}
}

func TestBatchFeedbackNeverNegative(t *testing.T) {
	r := mustNew(t)
	if fb := r.BatchFeedback(0); fb < 0 {
		t.Fatalf("feedback = %v, want clamped ≥ 0", fb)
	}
}

func TestRWeights(t *testing.T) {
	r := mustNew(t)
	specs := workload.SpecCPU2006()
	j, _ := workload.NewBatchJob(specs[0], 0, 600)
	r.BindJob(r.BatchCores()[0], j)
	w := r.RWeights(0)
	if len(w) != 64 {
		t.Fatalf("weights length %d", len(w))
	}
	if w[0] <= 0 {
		t.Fatalf("bound core weight %v", w[0])
	}
	if w[1] != 1 {
		t.Fatalf("unbound core weight %v, want 1", w[1])
	}
}

func TestMeanFreqNormMetrics(t *testing.T) {
	r := mustNew(t)
	if got := r.MeanInteractiveFreqNorm(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("interactive norm freq %v, want 1 (peak)", got)
	}
	if got := r.MeanBatchFreqNorm(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("batch norm freq %v, want 0.2 (0.4/2.0)", got)
	}
	freqs := make([]float64, 64)
	for i := range freqs {
		freqs[i] = 1.0
	}
	r.SetBatchFreqs(freqs)
	if got := r.MeanBatchFreqNorm(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("batch norm freq %v, want 0.5", got)
	}
}

func TestClassPowerPartition(t *testing.T) {
	r := mustNew(t)
	r.ApplyInteractiveDemand(0.8)
	total := r.TruePower()
	sum := r.TruePowerOfClass(cpu.Interactive) + r.TruePowerOfClass(cpu.Batch) + r.TruePowerOfClass(cpu.Idle)
	if math.Abs(total-sum) > 1e-6 {
		t.Fatalf("class powers %v ≠ total %v", sum, total)
	}
}
