// Package rack assembles servers into the paper's evaluation unit: a rack
// of 16 servers behind one circuit breaker and one UPS. It binds batch jobs
// to cores, applies interactive demand to the interactive cores, provides
// the (noisy) rack power monitor, and implements the feedback measurement
// model of paper Eq. (5)–(6): batch power cannot be measured directly on
// shared servers, so it is estimated as p_fb = p_total − (K'·U + C').
package rack

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sprintcon/internal/cpu"
	"sprintcon/internal/server"
	"sprintcon/internal/workload"
)

// CoreRef addresses one core on one server of the rack.
type CoreRef struct {
	Server int
	Core   int
}

// String formats the reference for logs.
func (r CoreRef) String() string { return fmt.Sprintf("s%d/c%d", r.Server, r.Core) }

// Config describes a rack.
type Config struct {
	// NumServers is the rack size (paper: 16).
	NumServers int
	// ServerParams applies to every server.
	ServerParams server.Params
	// InteractiveCoresPerServer and BatchCoresPerServer partition each
	// server's cores (paper physical tests: 4 workloads per server; the
	// mixed deployment runs both classes on one server, Section IV-C).
	InteractiveCoresPerServer int
	BatchCoresPerServer       int
	// MonitorNoiseStd is the relative standard deviation of the rack
	// power monitor's multiplicative error.
	MonitorNoiseStd float64
	// UtilJitterStd adds per-core noise to interactive utilization so
	// servers are not perfectly balanced.
	UtilJitterStd float64
	// Seed makes monitor noise and jitter deterministic.
	Seed int64
}

// DefaultConfig returns the paper's 16-server rack with a 4/4 split of
// interactive and batch cores per server.
func DefaultConfig() Config {
	return Config{
		NumServers:                16,
		ServerParams:              server.DefaultParams(),
		InteractiveCoresPerServer: 4,
		BatchCoresPerServer:       4,
		MonitorNoiseStd:           0.004,
		UtilJitterStd:             0.03,
		Seed:                      7,
	}
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	if c.NumServers <= 0 {
		return errors.New("rack: NumServers must be positive")
	}
	if err := c.ServerParams.Validate(); err != nil {
		return err
	}
	if c.InteractiveCoresPerServer < 0 || c.BatchCoresPerServer <= 0 {
		return errors.New("rack: need non-negative interactive and positive batch cores")
	}
	if c.InteractiveCoresPerServer+c.BatchCoresPerServer > c.ServerParams.Cores {
		return fmt.Errorf("rack: %d+%d assigned cores exceed %d per server",
			c.InteractiveCoresPerServer, c.BatchCoresPerServer, c.ServerParams.Cores)
	}
	if c.MonitorNoiseStd < 0 || c.UtilJitterStd < 0 {
		return errors.New("rack: noise parameters must be non-negative")
	}
	return nil
}

// FaultState is the injected component-failure condition of one server,
// applied by the simulation engine each tick. The zero value is healthy.
type FaultState struct {
	// Offline marks a crashed server: it draws no power, executes no
	// work and reports no telemetry until it recovers.
	Offline bool
	// Stuck makes the server's DVFS actuator silently ignore writes.
	Stuck bool
	// LagFrac, when non-zero, makes each frequency write move only this
	// fraction of the way from the current frequency to the command.
	LagFrac float64
}

// Rack is the assembled simulation target.
type Rack struct {
	cfg     Config
	servers []*server.Server
	batch   []CoreRef
	inter   []CoreRef
	jobs    map[CoreRef]*workload.BatchJob
	// jobSeq mirrors jobs in batch-core order (nil for unbound cores) so
	// the per-tick AdvanceBatch/RWeightsInto sweeps walk a contiguous
	// slice instead of hashing a CoreRef per core.
	jobSeq []*workload.BatchJob
	env    server.Environment
	rng    *rand.Rand
	// normDraws counts NormFloat64 calls on rng since construction. A
	// checkpoint records the count and a restore replays it against a
	// fresh seeded source, putting the noise stream back in the exact
	// position it had when the snapshot was taken.
	normDraws int64
	faults    []FaultState
}

// New assembles a rack with all interactive cores at peak frequency and all
// batch cores at the lowest P-state.
func New(cfg Config) (*Rack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Rack{
		cfg:  cfg,
		jobs: make(map[CoreRef]*workload.BatchJob),
		env:  server.Environment{AmbientC: 25},
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.NumServers; i++ {
		s, err := server.New(i, cfg.ServerParams)
		if err != nil {
			return nil, err
		}
		for c := 0; c < cfg.InteractiveCoresPerServer; c++ {
			s.CPU().SetClass(c, cpu.Interactive)
			s.CPU().SetFreq(c, cfg.ServerParams.PStates.Max())
			r.inter = append(r.inter, CoreRef{Server: i, Core: c})
		}
		for c := cfg.InteractiveCoresPerServer; c < cfg.InteractiveCoresPerServer+cfg.BatchCoresPerServer; c++ {
			s.CPU().SetClass(c, cpu.Batch)
			s.CPU().SetFreq(c, cfg.ServerParams.PStates.Min())
			r.batch = append(r.batch, CoreRef{Server: i, Core: c})
		}
		r.servers = append(r.servers, s)
	}
	r.jobSeq = make([]*workload.BatchJob, len(r.batch))
	r.faults = make([]FaultState, cfg.NumServers)
	return r, nil
}

// SetFaultState applies an injected failure condition to one server.
func (r *Rack) SetFaultState(serverIdx int, st FaultState) {
	if serverIdx < 0 || serverIdx >= len(r.faults) {
		return
	}
	r.faults[serverIdx] = st
}

// FaultStateOf returns the current failure condition of one server.
func (r *Rack) FaultStateOf(serverIdx int) FaultState {
	if serverIdx < 0 || serverIdx >= len(r.faults) {
		return FaultState{}
	}
	return r.faults[serverIdx]
}

// ServerOffline reports whether a server is currently crashed. Controllers
// may use this: a dead server is detectable in practice via heartbeat loss,
// unlike a silently stuck actuator.
func (r *Rack) ServerOffline(serverIdx int) bool {
	return r.FaultStateOf(serverIdx).Offline
}

// Config returns the rack configuration.
func (r *Rack) Config() Config { return r.cfg }

// Servers returns the rack's servers (shared state, not a copy).
func (r *Rack) Servers() []*server.Server { return r.servers }

// BatchCores returns the references of all batch cores, in stable order.
func (r *Rack) BatchCores() []CoreRef { return r.batch }

// InteractiveCores returns the references of all interactive cores.
func (r *Rack) InteractiveCores() []CoreRef { return r.inter }

// SetAmbient sets the inlet air temperature seen by every server.
func (r *Rack) SetAmbient(c float64) { r.env.AmbientC = c }

// Environment returns the current disturbance inputs.
func (r *Rack) Environment() server.Environment { return r.env }

// BindJob attaches a batch job to a batch core.
func (r *Rack) BindJob(ref CoreRef, j *workload.BatchJob) error {
	if ref.Server < 0 || ref.Server >= len(r.servers) {
		return fmt.Errorf("rack: bad server index %d", ref.Server)
	}
	if r.servers[ref.Server].CPU().Core(ref.Core).Class != cpu.Batch {
		return fmt.Errorf("rack: core %v is not a batch core", ref)
	}
	r.jobs[ref] = j
	for i, b := range r.batch {
		if b == ref {
			r.jobSeq[i] = j
			break
		}
	}
	return nil
}

// Job returns the job bound to a core (nil if none).
func (r *Rack) Job(ref CoreRef) *workload.BatchJob { return r.jobs[ref] }

// Jobs returns all bound jobs in batch-core order (skipping unbound cores).
func (r *Rack) Jobs() []*workload.BatchJob {
	out := make([]*workload.BatchJob, 0, len(r.jobs))
	for _, ref := range r.batch {
		if j := r.jobs[ref]; j != nil {
			out = append(out, j)
		}
	}
	return out
}

// ApplyInteractiveDemand sets the utilization of every interactive core
// from the demand fraction plus per-core jitter. Demand is expressed
// relative to a core at peak frequency, so a throttled core is busier for
// the same request stream: util = demand · f_max/f, clamped to 1 (the core
// saturates and requests queue). This coupling is why utilization-ordered
// sprinting (the SGCT baselines) ends up upgrading throttled interactive
// cores.
func (r *Rack) ApplyInteractiveDemand(demand float64) {
	fmax := r.cfg.ServerParams.PStates.Max()
	for _, ref := range r.inter {
		u := demand
		if r.cfg.UtilJitterStd > 0 {
			u += r.rng.NormFloat64() * r.cfg.UtilJitterStd
			r.normDraws++
		}
		if r.faults[ref.Server].Offline {
			// A crashed server serves nothing; its share of the demand
			// is lost (requests fail over outside the rack).
			r.servers[ref.Server].CPU().SetUtil(ref.Core, 0)
			continue
		}
		f := r.servers[ref.Server].CPU().Core(ref.Core).Freq
		if f > 0 {
			u *= fmax / f
		}
		r.servers[ref.Server].CPU().SetUtil(ref.Core, u)
	}
}

// SetCoreFreq is the rack's single DVFS actuation path: every frequency
// write — SprintCon's MPC moves and the baselines' theta walks alike — goes
// through it, so injected actuator faults (stuck, lagging) and server
// crashes affect all policies. It returns the frequency actually applied,
// which the caller can compare against the command to detect a stuck
// actuator.
func (r *Rack) SetCoreFreq(ref CoreRef, f float64) float64 {
	if ref.Server < 0 || ref.Server >= len(r.servers) {
		return 0
	}
	st := r.faults[ref.Server]
	cur := r.servers[ref.Server].CPU().Core(ref.Core).Freq
	if st.Offline || st.Stuck {
		return cur
	}
	if st.LagFrac > 0 && st.LagFrac < 1 {
		f = cur + st.LagFrac*(f-cur)
	}
	return r.servers[ref.Server].CPU().SetFreq(ref.Core, f)
}

// SetInteractiveFreq sets every interactive core to frequency f (the
// SprintCon policy keeps this at peak during sprints; SGCT baselines vary it).
func (r *Rack) SetInteractiveFreq(f float64) {
	for _, ref := range r.inter {
		r.SetCoreFreq(ref, f)
	}
}

// SetBatchFreqs applies a frequency per batch core in BatchCores() order,
// quantized to the P-state table, and returns the applied values (GHz).
func (r *Rack) SetBatchFreqs(freqs []float64) ([]float64, error) {
	return r.SetBatchFreqsInto(freqs, make([]float64, len(freqs)))
}

// SetBatchFreqsInto is SetBatchFreqs writing the applied values into the
// preallocated applied slice (returned), for allocation-free control
// periods. applied must have the same length as freqs and may alias it.
func (r *Rack) SetBatchFreqsInto(freqs, applied []float64) ([]float64, error) {
	if len(freqs) != len(r.batch) {
		return nil, fmt.Errorf("rack: got %d frequencies for %d batch cores", len(freqs), len(r.batch))
	}
	if len(applied) != len(freqs) {
		return nil, fmt.Errorf("rack: applied buffer length %d for %d batch cores", len(applied), len(r.batch))
	}
	for i, ref := range r.batch {
		applied[i] = r.SetCoreFreq(ref, freqs[i])
	}
	return applied, nil
}

// BatchFreqs returns the current frequency of every batch core.
func (r *Rack) BatchFreqs() []float64 {
	out := make([]float64, len(r.batch))
	for i, ref := range r.batch {
		out[i] = r.servers[ref.Server].CPU().Core(ref.Core).Freq
	}
	return out
}

// AdvanceBatch executes every bound job for dt seconds at its core's
// current frequency and refreshes the batch cores' utilizations from their
// workload specs (idle if unbound or between work).
func (r *Rack) AdvanceBatch(dt, now float64) {
	fmax := r.cfg.ServerParams.PStates.Max()
	for i, ref := range r.batch {
		j := r.jobSeq[i]
		if j == nil || r.faults[ref.Server].Offline {
			// No job, or a crashed server: no work executes this tick.
			r.servers[ref.Server].CPU().SetUtil(ref.Core, 0)
			continue
		}
		f := r.servers[ref.Server].CPU().Core(ref.Core).Freq
		j.Advance(f, fmax, dt, now)
		r.servers[ref.Server].CPU().SetUtil(ref.Core, j.CurrentUtil())
	}
}

// AdvanceBatchTicks executes n consecutive AdvanceBatch ticks of size dt
// starting at simulation time now0, job-major: each job runs its n ticks
// back to back before the next job. Because jobs never interact and the
// core frequencies are untouched, the end state is bit-identical to n
// interleaved AdvanceBatch calls — this is the event engine's quiescent-
// span replay kernel, reduced to the job progress arithmetic alone.
func (r *Rack) AdvanceBatchTicks(dt, now0 float64, n int) {
	fmax := r.cfg.ServerParams.PStates.Max()
	for i, ref := range r.batch {
		j := r.jobSeq[i]
		if j == nil || r.faults[ref.Server].Offline {
			r.servers[ref.Server].CPU().SetUtil(ref.Core, 0)
			continue
		}
		f := r.servers[ref.Server].CPU().Core(ref.Core).Freq
		j.AdvanceTicks(f, fmax, dt, now0, n)
		r.servers[ref.Server].CPU().SetUtil(ref.Core, j.CurrentUtil())
	}
}

// BatchStableTicks returns a conservative number of upcoming ticks of size
// dt over which no batch core's reported utilization can change at the
// current frequencies: the minimum of the bound jobs' phase-stability
// horizons. Single-phase jobs (constant utilization across re-execution
// wraps) impose no bound. The result is capped at maxTicks.
func (r *Rack) BatchStableTicks(dt float64, maxTicks int) int {
	fmax := r.cfg.ServerParams.PStates.Max()
	min := maxTicks
	for i, ref := range r.batch {
		j := r.jobSeq[i]
		if j == nil || r.faults[ref.Server].Offline {
			continue
		}
		f := r.servers[ref.Server].CPU().Core(ref.Core).Freq
		if n := j.StableTicks(f, fmax, dt); n < min {
			min = n
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// AllBatchJobsCompleted reports whether every bound batch job has finished
// at least once. Completed jobs have time-independent control weights
// (RWeight is the constant re-execution urgency), which is one of the event
// engine's eligibility conditions for closing a quiescent span analytically.
func (r *Rack) AllBatchJobsCompleted() bool {
	for _, j := range r.jobSeq {
		if j == nil {
			continue
		}
		if !j.Completed() {
			return false
		}
	}
	return true
}

// --- Power monitoring ------------------------------------------------------

// TruePower returns the exact rack power (measurement model, no monitor
// noise). Crashed servers draw nothing.
func (r *Rack) TruePower() float64 {
	var p float64
	for i, s := range r.servers {
		if r.faults[i].Offline {
			continue
		}
		p += s.Power(r.env)
	}
	return p
}

// TruePowerOfClass returns the exact rack power attributable to a class.
func (r *Rack) TruePowerOfClass(cl cpu.Class) float64 {
	var p float64
	for i, s := range r.servers {
		if r.faults[i].Offline {
			continue
		}
		p += s.PowerOfClass(cl, r.env)
	}
	return p
}

// MeasuredPower returns the rack power monitor's reading: true power with
// multiplicative Gaussian error (paper: p_total "can be physically measured
// by a power monitor" — real monitors are a fraction of a percent off).
func (r *Rack) MeasuredPower() float64 {
	return r.Measure(r.TruePower())
}

// Measure applies the power monitor's multiplicative error to an
// already-computed true rack power. Callers that need both the true and the
// measured value in one tick use this to evaluate the measurement model
// once instead of twice; Measure(TruePower()) ≡ MeasuredPower().
func (r *Rack) Measure(trueW float64) float64 {
	if r.cfg.MonitorNoiseStd > 0 {
		trueW *= 1 + r.rng.NormFloat64()*r.cfg.MonitorNoiseStd
		r.normDraws++
	}
	return trueW
}

// --- Design-model estimators (paper Eq. 5–6) --------------------------------

// EstimateInteractivePower evaluates Eq. (5), p_inter = K'·U + C', from the
// per-core utilization monitors. It is exact only when interactive cores run
// at peak frequency and carries model error otherwise — exactly the paper's
// assumption.
func (r *Rack) EstimateInteractivePower() float64 {
	co := r.cfg.ServerParams.InteractiveCoeffs()
	var p float64
	for _, ref := range r.inter {
		if r.faults[ref.Server].Offline {
			// A dead server's heartbeat loss is visible to the
			// controller; its cores are excluded from the estimate so
			// Eq. (6)'s subtraction stays consistent with the monitor.
			continue
		}
		u := r.servers[ref.Server].CPU().Core(ref.Core).Util
		p += co.KWPerGHz*u + co.CIdleShareW
	}
	return p
}

// EstimateIdlePower returns the design model's estimate of the power of
// unassigned (idle-class) cores: their idle share only.
func (r *Rack) EstimateIdlePower() float64 {
	perCore := r.cfg.ServerParams.IdleW / float64(r.cfg.ServerParams.Cores)
	idlePerServer := r.cfg.ServerParams.Cores - r.cfg.InteractiveCoresPerServer - r.cfg.BatchCoresPerServer
	return perCore * float64(idlePerServer*r.cfg.NumServers)
}

// BatchFeedback evaluates Eq. (6): the feedback power of batch processing,
// p_fb = p_total − p_inter − p_idle, from a total-power measurement. This is
// the controller's only view of batch power on shared servers.
func (r *Rack) BatchFeedback(measuredTotal float64) float64 {
	fb := measuredTotal - r.EstimateInteractivePower() - r.EstimateIdlePower()
	return math.Max(0, fb)
}

// RWeights returns the paper's per-batch-core control-penalty weights
// R_{i,j} (dimensionless) at time now, in BatchCores() order (1 for unbound
// cores).
func (r *Rack) RWeights(now float64) []float64 {
	return r.RWeightsInto(make([]float64, len(r.batch)), now)
}

// RWeightsInto is RWeights writing into the preallocated dst (returned),
// for allocation-free control periods. dst must have one element per batch
// core.
func (r *Rack) RWeightsInto(dst []float64, now float64) []float64 {
	if len(dst) != len(r.batch) {
		panic(fmt.Sprintf("rack: RWeightsInto dst length %d for %d batch cores", len(dst), len(r.batch)))
	}
	for i := range r.batch {
		if j := r.jobSeq[i]; j != nil {
			dst[i] = j.RWeight(now)
		} else {
			dst[i] = 1
		}
	}
	return dst
}

// MeanBatchFreqNorm returns the batch cores' mean frequency normalized to
// peak (the paper's Fig. 7 metric).
func (r *Rack) MeanBatchFreqNorm() float64 {
	if len(r.batch) == 0 {
		return 0
	}
	var sum float64
	for _, ref := range r.batch {
		if r.faults[ref.Server].Offline {
			continue // a dark core executes at frequency 0
		}
		sum += r.servers[ref.Server].CPU().Core(ref.Core).Freq
	}
	return sum / float64(len(r.batch)) / r.cfg.ServerParams.PStates.Max()
}

// MeanInteractiveFreqNorm returns the interactive cores' mean normalized
// frequency.
func (r *Rack) MeanInteractiveFreqNorm() float64 {
	if len(r.inter) == 0 {
		return 0
	}
	var sum float64
	for _, ref := range r.inter {
		if r.faults[ref.Server].Offline {
			continue
		}
		sum += r.servers[ref.Server].CPU().Core(ref.Core).Freq
	}
	return sum / float64(len(r.inter)) / r.cfg.ServerParams.PStates.Max()
}
