package rack

import (
	"fmt"
	"math"
	"math/rand"

	"sprintcon/internal/workload"
)

// CoreState is one core's mutable state in a rack snapshot.
type CoreState struct {
	FreqGHz float64
	Util    float64
}

// State is the serializable snapshot of a rack's mutable state: every
// core's frequency and utilization, the per-server injected-fault
// condition, the noise-stream position, and the batch jobs' execution
// state (in BatchCores order, with JobBound marking cores that have a job).
type State struct {
	Cores     [][]CoreState // [server][core]
	Faults    []FaultState
	NormDraws int64
	JobBound  []bool
	Jobs      []workload.JobState
}

// maxNormDraws bounds the replayable noise-stream position: far beyond any
// realistic run length, but small enough that a corrupt snapshot cannot
// stall a restore replaying an absurd count.
const maxNormDraws = 100_000_000

// ExportState captures the rack's mutable state.
func (r *Rack) ExportState() State {
	st := State{
		Cores:     make([][]CoreState, len(r.servers)),
		Faults:    append([]FaultState(nil), r.faults...),
		NormDraws: r.normDraws,
		JobBound:  make([]bool, len(r.batch)),
		Jobs:      make([]workload.JobState, len(r.batch)),
	}
	for si, s := range r.servers {
		cores := make([]CoreState, s.CPU().NumCores())
		for ci := range cores {
			c := s.CPU().Core(ci)
			cores[ci] = CoreState{FreqGHz: c.Freq, Util: c.Util}
		}
		st.Cores[si] = cores
	}
	for i, ref := range r.batch {
		if j := r.jobs[ref]; j != nil {
			st.JobBound[i] = true
			st.Jobs[i] = j.ExportState()
		}
	}
	return st
}

// RestoreState overwrites the rack's mutable state from a snapshot taken on
// a rack with the same configuration. Frequencies are re-quantized through
// the P-state table (idempotent for values that came from it) and
// utilizations re-clamped, so no snapshot can install a physically
// impossible core state. The noise stream is restored by replaying the
// recorded number of draws against a fresh seeded source.
func (r *Rack) RestoreState(st State) error {
	if len(st.Cores) != len(r.servers) {
		return fmt.Errorf("rack: snapshot has %d servers, rack has %d", len(st.Cores), len(r.servers))
	}
	for si, cores := range st.Cores {
		if len(cores) != r.servers[si].CPU().NumCores() {
			return fmt.Errorf("rack: snapshot server %d has %d cores, rack has %d",
				si, len(cores), r.servers[si].CPU().NumCores())
		}
		for ci, c := range cores {
			if math.IsNaN(c.FreqGHz) || math.IsInf(c.FreqGHz, 0) || c.FreqGHz < 0 {
				return fmt.Errorf("rack: snapshot core s%d/c%d frequency %g invalid", si, ci, c.FreqGHz)
			}
			if math.IsNaN(c.Util) {
				return fmt.Errorf("rack: snapshot core s%d/c%d utilization is NaN", si, ci)
			}
		}
	}
	if len(st.Faults) != len(r.faults) {
		return fmt.Errorf("rack: snapshot has %d fault entries, rack has %d", len(st.Faults), len(r.faults))
	}
	if st.NormDraws < 0 || st.NormDraws > maxNormDraws {
		return fmt.Errorf("rack: snapshot noise-stream position %d outside [0, %d]", st.NormDraws, maxNormDraws)
	}
	if len(st.JobBound) != len(r.batch) || len(st.Jobs) != len(r.batch) {
		return fmt.Errorf("rack: snapshot has %d/%d job entries, rack has %d batch cores",
			len(st.JobBound), len(st.Jobs), len(r.batch))
	}
	for i, ref := range r.batch {
		if st.JobBound[i] != (r.jobs[ref] != nil) {
			return fmt.Errorf("rack: snapshot job binding for %v disagrees with the scenario", ref)
		}
	}

	for si, cores := range st.Cores {
		cpu := r.servers[si].CPU()
		for ci, c := range cores {
			cpu.SetFreq(ci, c.FreqGHz)
			cpu.SetUtil(ci, c.Util)
		}
	}
	copy(r.faults, st.Faults)
	r.rng = rand.New(rand.NewSource(r.cfg.Seed))
	for i := int64(0); i < st.NormDraws; i++ {
		r.rng.NormFloat64()
	}
	r.normDraws = st.NormDraws
	for i, ref := range r.batch {
		if !st.JobBound[i] {
			continue
		}
		if err := r.jobs[ref].RestoreState(st.Jobs[i]); err != nil {
			return err
		}
	}
	return nil
}
