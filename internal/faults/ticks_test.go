package faults

import (
	"math"
	"testing"
)

// StableTicks must be sound: no Step within the reported horizon may return
// an onset or a clear.
func TestStableTicksSound(t *testing.T) {
	plan := Plan{Faults: []Fault{
		{Kind: MonitorBias, OnsetS: 40, DurationS: 25, Severity: 0.1},
		{Kind: MonitorFreeze, OnsetS: 100, DurationS: 10},
		{Kind: UPSPathFailure, OnsetS: 41, DurationS: 3},
	}}
	in := NewInjector(plan, 1)
	const dt = 1.0
	for step := 0; step < 200; {
		n := in.StableTicks(float64(step)*dt, dt, 200-step)
		for k := 1; k <= n; k++ {
			onsets, clears := in.Step(float64(step+k) * dt)
			if len(onsets) != 0 || len(clears) != 0 {
				t.Fatalf("transition at tick %d inside a %d-tick stable horizon from step %d", k, n, step)
			}
		}
		step += n
		in.Step(float64(step) * dt)
		step++
	}
}

// An onset at or just before now0 (not yet applied by Step) must clamp the
// horizon to zero, not be treated as already cleared.
func TestStableTicksImminentOnset(t *testing.T) {
	in := NewInjector(Plan{Faults: []Fault{
		{Kind: MonitorBias, OnsetS: 50, DurationS: 30, Severity: 0.1},
	}}, 1)
	if n := in.StableTicks(50, 1, 1000); n != 0 {
		t.Fatalf("onset at now0: horizon %d, want 0", n)
	}
	if n := in.StableTicks(49.5, 1, 1000); n != 0 {
		t.Fatalf("onset inside first tick: horizon %d, want 0", n)
	}
	// Fully in the past (onset+duration elapsed): unbounded.
	if n := in.StableTicks(90, 1, 1000); n != 1000 {
		t.Fatalf("cleared fault bounded horizon to %d", n)
	}
}

// AdvanceConstant must leave the injector bit-identical to n per-tick
// FilterMeasurement calls with the same constant reading and no active
// fault — verified behaviorally by comparing the corrupted output streams
// through a subsequent delay+freeze fault window.
func TestAdvanceConstantMatchesPerTick(t *testing.T) {
	plan := Plan{Faults: []Fault{
		{Kind: MeasurementDelay, OnsetS: 300, DurationS: 40, Severity: 7},
		{Kind: MonitorFreeze, OnsetS: 360, DurationS: 20},
	}}
	for _, n := range []int{1, 5, 127, 128, 129, 300} {
		a := NewInjector(plan, 1)
		b := NewInjector(plan, 1)
		// Shared warm-up with varying readings so the ring buffers hold
		// real history before the replay window.
		for k := 0; k < 10; k++ {
			raw := 3000 + 10*float64(k)
			a.Step(float64(k))
			b.Step(float64(k))
			a.FilterMeasurement(raw)
			b.FilterMeasurement(raw)
		}
		// Replay window: constant reading, no active fault.
		const raw = 3141.5
		for k := 0; k < n; k++ {
			a.FilterMeasurement(raw)
		}
		b.AdvanceConstant(raw, n)
		// Drive both through the delay and freeze windows and compare the
		// corrupted streams bit for bit.
		for k := 0; k < 130; k++ {
			now := 295 + float64(k)
			in := 3000 + 7*float64(k)
			a.Step(now)
			b.Step(now)
			av := a.FilterMeasurement(in)
			bv := b.FilterMeasurement(in)
			if math.Float64bits(av) != math.Float64bits(bv) {
				t.Fatalf("n=%d: corrupted stream diverged at tick %d: %v vs %v", n, k, av, bv)
			}
		}
	}
}

// AnyFaultActive must track Step transitions.
func TestAnyFaultActive(t *testing.T) {
	in := NewInjector(Plan{Faults: []Fault{
		{Kind: MonitorBias, OnsetS: 10, DurationS: 5, Severity: 0.1},
	}}, 1)
	in.Step(9)
	if in.AnyFaultActive() {
		t.Fatal("active before onset")
	}
	in.Step(10)
	if !in.AnyFaultActive() {
		t.Fatal("inactive at onset")
	}
	in.Step(15)
	if in.AnyFaultActive() {
		t.Fatal("active after clear")
	}
}
