package faults

import (
	"math"
	"testing"
)

func TestFaultValidateTable(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"valid freeze", Fault{Kind: MonitorFreeze, OnsetS: 10, DurationS: 30}, true},
		{"valid bias", Fault{Kind: MonitorBias, OnsetS: 0, DurationS: 5, Severity: -0.4}, true},
		{"valid stuck all", Fault{Kind: ActuatorStuck, OnsetS: 1, DurationS: 2, Server: AllServers}, true},
		{"valid crash one", Fault{Kind: ServerCrash, OnsetS: 1, DurationS: 2, Server: 3}, true},
		{"unknown kind", Fault{Kind: "warp-core-breach", OnsetS: 1, DurationS: 2}, false},
		{"nan onset", Fault{Kind: MonitorFreeze, OnsetS: nan, DurationS: 2}, false},
		{"inf onset", Fault{Kind: MonitorFreeze, OnsetS: inf, DurationS: 2}, false},
		{"negative onset", Fault{Kind: MonitorFreeze, OnsetS: -1, DurationS: 2}, false},
		{"zero duration", Fault{Kind: MonitorFreeze, OnsetS: 1, DurationS: 0}, false},
		{"negative duration", Fault{Kind: MonitorFreeze, OnsetS: 1, DurationS: -3}, false},
		{"nan duration", Fault{Kind: MonitorFreeze, OnsetS: 1, DurationS: nan}, false},
		{"nan severity", Fault{Kind: MonitorBias, OnsetS: 1, DurationS: 2, Severity: nan}, false},
		{"inf severity", Fault{Kind: MonitorBias, OnsetS: 1, DurationS: 2, Severity: inf}, false},
		{"bias below -1", Fault{Kind: MonitorBias, OnsetS: 1, DurationS: 2, Severity: -1.5}, false},
		{"delay needs positive", Fault{Kind: MeasurementDelay, OnsetS: 1, DurationS: 2, Severity: 0}, false},
		{"lag outside (0,1)", Fault{Kind: ActuatorLag, OnsetS: 1, DurationS: 2, Severity: 1.5}, false},
		{"gauge outside [-1,1]", Fault{Kind: UPSGaugeBias, OnsetS: 1, DurationS: 2, Severity: 2}, false},
		{"server below -1", Fault{Kind: ServerCrash, OnsetS: 1, DurationS: 2, Server: -2}, false},
		{"server on non-per-server", Fault{Kind: MonitorFreeze, OnsetS: 1, DurationS: 2, Server: 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

func TestPlanValidateForRack(t *testing.T) {
	p := Plan{Faults: []Fault{{Kind: ServerCrash, OnsetS: 1, DurationS: 2, Server: 20}}}
	if err := p.ValidateForRack(16); err == nil {
		t.Fatal("server 20 in a 16-server rack should fail validation")
	}
	if err := p.ValidateForRack(32); err != nil {
		t.Fatalf("server 20 in a 32-server rack should pass: %v", err)
	}
}

func TestInjectorStepEdges(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Kind: MonitorFreeze, OnsetS: 10, DurationS: 20},
		{Kind: ServerCrash, OnsetS: 15, DurationS: 5, Server: 2},
	}}
	in := NewInjector(p, 1)
	on, off := in.Step(0)
	if len(on) != 0 || len(off) != 0 {
		t.Fatalf("t=0: unexpected edges on=%v off=%v", on, off)
	}
	on, _ = in.Step(10)
	if len(on) != 1 || on[0].Kind != MonitorFreeze {
		t.Fatalf("t=10: want freeze onset, got %v", on)
	}
	on, _ = in.Step(15)
	if len(on) != 1 || on[0].Kind != ServerCrash {
		t.Fatalf("t=15: want crash onset, got %v", on)
	}
	_, off = in.Step(20)
	if len(off) != 1 || off[0].Kind != ServerCrash {
		t.Fatalf("t=20: want crash clear, got %v", off)
	}
	_, off = in.Step(30)
	if len(off) != 1 || off[0].Kind != MonitorFreeze {
		t.Fatalf("t=30: want freeze clear, got %v", off)
	}
}

func TestFreezeHoldsPreOnsetReading(t *testing.T) {
	p := Plan{Faults: []Fault{{Kind: MonitorFreeze, OnsetS: 2, DurationS: 3}}}
	in := NewInjector(p, 1)
	in.Step(0)
	if got := in.FilterMeasurement(100); got != 100 {
		t.Fatalf("t=0: got %g, want 100", got)
	}
	in.Step(1)
	if got := in.FilterMeasurement(110); got != 110 {
		t.Fatalf("t=1: got %g, want 110", got)
	}
	in.Step(2)
	if got := in.FilterMeasurement(120); got != 110 {
		t.Fatalf("t=2 frozen: got %g, want held 110", got)
	}
	in.Step(4)
	if got := in.FilterMeasurement(130); got != 110 {
		t.Fatalf("t=4 frozen: got %g, want held 110", got)
	}
	in.Step(5)
	if got := in.FilterMeasurement(140); got != 140 {
		t.Fatalf("t=5 cleared: got %g, want 140", got)
	}
}

func TestDropoutProducesNaN(t *testing.T) {
	p := Plan{Faults: []Fault{{Kind: MonitorDropout, OnsetS: 1, DurationS: 2}}}
	in := NewInjector(p, 1)
	in.Step(0)
	in.FilterMeasurement(100)
	in.Step(1)
	if got := in.FilterMeasurement(100); !math.IsNaN(got) {
		t.Fatalf("dropout: got %g, want NaN", got)
	}
	in.Step(3)
	if got := in.FilterMeasurement(105); got != 105 {
		t.Fatalf("after dropout: got %g, want 105", got)
	}
}

func TestBiasScalesReading(t *testing.T) {
	p := Plan{Faults: []Fault{{Kind: MonitorBias, OnsetS: 0, DurationS: 10, Severity: -0.4}}}
	in := NewInjector(p, 1)
	in.Step(0)
	if got := in.FilterMeasurement(1000); math.Abs(got-600) > 1e-9 {
		t.Fatalf("bias -0.4: got %g, want 600", got)
	}
}

func TestMeasurementDelay(t *testing.T) {
	p := Plan{Faults: []Fault{{Kind: MeasurementDelay, OnsetS: 3, DurationS: 100, Severity: 2}}}
	in := NewInjector(p, 1)
	for i := 0; i < 3; i++ {
		in.Step(float64(i))
		in.FilterMeasurement(float64(100 + i))
	}
	in.Step(3)
	// 2 s delay at dt=1 → 2 steps back: reading pushed at t=1 (101).
	if got := in.FilterMeasurement(103); got != 101 {
		t.Fatalf("delayed: got %g, want 101", got)
	}
	in.Step(4)
	if got := in.FilterMeasurement(104); got != 102 {
		t.Fatalf("delayed: got %g, want 102", got)
	}
}

func TestSoCGaugeBias(t *testing.T) {
	p := Plan{Faults: []Fault{{Kind: UPSGaugeBias, OnsetS: 0, DurationS: 10, Severity: 0.5}}}
	in := NewInjector(p, 1)
	in.Step(0)
	soc, dep := in.FilterSoC(0.1, false)
	if math.Abs(soc-0.6) > 1e-12 || dep {
		t.Fatalf("gauge +0.5: got soc=%g dep=%v, want 0.6 false", soc, dep)
	}
	soc, dep = in.FilterSoC(0.8, false)
	if soc != 1 || dep {
		t.Fatalf("gauge clamp: got soc=%g dep=%v, want 1 false", soc, dep)
	}
	// Negative bias can make a healthy battery look depleted.
	p2 := Plan{Faults: []Fault{{Kind: UPSGaugeBias, OnsetS: 0, DurationS: 10, Severity: -0.5}}}
	in2 := NewInjector(p2, 1)
	in2.Step(0)
	soc, dep = in2.FilterSoC(0.3, false)
	if soc != 0 || !dep {
		t.Fatalf("gauge -0.5 on soc 0.3: got soc=%g dep=%v, want 0 true", soc, dep)
	}
}

func TestServerStates(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Kind: ServerCrash, OnsetS: 0, DurationS: 10, Server: 1},
		{Kind: ActuatorStuck, OnsetS: 0, DurationS: 10, Server: 2},
		{Kind: ActuatorLag, OnsetS: 0, DurationS: 10, Severity: 0.3, Server: AllServers},
	}}
	in := NewInjector(p, 1)
	in.Step(0)
	st := in.ServerStates(4)
	if !st[1].Offline || st[0].Offline {
		t.Fatalf("offline states wrong: %+v", st)
	}
	if !st[2].Stuck || st[3].Stuck {
		t.Fatalf("stuck states wrong: %+v", st)
	}
	for i := range st {
		if st[i].LagFrac != 0.3 {
			t.Fatalf("server %d lag = %g, want 0.3", i, st[i].LagFrac)
		}
	}
	if !in.UPSPathFailed() == true { // no path fault scheduled
		_ = st
	}
	if in.UPSPathFailed() {
		t.Fatal("UPSPathFailed should be false with no path fault")
	}
}

func TestParseSpecs(t *testing.T) {
	f, err := Parse("monitor-freeze:30:300")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Kind != MonitorFreeze || f.OnsetS != 30 || f.DurationS != 300 {
		t.Fatalf("parsed %+v", f)
	}
	f, err = Parse("actuator-stuck:60:400:0:3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Kind != ActuatorStuck || f.Server != 3 {
		t.Fatalf("parsed %+v", f)
	}
	f, err = Parse("monitor-bias:10:20:-0.4")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Severity != -0.4 {
		t.Fatalf("parsed severity %g", f.Severity)
	}
	for _, bad := range []string{"", "monitor-freeze", "monitor-freeze:x:3", "nope:1:2", "monitor-freeze:1:2:3:4:5:6"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Kind: MonitorFreeze, OnsetS: 5, DurationS: 10},
		{Kind: MonitorBias, OnsetS: 12, DurationS: 6, Severity: 0.2},
		{Kind: MeasurementDelay, OnsetS: 3, DurationS: 30, Severity: 2},
	}}
	run := func() []float64 {
		in := NewInjector(p, 1)
		var out []float64
		for i := 0; i < 40; i++ {
			in.Step(float64(i))
			out = append(out, in.FilterMeasurement(1000+float64(i)*3))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			t.Fatalf("tick %d: %g != %g", i, a[i], b[i])
		}
	}
}

// onsetTime scans the injector for the tick at which the plan's single
// fault becomes active.
func onsetTime(t *testing.T, in *Injector, dt, horizon float64) float64 {
	t.Helper()
	for now := 0.0; now < horizon; now += dt {
		onsets, _ := in.Step(now)
		if len(onsets) > 0 {
			return now
		}
	}
	t.Fatal("fault never became active")
	return 0
}

func TestOnsetJitterDeterministic(t *testing.T) {
	plan := Plan{
		Faults:       []Fault{{Kind: MonitorDropout, OnsetS: 100, DurationS: 50}},
		OnsetJitterS: 200,
		Seed:         7,
	}
	a := onsetTime(t, NewInjector(plan, 1), 1, 1000)
	b := onsetTime(t, NewInjector(plan, 1), 1, 1000)
	if a != b {
		t.Fatalf("same seed must give the same onset: %v vs %v", a, b)
	}
	if a < 100 || a >= 300 {
		t.Fatalf("jittered onset %v outside [100, 300)", a)
	}
	// The caller's plan must not have been mutated.
	if plan.Faults[0].OnsetS != 100 {
		t.Fatalf("plan mutated: onset now %v", plan.Faults[0].OnsetS)
	}

	other := plan
	other.Seed = 8
	c := onsetTime(t, NewInjector(other, 1), 1, 1000)
	if c == a {
		t.Fatalf("different seeds should move the onset (both %v)", a)
	}
}

func TestZeroJitterKeepsExactOnsets(t *testing.T) {
	plan := Plan{
		Faults: []Fault{{Kind: MonitorDropout, OnsetS: 100, DurationS: 50}},
		Seed:   99, // ignored without jitter
	}
	if got := onsetTime(t, NewInjector(plan, 1), 1, 1000); got != 100 {
		t.Fatalf("zero jitter must keep the scheduled onset, got %v", got)
	}
}

func TestPlanValidateJitter(t *testing.T) {
	bad := Plan{OnsetJitterS: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative jitter should error")
	}
	bad.OnsetJitterS = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Fatal("infinite jitter should error")
	}
}
