package faults

import (
	"strings"
	"testing"
)

// The scope taxonomy drives who consumes each fault kind; pin every kind's
// classification so a new kind cannot silently land in the wrong consumer.
func TestKindScopeTable(t *testing.T) {
	want := map[Kind]Scope{
		MonitorDropout:   ScopeRack,
		MonitorFreeze:    ScopeRack,
		MonitorBias:      ScopeRack,
		MeasurementDelay: ScopeRack,
		UPSPathFailure:   ScopeRack,
		UPSGaugeBias:     ScopeRack,
		ControllerCrash:  ScopeRack,
		ActuatorStuck:    ScopeServer,
		ActuatorLag:      ScopeServer,
		ServerCrash:      ScopeServer,
		LinkLoss:         ScopeLink,
		LinkDelay:        ScopeLink,
		LinkDup:          ScopeLink,
		LinkPartition:    ScopeLink,
		CoordinatorCrash: ScopeLink,
	}
	if len(want) != len(Kinds()) {
		t.Fatalf("taxonomy drifted: %d kinds, scope table has %d", len(Kinds()), len(want))
	}
	for k, s := range want {
		if got := k.Scope(); got != s {
			t.Errorf("%s: scope %v, want %v", k, got, s)
		}
	}
}

// KindsForScope must partition Kinds(): every kind in exactly one scope list.
func TestKindsForScopePartition(t *testing.T) {
	seen := map[Kind]int{}
	for _, s := range []Scope{ScopeRack, ScopeServer, ScopeLink} {
		for _, k := range KindsForScope(s) {
			seen[k]++
		}
	}
	for _, k := range Kinds() {
		if seen[k] != 1 {
			t.Errorf("%s appears %d times across scope lists, want exactly 1", k, seen[k])
		}
	}
}

func TestLinkFaultValidateTable(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"valid loss", Fault{Kind: LinkLoss, OnsetS: 1, DurationS: 2, Severity: 0.3}, true},
		{"loss needs probability", Fault{Kind: LinkLoss, OnsetS: 1, DurationS: 2, Severity: 1.5}, false},
		{"loss zero probability", Fault{Kind: LinkLoss, OnsetS: 1, DurationS: 2, Severity: 0}, false},
		{"valid delay", Fault{Kind: LinkDelay, OnsetS: 1, DurationS: 2, Severity: 4}, true},
		{"delay needs positive", Fault{Kind: LinkDelay, OnsetS: 1, DurationS: 2, Severity: -1}, false},
		{"valid dup", Fault{Kind: LinkDup, OnsetS: 1, DurationS: 2, Severity: 1}, true},
		{"dup over 1", Fault{Kind: LinkDup, OnsetS: 1, DurationS: 2, Severity: 1.01}, false},
		{"valid partition one rack", Fault{Kind: LinkPartition, OnsetS: 1, DurationS: 2, Severity: 1, Server: 2}, true},
		{"valid partition all racks", Fault{Kind: LinkPartition, OnsetS: 1, DurationS: 2, Severity: 1, Server: AllRacks}, true},
		{"partition rack below -1", Fault{Kind: LinkPartition, OnsetS: 1, DurationS: 2, Severity: 1, Server: -2}, false},
		{"valid coordinator crash", Fault{Kind: CoordinatorCrash, OnsetS: 1, DurationS: 2, Severity: 1}, true},
		{"coordinator crash is not per-rack", Fault{Kind: CoordinatorCrash, OnsetS: 1, DurationS: 2, Severity: 1, Server: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

// A single-rack scenario must reject link-scoped faults with an error that
// tells the user where those faults are legal.
func TestValidateForRackRejectsLinkFaults(t *testing.T) {
	for _, k := range KindsForScope(ScopeLink) {
		f := Fault{Kind: k, OnsetS: 1, DurationS: 2, Severity: 0.5}
		p := Plan{Faults: []Fault{f}}
		err := p.ValidateForRack(16)
		if err == nil {
			t.Fatalf("%s accepted by a single-rack plan", k)
		}
		if !strings.Contains(err.Error(), "cluster") {
			t.Fatalf("%s rejection does not point at cluster runs: %v", k, err)
		}
	}
}

func TestValidateForClusterBounds(t *testing.T) {
	mk := func(rack int) Plan {
		return Plan{Faults: []Fault{{Kind: LinkPartition, OnsetS: 1, DurationS: 2, Severity: 1, Server: rack}}}
	}
	if err := mk(3).ValidateForCluster(4, 16); err != nil {
		t.Fatalf("rack 3 of 4 should validate: %v", err)
	}
	if err := mk(4).ValidateForCluster(4, 16); err == nil {
		t.Fatal("rack 4 of 4 should fail validation")
	}
	if err := mk(AllRacks).ValidateForCluster(4, 16); err != nil {
		t.Fatalf("all-racks partition should validate: %v", err)
	}
	// Server-scoped bounds still apply in cluster plans.
	p := Plan{Faults: []Fault{{Kind: ServerCrash, OnsetS: 1, DurationS: 2, Server: 20}}}
	if err := p.ValidateForCluster(4, 16); err == nil {
		t.Fatal("server 20 of 16 should fail cluster validation")
	}
}

// Split must route every fault to exactly one consumer, keep the rack plan's
// jitter (racks offset the seed individually) and zero the link plan's (one
// cluster-global schedule).
func TestPlanSplit(t *testing.T) {
	p := Plan{
		OnsetJitterS: 5,
		Seed:         42,
		Faults: []Fault{
			{Kind: MonitorFreeze, OnsetS: 10, DurationS: 20},
			{Kind: LinkLoss, OnsetS: 30, DurationS: 40, Severity: 0.2},
			{Kind: ServerCrash, OnsetS: 50, DurationS: 60, Server: 1},
			{Kind: LinkPartition, OnsetS: 70, DurationS: 80, Severity: 1, Server: 0},
		},
	}
	rackPlan, linkPlan := p.Split()
	if len(rackPlan.Faults) != 2 || len(linkPlan.Faults) != 2 {
		t.Fatalf("split sizes %d/%d, want 2/2", len(rackPlan.Faults), len(linkPlan.Faults))
	}
	for _, f := range rackPlan.Faults {
		if f.Kind.Scope() == ScopeLink {
			t.Fatalf("link fault %s in rack plan", f.Kind)
		}
	}
	for _, f := range linkPlan.Faults {
		if f.Kind.Scope() != ScopeLink {
			t.Fatalf("non-link fault %s in link plan", f.Kind)
		}
	}
	if rackPlan.OnsetJitterS != 5 || rackPlan.Seed != 42 {
		t.Fatalf("rack plan lost jitter/seed: %+v", rackPlan)
	}
	if linkPlan.OnsetJitterS != 0 {
		t.Fatalf("link plan kept onset jitter %g; the link schedule is cluster-global", linkPlan.OnsetJitterS)
	}
}

// The injector must refuse link-scoped faults outright — the structural
// backstop behind scenario validation.
func TestInjectorPanicsOnLinkFault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted a link-scoped fault")
		}
	}()
	NewInjector(Plan{Faults: []Fault{{Kind: LinkLoss, OnsetS: 1, DurationS: 2, Severity: 0.5}}}, 1)
}
