// Package faults is the runtime fault-injection subsystem: a deterministic
// schedule of sensor, actuator and component failures threaded through the
// simulation tick loop. The paper's supervisor exists because components
// misbehave mid-sprint — power monitors freeze, DVFS actuators stick, UPS
// discharge paths open — yet the original evaluation only perturbs static
// parameters. Each Fault here is a schedulable event with onset, duration
// and severity; the Injector turns a Plan into per-tick corruption of the
// measurement stream and per-component failure state, so controllers can be
// exercised (and hardened) against faults that occur *during* a run.
//
// The taxonomy (see DESIGN.md §8 for the defense matrix):
//
//	MonitorDropout   — the rack power monitor returns NaN (no reading)
//	MonitorFreeze    — the monitor repeats its last pre-onset reading
//	MonitorBias      — readings scaled by (1 + Severity), e.g. −0.4 reads 40% low
//	MeasurementDelay — readings delivered Severity seconds late
//	ActuatorStuck    — a server's DVFS writes are silently ignored
//	ActuatorLag      — writes move only a Severity fraction toward the command
//	ServerCrash      — a server goes dark: no power, no work, no telemetry
//	UPSPathFailure   — the battery discharge path delivers nothing
//	UPSGaugeBias     — the SoC gauge reads Severity too high (or low)
//	ControllerCrash  — the controller process dies; frequencies hold, UPS
//	                   requests stop, and the engine restarts the controller
//	                   Severity seconds later from the latest checkpoint
//	                   (or into the fail-safe state without one)
//
// Link-scoped kinds attack the coordinator↔rack control link of a cluster
// run (DESIGN.md §12). They are scheduled through the same Plan so they
// compose with the kinds above, but they are consumed by the cluster's link
// transport, never by a rack-local Injector — single-rack scenarios reject
// them at validation time:
//
//	LinkLoss         — control-link messages dropped with probability Severity
//	LinkDelay        — messages delayed by a seeded uniform draw from
//	                   [0, Severity] seconds (reordering)
//	LinkDup          — messages duplicated with probability Severity
//	LinkPartition    — rack `Server` (or all racks) fully partitioned from
//	                   the coordinator, both directions
//	CoordinatorCrash — the coordinator process is down: heartbeats are lost,
//	                   no grants are issued; on clear it restarts empty and
//	                   re-syncs from rack heartbeats
//
// All injection is pure state-machine logic driven by the schedule: two runs
// with identical scenarios and identical plans are bit-identical.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Kind names a fault type. The string values are stable identifiers used in
// scenario JSON, event logs and CLI flags.
type Kind string

// The supported fault kinds.
const (
	MonitorDropout   Kind = "monitor-dropout"
	MonitorFreeze    Kind = "monitor-freeze"
	MonitorBias      Kind = "monitor-bias"
	MeasurementDelay Kind = "measurement-delay"
	ActuatorStuck    Kind = "actuator-stuck"
	ActuatorLag      Kind = "actuator-lag"
	ServerCrash      Kind = "server-crash"
	UPSPathFailure   Kind = "ups-path-failure"
	UPSGaugeBias     Kind = "ups-gauge-bias"
	ControllerCrash  Kind = "controller-crash"

	LinkLoss         Kind = "link-loss"
	LinkDelay        Kind = "link-delay"
	LinkDup          Kind = "link-duplicate"
	LinkPartition    Kind = "link-partition"
	CoordinatorCrash Kind = "coordinator-crash"
)

// Kinds returns every supported fault kind, in taxonomy order.
func Kinds() []Kind {
	return []Kind{
		MonitorDropout, MonitorFreeze, MonitorBias, MeasurementDelay,
		ActuatorStuck, ActuatorLag, ServerCrash, UPSPathFailure,
		UPSGaugeBias, ControllerCrash,
		LinkLoss, LinkDelay, LinkDup, LinkPartition, CoordinatorCrash,
	}
}

// KindsForScope returns the kinds of one scope, in taxonomy order — e.g.
// the kinds legal in a single-rack scenario are KindsForScope(ScopeRack)
// plus KindsForScope(ScopeServer).
func KindsForScope(s Scope) []Kind {
	var out []Kind
	for _, k := range Kinds() {
		if k.Scope() == s {
			out = append(out, k)
		}
	}
	return out
}

// Scope classifies what a fault kind attacks, which decides who consumes it:
// rack- and server-scoped kinds drive the rack-local Injector; link-scoped
// kinds drive the cluster's coordinator↔rack control link and are invalid in
// single-rack scenarios.
type Scope int

const (
	// ScopeRack faults hit a shared rack component (power monitor, UPS
	// path, controller process); the Server field is unused.
	ScopeRack Scope = iota
	// ScopeServer faults target one server (or all, via AllServers).
	ScopeServer
	// ScopeLink faults attack the coordinator↔rack control link; for
	// LinkPartition the Server field selects the partitioned *rack* index
	// (AllRacks for every rack).
	ScopeLink
)

// String names the scope for errors and logs.
func (s Scope) String() string {
	switch s {
	case ScopeRack:
		return "rack"
	case ScopeServer:
		return "server"
	case ScopeLink:
		return "link"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Scope returns the kind's scope. Unknown kinds report ScopeRack; callers
// validate kinds before consulting the scope.
func (k Kind) Scope() Scope {
	switch k {
	case ActuatorStuck, ActuatorLag, ServerCrash:
		return ScopeServer
	case LinkLoss, LinkDelay, LinkDup, LinkPartition, CoordinatorCrash:
		return ScopeLink
	default:
		return ScopeRack
	}
}

// valid reports whether k is a known kind.
func (k Kind) valid() bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// perServer reports whether the kind targets one server (Server field used).
func (k Kind) perServer() bool { return k.Scope() == ScopeServer }

// perRack reports whether the kind targets one rack of a cluster through the
// Server field (only LinkPartition today).
func (k Kind) perRack() bool { return k == LinkPartition }

// Fault is one schedulable failure: it becomes active at OnsetS and clears
// DurationS later. Severity is kind-specific (see the package comment);
// kinds without a natural severity ignore it. Server selects the affected
// server for per-server kinds; AllServers (-1) hits the whole rack.
type Fault struct {
	Kind      Kind    `json:"Kind"`
	OnsetS    float64 `json:"OnsetS"`
	DurationS float64 `json:"DurationS"`
	Severity  float64 `json:"Severity,omitempty"`
	Server    int     `json:"Server,omitempty"`
}

// AllServers targets every server with a per-server fault kind.
const AllServers = -1

// AllRacks targets every rack with a per-rack link fault kind (the Server
// field doubles as the rack selector for link-scoped kinds).
const AllRacks = -1

// String formats the fault for logs and events.
func (f Fault) String() string {
	s := fmt.Sprintf("%s onset=%gs duration=%gs", f.Kind, f.OnsetS, f.DurationS)
	if f.Severity != 0 {
		s += fmt.Sprintf(" severity=%g", f.Severity)
	}
	if f.Kind.perServer() {
		if f.Server == AllServers {
			s += " server=all"
		} else {
			s += fmt.Sprintf(" server=%d", f.Server)
		}
	}
	if f.Kind.perRack() {
		if f.Server == AllRacks {
			s += " rack=all"
		} else {
			s += fmt.Sprintf(" rack=%d", f.Server)
		}
	}
	return s
}

// Active reports whether the fault is active at time now (onset inclusive,
// clear exclusive).
func (f Fault) Active(now float64) bool {
	return now >= f.OnsetS && now < f.OnsetS+f.DurationS
}

// Validate reports structural errors in one fault.
func (f Fault) Validate() error {
	if !f.Kind.valid() {
		return fmt.Errorf("faults: unknown kind %q", f.Kind)
	}
	if math.IsNaN(f.OnsetS) || math.IsInf(f.OnsetS, 0) || f.OnsetS < 0 {
		return fmt.Errorf("faults: %s: onset %g must be finite and non-negative", f.Kind, f.OnsetS)
	}
	if math.IsNaN(f.DurationS) || math.IsInf(f.DurationS, 0) || f.DurationS <= 0 {
		return fmt.Errorf("faults: %s: duration %g must be finite and positive", f.Kind, f.DurationS)
	}
	if math.IsNaN(f.Severity) || math.IsInf(f.Severity, 0) {
		return fmt.Errorf("faults: %s: severity must be finite", f.Kind)
	}
	switch f.Kind {
	case MonitorBias:
		if f.Severity <= -1 {
			return fmt.Errorf("faults: monitor-bias severity %g must exceed -1", f.Severity)
		}
	case MeasurementDelay:
		if f.Severity <= 0 {
			return fmt.Errorf("faults: measurement-delay severity %g must be a positive delay in seconds", f.Severity)
		}
	case ActuatorLag:
		if f.Severity <= 0 || f.Severity >= 1 {
			return fmt.Errorf("faults: actuator-lag severity %g must be in (0, 1)", f.Severity)
		}
	case UPSGaugeBias:
		if f.Severity < -1 || f.Severity > 1 {
			return fmt.Errorf("faults: ups-gauge-bias severity %g must be in [-1, 1]", f.Severity)
		}
	case ControllerCrash:
		if f.Severity < 0 {
			return fmt.Errorf("faults: controller-crash severity %g must be a non-negative restart delay in seconds", f.Severity)
		}
	case LinkLoss, LinkDup:
		if f.Severity <= 0 || f.Severity > 1 {
			return fmt.Errorf("faults: %s severity %g must be a probability in (0, 1]", f.Kind, f.Severity)
		}
	case LinkDelay:
		if f.Severity <= 0 {
			return fmt.Errorf("faults: link-delay severity %g must be a positive maximum delay in seconds", f.Severity)
		}
	}
	switch {
	case f.Kind.perServer():
		if f.Server < AllServers {
			return fmt.Errorf("faults: %s: server %d must be %d (all) or a server index", f.Kind, f.Server, AllServers)
		}
	case f.Kind.perRack():
		if f.Server < AllRacks {
			return fmt.Errorf("faults: %s: rack %d must be %d (all) or a rack index", f.Kind, f.Server, AllRacks)
		}
	default:
		if f.Server != 0 {
			return fmt.Errorf("faults: %s is not a per-server or per-rack fault (server must be 0)", f.Kind)
		}
	}
	return nil
}

// Plan is the fault schedule of one run. The zero value injects nothing.
type Plan struct {
	Faults []Fault `json:"Faults,omitempty"`
	// OnsetJitterS randomizes each fault's onset by a uniform draw from
	// [0, OnsetJitterS) seconds, deterministically from Seed. Zero (the
	// default) keeps the scheduled onsets exactly. Multi-rack runs offset
	// Seed per rack so the racks see independent fault timings instead of
	// a physically implausible synchronized failure wave.
	OnsetJitterS float64 `json:"OnsetJitterS,omitempty"`
	// Seed drives the onset jitter; plans with equal seeds produce equal
	// schedules. Ignored when OnsetJitterS is zero.
	Seed int64 `json:"Seed,omitempty"`
}

// Empty reports whether the plan injects no faults.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// Validate reports structural errors in the plan.
func (p Plan) Validate() error {
	if math.IsNaN(p.OnsetJitterS) || math.IsInf(p.OnsetJitterS, 0) || p.OnsetJitterS < 0 {
		return fmt.Errorf("faults: onset jitter %g must be finite and non-negative", p.OnsetJitterS)
	}
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("faults: fault %d: %w", i, err)
		}
	}
	return nil
}

// ValidateForRack additionally checks server indices against a rack size,
// and rejects link-scoped faults outright: a single-rack scenario has no
// coordinator↔rack control link to inject them into, so accepting them would
// silently ignore part of the schedule. Cluster runs validate the full plan
// with ValidateForCluster and hand each rack only the rack/server-scoped
// remainder (Split).
func (p Plan) ValidateForRack(numServers int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i, f := range p.Faults {
		if f.Kind.Scope() == ScopeLink {
			return fmt.Errorf("faults: fault %d: %s is link-scoped and needs a cluster run with a control link (cluster.RunLinked); single-rack scenarios have none", i, f.Kind)
		}
		if f.Kind.perServer() && f.Server >= numServers {
			return fmt.Errorf("faults: fault %d: server %d out of range (rack has %d)", i, f.Server, numServers)
		}
	}
	return nil
}

// ValidateForCluster checks the full plan of a linked cluster run: rack- and
// server-scoped faults against the per-rack size, link-scoped faults against
// the rack count.
func (p Plan) ValidateForCluster(numRacks, numServers int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i, f := range p.Faults {
		switch {
		case f.Kind.perServer() && f.Server >= numServers:
			return fmt.Errorf("faults: fault %d: server %d out of range (rack has %d)", i, f.Server, numServers)
		case f.Kind.perRack() && f.Server >= numRacks:
			return fmt.Errorf("faults: fault %d: rack %d out of range (cluster has %d)", i, f.Server, numRacks)
		}
	}
	return nil
}

// Split partitions the plan by consumer: rack/server-scoped faults (for the
// per-rack Injectors) and link-scoped faults (for the cluster's link
// transport). The rack plan keeps the onset jitter and seed — multi-rack
// runs offset the seed per rack as before. The link plan's jitter is zeroed:
// the control link is one cluster-global schedule, and jittering it per rack
// would desynchronize what is physically a single network event.
func (p Plan) Split() (rackPlan, linkPlan Plan) {
	rackPlan = Plan{OnsetJitterS: p.OnsetJitterS, Seed: p.Seed}
	for _, f := range p.Faults {
		if f.Kind.Scope() == ScopeLink {
			linkPlan.Faults = append(linkPlan.Faults, f)
		} else {
			rackPlan.Faults = append(rackPlan.Faults, f)
		}
	}
	return rackPlan, linkPlan
}

// Injector is the per-run fault state machine. It tracks which faults are
// active, corrupts the measurement stream, and reports the component-failure
// state the engine applies to the rack and UPS each tick. Not safe for
// concurrent use; one Injector per run.
type Injector struct {
	plan   Plan
	dt     float64
	active []bool

	// Monitor corruption state.
	lastRaw    float64 // most recent uncorrupted reading (delay source)
	frozen     float64 // held reading while a freeze is active
	haveFrozen bool
	delayBuf   []float64 // ring buffer of past readings for MeasurementDelay
	delayN     int       // valid entries in delayBuf
	delayHead  int
}

// NewInjector builds the state machine for a validated plan and tick size.
// It panics on an invalid plan or non-positive dt: the engine validates the
// scenario (including the plan) before constructing the injector.
func NewInjector(p Plan, dt float64) *Injector {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("faults: NewInjector on invalid plan: %v", err))
	}
	for _, f := range p.Faults {
		if f.Kind.Scope() == ScopeLink {
			// The injector is rack-local; a link fault reaching it would be
			// silently inert. Scenario validation rejects these earlier with
			// a descriptive error — this is the structural backstop.
			panic(fmt.Sprintf("faults: NewInjector handed link-scoped fault %s; link faults drive the cluster link transport, not a rack injector", f.Kind))
		}
	}
	if dt <= 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("faults: NewInjector with dt %g", dt))
	}
	if p.OnsetJitterS > 0 {
		// Copy before jittering: the caller's plan (often shared across
		// racks of a sweep) must stay untouched.
		jittered := make([]Fault, len(p.Faults))
		copy(jittered, p.Faults)
		rng := rand.New(rand.NewSource(p.Seed))
		for i := range jittered {
			jittered[i].OnsetS += rng.Float64() * p.OnsetJitterS
		}
		p.Faults = jittered
	}
	return &Injector{plan: p, dt: dt, active: make([]bool, len(p.Faults))}
}

// Step advances the schedule to time now and returns the faults whose active
// state changed this tick: onsets became active, clears became inactive.
// The caller (the engine) logs them and applies component state.
func (in *Injector) Step(now float64) (onsets, clears []Fault) {
	for i, f := range in.plan.Faults {
		a := f.Active(now)
		if a == in.active[i] {
			continue
		}
		in.active[i] = a
		if a {
			onsets = append(onsets, f)
		} else {
			clears = append(clears, f)
		}
	}
	return onsets, clears
}

// anyActive returns the first active fault of the kind (and ok), preferring
// the largest severity when several overlap.
func (in *Injector) anyActive(k Kind) (Fault, bool) {
	var best Fault
	found := false
	for i, f := range in.plan.Faults {
		if !in.active[i] || f.Kind != k {
			continue
		}
		if !found || math.Abs(f.Severity) > math.Abs(best.Severity) {
			best = f
		}
		found = true
	}
	return best, found
}

// AnyFaultActive reports whether any scheduled fault is currently active.
// The event engine only opens quiescent spans while the injector is fully
// inactive, so the per-tick corruption pipeline is provably the identity.
func (in *Injector) AnyFaultActive() bool {
	for _, a := range in.active {
		if a {
			return true
		}
	}
	return false
}

// StableTicks returns a conservative count of upcoming ticks of size dt,
// starting at time now0, during which no fault's active state can change:
// every scheduled onset and clear lies strictly beyond the returned horizon.
// The result is capped at maxTicks. This is the event engine's
// fault-transition barrier.
func (in *Injector) StableTicks(now0, dt float64, maxTicks int) int {
	min := maxTicks
	for i, f := range in.plan.Faults {
		var limit float64
		switch {
		case in.active[i]:
			limit = f.OnsetS + f.DurationS // next transition: the clear
		case now0 >= f.OnsetS+f.DurationS:
			continue // onset and clear both in the past
		default:
			// The onset is the next transition. It may already be at or
			// before now0 (the injector applies it on the *next* Step), in
			// which case the horizon below clamps to zero ticks.
			limit = f.OnsetS
		}
		// Ticks k = 1..n probe times now0+k·dt; the last safe tick must
		// stay strictly below the transition, and the −1 absorbs the
		// boundary tick itself.
		n := int((limit-now0)/dt) - 1
		if n < min {
			min = n
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// AdvanceConstant replays n ticks of the no-fault FilterMeasurement path
// with a constant raw reading: the delay ring buffer absorbs n pushes of
// raw, the freeze latch clears, and lastRaw becomes raw — bit-identical to
// n FilterMeasurement(raw) calls with no fault active, in O(buffer) instead
// of O(n). The event engine uses it to keep the monitor-corruption state
// exact across a fast-forwarded quiescent span.
func (in *Injector) AdvanceConstant(raw float64, n int) {
	if n <= 0 {
		return
	}
	const maxDelaySteps = 128
	if in.delayBuf == nil {
		in.delayBuf = make([]float64, maxDelaySteps)
	}
	if n >= len(in.delayBuf) {
		for i := range in.delayBuf {
			in.delayBuf[i] = raw
		}
		in.delayN = len(in.delayBuf)
	} else {
		for k := 0; k < n; k++ {
			in.delayBuf[(in.delayHead+k)%len(in.delayBuf)] = raw
		}
		if in.delayN += n; in.delayN > len(in.delayBuf) {
			in.delayN = len(in.delayBuf)
		}
	}
	in.delayHead = (in.delayHead + n) % len(in.delayBuf)
	in.haveFrozen = false
	in.lastRaw = raw
}

// FilterMeasurement corrupts one rack power-monitor reading according to the
// active monitor faults. Must be called exactly once per tick with the raw
// reading (it is stateful: the delay buffer and freeze value advance).
func (in *Injector) FilterMeasurement(raw float64) float64 {
	// Delay first: the delayed stream is what downstream faults corrupt.
	out := raw
	if f, ok := in.anyActive(MeasurementDelay); ok {
		steps := int(math.Round(f.Severity / in.dt))
		if steps < 1 {
			steps = 1
		}
		out = in.delayed(raw, steps)
	} else {
		in.pushDelay(raw)
	}
	// Freeze holds the last delivered value from before the onset.
	if _, ok := in.anyActive(MonitorFreeze); ok {
		if !in.haveFrozen {
			in.frozen = in.lastRaw
			in.haveFrozen = true
		}
		out = in.frozen
	} else {
		in.haveFrozen = false
	}
	if f, ok := in.anyActive(MonitorBias); ok {
		out *= 1 + f.Severity
	}
	if _, ok := in.anyActive(MonitorDropout); ok {
		out = math.NaN()
	}
	in.lastRaw = raw
	return out
}

// pushDelay records a reading into the delay ring buffer.
func (in *Injector) pushDelay(raw float64) {
	const maxDelaySteps = 128
	if in.delayBuf == nil {
		in.delayBuf = make([]float64, maxDelaySteps)
	}
	in.delayBuf[in.delayHead] = raw
	in.delayHead = (in.delayHead + 1) % len(in.delayBuf)
	if in.delayN < len(in.delayBuf) {
		in.delayN++
	}
}

// delayed records raw and returns the reading from `steps` ticks ago (the
// oldest available during the fault's warm-up).
func (in *Injector) delayed(raw float64, steps int) float64 {
	in.pushDelay(raw)
	if steps > len(in.delayBuf)-1 {
		steps = len(in.delayBuf) - 1
	}
	if steps >= in.delayN {
		steps = in.delayN - 1
	}
	idx := (in.delayHead - 1 - steps + 2*len(in.delayBuf)) % len(in.delayBuf)
	return in.delayBuf[idx]
}

// FilterSoC corrupts the UPS state-of-charge reading and the derived
// depleted indicator according to an active gauge-bias fault.
func (in *Injector) FilterSoC(soc float64, depleted bool) (float64, bool) {
	f, ok := in.anyActive(UPSGaugeBias)
	if !ok {
		return soc, depleted
	}
	biased := soc + f.Severity
	if biased < 0 {
		biased = 0
	} else if biased > 1 {
		biased = 1
	}
	// The depleted indicator is derived from the same gauge.
	return biased, biased <= 0
}

// UPSPathFailed reports whether the battery discharge path is currently open.
func (in *Injector) UPSPathFailed() bool {
	_, ok := in.anyActive(UPSPathFailure)
	return ok
}

// ServerState is the per-server component-failure state the engine applies
// to the rack each tick.
type ServerState struct {
	Offline bool
	Stuck   bool
	// LagFrac is the fraction of a commanded frequency move the actuator
	// applies per write (0 = no lag fault).
	LagFrac float64
}

// ServerStates returns the failure state of every server index in
// [0, numServers). Per-server faults with Server == AllServers apply to all.
func (in *Injector) ServerStates(numServers int) []ServerState {
	out := make([]ServerState, numServers)
	for i, f := range in.plan.Faults {
		if !in.active[i] || !f.Kind.perServer() {
			continue
		}
		lo, hi := f.Server, f.Server+1
		if f.Server == AllServers {
			lo, hi = 0, numServers
		}
		if lo < 0 || lo >= numServers {
			continue
		}
		if hi > numServers {
			hi = numServers
		}
		for s := lo; s < hi; s++ {
			switch f.Kind {
			case ServerCrash:
				out[s].Offline = true
			case ActuatorStuck:
				out[s].Stuck = true
			case ActuatorLag:
				out[s].LagFrac = f.Severity
			}
		}
	}
	return out
}

// ErrParse reports a malformed fault spec string.
var ErrParse = errors.New("faults: bad fault spec")

// Parse builds a fault from the CLI spec "kind:onset:duration[:severity[:server]]",
// e.g. "monitor-freeze:30:300" or "actuator-stuck:60:400:0:3".
func Parse(spec string) (Fault, error) {
	var onset, dur, sev float64
	server := 0
	parts := splitColon(spec)
	if len(parts) < 3 || len(parts) > 5 {
		return Fault{}, fmt.Errorf("%w: %q (want kind:onset:duration[:severity[:server]])", ErrParse, spec)
	}
	kind := parts[0]
	if _, err := fmt.Sscanf(parts[1], "%g", &onset); err != nil {
		return Fault{}, fmt.Errorf("%w: onset %q", ErrParse, parts[1])
	}
	if _, err := fmt.Sscanf(parts[2], "%g", &dur); err != nil {
		return Fault{}, fmt.Errorf("%w: duration %q", ErrParse, parts[2])
	}
	if len(parts) > 3 {
		if _, err := fmt.Sscanf(parts[3], "%g", &sev); err != nil {
			return Fault{}, fmt.Errorf("%w: severity %q", ErrParse, parts[3])
		}
	}
	if len(parts) > 4 {
		if _, err := fmt.Sscanf(parts[4], "%d", &server); err != nil {
			return Fault{}, fmt.Errorf("%w: server %q", ErrParse, parts[4])
		}
	}
	f := Fault{Kind: Kind(kind), OnsetS: onset, DurationS: dur, Severity: sev, Server: server}
	if err := f.Validate(); err != nil {
		return Fault{}, err
	}
	return f, nil
}

func splitColon(s string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}
