package faults

import (
	"fmt"
	"math"
)

// InjectorState is the serializable snapshot of an Injector mid-run: which
// faults are active plus the monitor-corruption machinery (freeze hold and
// measurement-delay ring buffer). A resumed run restoring this state
// delivers the exact corrupted reading stream the uninterrupted run would
// have seen.
type InjectorState struct {
	Active     []bool
	LastRaw    float64
	Frozen     float64
	HaveFrozen bool
	DelayBuf   []float64
	DelayN     int
	DelayHead  int
}

// ExportState captures the injector's mutable state.
func (in *Injector) ExportState() InjectorState {
	return InjectorState{
		Active:     append([]bool(nil), in.active...),
		LastRaw:    in.lastRaw,
		Frozen:     in.frozen,
		HaveFrozen: in.haveFrozen,
		DelayBuf:   append([]float64(nil), in.delayBuf...),
		DelayN:     in.delayN,
		DelayHead:  in.delayHead,
	}
}

// RestoreState overwrites the injector's mutable state from a snapshot. The
// active mask must match the live plan's fault count; the delay ring buffer
// indices must address the restored buffer.
func (in *Injector) RestoreState(st InjectorState) error {
	if len(st.Active) != len(in.plan.Faults) {
		return fmt.Errorf("faults: snapshot active mask has %d entries, plan has %d faults",
			len(st.Active), len(in.plan.Faults))
	}
	if math.IsNaN(st.LastRaw) || math.IsInf(st.LastRaw, 0) {
		return fmt.Errorf("faults: snapshot last reading is %g; must be finite", st.LastRaw)
	}
	if n := len(st.DelayBuf); n > 0 {
		if st.DelayN < 0 || st.DelayN > n || st.DelayHead < 0 || st.DelayHead >= n {
			return fmt.Errorf("faults: snapshot delay buffer indices (n=%d head=%d) invalid for %d entries",
				st.DelayN, st.DelayHead, n)
		}
	} else if st.DelayN != 0 || st.DelayHead != 0 {
		return fmt.Errorf("faults: snapshot delay indices nonzero with empty buffer")
	}
	in.active = append(in.active[:0], st.Active...)
	in.lastRaw = st.LastRaw
	in.frozen = st.Frozen
	in.haveFrozen = st.HaveFrozen
	if len(st.DelayBuf) > 0 {
		in.delayBuf = append(in.delayBuf[:0], st.DelayBuf...)
	} else {
		in.delayBuf = nil
	}
	in.delayN = st.DelayN
	in.delayHead = st.DelayHead
	return nil
}
