package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// traceScenario is a short deterministic run: long enough for several MPC
// control periods, short enough that the golden file stays reviewable.
func traceScenario() sim.Scenario {
	scn := sim.DefaultScenario()
	scn.DurationS = 30
	scn.BurstDurationS = 30
	scn.Interactive.BurstEndS = 30
	return scn
}

// TestDecisionTraceGolden pins the JSONL decision-trace schema: every field
// in the trace is deterministic for a seeded scenario (wall-clock timings
// live only in registry histograms), so the trace of a fixed run is
// byte-stable and any schema or semantics change shows up as a golden diff.
// Regenerate deliberately with: go test ./internal/core/ -run Golden -update
func TestDecisionTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewDecisionSink(&buf)
	_, err := sim.RunWith(traceScenario(), New(DefaultConfig()), sim.RunOptions{
		Metrics:   telemetry.NewRegistry(),
		Decisions: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() == 0 {
		t.Fatal("no decisions emitted")
	}

	golden := filepath.Join("testdata", "decision_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("decision trace diverged from %s (%d bytes vs %d); if the schema change is intentional, regenerate with -update",
			golden, buf.Len(), len(want))
	}
}

// TestDecisionTraceRoundTrip checks every emitted line is valid JSON that
// decodes back into telemetry.Decision with the sections SprintCon owes:
// alloc and MPC every control period, UPS always, guard when hardened.
func TestDecisionTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewDecisionSink(&buf)
	if _, err := sim.RunWith(traceScenario(), New(DefaultConfig()), sim.RunOptions{Decisions: sink}); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var n int
	lastT := -1.0
	for sc.Scan() {
		var d telemetry.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if d.Policy != "SprintCon" {
			t.Fatalf("line %d: policy = %q", n+1, d.Policy)
		}
		if d.Alloc == nil || d.MPC == nil || d.UPS == nil || d.Guard == nil {
			t.Fatalf("line %d: missing section: %+v", n+1, d)
		}
		if d.T <= lastT {
			t.Fatalf("line %d: time %v not increasing past %v", n+1, d.T, lastT)
		}
		lastT = d.T
		if len(d.MPC.FreqsGHz) == 0 || len(d.MPC.RefTrajW) == 0 {
			t.Fatalf("line %d: empty MPC vectors", n+1)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no trace lines")
	}
}
