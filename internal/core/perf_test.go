package core

import (
	"testing"

	"sprintcon/internal/sim"
)

// The steady-state tick path must not allocate when telemetry is off
// (DESIGN.md §10): the MPC owns its solve buffers, the QP runs in a
// workspace, and the per-period rack slices are reused. The engine's
// recordTick appends are outside the policy and preallocated separately.
func TestTickPathZeroAlloc(t *testing.T) {
	scn := sim.DefaultScenario()
	env, err := sim.BuildEnv(scn)
	if err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	if err := s.Start(env, scn); err != nil {
		t.Fatal(err)
	}

	snap := sim.Snapshot{
		Dt:             scn.DtS,
		MeasuredTotalW: env.Rack.MeasuredPower(),
		CBPowerW:       env.Rack.TruePower(),
		UPSSoC:         env.UPS.SoC(),
	}
	now := 0.0
	tick := func() {
		snap.Now = now
		snap.MeasuredTotalW = env.Rack.MeasuredPower()
		snap.CBPowerW = env.Rack.TruePower()
		s.Tick(env, snap)
		env.Rack.AdvanceBatch(scn.DtS, now)
		now += scn.DtS
	}
	// Warm up: let the controllers fill caches, the allocator run a few
	// P_batch updates (30 s cadence), and all append-backed buffers reach
	// their steady capacity.
	for i := 0; i < 120; i++ {
		tick()
	}

	allocs := testing.AllocsPerRun(200, tick)
	if allocs != 0 {
		t.Fatalf("steady-state tick allocates %.2f times per run, want 0", allocs)
	}
}
