package core

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
)

// Soak testing (make soak): randomized fault storms that always include a
// controller crash at a random onset with a random restart delay, run
// alternately with and without a checkpoint store — so both the
// restore-from-checkpoint and the fail-safe restart paths soak. Every run
// must finish with zero breaker trips, zero outage seconds and zero
// SoC-floor invariant breaches.
//
// SOAK_RUNS scales the sweep (default 6, 2 under -short); `make soak` runs
// 40, CI runs a short batch alongside the chaos job.

func soakRuns() int {
	if s := os.Getenv("SOAK_RUNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 2
	}
	return 6
}

func TestSoakCrashStormsStaySafe(t *testing.T) {
	n := soakRuns()
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("run-%03d", i), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(40_000 + 7919*i)))
			scn := sim.DefaultScenario()
			scn.Interactive.Seed = rng.Int63()
			plan := randomStorm(rng, scn.Rack.NumServers)
			plan.Faults = append(plan.Faults, faults.Fault{
				Kind:      faults.ControllerCrash,
				OnsetS:    float64(rng.Intn(800)),
				DurationS: 10,
				Severity:  3 * rng.Float64(),
			})
			scn.Faults = plan
			if err := scn.Validate(); err != nil {
				t.Fatalf("generated invalid scenario: %v", err)
			}

			var opts sim.RunOptions
			if i%2 == 0 {
				opts.Checkpoint = &sim.CheckpointOptions{Store: checkpoint.NewMemStore()}
			}
			p := New(DefaultConfig())
			res, err := sim.RunWith(scn, p, opts)
			if err != nil {
				t.Fatalf("run failed under %v: %v", scn.Faults.Faults, err)
			}
			if res.CBTrips != 0 || res.OutageS != 0 {
				t.Errorf("trips=%d outage=%.0fs (checkpointed=%v) under %v",
					res.CBTrips, res.OutageS, opts.Checkpoint != nil, scn.Faults.Faults)
			}
			if v := p.InvariantViolations(); v.CBMargin != 0 || v.SoCFloor != 0 {
				t.Errorf("invariant breaches %+v (checkpointed=%v) under %v",
					v, opts.Checkpoint != nil, scn.Faults.Faults)
			}
		})
	}
}
