package core

import (
	"math"

	"sprintcon/internal/engine"
	"sprintcon/internal/sim"
)

// This file implements the event engine's quiescent-span protocol for
// SprintCon (sim.QuiescentPolicy, DESIGN.md §15). The engine certifies an
// exact floating-point fixed point by observing the digest below stay
// bit-identical for more than one full adaptation cadence, then closes
// spans analytically with AdvanceQuiescent instead of calling Tick every
// second.
//
// The digest covers every mutable field a Tick can read or write, with two
// deliberate exclusions, both replayed exactly by AdvanceQuiescent rather
// than certified stable:
//
//   - lastCtl and the allocator's adaptation window (lastUpdate, samples,
//     samplesHigh): these advance even at a fixed point, so AdvanceQuiescent
//     re-runs ObserveHeadroom each tick and the control-period firings
//     (deadlinePowerFloor + MaybeUpdatePBatch) at the real cadence;
//   - batch-job progress: jobs keep executing through a span (the rack
//     replays them with AdvanceBatchTicks), so job state cannot be hashed.
//     Instead, all-jobs-completed is a hard eligibility condition: a
//     completed job's control weight and deadline floor are constants,
//     while an incomplete job's RWeight(now) varies with now and would
//     change the MPC's inputs one control period before any digest noticed.
//
// Everything else the skipped Tick would have written is rewritten
// bit-identically at a certified fixed point (that is what digest equality
// across consecutive ticks means), so not calling it leaves the state
// exact.

// QuiescenceDigest implements sim.QuiescentPolicy: it appends the
// controller's mutable state to the digest and reports whether the policy
// is structurally eligible for span fast-forwarding at all. Ineligible
// states — an active external budget (retightened by a coordinator outside
// this policy's view), online model estimation, a pending decision record,
// live telemetry, or any incomplete batch job — return false without
// touching the digest.
func (s *SprintCon) QuiescenceDigest(env *sim.Env, d *engine.Digest) bool {
	if s.ext.Active || s.rls != nil || s.pending != nil || s.tm.enabled {
		return false
	}
	if !env.Rack.AllBatchJobsCompleted() {
		return false
	}
	d.Int(int(s.mode))
	d.Bool(s.everNearTrip)
	d.Bool(s.everDepleted)
	d.F64(s.failSafeUntil)
	d.F64(s.curPCb)
	d.F64(s.curPBatch)
	d.F64(s.kModel)
	d.F64(s.prevPfb)
	d.F64(s.lastMoveSum)
	d.Bool(s.havePrev)
	d.F64s(s.cmdFreqs)
	d.Int(s.inv.cbMargin)
	d.Int(s.inv.socFloor)
	d.Int(s.inv.freqBounds)
	d.Int(s.inv.deadline)
	d.Bool(s.inv.cbLogged)
	d.Bool(s.inv.socLogged)
	d.Bool(s.inv.freqLogged)
	d.Bool(s.inv.deadlineLogged)
	s.allocator.QuiescenceDigest(d)
	s.mpc.QuiescenceDigest(d)
	s.pi.QuiescenceDigest(d)
	s.upsctl.QuiescenceDigest(d)
	if s.hd.enabled() {
		d.Bool(true)
		s.hd.guard.QuiescenceDigest(d)
		d.Bool(s.hd.degraded)
		d.F64(s.hd.upsLastReqW)
		d.Int(s.hd.upsFailTicks)
		d.Bool(s.hd.upsFailed)
		d.F64s(s.hd.lastApplied)
		d.Ints(s.hd.stuckCount)
		d.Bools(s.hd.locked)
		d.Ints(s.hd.probeLeft)
	} else {
		d.Bool(false)
	}
	return true
}

// QuiescenceCadenceTicks implements sim.QuiescentPolicy: the number of
// consecutive bit-identical digests required before a fixed point is
// certified. It must strictly exceed the controller's slowest internal
// period — the allocator's P_batch adaptation window — measured in ticks,
// plus one more control period so the post-adaptation state is observed
// too; a shorter streak could certify a state that still changes when the
// next adaptation fires.
func (s *SprintCon) QuiescenceCadenceTicks(dt float64) int {
	ctlTicks := int(math.Ceil(s.cfg.ControlPeriodS / dt))
	if ctlTicks < 1 {
		ctlTicks = 1
	}
	pbCtl := 1
	if pb := s.allocator.Config().PBatchPeriodS; pb > 0 && s.cfg.ControlPeriodS > 0 {
		if pbCtl = int(math.Ceil(pb / s.cfg.ControlPeriodS)); pbCtl < 1 {
			pbCtl = 1
		}
	}
	return pbCtl*ctlTicks + ctlTicks
}

// QuiescentHorizonTicks implements sim.QuiescentPolicy: a conservative
// count of upcoming ticks over which the policy's scheduled budget cannot
// move — the allocator's overload/recovery square wave and the post-restart
// fail-safe expiry are the two time-driven edges. Capped at maxTicks.
func (s *SprintCon) QuiescentHorizonTicks(now, dt float64, maxTicks int) int {
	// A span replays control firings under the certified budget, so it may
	// only open while the schedule still evaluates to the budget the
	// controller last applied. The two diverge exactly when a schedule edge
	// (overload onset/exit, fail-safe expiry) falls on the span's opening
	// tick: the digest streak was certified on pre-edge ticks and cannot
	// see it. Forcing a zero horizon makes the edge tick run as a real
	// tick, whose control firing re-reads the schedule.
	if s.effectivePCb(now) != s.curPCb {
		return 0
	}
	min := maxTicks
	consider := func(limit float64) {
		if math.IsInf(limit, 1) || limit <= now {
			return
		}
		// The last safe tick must stay strictly before the edge; the −1
		// absorbs the boundary tick itself.
		if n := int((limit-now)/dt) - 1; n < min {
			min = n
		}
	}
	// In ModeEnded the budget is pinned at the breaker rating, so the
	// allocator's overload/recovery square wave cannot reach the
	// controller and its edges need not bound spans.
	if s.mode != ModeEnded {
		consider(s.allocator.NextBudgetEdge(now))
	}
	if now < s.failSafeUntil {
		consider(s.failSafeUntil)
	}
	if min < 0 {
		min = 0
	}
	return min
}

// AdvanceQuiescent implements sim.QuiescentPolicy: it replays the
// digest-excluded controller state across n fast-forwarded ticks at times
// (step0+k)·dt, k = 0..n−1, bit-identically to n real Tick calls at a
// certified fixed point. Only three mutations survive at a fixed point:
// the per-tick headroom observation, the control-period clock, and the
// periodic P_batch adaptation — everything else Tick writes is rewritten
// identically and is skipped.
func (s *SprintCon) AdvanceQuiescent(env *sim.Env, step0 int, dt float64, n int) {
	// Pure function of rack state the span holds constant (interactive
	// utilizations and frequencies), so one evaluation serves every tick.
	pInterEst := env.Rack.EstimateInteractivePower()
	for k := 0; k < n; k++ {
		now := float64(step0+k) * dt
		s.allocator.ObserveHeadroom(pInterEst, now)
		if now-s.lastCtl >= s.cfg.ControlPeriodS-1e-9 {
			s.lastCtl = now
			pDeadline, _ := s.deadlinePowerFloor(env, now)
			s.allocator.MaybeUpdatePBatch(now, pDeadline, s.pBatchMin, s.pBatchMax)
		}
	}
}
