package core

import (
	"math"
	"testing"

	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
	"sprintcon/internal/workload"
)

// quiesceScenario returns a scenario the event engine can fast-forward:
// deterministic plant (no monitor noise, no utilization jitter, no ambient
// swing) and a piecewise-constant diurnal demand trace with long plateaus.
func quiesceScenario(t *testing.T, durationS float64) sim.Scenario {
	t.Helper()
	scn := sim.DefaultScenario()
	scn.DurationS = durationS
	scn.BurstDurationS = durationS
	scn.AmbientSwingC = 0
	scn.Rack.MonitorNoiseStd = 0
	scn.Rack.UtilJitterStd = 0
	// Plateau levels sit in the regime where the capped closed loop settles
	// to an exact fixed point (batch throttled against its frequency floor).
	// At lighter demand the quantized batch actuator hunts between two
	// P-states forever — genuine plant dynamics the event engine must not
	// (and does not) fast-forward.
	scn.BatchSpecs = workload.SteadyStateSpecs()
	tr, err := workload.SteppedDiurnal([]float64{0.5, 0.62, 0.75, 0.55}, 1800, durationS, scn.DtS)
	if err != nil {
		t.Fatal(err)
	}
	scn.Trace = tr
	return scn
}

// bitEqualF64s compares float slices by IEEE-754 bit pattern (NaN-safe).
func bitEqualF64s(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %v (%#x) vs %v (%#x)", name, i,
				a[i], math.Float64bits(a[i]), b[i], math.Float64bits(b[i]))
		}
	}
}

// assertBitIdentical compares two run results field by field with bitwise
// float equality — the event engine's contract is exactness, not tolerance.
func assertBitIdentical(t *testing.T, tick, event *sim.Result) {
	t.Helper()
	s, e := &tick.Series, &event.Series
	bitEqualF64s(t, "Time", s.Time, e.Time)
	bitEqualF64s(t, "TotalW", s.TotalW, e.TotalW)
	bitEqualF64s(t, "CBW", s.CBW, e.CBW)
	bitEqualF64s(t, "UPSW", s.UPSW, e.UPSW)
	bitEqualF64s(t, "PCbW", s.PCbW, e.PCbW)
	bitEqualF64s(t, "PBatchW", s.PBatchW, e.PBatchW)
	bitEqualF64s(t, "FreqInter", s.FreqInter, e.FreqInter)
	bitEqualF64s(t, "FreqBatch", s.FreqBatch, e.FreqBatch)
	bitEqualF64s(t, "SoC", s.SoC, e.SoC)
	bitEqualF64s(t, "Demand", s.Demand, e.Demand)
	for name, pair := range map[string][2]float64{
		"AvgFreqInter":       {tick.AvgFreqInter, event.AvgFreqInter},
		"AvgFreqBatch":       {tick.AvgFreqBatch, event.AvgFreqBatch},
		"OutageS":            {tick.OutageS, event.OutageS},
		"UPSDoD":             {tick.UPSDoD, event.UPSDoD},
		"UPSDischargedWh":    {tick.UPSDischargedWh, event.UPSDischargedWh},
		"MaxCompletionTimeS": {tick.MaxCompletionTimeS, event.MaxCompletionTimeS},
		"CBOverBudgetFrac":   {tick.CBOverBudgetFrac, event.CBOverBudgetFrac},
		"CBTrackingErrorW":   {tick.CBTrackingErrorW, event.CBTrackingErrorW},
		"EnergyCBWh":         {tick.EnergyCBWh, event.EnergyCBWh},
		"EnergyCBOverWh":     {tick.EnergyCBOverWh, event.EnergyCBOverWh},
		"EnergyTotalWh":      {tick.EnergyTotalWh, event.EnergyTotalWh},
		"BatchWorkDoneS":     {tick.BatchWorkDoneS, event.BatchWorkDoneS},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("%s: %v vs %v", name, pair[0], pair[1])
		}
	}
	if tick.CBTrips != event.CBTrips {
		t.Fatalf("CBTrips %d vs %d", tick.CBTrips, event.CBTrips)
	}
	if tick.JobsTotal != event.JobsTotal || tick.JobsCompletedOnce != event.JobsCompletedOnce ||
		tick.DeadlineMisses != event.DeadlineMisses {
		t.Fatalf("job summary differs: %+v vs %+v",
			[3]int{tick.JobsTotal, tick.JobsCompletedOnce, tick.DeadlineMisses},
			[3]int{event.JobsTotal, event.JobsCompletedOnce, event.DeadlineMisses})
	}
	for i := range tick.Jobs {
		a, b := tick.Jobs[i], event.Jobs[i]
		if a.Name != b.Name || a.Core != b.Core || a.Missed != b.Missed ||
			math.Float64bits(a.CompletionS) != math.Float64bits(b.CompletionS) ||
			math.Float64bits(a.Progress) != math.Float64bits(b.Progress) {
			t.Fatalf("job %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(tick.Events) != len(event.Events) {
		t.Fatalf("event log length %d vs %d", len(tick.Events), len(event.Events))
	}
	for i := range tick.Events {
		a, b := tick.Events[i], event.Events[i]
		if a.Kind != b.Kind || a.Msg != b.Msg || a.Seq != b.Seq ||
			math.Float64bits(a.T) != math.Float64bits(b.T) {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// runBoth executes the same scenario+config under the tick and the event
// engine and returns both results.
func runBoth(t *testing.T, cfg Config, scn sim.Scenario, opts sim.RunOptions) (tick, event *sim.Result) {
	t.Helper()
	to := opts
	to.Engine = "tick"
	tick, err := sim.RunWith(scn, New(cfg), to)
	if err != nil {
		t.Fatal(err)
	}
	eo := opts
	eo.Engine = "event"
	event, err = sim.RunWith(scn, New(cfg), eo)
	if err != nil {
		t.Fatal(err)
	}
	return tick, event
}

// The headline tentpole property: a day-fraction diurnal power-capping run
// is bit-identical between engines AND the event engine actually skips the
// bulk of the ticks.
func TestEventEngineBitIdenticalNoSprintDiurnal(t *testing.T) {
	scn := quiesceScenario(t, 4*3600)
	cfg := DefaultConfig()
	cfg.NoSprint = true
	tick, event := runBoth(t, cfg, scn, sim.RunOptions{})
	assertBitIdentical(t, tick, event)
	if event.Engine.Name != "event" || tick.Engine.Name != "tick" {
		t.Fatalf("engine names %q / %q", event.Engine.Name, tick.Engine.Name)
	}
	if event.Engine.Spans == 0 {
		t.Fatal("event engine opened no quiescent spans on a diurnal plateau trace")
	}
	frac := float64(event.Engine.TicksSkipped) / (scn.DurationS / scn.DtS)
	if frac < 0.5 {
		t.Fatalf("event engine skipped only %.1f%% of ticks (%d spans)", 100*frac, event.Engine.Spans)
	}
	t.Logf("spans=%d skipped=%d (%.1f%%) events=%d",
		event.Engine.Spans, event.Engine.TicksSkipped, 100*frac, event.Engine.Events)
}

// A full sprint (UPS discharging, overload schedule active) must also be
// bit-identical — even if few or no spans open while the plant is active.
func TestEventEngineBitIdenticalSprint(t *testing.T) {
	scn := quiesceScenario(t, 1800)
	tick, event := runBoth(t, DefaultConfig(), scn, sim.RunOptions{})
	assertBitIdentical(t, tick, event)
}

// The unhardened (paper-faithful) controller takes a different code path
// through Tick; equivalence must hold there too.
func TestEventEngineBitIdenticalUnhardened(t *testing.T) {
	scn := quiesceScenario(t, 2*3600)
	cfg := DefaultConfig()
	cfg.NoSprint = true
	cfg.Harden.Disabled = true
	tick, event := runBoth(t, cfg, scn, sim.RunOptions{})
	assertBitIdentical(t, tick, event)
	if event.Engine.Spans == 0 {
		t.Fatal("unhardened run opened no spans")
	}
}

// PI controller: the integrator drifts, so spans generally cannot open —
// but results must still match bit for bit.
func TestEventEngineBitIdenticalPI(t *testing.T) {
	scn := quiesceScenario(t, 1200)
	cfg := DefaultConfig()
	cfg.Controller = ControllerPI
	tick, event := runBoth(t, cfg, scn, sim.RunOptions{})
	assertBitIdentical(t, tick, event)
}

// Noisy stochastic scenario (default): statically ineligible for spans; the
// event engine must fall back to exact tick stepping.
func TestEventEngineFallsBackOnNoisyScenario(t *testing.T) {
	scn := sim.DefaultScenario()
	tick, event := runBoth(t, DefaultConfig(), scn, sim.RunOptions{})
	assertBitIdentical(t, tick, event)
	if event.Engine.Spans != 0 || event.Engine.TicksSkipped != 0 {
		t.Fatalf("noisy scenario must not fast-forward: %+v", event.Engine)
	}
}

// Mid-run fault injection: spans must stop at fault onsets and resume after
// clears, with bit-identical corruption state throughout.
func TestEventEngineBitIdenticalWithFaults(t *testing.T) {
	scn := quiesceScenario(t, 2*3600)
	scn.Faults = faults.Plan{Faults: []faults.Fault{
		{Kind: faults.MonitorBias, OnsetS: 2500, DurationS: 300, Severity: 0.08},
		{Kind: faults.MonitorFreeze, OnsetS: 5000, DurationS: 120},
	}}
	cfg := DefaultConfig()
	cfg.NoSprint = true
	tick, event := runBoth(t, cfg, scn, sim.RunOptions{})
	assertBitIdentical(t, tick, event)
	if event.Engine.Spans == 0 {
		t.Fatal("faulted diurnal run should still span between fault windows")
	}
}

// A stride-recorded run must be bit-identical too (the bench scenario's
// configuration).
func TestEventEngineBitIdenticalWithSeriesStride(t *testing.T) {
	scn := quiesceScenario(t, 2*3600)
	cfg := DefaultConfig()
	cfg.NoSprint = true
	tick, event := runBoth(t, cfg, scn, sim.RunOptions{SeriesStride: 60})
	assertBitIdentical(t, tick, event)
	if event.Engine.Spans == 0 {
		t.Fatal("strided run opened no spans")
	}
}

// Every control-period boundary in the series must agree between engines:
// the recorded P_cb/P_batch targets are the controller's decisions, so
// bitwise equality here pins decision equivalence at each control period.
func TestEventEngineDecisionsAgreeAtControlBoundaries(t *testing.T) {
	scn := quiesceScenario(t, 3600)
	cfg := DefaultConfig()
	tick, event := runBoth(t, cfg, scn, sim.RunOptions{})
	period := int(cfg.ControlPeriodS / scn.DtS)
	for i := 0; i < len(tick.Series.Time); i += period {
		if math.Float64bits(tick.Series.PCbW[i]) != math.Float64bits(event.Series.PCbW[i]) ||
			math.Float64bits(tick.Series.PBatchW[i]) != math.Float64bits(event.Series.PBatchW[i]) {
			t.Fatalf("control boundary t=%.0f: targets differ", tick.Series.Time[i])
		}
	}
}

// DropEvents must be behavior-invisible: nothing reads the log mid-run, so
// a dropped-log run stays bit-identical to a logging run in every series
// column and summary — only Result.Events comes back empty. This is the
// contract that lets the bench measure the engine's steady-state allocation
// cost (zero allocs per event) without counting diagnostic log volume.
func TestDropEventsBitInvisible(t *testing.T) {
	scn := quiesceScenario(t, 2*3600)
	cfg := DefaultConfig()
	cfg.NoSprint = true

	logged, err := sim.RunWith(scn, New(cfg), sim.RunOptions{Engine: "event"})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := sim.RunWith(scn, New(cfg), sim.RunOptions{Engine: "event", DropEvents: true})
	if err != nil {
		t.Fatal(err)
	}

	if len(logged.Events) == 0 {
		t.Fatal("scenario produced no log entries; the test has no teeth")
	}
	if len(dropped.Events) != 0 {
		t.Fatalf("drop mode recorded %d events, want 0", len(dropped.Events))
	}

	a, b := &logged.Series, &dropped.Series
	bitEqualF64s(t, "Time", a.Time, b.Time)
	bitEqualF64s(t, "TotalW", a.TotalW, b.TotalW)
	bitEqualF64s(t, "CBW", a.CBW, b.CBW)
	bitEqualF64s(t, "PCbW", a.PCbW, b.PCbW)
	bitEqualF64s(t, "PBatchW", a.PBatchW, b.PBatchW)
	bitEqualF64s(t, "FreqBatch", a.FreqBatch, b.FreqBatch)
	bitEqualF64s(t, "SoC", a.SoC, b.SoC)
	if logged.CBTrips != dropped.CBTrips ||
		math.Float64bits(logged.EnergyTotalWh) != math.Float64bits(dropped.EnergyTotalWh) ||
		math.Float64bits(logged.BatchWorkDoneS) != math.Float64bits(dropped.BatchWorkDoneS) {
		t.Fatal("summary statistics diverge under drop mode")
	}
	if logged.Engine.Spans != dropped.Engine.Spans ||
		logged.Engine.TicksSkipped != dropped.Engine.TicksSkipped {
		t.Fatalf("engine stats diverge: %+v vs %+v", logged.Engine, dropped.Engine)
	}
}
