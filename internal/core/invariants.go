package core

import (
	"math"

	"sprintcon/internal/sim"
)

// The runtime safety-invariant supervisor (DESIGN.md §11) re-checks every
// tick the guarantees the rest of the controller maintains by construction:
//
//  1. the breaker's trip-curve margin is never exhausted;
//  2. the UPS never discharges below its depth-of-discharge floor;
//  3. commanded batch frequencies respect the Eq. (9) bounds;
//  4. batch deadlines remain feasible under the current budget.
//
// The escalation response — stop overloading, fall to CB-only, end the
// sprint — is the paper's degradation ladder, already driven by updateMode
// the tick a violation is first seen. The supervisor's job is the layer
// beneath: count violations that persist *despite* that enforcement (a trip
// that happened anyway, a depleted battery still delivering, an
// out-of-bounds frequency about to be actuated), clamp what it can, and
// make each breach kind visible in the event log and telemetry. In a
// healthy run every counter stays zero except deadline feasibility, which
// reports overload demand rather than a controller fault.

// invariantState is the supervisor's cumulative breach counters plus
// once-per-run logging flags.
type invariantState struct {
	cbMargin   int
	socFloor   int
	freqBounds int
	deadline   int

	cbLogged       bool
	socLogged      bool
	freqLogged     bool
	deadlineLogged bool
}

// InvariantReport is the supervisor's cumulative breach count per
// invariant. Counters survive controller restarts through checkpoints, so a
// resumed run reports run-lifetime totals.
type InvariantReport struct {
	// CBMargin counts ticks on which the breaker's trip-curve budget was
	// exhausted (a trip, or thermal fraction ≥ 1) — the margin invariant
	// failed despite the near-trip escalation.
	CBMargin int
	// SoCFloor counts ticks on which a depleted UPS was still delivering
	// power — discharge past the DoD floor that escalation should have
	// stopped.
	SoCFloor int
	// FreqBounds counts commanded frequencies outside the Eq. (9) box
	// (clamped before actuation).
	FreqBounds int
	// Deadline counts control periods in which some batch job's required
	// frequency already exceeded peak — a miss no budget can prevent.
	Deadline int
}

// InvariantViolations returns the supervisor's cumulative breach counts.
func (s *SprintCon) InvariantViolations() InvariantReport {
	return InvariantReport{
		CBMargin:   s.inv.cbMargin,
		SoCFloor:   s.inv.socFloor,
		FreqBounds: s.inv.freqBounds,
		Deadline:   s.inv.deadline,
	}
}

// checkTickInvariants runs the per-tick plant invariants. It is called
// after updateMode, so the degradation ladder has already escalated on
// anything seen this tick; what the supervisor records here are breaches
// that enforcement did not prevent.
func (s *SprintCon) checkTickInvariants(env *sim.Env, snap sim.Snapshot) {
	if snap.CBTripped || snap.CBThermalFraction >= 1 {
		s.inv.cbMargin++
		s.everNearTrip = true // defense in depth; updateMode already escalated
		if !s.inv.cbLogged {
			s.inv.cbLogged = true
			if env.Events != nil {
				env.Events.Logf("invariant", "CB trip-curve margin exhausted (thermal %.2f, tripped %v)",
					snap.CBThermalFraction, snap.CBTripped)
			}
		}
	}
	if snap.UPSDepleted {
		s.everDepleted = true
		if snap.UPSPowerW > 1e-9 {
			s.inv.socFloor++
			if !s.inv.socLogged {
				s.inv.socLogged = true
				if env.Events != nil {
					env.Events.Logf("invariant", "UPS delivering %.0f W below the DoD floor (SoC %.3f)",
						snap.UPSPowerW, snap.UPSSoC)
				}
			}
		}
	}
	if s.tm.enabled {
		s.tm.invBreaches.Set(float64(s.inv.cbMargin + s.inv.socFloor + s.inv.freqBounds))
	}
}

// checkControlInvariants verifies the frequencies about to be actuated
// against the Eq. (9) bounds — clamping any violation so it never reaches
// the rack — and records deadline infeasibility for this control period.
func (s *SprintCon) checkControlInvariants(env *sim.Env, next []float64, urgency float64) {
	const eps = 1e-6
	for i, f := range next {
		if math.IsNaN(f) || f < s.fmin-eps || f > s.fmax+eps {
			s.inv.freqBounds++
			if math.IsNaN(f) {
				next[i] = s.fmin
			} else {
				next[i] = clamp(f, s.fmin, s.fmax)
			}
			if !s.inv.freqLogged {
				s.inv.freqLogged = true
				if env.Events != nil {
					env.Events.Logf("invariant", "commanded frequency %.3f GHz outside [%.2f, %.2f]: clamped",
						f, s.fmin, s.fmax)
				}
			}
		}
	}
	if urgency > 1+1e-9 {
		s.inv.deadline++
		if !s.inv.deadlineLogged {
			s.inv.deadlineLogged = true
			if env.Events != nil {
				env.Events.Logf("invariant", "deadline infeasible: a job needs %.0f%% of peak frequency from now on",
					100*urgency)
			}
		}
	}
}
