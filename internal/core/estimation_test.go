package core

import (
	"testing"

	"sprintcon/internal/sim"
)

// Online model estimation (extension, paper [27]): with a badly
// miscalibrated initial power model, the RLS-adapted controller must
// recover the true slope and out-track the static one.

func TestOnlineEstimationRecoversFromSteepModel(t *testing.T) {
	scn := sim.DefaultScenario()

	// Model believes each core costs 3× the true watts per GHz: the MPC
	// takes timid steps and tracks sluggishly.
	static := DefaultConfig()
	static.InitialKScale = 3
	pStatic := New(static)
	resStatic, err := sim.Run(scn, pStatic)
	if err != nil {
		t.Fatal(err)
	}

	adaptive := static
	adaptive.OnlineEstimation = true
	pAdaptive := New(adaptive)
	resAdaptive, err := sim.Run(scn, pAdaptive)
	if err != nil {
		t.Fatal(err)
	}

	// The estimator must have pulled the slope well below the bad
	// initial ≈29 W/GHz. It converges to the plant's *local* slope at
	// the operating point (≈14–19 at high frequency, above the global
	// secant 9.6) — which is exactly the right gain for local MPC moves.
	if k := pAdaptive.ModelK(); k > 26 {
		t.Fatalf("adapted K = %v, want pulled well below the initial ≈29", k)
	}
	if k := pStatic.ModelK(); k < 25 {
		t.Fatalf("static K = %v, should stay at the bad initial value", k)
	}
	// Both remain safe; the adaptive one wastes less of its deadlines.
	for _, r := range []*sim.Result{resStatic, resAdaptive} {
		if r.CBTrips != 0 || r.OutageS != 0 {
			t.Fatalf("safety violated: trips=%d outage=%v", r.CBTrips, r.OutageS)
		}
	}
	if resAdaptive.DeadlineMisses > resStatic.DeadlineMisses {
		t.Fatalf("adaptive misses %d > static %d", resAdaptive.DeadlineMisses, resStatic.DeadlineMisses)
	}
}

func TestOnlineEstimationStableWhenCalibrated(t *testing.T) {
	// With a correct initial model, adaptation must not destabilize
	// anything: same safety, deadlines still met, slope stays plausible.
	scn := sim.DefaultScenario()
	cfg := DefaultConfig()
	cfg.OnlineEstimation = true
	p := New(cfg)
	res, err := sim.Run(scn, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CBTrips != 0 || res.OutageS != 0 || res.DeadlineMisses != 0 {
		t.Fatalf("calibrated+adaptive run degraded: trips=%d outage=%v misses=%d",
			res.CBTrips, res.OutageS, res.DeadlineMisses)
	}
	if k := p.ModelK(); k < 3 || k > 30 {
		t.Fatalf("adapted K = %v wandered out of the plausible range", k)
	}
}

func TestShallowModelSafeToo(t *testing.T) {
	// Model believes cores are 3× cheaper than they are: the MPC
	// over-steps. The QP's box constraints and the reference trajectory
	// must keep this safe even without adaptation.
	scn := sim.DefaultScenario()
	cfg := DefaultConfig()
	cfg.InitialKScale = 0.34
	res, err := sim.Run(scn, New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.CBTrips != 0 || res.OutageS != 0 {
		t.Fatalf("shallow model unsafe: trips=%d outage=%v", res.CBTrips, res.OutageS)
	}
}
