package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
)

// Chaos testing: randomized multi-fault storms. Each scenario draws a
// seeded schedule of 1-4 overlapping faults — sensor, actuator and
// component failures alike — and the hardened controller must finish the
// full 15-minute sprint with zero breaker trips, zero outage seconds and no
// panic. The schedules are deterministic per seed, so a failing storm
// reproduces exactly.
//
// Two physical limits shape the generator:
//
//   - actuator-stuck targets a single server, never the whole rack: a rack
//     whose every core is frozen at sprint frequency cannot shed power by
//     any control action, so no controller could keep it safe;
//   - monitor-bias avoids the weakly-negative dead band (roughly −0.3..0):
//     a small steady under-read is below any plausible spike/slew
//     detection threshold yet bounded by the UPS trim authority, so it is
//     survivable but indistinguishable from sensor noise. Strong negative
//     bias (caught by the slew check) and any positive bias (conservative)
//     are both fair game.
func randomStorm(rng *rand.Rand, numServers int) faults.Plan {
	n := 1 + rng.Intn(4)
	var plan faults.Plan
	for i := 0; i < n; i++ {
		f := faults.Fault{
			OnsetS:    float64(rng.Intn(700)),
			DurationS: 20 + float64(rng.Intn(380)),
		}
		// Single-rack storms draw only rack- and server-scoped kinds;
		// link-scoped faults need a cluster with a control link (the
		// cluster package soaks those).
		kinds := append(faults.KindsForScope(faults.ScopeRack), faults.KindsForScope(faults.ScopeServer)...)
		f.Kind = kinds[rng.Intn(len(kinds))]
		switch f.Kind {
		case faults.MonitorBias:
			if rng.Intn(2) == 0 {
				f.Severity = -(0.35 + 0.25*rng.Float64()) // strong: slew-detectable
			} else {
				f.Severity = 0.1 + 0.5*rng.Float64() // over-read: conservative
			}
		case faults.MeasurementDelay:
			f.Severity = 1 + float64(rng.Intn(8))
		case faults.ActuatorLag:
			f.Severity = 0.1 + 0.6*rng.Float64()
			if rng.Intn(2) == 0 {
				f.Server = faults.AllServers
			} else {
				f.Server = rng.Intn(numServers)
			}
		case faults.ActuatorStuck:
			f.Server = rng.Intn(numServers)
		case faults.ServerCrash:
			f.Server = rng.Intn(numServers)
		case faults.UPSGaugeBias:
			f.Severity = -0.8 + 1.6*rng.Float64()
		case faults.ControllerCrash:
			// Restart delay 0-3 s. A dead controller holds the last
			// commanded frequencies, which mid-overload burn trip budget
			// at ~0.56 o-sec/s with no supervisor watching; a few seconds
			// is survivable on any schedule, tens of seconds is not a
			// fault any controller could be safe under.
			f.Severity = 3 * rng.Float64()
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}

func TestChaosStormsNeverTripHardenedSprintCon(t *testing.T) {
	const storms = 25
	n := storms
	if testing.Short() {
		n = 6
	}
	scnBase := sim.DefaultScenario()
	var jobs []sim.Job
	plans := make(map[string]faults.Plan, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		scn := scnBase
		scn.Interactive.Seed = int64(i + 1)
		scn.Faults = randomStorm(rng, scn.Rack.NumServers)
		if err := scn.Validate(); err != nil {
			t.Fatalf("storm %d: generated invalid scenario: %v", i, err)
		}
		key := fmt.Sprintf("storm-%02d", i)
		plans[key] = scn.Faults
		jobs = append(jobs, sim.Job{Key: key, Scenario: scn, Policy: New(DefaultConfig())})
	}
	results, err := sim.RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		res := results[j.Key]
		if res == nil {
			t.Fatalf("%s: missing result", j.Key)
		}
		if res.CBTrips != 0 || res.OutageS != 0 {
			t.Errorf("%s: trips=%d outage=%.0fs under %v",
				j.Key, res.CBTrips, res.OutageS, plans[j.Key].Faults)
		}
	}
}

// TestChaosStormDeterminism pins that a storm re-run with the same seed and
// fault schedule reproduces the exact same headline metrics, so any chaos
// failure is replayable.
func TestChaosStormDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	scn := sim.DefaultScenario()
	scn.Faults = randomStorm(rng, scn.Rack.NumServers)
	a, err := sim.Run(scn, New(DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(scn, New(DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if a.CBTrips != b.CBTrips || a.OutageS != b.OutageS ||
		a.UPSDoD != b.UPSDoD || a.AvgFreqBatch != b.AvgFreqBatch {
		t.Fatalf("identical storm runs diverged: %+v vs %+v", a, b)
	}
}
