package core

import (
	"testing"

	"sprintcon/internal/alloc"
	"sprintcon/internal/sim"
	"sprintcon/internal/workload"
)

// Robustness and failure-injection tests: the paper's central argument for
// feedback control is tolerance of the factors "difficult to be accurately
// modeled" (Section V-A). Each test perturbs one assumption and requires
// the safety invariants to survive.

func safetyInvariants(t *testing.T, res *sim.Result, label string) {
	t.Helper()
	if res.CBTrips != 0 {
		t.Fatalf("%s: breaker tripped %d times", label, res.CBTrips)
	}
	if res.OutageS != 0 {
		t.Fatalf("%s: outage of %v s", label, res.OutageS)
	}
	if res.AvgFreqInter < 0.99 {
		t.Fatalf("%s: interactive frequency degraded to %v", label, res.AvgFreqInter)
	}
}

func TestRobustToHeavyMonitorNoise(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.Rack.MonitorNoiseStd = 0.02 // 5× the default monitor error
	res := run(t, DefaultConfig(), scn)
	safetyInvariants(t, res, "noisy monitor")
	if res.DeadlineMisses != 0 {
		t.Fatalf("noisy monitor: %d deadline misses", res.DeadlineMisses)
	}
}

func TestRobustToHotAmbient(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.AmbientBaseC = 35 // cooling failure raises the fan disturbance
	scn.AmbientSwingC = 5
	res := run(t, DefaultConfig(), scn)
	safetyInvariants(t, res, "hot ambient")
}

func TestRobustToStrongerFanDisturbance(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.Rack.ServerParams.FanW = 18 // 3× the unmodeled fan power
	res := run(t, DefaultConfig(), scn)
	safetyInvariants(t, res, "strong fan")
}

func TestRobustToBreakerWeakerThanBelieved(t *testing.T) {
	// The allocator is configured for the nominal breaker, but the real
	// breaker is 10 % weaker (less trip budget). The near-trip guard
	// must stop overloading before damage.
	scn := sim.DefaultScenario()
	acfg := alloc.DefaultConfig(scn.Breaker.RatedPower, scn.Breaker.TripBudget())
	scn.Breaker.RefTripTime = 135 // real budget below the allocator's belief
	cfg := DefaultConfig()
	cfg.AllocOverride = &acfg
	res := run(t, cfg, scn)
	if res.CBTrips != 0 {
		t.Fatalf("weak breaker tripped %d times despite the near-trip guard", res.CBTrips)
	}
}

func TestRobustToUtilizationJitter(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.Rack.UtilJitterStd = 0.10 // noisy per-core utilization monitors
	res := run(t, DefaultConfig(), scn)
	safetyInvariants(t, res, "util jitter")
}

func TestRobustToMemoryBoundOnlyBatchMix(t *testing.T) {
	// Every job strongly memory bound: the progress model's frequency
	// leverage is weak, so the deadline floor must push frequencies high.
	scn := sim.DefaultScenario()
	res1 := run(t, DefaultConfig(), scn) // baseline for comparison
	_ = res1
	// Rebuild with a custom env is not exposed; instead tighten fills so
	// the memory-bound jobs in the default mix dominate the floor.
	scn.WorkFillMin, scn.WorkFillMax = 0.50, 0.60
	scn.BatchDeadlineS = 600
	res := run(t, DefaultConfig(), scn)
	if res.DeadlineMisses != 0 {
		t.Fatalf("tight memory-bound mix: %d misses", res.DeadlineMisses)
	}
	safetyInvariants(t, res, "tight mix")
}

func TestRobustToLateBurstTrace(t *testing.T) {
	// A trace replayed from CSV whose burst lands mid-sprint.
	cfg := workload.DefaultInteractiveConfig()
	cfg.BurstStartS = 400
	cfg.BurstEndS = 700
	cfg.BurstPeak = 0.9
	tr, err := workload.GenInteractive(cfg, 900, 1)
	if err != nil {
		t.Fatal(err)
	}
	scn := sim.DefaultScenario()
	scn.Trace = tr
	res := run(t, DefaultConfig(), scn)
	safetyInvariants(t, res, "late burst")
	if res.DeadlineMisses != 0 {
		t.Fatalf("late burst: %d misses", res.DeadlineMisses)
	}
}

func TestRobustToSmallRack(t *testing.T) {
	// A 4-server rack with a proportionally sized breaker and UPS: the
	// controllers must not be tuned to the 16-server scale.
	scn := sim.DefaultScenario()
	scn.Rack.NumServers = 4
	scn.Breaker.RatedPower = 800 // 2/3 of the 1.2 kW maximum
	scn.UPS.CapacityWh = 100
	scn.UPS.MaxDischargeW = 1200
	res := run(t, DefaultConfig(), scn)
	safetyInvariants(t, res, "small rack")
	if res.DeadlineMisses != 0 {
		t.Fatalf("small rack: %d misses", res.DeadlineMisses)
	}
}

func TestRobustToLeadAcidBattery(t *testing.T) {
	// A lead-acid-flavored UPS: steep Peukert effect means high-rate
	// discharges cost far more stored energy. SprintCon's shallow,
	// recovery-phase-only discharges must stay safe regardless.
	scn := sim.DefaultScenario()
	scn.UPS.PeukertExponent = 1.25
	scn.UPS.PeukertRefW = 800
	res := run(t, DefaultConfig(), scn)
	safetyInvariants(t, res, "lead-acid UPS")
	if res.DeadlineMisses != 0 {
		t.Fatalf("lead-acid UPS: %d misses", res.DeadlineMisses)
	}
	// The Peukert tax shows up as extra drawn energy versus the default.
	base := run(t, DefaultConfig(), sim.DefaultScenario())
	if res.UPSDischargedWh <= base.UPSDischargedWh {
		t.Fatalf("Peukert draw %v should exceed ideal %v", res.UPSDischargedWh, base.UPSDischargedWh)
	}
}

func TestRobustToThresholdAllocatorMode(t *testing.T) {
	// The paper's literal ±step headroom rule (ablation mode) must also
	// complete a sprint safely, if less efficiently.
	scn := sim.DefaultScenario()
	acfg := alloc.DefaultConfig(scn.Breaker.RatedPower, scn.Breaker.TripBudget())
	acfg.Mode = alloc.AdaptThreshold
	cfg := DefaultConfig()
	cfg.AllocOverride = &acfg
	res := run(t, cfg, scn)
	safetyInvariants(t, res, "threshold mode")
	if res.DeadlineMisses != 0 {
		t.Fatalf("threshold mode: %d misses", res.DeadlineMisses)
	}
}
