// Package core implements SprintCon itself (paper Sections IV–V): the
// power load allocator, the MPC server power controller and the UPS power
// controller wired together behind the sim.Policy interface, plus the
// safety supervisor that implements the paper's degradation ladder:
//
//   - circuit breaker near tripping → stop overloading; the UPS takes over
//     the load above the rating;
//   - UPS energy exhausted → P_cb becomes the power target for ALL
//     workloads, with priority bidding between classes;
//   - both → end sprinting.
//
// The controller is one rack's brain, but it composes upward: an upstream
// coordinator (the lease-based control link of internal/link, funded by
// internal/hier's budget waterfall) can tighten its budget each tick via
// SetExternalBudget. The constraint is tighten-only, so the stack above
// can only ever make the rack safer than it would be standalone.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sprintcon/internal/alloc"
	"sprintcon/internal/control"
	"sprintcon/internal/sim"
)

// Mode is the supervisor state (paper Section IV-C).
type Mode int

const (
	// ModeNormal: scheduled CB overload + UPS covering the excess.
	ModeNormal Mode = iota
	// ModeNoOverload: CB near tripping; overload stopped, UPS carries
	// everything above the rating.
	ModeNoOverload
	// ModeCBOnly: UPS depleted; P_cb is the budget for all workloads and
	// classes bid for power.
	ModeCBOnly
	// ModeEnded: both events occurred; sprinting has ended.
	ModeEnded
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeNoOverload:
		return "no-overload"
	case ModeCBOnly:
		return "cb-only"
	case ModeEnded:
		return "ended"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ServerController selects the server power controller implementation.
type ServerController int

const (
	// ControllerMPC is the paper's design (Section V-B), with the
	// constant-move prediction simplification.
	ControllerMPC ServerController = iota
	// ControllerPI is the single-loop ablation baseline (DESIGN.md A1).
	ControllerPI
	// ControllerMPCFull optimizes a true sequence of distinct moves over
	// the control horizon (DESIGN.md A1 extension).
	ControllerMPCFull
)

// Config tunes SprintCon. The zero value selects paper defaults via New.
type Config struct {
	// Controller selects MPC (paper) or PI (ablation).
	Controller ServerController
	// RefUtil is the utilization at which the linear design model is
	// fitted (batch cores run nearly saturated).
	RefUtil float64
	// ControlPeriodS is the server power controller period.
	ControlPeriodS float64
	// RefTimeConstS is the MPC reference-trajectory time constant τ_r.
	RefTimeConstS float64
	// UPSCtl configures the UPS power controller.
	UPSCtl control.UPSControllerConfig
	// AllocOverride, when non-nil, replaces the allocator configuration
	// derived from the scenario (used by ablations A2).
	AllocOverride *alloc.Config
	// MinInteractiveFreqNorm floors interactive throttling during power
	// bidding (never slow interactive cores below this fraction of peak).
	MinInteractiveFreqNorm float64
	// CBOnlyMarginFrac derates the CB budget in the degraded modes where
	// the UPS can no longer absorb error: without it the total power
	// hovers *at* the rating and the breaker's thermal state never
	// decays.
	CBOnlyMarginFrac float64
	// InitialKScale multiplies the design model's frequency slope K,
	// simulating a miscalibrated power model (1 = calibrated). Used by
	// the online-estimation ablation.
	InitialKScale float64
	// OnlineEstimation enables recursive-least-squares adaptation of the
	// slope K from observed (ΔF, Δp) pairs each control period — the
	// online model estimation of [27].
	OnlineEstimation bool
	// NoSprint disables sprinting entirely: no CB overload, no UPS
	// discharge — classic power capping at the breaker rating ([8]).
	// This quantifies what sprinting buys (experiment E17).
	NoSprint bool
	// LegacyQP forces the MPC onto the pre-optimization cold QP path (no
	// warm start, no workspace). Benchmark-harness knob for measuring the
	// hot-path speedup in one binary; leave false in production.
	LegacyQP bool
	// Harden configures the fault defenses (measurement guard, telemetry
	// and UPS watchdogs, actuator-effectiveness monitoring). Defenses are
	// ON by default; set Harden.Disabled for the paper-faithful
	// fault-oblivious controller.
	Harden HardeningConfig
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{
		Controller:             ControllerMPC,
		RefUtil:                0.9,
		ControlPeriodS:         4,
		RefTimeConstS:          2,
		UPSCtl:                 control.DefaultUPSControllerConfig(),
		MinInteractiveFreqNorm: 0.2,
		CBOnlyMarginFrac:       0.04,
		InitialKScale:          1,
	}
}

// SprintCon is the policy. Create with New; it binds to an environment in
// Start and is not safe for concurrent use.
type SprintCon struct {
	cfg Config

	allocator *alloc.Allocator
	mpc       *control.MPC
	pi        *control.PI
	upsctl    *control.UPSController

	scn      sim.Scenario
	cmdFreqs []float64 // continuous commanded batch frequencies (owned)
	// Per-control-period scratch, preallocated in Start so the steady
	// state tick performs no heap allocation (DESIGN.md §10).
	rwBuf      []float64
	appliedBuf []float64
	kPerCore   float64
	cSharePer  float64
	idleEstW   float64
	pBatchMax  float64
	pBatchMin  float64
	fmin       float64
	fmax       float64

	mode         Mode
	lastCtl      float64
	curPCb       float64
	curPBatch    float64
	everNearTrip bool
	everDepleted bool
	// failSafeUntil caps the CB budget at the rating until the given
	// simulation time. It is set when the controller restarts without a
	// trustworthy checkpoint: the breaker's thermal history is unknown,
	// so no overload may be scheduled until one full recovery time has
	// re-established it (DESIGN.md §11).
	failSafeUntil float64
	// inv is the runtime safety-invariant supervisor state (invariants.go).
	inv invariantState

	// ext is the cluster coordinator's externally imposed budget (zero
	// value = standalone rack, no external constraint). See ExternalBudget.
	ext ExternalBudget

	// hd is the fault-defense state (nil when hardening is disabled).
	hd *hardenState

	// tm holds the registered telemetry instruments (zero value when the
	// run is un-instrumented) and pending the decision-trace inputs of
	// the current control period, emitted at the end of Tick once the
	// UPS request is known.
	tm      coreMetrics
	pending *decisionInputs

	// ob is the observability-plane hook (obs.go); zero value when the
	// run is unobserved.
	ob obsHook

	// Online model estimation (optional).
	rls         *control.RLS
	kModel      float64 // slope the controllers currently use
	prevPfb     float64
	lastMoveSum float64
	havePrev    bool
}

// New returns a SprintCon policy with the given configuration; zero-value
// fields are filled from DefaultConfig.
func New(cfg Config) *SprintCon {
	def := DefaultConfig()
	if cfg.RefUtil == 0 {
		cfg.RefUtil = def.RefUtil
	}
	if cfg.ControlPeriodS == 0 {
		cfg.ControlPeriodS = def.ControlPeriodS
	}
	if cfg.RefTimeConstS == 0 {
		cfg.RefTimeConstS = def.RefTimeConstS
	}
	if cfg.UPSCtl == (control.UPSControllerConfig{}) {
		cfg.UPSCtl = def.UPSCtl
	}
	if cfg.MinInteractiveFreqNorm == 0 {
		cfg.MinInteractiveFreqNorm = def.MinInteractiveFreqNorm
	}
	if cfg.CBOnlyMarginFrac == 0 {
		cfg.CBOnlyMarginFrac = def.CBOnlyMarginFrac
	}
	if cfg.InitialKScale == 0 {
		cfg.InitialKScale = def.InitialKScale
	}
	cfg.Harden = cfg.Harden.withDefaults()
	return &SprintCon{cfg: cfg}
}

// Name implements sim.Policy.
func (s *SprintCon) Name() string {
	if s.cfg.NoSprint {
		return "NoSprint"
	}
	name := "SprintCon"
	switch s.cfg.Controller {
	case ControllerPI:
		name = "SprintCon-PI"
	case ControllerMPCFull:
		name = "SprintCon-MPCFull"
	}
	if s.cfg.Harden.Disabled {
		name += "-unhardened"
	}
	return name
}

// Mode returns the current supervisor mode.
func (s *SprintCon) Mode() Mode { return s.mode }

// ExternalBudget is a budget imposed on the rack from outside — the row
// control link's per-tick lease budget, itself funded by the hierarchy's
// building → row waterfall when one is stacked above it. It only ever
// tightens what the rack's own schedule and supervisor would allow: an
// inactive external budget leaves the controller bit-identical to a
// standalone run.
type ExternalBudget struct {
	// Active gates the whole struct; false means no external constraint.
	Active bool
	// PCbCapW, when positive, caps the CB power target.
	PCbCapW float64
	// AllowOverload false caps the CB target at the breaker rating.
	AllowOverload bool
	// AllowUPS false suppresses UPS discharge requests.
	AllowUPS bool
}

// SetExternalBudget installs the external budget applied from the next tick
// on.
func (s *SprintCon) SetExternalBudget(b ExternalBudget) { s.ext = b }

// SetPhaseOffset re-phases the allocator's overload schedule (the control
// link's slot re-assignment path). Safe to call every tick. The offset is in
// the allocator's burst-anchored frame; see ScheduleAnchorS for translating
// an absolute (t=0 anchored) offset.
func (s *SprintCon) SetPhaseOffset(offsetS float64) {
	if s.allocator != nil {
		s.allocator.SetPhaseOffsetS(offsetS)
	}
}

// ScheduleAnchorS returns the absolute simulation time the allocator's
// periodic overload schedule is anchored at: 0 after a normal t=0 Start, the
// restart time after a fail-safe restore re-announces the burst. Consumers
// that assign overload slots in an absolute frame (the cluster control link)
// must fold this anchor into the offset they impose, or a restarted rack
// would overload in a window shifted from its assigned slot.
func (s *SprintCon) ScheduleAnchorS() float64 {
	if s.allocator == nil {
		return 0
	}
	return s.allocator.BurstAnchorS()
}

// Start implements sim.Policy.
func (s *SprintCon) Start(env *sim.Env, scn sim.Scenario) error {
	if err := s.initCommon(env, scn); err != nil {
		return err
	}

	// Announce the burst: the initial interactive reserve is the
	// Eq. (5) estimate at the trace's first sample.
	s.allocator.StartBurst(0, scn.BurstDurationS, s.idleEstW, s.interactiveEstimate(env, 0))
	s.curPCb = s.allocator.PCb(0)
	s.curPBatch = clamp(s.allocator.PBatchAt(0), s.pBatchMin, s.pBatchMax)

	// Sprinting begins: interactive cores to peak frequency.
	env.Rack.SetInteractiveFreq(s.fmax)
	return nil
}

// initCommon builds every controller component for the given environment —
// model coefficients, allocator, MPC/PI, UPS controller, hardening state —
// without announcing a burst or actuating anything. It is shared by Start
// (which then announces t=0 and actuates) and RestoreCheckpoint (which then
// overlays the snapshot and must not actuate: the plant kept running while
// the controller was down).
func (s *SprintCon) initCommon(env *sim.Env, scn sim.Scenario) error {
	if env == nil {
		return errors.New("core: nil environment")
	}
	s.scn = scn
	s.mode = ModeNormal
	s.lastCtl = math.Inf(-1)
	s.everNearTrip, s.everDepleted = false, false
	s.failSafeUntil = math.Inf(-1)
	s.inv = invariantState{}
	s.tm = newCoreMetrics(env.Metrics)
	s.pending = nil
	s.ob = obsHook{plane: env.Obs, capacityWh: scn.UPS.CapacityWh}

	params := scn.Rack.ServerParams
	co := params.DesignCoeffs(s.cfg.RefUtil)
	s.kPerCore = co.KWPerGHz * s.cfg.InitialKScale
	s.cSharePer = co.CIdleShareW
	s.fmin = params.PStates.Min()
	s.fmax = params.PStates.Max()
	s.idleEstW = env.Rack.EstimateIdlePower()

	n := len(env.Rack.BatchCores())
	s.cmdFreqs = env.Rack.BatchFreqs()
	s.rwBuf = make([]float64, n)
	s.appliedBuf = make([]float64, n)

	// Allocator: calibrated to the breaker unless overridden.
	acfg := alloc.DefaultConfig(scn.Breaker.RatedPower, scn.Breaker.TripBudget())
	if s.cfg.AllocOverride != nil {
		acfg = *s.cfg.AllocOverride
	}
	a, err := alloc.New(acfg)
	if err != nil {
		return fmt.Errorf("core: allocator: %w", err)
	}
	s.allocator = a

	// Controllers.
	s.kModel = s.kPerCore
	if err := s.rebuildControllers(n); err != nil {
		return err
	}
	if s.cfg.OnlineEstimation {
		// The estimated slope may roam over the physically plausible
		// range regardless of how wrong the initial model is.
		rls, err := control.NewRLS(clamp(s.kModel, 1, 50), 0.97, 1, 50)
		if err != nil {
			return fmt.Errorf("core: RLS: %w", err)
		}
		s.rls = rls
	}
	s.havePrev = false
	uc, err := control.NewUPSController(s.cfg.UPSCtl)
	if err != nil {
		return fmt.Errorf("core: UPS controller: %w", err)
	}
	s.upsctl = uc
	return s.startHardening(env)
}

// interactiveEstimate is the Eq. (5) interactive power estimate at peak
// frequency from the trace demand at time t.
func (s *SprintCon) interactiveEstimate(env *sim.Env, t float64) float64 {
	interCo := s.scn.Rack.ServerParams.InteractiveCoeffs()
	nInter := float64(len(env.Rack.InteractiveCores()))
	return nInter * (interCo.KWPerGHz*env.Trace.At(t) + interCo.CIdleShareW)
}

// rebuildControllers (re)creates the MPC and PI controllers for the
// current model slope s.kModel, and refreshes every quantity derived from
// the slope (batch power bounds, deadline-floor translation).
func (s *SprintCon) rebuildControllers(n int) error {
	s.pBatchMax = float64(n) * (s.kModel*s.fmax + s.cSharePer)
	s.pBatchMin = float64(n) * (s.kModel*s.fmin + s.cSharePer)
	k := make([]float64, n)
	for i := range k {
		k[i] = s.kModel
	}
	mcfg := control.DefaultMPCConfig(k)
	mcfg.PeriodS = s.cfg.ControlPeriodS
	mcfg.RefTimeConstS = s.cfg.RefTimeConstS
	mcfg.FMinGHz, mcfg.FMaxGHz = s.fmin, s.fmax
	mcfg.FullHorizon = s.cfg.Controller == ControllerMPCFull
	if s.cfg.LegacyQP {
		mcfg.LegacyQP = true
		mcfg.WarmStart = false
	}
	m, err := control.NewMPC(mcfg)
	if err != nil {
		return fmt.Errorf("core: MPC: %w", err)
	}
	s.mpc = m
	pcfg := control.DefaultPIConfig(n, s.kModel*float64(n))
	pcfg.PeriodS = s.cfg.ControlPeriodS
	pcfg.FMinGHz, pcfg.FMaxGHz = s.fmin, s.fmax
	pi, err := control.NewPI(pcfg)
	if err != nil {
		return fmt.Errorf("core: PI: %w", err)
	}
	s.pi = pi
	return nil
}

// ModelK returns the frequency slope the controllers currently use
// (exposed for the online-estimation ablation and tests).
func (s *SprintCon) ModelK() float64 { return s.kModel }

// Targets implements sim.TargetReporter.
func (s *SprintCon) Targets(float64) (pcbW, pbatchW float64) {
	return s.curPCb, s.curPBatch
}

// Tick implements sim.Policy.
func (s *SprintCon) Tick(env *sim.Env, snap sim.Snapshot) float64 {
	now := snap.Now
	pInterEst := env.Rack.EstimateInteractivePower()
	if s.hd.enabled() {
		// Defenses first, so everything below — the supervisor, the
		// allocator, both power controllers — sees the guarded
		// measurement and the watchdogs' verdicts.
		snap.MeasuredTotalW = s.guardMeasurement(env, snap.MeasuredTotalW, pInterEst)
		s.watchUPS(env, snap)
	}
	before := s.mode
	s.updateMode(snap)
	if s.mode != before && env.Events != nil {
		env.Events.Logf("mode", "supervisor %s → %s (thermal %.2f, SoC %.2f)",
			before, s.mode, snap.CBThermalFraction, snap.UPSSoC)
	}
	pcb := s.effectivePCb(now)
	s.curPCb = pcb
	s.checkTickInvariants(env, snap)

	s.allocator.ObserveHeadroom(pInterEst, now)

	// Server power control at its own (slower) cadence.
	if now-s.lastCtl >= s.cfg.ControlPeriodS-1e-9 {
		s.lastCtl = now
		s.serverPowerControl(env, snap, pcb, pInterEst)
	}

	// Interactive cores: peak frequency while sprinting; bid-throttled
	// only in the degraded CB-only/ended modes.
	s.manageInteractive(env, pcb, pInterEst)

	// UPS power control: cover everything the CB budget does not.
	var req float64
	if s.mode != ModeCBOnly && s.mode != ModeEnded && !math.IsInf(pcb, 1) && !s.upsBlocked() {
		req = s.upsctl.Step(snap.MeasuredTotalW, snap.CBPowerW, pcb)
	}
	if s.hd.enabled() {
		s.hd.upsLastReqW = req
	}
	if s.tm.enabled {
		s.tm.pcbW.Set(pcb)
		s.tm.pbatchW.Set(s.curPBatch)
		s.tm.reserveW.Set(s.allocator.InteractiveReserveW())
		s.tm.shiftW.Set(s.allocator.DeadlineShiftW())
		s.tm.modeNum.Set(float64(s.mode))
		s.tm.upsReqW.Set(req)
	}
	if s.pending != nil {
		// The control period's decision record becomes complete only
		// here, where the UPS request is known.
		env.Decisions.Emit(s.buildDecision(s.pending, req, snap.UPSSoC))
		s.pending = nil
	}
	s.observePlane(env, snap, pcb)
	return req
}

// updateMode advances the supervisor state machine.
func (s *SprintCon) updateMode(snap sim.Snapshot) {
	if s.cfg.NoSprint {
		// Permanent power capping: exactly the degraded CB-only
		// behaviour, with the budget pinned at the rating.
		s.mode = ModeEnded
		return
	}
	if snap.CBNearTrip || snap.CBTripped {
		s.everNearTrip = true
	}
	if snap.UPSDepleted || (s.hd.enabled() && s.hd.upsFailed) {
		// A discharge path that stopped delivering is exactly as gone
		// as an empty battery, whatever the SoC gauge claims.
		s.everDepleted = true
	}
	switch {
	case s.everNearTrip && s.everDepleted:
		s.mode = ModeEnded
		if s.allocator.Started() {
			s.allocator.EndBurst()
		}
	case s.everDepleted:
		s.mode = ModeCBOnly
	case snap.CBNearTrip:
		// Not sticky: once the breaker cools below the near-trip
		// fraction, scheduled overloading may resume.
		s.mode = ModeNoOverload
	default:
		if s.mode == ModeNoOverload {
			s.mode = ModeNormal
		}
	}
}

// upsBlocked reports whether the external budget forbids UPS discharge.
// Without the UPS the allocator's plan (P_cb + planned discharge) is not
// actuatable — the excess would land on the breaker — so every consumer of
// the plan must fall back to the CB-only feedback law while this holds.
func (s *SprintCon) upsBlocked() bool { return s.ext.Active && !s.ext.AllowUPS }

// effectivePCb applies the supervisor's overrides to the scheduled P_cb.
func (s *SprintCon) effectivePCb(now float64) float64 {
	var pcb float64
	switch s.mode {
	case ModeEnded:
		return s.scn.Breaker.RatedPower
	case ModeNoOverload:
		pcb = math.Min(s.allocator.PCb(now), s.scn.Breaker.RatedPower)
	default:
		pcb = s.allocator.PCb(now)
	}
	if s.hd.enabled() && s.hd.degraded {
		// Telemetry watchdog: never overload the breaker on readings
		// the guard cannot vouch for — fail safe to the rated budget
		// until confidence recovers.
		pcb = math.Min(pcb, s.scn.Breaker.RatedPower)
	}
	if now < s.failSafeUntil {
		// Post-restart fail-safe: the breaker's true thermal state is
		// unknown, so hold the rated budget until a full recovery time
		// has passed and the worst-case accumulator has drained.
		pcb = math.Min(pcb, s.scn.Breaker.RatedPower)
	}
	if s.ext.Active {
		// Cluster lease budget: tighten-only, never raise.
		if !s.ext.AllowOverload {
			pcb = math.Min(pcb, s.scn.Breaker.RatedPower)
		}
		if s.ext.PCbCapW > 0 {
			pcb = math.Min(pcb, s.ext.PCbCapW)
		}
	}
	return pcb
}

// enterFailSafe suspends breaker overloads for one full breaker recovery
// time from now: whatever thermal margin the breaker had really consumed
// before the crash, holding the rated budget that long drains it.
func (s *SprintCon) enterFailSafe(env *sim.Env, now float64, reason string) {
	until := now + s.scn.Breaker.RecoveryTime
	if until > s.failSafeUntil {
		s.failSafeUntil = until
	}
	if env != nil && env.Events != nil {
		env.Events.Logf("failsafe", "controller restart without trustworthy checkpoint (%s): CB budget capped at rated %.0f W until t=%.0f s",
			reason, s.scn.Breaker.RatedPower, s.failSafeUntil)
	}
}

// serverPowerControl runs one allocator + controller period.
func (s *SprintCon) serverPowerControl(env *sim.Env, snap sim.Snapshot, pcb, pInterEst float64) {
	now := snap.Now
	pDeadline, urgency := s.deadlinePowerFloor(env, now)
	updated := s.allocator.MaybeUpdatePBatch(now, pDeadline, s.pBatchMin, s.pBatchMax)
	if updated {
		s.tm.allocMoves.Inc()
	}

	pfb := env.Rack.BatchFeedback(snap.MeasuredTotalW)

	// Online model estimation: last period's frequency move and the
	// observed batch power change form one (ΔF, Δp) observation.
	if s.rls != nil {
		if s.havePrev {
			s.rls.Observe(s.lastMoveSum, pfb-s.prevPfb, 1.0)
			if k := s.rls.K(); math.Abs(k-s.kModel)/s.kModel > 0.05 {
				s.kModel = k
				if err := s.rebuildControllers(len(s.cmdFreqs)); err != nil {
					panic(fmt.Sprintf("core: rebuild controllers: %v", err)) // structurally impossible
				}
			}
		}
		s.prevPfb = pfb
		s.havePrev = true
	}

	target := clamp(s.allocator.PBatchAt(now), s.pBatchMin, s.pBatchMax)
	if s.mode == ModeCBOnly || s.mode == ModeEnded || s.upsBlocked() {
		// UPS exhausted: all workloads must fit under P_cb (derated so
		// the breaker's thermal state can decay). The Eq. (5)
		// interactive estimate is biased once interactive cores are
		// throttled below peak, so close the loop on the *measured
		// total* instead: the batch target is the current batch
		// feedback plus however far the total is from the safe budget
		// — any shared estimator bias cancels.
		// The target may sit below the linear-model batch floor: the
		// estimator biases cancel through the feedback, and the MPC's
		// frequency box constraints enforce the physical floor.
		safe := pcb * (1 - s.cfg.CBOnlyMarginFrac)
		target = clamp(pfb+safe-snap.MeasuredTotalW, 0, s.pBatchMax)
		s.allocator.SetReserve(pInterEst)
	}
	if env.Events != nil && env.Events.Enabled() && math.Abs(target-s.curPBatch) > 0.10*math.Max(1, s.curPBatch) {
		env.Events.Logf("pbatch", "batch budget %.0f W → %.0f W (reserve %.0f W, shift %+.0f W)",
			s.curPBatch, target, s.allocator.InteractiveReserveW(), s.allocator.DeadlineShiftW())
	}
	s.curPBatch = target
	rweights := env.Rack.RWeightsInto(s.rwBuf, now)
	// Exclude cores with unresponsive actuators (and dark servers) from
	// the move set: the optimizer must not budget power moves onto
	// actuators that will not execute them.
	var locked []bool
	if s.hd.enabled() {
		locked = s.lockedMask(env)
	}
	var solveStart time.Time
	if s.tm.enabled {
		solveStart = time.Now()
	}
	var next []float64
	var err error
	if s.cfg.Controller == ControllerPI {
		next = s.pi.Step(pfb, target, s.cmdFreqs)
	} else if locked != nil {
		next, err = s.mpc.StepLocked(pfb, target, s.cmdFreqs, rweights, locked)
	} else {
		next, err = s.mpc.Step(pfb, target, s.cmdFreqs, rweights)
	}
	if s.tm.enabled {
		// Wall-clock solve time lives only in this histogram, never in
		// the decision trace, so traces stay deterministic.
		s.tm.solveSeconds.Observe(time.Since(solveStart).Seconds())
		if s.cfg.Controller != ControllerPI && err == nil {
			stats := s.mpc.LastSolve()
			s.tm.qpIterations.Observe(float64(stats.Sweeps))
			if !stats.Converged {
				s.tm.qpUnconverged.Inc()
			}
			cache := s.mpc.FactorCacheStats()
			s.tm.qpCacheHits.Set(float64(cache.Hits))
			s.tm.qpCacheEvictions.Set(float64(cache.Evictions))
		}
	}
	if err != nil {
		return // keep previous actuation; the QP cannot fail on valid state
	}
	if s.hd.enabled() {
		s.applyProbes(next)
	}
	if s.rls != nil {
		s.lastMoveSum = 0
		for i := range next {
			s.lastMoveSum += next[i] - s.cmdFreqs[i]
		}
	}
	if env.Decisions != nil {
		in := &decisionInputs{
			now:            now,
			pfbW:           pfb,
			targetW:        target,
			deadlineFloorW: pDeadline,
			urgency:        urgency,
			headroomUtil:   headroomUtil(pcb, target, s.idleEstW, pInterEst),
			updated:        updated,
			rweights:       rweights,
			freqs:          next,
			qp:             s.cfg.Controller != ControllerPI,
		}
		for _, l := range locked {
			if l {
				in.lockedCount++
			}
		}
		if in.qp {
			stats := s.mpc.LastSolve()
			in.qpSweeps, in.qpConverged = stats.Sweeps, stats.Converged
			in.refTraj = s.mpc.ReferenceTrajectory(pfb, target)
		}
		s.pending = in
	}
	s.checkControlInvariants(env, next, urgency)
	// The controllers reuse their output buffer across periods, so copy
	// rather than alias; aliasing would also zero the RLS move delta.
	copy(s.cmdFreqs, next)
	applied, aerr := env.Rack.SetBatchFreqsInto(next, s.appliedBuf)
	if aerr != nil {
		panic(fmt.Sprintf("core: SetBatchFreqs: %v", aerr)) // structural bug
	}
	if s.hd.enabled() {
		s.observeActuation(env, next, applied)
	}
	s.observeActuationMetrics(env)
	s.observeControlPeriod(next, applied, urgency, s.cfg.Controller != ControllerPI)
}

// deadlinePowerFloor estimates the batch power needed so every incomplete
// job still meets its deadline (paper Section IV-B factor 1), using the
// progress model to translate required rates into frequencies and the
// linear design model to translate frequencies into power. The second
// return is the deadline urgency for the decision trace: the largest
// unclamped per-job required frequency as a fraction of peak (1 means some
// job needs peak from now on; > 1 means a miss is already unavoidable).
func (s *SprintCon) deadlinePowerFloor(env *sim.Env, now float64) (floorW, urgency float64) {
	for _, ref := range env.Rack.BatchCores() {
		j := env.Rack.Job(ref)
		if j == nil || j.Completed() {
			floorW += s.kModel*s.fmin + s.cSharePer
			continue
		}
		req := j.RequiredFreq(now, s.fmax)
		urgency = math.Max(urgency, req/s.fmax)
		f := clamp(req, s.fmin, s.fmax)
		floorW += s.kModel*f + s.cSharePer
	}
	return floorW, urgency
}

// manageInteractive keeps interactive cores at peak frequency, or bids them
// down proportionally when the degraded modes leave too little CB budget.
func (s *SprintCon) manageInteractive(env *sim.Env, pcb, pInterEst float64) {
	if s.mode != ModeCBOnly && s.mode != ModeEnded && !s.upsBlocked() {
		env.Rack.SetInteractiveFreq(s.fmax)
		return
	}
	avail := pcb*(1-s.cfg.CBOnlyMarginFrac) - s.idleEstW - s.pBatchMin
	if pInterEst <= 0 || avail >= pInterEst {
		env.Rack.SetInteractiveFreq(s.fmax)
		return
	}
	scale := clamp(avail/pInterEst, s.cfg.MinInteractiveFreqNorm, 1)
	env.Rack.SetInteractiveFreq(scale * s.fmax)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
