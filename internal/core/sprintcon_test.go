package core

import (
	"math"
	"testing"

	"sprintcon/internal/alloc"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
)

func run(t *testing.T, cfg Config, scn sim.Scenario) *sim.Result {
	t.Helper()
	res, err := sim.Run(scn, New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNameAndModeStrings(t *testing.T) {
	if New(DefaultConfig()).Name() != "SprintCon" {
		t.Fatal("name")
	}
	cfg := DefaultConfig()
	cfg.Controller = ControllerPI
	if New(cfg).Name() != "SprintCon-PI" {
		t.Fatal("PI name")
	}
	for m, want := range map[Mode]string{
		ModeNormal: "normal", ModeNoOverload: "no-overload",
		ModeCBOnly: "cb-only", ModeEnded: "ended",
	} {
		if m.String() != want {
			t.Fatalf("Mode %d string %q", m, m.String())
		}
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode should print")
	}
}

func TestStartRejectsNilEnv(t *testing.T) {
	if err := New(DefaultConfig()).Start(nil, sim.DefaultScenario()); err == nil {
		t.Fatal("nil env should error")
	}
}

func TestZeroConfigFilledWithDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.RefUtil == 0 || p.cfg.ControlPeriodS == 0 || p.cfg.UPSCtl.PeriodS == 0 {
		t.Fatal("zero-value config fields should be defaulted")
	}
}

// The headline safety property: a full 15-minute sprint under SprintCon
// never trips the breaker, never blacks out, and never depletes the UPS.
func TestFifteenMinuteSprintIsSafe(t *testing.T) {
	res := run(t, DefaultConfig(), sim.DefaultScenario())
	if res.CBTrips != 0 {
		t.Fatalf("CB tripped %d times", res.CBTrips)
	}
	if res.OutageS != 0 {
		t.Fatalf("outage of %v s", res.OutageS)
	}
	if res.UPSDoD > 0.5 {
		t.Fatalf("UPS DoD %v too deep", res.UPSDoD)
	}
}

// Paper Fig. 7(a): interactive cores stay at peak frequency for the whole
// sprint.
func TestInteractiveAlwaysAtPeak(t *testing.T) {
	res := run(t, DefaultConfig(), sim.DefaultScenario())
	if res.AvgFreqInter < 0.999 {
		t.Fatalf("interactive avg freq %v, want 1.0", res.AvgFreqInter)
	}
	for i, f := range res.Series.FreqInter {
		if f < 0.999 {
			t.Fatalf("tick %d: interactive freq %v below peak", i, f)
		}
	}
}

// Paper Fig. 8(a): all batch deadlines are met, with completion close to
// the deadline (batch work is not run needlessly fast).
func TestDeadlinesMetAndTimeUsedEfficiently(t *testing.T) {
	res := run(t, DefaultConfig(), sim.DefaultScenario())
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d deadline misses", res.DeadlineMisses)
	}
	if res.JobsCompletedOnce != res.JobsTotal {
		t.Fatalf("only %d/%d jobs completed", res.JobsCompletedOnce, res.JobsTotal)
	}
	tu := res.NormalizedTimeUse()
	if tu > 1 || tu < 0.6 {
		t.Fatalf("normalized time use %v, want in (0.6, 1]", tu)
	}
}

// Paper Fig. 7(a): batch frequency follows the overload schedule — higher
// while the breaker is overloaded than while it recovers.
func TestBatchFrequencyTracksOverloadPhases(t *testing.T) {
	res := run(t, DefaultConfig(), sim.DefaultScenario())
	var ovSum, ovN, recSum, recN float64
	for i, tm := range res.Series.Time {
		if tm < 60 {
			continue // skip the initial transient
		}
		phase := math.Mod(tm, 450)
		f := res.Series.FreqBatch[i]
		// Skip phase edges where the controller is still ramping.
		switch {
		case phase > 30 && phase < 150:
			ovSum += f
			ovN++
		case phase > 180 && phase < 450:
			recSum += f
			recN++
		}
	}
	ov, rec := ovSum/ovN, recSum/recN
	if ov <= rec+0.05 {
		t.Fatalf("batch freq overload %v vs recovery %v: want clear phase modulation", ov, rec)
	}
}

// The CB power stays essentially within the budget (paper Fig. 6(a)).
func TestCBBudgetRespected(t *testing.T) {
	res := run(t, DefaultConfig(), sim.DefaultScenario())
	if res.CBOverBudgetFrac > 0.15 {
		t.Fatalf("CB above budget %v of ticks", res.CBOverBudgetFrac)
	}
	// Brief one-period excursions are bounded by the size of a single
	// interactive demand spike (the controller cannot react faster than
	// its period) and must never persist: the feedforward catches up on
	// the next measurement.
	streak := 0
	for i := range res.Series.Time {
		pcb := res.Series.PCbW[i]
		if math.IsNaN(pcb) || math.IsInf(pcb, 1) {
			continue
		}
		if res.Series.CBW[i] > pcb*1.02 {
			streak++
			if streak > 3 {
				t.Fatalf("tick %d: CB above budget for %d consecutive ticks", i, streak)
			}
		} else {
			streak = 0
		}
		if res.Series.CBW[i] > pcb*1.15 {
			t.Fatalf("tick %d: CB %v far above budget %v", i, res.Series.CBW[i], pcb)
		}
	}
}

// DoD comparison backbone of Fig. 8(b): tighter deadlines demand more
// batch power and hence deeper discharge.
func TestDoDGrowsWithTighterDeadline(t *testing.T) {
	scn := sim.DefaultScenario()
	var dods []float64
	for _, d := range []float64{540, 720, 900} {
		scn.BatchDeadlineS = d
		res := run(t, DefaultConfig(), scn)
		dods = append(dods, res.UPSDoD)
	}
	if !(dods[0] > dods[1] && dods[1] >= dods[2]) {
		t.Fatalf("DoD not decreasing with looser deadline: %v", dods)
	}
}

// Supervisor: an undersized UPS forces CB-only mode; the sprint continues
// without an outage, with all load fitted under P_cb.
func TestUPSDepletionEntersCBOnlyMode(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.UPS.CapacityWh = 10 // tiny battery
	p := New(DefaultConfig())
	res, err := sim.Run(scn, p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode() != ModeCBOnly && p.Mode() != ModeEnded {
		t.Fatalf("mode %v, want cb-only (or ended) after depletion", p.Mode())
	}
	if res.CBTrips != 0 {
		t.Fatalf("CB tripped %d times in degraded mode", res.CBTrips)
	}
	if res.OutageS != 0 {
		t.Fatalf("outage %v s in degraded mode", res.OutageS)
	}
}

// Supervisor: an aggressive allocator override that would overload the CB
// indefinitely is caught by the near-trip guard.
func TestNearTripGuardStopsOverload(t *testing.T) {
	scn := sim.DefaultScenario()
	acfg := alloc.DefaultConfig(scn.Breaker.RatedPower, scn.Breaker.TripBudget())
	acfg.OverloadS = 400 // far beyond the safe 150 s
	acfg.RecoveryS = 50
	cfg := DefaultConfig()
	cfg.AllocOverride = &acfg
	res := run(t, cfg, scn)
	if res.CBTrips != 0 {
		t.Fatalf("near-trip guard failed: %d trips", res.CBTrips)
	}
}

// The event log records the supervisor's degradation story.
func TestModeTransitionsLogged(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.UPS.CapacityWh = 10 // force depletion
	res, err := sim.Run(scn, New(DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	var modeEvents int
	for _, e := range res.Events {
		if e.Kind == "mode" {
			modeEvents++
		}
	}
	if modeEvents == 0 {
		t.Fatal("depletion run should log supervisor mode transitions")
	}
	// P_batch budget moves are logged too.
	var pbatchEvents int
	for _, e := range res.Events {
		if e.Kind == "pbatch" {
			pbatchEvents++
		}
	}
	if pbatchEvents == 0 {
		t.Fatal("budget changes should be logged")
	}
}

// Ablation A1: the PI variant also regulates, but the MPC variant tracks
// the batch budget at least as tightly.
func TestPIVariantRunsAndMPCTracksTighter(t *testing.T) {
	scn := sim.DefaultScenario()
	mpc := run(t, DefaultConfig(), scn)
	cfgPI := DefaultConfig()
	cfgPI.Controller = ControllerPI
	pi := run(t, cfgPI, scn)
	if pi.CBTrips != 0 || pi.OutageS != 0 {
		t.Fatalf("PI variant unsafe: trips=%d outage=%v", pi.CBTrips, pi.OutageS)
	}
	if pi.DeadlineMisses > mpc.DeadlineMisses+8 {
		t.Fatalf("PI misses %d ≫ MPC misses %d", pi.DeadlineMisses, mpc.DeadlineMisses)
	}
}

// Mid-length bursts use a single reduced-degree overload: P_cb constant
// and between rated and rated×1.25.
func TestMidBurstConstantOverload(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.DurationS = 480
	scn.BurstDurationS = 480
	scn.BatchDeadlineS = 450
	scn.Interactive.BurstEndS = 480
	res := run(t, DefaultConfig(), scn)
	if res.CBTrips != 0 {
		t.Fatalf("mid burst tripped %d times", res.CBTrips)
	}
	seen := map[float64]bool{}
	for _, pcb := range res.Series.PCbW {
		if !math.IsNaN(pcb) {
			seen[pcb] = true
		}
	}
	if len(seen) != 1 {
		t.Fatalf("mid-burst P_cb should be constant, saw %d values", len(seen))
	}
	for pcb := range seen {
		if pcb <= 3200 || pcb >= 4000 {
			t.Fatalf("mid-burst P_cb %v outside (rated, rated×1.25)", pcb)
		}
	}
}

// Short bursts are left uncontrolled: no UPS discharge is requested and
// the breaker survives on its own tolerance.
func TestShortBurstUncontrolled(t *testing.T) {
	scn := sim.DefaultScenario()
	scn.DurationS = 45
	scn.BurstDurationS = 45
	scn.BatchDeadlineS = 44
	scn.WorkFillMin, scn.WorkFillMax = 0.05, 0.1
	scn.WorkReferenceS = 45
	res := run(t, DefaultConfig(), scn)
	if res.CBTrips != 0 {
		t.Fatalf("short burst tripped")
	}
	if got := stats.Max(res.Series.UPSW); got > 0 {
		t.Fatalf("short burst should not discharge the UPS, saw %v W", got)
	}
}

// Against the same scenario, SprintCon's budgets are reported for plotting.
func TestTargetsReported(t *testing.T) {
	res := run(t, DefaultConfig(), sim.DefaultScenario())
	for i := range res.Series.Time {
		if math.IsNaN(res.Series.PCbW[i]) || math.IsNaN(res.Series.PBatchW[i]) {
			t.Fatalf("tick %d: targets not reported", i)
		}
	}
}

// Determinism: two runs of the same scenario agree exactly.
func TestRunDeterministic(t *testing.T) {
	a := run(t, DefaultConfig(), sim.DefaultScenario())
	b := run(t, DefaultConfig(), sim.DefaultScenario())
	if a.UPSDoD != b.UPSDoD || a.AvgFreqBatch != b.AvgFreqBatch || a.EnergyTotalWh != b.EnergyTotalWh {
		t.Fatal("simulation is not deterministic")
	}
}
