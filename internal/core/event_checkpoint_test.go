package core

import (
	"math"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
)

// recordStore retains every snapshot, so a test can compare capture
// schedules across engines and pick a resume point.
type recordStore struct {
	saves []checkpoint.Snapshot
}

func (r *recordStore) Save(s *checkpoint.Snapshot) (int, error) {
	r.saves = append(r.saves, *s)
	return 0, nil
}

func (r *recordStore) Latest() (*checkpoint.Snapshot, error) {
	if len(r.saves) == 0 {
		return nil, nil
	}
	last := r.saves[len(r.saves)-1]
	return &last, nil
}

// at returns the first snapshot captured at or after t, or nil.
func (r *recordStore) at(t float64) *checkpoint.Snapshot {
	for i := range r.saves {
		if r.saves[i].SimTimeS >= t {
			sp := r.saves[i]
			return &sp
		}
	}
	return nil
}

// A checkpointing run must be bit-identical between engines, keep opening
// spans (the capture-due barrier ends spans, it does not disable them), and
// capture the same snapshots at the same simulated times: captures execute
// only on real ticks, and the barrier forces a real tick wherever the tick
// engine would have captured.
func TestEventEngineBitIdenticalWithCheckpointing(t *testing.T) {
	scn := quiesceScenario(t, 4*3600)
	cfg := DefaultConfig()
	cfg.NoSprint = true

	tickStore, eventStore := &recordStore{}, &recordStore{}
	tick, err := sim.RunWith(scn, New(cfg), sim.RunOptions{
		Engine:     "tick",
		Checkpoint: &sim.CheckpointOptions{Store: tickStore, EveryS: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	event, err := sim.RunWith(scn, New(cfg), sim.RunOptions{
		Engine:     "event",
		Checkpoint: &sim.CheckpointOptions{Store: eventStore, EveryS: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, tick, event)
	if event.Engine.Spans == 0 {
		t.Fatal("checkpointing disabled spans entirely")
	}
	if len(eventStore.saves) != len(tickStore.saves) {
		t.Fatalf("capture counts differ: event %d, tick %d", len(eventStore.saves), len(tickStore.saves))
	}
	for i := range tickStore.saves {
		a, b := &tickStore.saves[i], &eventStore.saves[i]
		if a.SimTimeS != b.SimTimeS || a.Step != b.Step {
			t.Fatalf("capture %d: tick at t=%g step=%d, event at t=%g step=%d",
				i, a.SimTimeS, a.Step, b.SimTimeS, b.Step)
		}
	}
	t.Logf("spans=%d skipped=%d captures=%d", event.Engine.Spans, event.Engine.TicksSkipped, len(eventStore.saves))
}

// Resuming from a tick-engine snapshot whose capture time falls inside one
// of the event run's quiescent spans must continue bit-identically — on
// both engines, and matching the uninterrupted runs' tails. This is the
// portability guarantee: a snapshot is a plain state vector with no
// event-queue remnant (the queue is rebuilt from scratch at every span
// plan), so either engine can consume a snapshot the other produced.
func TestEventEngineResumeMidSpanBitIdentical(t *testing.T) {
	scn := quiesceScenario(t, 4*3600)
	cfg := DefaultConfig()
	cfg.NoSprint = true

	store := &recordStore{}
	full, err := sim.RunWith(scn, New(cfg), sim.RunOptions{
		Engine:     "tick",
		Checkpoint: &sim.CheckpointOptions{Store: store, EveryS: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	fullEvent, err := sim.RunWith(scn, New(cfg), sim.RunOptions{Engine: "event"})
	if err != nil {
		t.Fatal(err)
	}
	if fullEvent.Engine.Spans == 0 {
		t.Fatal("uninterrupted event run opened no spans")
	}

	// t=3000 sits mid-plateau (second plateau runs 1800–3600 s), deep
	// inside a quiescent span of the uninterrupted event run.
	sp := store.at(3000)
	if sp == nil {
		t.Fatal("no snapshot captured near t=3000")
	}

	tickTail, err := sim.RunWith(scn, New(cfg), sim.RunOptions{Engine: "tick", Resume: sp})
	if err != nil {
		t.Fatal(err)
	}
	eventTail, err := sim.RunWith(scn, New(cfg), sim.RunOptions{Engine: "event", Resume: sp})
	if err != nil {
		t.Fatal(err)
	}

	// The two resumed continuations agree with each other in full.
	assertBitIdentical(t, tickTail, eventTail)
	if eventTail.Engine.Spans == 0 || eventTail.Engine.TicksSkipped == 0 {
		t.Fatalf("resumed event run never re-quiesced: %+v", eventTail.Engine)
	}

	// And with the uninterrupted runs' tails, column by column.
	off := int(sp.Step)
	f, r := &full.Series, &eventTail.Series
	if len(r.Time) != len(f.Time)-off {
		t.Fatalf("resumed series has %d ticks, want %d", len(r.Time), len(f.Time)-off)
	}
	cols := []struct {
		name       string
		full, tail []float64
	}{
		{"Time", f.Time, r.Time},
		{"TotalW", f.TotalW, r.TotalW},
		{"CBW", f.CBW, r.CBW},
		{"UPSW", f.UPSW, r.UPSW},
		{"PCbW", f.PCbW, r.PCbW},
		{"PBatchW", f.PBatchW, r.PBatchW},
		{"FreqInter", f.FreqInter, r.FreqInter},
		{"FreqBatch", f.FreqBatch, r.FreqBatch},
		{"SoC", f.SoC, r.SoC},
		{"Demand", f.Demand, r.Demand},
	}
	for _, c := range cols {
		for i := range c.tail {
			a, b := c.full[off+i], c.tail[i]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s diverged at t=%.0fs: full=%v resumed=%v", c.name, c.tail[0]+float64(i), a, b)
			}
		}
	}
}

// A controller crash with a checkpointed restart must behave identically
// under both engines: the dead window blocks spans, the restore runs on a
// real tick, and the post-restore trajectory re-quiesces.
func TestEventEngineBitIdenticalCrashRestore(t *testing.T) {
	scn := quiesceScenario(t, 3*3600)
	scn.Faults = faults.Plan{Faults: []faults.Fault{
		{Kind: faults.ControllerCrash, OnsetS: 4000, DurationS: 45, Severity: 45},
	}}
	cfg := DefaultConfig()
	cfg.NoSprint = true

	run := func(engine string) *sim.Result {
		res, err := sim.RunWith(scn, New(cfg), sim.RunOptions{
			Engine:     engine,
			Checkpoint: &sim.CheckpointOptions{Store: checkpoint.NewMemStore(), EveryS: 600},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tick, event := run("tick"), run("event")
	assertBitIdentical(t, tick, event)
	if event.Engine.Spans == 0 {
		t.Fatal("crash/restore run opened no spans around the dead window")
	}
}
