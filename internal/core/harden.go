package core

import (
	"fmt"
	"math"

	"sprintcon/internal/control"
	"sprintcon/internal/sim"
)

// HardeningConfig tunes SprintCon's fault defenses (on by default). Each
// defense maps to one class of injected fault (DESIGN.md §8):
//
//   - the measurement guard (stale/NaN/spike detection with
//     last-known-good + model-decay fallback) covers monitor dropout,
//     freeze and bias;
//   - the confidence-driven overload suspension (watchdog) guarantees the
//     supervisor never schedules a breaker overload on telemetry it cannot
//     trust, failing safe to the rated budget within one control period;
//   - the UPS delivery watchdog covers discharge-path failures and lying
//     SoC gauges: a battery that stops delivering what was requested is
//     treated exactly like a depleted one, escalating the paper's
//     degradation ladder;
//   - actuator-effectiveness monitoring covers stuck/lagging DVFS and
//     crashed servers: cores that stop responding are excluded from the
//     MPC move set and probed periodically for recovery.
type HardeningConfig struct {
	// Disabled turns every defense off, restoring the paper-faithful
	// (fault-oblivious) controller. Used by ablations and E18.
	Disabled bool
	// Guard configures the measurement plausibility filter.
	Guard control.MeasurementGuardConfig
	// MinConfidence suspends CB overloading when measurement confidence
	// falls below it; RecoverConfidence re-enables overloading once
	// confidence climbs back above it (hysteresis).
	MinConfidence     float64
	RecoverConfidence float64
	// UPSFailTicks consecutive ticks in which the UPS delivered less than
	// UPSFailFrac of a request exceeding UPSFailMinReqW mark the
	// discharge path as failed (sticky).
	UPSFailTicks   int
	UPSFailFrac    float64
	UPSFailMinReqW float64
	// StuckDetectPeriods control periods in which a commanded move larger
	// than StuckCmdEpsGHz produces an actual move smaller than
	// StuckActEpsGHz lock the core out of the move set. Every
	// StuckProbePeriods periods a locked core receives a probe move to
	// detect actuator recovery.
	StuckDetectPeriods int
	StuckCmdEpsGHz     float64
	StuckActEpsGHz     float64
	StuckProbePeriods  int
}

// DefaultHardeningConfig returns the default-on hardening: telemetry loss
// suspends overloading within two ticks (well inside one 4 s control
// period), a failed UPS path is declared after three betrayed requests, and
// a stuck actuator is excluded after two unresponsive control periods.
func DefaultHardeningConfig() HardeningConfig {
	return HardeningConfig{
		Guard:              control.DefaultMeasurementGuardConfig(),
		MinConfidence:      0.35,
		RecoverConfidence:  0.95,
		UPSFailTicks:       3,
		UPSFailFrac:        0.25,
		UPSFailMinReqW:     50,
		StuckDetectPeriods: 2,
		StuckCmdEpsGHz:     0.09,
		StuckActEpsGHz:     0.04,
		StuckProbePeriods:  8,
	}
}

// withDefaults fills zero-valued fields from DefaultHardeningConfig, so a
// partially-specified config composes with the defaults like the rest of
// Config does.
func (h HardeningConfig) withDefaults() HardeningConfig {
	d := DefaultHardeningConfig()
	if h.Guard == (control.MeasurementGuardConfig{}) {
		h.Guard = d.Guard
	}
	if h.MinConfidence == 0 {
		h.MinConfidence = d.MinConfidence
	}
	if h.RecoverConfidence == 0 {
		h.RecoverConfidence = d.RecoverConfidence
	}
	if h.UPSFailTicks == 0 {
		h.UPSFailTicks = d.UPSFailTicks
	}
	if h.UPSFailFrac == 0 {
		h.UPSFailFrac = d.UPSFailFrac
	}
	if h.UPSFailMinReqW == 0 {
		h.UPSFailMinReqW = d.UPSFailMinReqW
	}
	if h.StuckDetectPeriods == 0 {
		h.StuckDetectPeriods = d.StuckDetectPeriods
	}
	if h.StuckCmdEpsGHz == 0 {
		h.StuckCmdEpsGHz = d.StuckCmdEpsGHz
	}
	if h.StuckActEpsGHz == 0 {
		h.StuckActEpsGHz = d.StuckActEpsGHz
	}
	if h.StuckProbePeriods == 0 {
		h.StuckProbePeriods = d.StuckProbePeriods
	}
	return h
}

// hardenState is the per-sprint mutable state of the defenses.
type hardenState struct {
	guard    *control.MeasurementGuard
	degraded bool // overload suspended on low measurement confidence

	upsLastReqW  float64
	upsFailTicks int
	upsFailed    bool // sticky: the discharge path is gone

	lastApplied []float64 // per batch core, last frequency the rack applied
	stuckCount  []int
	locked      []bool
	probeLeft   []int
	maskBuf     []bool // reused lockedMask output (zero-alloc tick contract)
}

// enabled reports whether the defenses are active this sprint.
func (h *hardenState) enabled() bool { return h != nil && h.guard != nil }

// startHardening initializes the defense state for a fresh sprint.
func (s *SprintCon) startHardening(env *sim.Env) error {
	if s.cfg.Harden.Disabled {
		s.hd = nil
		return nil
	}
	hc := s.cfg.Harden
	if s.scn.Rack.MonitorNoiseStd == 0 {
		// A noise-free monitor legitimately repeats readings; exact-
		// repeat freeze detection would false-positive immediately.
		hc.Guard.FreezeTicks = 0
	}
	g, err := control.NewMeasurementGuard(hc.Guard)
	if err != nil {
		return fmt.Errorf("core: measurement guard: %w", err)
	}
	n := len(env.Rack.BatchCores())
	s.hd = &hardenState{
		guard:       g,
		lastApplied: append([]float64(nil), env.Rack.BatchFreqs()...),
		stuckCount:  make([]int, n),
		locked:      make([]bool, n),
		probeLeft:   make([]int, n),
	}
	return nil
}

// modelTotalW is the design model's estimate of the rack's total power from
// the commanded batch frequencies and the interactive estimator — the decay
// target the measurement guard falls back to during telemetry loss.
func (s *SprintCon) modelTotalW(pInterEstW float64) float64 {
	p := s.idleEstW + pInterEstW
	for _, f := range s.cmdFreqs {
		p += s.kModel*f + s.cSharePer
	}
	return p
}

// guardMeasurement filters the rack power reading, maintains confidence and
// drives the overload-suspension watchdog. It returns the value every
// downstream consumer must use instead of the raw reading.
func (s *SprintCon) guardMeasurement(env *sim.Env, rawW, pInterEstW float64) float64 {
	model := s.modelTotalW(pInterEstW)
	filtered, ok := s.hd.guard.Step(rawW, model)
	if !ok {
		s.tm.guardRejected.Inc()
	}
	s.ob.sensorGapW = math.Abs(filtered - model)
	conf := s.hd.guard.Confidence()
	s.tm.guardConf.Set(conf)
	s.allocator.SetConfidence(conf)
	switch {
	case !s.hd.degraded && conf < s.cfg.Harden.MinConfidence:
		s.hd.degraded = true
		if env.Events != nil {
			env.Events.Logf("watchdog", "measurement confidence %.2f < %.2f: overload suspended, serving last-known-good %.0f W", conf, s.cfg.Harden.MinConfidence, filtered)
		}
	case s.hd.degraded && conf >= s.cfg.Harden.RecoverConfidence:
		s.hd.degraded = false
		if env.Events != nil {
			env.Events.Logf("watchdog", "measurement confidence %.2f restored: overload re-enabled", conf)
		}
	}
	return filtered
}

// watchUPS compares last tick's delivered battery power against what was
// requested. A path that repeatedly delivers a small fraction of a
// substantial request has failed, whatever the SoC gauge claims; the
// supervisor then treats the UPS as depleted (sticky), which removes every
// control decision that depends on battery cover.
func (s *SprintCon) watchUPS(env *sim.Env, snap sim.Snapshot) {
	if s.hd.upsFailed {
		return
	}
	req := s.hd.upsLastReqW
	if req > s.cfg.Harden.UPSFailMinReqW && snap.UPSPowerW < s.cfg.Harden.UPSFailFrac*req {
		s.hd.upsFailTicks++
		if s.hd.upsFailTicks >= s.cfg.Harden.UPSFailTicks {
			s.hd.upsFailed = true
			if env.Events != nil {
				env.Events.Logf("watchdog", "UPS delivered %.0f W of a %.0f W request for %d ticks: discharge path treated as failed", snap.UPSPowerW, req, s.hd.upsFailTicks)
			}
		}
	} else {
		s.hd.upsFailTicks = 0
	}
}

// lockedMask returns the per-batch-core exclusion mask for this control
// period: cores locked by stuck detection plus cores on servers that are
// known-offline right now (heartbeat loss is instantly visible, unlike a
// silently stuck actuator). It also injects probe moves for locked cores
// into next, so actuator recovery is eventually observed.
func (s *SprintCon) lockedMask(env *sim.Env) []bool {
	if len(s.hd.maskBuf) != len(s.hd.locked) {
		s.hd.maskBuf = make([]bool, len(s.hd.locked))
	}
	mask := s.hd.maskBuf
	for i, ref := range env.Rack.BatchCores() {
		mask[i] = s.hd.locked[i] || env.Rack.ServerOffline(ref.Server)
	}
	return mask
}

// observeActuation runs stuck/recovery detection over one control period's
// commanded and applied frequencies, and plants probe moves for the next
// period where due.
func (s *SprintCon) observeActuation(env *sim.Env, next, applied []float64) {
	hc := s.cfg.Harden
	for i, ref := range env.Rack.BatchCores() {
		if env.Rack.ServerOffline(ref.Server) {
			// A dark server's actuators are unreachable by definition;
			// don't let it pollute the stuck statistics.
			s.hd.stuckCount[i] = 0
			s.hd.lastApplied[i] = applied[i]
			continue
		}
		cmdMove := math.Abs(next[i] - s.hd.lastApplied[i])
		actMove := math.Abs(applied[i] - s.hd.lastApplied[i])
		switch {
		case cmdMove > hc.StuckCmdEpsGHz && actMove < hc.StuckActEpsGHz:
			s.hd.stuckCount[i]++
			if !s.hd.locked[i] && s.hd.stuckCount[i] >= hc.StuckDetectPeriods {
				s.hd.locked[i] = true
				s.hd.probeLeft[i] = hc.StuckProbePeriods
				if env.Events != nil {
					env.Events.Logf("watchdog", "batch core %s unresponsive for %d periods (commanded %.2f GHz, stayed %.2f GHz): excluded from MPC move set", ref, s.hd.stuckCount[i], next[i], applied[i])
				}
			}
		case cmdMove > hc.StuckCmdEpsGHz:
			s.hd.stuckCount[i] = 0
			if s.hd.locked[i] {
				s.hd.locked[i] = false
				if env.Events != nil {
					env.Events.Logf("watchdog", "batch core %s actuator recovered: rejoining MPC move set", ref)
				}
			}
		}
		s.hd.lastApplied[i] = applied[i]
	}
}

// applyProbes overrides the commanded frequencies of locked cores: hold the
// last applied value, except on probe periods where a deliberate nudge
// tests whether the actuator answers again.
func (s *SprintCon) applyProbes(next []float64) {
	for i := range next {
		if !s.hd.locked[i] {
			continue
		}
		s.hd.probeLeft[i]--
		if s.hd.probeLeft[i] <= 0 {
			s.hd.probeLeft[i] = s.cfg.Harden.StuckProbePeriods
			nudge := 2 * s.cfg.Harden.StuckCmdEpsGHz
			if s.hd.lastApplied[i] > (s.fmin+s.fmax)/2 {
				nudge = -nudge
			}
			next[i] = clamp(s.hd.lastApplied[i]+nudge, s.fmin, s.fmax)
		} else {
			next[i] = s.hd.lastApplied[i]
		}
	}
}
