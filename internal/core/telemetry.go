package core

import (
	"math"

	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// coreMetrics holds SprintCon's registered instruments, resolved once in
// Start so the control path performs no registry lookups. The zero value
// (telemetry disabled) yields nil instruments whose methods no-op.
type coreMetrics struct {
	enabled bool
	// Server power controller.
	solveSeconds     *telemetry.Histogram // wall clock; never in the trace
	qpIterations     *telemetry.Histogram
	qpUnconverged    *telemetry.Counter
	qpCacheHits      *telemetry.Gauge
	qpCacheEvictions *telemetry.Gauge
	// Measurement guard / watchdogs.
	guardRejected *telemetry.Counter
	guardConf     *telemetry.Gauge
	lockedCores   *telemetry.Gauge
	// Allocator and supervisor.
	allocMoves *telemetry.Counter
	pcbW       *telemetry.Gauge
	pbatchW    *telemetry.Gauge
	reserveW   *telemetry.Gauge
	shiftW     *telemetry.Gauge
	modeNum    *telemetry.Gauge
	// UPS power controller.
	upsReqW *telemetry.Gauge
	// Safety-invariant supervisor.
	invBreaches *telemetry.Gauge
}

// qpSweepBuckets cover the solver's effort range: 0 means the Cholesky
// shortcut, the default sweep cap is 500.
func qpSweepBuckets() []float64 {
	return []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500}
}

func newCoreMetrics(r *telemetry.Registry) coreMetrics {
	if r == nil {
		return coreMetrics{}
	}
	return coreMetrics{
		enabled: true,
		solveSeconds: r.Histogram("mpc_solve_seconds",
			"wall-clock time of one server power controller step (excluded from golden comparisons)",
			telemetry.DefTimeBuckets()),
		qpIterations: r.Histogram("qp_iterations",
			"QP coordinate-descent sweeps per MPC solve (0 = unconstrained shortcut)",
			qpSweepBuckets()),
		qpUnconverged: r.Counter("qp_unconverged_total",
			"MPC solves that hit the sweep cap before meeting tolerance"),
		qpCacheHits: r.Gauge("qp_cache_hits",
			"cumulative QP Cholesky factor cache hits (free-block refactorizations skipped)"),
		qpCacheEvictions: r.Gauge("qp_cache_evictions",
			"cumulative QP Cholesky factor cache LRU evictions"),
		guardRejected: r.Counter("guard_rejected_samples_total",
			"power readings the measurement guard rejected"),
		guardConf: r.Gauge("guard_confidence",
			"measurement guard confidence in [0, 1]"),
		lockedCores: r.Gauge("watchdog_locked_cores",
			"batch cores excluded from the MPC move set (stuck or offline)"),
		allocMoves: r.Counter("alloc_budget_moves_total",
			"P_batch adaptation periods executed by the allocator"),
		pcbW:     r.Gauge("pcb_target_w", "effective circuit-breaker power budget"),
		pbatchW:  r.Gauge("pbatch_target_w", "batch power budget"),
		reserveW: r.Gauge("alloc_reserve_w", "interactive power reserved out of the CB budget"),
		shiftW:   r.Gauge("alloc_shift_w", "deadline shift on top of the CB affordance"),
		modeNum: r.Gauge("supervisor_mode",
			"supervisor mode (0 normal, 1 no-overload, 2 cb-only, 3 ended)"),
		upsReqW: r.Gauge("ups_request_w", "UPS discharge request for the coming tick"),
		invBreaches: r.Gauge("invariant_breaches",
			"cumulative safety-invariant breaches (CB margin + SoC floor + frequency bounds)"),
	}
}

// decisionInputs carries everything serverPowerControl saw and chose this
// control period into the trace record built at the end of Tick (the UPS
// request is only known there).
type decisionInputs struct {
	now            float64
	pfbW           float64
	targetW        float64
	deadlineFloorW float64
	urgency        float64 // max per-job required frequency / fmax
	headroomUtil   float64
	updated        bool
	refTraj        []float64
	rweights       []float64
	freqs          []float64
	lockedCount    int
	qp             bool // MPC ran (false for the PI ablation)
	qpSweeps       int
	qpConverged    bool
}

// buildDecision assembles the per-control-period trace record. It copies
// every slice: the trace must not alias live controller state.
func (s *SprintCon) buildDecision(in *decisionInputs, upsReqW, socNow float64) *telemetry.Decision {
	d := &telemetry.Decision{
		T:      in.now,
		Policy: s.Name(),
		Mode:   s.mode.String(),
		Alloc: &telemetry.AllocDecision{
			PCbW:            telemetry.F(s.curPCb),
			PBatchW:         telemetry.F(in.targetW),
			ReserveW:        s.allocator.InteractiveReserveW(),
			ShiftW:          s.allocator.DeadlineShiftW(),
			DeadlineFloorW:  in.deadlineFloorW,
			HeadroomUtil:    in.headroomUtil,
			DeadlineUrgency: in.urgency,
			Updated:         in.updated,
		},
		MPC: &telemetry.MPCDecision{
			PfbW:        in.pfbW,
			TargetW:     in.targetW,
			RefTrajW:    append([]float64(nil), in.refTraj...),
			RWeights:    append([]float64(nil), in.rweights...),
			FreqsGHz:    append([]float64(nil), in.freqs...),
			QPSweeps:    in.qpSweeps,
			QPConverged: in.qpConverged,
			LockedCores: in.lockedCount,
			KWPerGHz:    s.kModel,
		},
		UPS: &telemetry.UPSDecision{RequestW: upsReqW, SoC: socNow},
	}
	for _, f := range in.freqs {
		if f <= s.fmin+1e-9 {
			d.MPC.ClampedLo++
		} else if f >= s.fmax-1e-9 {
			d.MPC.ClampedHi++
		}
	}
	if s.hd.enabled() {
		d.Guard = &telemetry.GuardVerdict{
			Confidence:    s.hd.guard.Confidence(),
			Degraded:      s.hd.degraded,
			RejectedTotal: s.tm.guardRejected.Value(),
			UPSFailed:     s.hd.upsFailed,
		}
	}
	return d
}

// headroomUtil is the allocator's factor-2 input as recorded in the trace:
// interactive power over the CB headroom left beside the batch budget and
// idle share. ≥ 1 means interactive demand saturates its reserve;
// uncontrolled (+Inf) CB budgets report 0.
func headroomUtil(pcb, pbatch, idleW, pInterEst float64) float64 {
	if math.IsInf(pcb, 1) {
		return 0
	}
	head := pcb - pbatch - idleW
	if head < 1 {
		head = 1
	}
	return pInterEst / head
}

// observeActuationMetrics refreshes the watchdog gauge after a control
// period (no-op when telemetry is disabled).
func (s *SprintCon) observeActuationMetrics(env *sim.Env) {
	if !s.tm.enabled || !s.hd.enabled() {
		return
	}
	var locked int
	for i, ref := range env.Rack.BatchCores() {
		if s.hd.locked[i] || env.Rack.ServerOffline(ref.Server) {
			locked++
		}
	}
	s.tm.lockedCores.Set(float64(locked))
}
