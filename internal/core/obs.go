package core

import (
	"math"

	"sprintcon/internal/obs"
	"sprintcon/internal/sim"
)

// obsHook is the controller's connection to the rack's observability plane
// (nil plane = disabled, zero cost beyond one nil check per tick). The
// control-period fields are captured where serverPowerControl already has
// them and consumed at the end of Tick, so the plane sees one coherent
// observation per tick.
type obsHook struct {
	plane      *obs.Plane
	capacityWh float64 // battery capacity, for the gauge-consistency check
	sensorGapW float64 // |guarded reading − model estimate| this tick
	actErrGHz  float64 // worst |commanded − applied| at the last control period
	urgency    float64 // deadline urgency at the last control period
	sweeps     int     // QP sweeps of the last solve
	ranControl bool    // a control period completed this tick
}

// observeControlPeriod captures the per-period signals after actuation.
func (s *SprintCon) observeControlPeriod(next, applied []float64, urgency float64, qpRan bool) {
	if s.ob.plane == nil {
		return
	}
	var worst float64
	for i := range next {
		if e := math.Abs(next[i] - applied[i]); e > worst {
			worst = e
		}
	}
	s.ob.actErrGHz = worst
	s.ob.urgency = urgency
	s.ob.sweeps = 0
	if qpRan {
		s.ob.sweeps = s.mpc.LastSolve().Sweeps
	}
	s.ob.ranControl = true
}

// observePlane feeds the tick's controller view to the plane: the rollup
// samples, the anomaly detectors, and — on control periods — the
// control-period span causally linked to the live lease.
func (s *SprintCon) observePlane(env *sim.Env, snap sim.Snapshot, pcb float64) {
	p := s.ob.plane
	if p == nil {
		return
	}
	sig := obs.TickSignals{
		TripMargin:    1 - snap.CBThermalFraction,
		SoC:           snap.UPSSoC,
		UPSDeliveredW: snap.UPSPowerW,
		UPSCapacityWh: s.ob.capacityWh,
		Overloading:   pcb > s.scn.Breaker.RatedPower*(1+1e-9),
		Confidence:    1,
		SensorGapW:    s.ob.sensorGapW,
		ActErrGHz:     s.ob.actErrGHz,
		Urgency:       s.ob.urgency,
	}
	if s.hd.enabled() {
		sig.Confidence = s.hd.guard.Confidence()
		sig.UPSFailed = s.hd.upsFailed
		for _, l := range s.lockedMask(env) {
			if l {
				sig.LockedCores++
			}
		}
	}
	p.ObserveTick(snap.Now, sig)
	if s.ob.ranControl {
		p.ObserveControl(snap.Now, s.ob.sweeps, s.mode.String())
		s.ob.ranControl = false
	}
}
