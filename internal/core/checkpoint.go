package core

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/sim"
)

// This file implements sim.Checkpointable for SprintCon: the export half
// runs every checkpoint capture, the restore half runs once per controller
// restart. Restore never actuates the rack — the plant kept running while
// the controller was down, and the first Tick after restore re-issues every
// command from the restored state.

func finiteF(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ExportCheckpoint captures the controller's complete mutable state at
// simulation time now. The returned value owns its slices (deep copies), so
// it stays valid however long the store retains it.
func (s *SprintCon) ExportCheckpoint(now float64) checkpoint.ControllerState {
	st := checkpoint.ControllerState{
		CapturedAtS:    now,
		Mode:           int(s.mode),
		EverNearTrip:   s.everNearTrip,
		EverDepleted:   s.everDepleted,
		FailSafeUntilS: s.failSafeUntil,
		LastCtlS:       s.lastCtl,
		CurPCbW:        s.curPCb,
		CurPBatchW:     s.curPBatch,
		CmdFreqsGHz:    append([]float64(nil), s.cmdFreqs...),
		KModel:         s.kModel,
		PrevPfbW:       s.prevPfb,
		LastMoveSum:    s.lastMoveSum,
		HavePrev:       s.havePrev,
		PIIntegral:     s.pi.Integral(),
		UPSTrimW:       s.upsctl.Trim(),
		Alloc:          s.allocator.ExportState(),
		MPCWarm:        s.mpc.ExportWarmState(),
		InvCBMargin:    s.inv.cbMargin,
		InvSoCFloor:    s.inv.socFloor,
		InvFreqBounds:  s.inv.freqBounds,
		InvDeadline:    s.inv.deadline,
	}
	if s.rls != nil {
		st.HasRLS = true
		st.RLS = s.rls.ExportState()
	}
	if s.hd.enabled() {
		st.HasHarden = true
		st.Harden = checkpoint.HardenState{
			Guard:       s.hd.guard.ExportState(),
			Degraded:    s.hd.degraded,
			UPSLastReqW: s.hd.upsLastReqW,
			UPSFailTick: s.hd.upsFailTicks,
			UPSFailed:   s.hd.upsFailed,
			LastApplied: append([]float64(nil), s.hd.lastApplied...),
			StuckCount:  append([]int(nil), s.hd.stuckCount...),
			Locked:      append([]bool(nil), s.hd.locked...),
			ProbeLeft:   append([]int(nil), s.hd.probeLeft...),
		}
	}
	return st
}

// RestoreCheckpoint rebuilds the controller for env/scn and overlays the
// snapshot state, resuming control at simulation time now. A nil state is
// the fail-safe restart (checkpoint missing, stale or corrupt): the
// controller comes up with the worst-case-safe assumptions — rated CB
// budget, overloads suspended for a full breaker recovery time — and
// re-estimates from live telemetry. Every snapshot field is range-checked
// against the live configuration before anything is installed, so no
// snapshot, however corrupt, can restore an unsafe overload-enabled state.
func (s *SprintCon) RestoreCheckpoint(env *sim.Env, scn sim.Scenario, st *checkpoint.ControllerState, now float64) error {
	if err := s.initCommon(env, scn); err != nil {
		return err
	}

	if st == nil {
		// Fail-safe restart. The burst schedule is re-announced for
		// whatever sprint time remains, but the fail-safe hold keeps the
		// CB budget at the rating until the breaker's worst-case thermal
		// state has drained.
		remain := math.Max(0, scn.BurstDurationS-now)
		s.allocator.StartBurst(now, remain, s.idleEstW, s.interactiveEstimate(env, now))
		s.curPCb = s.allocator.PCb(now)
		s.curPBatch = clamp(s.allocator.PBatchAt(now), s.pBatchMin, s.pBatchMax)
		s.enterFailSafe(env, now, "state re-estimated from live telemetry")
		return nil
	}

	if err := s.validateControllerState(st, now); err != nil {
		return err
	}

	s.mode = Mode(st.Mode)
	s.everNearTrip = st.EverNearTrip
	s.everDepleted = st.EverDepleted
	s.failSafeUntil = st.FailSafeUntilS
	s.lastCtl = st.LastCtlS
	s.curPCb = st.CurPCbW
	s.inv.cbMargin = st.InvCBMargin
	s.inv.socFloor = st.InvSoCFloor
	s.inv.freqBounds = st.InvFreqBounds
	s.inv.deadline = st.InvDeadline

	// Model slope first: the batch power bounds, the MPC and the PI are
	// all derived from it.
	s.kModel = st.KModel
	if err := s.rebuildControllers(len(s.cmdFreqs)); err != nil {
		return err
	}
	// The batch budget's reachable range is [0, pBatchMax]: the degraded
	// CB-only mode legitimately targets below the linear-model floor.
	s.curPBatch = clamp(st.CurPBatchW, 0, s.pBatchMax)
	for i, f := range st.CmdFreqsGHz {
		s.cmdFreqs[i] = clamp(f, s.fmin, s.fmax)
	}
	s.prevPfb = st.PrevPfbW
	s.lastMoveSum = st.LastMoveSum
	s.havePrev = st.HavePrev
	s.pi.RestoreIntegral(st.PIIntegral)
	s.upsctl.RestoreTrim(st.UPSTrimW)
	s.mpc.RestoreWarmState(st.MPCWarm)
	if err := s.allocator.RestoreState(st.Alloc); err != nil {
		return err
	}
	if s.rls != nil {
		if err := s.rls.RestoreState(st.RLS); err != nil {
			return err
		}
	}
	if s.hd.enabled() {
		h := &st.Harden
		if err := s.hd.guard.RestoreState(h.Guard); err != nil {
			return err
		}
		s.hd.degraded = h.Degraded
		s.hd.upsLastReqW = h.UPSLastReqW
		s.hd.upsFailTicks = h.UPSFailTick
		s.hd.upsFailed = h.UPSFailed
		copy(s.hd.lastApplied, h.LastApplied)
		copy(s.hd.stuckCount, h.StuckCount)
		copy(s.hd.locked, h.Locked)
		copy(s.hd.probeLeft, h.ProbeLeft)
	}

	// Clock skew: a snapshot captured after "now" describes a future the
	// plant has not reached (rejected above); one captured long before it
	// describes a plant that evolved unobserved. The burst schedule stays
	// anchored to its absolute start time either way — rebasing it would
	// re-enter an overload phase whose thermal budget the breaker already
	// spent — but a stale restore additionally holds the fail-safe budget
	// until the unobserved window's worst case has drained.
	if skew := now - st.CapturedAtS; skew > s.cfg.ControlPeriodS+1e-9 {
		s.enterFailSafe(env, now, fmt.Sprintf("checkpoint %.0f s stale", skew))
	}
	return nil
}

// validateControllerState range-checks a snapshot against the freshly
// initialized controller (so n, fmin/fmax and the configuration flags are
// the live ones).
func (s *SprintCon) validateControllerState(st *checkpoint.ControllerState, now float64) error {
	n := len(s.cmdFreqs)
	switch {
	case !finiteF(st.CapturedAtS) || st.CapturedAtS < 0:
		return fmt.Errorf("core: snapshot capture time %g invalid", st.CapturedAtS)
	case st.CapturedAtS > now+1e-9:
		return fmt.Errorf("core: snapshot captured at t=%g s, after the restore time t=%g s", st.CapturedAtS, now)
	case st.Mode < int(ModeNormal) || st.Mode > int(ModeEnded):
		return fmt.Errorf("core: snapshot mode %d unknown", st.Mode)
	case math.IsNaN(st.FailSafeUntilS) || math.IsInf(st.FailSafeUntilS, 1):
		return fmt.Errorf("core: snapshot fail-safe deadline %g invalid", st.FailSafeUntilS)
	case math.IsNaN(st.LastCtlS) || math.IsInf(st.LastCtlS, 1):
		return fmt.Errorf("core: snapshot control timestamp %g invalid", st.LastCtlS)
	case st.LastCtlS > now+1e-9:
		return fmt.Errorf("core: snapshot control timestamp %g s is in the future", st.LastCtlS)
	case math.IsNaN(st.CurPCbW) || math.IsInf(st.CurPCbW, -1) || st.CurPCbW < 0:
		return fmt.Errorf("core: snapshot CB budget %g W invalid", st.CurPCbW)
	case !finiteF(st.CurPBatchW) || st.CurPBatchW < 0:
		return fmt.Errorf("core: snapshot batch budget %g W invalid", st.CurPBatchW)
	case len(st.CmdFreqsGHz) != n:
		return fmt.Errorf("core: snapshot has %d commanded frequencies, rack has %d batch cores", len(st.CmdFreqsGHz), n)
	case !finiteF(st.KModel) || st.KModel <= 0:
		return fmt.Errorf("core: snapshot model slope %g invalid", st.KModel)
	case !finiteF(st.PrevPfbW) || !finiteF(st.LastMoveSum):
		return fmt.Errorf("core: snapshot estimator state not finite")
	case st.InvCBMargin < 0 || st.InvSoCFloor < 0 || st.InvFreqBounds < 0 || st.InvDeadline < 0:
		return fmt.Errorf("core: snapshot invariant counters negative")
	case st.HasRLS != (s.rls != nil):
		return fmt.Errorf("core: snapshot online-estimation state (%v) disagrees with the configuration (%v)", st.HasRLS, s.rls != nil)
	case st.HasHarden != s.hd.enabled():
		return fmt.Errorf("core: snapshot hardening state (%v) disagrees with the configuration (%v)", st.HasHarden, s.hd.enabled())
	}
	const eps = 1e-6
	for i, f := range st.CmdFreqsGHz {
		if !finiteF(f) || f < s.fmin-eps || f > s.fmax+eps {
			return fmt.Errorf("core: snapshot commanded frequency %d = %g GHz outside [%g, %g]", i, f, s.fmin, s.fmax)
		}
	}
	if st.HasHarden {
		h := &st.Harden
		if len(h.LastApplied) != n || len(h.StuckCount) != n || len(h.Locked) != n || len(h.ProbeLeft) != n {
			return errors.New("core: snapshot hardening arrays sized for a different rack")
		}
		if !finiteF(h.UPSLastReqW) || h.UPSLastReqW < 0 || h.UPSFailTick < 0 {
			return errors.New("core: snapshot UPS watchdog state invalid")
		}
		for i := 0; i < n; i++ {
			if !finiteF(h.LastApplied[i]) || h.StuckCount[i] < 0 || h.ProbeLeft[i] < 0 {
				return fmt.Errorf("core: snapshot actuator watchdog state for core %d invalid", i)
			}
		}
	}
	return nil
}
