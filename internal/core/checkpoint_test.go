package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
)

// crashPlan returns a fault plan with controller crashes at the given
// onsets, each with the given restart delay.
func crashPlan(delayS float64, onsets ...float64) faults.Plan {
	var p faults.Plan
	for _, t := range onsets {
		p.Faults = append(p.Faults, faults.Fault{
			Kind:      faults.ControllerCrash,
			OnsetS:    t,
			DurationS: 1,
			Severity:  delayS,
		})
	}
	return p
}

// eventTrace reduces an event log to (T, Kind, Msg) strings, dropping the
// kinds that only exist because of the injected crash (the fault bracket
// and the crash/restart pair). Seq numbers are excluded on purpose: the
// crash run logs extra events, which shifts every later Seq.
func eventTrace(events []sim.Event, dropKinds ...string) []string {
	drop := map[string]bool{}
	for _, k := range dropKinds {
		drop[k] = true
	}
	var out []string
	for _, e := range events {
		if drop[e.Kind] {
			continue
		}
		out = append(out, fmt.Sprintf("%.3f|%s|%s", e.T, e.Kind, e.Msg))
	}
	return out
}

func sameSeries(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		// Bit-identical: NaN==NaN, and no tolerance.
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			t.Fatalf("%s[%d] (t=%.0fs): %v vs %v", name, i, float64(i), a[i], b[i])
		}
	}
}

// TestCrashRestoreBitIdentical is the tentpole acceptance test: a run whose
// controller crashes and restores from a fresh checkpoint must produce a
// bit-identical time series and event log to the uninterrupted run. Two
// crashes — one on a control-period boundary, one mid-period — with zero
// restart delay, so the restored snapshot is exactly one tick old (zero
// clock skew).
func TestCrashRestoreBitIdentical(t *testing.T) {
	base := sim.DefaultScenario()
	refRes, err := sim.Run(base, New(DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}

	scn := base
	scn.Faults = crashPlan(0, 200, 541)
	if err := scn.Validate(); err != nil {
		t.Fatal(err)
	}
	store := checkpoint.NewMemStore()
	crashRes, err := sim.RunWith(scn, New(DefaultConfig()), sim.RunOptions{
		Checkpoint: &sim.CheckpointOptions{Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}

	restarts := 0
	for _, e := range crashRes.Events {
		if e.Kind == "ctl-restart" {
			restarts++
			if !strings.Contains(e.Msg, "restored from checkpoint") {
				t.Errorf("restart was not from checkpoint: %v", e)
			}
		}
	}
	if restarts != 2 {
		t.Fatalf("expected 2 controller restarts, saw %d", restarts)
	}

	s := &refRes.Series
	c := &crashRes.Series
	sameSeries(t, "Time", s.Time, c.Time)
	sameSeries(t, "TotalW", s.TotalW, c.TotalW)
	sameSeries(t, "CBW", s.CBW, c.CBW)
	sameSeries(t, "UPSW", s.UPSW, c.UPSW)
	sameSeries(t, "PCbW", s.PCbW, c.PCbW)
	sameSeries(t, "PBatchW", s.PBatchW, c.PBatchW)
	sameSeries(t, "FreqInter", s.FreqInter, c.FreqInter)
	sameSeries(t, "FreqBatch", s.FreqBatch, c.FreqBatch)
	sameSeries(t, "SoC", s.SoC, c.SoC)

	if refRes.CBTrips != crashRes.CBTrips || refRes.OutageS != crashRes.OutageS ||
		refRes.UPSDoD != crashRes.UPSDoD ||
		refRes.AvgFreqBatch != crashRes.AvgFreqBatch ||
		refRes.AvgFreqInter != crashRes.AvgFreqInter ||
		refRes.BatchWorkDoneS != crashRes.BatchWorkDoneS ||
		refRes.DeadlineMisses != crashRes.DeadlineMisses {
		t.Errorf("headline metrics diverged:\nref   %+v\ncrash %+v", summary(refRes), summary(crashRes))
	}

	drop := []string{"fault-onset", "fault-clear", "ctl-crash", "ctl-restart"}
	refEv := eventTrace(refRes.Events)
	crashEv := eventTrace(crashRes.Events, drop...)
	if len(refEv) != len(crashEv) {
		t.Fatalf("event counts diverged: %d vs %d\nref: %v\ncrash: %v", len(refEv), len(crashEv), refEv, crashEv)
	}
	for i := range refEv {
		if refEv[i] != crashEv[i] {
			t.Errorf("event %d diverged:\nref   %s\ncrash %s", i, refEv[i], crashEv[i])
		}
	}
}

func summary(r *sim.Result) string {
	return fmt.Sprintf("trips=%d outage=%.0f dod=%.6f favg=%.6f/%.6f work=%.3f misses=%d",
		r.CBTrips, r.OutageS, r.UPSDoD, r.AvgFreqInter, r.AvgFreqBatch, r.BatchWorkDoneS, r.DeadlineMisses)
}

// nullStore persists nothing: Save succeeds, Latest always reports absence
// (a checkpoint volume that silently loses writes).
type nullStore struct{}

func (nullStore) Save(*checkpoint.Snapshot) (int, error) { return 0, nil }
func (nullStore) Latest() (*checkpoint.Snapshot, error)  { return nil, nil }

// corruptStore simulates an unreadable checkpoint: saves succeed but every
// read fails (what FileStore returns for a checksum mismatch).
type corruptStore struct{}

func (corruptStore) Save(*checkpoint.Snapshot) (int, error) { return 0, nil }
func (corruptStore) Latest() (*checkpoint.Snapshot, error) {
	return nil, fmt.Errorf("checksum mismatch (got deadbeef, want cafef00d)")
}

// TestCrashFailSafeMatrix drives controller crashes whose checkpoint is
// absent, lost, corrupt or stale — combined with an E18-style fault storm —
// and requires the fail-safe restart to keep the run trip- and outage-free,
// with the degradation visible in the event log.
func TestCrashFailSafeMatrix(t *testing.T) {
	storm := []faults.Fault{
		{Kind: faults.MonitorBias, OnsetS: 100, DurationS: 300, Severity: 0.3},
		{Kind: faults.ServerCrash, OnsetS: 250, DurationS: 200, Server: 2},
		{Kind: faults.ActuatorLag, OnsetS: 400, DurationS: 150, Severity: 0.4, Server: faults.AllServers},
	}
	cases := []struct {
		name string
		opts *sim.CheckpointOptions
	}{
		{"absent-no-store", nil},
		{"absent-lost-writes", &sim.CheckpointOptions{Store: nullStore{}}},
		{"corrupt", &sim.CheckpointOptions{Store: corruptStore{}}},
		{"stale", &sim.CheckpointOptions{Store: checkpoint.NewMemStore(), MaxAgeS: 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			scn := sim.DefaultScenario()
			scn.Faults = crashPlan(5, 300) // dead 5 s: stale case exceeds MaxAgeS=2
			scn.Faults.Faults = append(scn.Faults.Faults, storm...)
			if err := scn.Validate(); err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunWith(scn, New(DefaultConfig()), sim.RunOptions{Checkpoint: tc.opts})
			if err != nil {
				t.Fatal(err)
			}
			if res.CBTrips != 0 || res.OutageS != 0 {
				t.Errorf("fail-safe restart tripped the breaker: trips=%d outage=%.0fs", res.CBTrips, res.OutageS)
			}
			var sawFailSafe, sawHold bool
			for _, e := range res.Events {
				if e.Kind == "ctl-restart" && strings.Contains(e.Msg, "fail-safe") {
					sawFailSafe = true
				}
				if e.Kind == "failsafe" {
					sawHold = true
				}
			}
			if !sawFailSafe {
				t.Errorf("no fail-safe restart event; events: %v", eventTrace(res.Events))
			}
			if !sawHold {
				t.Errorf("no fail-safe budget-hold event; events: %v", eventTrace(res.Events))
			}
		})
	}
}

// pickStore retains the first snapshot at or after a target simulation time
// (test support: MemStore only keeps the latest).
type pickStore struct {
	at float64
	sp *checkpoint.Snapshot
}

func (p *pickStore) Save(s *checkpoint.Snapshot) (int, error) {
	if p.sp == nil && s.SimTimeS >= p.at {
		cp := *s
		p.sp = &cp
	}
	return 0, nil
}
func (p *pickStore) Latest() (*checkpoint.Snapshot, error) { return p.sp, nil }

// midRunSnapshot runs the default scenario with checkpointing and returns
// the snapshot captured at simulation time atS (mid-overload for small atS).
func midRunSnapshot(t *testing.T, atS float64) (*checkpoint.Snapshot, sim.Scenario) {
	t.Helper()
	scn := sim.DefaultScenario()
	store := &pickStore{at: atS}
	if _, err := sim.RunWith(scn, New(DefaultConfig()), sim.RunOptions{
		Checkpoint: &sim.CheckpointOptions{Store: store},
	}); err != nil {
		t.Fatal(err)
	}
	if store.sp == nil || !store.sp.HasController {
		t.Fatalf("no controller snapshot captured at t=%.0fs", atS)
	}
	return store.sp, scn
}

// TestRestoreClockSkew pins the restore-time clock-skew contract
// (DESIGN.md §11): a stale snapshot restores with the burst schedule still
// anchored to its absolute start — never rebased, which would re-grant
// overload budget the breaker already spent — and holds the fail-safe
// budget cap for a full breaker recovery time. A snapshot from the future
// is rejected outright.
func TestRestoreClockSkew(t *testing.T) {
	sp, scn := midRunSnapshot(t, 120)
	st := sp.Controller

	newEnv := func() *sim.Env {
		env, err := sim.BuildEnv(scn)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}

	t.Run("fresh", func(t *testing.T) {
		env := newEnv()
		s := New(DefaultConfig())
		if err := s.RestoreCheckpoint(env, scn, &st, st.CapturedAtS); err != nil {
			t.Fatal(err)
		}
		if s.failSafeUntil != st.FailSafeUntilS {
			t.Errorf("zero-skew restore entered fail-safe: until=%g, snapshot had %g", s.failSafeUntil, st.FailSafeUntilS)
		}
	})

	t.Run("stale", func(t *testing.T) {
		env := newEnv()
		s := New(DefaultConfig())
		now := st.CapturedAtS + 200
		if err := s.RestoreCheckpoint(env, scn, &st, now); err != nil {
			t.Fatal(err)
		}
		// The unobserved window forces the fail-safe hold...
		wantUntil := now + scn.Breaker.RecoveryTime
		if s.failSafeUntil < wantUntil-1e-9 {
			t.Errorf("stale restore fail-safe hold until %g, want >= %g", s.failSafeUntil, wantUntil)
		}
		if got := s.effectivePCb(now); got > scn.Breaker.RatedPower+1e-9 {
			t.Errorf("stale restore grants CB budget %g W above the %g W rating", got, scn.Breaker.RatedPower)
		}
		// ...but the burst schedule stays absolute: overload/recovery time
		// already spent is not re-counted from the restore instant.
		if got := s.allocator.ExportState().BurstStartS; got != st.Alloc.BurstStartS {
			t.Errorf("restore rebased the burst start to %g (snapshot had %g): recovery time would be double-counted", got, st.Alloc.BurstStartS)
		}
	})

	t.Run("future", func(t *testing.T) {
		env := newEnv()
		s := New(DefaultConfig())
		if err := s.RestoreCheckpoint(env, scn, &st, st.CapturedAtS-10); err == nil {
			t.Fatal("restore accepted a snapshot captured in the future")
		}
	})
}

// TestRestoreRejectsCorruptState mutates individual snapshot fields out of
// range and requires RestoreCheckpoint to reject each one — no corrupt
// snapshot may restore into an overload-enabled controller.
func TestRestoreRejectsCorruptState(t *testing.T) {
	sp, scn := midRunSnapshot(t, 120)
	base := sp.Controller
	now := base.CapturedAtS

	mutations := []struct {
		name string
		mut  func(st *checkpoint.ControllerState)
	}{
		{"capture-time-nan", func(st *checkpoint.ControllerState) { st.CapturedAtS = math.NaN() }},
		{"capture-time-negative", func(st *checkpoint.ControllerState) { st.CapturedAtS = -1 }},
		{"mode-unknown", func(st *checkpoint.ControllerState) { st.Mode = 7 }},
		{"failsafe-nan", func(st *checkpoint.ControllerState) { st.FailSafeUntilS = math.NaN() }},
		{"lastctl-future", func(st *checkpoint.ControllerState) { st.LastCtlS = now + 1000 }},
		{"pcb-negative", func(st *checkpoint.ControllerState) { st.CurPCbW = -5 }},
		{"pbatch-inf", func(st *checkpoint.ControllerState) { st.CurPBatchW = math.Inf(1) }},
		{"freqs-truncated", func(st *checkpoint.ControllerState) { st.CmdFreqsGHz = st.CmdFreqsGHz[:1] }},
		{"freq-out-of-range", func(st *checkpoint.ControllerState) {
			st.CmdFreqsGHz = append([]float64(nil), st.CmdFreqsGHz...)
			st.CmdFreqsGHz[0] = 100
		}},
		{"kmodel-negative", func(st *checkpoint.ControllerState) { st.KModel = -1 }},
		{"estimator-nan", func(st *checkpoint.ControllerState) { st.PrevPfbW = math.NaN() }},
		{"invariant-counter-negative", func(st *checkpoint.ControllerState) { st.InvCBMargin = -3 }},
		{"rls-flag-flipped", func(st *checkpoint.ControllerState) { st.HasRLS = !st.HasRLS }},
		{"harden-flag-flipped", func(st *checkpoint.ControllerState) { st.HasHarden = !st.HasHarden }},
	}
	if base.HasHarden {
		mutations = append(mutations,
			struct {
				name string
				mut  func(st *checkpoint.ControllerState)
			}{"harden-arrays-resized", func(st *checkpoint.ControllerState) {
				st.Harden.LastApplied = st.Harden.LastApplied[:1]
			}},
		)
	}
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			env, err := sim.BuildEnv(scn)
			if err != nil {
				t.Fatal(err)
			}
			st := base
			m.mut(&st)
			if err := New(DefaultConfig()).RestoreCheckpoint(env, scn, &st, now); err == nil {
				t.Fatal("corrupt snapshot restored without error")
			}
		})
	}
}

// TestCrashDuringDegradedModeRestores pins that a crash landing while the
// supervisor is already degraded restores the degraded mode rather than
// resetting to normal (which would re-enable overloads the supervisor had
// revoked). The sticky flags travel through the snapshot.
func TestCrashRestorePreservesSupervisorFlags(t *testing.T) {
	sp, scn := midRunSnapshot(t, 120)
	st := sp.Controller
	st.Mode = int(ModeNoOverload)
	st.EverNearTrip = true

	env, err := sim.BuildEnv(scn)
	if err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	if err := s.RestoreCheckpoint(env, scn, &st, st.CapturedAtS); err != nil {
		t.Fatal(err)
	}
	if s.mode != ModeNoOverload || !s.everNearTrip {
		t.Errorf("restore dropped supervisor degradation: mode=%v everNearTrip=%v", s.mode, s.everNearTrip)
	}
	if got := s.effectivePCb(st.CapturedAtS); got > scn.Breaker.RatedPower+1e-9 {
		t.Errorf("degraded restore grants CB budget %g W above the %g W rating", got, scn.Breaker.RatedPower)
	}
}
