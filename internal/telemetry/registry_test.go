package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks_total", "ticks")
	c.Inc()
	c.Add(2.5)
	c.Add(-1)         // ignored: counters are monotone
	c.Add(math.NaN()) // ignored
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("soc", "state of charge")
	g.Set(0.75)
	g.Set(0.5)
	if got := g.Value(); got != 0.5 {
		t.Fatalf("gauge = %g, want 0.5", got)
	}
	// Re-registration returns the same instrument.
	if r.Counter("ticks_total", "ticks") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %g, want 556.5", h.Sum())
	}
	p, ok := r.Snapshot().Get("lat")
	if !ok {
		t.Fatal("lat missing from snapshot")
	}
	wantCum := []uint64{2, 3, 4, 5} // le=1, le=10, le=100, le=+Inf
	if len(p.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(p.Buckets), len(wantCum))
	}
	for i, b := range p.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cum = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(p.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %g, want +Inf", p.Buckets[3].UpperBound)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// None of these may panic.
	c.Inc()
	c.Add(1)
	g.Set(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var st *RunStatus
	st.Set(StatusSnapshot{NowS: 1})
	if st.Get() != (StatusSnapshot{}) {
		t.Fatal("nil status must read zero")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cb_trips_total", "breaker trips").Add(2)
	r.Gauge("ups_soc", "state of charge").Set(0.25)
	h := r.Histogram("mpc_solve_seconds", "solve wall time", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# HELP cb_trips_total breaker trips",
		"# TYPE cb_trips_total counter",
		"cb_trips_total 2",
		"# TYPE ups_soc gauge",
		"ups_soc 0.25",
		"# TYPE mpc_solve_seconds histogram",
		`mpc_solve_seconds_bucket{le="0.001"} 1`,
		`mpc_solve_seconds_bucket{le="0.1"} 2`,
		`mpc_solve_seconds_bucket{le="+Inf"} 2`,
		"mpc_solve_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line must parse as "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("h", "", LinearBuckets(0, 10, 5))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 50))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %g, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("n", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "", DefTimeBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-5)
	}
}
