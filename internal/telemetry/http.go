package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Endpoint is one extra observability route mounted on the Handler mux —
// the hook richer planes (the cluster health document, active spans) use to
// publish without telemetry importing them. Doc must marshal to JSON; it is
// called per request, so it should return a point-in-time snapshot.
type Endpoint struct {
	Path string
	Doc  func() any
}

// Handler returns the observability endpoint mux:
//
//	/metrics        — Prometheus text exposition of the registry
//	/status         — live run-status JSON (StatusSnapshot)
//	/debug/pprof/…  — the standard Go profiling endpoints
//	extra           — any caller-supplied JSON endpoints (e.g. /cluster)
//
// reg and status may be nil; the endpoints then serve empty documents.
func Handler(reg *Registry, status *RunStatus, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(status.Get())
	})
	for _, ep := range extra {
		doc := ep.Doc
		mux.HandleFunc(ep.Path, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			_ = enc.Encode(doc())
		})
	}
	// The pprof handlers are wired explicitly: importing net/http/pprof
	// only registers them on http.DefaultServeMux, which this mux
	// deliberately is not (a simulation should not inherit whatever else
	// the process registered globally).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":9090"; ":0" picks a free port) and serves h in
// a background goroutine. It returns the bound address and a stop function
// that closes the listener and waits briefly for in-flight requests.
func Serve(addr string, h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() error {
		err := srv.Close()
		select {
		case <-done:
		case <-time.After(time.Second):
		}
		return err
	}
	return ln.Addr().String(), stop, nil
}
