package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// F is a float64 that survives JSON: encoding/json rejects NaN and the
// infinities, but decision traces legitimately contain both — an
// uncontrolled CB budget is +Inf and the SGCT baselines keep no batch
// budget (NaN). NaN marshals as null; the infinities as "+Inf"/"-Inf"
// strings. UnmarshalJSON inverts all three, so traces round-trip.
type F float64

// MarshalJSON implements json.Marshaler.
func (f F) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte("null"), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "null":
		*f = F(math.NaN())
		return nil
	case `"+Inf"`:
		*f = F(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = F(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = F(v)
	return nil
}

// Decision is one structured decision-trace record: everything a control
// period's actuation depended on, captured at the moment of the decision.
// Policies emit one record per control period (the SGCT baselines, whose
// control period is the simulation tick, emit one per tick); the sink
// renders each as one JSON line.
//
// Every field is deterministic for a seeded scenario: wall-clock timings
// are deliberately absent (they live in registry histograms), so two
// identical runs produce byte-identical traces and a golden file can pin
// the schema.
type Decision struct {
	// Schema is the decision-trace schema version. The sink stamps it with
	// DecisionSchemaVersion on emit, so replay diffing can refuse to
	// compare traces written under different schemas instead of silently
	// zero-filling fields the other side never wrote.
	Schema int `json:"schema_version"`
	// T is the simulation time of the decision in seconds.
	T float64 `json:"t"`
	// Policy is the deciding policy's name.
	Policy string `json:"policy"`
	// Mode is the supervisor mode (or schedule phase for baselines).
	Mode string `json:"mode,omitempty"`
	// Alloc, MPC, Guard and UPS are per-loop sections; a policy omits the
	// loops it does not run.
	Alloc *AllocDecision `json:"alloc,omitempty"`
	MPC   *MPCDecision   `json:"mpc,omitempty"`
	Guard *GuardVerdict  `json:"guard,omitempty"`
	UPS   *UPSDecision   `json:"ups,omitempty"`
}

// AllocDecision captures the power load allocator's inputs and outputs.
type AllocDecision struct {
	// PCbW and PBatchW are the chosen circuit-breaker and batch budgets
	// (+Inf for an uncontrolled CB, null for policies without a batch
	// budget — see F).
	PCbW    F `json:"pcb_w"`
	PBatchW F `json:"pbatch_w"`
	// ReserveW is the interactive power reserved out of the CB budget and
	// ShiftW the deadline shift added on top of the CB affordance.
	ReserveW float64 `json:"reserve_w"`
	ShiftW   float64 `json:"shift_w"`
	// DeadlineFloorW is the batch power the progress model says is needed
	// so every job still meets its deadline (allocator input, factor 1).
	DeadlineFloorW float64 `json:"deadline_floor_w"`
	// HeadroomUtil is the interactive power estimate over the CB headroom
	// left after the batch budget and idle share (allocator input,
	// factor 2): ≥ 1 means interactive demand saturates its reserve.
	HeadroomUtil float64 `json:"headroom_util"`
	// DeadlineUrgency is the largest per-job required frequency as a
	// fraction of peak: 1 means some job needs peak frequency from now to
	// its deadline, > 1 means a miss is already unavoidable at peak.
	DeadlineUrgency float64 `json:"deadline_urgency"`
	// Updated reports whether this period ran the P_batch adaptation.
	Updated bool `json:"updated"`
}

// MPCDecision captures one server-power-controller solve.
type MPCDecision struct {
	// PfbW is the Eq. (6) batch power feedback; TargetW the budget the
	// controller tracked.
	PfbW    float64 `json:"pfb_w"`
	TargetW float64 `json:"target_w"`
	// RefTrajW is the Eq. (7) reference trajectory over the prediction
	// horizon (absolute watts).
	RefTrajW []float64 `json:"ref_traj_w,omitempty"`
	// RWeights are the per-core urgency weights R_{i,j} fed to the cost.
	RWeights []float64 `json:"r_weights,omitempty"`
	// FreqsGHz are the commanded per-core frequencies after the solve.
	FreqsGHz []float64 `json:"freqs_ghz,omitempty"`
	// ClampedLo/ClampedHi count cores commanded at the frequency floor and
	// ceiling (active box constraints).
	ClampedLo int `json:"clamped_lo"`
	ClampedHi int `json:"clamped_hi"`
	// QPSweeps and QPConverged report the solver's effort and verdict
	// (0 sweeps means the unconstrained Cholesky shortcut was feasible).
	QPSweeps    int  `json:"qp_sweeps"`
	QPConverged bool `json:"qp_converged"`
	// LockedCores counts cores excluded from the move set (stuck actuator
	// or offline server).
	LockedCores int `json:"locked_cores"`
	// KWPerGHz is the model slope in use (changes under online estimation).
	KWPerGHz float64 `json:"k_w_per_ghz"`
}

// GuardVerdict captures the measurement guard and watchdog state.
type GuardVerdict struct {
	// Confidence is the guard's measurement confidence in [0, 1].
	Confidence float64 `json:"confidence"`
	// Degraded reports overload suspension by the telemetry watchdog.
	Degraded bool `json:"degraded"`
	// RejectedTotal is the cumulative count of rejected samples.
	RejectedTotal float64 `json:"rejected_total"`
	// UPSFailed reports the UPS delivery watchdog's sticky verdict.
	UPSFailed bool `json:"ups_failed"`
}

// UPSDecision captures the UPS power controller's output.
type UPSDecision struct {
	// RequestW is the discharge request for the coming tick.
	RequestW float64 `json:"request_w"`
	// SoC is the battery state of charge the decision saw.
	SoC float64 `json:"soc"`
}

// DecisionSink serializes decisions as JSONL to an io.Writer. All methods
// are safe on a nil receiver, so policies emit unconditionally. The sink
// is safe for concurrent use; the first write error is retained and
// subsequent emissions are dropped.
type DecisionSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int64
	err error
}

// NewDecisionSink returns a sink writing one JSON line per decision to w.
func NewDecisionSink(w io.Writer) *DecisionSink {
	return &DecisionSink{enc: json.NewEncoder(w)}
}

// DecisionSchemaVersion is the current decision-record schema. Version 2
// added the schema_version field itself; traces predating it decode with
// Schema 0.
const DecisionSchemaVersion = 2

// Emit writes one decision (no-op on a nil sink or after a write error).
// The record's Schema field is stamped with DecisionSchemaVersion, so every
// policy's trace carries the version without each call site knowing it.
func (s *DecisionSink) Emit(d *Decision) {
	if s == nil || d == nil {
		return
	}
	d.Schema = DecisionSchemaVersion
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(d); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Count returns the number of decisions written (0 on nil).
func (s *DecisionSink) Count() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any (nil on a nil sink).
func (s *DecisionSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadDecisions parses a JSONL decision trace (the -trace-jsonl output)
// back into records — the -replay path re-drives a run from a checkpoint
// and diffs its decisions against a recorded trace. Errors name the
// offending record.
func ReadDecisions(r io.Reader) ([]Decision, error) {
	dec := json.NewDecoder(r)
	var out []Decision
	for {
		var d Decision
		err := dec.Decode(&d)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: decision trace record %d: %w", len(out)+1, err)
		}
		out = append(out, d)
	}
}
