package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// SpanSchemaVersion is the current span-record schema. Bump it whenever a
// field is added, removed or re-interpreted, so trace diffing across
// versions fails loudly instead of silently comparing different shapes.
const SpanSchemaVersion = 1

// Span is one causal trace record: a lease lifecycle step or a control
// period, timestamped from simulation time so two identical seeded runs
// produce byte-identical traces (the same property decision traces have).
//
// Causality is carried by Parent: a rack's lease-accept span points at the
// coordinator's grant span (the grant's span ID crosses the transport inside
// the lease), a degraded span points at the grant whose expiry opened it,
// and every control-period span points at the lease span the rack's budget
// came from. IDs are deterministic — namespaced per emitting source and
// sequential within it — never random.
type Span struct {
	// Schema is the span schema version (SpanSchemaVersion at write time).
	Schema int `json:"schema"`
	// ID is the span's unique identifier: (source+1)<<40 | seq, where
	// source is the emitting rack (or -1 for the coordinator) and seq a
	// per-source monotone counter.
	ID uint64 `json:"id"`
	// Parent is the causing span's ID (0 for a root span).
	Parent uint64 `json:"parent,omitempty"`
	// Kind names the lifecycle step (lease-grant, lease-accept, degraded,
	// control-period, ...).
	Kind string `json:"kind"`
	// Rack is the rack the span concerns (-1 for coordinator-global spans).
	Rack int `json:"rack"`
	// StartS and EndS bound the span in simulation seconds. EndS is NaN
	// (JSON null) while the span is open; instantaneous events close at
	// their start time.
	StartS float64 `json:"start_s"`
	EndS   F       `json:"end_s"`
	// LeaseVersion is the lease version the step concerns (0 when the step
	// is not lease-scoped).
	LeaseVersion uint64 `json:"lease_version,omitempty"`
	// Attr is an optional numeric attribute (QP sweeps for control-period
	// spans, backoff seconds for probes).
	Attr float64 `json:"attr,omitempty"`
	// Detail is an optional static annotation (e.g. "repack", the
	// supervisor mode of a control period).
	Detail string `json:"detail,omitempty"`
}

// Open reports whether the span has not ended (EndS is NaN).
func (s Span) Open() bool { return math.IsNaN(float64(s.EndS)) }

// WriteSpans renders spans as JSONL, one record per line, in slice order.
func WriteSpans(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return fmt.Errorf("telemetry: span record %d: %w", i+1, err)
		}
	}
	return nil
}

// ReadSpans parses a JSONL span trace (the -trace-spans output) back into
// records. Errors name the offending record.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		err := dec.Decode(&s)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: span trace record %d: %w", len(out)+1, err)
		}
		out = append(out, s)
	}
}

// FormatSpanTree renders spans as an indented causal forest: roots in
// (StartS, ID) order, children under their parents. Spans whose parent is
// absent from the slice (e.g. a filtered trace) print as roots.
func FormatSpanTree(w io.Writer, spans []Span) {
	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	children := make(map[uint64][]int, len(spans))
	var roots []int
	for i, s := range spans {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			sa, sb := spans[idx[a]], spans[idx[b]]
			if sa.StartS != sb.StartS {
				return sa.StartS < sb.StartS
			}
			return sa.ID < sb.ID
		})
	}
	order(roots)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := spans[i]
		end := "open"
		if !s.Open() {
			end = fmt.Sprintf("%gs", float64(s.EndS))
		}
		line := fmt.Sprintf("%s%s rack=%d [%gs → %s]", strings.Repeat("  ", depth), s.Kind, s.Rack, s.StartS, end)
		if s.LeaseVersion != 0 {
			line += fmt.Sprintf(" v%d", s.LeaseVersion)
		}
		if s.Detail != "" {
			line += " " + s.Detail
		}
		fmt.Fprintln(w, line)
		kids := children[s.ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
