// Package telemetry is the observability layer of the reproduction: a
// metrics registry the engine and every policy report into, a structured
// decision-trace sink that captures *why* each control period chose the
// actuation it did, a live run-status snapshot, and exporters (Prometheus
// text format, JSON status, pprof) that make a running simulation
// inspectable from outside the process.
//
// The paper's core claim is controllability; a controller an operator
// cannot observe is not controllable in any useful sense. Every loop —
// the power load allocator, the MPC server power controller, the UPS
// power controller, the measurement guard and the watchdogs — therefore
// registers its internal state here, and the same registry serves the
// SGCT baselines so policies are compared through identical telemetry.
//
// Design constraints, in priority order:
//
//   - Disabled telemetry must cost nothing measurable: every method is
//     safe on a nil receiver and a nil *Registry hands out nil
//     instruments, so un-instrumented runs stay on the legacy hot path
//     (one nil check per call site).
//   - The hot path must not allocate: counters, gauges and histograms
//     are fixed structs updated with atomics; registration (the only
//     allocating operation) happens once at policy start.
//   - Recorded values must be deterministic where the underlying
//     quantities are deterministic: wall-clock timings go exclusively
//     into histograms that golden comparisons exclude, never into the
//     decision trace.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 metric. All methods are
// safe on a nil receiver (no-ops), so call sites need no telemetry-enabled
// branching.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative or NaN deltas are ignored
// (counters are monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || math.IsNaN(v) || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are set
// at registration and never change, so Observe is a binary search plus two
// atomic adds — no allocation, no locks.
type Histogram struct {
	upper  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Counter // reuses the CAS float accumulation
}

// Observe records one sample (no-op on nil; NaN samples are dropped).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(math.Max(v, 0))
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples, with negatives clamped to 0
// (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Mean returns Sum/Count, or 0 before the first sample.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// DefTimeBuckets are the default wall-clock-seconds buckets, spanning the
// sub-microsecond QP solves of a small rack up to pathological multi-second
// stalls.
func DefTimeBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
}

// LinearBuckets returns count buckets starting at start, spaced by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// MetricKind discriminates the registry's instrument types.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// metric is one registered instrument.
type metric struct {
	name, help string
	kind       MetricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// Registry holds a run's instruments. A nil *Registry is a valid disabled
// registry: registration returns nil instruments whose methods no-op.
// Registration takes a mutex; the instruments themselves are lock-free, so
// concurrent runs may share a registry only if their metric names differ
// (per-run registries are the normal pattern — see sim.RunOptions).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order, for stable rendering
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter registers (or fetches) the named counter. Returns nil on a nil
// registry; panics if the name is already registered as a different kind
// (a programming error, like prometheus client_golang).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, KindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or fetches) the named gauge. Returns nil on a nil
// registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, KindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram registers (or fetches) the named histogram with the given
// ascending bucket upper bounds (a +Inf bucket is implicit). Returns nil on
// a nil registry. Re-registration returns the existing histogram; its
// original buckets win.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, KindHistogram)
	if m.hist == nil {
		upper := append([]float64(nil), buckets...)
		sort.Float64s(upper)
		m.hist = &Histogram{
			upper:  upper,
			counts: make([]atomic.Uint64, len(upper)+1),
		}
	}
	return m.hist
}

// lookup finds or creates the named metric, enforcing kind consistency.
func (r *Registry) lookup(name, help string, kind MetricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// BucketCount is one cumulative histogram bucket of a snapshot.
type BucketCount struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64  // cumulative count ≤ UpperBound
}

// Point is one metric's state in a snapshot.
type Point struct {
	Name string
	Help string
	Kind MetricKind
	// Value holds the counter or gauge value; for histograms it is the
	// sample sum.
	Value float64
	// Count and Buckets are histogram-only.
	Count   uint64
	Buckets []BucketCount
}

// Snapshot is a point-in-time copy of a registry, in registration order.
type Snapshot []Point

// Snapshot captures every instrument's current value (nil registry yields a
// nil snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, 0, len(r.order))
	for _, name := range r.order {
		m := r.metrics[name]
		p := Point{Name: m.name, Help: m.help, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			p.Value = m.counter.Value()
		case KindGauge:
			p.Value = m.gauge.Value()
		case KindHistogram:
			p.Value = m.hist.Sum()
			p.Count = m.hist.Count()
			var cum uint64
			for i, ub := range m.hist.upper {
				cum += m.hist.counts[i].Load()
				p.Buckets = append(p.Buckets, BucketCount{UpperBound: ub, Count: cum})
			}
			cum += m.hist.counts[len(m.hist.upper)].Load()
			p.Buckets = append(p.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
		}
		out = append(out, p)
	}
	return out
}

// Value returns the named point's value and whether it exists.
func (s Snapshot) Value(name string) (float64, bool) {
	for _, p := range s {
		if p.Name == name {
			return p.Value, true
		}
	}
	return 0, false
}

// Get returns the named point and whether it exists.
func (s Snapshot) Get(name string) (Point, bool) {
	for _, p := range s {
		if p.Name == name {
			return p, true
		}
	}
	return Point{}, false
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). A nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, p := range r.Snapshot() {
		if p.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(p.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
			return err
		}
		switch p.Kind {
		case KindHistogram:
			for _, b := range p.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", p.Name, formatFloat(p.Value), p.Name, p.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", p.Name, formatFloat(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects (shortest exact
// decimal; NaN/Inf spelled out). This is the exporter's own sanitization
// layer: gauges are routinely Set straight from plant state (lease age is
// NaN before the first grant, an uncontrolled CB budget is +Inf), and those
// values must reach the wire as the exposition format's literal spellings —
// "NaN", "+Inf", "-Inf" — never as Go's "%f" renderings of them.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP annotation per the text exposition format:
// backslashes and newlines are the only characters with escape syntax in
// HELP text, and an unescaped newline would split the annotation into a
// garbage line no parser accepts.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
