package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWritePrometheusSanitizesNonFinite is the regression test for the
// exporter's sanitization layer: gauges are Set straight from plant state
// (lease age is NaN before the first grant, an uncontrolled CB budget is
// +Inf), and those values must reach the wire as the exposition format's
// literal spellings — never as Go's %v renderings, and never as a line a
// scraper rejects.
func TestWritePrometheusSanitizesNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("lease_age_seconds", "age of the live lease").Set(math.NaN())
	r.Gauge("cb_budget_watts", "effective CB budget").Set(math.Inf(1))
	r.Gauge("margin_floor", "worst-case margin").Set(math.Inf(-1))
	r.Gauge("plain", "finite control").Set(1.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.String()
	for _, want := range []string{
		"lease_age_seconds NaN\n",
		"cb_budget_watts +Inf\n",
		"margin_floor -Inf\n",
		"plain 1.5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// Go's default float renderings must not leak through.
	for _, bad := range []string{"Infinity", "+Inf\u0000", " nan", "NAN"} {
		if strings.Contains(got, bad) {
			t.Errorf("exposition contains unsanitized rendering %q:\n%s", bad, got)
		}
	}
	// Every sample line is exactly "name value": a parser sees no blank or
	// truncated lines.
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if line == "" {
			t.Errorf("blank line in exposition:\n%s", got)
		}
		if !strings.HasPrefix(line, "# ") && len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestWritePrometheusEscapesHelp pins HELP escaping: backslashes and
// newlines are the only characters with escape syntax in HELP text, and an
// unescaped newline would split the annotation into a garbage line.
func TestWritePrometheusEscapesHelp(t *testing.T) {
	r := NewRegistry()
	r.Gauge("weird", "line one\nline two with C:\\path").Set(0)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.String()
	want := `# HELP weird line one\nline two with C:\\path` + "\n"
	if !strings.Contains(got, want) {
		t.Fatalf("HELP not escaped:\nwant %q in\n%s", want, got)
	}
	// The raw newline must not have survived into the HELP line.
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "line two") {
			t.Fatalf("HELP newline leaked as its own line:\n%s", got)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.NaN():      "NaN",
		math.Inf(1):     "+Inf",
		math.Inf(-1):    "-Inf",
		0:               "0",
		1.5:             "1.5",
		-2.25:           "-2.25",
		1e21:            "1e+21",
		0.0001220703125: "0.0001220703125", // exact binary fraction stays exact
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
