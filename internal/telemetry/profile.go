package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into the file at path and returns a
// stop function that ends profiling and closes the file. It backs the
// -cpuprofile flags of cmd/sprintsim and cmd/experiments.
func StartCPUProfile(path string) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("telemetry: cpu profile close: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live objects,
// not garbage awaiting collection) and writes a heap profile to path. It
// backs the -memprofile flags of cmd/sprintsim and cmd/experiments.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("telemetry: heap profile: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("telemetry: heap profile close: %w", cerr)
	}
	return nil
}
