package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func spanFixture() []Span {
	return []Span{
		{Schema: SpanSchemaVersion, ID: 1, Kind: "lease-grant", Rack: 0, StartS: 4, EndS: 4, LeaseVersion: 1},
		{Schema: SpanSchemaVersion, ID: 1<<40 | 1, Parent: 1, Kind: "lease-accept", Rack: 0, StartS: 4, EndS: 4, LeaseVersion: 1},
		{Schema: SpanSchemaVersion, ID: 1<<40 | 2, Parent: 1<<40 | 1, Kind: "control-period", Rack: 0, StartS: 8, EndS: 8, Attr: 3, Detail: "normal"},
		// An open degraded span: EndS is NaN, serialized as JSON null.
		{Schema: SpanSchemaVersion, ID: 1<<40 | 3, Parent: 1<<40 | 1, Kind: "degraded", Rack: 0, StartS: 21, EndS: F(math.NaN()), LeaseVersion: 1},
	}
}

func TestSpanRoundTrip(t *testing.T) {
	in := spanFixture()
	var buf bytes.Buffer
	if err := WriteSpans(&buf, in); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	if strings.Count(buf.String(), "\n") != len(in) {
		t.Fatalf("expected one JSONL line per span, got:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"end_s":null`) {
		t.Fatalf("open span's NaN EndS not serialized as null:\n%s", buf.String())
	}

	out, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.ID != b.ID || a.Parent != b.Parent || a.Kind != b.Kind || a.Rack != b.Rack ||
			a.StartS != b.StartS || a.LeaseVersion != b.LeaseVersion || a.Attr != b.Attr || a.Detail != b.Detail {
			t.Fatalf("span %d mutated in round-trip:\n in: %+v\nout: %+v", i, a, b)
		}
		if a.Open() != b.Open() {
			t.Fatalf("span %d openness lost: in %v out %v", i, a.Open(), b.Open())
		}
	}
}

func TestReadSpansBadRecord(t *testing.T) {
	_, err := ReadSpans(strings.NewReader("{\"schema\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "record 2") {
		t.Fatalf("expected an error naming record 2, got %v", err)
	}
}

func TestFormatSpanTree(t *testing.T) {
	var buf bytes.Buffer
	FormatSpanTree(&buf, spanFixture())
	got := buf.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 tree lines, got %d:\n%s", len(lines), got)
	}
	// Causality renders as indentation: grant at the root, accept under it,
	// the accept's children one level deeper, in (StartS, ID) order.
	wantPrefix := []string{
		"lease-grant",
		"  lease-accept",
		"    control-period",
		"    degraded",
	}
	for i, w := range wantPrefix {
		if !strings.HasPrefix(lines[i], w) {
			t.Fatalf("tree line %d = %q, want prefix %q\nfull tree:\n%s", i, lines[i], w, got)
		}
	}
	if !strings.Contains(lines[3], "open") {
		t.Fatalf("open span not marked open: %q", lines[3])
	}
	// A filtered trace whose parents are missing degrades to a forest of
	// roots instead of dropping spans.
	buf.Reset()
	FormatSpanTree(&buf, spanFixture()[2:])
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("orphaned spans dropped: %d lines, want 2\n%s", n, buf.String())
	}
}

// TestDecisionSchemaVersion pins satellite guarantee: every emitted decision
// record carries the current schema version so trace diffing across schema
// changes fails loudly.
func TestDecisionSchemaVersion(t *testing.T) {
	var buf bytes.Buffer
	s := NewDecisionSink(&buf)
	s.Emit(&Decision{T: 1})
	if !strings.Contains(buf.String(), `"schema_version":2`) {
		t.Fatalf("decision record missing schema_version=2:\n%s", buf.String())
	}
	ds, err := ReadDecisions(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadDecisions: %v", err)
	}
	if len(ds) != 1 || ds[0].Schema != DecisionSchemaVersion {
		t.Fatalf("round-tripped schema = %+v, want version %d", ds, DecisionSchemaVersion)
	}
}
