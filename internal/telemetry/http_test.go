package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsAndStatus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cb_trips_total", "trips").Add(1)
	reg.Gauge("ups_soc", "soc").Set(0.42)
	status := NewRunStatus()
	status.Set(StatusSnapshot{Policy: "SprintCon", NowS: 450, DurationS: 900, Progress: 0.5, TotalW: 3700})

	srv := httptest.NewServer(Handler(reg, status))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(body), "cb_trips_total 1") || !strings.Contains(string(body), "ups_soc 0.42") {
		t.Fatalf("/metrics body missing samples:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var got StatusSnapshot
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != "SprintCon" || got.Progress != 0.5 || got.TotalW != 3700 {
		t.Fatalf("/status = %+v", got)
	}

	// pprof index must respond (the profiling endpoints are part of the
	// observability contract).
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func TestServeAndStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n", "").Inc()
	addr, stop, err := Serve("127.0.0.1:0", Handler(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "n 1") {
		t.Fatalf("metrics over live server missing sample:\n%s", body)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after stop")
	}
}
