package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestDecisionSinkJSONL(t *testing.T) {
	var b strings.Builder
	s := NewDecisionSink(&b)
	s.Emit(&Decision{
		T:      4,
		Policy: "SprintCon",
		Mode:   "normal",
		Alloc:  &AllocDecision{PCbW: 4000, PBatchW: 2600, ReserveW: 700, DeadlineFloorW: 1900, HeadroomUtil: 0.8, DeadlineUrgency: 0.6, Updated: true},
		MPC:    &MPCDecision{PfbW: 2500, TargetW: 2600, RefTrajW: []float64{2586, 2597}, RWeights: []float64{1, 0.5}, FreqsGHz: []float64{2, 1.6}, ClampedHi: 1, QPSweeps: 3, QPConverged: true, KWPerGHz: 10},
		Guard:  &GuardVerdict{Confidence: 1},
		UPS:    &UPSDecision{RequestW: 850, SoC: 0.9},
	})
	s.Emit(&Decision{T: 8, Policy: "SprintCon", Mode: "normal"})
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}

	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines int
	for sc.Scan() {
		lines++
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if d.Policy != "SprintCon" {
			t.Fatalf("line %d policy = %q", lines, d.Policy)
		}
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}

	// Round-trip preserves the nested sections.
	var d Decision
	first, _, _ := strings.Cut(b.String(), "\n")
	if err := json.Unmarshal([]byte(first), &d); err != nil {
		t.Fatal(err)
	}
	if d.Alloc == nil || d.Alloc.PCbW != 4000 || !d.Alloc.Updated {
		t.Fatalf("alloc section mangled: %+v", d.Alloc)
	}
	if d.MPC == nil || d.MPC.QPSweeps != 3 || d.MPC.ClampedHi != 1 {
		t.Fatalf("mpc section mangled: %+v", d.MPC)
	}
	if d.UPS == nil || d.UPS.RequestW != 850 {
		t.Fatalf("ups section mangled: %+v", d.UPS)
	}
}

func TestDecisionSinkNil(t *testing.T) {
	var s *DecisionSink
	s.Emit(&Decision{T: 1}) // must not panic
	if s.Count() != 0 || s.Err() != nil {
		t.Fatal("nil sink must read zero")
	}
}

// failWriter errors after the first write.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestDecisionSinkRetainsFirstError(t *testing.T) {
	s := NewDecisionSink(&failWriter{})
	s.Emit(&Decision{T: 1})
	s.Emit(&Decision{T: 2})
	s.Emit(&Decision{T: 3})
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1 (writes after the error must be dropped)", s.Count())
	}
	if s.Err() == nil || !strings.Contains(s.Err().Error(), "disk full") {
		t.Fatalf("err = %v, want disk full", s.Err())
	}
}
