package telemetry

import "sync"

// StatusSnapshot is the live run-status document served at /status: where
// the simulation is, what the plant looks like right now, and the headline
// counters so far. The engine refreshes it every tick.
type StatusSnapshot struct {
	Policy    string  `json:"policy"`
	NowS      float64 `json:"now_s"`
	DurationS float64 `json:"duration_s"`
	Progress  float64 `json:"progress"` // NowS/DurationS in [0, 1]
	Ticks     int64   `json:"ticks"`
	TotalW    float64 `json:"total_w"`
	CBW       float64 `json:"cb_w"`
	UPSW      float64 `json:"ups_w"`
	SoC       float64 `json:"ups_soc"`
	CBTrips   int     `json:"cb_trips"`
	OutageS   float64 `json:"outage_s"`
	Done      bool    `json:"done"`
	// Checkpoint/restart state (zero unless the run checkpoints or
	// injects controller crashes).
	CheckpointSaves     int64   `json:"checkpoint_saves,omitempty"`
	CheckpointBytes     int     `json:"checkpoint_bytes,omitempty"`
	CheckpointAgeS      float64 `json:"checkpoint_age_s,omitempty"`
	CtlRestarts         int     `json:"ctl_restarts,omitempty"`
	CtlFailSafeRestarts int     `json:"ctl_failsafe_restarts,omitempty"`
}

// RunStatus is a concurrency-safe holder for the latest StatusSnapshot.
// All methods are safe on a nil receiver (the engine updates it
// unconditionally).
type RunStatus struct {
	mu sync.RWMutex
	s  StatusSnapshot
}

// NewRunStatus returns an empty status holder.
func NewRunStatus() *RunStatus { return &RunStatus{} }

// Set replaces the snapshot (no-op on nil).
func (r *RunStatus) Set(s StatusSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.s = s
	r.mu.Unlock()
}

// Get returns the latest snapshot (zero value on nil).
func (r *RunStatus) Get() StatusSnapshot {
	if r == nil {
		return StatusSnapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.s
}
