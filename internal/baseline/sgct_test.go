package baseline

import (
	"math"
	"testing"

	"sprintcon/internal/sim"
)

func run(t *testing.T, v Variant, scn sim.Scenario) *sim.Result {
	t.Helper()
	res, err := sim.Run(scn, New(v))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVariantNames(t *testing.T) {
	if SGCT.String() != "SGCT" || SGCTV1.String() != "SGCT-V1" || SGCTV2.String() != "SGCT-V2" {
		t.Fatal("variant names wrong")
	}
	if Variant(9).String() == "" {
		t.Fatal("unknown variant should print")
	}
	if New(SGCT).Name() != "SGCT" {
		t.Fatal("policy name")
	}
}

func TestStartRejectsNilEnv(t *testing.T) {
	if err := New(SGCT).Start(nil, sim.DefaultScenario()); err == nil {
		t.Fatal("nil env should error")
	}
}

// Paper Fig. 5: uncontrolled sprinting trips the breaker within the first
// overload window, the UPS then carries the rack and is drained, and the
// rack eventually blacks out.
func TestSGCTTripsAndDrainsUPS(t *testing.T) {
	res := run(t, SGCT, sim.DefaultScenario())
	if res.CBTrips == 0 {
		t.Fatal("SGCT must trip the breaker (that is its defect)")
	}
	// First trip within the first overload window (~150 s).
	firstTrip := math.Inf(1)
	for i := 1; i < len(res.Series.Time); i++ {
		if res.Series.CBW[i] == 0 && res.Series.CBW[i-1] > 0 && res.Series.TotalW[i] > 0 {
			firstTrip = res.Series.Time[i]
			break
		}
	}
	if firstTrip > 160 {
		t.Fatalf("first trip at %v s, want within the first overload window", firstTrip)
	}
	if res.UPSDoD < 0.99 {
		t.Fatalf("UPS DoD %v, want full drain", res.UPSDoD)
	}
	if res.OutageS == 0 {
		t.Fatal("SGCT run should suffer an outage")
	}
	// Paper: UPS runs out around the 10–11th minute.
	depleted := math.Inf(1)
	for i := range res.Series.Time {
		if res.Series.SoC[i] <= 0.001 {
			depleted = res.Series.Time[i]
			break
		}
	}
	if depleted < 8*60 || depleted > 12*60 {
		t.Fatalf("UPS depleted at %v s, want in the 8–12 minute band", depleted)
	}
}

// Paper Section VII-B: the idealized variants never trip and never black
// out; their UPS is used as a backup during CB recovery only.
func TestV1V2SafeAndBoundedDoD(t *testing.T) {
	for _, v := range []Variant{SGCTV1, SGCTV2} {
		res := run(t, v, sim.DefaultScenario())
		if res.CBTrips != 0 {
			t.Fatalf("%v tripped %d times", v, res.CBTrips)
		}
		if res.OutageS != 0 {
			t.Fatalf("%v outage %v s", v, res.OutageS)
		}
		if res.UPSDoD < 0.2 || res.UPSDoD > 0.55 {
			t.Fatalf("%v DoD %v, want moderate backup use (paper ≈31%%)", v, res.UPSDoD)
		}
	}
}

// Paper Fig. 6(b)/(c): V1/V2 hold the total power nearly flat at the
// constant sprint budget.
func TestV1TotalPowerNearlyFlat(t *testing.T) {
	res := run(t, SGCTV1, sim.DefaultScenario())
	budget := 1.25 * res.Scenario.Breaker.RatedPower
	var worst float64
	for i, tot := range res.Series.TotalW {
		if res.Series.Time[i] < 10 {
			continue // ramp-in
		}
		dev := math.Abs(tot-budget) / budget
		if dev > worst {
			worst = dev
		}
	}
	// Tolerance covers one tick of batch phase-transition utilization
	// drift between oracle clamps.
	if worst > 0.06 {
		t.Fatalf("V1 total power deviates %v from flat budget", worst)
	}
}

// V1/V2 discharge the UPS only while the breaker recovers (paper: "only
// discharge UPS after the CB can no longer be overloaded").
func TestV1UPSOnlyDuringRecovery(t *testing.T) {
	res := run(t, SGCTV1, sim.DefaultScenario())
	for i, tm := range res.Series.Time {
		phase := math.Mod(tm, 450)
		inOverload := phase >= 5 && phase < 150 // skip the boundary tick
		if inOverload && res.Series.UPSW[i] > 100 {
			t.Fatalf("t=%v: %v W of UPS discharge during an overload phase", tm, res.Series.UPSW[i])
		}
	}
}

// Paper Fig. 7: SGCT-V2 runs interactive near peak at the cost of batch;
// SGCT-V1 favors the (higher-utilization) batch cores.
func TestClassPriorityOrdering(t *testing.T) {
	scn := sim.DefaultScenario()
	v1 := run(t, SGCTV1, scn)
	v2 := run(t, SGCTV2, scn)
	if !(v2.AvgFreqInter > v1.AvgFreqInter) {
		t.Fatalf("interactive: V2 %v should exceed V1 %v", v2.AvgFreqInter, v1.AvgFreqInter)
	}
	if !(v1.AvgFreqBatch > v2.AvgFreqBatch) {
		t.Fatalf("batch: V1 %v should exceed V2 %v", v1.AvgFreqBatch, v2.AvgFreqBatch)
	}
	if v2.AvgFreqInter < 0.9 {
		t.Fatalf("V2 interactive %v, want near peak (paper 0.94)", v2.AvgFreqInter)
	}
	if v1.AvgFreqBatch < 0.7 {
		t.Fatalf("V1 batch %v, want high (paper 0.91)", v1.AvgFreqBatch)
	}
}

// The idealized variants still meet the default deadlines (paper Fig. 8a).
func TestV1V2MeetDefaultDeadlines(t *testing.T) {
	for _, v := range []Variant{SGCTV1, SGCTV2} {
		res := run(t, v, sim.DefaultScenario())
		if res.DeadlineMisses != 0 {
			t.Fatalf("%v missed %d deadlines", v, res.DeadlineMisses)
		}
	}
}

// No core is starved: with the aging rotation every batch job progresses.
func TestNoBatchCoreStarvation(t *testing.T) {
	res := run(t, SGCTV2, sim.DefaultScenario())
	for _, j := range res.Jobs {
		if !math.IsNaN(j.CompletionS) {
			continue
		}
		if j.Progress < 0.2 {
			t.Fatalf("job %s/%s starved at progress %v", j.Name, j.Core, j.Progress)
		}
	}
}

// Targets are reported for the Fig. 6 budget curve.
func TestTargetsReported(t *testing.T) {
	p := New(SGCTV1)
	res, err := sim.Run(sim.DefaultScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	sawOverload, sawRecovery := false, false
	for _, pcb := range res.Series.PCbW {
		switch {
		case math.Abs(pcb-4000) < 1:
			sawOverload = true
		case math.Abs(pcb-3200) < 1:
			sawRecovery = true
		}
	}
	if !sawOverload || !sawRecovery {
		t.Fatal("phase budget curve not recorded")
	}
	pcb, pbatch := p.Targets(0)
	if pcb != 4000 || !math.IsNaN(pbatch) {
		t.Fatalf("Targets = %v, %v", pcb, pbatch)
	}
}

// Determinism across runs.
func TestBaselineDeterministic(t *testing.T) {
	a := run(t, SGCTV2, sim.DefaultScenario())
	b := run(t, SGCTV2, sim.DefaultScenario())
	if a.UPSDoD != b.UPSDoD || a.AvgFreqBatch != b.AvgFreqBatch {
		t.Fatal("baseline not deterministic")
	}
}
