// Package baseline implements the state-of-the-art comparison policies of
// the paper's evaluation (Section VI-B), derived from the sprinting game of
// Fan et al. [2] with the Cooperative Threshold strategy:
//
//   - SGCT: the sprinting game as-is. It budgets total power at
//     rated × overload degree, waterfills peak frequency onto the
//     highest-utilization cores using the *linear power model estimate*,
//     and uses CB overload as its only power knob — no feedback. Model
//     error makes the actual power exceed the budget, which trips the
//     breaker (paper Fig. 5); after a trip the UPS carries the whole rack.
//   - SGCT-V1: an idealized variant that manages frequencies so the actual
//     total power lands exactly on the budget (infeasible in practice
//     without closed-loop control, as the paper notes — implemented here
//     with an oracle over the true plant), so the breaker never trips. The
//     UPS is a backup source: it discharges only while the CB recovers.
//   - SGCT-V2: SGCT-V1 but sprinting interactive cores with priority over
//     batch cores.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sprintcon/internal/cpu"
	"sprintcon/internal/rack"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// Variant selects the baseline behaviour.
type Variant int

const (
	// SGCT is the uncontrolled sprinting game (trips breakers).
	SGCT Variant = iota
	// SGCTV1 is the ideally-clamped variant.
	SGCTV1
	// SGCTV2 is the ideally-clamped, interactive-priority variant.
	SGCTV2
)

// String returns the variant name used in results.
func (v Variant) String() string {
	switch v {
	case SGCT:
		return "SGCT"
	case SGCTV1:
		return "SGCT-V1"
	case SGCTV2:
		return "SGCT-V2"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Policy implements sim.Policy for the SGCT family.
type Policy struct {
	variant Variant

	env *sim.Env
	scn sim.Scenario

	kPerCore  float64
	cSharePer float64
	fmin      float64
	fmax      float64
	fnom      float64 // non-sprint (nominal) frequency: rack fits the rating
	rated     float64
	degree    float64
	overloadS float64
	recoveryS float64

	curPCb float64
	// Telemetry instruments, resolved once in Start (nil-safe no-ops when
	// the run carries no registry). The baselines report through the same
	// metric names as SprintCon where the semantics match, so dashboards
	// and the experiments harness compare policies without translation.
	pcbGauge    *telemetry.Gauge
	thetaGauge  *telemetry.Gauge
	sprintCores *telemetry.Gauge
	// lastSprinted tracks, per core, when it last ran at (near) peak.
	// The cooperative game rotates sprint grants: a core that has waited
	// long accumulates priority, so low-utilization cores are not
	// starved forever (which would break their batch deadlines).
	lastSprinted map[coreKey]float64
}

// coreKey identifies a core across ticks.
type coreKey struct{ server, core int }

// agingBoostPerSecond converts waiting time into priority, on the same
// scale as utilization (0–1). It must dominate the utilization spread
// *within* a class after a few seconds — otherwise the lowest-utilization
// batch benchmark is evicted every tick and re-admitted only after the
// spread/boost ratio in ticks, an unfair duty cycle that starves it.
const agingBoostPerSecond = 0.05

// sprintThreshold is the Cooperative Threshold of the sprinting game [2]:
// a core whose *demand-equivalent* load (utilization × normalized
// frequency, i.e. independent of how throttled the core currently is)
// falls below this has no sprint demand and runs at the floor frequency.
const sprintThreshold = 0.45

// New returns a baseline policy of the given variant.
func New(v Variant) *Policy {
	return &Policy{variant: v}
}

// Name implements sim.Policy.
func (p *Policy) Name() string { return p.variant.String() }

// Start implements sim.Policy.
func (p *Policy) Start(env *sim.Env, scn sim.Scenario) error {
	if env == nil {
		return errors.New("baseline: nil environment")
	}
	p.env = env
	p.scn = scn

	params := scn.Rack.ServerParams
	co := params.DesignCoeffs(0.9)
	p.kPerCore = co.KWPerGHz
	p.cSharePer = co.CIdleShareW
	p.fmin = params.PStates.Min()
	p.fmax = params.PStates.Max()
	p.rated = scn.Breaker.RatedPower
	// The baselines use the same overload parameters as SprintCon's
	// allocator — the paper keeps degree 1.25, 150 s, 300 s "the same as
	// those in [2]".
	p.degree = 1.25
	p.overloadS = 150
	p.recoveryS = 300
	p.curPCb = p.rated * p.degree
	p.lastSprinted = make(map[coreKey]float64)
	p.pcbGauge = env.Metrics.Gauge("pcb_target_w", "effective circuit-breaker power budget")
	p.thetaGauge = env.Metrics.Gauge("sgct_theta", "sprint extent: cores granted (near-)peak frequency")
	p.sprintCores = env.Metrics.Gauge("sgct_candidate_cores", "cores above the cooperative sprint threshold")

	// Nominal frequency: the power-capped operating point of the rack
	// before sprinting — the linear model's per-core share of the rating.
	nCores := float64(scn.Rack.NumServers * (scn.Rack.InteractiveCoresPerServer + scn.Rack.BatchCoresPerServer))
	idleEst := env.Rack.EstimateIdlePower()
	p.fnom = ((p.rated-idleEst)/nCores - p.cSharePer) / p.kPerCore
	if p.fnom < p.fmin {
		p.fnom = p.fmin
	}
	if p.fnom > p.fmax {
		p.fnom = p.fmax
	}
	return nil
}

// Targets implements sim.TargetReporter: the CB phase budget; the baselines
// maintain no separate batch budget, so NaN is reported for it.
func (p *Policy) Targets(now float64) (float64, float64) {
	return p.pcbPhase(now), math.NaN()
}

// pcbPhase returns the CB budget of the periodic schedule at time now.
func (p *Policy) pcbPhase(now float64) float64 {
	phase := math.Mod(now, p.overloadS+p.recoveryS)
	if phase < p.overloadS {
		return p.rated * p.degree
	}
	return p.rated
}

// Tick implements sim.Policy.
func (p *Policy) Tick(env *sim.Env, snap sim.Snapshot) float64 {
	now := snap.Now
	p.curPCb = p.pcbPhase(now)
	budget := p.rated * p.degree // total sprint budget, held constant [2]

	cores := p.prioritizedCores(env, now)
	var theta float64
	if p.variant == SGCT {
		// The game trusts its linear model: solve the estimated total
		// for the sprint extent. Model error is what trips the CB.
		// Non-candidate cores sit at the nominal frequency.
		nNonCandidates := float64(len(env.Rack.InteractiveCores())+len(env.Rack.BatchCores())) - float64(len(cores))
		base := env.Rack.EstimateIdlePower() +
			nNonCandidates*(p.kPerCore*p.fnom+p.cSharePer) +
			float64(len(cores))*(p.kPerCore*p.fnom+p.cSharePer)
		theta = (budget - base) / (p.kPerCore * (p.fmax - p.fnom))
	} else {
		// Ideal management: oracle bisection on the true plant so the
		// actual power lands exactly on the budget.
		theta = p.oracleTheta(env, cores, budget)
	}
	p.applyTheta(env, cores, theta)
	// Cores granted (near-)peak frequency count as sprinted for aging.
	for i, c := range cores {
		if float64(i) < theta {
			p.lastSprinted[coreKey{c.server, c.core}] = now
		}
	}

	var upsReqW float64
	switch p.variant {
	case SGCT:
		// CB overload is the only knob; the UPS kicks in only when the
		// engine routes power through it after a trip.
	default:
		// Backup use: discharge only what exceeds the current CB phase
		// budget (zero during overload phases, total−rated during
		// recovery phases). A small margin keeps measurement lag and
		// duty quantization from parking the breaker a hair above its
		// rating, where its thermal state would never recover.
		const backoffMarginW = 30
		upsReqW = math.Max(0, snap.MeasuredTotalW-(p.curPCb-backoffMarginW))
	}

	p.pcbGauge.Set(p.curPCb)
	p.thetaGauge.Set(theta)
	p.sprintCores.Set(float64(len(cores)))
	if env.Decisions != nil {
		env.Decisions.Emit(&telemetry.Decision{
			T:      now,
			Policy: p.Name(),
			// The sprinting game has no degradation ladder; the overload/
			// recovery phase plays the role of a mode in the trace.
			Mode: p.phaseName(now),
			Alloc: &telemetry.AllocDecision{
				PCbW:    telemetry.F(p.curPCb),
				PBatchW: telemetry.F(math.NaN()),
				Updated: true, // open-loop schedule recomputed every tick
			},
			UPS: &telemetry.UPSDecision{RequestW: upsReqW, SoC: snap.UPSSoC},
		})
	}
	return upsReqW
}

// phaseName labels the point of the periodic overload schedule for traces.
func (p *Policy) phaseName(now float64) string {
	if math.Mod(now, p.overloadS+p.recoveryS) < p.overloadS {
		return "overload"
	}
	return "recovery"
}

// coreRef identifies a prioritized core.
type coreRef struct {
	server, core int
	priority     float64
	interactive  bool
}

// prioritizedCores lists all workload cores in sprint-priority order:
// descending utilization (the demand metric of Section VI-B) plus an aging
// boost, with SGCT-V2 placing interactive cores ahead of batch cores.
func (p *Policy) prioritizedCores(env *sim.Env, now float64) []coreRef {
	var cores []coreRef
	fmax := p.fmax
	for _, s := range env.Rack.Servers() {
		for c := 0; c < s.CPU().NumCores(); c++ {
			st := s.CPU().Core(c)
			if st.Class == cpu.Idle {
				continue
			}
			// Below-threshold cores leave the game: no sprint, nominal
			// frequency. The demand metric is throttle-invariant:
			// interactive utilization scales as f_max/f for a fixed
			// request stream, so demand = util·f/f_max there — except a
			// saturated core, whose queue is building and whose true
			// demand is unknown but high. Batch cores are saturated at
			// any frequency, so demand = util.
			demand := st.Util
			if st.Class == cpu.Interactive && st.Util < 0.999 {
				demand = st.Util * st.Freq / fmax
			}
			if demand < sprintThreshold {
				env.Rack.SetCoreFreq(rack.CoreRef{Server: s.ID(), Core: c}, p.fnom)
				continue
			}
			waited := now - p.lastSprinted[coreKey{s.ID(), c}]
			cores = append(cores, coreRef{
				server:      s.ID(),
				core:        c,
				priority:    st.Util + agingBoostPerSecond*waited,
				interactive: st.Class == cpu.Interactive,
			})
		}
	}
	sort.SliceStable(cores, func(i, j int) bool {
		if p.variant == SGCTV2 && cores[i].interactive != cores[j].interactive {
			return cores[i].interactive // interactive first
		}
		return cores[i].priority > cores[j].priority
	})
	return cores
}

// applyTheta writes the waterfilling assignment for sprint extent theta:
// the first ⌊theta⌋ cores in priority order run at peak, the next core gets
// the fractional upgrade, the rest run at the nominal frequency.
func (p *Policy) applyTheta(env *sim.Env, cores []coreRef, theta float64) {
	if theta < 0 {
		theta = 0
	}
	if theta > float64(len(cores)) {
		theta = float64(len(cores))
	}
	for i, c := range cores {
		f := p.fnom
		switch {
		case float64(i+1) <= theta:
			f = p.fmax
		case float64(i) < theta:
			f = p.fnom + (theta-float64(i))*(p.fmax-p.fnom)
		}
		// Routed through the rack's actuation path so injected DVFS
		// faults affect the baselines exactly as they do SprintCon.
		env.Rack.SetCoreFreq(rack.CoreRef{Server: c.server, Core: c.core}, f)
	}
}

// oracleTheta bisects the sprint extent so the rack's *true* power equals
// the budget (the idealized open-loop management granted to SGCT-V1/V2).
func (p *Policy) oracleTheta(env *sim.Env, cores []coreRef, budgetW float64) float64 {
	n := float64(len(cores))
	powerAt := func(theta float64) float64 {
		p.applyTheta(env, cores, theta)
		return env.Rack.TruePower()
	}
	if powerAt(n) <= budgetW {
		return n // the workloads do not need the full budget
	}
	lo, hi := 0.0, n
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		if powerAt(mid) > budgetW {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}
