package qp

import (
	"math"
	"testing"

	"sprintcon/internal/mathx"
)

// constrainedProblem builds an n-variable strictly convex QP whose
// unconstrained minimizer violates the box, so the solver must run
// coordinate descent (the MPC's steady-state shape: dense rank-one tracking
// term plus a positive diagonal).
func constrainedProblem(n int) Problem {
	h := mathx.NewMatrix(n, n)
	k := mathx.NewVector(n)
	for i := range k {
		k[i] = 9 + 0.1*float64(i%7)
	}
	// Weight matches the MPC's Σh² ≈ 30 over a 4-period horizon; the
	// dominant rank-one term is what makes cyclic descent take many
	// sweeps from a cold start.
	h.OuterAdd(30, k, k)
	g := mathx.NewVector(n)
	lo := mathx.NewVector(n)
	hi := mathx.NewVector(n)
	for i := 0; i < n; i++ {
		h.Inc(i, i, 400)
		// Pull some coordinates past the upper bound and leave others
		// interior, so the active set is mixed and cyclic descent needs
		// many sweeps to untangle the coupling.
		g[i] = -(4000 + 2500*float64(i%5)) * k[i]
		lo[i] = -1.6
		hi[i] = 0.4
	}
	return Problem{H: h, G: g, Lo: lo, Hi: hi}
}

// perturb returns a copy of p with the linear term nudged — the shape of an
// MPC re-solve one control period later (same H, slightly different gap).
func perturb(p Problem, eps float64) Problem {
	q := p
	q.G = p.G.Clone()
	for i := range q.G {
		q.G[i] *= 1 + eps
	}
	return q
}

// Warm-starting must reach the same minimizer (within KKT tolerance) as a
// cold solve, in strictly fewer sweeps, when re-solving a perturbed problem
// from the previous solution.
func TestWarmVsColdEquivalence(t *testing.T) {
	p := constrainedProblem(64)
	base, err := Solve(p, Options{MaxSweeps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Converged || base.Sweeps == 0 {
		t.Fatalf("base solve should converge via coordinate descent, got %+v", base)
	}

	next := perturb(p, 0.01)
	cold, err := Solve(next, Options{MaxSweeps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	warmPoint := base.X.Clone()
	warm, err := Solve(next, Options{Warm: warmPoint, MaxSweeps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged || !warm.Converged {
		t.Fatalf("both solves must converge: cold=%+v warm=%+v", cold, warm)
	}

	// Same minimizer within the KKT tolerance: both satisfy optimality of
	// the same strictly convex problem, so they must agree closely.
	for i := range cold.X {
		if math.Abs(cold.X[i]-warm.X[i]) > 1e-6 {
			t.Fatalf("minimizers diverge at %d: cold %v warm %v", i, cold.X[i], warm.X[i])
		}
	}
	// The solver's tolerance scales with the gradient magnitude; the warm
	// solution must meet the same scaled KKT tolerance the cold one does.
	tol := defaultTol * (1 + next.G.NormInf())
	if r := next.KKTResidual(warm.X); r > tol*10 {
		t.Fatalf("warm solution KKT residual %g exceeds %g", r, tol*10)
	}
	if warm.Sweeps >= cold.Sweeps {
		t.Fatalf("warm start must use strictly fewer sweeps: warm %d vs cold %d", warm.Sweeps, cold.Sweeps)
	}
	// The warm input must not have been written.
	for i := range warmPoint {
		if warmPoint[i] != base.X[i] {
			t.Fatal("Options.Warm was mutated")
		}
	}
}

// A workspace solve must not allocate — this is the hot path's zero-alloc
// contract (DESIGN.md §10).
func TestSolveWorkspaceZeroAlloc(t *testing.T) {
	p := constrainedProblem(32)
	ws := NewWorkspace(32)
	warm := mathx.NewVector(32)

	// Prime: first solve fills the workspace and the warm point.
	res, err := Solve(p, Options{Ws: ws})
	if err != nil {
		t.Fatal(err)
	}
	copy(warm, res.X)

	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Solve(p, Options{Ws: ws, Warm: warm}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm workspace solve allocates %.1f times per run, want 0", allocs)
	}

	// The cold workspace path (Cholesky + fallback descent) must be
	// allocation-free too.
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := Solve(p, Options{Ws: ws}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cold workspace solve allocates %.1f times per run, want 0", allocs)
	}
}

// The fast path must agree with the legacy path on the same problem. Both
// get a generous sweep budget so the comparison is between converged
// minimizers (the legacy solver needs ~800 sweeps at n=64; the active-set
// fast path needs a few dozen factorizations at most).
func TestFastMatchesLegacy(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64} {
		p := constrainedProblem(n)
		legacy, err := Solve(p, Options{MaxSweeps: 10000})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Solve(p, Options{Ws: NewWorkspace(n)})
		if err != nil {
			t.Fatal(err)
		}
		if !legacy.Converged || !fast.Converged {
			t.Fatalf("n=%d: both paths must converge: legacy=%+v fast=%+v", n, legacy.Converged, fast.Converged)
		}
		for i := range legacy.X {
			if math.Abs(legacy.X[i]-fast.X[i]) > 1e-6 {
				t.Fatalf("n=%d: legacy and fast minimizers diverge at %d: %v vs %v", n, i, legacy.X[i], fast.X[i])
			}
		}
	}
}

func TestWarmDimensionMismatch(t *testing.T) {
	p := constrainedProblem(8)
	if _, err := Solve(p, Options{Warm: mathx.NewVector(5)}); err == nil {
		t.Fatal("expected dimension error for mismatched warm start")
	}
}
