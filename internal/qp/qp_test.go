package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sprintcon/internal/mathx"
)

func spd(rng *rand.Rand, n int) *mathx.Matrix {
	b := mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	h := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		h.Inc(i, i, 0.5)
	}
	return h
}

func TestSolveUnconstrainedInterior(t *testing.T) {
	// min ½xᵀIx − [1 2]x with wide bounds → x = [1 2].
	p := Problem{
		H:  mathx.Identity(2),
		G:  mathx.Vector{-1, -2},
		Lo: mathx.Constant(2, -100),
		Hi: mathx.Constant(2, 100),
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("should converge")
	}
	if math.Abs(r.X[0]-1) > 1e-9 || math.Abs(r.X[1]-2) > 1e-9 {
		t.Fatalf("X = %v, want [1 2]", r.X)
	}
	if r.Sweeps != 0 {
		t.Fatalf("interior solution should use the Cholesky fast path, sweeps=%d", r.Sweeps)
	}
}

func TestSolveClampedToBounds(t *testing.T) {
	// Unconstrained minimum [1 2] but box [0,0.5]² → both at upper bound?
	// For identity H coordinates decouple: x = [0.5, 0.5].
	p := Problem{
		H:  mathx.Identity(2),
		G:  mathx.Vector{-1, -2},
		Lo: mathx.Constant(2, 0),
		Hi: mathx.Constant(2, 0.5),
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("should converge")
	}
	if math.Abs(r.X[0]-0.5) > 1e-9 || math.Abs(r.X[1]-0.5) > 1e-9 {
		t.Fatalf("X = %v, want [0.5 0.5]", r.X)
	}
}

func TestSolveMatchesGridSearch2D(t *testing.T) {
	// Coupled 2-D problem verified against a fine grid search.
	h := mathx.NewMatrix(2, 2)
	h.Set(0, 0, 2)
	h.Set(0, 1, 0.8)
	h.Set(1, 0, 0.8)
	h.Set(1, 1, 1.5)
	p := Problem{H: h, G: mathx.Vector{1.0, -2.0}, Lo: mathx.Vector{-1, -1}, Hi: mathx.Vector{1, 1}}

	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	var bx, by float64
	const steps = 400
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			x := mathx.Vector{-1 + 2*float64(i)/steps, -1 + 2*float64(j)/steps}
			if v := p.Objective(x); v < best {
				best, bx, by = v, x[0], x[1]
			}
		}
	}
	if math.Abs(r.X[0]-bx) > 2.0/steps || math.Abs(r.X[1]-by) > 2.0/steps {
		t.Fatalf("solver X=%v, grid best=(%v,%v)", r.X, bx, by)
	}
	if r.Objective > best+1e-6 {
		t.Fatalf("solver objective %v worse than grid %v", r.Objective, best)
	}
}

func TestSolveSatisfiesKKTRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		p := Problem{H: spd(rng, n), G: mathx.NewVector(n), Lo: mathx.NewVector(n), Hi: mathx.NewVector(n)}
		for i := 0; i < n; i++ {
			p.G[i] = rng.NormFloat64() * 3
			a, b := rng.NormFloat64(), rng.NormFloat64()
			p.Lo[i], p.Hi[i] = math.Min(a, b), math.Max(a, b)
		}
		r, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Converged {
			t.Fatalf("trial %d did not converge (KKT %g)", trial, p.KKTResidual(r.X))
		}
		for i := range r.X {
			if r.X[i] < p.Lo[i]-1e-9 || r.X[i] > p.Hi[i]+1e-9 {
				t.Fatalf("trial %d: X[%d]=%v outside [%v,%v]", trial, i, r.X[i], p.Lo[i], p.Hi[i])
			}
		}
		if res := p.KKTResidual(r.X); res > 1e-6*(1+p.G.NormInf()) {
			t.Fatalf("trial %d: KKT residual %v", trial, res)
		}
	}
}

// Property: the solver's objective never exceeds that of random feasible
// points (global optimality of convex QP solutions).
func TestSolveBeatsRandomFeasiblePointsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		p := Problem{H: spd(rng, n), G: mathx.NewVector(n), Lo: mathx.NewVector(n), Hi: mathx.NewVector(n)}
		for i := 0; i < n; i++ {
			p.G[i] = rng.NormFloat64()
			p.Lo[i] = -1 - rng.Float64()
			p.Hi[i] = 1 + rng.Float64()
		}
		r, err := Solve(p, Options{})
		if err != nil || !r.Converged {
			return false
		}
		for k := 0; k < 50; k++ {
			x := mathx.NewVector(n)
			for i := range x {
				x[i] = p.Lo[i] + rng.Float64()*(p.Hi[i]-p.Lo[i])
			}
			if p.Objective(x) < r.Objective-1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadProblems(t *testing.T) {
	good := Problem{H: mathx.Identity(2), G: mathx.Vector{0, 0}, Lo: mathx.Vector{0, 0}, Hi: mathx.Vector{1, 1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good problem rejected: %v", err)
	}
	bad := good
	bad.Lo = mathx.Vector{2, 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("lo > hi should be rejected")
	}
	bad = good
	bad.G = mathx.Vector{0}
	if err := bad.Validate(); err == nil {
		t.Fatal("dimension mismatch should be rejected")
	}
	h := mathx.NewMatrix(2, 2) // zero diagonal → not strictly convex
	bad = Problem{H: h, G: mathx.Vector{0, 0}, Lo: mathx.Vector{0, 0}, Hi: mathx.Vector{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-diagonal H should be rejected")
	}
	if _, err := Solve(bad, Options{}); err == nil {
		t.Fatal("Solve must propagate validation errors")
	}
}

func TestSolveEmptyProblem(t *testing.T) {
	p := Problem{H: mathx.NewMatrix(0, 0), G: mathx.Vector{}, Lo: mathx.Vector{}, Hi: mathx.Vector{}}
	r, err := Solve(p, Options{})
	if err != nil || !r.Converged || len(r.X) != 0 {
		t.Fatalf("empty problem: r=%+v err=%v", r, err)
	}
}

func TestSolveEqualBounds(t *testing.T) {
	// Degenerate box lo==hi pins the solution exactly.
	p := Problem{
		H:  mathx.Identity(3),
		G:  mathx.Vector{5, -5, 0},
		Lo: mathx.Vector{0.3, 0.3, 0.3},
		Hi: mathx.Vector{0.3, 0.3, 0.3},
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.X {
		if r.X[i] != 0.3 {
			t.Fatalf("X = %v, want all 0.3", r.X)
		}
	}
}

func TestSolveMPCSizedProblem(t *testing.T) {
	// 128 variables ≈ one frequency move per batch core on the rack.
	rng := rand.New(rand.NewSource(99))
	n := 128
	p := Problem{H: spd(rng, n), G: mathx.NewVector(n), Lo: mathx.Constant(n, -0.4), Hi: mathx.Constant(n, 0.4)}
	for i := range p.G {
		p.G[i] = rng.NormFloat64() * 5
	}
	r, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("128-var problem did not converge (KKT %g)", p.KKTResidual(r.X))
	}
}

func BenchmarkSolve128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 128
	p := Problem{H: spd(rng, n), G: mathx.NewVector(n), Lo: mathx.Constant(n, -0.4), Hi: mathx.Constant(n, 0.4)}
	for i := range p.G {
		p.G[i] = rng.NormFloat64() * 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
