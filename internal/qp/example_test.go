package qp_test

import (
	"fmt"

	"sprintcon/internal/mathx"
	"sprintcon/internal/qp"
)

// A 2-variable box-constrained QP: the unconstrained minimum (1, 2) is cut
// off by the box [0, 1.5]².
func ExampleSolve() {
	p := qp.Problem{
		H:  mathx.Identity(2),
		G:  mathx.Vector{-1, -2},
		Lo: mathx.Vector{0, 0},
		Hi: mathx.Vector{1.5, 1.5},
	}
	res, err := qp.Solve(p, qp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.1f %.1f], converged=%v\n", res.X[0], res.X[1], res.Converged)
	// Output:
	// x = [1.0 1.5], converged=true
}
