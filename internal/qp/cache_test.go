package qp

import (
	"math"
	"testing"

	"sprintcon/internal/mathx"
)

// bitsEqual reports exact bit equality of two vectors.
func bitsEqual(a, b mathx.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// The factor cache must be invisible in the solutions: an MPC-shaped
// re-solve sequence run with HGen set produces bit-identical iterates to the
// same sequence run with the cache disabled, while actually hitting the
// cache. This is the property that lets the event engine's bit-identity
// guarantees survive the cache: a reused factor is the same bits a fresh
// factorization would produce.
func TestFactorCacheBitIdenticalToUncached(t *testing.T) {
	const n, solves = 48, 12
	base := constrainedProblem(n)

	run := func(hgen uint64) ([]mathx.Vector, CacheStats) {
		ws := NewWorkspace(n)
		warm := mathx.NewVector(n)
		haveWarm := false
		var out []mathx.Vector
		for s := 0; s < solves; s++ {
			p := perturb(base, 1e-4*float64(s))
			opt := Options{Ws: ws, HGen: hgen}
			if haveWarm {
				opt.Warm = warm
			}
			res, err := Solve(p, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("solve %d did not converge", s)
			}
			copy(warm, res.X)
			haveWarm = true
			out = append(out, warm.Clone())
		}
		return out, ws.FactorCacheStats()
	}

	cold, coldStats := run(0)
	hot, hotStats := run(7)

	for s := range cold {
		if !bitsEqual(cold[s], hot[s]) {
			t.Fatalf("solve %d: cached solution differs from uncached\n cached:   %v\n uncached: %v", s, hot[s], cold[s])
		}
	}
	if coldStats != (CacheStats{}) {
		t.Fatalf("HGen=0 touched the cache: %+v", coldStats)
	}
	if hotStats.Hits == 0 {
		t.Fatalf("repeating working sets never hit the cache: %+v", hotStats)
	}
}

// Advancing the generation must stop factor reuse: a solve under a new HGen
// with a changed H matches a fresh workspace's solve bit for bit.
func TestFactorCacheGenerationInvalidation(t *testing.T) {
	const n = 32
	p1 := constrainedProblem(n)
	ws := NewWorkspace(n)
	if _, err := Solve(p1, Options{Ws: ws, HGen: 1}); err != nil {
		t.Fatal(err)
	}
	miss0 := ws.FactorCacheStats().Misses

	// Same sparsity, different values: scaling H moves the minimizer, so a
	// stale factor would produce a visibly wrong solution.
	p2 := p1
	p2.H = mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p2.H.Set(i, j, 1.25*p1.H.At(i, j))
		}
	}
	got, err := Solve(p2, Options{Ws: ws, HGen: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(p2, Options{Ws: NewWorkspace(n), HGen: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.X, want.X) {
		t.Fatalf("post-invalidation solve differs from fresh solve\n got:  %v\n want: %v", got.X, want.X)
	}
	if ws.FactorCacheStats().Misses == miss0 {
		t.Fatal("generation change did not force a fresh factorization")
	}
}

// The LRU must evict once distinct keys exceed the cap, and counting must
// reflect it.
func TestFactorCacheEviction(t *testing.T) {
	const n = 16
	p := constrainedProblem(n)
	ws := NewWorkspace(n)
	for g := uint64(1); g <= factorCacheCap+4; g++ {
		if _, err := Solve(p, Options{Ws: ws, HGen: g}); err != nil {
			t.Fatal(err)
		}
	}
	st := ws.FactorCacheStats()
	if st.Evictions == 0 {
		t.Fatalf("%d distinct generations evicted nothing: %+v", factorCacheCap+4, st)
	}
	if st.Hits != 0 {
		t.Fatalf("distinct generations should never hit: %+v", st)
	}
}

// A steady-state cached solve — warm start, workspace, repeating working
// set — must not allocate: hits reuse entry buffers and insert nothing.
// The linear term wobbles in place between solves (an unchanged problem
// re-solved from its own optimum converges before any factorization, which
// would exercise nothing), mimicking the MPC's per-period gap changes under
// a fixed H.
func TestFactorCacheSteadyStateZeroAlloc(t *testing.T) {
	const n = 32
	p := constrainedProblem(n)
	// Soften half the pulls so the optimum keeps an interior block: with
	// every coordinate pinned, a warm re-solve converges before its first
	// factorization and the cache would sit idle.
	for i := 0; i < n; i += 2 {
		p.G[i] = -20 * float64(1+i%5)
	}
	g0 := p.G.Clone()
	ws := NewWorkspace(n)
	warm := mathx.NewVector(n)
	res, err := Solve(p, Options{Ws: ws, HGen: 3})
	if err != nil {
		t.Fatal(err)
	}
	copy(warm, res.X)
	step := 0
	allocs := testing.AllocsPerRun(50, func() {
		step++
		scale := 1 + 1e-5*float64(step%3)
		for i := range p.G {
			p.G[i] = g0[i] * scale
		}
		r, err := Solve(p, Options{Ws: ws, Warm: warm, HGen: 3})
		if err != nil {
			t.Fatal(err)
		}
		copy(warm, r.X)
	})
	if allocs != 0 {
		t.Fatalf("steady-state cached solve allocates %.1f times per run", allocs)
	}
	if st := ws.FactorCacheStats(); st.Hits == 0 {
		t.Fatalf("steady-state solves never hit the cache: %+v", st)
	}
}
