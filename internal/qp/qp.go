// Package qp solves the box-constrained convex quadratic programs that arise
// from SprintCon's model-predictive server power controller (paper Eq. 8–9):
//
//	minimize   ½·xᵀHx + gᵀx
//	subject to lo ≤ x ≤ hi   (element-wise)
//
// H must be symmetric positive definite (the MPC cost is strictly convex
// because the control-penalty weights are strictly positive). The solver
// first tries the unconstrained Cholesky solution; if it violates the box it
// falls back to cyclic projected coordinate descent, which converges to the
// unique minimizer for strictly convex quadratics. Problem sizes here are at
// most a few hundred variables (one per batch CPU core on the rack).
//
// Two optional accelerations serve the per-control-period hot path:
//
//   - Options.Warm seeds the solver with the previous period's solution
//     (the MPC re-solves a nearly identical QP every period, so the
//     previous minimizer — and, more importantly, its active bound set —
//     is almost exactly right for the new problem);
//   - Options.Ws supplies a reusable Workspace so a steady-state solve
//     performs no heap allocation at all.
//
// Either option selects the fast path: box-constrained solves run a primal
// active-set Newton method (one small Cholesky factorization of the free
// block per working-set change) whose working set is initialized from the
// seed's bound pattern, falling back to projected coordinate descent only
// on numerically degenerate problems. Calls without options run the
// original, bit-exact legacy coordinate-descent path; fast-path results
// agree with it within the KKT tolerance, not bit for bit.
package qp

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/mathx"
)

// Problem describes a box-constrained quadratic program.
type Problem struct {
	H  *mathx.Matrix // symmetric positive definite cost matrix (units: cost per unit²)
	G  mathx.Vector  // linear cost term (units: cost per unit)
	Lo mathx.Vector  // element-wise lower bounds (decision-variable units, e.g. GHz)
	Hi mathx.Vector  // element-wise upper bounds (decision-variable units, e.g. GHz)
}

// Options controls solver effort and, via Warm and Ws, the hot-path
// accelerations. The zero value selects the legacy cold solver.
type Options struct {
	// MaxSweeps bounds the number of full coordinate-descent sweeps.
	// Zero selects the default (500).
	MaxSweeps int
	// Tol is the KKT residual tolerance. Zero selects the default (1e-9,
	// scaled by the magnitude of the gradient).
	Tol float64
	// Warm, when non-nil, seeds the fast path with this point (projected
	// into the box) instead of the projection of 0. The unconstrained
	// Cholesky shortcut still runs first — when the box is inactive it is
	// exact and beats any iteration — so the warm point matters for
	// box-constrained solves, where its bound pattern initializes the
	// active-set solver's working set and typically saves all but O(1)
	// iterations. Warm must have the problem's dimension; it is read,
	// never written.
	Warm mathx.Vector
	// Ws, when non-nil, provides preallocated scratch so the solve
	// performs no heap allocation; Result.X then aliases workspace memory
	// that the next Solve with the same workspace overwrites (copy it if
	// it must outlive the next call). Workspaces are not safe for
	// concurrent use.
	Ws *Workspace
	// HGen, when non-zero, is the caller's generation tag for the contents
	// of H: the caller promises that two Solve calls on the same Workspace
	// carrying the same HGen saw bit-identical H matrices. Under that
	// promise the active-set solver caches the Cholesky factors of its
	// free-variable blocks across solves (keyed by generation and free
	// set), skipping the O(m³) refactorization when the working set
	// repeats — the common case for a re-solved MPC whose bound pattern is
	// stable. A reused factor is the bit-identical output of the identical
	// factorization, so solutions are unchanged. Zero disables the cache.
	HGen uint64
}

// Result reports the solution of a Problem.
type Result struct {
	X         mathx.Vector // minimizer (aliases Options.Ws scratch when set)
	Objective float64      // ½xᵀHx + gᵀx at X
	// Sweeps counts solver iterations: coordinate-descent sweeps on the
	// legacy path, active-set Newton iterations (one free-block
	// factorization each) on the fast path. 0 when the unconstrained
	// Cholesky shortcut solved the problem outright.
	Sweeps    int
	Converged bool // KKT residual below tolerance
}

// Workspace holds the scratch buffers of one solver instance. Reusing a
// Workspace across Solve calls eliminates every steady-state allocation of
// the hot path; see Options.Ws for the aliasing contract.
type Workspace struct {
	x, grad, scratch mathx.Vector
	y                mathx.Vector // triangular-solve intermediate
	chol             *mathx.Matrix
	// Active-set solver scratch: the free-variable subproblem H_FF·d = −g_F
	// is factored in place in subH (row-major, m×m packed into the first
	// m² entries), with subB as its right-hand side / solution.
	free   []int
	pinned []bool
	subH   []float64
	subB   []float64
	// Cholesky factor cache for the active-set subproblems (Options.HGen).
	factors factorCache
}

// CacheStats counts the factor cache's lifetime activity on one Workspace.
type CacheStats struct {
	Hits      uint64 // solves that reused a cached free-block factor
	Misses    uint64 // cache-enabled factorizations that ran fresh
	Evictions uint64 // entries displaced by the LRU policy
}

// FactorCacheStats returns the workspace's factor cache counters.
func (w *Workspace) FactorCacheStats() CacheStats { return w.factors.stats }

// factorCacheCap bounds the per-workspace factor cache. The MPC's working
// set alternates between a handful of bound patterns in steady state (fully
// free, batch floor pinned, a stuck core locked), so a small cache captures
// essentially all reuse while keeping lookup a trivial linear scan.
const factorCacheCap = 8

// factorEntry is one cached lower-triangular Cholesky factor of an m×m
// free-variable block, valid for the H generation it was computed under.
type factorEntry struct {
	hgen uint64
	free []int     // the free index set, defensively copied
	fac  []float64 // m×m row-major; lower triangle holds the factor
	used uint64    // LRU clock value of the last touch
}

// factorCache is a small exact-match LRU keyed by (HGen, free set). The key
// comparison is the full index-set equality, never a hash, so a hit can only
// return the factor of the exact matrix the caller would have factored.
type factorCache struct {
	entries []factorEntry
	n       int // entry buffers are pre-sized for n-variable problems
	clock   uint64
	stats   CacheStats
}

// grow pre-sizes every entry's key and factor buffers for n-variable
// problems and clears the cache if it was sized smaller. Pre-sizing makes
// insert allocation-free: while the active set re-converges after a
// disturbance it inserts a factor per candidate free set, and letting those
// inserts grow buffers on demand would put heap churn on the solver's
// steady-state path (and on the event engine's span-replanning ticks).
func (c *factorCache) grow(n int) {
	if n <= c.n {
		return
	}
	c.n = n
	c.entries = make([]factorEntry, 0, factorCacheCap)
	for i := 0; i < factorCacheCap; i++ {
		c.entries = append(c.entries, factorEntry{
			free: make([]int, 0, n),
			fac:  make([]float64, 0, n*n),
		})
	}
	c.entries = c.entries[:0]
}

// lookup returns the cached factor for (hgen, free), or nil.
func (c *factorCache) lookup(hgen uint64, free []int) []float64 {
	for i := range c.entries {
		e := &c.entries[i]
		if e.hgen != hgen || len(e.free) != len(free) {
			continue
		}
		match := true
		for j, f := range free {
			if e.free[j] != f {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		c.clock++
		e.used = c.clock
		c.stats.Hits++
		return e.fac
	}
	c.stats.Misses++
	return nil
}

// insert stores a copy of the m×m factor under (hgen, free), evicting the
// least-recently-used entry when the cache is full. Evicted entries donate
// their buffers, so a steady-state mix of repeating keys inserts nothing and
// allocates nothing.
func (c *factorCache) insert(hgen uint64, free []int, fac []float64) {
	var e *factorEntry
	if len(c.entries) < cap(c.entries) {
		// grow pre-sized the backing array: re-extend over an entry whose
		// buffers are already allocated at full capacity.
		c.entries = c.entries[:len(c.entries)+1]
		e = &c.entries[len(c.entries)-1]
	} else if len(c.entries) < factorCacheCap {
		c.entries = append(c.entries, factorEntry{})
		e = &c.entries[len(c.entries)-1]
	} else {
		e = &c.entries[0]
		for i := 1; i < len(c.entries); i++ {
			if c.entries[i].used < e.used {
				e = &c.entries[i]
			}
		}
		c.stats.Evictions++
	}
	e.hgen = hgen
	e.free = append(e.free[:0], free...)
	e.fac = append(e.fac[:0], fac...)
	c.clock++
	e.used = c.clock
}

// NewWorkspace returns a workspace for n-variable problems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// ensure (re)sizes the buffers for an n-variable problem.
func (w *Workspace) ensure(n int) {
	if len(w.x) == n && w.chol != nil {
		return
	}
	w.x = mathx.NewVector(n)
	w.grad = mathx.NewVector(n)
	w.scratch = mathx.NewVector(n)
	w.y = mathx.NewVector(n)
	w.chol = mathx.NewMatrix(n, n)
	w.free = make([]int, 0, n)
	w.pinned = make([]bool, n)
	w.subH = make([]float64, n*n)
	w.subB = make([]float64, n)
	w.factors.grow(n)
}

const (
	defaultMaxSweeps = 500
	defaultTol       = 1e-9
)

var (
	// ErrDimension reports inconsistent problem dimensions.
	ErrDimension = errors.New("qp: inconsistent problem dimensions")
	// ErrBounds reports lo[i] > hi[i] for some i.
	ErrBounds = errors.New("qp: lower bound exceeds upper bound")
	// ErrNotConvex reports a non-positive diagonal element of H.
	ErrNotConvex = errors.New("qp: H has a non-positive diagonal element")
)

// Validate checks the problem for structural errors.
func (p Problem) Validate() error {
	n := len(p.G)
	if p.H == nil || p.H.Rows() != n || p.H.Cols() != n || len(p.Lo) != n || len(p.Hi) != n {
		return fmt.Errorf("%w: n=%d H=%v lo=%d hi=%d", ErrDimension, n, shape(p.H), len(p.Lo), len(p.Hi))
	}
	for i := 0; i < n; i++ {
		if p.Lo[i] > p.Hi[i] {
			return fmt.Errorf("%w: index %d (%g > %g)", ErrBounds, i, p.Lo[i], p.Hi[i])
		}
		if p.H.At(i, i) <= 0 {
			return fmt.Errorf("%w: index %d (%g)", ErrNotConvex, i, p.H.At(i, i))
		}
	}
	return nil
}

func shape(m *mathx.Matrix) string {
	if m == nil {
		return "nil"
	}
	return fmt.Sprintf("%dx%d", m.Rows(), m.Cols())
}

// Objective evaluates ½xᵀHx + gᵀx.
func (p Problem) Objective(x mathx.Vector) float64 {
	hx := p.H.MulVec(x)
	return 0.5*x.Dot(hx) + p.G.Dot(x)
}

// objectiveWith evaluates the objective using scratch for H·x (no allocation).
func (p Problem) objectiveWith(x, scratch mathx.Vector) float64 {
	hx := p.H.MulVecInto(scratch, x)
	return 0.5*x.Dot(hx) + p.G.Dot(x)
}

// Gradient evaluates Hx + g.
func (p Problem) Gradient(x mathx.Vector) mathx.Vector {
	grad := p.H.MulVec(x)
	grad.AXPY(1, p.G)
	return grad
}

// gradientInto evaluates dst = Hx + g without allocating.
func (p Problem) gradientInto(dst, x mathx.Vector) mathx.Vector {
	p.H.MulVecInto(dst, x)
	dst.AXPY(1, p.G)
	return dst
}

// KKTResidual returns the maximum violation of the first-order optimality
// conditions for the box-constrained problem at x: at a lower bound the
// gradient may be positive, at an upper bound negative, and in the interior
// it must vanish.
func (p Problem) KKTResidual(x mathx.Vector) float64 {
	return p.residualAt(x, p.Gradient(x))
}

// residualAt evaluates the KKT residual at x given grad = Hx + g.
func (p Problem) residualAt(x, grad mathx.Vector) float64 {
	var r float64
	for i, gi := range grad {
		var v float64
		switch {
		case x[i] <= p.Lo[i]:
			v = math.Max(0, -gi) // must be ≥ 0 to be optimal
		case x[i] >= p.Hi[i]:
			v = math.Max(0, gi) // must be ≤ 0 to be optimal
		default:
			v = math.Abs(gi)
		}
		if v > r {
			r = v
		}
	}
	return r
}

// Solve minimizes the problem. The returned Result is valid even when
// Converged is false (best iterate so far); an error is returned only for
// structurally invalid problems.
func Solve(p Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = defaultMaxSweeps
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = defaultTol
	}
	// Scale the tolerance to the problem so watts-sized and
	// gigahertz-sized formulations behave alike.
	scale := 1 + p.G.NormInf()
	tol *= scale

	n := len(p.G)
	if n == 0 {
		return Result{X: mathx.Vector{}, Converged: true}, nil
	}
	if len(opt.Warm) != 0 && len(opt.Warm) != n {
		return Result{}, fmt.Errorf("%w: warm start has %d elements for n=%d", ErrDimension, len(opt.Warm), n)
	}
	if opt.Ws != nil || len(opt.Warm) > 0 {
		return solveFast(p, opt, maxSweeps, tol)
	}
	return solveLegacy(p, opt, maxSweeps, tol)
}

// solveLegacy is the original cold solver, kept bit-exact for callers that
// pass no warm start and no workspace.
func solveLegacy(p Problem, _ Options, maxSweeps int, tol float64) (Result, error) {
	// Fast path: unconstrained minimizer, if it respects the box.
	if x, err := p.H.SolveSPD(p.G.Scale(-1)); err == nil {
		inBox := true
		for i := range x {
			if x[i] < p.Lo[i]-1e-12 || x[i] > p.Hi[i]+1e-12 {
				inBox = false
				break
			}
		}
		if inBox {
			x.Clamp(p.Lo, p.Hi)
			return Result{X: x, Objective: p.Objective(x), Converged: true}, nil
		}
	}

	// Projected cyclic coordinate descent. Maintain grad = Hx + g
	// incrementally: an update Δ to x_i adds Δ·H[:,i] to the gradient.
	x := p.Lo.Clone()
	// Start from the projection of 0.
	for i := range x {
		x[i] = math.Min(math.Max(0, p.Lo[i]), p.Hi[i])
	}
	grad := p.Gradient(x)

	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		maxMove := sweepOnce(p, x, grad)
		if p.KKTResidual(x) <= tol {
			return Result{X: x, Objective: p.Objective(x), Sweeps: sweeps + 1, Converged: true}, nil
		}
		if maxMove == 0 {
			break // stationary but KKT above tol: numerical floor reached
		}
	}
	return Result{
		X:         x,
		Objective: p.Objective(x),
		Sweeps:    sweeps,
		Converged: p.KKTResidual(x) <= tol*10,
	}, nil
}

// solveFast is the hot-path solver: allocation-free with a workspace,
// optionally warm-started, converging on the incrementally maintained
// gradient with an exact verification before any solution is accepted.
func solveFast(p Problem, opt Options, maxSweeps int, tol float64) (Result, error) {
	n := len(p.G)
	ws := opt.Ws
	if ws == nil {
		ws = NewWorkspace(n)
	}
	ws.ensure(n)
	x := ws.x

	// The unconstrained Cholesky shortcut is the best opening move even
	// with a warm point: when the box is inactive it is exact in O(n³),
	// while coordinate descent on the rank-one-coupled MPC Hessian can
	// need hundreds of O(n²) sweeps.
	for i := range ws.scratch {
		ws.scratch[i] = -p.G[i]
	}
	if err := p.H.CholeskyInto(ws.chol); err == nil {
		mathx.SolveCholeskyInto(ws.chol, ws.scratch, ws.y, x)
		inBox := true
		for i := range x {
			if x[i] < p.Lo[i]-1e-12 || x[i] > p.Hi[i]+1e-12 {
				inBox = false
				break
			}
		}
		if inBox {
			x.Clamp(p.Lo, p.Hi)
			return Result{X: x, Objective: p.objectiveWith(x, ws.scratch), Converged: true}, nil
		}
	}
	// Box-constrained: run the primal active-set solver, seeded from the
	// warm point when given (its bound pattern is near the optimal active
	// set on a re-solve), else from the projection of 0 as in the legacy
	// path.
	if len(opt.Warm) != 0 {
		copy(x, opt.Warm)
		x.Clamp(p.Lo, p.Hi)
	} else {
		for i := range x {
			x[i] = math.Min(math.Max(0, p.Lo[i]), p.Hi[i])
		}
	}

	res, asIters, ok := solveActiveSet(p, ws, x, tol, opt.HGen)
	if ok {
		return res, nil
	}

	// Robustness fallback: projected coordinate descent from wherever the
	// active-set solver stopped (it never moves x uphill, so the iterate
	// is a valid descent seed). This path only runs on numerically
	// degenerate problems the factorization cannot handle.
	grad := p.gradientInto(ws.grad, x)
	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		maxMove := sweepOnce(p, x, grad)
		// Cheap O(n) convergence test on the maintained gradient; only
		// when it passes do we pay the O(n²) exact recomputation, which
		// both confirms optimality and resets any incremental drift.
		if p.residualAt(x, grad) <= tol {
			grad = p.gradientInto(ws.grad, x)
			if p.residualAt(x, grad) <= tol {
				return Result{X: x, Objective: p.objectiveWith(x, ws.scratch), Sweeps: asIters + sweeps + 1, Converged: true}, nil
			}
		}
		if maxMove == 0 {
			break // stationary but KKT above tol: numerical floor reached
		}
	}
	grad = p.gradientInto(ws.grad, x)
	return Result{
		X:         x,
		Objective: p.objectiveWith(x, ws.scratch),
		Sweeps:    asIters + sweeps,
		Converged: p.residualAt(x, grad) <= tol*10,
	}, nil
}

// activeSetIterCap bounds primal active-set iterations for an n-variable
// problem. In the non-degenerate case the solver needs at most one
// iteration per active-set change plus one final full step, so 3n+16 is
// generous; hitting the cap triggers the coordinate-descent fallback.
func activeSetIterCap(n int) int { return 3*n + 16 }

// solveActiveSet minimizes the box-constrained QP by primal active-set
// Newton iterations starting from the feasible seed in x (modified in
// place). Each iteration factors the free-variable block H_FF and takes
// the Newton step −H_FF⁻¹·g_F, truncated at the first blocking bound
// (which joins the working set); after a full step, the pinned coordinate
// with the most negative Lagrange multiplier is released. The working set
// is initialized from the seed's bound pattern, which is why a warm start
// converges in O(1) iterations: the previous period's solution already
// pins (almost) the right coordinates.
//
// Returns ok=false — with the number of iterations spent — when the
// subproblem factorization fails or the iteration cap is hit; x then holds
// the best iterate for the caller's fallback.
//
// When hgen is non-zero (Options.HGen), each free-block factor is looked up
// in — and on a miss inserted into — the workspace's factor cache, so a
// repeated working set under an unchanged H pays only the O(m²) gather of
// the right-hand side and back-substitution.
func solveActiveSet(p Problem, ws *Workspace, x mathx.Vector, tol float64, hgen uint64) (Result, int, bool) {
	n := len(x)
	pin := ws.pinned
	for i := 0; i < n; i++ {
		pin[i] = x[i] <= p.Lo[i] || x[i] >= p.Hi[i]
	}
	for iter := 0; iter < activeSetIterCap(n); iter++ {
		grad := p.gradientInto(ws.grad, x)
		if p.residualAt(x, grad) <= tol {
			return Result{X: x, Objective: p.objectiveWith(x, ws.scratch), Sweeps: iter, Converged: true}, iter, true
		}

		free := ws.free[:0]
		for i := 0; i < n; i++ {
			if !pin[i] {
				free = append(free, i)
			}
		}
		m := len(free)
		blocked := false
		if m > 0 {
			subB := ws.subB[:m]
			for a, i := range free {
				subB[a] = -grad[i]
			}
			var fac []float64
			if hgen != 0 {
				fac = ws.factors.lookup(hgen, free)
			}
			if fac == nil {
				subH := ws.subH[:m*m]
				for a, i := range free {
					row := p.H.Row(i)
					for b, j := range free {
						subH[a*m+b] = row[j]
					}
				}
				if !cholFactorInPlace(subH, m) {
					return Result{}, iter, false // not SPD on the free block: fall back
				}
				if hgen != 0 {
					ws.factors.insert(hgen, free, subH)
				}
				fac = subH
			}
			cholBacksubInPlace(fac, subB, m)
			// Truncate the Newton step at the first bound crossing.
			alpha, blk, blkAt := 1.0, -1, 0.0
			for a, i := range free {
				d := subB[a]
				if d > 0 && x[i]+d > p.Hi[i] {
					if s := (p.Hi[i] - x[i]) / d; s < alpha {
						alpha, blk, blkAt = s, i, p.Hi[i]
					}
				} else if d < 0 && x[i]+d < p.Lo[i] {
					if s := (p.Lo[i] - x[i]) / d; s < alpha {
						alpha, blk, blkAt = s, i, p.Lo[i]
					}
				}
			}
			for a, i := range free {
				xi := x[i] + alpha*subB[a]
				if xi < p.Lo[i] {
					xi = p.Lo[i]
				} else if xi > p.Hi[i] {
					xi = p.Hi[i]
				}
				x[i] = xi
			}
			if blk >= 0 {
				x[blk] = blkAt // land exactly on the blocking bound
				pin[blk] = true
				blocked = true
			}
		}
		if blocked {
			continue
		}
		// Full step taken (the free block is at its equality-constrained
		// optimum): release the pinned coordinate whose multiplier says
		// the bound is not binding. Releasing only after a full step is
		// what prevents active-set cycling.
		grad = p.gradientInto(ws.grad, x)
		worst, worstI := tol, -1
		for i := 0; i < n; i++ {
			if !pin[i] || p.Lo[i] >= p.Hi[i] {
				continue
			}
			var v float64
			if x[i] <= p.Lo[i] {
				v = -grad[i] // at lower bound, optimality needs grad ≥ 0
			} else {
				v = grad[i] // at upper bound, optimality needs grad ≤ 0
			}
			if v > worst {
				worst, worstI = v, i
			}
		}
		if worstI < 0 {
			// All multipliers optimal and the free gradient vanished by
			// construction; confirm with the exact residual.
			if p.residualAt(x, grad) <= tol {
				return Result{X: x, Objective: p.objectiveWith(x, ws.scratch), Sweeps: iter + 1, Converged: true}, iter + 1, true
			}
			return Result{}, iter + 1, false // residual floor: fall back
		}
		pin[worstI] = false
	}
	return Result{}, activeSetIterCap(n), false
}

// cholSolveInPlace factors the m×m row-major SPD matrix a in place
// (lower-triangular Cholesky) and overwrites b with the solution of the
// original system a·x = b. Returns false if a is not numerically SPD.
func cholSolveInPlace(a, b []float64, m int) bool {
	if !cholFactorInPlace(a, m) {
		return false
	}
	cholBacksubInPlace(a, b, m)
	return true
}

// cholFactorInPlace overwrites the lower triangle of the m×m row-major SPD
// matrix a with its Cholesky factor L (a = L·Lᵀ). Returns false if a is not
// numerically SPD. The factorization is deterministic: bit-identical input
// yields a bit-identical factor, which is what makes caching factors across
// solves exact rather than approximate.
func cholFactorInPlace(a []float64, m int) bool {
	for j := 0; j < m; j++ {
		d := a[j*m+j]
		for k := 0; k < j; k++ {
			d -= a[j*m+k] * a[j*m+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		d = math.Sqrt(d)
		a[j*m+j] = d
		for i := j + 1; i < m; i++ {
			s := a[i*m+j]
			for k := 0; k < j; k++ {
				s -= a[i*m+k] * a[j*m+k]
			}
			a[i*m+j] = s / d
		}
	}
	return true
}

// cholBacksubInPlace overwrites b with the solution of (L·Lᵀ)·x = b given
// the factor L in the lower triangle of a (as left by cholFactorInPlace).
// It only reads a.
func cholBacksubInPlace(a, b []float64, m int) {
	for i := 0; i < m; i++ { // forward: L·y = b
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*m+k] * b[k]
		}
		b[i] = s / a[i*m+i]
	}
	for i := m - 1; i >= 0; i-- { // backward: Lᵀ·x = y
		s := b[i]
		for k := i + 1; k < m; k++ {
			s -= a[k*m+i] * b[k]
		}
		b[i] = s / a[i*m+i]
	}
}

// sweepOnce performs one cyclic projected coordinate-descent sweep over x,
// maintaining grad = Hx + g incrementally, and returns the largest
// coordinate move of the sweep.
func sweepOnce(p Problem, x, grad mathx.Vector) float64 {
	var maxMove float64
	for i := range x {
		hii := p.H.At(i, i)
		xi := x[i] - grad[i]/hii
		if xi < p.Lo[i] {
			xi = p.Lo[i]
		} else if xi > p.Hi[i] {
			xi = p.Hi[i]
		}
		d := xi - x[i]
		if d == 0 {
			continue
		}
		x[i] = xi
		// grad += d * H[:,i] (H symmetric, so use row i).
		grad.AXPY(d, p.H.Row(i))
		if a := math.Abs(d); a > maxMove {
			maxMove = a
		}
	}
	return maxMove
}
