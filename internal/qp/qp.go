// Package qp solves the box-constrained convex quadratic programs that arise
// from SprintCon's model-predictive server power controller (paper Eq. 8–9):
//
//	minimize   ½·xᵀHx + gᵀx
//	subject to lo ≤ x ≤ hi   (element-wise)
//
// H must be symmetric positive definite (the MPC cost is strictly convex
// because the control-penalty weights are strictly positive). The solver
// first tries the unconstrained Cholesky solution; if it violates the box it
// falls back to cyclic projected coordinate descent, which converges to the
// unique minimizer for strictly convex quadratics. Problem sizes here are at
// most a few hundred variables (one per batch CPU core on the rack).
package qp

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/mathx"
)

// Problem describes a box-constrained quadratic program.
type Problem struct {
	H  *mathx.Matrix // symmetric positive definite cost matrix
	G  mathx.Vector  // linear cost term
	Lo mathx.Vector  // element-wise lower bounds
	Hi mathx.Vector  // element-wise upper bounds
}

// Options controls solver effort.
type Options struct {
	// MaxSweeps bounds the number of full coordinate-descent sweeps.
	// Zero selects the default (500).
	MaxSweeps int
	// Tol is the KKT residual tolerance. Zero selects the default (1e-9,
	// scaled by the magnitude of the gradient).
	Tol float64
}

// Result reports the solution of a Problem.
type Result struct {
	X         mathx.Vector // minimizer
	Objective float64      // ½xᵀHx + gᵀx at X
	Sweeps    int          // coordinate-descent sweeps used (0 if unconstrained shortcut hit)
	Converged bool         // KKT residual below tolerance
}

const (
	defaultMaxSweeps = 500
	defaultTol       = 1e-9
)

var (
	// ErrDimension reports inconsistent problem dimensions.
	ErrDimension = errors.New("qp: inconsistent problem dimensions")
	// ErrBounds reports lo[i] > hi[i] for some i.
	ErrBounds = errors.New("qp: lower bound exceeds upper bound")
	// ErrNotConvex reports a non-positive diagonal element of H.
	ErrNotConvex = errors.New("qp: H has a non-positive diagonal element")
)

// Validate checks the problem for structural errors.
func (p Problem) Validate() error {
	n := len(p.G)
	if p.H == nil || p.H.Rows() != n || p.H.Cols() != n || len(p.Lo) != n || len(p.Hi) != n {
		return fmt.Errorf("%w: n=%d H=%v lo=%d hi=%d", ErrDimension, n, shape(p.H), len(p.Lo), len(p.Hi))
	}
	for i := 0; i < n; i++ {
		if p.Lo[i] > p.Hi[i] {
			return fmt.Errorf("%w: index %d (%g > %g)", ErrBounds, i, p.Lo[i], p.Hi[i])
		}
		if p.H.At(i, i) <= 0 {
			return fmt.Errorf("%w: index %d (%g)", ErrNotConvex, i, p.H.At(i, i))
		}
	}
	return nil
}

func shape(m *mathx.Matrix) string {
	if m == nil {
		return "nil"
	}
	return fmt.Sprintf("%dx%d", m.Rows(), m.Cols())
}

// Objective evaluates ½xᵀHx + gᵀx.
func (p Problem) Objective(x mathx.Vector) float64 {
	hx := p.H.MulVec(x)
	return 0.5*x.Dot(hx) + p.G.Dot(x)
}

// Gradient evaluates Hx + g.
func (p Problem) Gradient(x mathx.Vector) mathx.Vector {
	grad := p.H.MulVec(x)
	grad.AXPY(1, p.G)
	return grad
}

// KKTResidual returns the maximum violation of the first-order optimality
// conditions for the box-constrained problem at x: at a lower bound the
// gradient may be positive, at an upper bound negative, and in the interior
// it must vanish.
func (p Problem) KKTResidual(x mathx.Vector) float64 {
	grad := p.Gradient(x)
	var r float64
	for i, gi := range grad {
		var v float64
		switch {
		case x[i] <= p.Lo[i]:
			v = math.Max(0, -gi) // must be ≥ 0 to be optimal
		case x[i] >= p.Hi[i]:
			v = math.Max(0, gi) // must be ≤ 0 to be optimal
		default:
			v = math.Abs(gi)
		}
		if v > r {
			r = v
		}
	}
	return r
}

// Solve minimizes the problem. The returned Result is valid even when
// Converged is false (best iterate so far); an error is returned only for
// structurally invalid problems.
func Solve(p Problem, opt Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	maxSweeps := opt.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = defaultMaxSweeps
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = defaultTol
	}
	// Scale the tolerance to the problem so watts-sized and
	// gigahertz-sized formulations behave alike.
	scale := 1 + p.G.NormInf()
	tol *= scale

	n := len(p.G)
	if n == 0 {
		return Result{X: mathx.Vector{}, Converged: true}, nil
	}

	// Fast path: unconstrained minimizer, if it respects the box.
	if x, err := p.H.SolveSPD(p.G.Scale(-1)); err == nil {
		inBox := true
		for i := range x {
			if x[i] < p.Lo[i]-1e-12 || x[i] > p.Hi[i]+1e-12 {
				inBox = false
				break
			}
		}
		if inBox {
			x.Clamp(p.Lo, p.Hi)
			return Result{X: x, Objective: p.Objective(x), Converged: true}, nil
		}
	}

	// Projected cyclic coordinate descent. Maintain grad = Hx + g
	// incrementally: an update Δ to x_i adds Δ·H[:,i] to the gradient.
	x := p.Lo.Clone()
	// Start from the box-projected unconstrained guess when available,
	// otherwise from the projection of 0.
	for i := range x {
		x[i] = math.Min(math.Max(0, p.Lo[i]), p.Hi[i])
	}
	grad := p.Gradient(x)

	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		var maxMove float64
		for i := 0; i < n; i++ {
			hii := p.H.At(i, i)
			xi := x[i] - grad[i]/hii
			if xi < p.Lo[i] {
				xi = p.Lo[i]
			} else if xi > p.Hi[i] {
				xi = p.Hi[i]
			}
			d := xi - x[i]
			if d == 0 {
				continue
			}
			x[i] = xi
			// grad += d * H[:,i] (H symmetric, so use row i).
			grad.AXPY(d, p.H.Row(i))
			if a := math.Abs(d); a > maxMove {
				maxMove = a
			}
		}
		if p.KKTResidual(x) <= tol {
			return Result{X: x, Objective: p.Objective(x), Sweeps: sweeps + 1, Converged: true}, nil
		}
		if maxMove == 0 {
			break // stationary but KKT above tol: numerical floor reached
		}
	}
	return Result{
		X:         x,
		Objective: p.Objective(x),
		Sweeps:    sweeps,
		Converged: p.KKTResidual(x) <= tol*10,
	}, nil
}
