package experiments

import (
	"fmt"
	"math"

	"sprintcon/internal/cluster"
	"sprintcon/internal/faults"
)

// partitionRow is one network condition of the E19 matrix.
type partitionRow struct {
	Label string
	Plan  faults.Plan
	// HealS is when the last connectivity fault clears (for the re-entry
	// latency note); NaN for rows with no partition.
	HealS float64
	// Rack is the partitioned rack for single-rack rows, -1 otherwise.
	Rack int
}

// PartitionRows returns the E19 network conditions. The sustained single-rack
// partition starts before the first overload window so the coordinator
// repacks the missing rack's slot while the naive client still holds a grant
// for it — the collision the lease discipline exists to prevent.
func PartitionRows() []partitionRow {
	return []partitionRow{
		{"clean", faults.Plan{}, math.NaN(), -1},
		{"loss-30", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkLoss, OnsetS: 0, DurationS: 900, Severity: 0.3},
		}}, math.NaN(), -1},
		{"loss-30+delay-3", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkLoss, OnsetS: 0, DurationS: 900, Severity: 0.3},
			{Kind: faults.LinkDelay, OnsetS: 0, DurationS: 900, Severity: 3},
		}}, math.NaN(), -1},
		{"partition-r0-690s", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkPartition, Server: 0, OnsetS: 10, DurationS: 690, Severity: 1},
		}}, 700, 0},
		{"partition-all-300s", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkPartition, Server: faults.AllRacks, OnsetS: 100, DurationS: 300, Severity: 1},
		}}, 400, -1},
		{"coord-crash-60s", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.CoordinatorCrash, OnsetS: 200, DurationS: 60, Severity: 1},
		}}, 260, -1},
	}
}

// PartitionMatrix is experiment E19: every network condition runs the default
// four-rack feeder group twice — once with the lease-disciplined link client,
// once with the naive always-trust-last-grant strawman that keeps sprinting
// on whatever grant it last heard. The table reports feeder exceedance,
// feeder and rack breaker trips, degraded-mode seconds and re-sync counts per
// (condition, client) pair. The headline claims, asserted by tests: under a
// sustained partition the naive client over-subscribes the feeder (exceedance
// or trips) while the lease client records zero trips and negligible
// exceedance on every row, and a healed rack re-enters coordinated sprinting
// within one control period of the heal.
func PartitionMatrix() (*Table, error) {
	t := &Table{
		ID:      "e19",
		Title:   "partition matrix: network faults vs link client (4 racks, 15-min sprint)",
		Columns: []string{"condition", "client", "exceed_frac", "feeder_trips", "cb_trips", "degraded_s", "resyncs"},
	}
	naiveBroken := false
	leaseClean := true
	for _, r := range PartitionRows() {
		for _, naive := range []bool{false, true} {
			cfg := cluster.DefaultConfig()
			cfg.Link.Enabled = true
			cfg.Link.NaiveTrustLastGrant = naive
			cfg.Scenario.Faults = r.Plan
			res, err := cluster.RunLinked(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: partition matrix %s: %w", r.Label, err)
			}
			name := "lease"
			if naive {
				name = "naive"
			}
			t.AddRow(r.Label, name, res.FeederExceedFrac, res.FeederTrips,
				res.CBTrips, res.DegradedS(), res.Resyncs())

			if naive && r.Rack == 0 && (res.FeederExceedFrac > 0.02 || res.FeederTrips > 0) {
				naiveBroken = true
			}
			if !naive {
				if res.FeederTrips > 0 || res.CBTrips > 0 || res.FeederExceedFrac > 0.01 {
					leaseClean = false
				}
				if r.Rack >= 0 && !math.IsNaN(r.HealS) {
					c := res.Clients[r.Rack]
					period := cfg.Link.Protocol.RefreshS
					if period == 0 {
						period = 4 // link.DefaultConfig refresh cadence
					}
					t.Notes = append(t.Notes, fmt.Sprintf(
						"%s: rack %d re-synced %.0f s after the heal (budget: one %g s control period + transit)",
						r.Label, r.Rack, c.LastResyncS-r.HealS, period))
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"lease client must show feeder_trips=0 and cb_trips=0 on every row",
		"naive client keeps overloading on its stale grant after the coordinator reassigns the slot — three concurrent overloads against a two-slot budget",
	)
	if naiveBroken && leaseClean {
		t.Notes = append(t.Notes, "confirmed: sustained partition breaks always-trust-last-grant while the lease ladder holds")
	}
	return t, nil
}
