package experiments

import (
	"testing"
)

func TestQoSComparisonShapes(t *testing.T) {
	tbl, err := QoSComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	lat := map[string]float64{}
	slo := map[string]float64{}
	for i, row := range tbl.Rows {
		lat[row[0]] = cell(t, tbl, i, 1)
		slo[row[0]] = cell(t, tbl, i, 3)
	}
	// SprintCon serves interactive at peak for the whole sprint: its
	// latency must beat every baseline's.
	for _, b := range []string{"SGCT", "SGCT-V1", "SGCT-V2"} {
		if lat["SprintCon"] >= lat[b] {
			t.Fatalf("SprintCon mean latency %v not below %s's %v", lat["SprintCon"], b, lat[b])
		}
	}
	// The throttling baselines violate the SLO far more often.
	if slo["SGCT-V1"] < 10*slo["SprintCon"]+0.01 {
		t.Fatalf("V1 SLO violations %v not well above SprintCon's %v", slo["SGCT-V1"], slo["SprintCon"])
	}
}

func TestBatteryProvisioningShapes(t *testing.T) {
	tbl, err := BatteryProvisioning()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 16 {
		t.Fatalf("rows = %d, want 4 capacities × 4 policies", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		if row[1] != "SprintCon" {
			continue
		}
		// SprintCon stays safe at every battery size, down to 100 Wh.
		if trips := cell(t, tbl, i, 2); trips != 0 {
			t.Fatalf("SprintCon tripped at %s Wh", row[0])
		}
		if outage := cell(t, tbl, i, 3); outage != 0 {
			t.Fatalf("SprintCon outage at %s Wh", row[0])
		}
	}
}

func TestBurstRegimesShapes(t *testing.T) {
	tbl, err := BurstRegimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		if trips := cell(t, tbl, i, 2); trips != 0 {
			t.Fatalf("burst %s tripped", row[0])
		}
		if fi := cell(t, tbl, i, 5); fi < 0.99 {
			t.Fatalf("burst %s: interactive %v not at peak", row[0], fi)
		}
	}
	// The short burst uses no UPS at all.
	if dod := cell(t, tbl, 0, 3); dod != 0 {
		t.Fatalf("45 s burst DoD = %v, want 0", dod)
	}
	// The long sprint extracts the most overload energy.
	long := cell(t, tbl, 3, 4)
	mid := cell(t, tbl, 2, 4)
	if long <= mid {
		t.Fatalf("periodic overload energy %v not above constant %v", long, mid)
	}
}

func TestSprintingBenefitShapes(t *testing.T) {
	tbl, err := SprintingBenefit()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	scMisses := cell(t, tbl, 0, 3)
	nsMisses := cell(t, tbl, 1, 3)
	if scMisses != 0 {
		t.Fatalf("SprintCon misses = %v", scMisses)
	}
	if nsMisses < 10 {
		t.Fatalf("no-sprint misses = %v, want many (the rack cannot fit the load)", nsMisses)
	}
	scInter := cell(t, tbl, 0, 1)
	nsInter := cell(t, tbl, 1, 1)
	if !(scInter > nsInter) {
		t.Fatalf("sprinting should buy interactive frequency: %v vs %v", scInter, nsInter)
	}
}

func TestDailyCostShapes(t *testing.T) {
	tbl, err := DailyCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	repl := map[string]float64{}
	total := map[string]float64{}
	for i, row := range tbl.Rows {
		repl[row[0]] = cell(t, tbl, i, 3)
		total[row[0]] = cell(t, tbl, i, 7)
	}
	if repl["SprintCon"] != 0 {
		t.Fatalf("SprintCon needs %v replacements, want 0", repl["SprintCon"])
	}
	if repl["SGCT-V1"] < 3 {
		t.Fatalf("V1 replacements %v, want ≥3 (paper: 3-4)", repl["SGCT-V1"])
	}
	for _, b := range []string{"SGCT", "SGCT-V1", "SGCT-V2"} {
		if total["SprintCon"] >= total[b] {
			t.Fatalf("SprintCon 10-year cost %v not below %s's %v", total["SprintCon"], b, total[b])
		}
	}
}
