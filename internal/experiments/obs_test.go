package experiments

import (
	"strconv"
	"testing"
)

// TestAlertCoverageClaims pins the observability acceptance claims: every
// E18 fault class and E19 network condition fires its expected detector
// within the latency budget, and the fault-free rows raise zero alerts.
func TestAlertCoverageClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full E18+E19 matrices")
	}
	tbl, err := AlertCoverage()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(FaultRows()) + len(PartitionRows())
	if len(tbl.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), wantRows)
	}
	const (
		colCase   = 0
		colExpect = 1
		colOK     = 5
		colAlerts = 6
	)
	for _, row := range tbl.Rows {
		if row[colOK] != "true" {
			t.Errorf("case %s (expect %s) failed its coverage row: %v", row[colCase], row[colExpect], row)
		}
		if row[colExpect] == "none" {
			n, err := strconv.Atoi(row[colAlerts])
			if err != nil {
				t.Fatalf("case %s alert count %q: %v", row[colCase], row[colAlerts], err)
			}
			if n != 0 {
				t.Errorf("fault-free case %s raised %d alerts — false positives", row[colCase], n)
			}
		}
	}
}

// TestExpectedDetectorMapping pins the fault-class → detector table so a
// renamed fault row cannot silently fall out of coverage.
func TestExpectedDetectorMapping(t *testing.T) {
	for _, r := range FaultRows() {
		if r.Label == "none" {
			if expectedDetector(r.Label) != "" {
				t.Fatal("fault-free row must expect no detector")
			}
			continue
		}
		if expectedDetector(r.Label) == "" {
			t.Errorf("fault row %q maps to no detector — uncovered fault class", r.Label)
		}
	}
}
