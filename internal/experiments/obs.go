package experiments

import (
	"fmt"
	"math"
	"strings"

	"sprintcon/internal/cluster"
	"sprintcon/internal/core"
	"sprintcon/internal/obs"
	"sprintcon/internal/sim"
)

// detectBudgetS is the alert-latency budget: every strict fault class must
// fire its expected detector within three control periods of fault onset.
const detectBudgetS = 3 * 4 // ControlPeriodS = 4

// expectedDetector maps an E18 fault label to the detector that must catch
// it: monitor faults collapse the measurement guard's confidence, actuator
// faults show up as locked cores or command-tracking error, UPS faults trip
// the delivery watchdog or the gauge-consistency check.
func expectedDetector(label string) string {
	switch {
	case label == "none":
		return ""
	case strings.HasPrefix(label, "monitor-"), label == "measurement-delay":
		return obs.DetectorSensor
	case strings.HasPrefix(label, "actuator-"), label == "server-crash":
		return obs.DetectorActuator
	case strings.HasPrefix(label, "ups-"):
		return obs.DetectorUPS
	}
	return ""
}

// firstExceed returns the first time ≥ fromS the series rises above thresh
// (NaN if it never does).
func firstExceed(series []float64, dt, fromS, thresh float64) float64 {
	for i, v := range series {
		if t := float64(i) * dt; t >= fromS && v > thresh {
			return t
		}
	}
	return math.NaN()
}

// firstMove returns the first time ≥ fromS the series moves by more than eps
// from one sample to the next (NaN if it never does).
func firstMove(series []float64, dt, fromS, eps float64) float64 {
	for i := 1; i < len(series); i++ {
		if t := float64(i) * dt; t >= fromS && math.Abs(series[i]-series[i-1]) > eps {
			return t
		}
	}
	return math.NaN()
}

// firstSwing returns the first time ≥ fromS the series differs by more than
// thresh from its value lagS earlier (NaN if it never does).
func firstSwing(series []float64, dt, fromS, lagS, thresh float64) float64 {
	lag := int(lagS / dt)
	for i := lag; i < len(series); i++ {
		if t := float64(i) * dt; t >= fromS && math.Abs(series[i]-series[i-lag]) > thresh {
			return t
		}
	}
	return math.NaN()
}

// firstEnergy returns the first time ≥ fromS the series (watts) has
// integrated to energyWs watt-seconds since fromS (NaN if it never does).
func firstEnergy(series []float64, dt, fromS, energyWs float64) float64 {
	var acc float64
	for i, w := range series {
		if t := float64(i) * dt; t >= fromS {
			if acc += w * dt; acc >= energyWs {
				return t
			}
		}
	}
	return math.NaN()
}

// exerciseS returns when an E18 fault first becomes observable — several
// faults are latent at onset and only manifest once the plant exercises the
// faulted path. The detection-latency budget runs from this moment:
//
//   - a delayed power monitor reads exactly like a live one until total
//     power actually moves across the delay window;
//   - a stuck or lagging actuator tracks perfectly until the schedule
//     reallocates frequencies away from where it is pinned (small dither
//     moves may not touch the faulted core, so the marker is the first
//     substantial mean-frequency move);
//   - a high-reading SoC gauge is consistent with physics until the battery
//     has delivered enough energy for the impossible-trajectory bound to
//     exceed the drift threshold.
//
// Everything else (guard-visible monitor faults, offline servers, a dead
// UPS discharge path mid-overload) is observable at onset.
func exerciseS(label string, res *sim.Result, scn sim.Scenario, onsetS float64) float64 {
	s, dt, cfg := &res.Series, scn.DtS, obs.DefaultDetectorConfig()
	switch label {
	case "measurement-delay":
		// Severity 8 = readings lag by 8 s; the detector's model-gap
		// threshold is the swing that makes the lag visible.
		return firstSwing(s.TotalW, dt, onsetS, 8, cfg.SensorGapW)
	case "actuator-stuck", "actuator-lag":
		return firstMove(s.FreqBatch, dt, onsetS, 0.04)
	case "ups-gauge-high":
		return firstEnergy(s.UPSW, dt, onsetS, cfg.UPSGaugeDriftSoC*3600*scn.UPS.CapacityWh)
	}
	return onsetS
}

// firstAlert returns the earliest AtS among alerts from the named detector
// (NaN when it never fired).
func firstAlert(alerts []obs.Alert, detector string) float64 {
	at := math.NaN()
	for _, a := range alerts {
		if a.Detector == detector && (math.IsNaN(at) || a.AtS < at) {
			at = a.AtS
		}
	}
	return at
}

// addCoverageRow scores one case: for expect == "none" the run must be
// alert-free; otherwise the expected detector must fire by deadlineS.
func addCoverageRow(t *Table, label, expect string, alerts []obs.Alert, onsetS, deadlineS float64) bool {
	if expect == "" {
		ok := len(alerts) == 0
		t.AddRow(label, "none", "-", "-", "-", ok, len(alerts))
		return ok
	}
	at := firstAlert(alerts, expect)
	ok := !math.IsNaN(at) && at <= deadlineS
	fired := "-"
	if !math.IsNaN(at) {
		fired = fmt.Sprintf("%.0f", at)
	}
	t.AddRow(label, expect, fmt.Sprintf("%.0f", onsetS), fired,
		fmt.Sprintf("%.0f", deadlineS), ok, len(alerts))
	return ok
}

// AlertCoverage is the observability acceptance experiment: every E18 fault
// class and every E19 network condition runs with the observability plane
// attached, and the table reports whether the expected anomaly detector
// fired within the latency budget — three control periods of fault onset
// for deterministic faults, anywhere in the run for the probabilistic
// loss rows (a 30% loss only expires a lease when three consecutive refresh
// grants happen to drop). The fault-free rows must stay silent: the same
// thresholds that catch every fault raise zero alerts on a clean run.
func AlertCoverage() (*Table, error) {
	t := &Table{
		ID:      "obs",
		Title:   "alert coverage: fault classes vs anomaly detectors (hardened policy, 15-min sprint)",
		Columns: []string{"case", "expect", "onset_s", "fired_s", "deadline_s", "ok", "alerts"},
	}
	allOK := true

	// E18: single-rack plant/sensor/actuator faults under the hardened policy.
	for _, r := range FaultRows() {
		scn := sim.DefaultScenario()
		scn.Faults = r.Plan
		plane := obs.NewPlane(0, obs.DefaultDetectorConfig())
		res, err := sim.RunWith(scn, core.New(core.DefaultConfig()), sim.RunOptions{Obs: plane})
		if err != nil {
			return nil, fmt.Errorf("experiments: alert coverage %s: %w", r.Label, err)
		}
		var onset float64
		if len(r.Plan.Faults) > 0 {
			onset = r.Plan.Faults[0].OnsetS
		}
		deadline := exerciseS(r.Label, res, scn, onset) + detectBudgetS
		if !addCoverageRow(t, r.Label, expectedDetector(r.Label), plane.Alerts(), onset, deadline) {
			allOK = false
		}
	}

	// E19: network conditions on the linked cluster with the lease client.
	for _, r := range PartitionRows() {
		cfg := cluster.DefaultConfig()
		cfg.Link.Enabled = true
		cfg.Scenario.Faults = r.Plan
		oc := obs.NewCluster(cfg.NumRacks, obs.DefaultDetectorConfig())
		cfg.Link.Obs = oc
		if _, err := cluster.RunLinked(cfg); err != nil {
			return nil, fmt.Errorf("experiments: alert coverage %s: %w", r.Label, err)
		}
		var expect string
		var onset, deadline float64
		switch {
		case r.Label == "clean":
			// alert-free
		case strings.HasPrefix(r.Label, "loss-"):
			// Probabilistic: a lease only expires when three consecutive
			// refresh grants drop, so the latency budget is the whole run.
			expect = obs.DetectorRackDegraded
			onset = r.Plan.Faults[0].OnsetS
			deadline = cfg.Scenario.DurationS
		case strings.HasPrefix(r.Label, "partition-"):
			expect = obs.DetectorRackSilent
			onset = r.Plan.Faults[0].OnsetS
			deadline = onset + detectBudgetS
		default: // coordinator crash: racks degrade when their leases expire
			expect = obs.DetectorRackDegraded
			onset = r.Plan.Faults[0].OnsetS
			deadline = onset + detectBudgetS
		}
		if !addCoverageRow(t, r.Label, expect, oc.Alerts(), onset, deadline) {
			allOK = false
		}
	}

	t.Notes = append(t.Notes,
		"every row must show ok=true: detection within 3 control periods (12 s) of the fault becoming observable, loss rows within the run",
		"latent faults (delayed monitor, stuck/lagging actuator, high SoC gauge) start their budget at the first plant transient that exercises them, measured from the run's ground-truth series",
		"fault-free rows (none, clean) must report alerts=0 — the detector thresholds leave the clean sprint schedule silent",
	)
	if allOK {
		t.Notes = append(t.Notes, "confirmed: every fault class maps to its expected detector with zero false alerts")
	}
	return t, nil
}
