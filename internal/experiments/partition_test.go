package experiments

import (
	"strings"
	"testing"
)

// TestPartitionMatrixClaims pins the E19 acceptance claims: the lease client
// records zero feeder and breaker trips (and negligible exceedance) on every
// network condition, the naive always-trust-last-grant client over-subscribes
// the feeder under the sustained single-rack partition, and the partitioned
// rack re-enters coordinated sprinting within one control period of the heal.
func TestPartitionMatrixClaims(t *testing.T) {
	tbl, err := PartitionMatrix()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(PartitionRows()) * 2
	if len(tbl.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), wantRows)
	}
	naiveBroken := false
	for i, row := range tbl.Rows {
		condition, client := row[0], row[1]
		exceed := cell(t, tbl, i, 2)
		feederTrips := cell(t, tbl, i, 3)
		cbTrips := cell(t, tbl, i, 4)
		degraded := cell(t, tbl, i, 5)
		switch {
		case client == "lease":
			if feederTrips != 0 || cbTrips != 0 || exceed > 0.01 {
				t.Errorf("lease client unsafe under %s: exceed=%v feeder_trips=%v cb_trips=%v",
					condition, exceed, feederTrips, cbTrips)
			}
			if strings.HasPrefix(condition, "partition") && degraded == 0 {
				t.Errorf("lease client recorded no degraded time under %s; the ladder never engaged", condition)
			}
		case condition == "partition-r0-690s" && (exceed > 0.02 || feederTrips > 0):
			naiveBroken = true
		}
	}
	if !naiveBroken {
		t.Error("sustained partition did not break the naive client; the matrix must show the stale-grant over-subscription")
	}
	resyncNoted := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "re-synced") {
			resyncNoted = true
		}
	}
	if !resyncNoted {
		t.Error("matrix notes missing the re-sync latency measurement")
	}
}
