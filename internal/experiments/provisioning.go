package experiments

import (
	"fmt"

	"sprintcon/internal/core"
	"sprintcon/internal/qos"
	"sprintcon/internal/sim"
)

// BatteryProvisioning (extension E14) sweeps the UPS capacity to answer
// the provisioning question behind the paper's Section III motivation
// ("UPS batteries might be provisioned for only 5 minutes in some data
// centers"): how small a battery can each policy sprint on safely?
func BatteryProvisioning() (*Table, error) {
	capacities := []float64{100, 200, 400, 800} // Wh; paper default is 400
	t := &Table{
		ID:    "battery-provisioning",
		Title: "E14: UPS capacity sweep — how small a battery suffices?",
		Columns: []string{"capacity_wh", "policy", "cb_trips", "outage_s",
			"dod", "misses", "interactive_freq"},
	}
	var jobs []sim.Job
	for _, cap := range capacities {
		scn := sim.DefaultScenario()
		scn.UPS.CapacityWh = cap
		for _, p := range policies() {
			jobs = append(jobs, sim.Job{
				Key:      fmt.Sprintf("%s@%.0f", p.Name(), cap),
				Scenario: scn,
				Policy:   p,
			})
		}
	}
	res, err := sim.RunMany(jobs)
	if err != nil {
		return nil, err
	}
	for _, cap := range capacities {
		for _, name := range []string{"SprintCon", "SGCT", "SGCT-V1", "SGCT-V2"} {
			r := res[fmt.Sprintf("%s@%.0f", name, cap)]
			t.AddRow(cap, name, r.CBTrips, r.OutageS, r.UPSDoD,
				r.DeadlineMisses, r.AvgFreqInter)
		}
	}
	t.Notes = append(t.Notes,
		"SprintCon degrades gracefully on small batteries (supervisor falls back to CB-only power bidding, no outage)",
		"the baselines' fixed recovery-phase UPS dependence turns small batteries into depletion and, for SGCT, outage")
	return t, nil
}

// SprintingBenefit (extension E17) quantifies the paper's premise — what
// does sprinting buy over classic power capping at the breaker rating [8]?
// The no-sprint capper must fit interactive *and* batch under 3.2 kW, so it
// throttles interactive cores (latency) and starves batch work (deadlines).
func SprintingBenefit() (*Table, error) {
	t := &Table{
		ID:    "sprinting-benefit",
		Title: "E17: SprintCon vs no-sprint power capping at the rating",
		Columns: []string{"policy", "interactive_freq", "batch_freq", "misses",
			"time_use", "p99_latency_ms", "slo_viol_frac"},
	}
	scn := sim.DefaultScenario()
	qcfg := qos.DefaultConfig()
	for _, noSprint := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.NoSprint = noSprint
		res, err := sim.Run(scn, core.New(cfg))
		if err != nil {
			return nil, err
		}
		q, err := qcfg.Evaluate(res.Series.Demand, res.Series.FreqInter)
		if err != nil {
			return nil, err
		}
		t.AddRow(res.Policy, res.AvgFreqInter, res.AvgFreqBatch,
			res.DeadlineMisses, res.NormalizedTimeUse(), q.P99Ms, q.SLOViolFrac)
	}
	t.Notes = append(t.Notes,
		"the capped rack cannot fit peak-frequency interactive plus deadline-rate batch under the rating: something gives",
		"sprinting converts bounded breaker overload + battery energy into peak interactive service AND met deadlines")
	return t, nil
}

// EnergyEfficiency (extension E16) reframes the paper's "energy efficiency"
// claim as useful work per energy: batch work executed (peak-seconds),
// energy consumed, and UPS energy consumed, per policy. SprintCon does the
// *needed* work at the lowest energy — the baselines do more work than the
// deadlines require and burn battery for it.
func EnergyEfficiency() (*Table, error) {
	all, err := RunAll(sim.DefaultScenario())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "efficiency",
		Title: "E16: batch work versus energy spent",
		Columns: []string{"policy", "batch_work_peak_s", "total_energy_wh",
			"ups_energy_wh", "wh_per_100_peak_s", "ups_mwh_per_100_peak_s"},
	}
	for _, name := range []string{"SprintCon", "SGCT", "SGCT-V1", "SGCT-V2"} {
		r := all[name]
		perWork := r.EnergyTotalWh / r.BatchWorkDoneS * 100
		upsPerWork := r.UPSDischargedWh / r.BatchWorkDoneS * 100 * 1000
		t.AddRow(name, r.BatchWorkDoneS, r.EnergyTotalWh, r.UPSDischargedWh,
			perWork, upsPerWork)
	}
	t.Notes = append(t.Notes,
		"the baselines execute more batch work (they re-run completed jobs at high frequency) but pay for it in UPS energy: per unit work SprintCon draws ~2x less battery than V1/V2 and ~7x less than SGCT",
		"total energy per unit work mildly favors the baselines — the rack's idle floor amortizes over more work (race-to-idle) — but sprinting economics hinge on battery wear and peak shaping, not average energy")
	return t, nil
}

// BurstRegimes (extension E15) exercises the power load allocator's three
// T_burst regimes from paper Section IV-A: uncontrolled sub-minute bursts,
// one constant reduced-degree overload for 5–10 minute bursts, and the
// periodic schedule for longer sprints.
func BurstRegimes() (*Table, error) {
	t := &Table{
		ID:    "burst-regimes",
		Title: "E15: allocator behaviour across burst durations (Section IV-A)",
		Columns: []string{"burst_s", "regime", "cb_trips", "dod",
			"cb_overload_energy_wh", "interactive_freq"},
	}
	cases := []struct {
		dur    float64
		regime string
	}{
		{45, "uncontrolled"},
		{300, "constant safe overload"},
		{480, "constant safe overload"},
		{900, "periodic 1.25x150s/300s"},
	}
	for _, c := range cases {
		scn := sim.DefaultScenario()
		scn.DurationS = c.dur
		scn.BurstDurationS = c.dur
		scn.Interactive.BurstEndS = c.dur
		scn.BatchDeadlineS = c.dur * 0.95
		scn.WorkReferenceS = c.dur * 0.95
		scn.WorkFillMin, scn.WorkFillMax = 0.2, 0.35
		res, err := sim.Run(scn, core.New(core.DefaultConfig()))
		if err != nil {
			return nil, fmt.Errorf("burst %v: %w", c.dur, err)
		}
		t.AddRow(c.dur, c.regime, res.CBTrips, res.UPSDoD,
			res.EnergyCBOverWh, res.AvgFreqInter)
	}
	t.Notes = append(t.Notes,
		"short bursts ride the breaker's own tolerance with no UPS use",
		"medium bursts hold one reduced overload degree sized by the trip budget: τ(o) = Θ/(o²−1)",
		"long sprints alternate 1.25× overload with recovery — the paper's main regime")
	return t, nil
}
