package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow(1.23456, "hello")
	tbl.Notes = append(tbl.Notes, "a note")
	s := tbl.String()
	for _, want := range []string{"== x — demo ==", "1.235", "hello", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFig1PerWattSpeedupDecreases(t *testing.T) {
	tbl, err := Fig1PerWattSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 || len(tbl.Columns) != 7 {
		t.Fatalf("unexpected shape %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	// Paper Fig. 1: per-watt speedup at the top frequency is lower than
	// at a mid frequency for every workload.
	last := len(tbl.Rows) - 1
	for col := 1; col < len(tbl.Columns); col++ {
		mid := cell(t, tbl, 2, col) // 1.2 GHz
		top := cell(t, tbl, last, col)
		if top >= mid {
			t.Errorf("col %s: per-watt speedup should fall from mid %v to top %v",
				tbl.Columns[col], mid, top)
		}
	}
}

func TestFig2TripCurveDecreasing(t *testing.T) {
	tbl, err := Fig2TripCurve()
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for i := range tbl.Rows {
		v := cell(t, tbl, i, 1)
		if v >= prev {
			t.Fatalf("trip time not strictly decreasing at row %d", i)
		}
		prev = v
	}
}

func TestFig3PeriodicSprintSustainable(t *testing.T) {
	tbl, err := Fig3PeriodicSprint()
	if err != nil {
		t.Fatal(err) // the constructor itself fails on a trip
	}
	for i := range tbl.Rows {
		if frac := cell(t, tbl, i, 2); frac >= 1 {
			t.Fatalf("thermal fraction %v reached trip at row %d", frac, i)
		}
	}
}

func TestFig5UncontrolledFailureSequence(t *testing.T) {
	tbl, res, err := Fig5Uncontrolled()
	if err != nil {
		t.Fatal(err)
	}
	if res.CBTrips == 0 || res.OutageS == 0 {
		t.Fatalf("Fig 5 needs a trip and an outage: trips=%d outage=%v", res.CBTrips, res.OutageS)
	}
	if len(tbl.Rows) < 5 {
		t.Fatal("summary rows missing")
	}
	// First trip within the first overload window.
	if v := cell(t, tbl, 0, 1); v > 160 {
		t.Fatalf("first trip at %v s", v)
	}
	// UPS depleted mid-sprint, minutes 8-12 (paper: ~11).
	if v := cell(t, tbl, 1, 1); v < 8 || v > 12 {
		t.Fatalf("UPS depleted at %v min", v)
	}
}

func TestFig6PowerBehaviorShapes(t *testing.T) {
	tbl, all, err := Fig6PowerBehavior()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// SprintCon's total fluctuates more than the flat-budget baselines
	// (paper: V1/V2 totals "nearly flat").
	scStd := cell(t, tbl, 0, 4)
	v1Std := cell(t, tbl, 1, 4)
	if scStd <= v1Std {
		t.Fatalf("SprintCon total std %v should exceed V1's %v", scStd, v1Std)
	}
	// SprintCon uses far less UPS energy.
	scUPS := cell(t, tbl, 0, 3)
	v1UPS := cell(t, tbl, 1, 3)
	if scUPS >= v1UPS/2 {
		t.Fatalf("SprintCon UPS use %v not well below V1's %v", scUPS, v1UPS)
	}
	if all["SprintCon"].CBTrips != 0 {
		t.Fatal("SprintCon must not trip in Fig 6")
	}
}

func TestFig7OrderingsMatchPaper(t *testing.T) {
	tbl, err := Fig7FrequencyBehavior()
	if err != nil {
		t.Fatal(err)
	}
	inter := map[string]float64{}
	batch := map[string]float64{}
	for i, row := range tbl.Rows {
		inter[row[0]] = cell(t, tbl, i, 1)
		batch[row[0]] = cell(t, tbl, i, 2)
	}
	// Interactive: SprintCon ≥ V2 > V1 > SGCT (paper 1.00/0.94/0.84/0.64).
	if !(inter["SprintCon"] >= inter["SGCT-V2"] &&
		inter["SGCT-V2"] > inter["SGCT-V1"] &&
		inter["SGCT-V1"] > inter["SGCT"]) {
		t.Fatalf("interactive ordering wrong: %v", inter)
	}
	// Batch: V1 > V2 > SGCT > SprintCon (paper 0.91/0.84/0.71/0.59).
	if !(batch["SGCT-V1"] > batch["SGCT-V2"] &&
		batch["SGCT-V2"] > batch["SGCT"] &&
		batch["SGCT"] > batch["SprintCon"]) {
		t.Fatalf("batch ordering wrong: %v", batch)
	}
	if inter["SprintCon"] < 0.999 {
		t.Fatalf("SprintCon interactive %v, want peak", inter["SprintCon"])
	}
}

func TestFig8aAllMeetDeadlinesSprintConClosest(t *testing.T) {
	tbl, err := Fig8aTimeUse()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		sc := cell(t, tbl, i, 1)
		v1 := cell(t, tbl, i, 2)
		v2 := cell(t, tbl, i, 3)
		misses := cell(t, tbl, i, 4)
		if misses != 0 {
			t.Fatalf("row %d: %v deadline misses", i, misses)
		}
		for _, v := range []float64{sc, v1, v2} {
			if v > 1 {
				t.Fatalf("row %d: time use %v exceeds deadline", i, v)
			}
		}
		if !(sc > v1 && sc > v2) {
			t.Fatalf("row %d: SprintCon %v should use the most of its deadline (V1 %v, V2 %v)", i, sc, v1, v2)
		}
	}
}

func TestFig8bDoDOrderingAndTrend(t *testing.T) {
	tbl, err := Fig8bDoD()
	if err != nil {
		t.Fatal(err)
	}
	var scPrev = math.Inf(1)
	for i := range tbl.Rows {
		sc := cell(t, tbl, i, 1)
		sgct := cell(t, tbl, i, 2)
		v1 := cell(t, tbl, i, 3)
		v2 := cell(t, tbl, i, 4)
		if !(sc < v1 && sc < v2 && v1 < sgct && v2 < sgct) {
			t.Fatalf("row %d: DoD ordering wrong: sc=%v v1=%v v2=%v sgct=%v", i, sc, v1, v2, sgct)
		}
		if sgct < 0.95 {
			t.Fatalf("SGCT DoD %v, want near-full", sgct)
		}
		if sc > scPrev {
			t.Fatalf("SprintCon DoD should not grow with looser deadlines")
		}
		scPrev = sc
	}
}

func TestHeadlineClaims(t *testing.T) {
	tbl, err := Headline()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tbl.Rows {
		gain := cell(t, tbl, i, 1)
		sav := cell(t, tbl, i, 2)
		if gain < 0 {
			t.Fatalf("%s: negative capacity gain %v", row[0], gain)
		}
		if sav < 50 {
			t.Fatalf("%s: storage savings %v%%, want substantial", row[0], sav)
		}
	}
	// The paper's "up to 87 % less" lives in the SGCT comparison.
	if sav := cell(t, tbl, 0, 2); sav < 80 {
		t.Fatalf("savings vs SGCT = %v%%, want ≥80 (paper: up to 87)", sav)
	}
}

func TestAblationControllerMPCNoWorse(t *testing.T) {
	tbl, err := AblationController()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	mpcMisses := cell(t, tbl, 0, 4)
	piMisses := cell(t, tbl, 2, 4)
	if mpcMisses > piMisses {
		t.Fatalf("MPC misses %v > PI misses %v", mpcMisses, piMisses)
	}
	mpcOver := cell(t, tbl, 0, 2)
	if mpcOver > 0.05 {
		t.Fatalf("MPC overshoot %v, want near-zero", mpcOver)
	}
	// The full-horizon variant settles at least as fast as the
	// simplified one, with small overshoot.
	simpleSettle := cell(t, tbl, 0, 1)
	fullSettle := cell(t, tbl, 1, 1)
	if fullSettle > simpleSettle {
		t.Fatalf("full-horizon settles in %v > simplified %v", fullSettle, simpleSettle)
	}
	if over := cell(t, tbl, 1, 2); over > 0.05 {
		t.Fatalf("full-horizon overshoot %v", over)
	}
}

func TestAblationOverloadSchedule(t *testing.T) {
	tbl, err := AblationOverloadSchedule()
	if err != nil {
		t.Fatal(err)
	}
	// No schedule variant may trip.
	for i, row := range tbl.Rows {
		if trips := cell(t, tbl, i, 1); trips != 0 {
			t.Fatalf("%s tripped", row[0])
		}
	}
	// The periodic schedule extracts the most CB overload energy.
	periodic := cell(t, tbl, 0, 5)
	none := cell(t, tbl, 1, 5)
	if periodic <= none {
		t.Fatalf("periodic overload energy %v not above no-overload %v", periodic, none)
	}
}

func TestAblationUPSControl(t *testing.T) {
	tbl, err := AblationUPSControl()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		if trips := cell(t, tbl, i, 4); trips != 0 {
			t.Fatalf("%s tripped the breaker", row[0])
		}
	}
	// The paper-faithful structure violates the budget the least.
	ff := cell(t, tbl, 0, 1)
	pi := cell(t, tbl, 2, 1)
	if ff > pi {
		t.Fatalf("feedforward+trim over-budget %v worse than pure PI %v", ff, pi)
	}
}

func TestSensitivitySweepRuns(t *testing.T) {
	tbl, err := Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 3x3 sweep", len(tbl.Rows))
	}
	// The default tuning (period 4, τ 2) meets all deadlines.
	for i := range tbl.Rows {
		if cell(t, tbl, i, 0) == 4 && cell(t, tbl, i, 1) == 2 {
			if cell(t, tbl, i, 2) != 0 {
				t.Fatal("default tuning misses deadlines in the sweep")
			}
			return
		}
	}
	t.Fatal("default tuning missing from the sweep")
}
