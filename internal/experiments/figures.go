package experiments

import (
	"fmt"
	"math"

	"sprintcon/internal/baseline"
	"sprintcon/internal/breaker"
	"sprintcon/internal/core"
	"sprintcon/internal/cpu"
	"sprintcon/internal/server"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
	"sprintcon/internal/workload"
)

// policies returns fresh instances of the four evaluated policies.
func policies() []sim.Policy {
	return []sim.Policy{
		core.New(core.DefaultConfig()),
		baseline.New(baseline.SGCT),
		baseline.New(baseline.SGCTV1),
		baseline.New(baseline.SGCTV2),
	}
}

// RunAll runs the scenario under every policy concurrently and returns the
// results keyed by policy name.
func RunAll(scn sim.Scenario) (map[string]*sim.Result, error) {
	var jobs []sim.Job
	for _, p := range policies() {
		jobs = append(jobs, sim.Job{Key: p.Name(), Scenario: scn, Policy: p})
	}
	out, err := sim.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return out, nil
}

// Fig1PerWattSpeedup reproduces the paper's Fig. 1: per-watt speedup versus
// processor frequency for six workloads, normalized to the lowest P-state.
// The paper's observation — per-watt speedup generally *decreases* as
// frequency rises — is what motivates controlled low-power sprinting.
func Fig1PerWattSpeedup() (*Table, error) {
	params := server.DefaultParams()
	srv, err := server.New(0, params)
	if err != nil {
		return nil, err
	}
	specs := workload.Fig1Workloads()
	freqs := []float64{0.4, 0.8, 1.2, 1.6, 2.0}

	t := &Table{
		ID:      "fig1",
		Title:   "per-watt speedup vs frequency (6 workloads)",
		Columns: append([]string{"freq_ghz"}, names(specs)...),
	}
	fmin := params.PStates.Min()
	idleShare := params.IdleW / float64(params.Cores)
	// Sprinting spends *dynamic* power: per-watt speedup is normalized to
	// the frequency-dependent power above the idle floor, which is the
	// power a sprint decision actually buys.
	dynAt := func(f, util float64) float64 {
		srv.CPU().SetClass(0, cpu.Batch) // one active core, utilization from spec
		srv.CPU().SetFreq(0, f)
		srv.CPU().SetUtil(0, util)
		return srv.PowerOfClass(cpu.Batch, server.Environment{AmbientC: 25}) - idleShare
	}
	for _, f := range freqs {
		row := []interface{}{f}
		for _, s := range specs {
			speedup := s.Speedup(f, fmin, params.PStates.Max())
			relPower := dynAt(f, s.Util) / dynAt(fmin, s.Util)
			row = append(row, speedup/relPower)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper expectation: per-watt speedup decreases with frequency for all workloads",
		"memory-bound workloads (429.mcf, 433.milc) fall fastest",
		"normalization: speedup over dynamic (above-idle) power ratio, the power a sprint decision buys")
	return t, nil
}

func names(specs []workload.BatchSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Fig2TripCurve reproduces Fig. 2: the breaker's trip time as a nonlinear
// decreasing function of the overload degree.
func Fig2TripCurve() (*Table, error) {
	b, err := breaker.New(breaker.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2",
		Title:   "circuit breaker trip-time curve",
		Columns: []string{"overload_degree", "trip_time_s"},
	}
	for _, o := range []float64{1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.5, 2.0, 3.0, 5.0} {
		t.AddRow(o, b.TripTime(o))
	}
	t.Notes = append(t.Notes,
		"calibration: overload degree 1.25 sustainable ≈155 s (paper uses 150 s with margin)",
		"paper expectation: nonlinear, strictly decreasing (Bulletin 1489-A shape)")
	return t, nil
}

// Fig3PeriodicSprint reproduces the Fig. 3 illustration: short periodic
// sprinting (≈18 s period) alternating a high-power sprint phase with a
// rest phase, sustainable indefinitely because each cycle's overload fits
// the thermal budget the rest phase restores.
func Fig3PeriodicSprint() (*Table, error) {
	b, err := breaker.New(breaker.DefaultConfig())
	if err != nil {
		return nil, err
	}
	const (
		period  = 18.0
		sprintS = 6.0
		high    = 1.4 // overload degree while sprinting
	)
	t := &Table{
		ID:      "fig3",
		Title:   "periodic computational sprinting (18 s period)",
		Columns: []string{"time_s", "power_w", "thermal_fraction"},
	}
	rated := b.RatedPower()
	for tick := 0.0; tick < 5*period; tick++ {
		p := 0.8 * rated
		if math.Mod(tick, period) < sprintS {
			p = high * rated
		}
		b.Step(p, 1)
		if b.Tripped() {
			return nil, fmt.Errorf("experiments: fig3 sprint schedule tripped the breaker at t=%v", tick)
		}
		if int(tick)%3 == 0 {
			t.AddRow(tick, p, b.ThermalFraction())
		}
	}
	t.Notes = append(t.Notes,
		"paper expectation: periodic sprinting is sustainable; thermal state saw-tooths below the trip budget")
	return t, nil
}

// Fig5Uncontrolled reproduces Fig. 5: uncontrolled sprinting (SGCT) trips
// the breaker, forces the UPS to carry the rack, exhausts it, and causes an
// outage. It returns the full result for series plotting alongside the
// summary table.
func Fig5Uncontrolled() (*Table, *sim.Result, error) {
	res, err := sim.Run(sim.DefaultScenario(), baseline.New(baseline.SGCT))
	if err != nil {
		return nil, nil, err
	}
	firstTrip := math.NaN()
	for i := 1; i < len(res.Series.Time); i++ {
		if res.Series.CBW[i] == 0 && res.Series.CBW[i-1] > 0 && res.Series.TotalW[i] > 0 {
			firstTrip = res.Series.Time[i]
			break
		}
	}
	depleted := math.NaN()
	for i := range res.Series.Time {
		if res.Series.SoC[i] <= 0.001 {
			depleted = res.Series.Time[i]
			break
		}
	}
	t := &Table{
		ID:      "fig5",
		Title:   "uncontrolled sprinting (SGCT) failure sequence",
		Columns: []string{"event", "measured", "paper"},
	}
	t.AddRow("first CB trip (s)", firstTrip, "~150")
	t.AddRow("UPS depleted (min)", depleted/60, "~11")
	t.AddRow("outage (s)", res.OutageS, ">0 (power outage)")
	t.AddRow("CB trips", res.CBTrips, "≥1")
	t.AddRow("UPS DoD (%)", 100*res.UPSDoD, "~100")
	t.AddRow("avg freq interactive", res.AvgFreqInter, "0.64")
	t.AddRow("avg freq batch", res.AvgFreqBatch, "0.71")
	t.Notes = append(t.Notes,
		"shape check: trip within the first overload window, UPS exhausted before the sprint ends, outage follows")
	return t, res, nil
}

// Fig6PowerBehavior reproduces Fig. 6: the power-curve comparison between
// SprintCon, SGCT-V1 and SGCT-V2. The summary rows quantify the curve
// shapes the paper plots; the returned results carry the full series.
func Fig6PowerBehavior() (*Table, map[string]*sim.Result, error) {
	scn := sim.DefaultScenario()
	all, err := RunAll(scn)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:    "fig6",
		Title: "power behaviour: CB utilization and UPS usage",
		Columns: []string{"policy", "cb_energy_wh", "cb_overload_energy_wh",
			"ups_energy_wh", "total_std_w", "cb_over_budget_frac"},
	}
	for _, name := range []string{"SprintCon", "SGCT-V1", "SGCT-V2"} {
		r := all[name]
		t.AddRow(name, r.EnergyCBWh, r.EnergyCBOverWh,
			r.UPSDischargedWh, stats.Std(r.Series.TotalW), r.CBOverBudgetFrac)
	}
	t.Notes = append(t.Notes,
		"paper expectation: SprintCon's total power fluctuates with interactive load while its CB power hugs the budget",
		"paper expectation: SGCT-V1/V2 hold total power nearly flat (small std) and lean on the UPS during CB recovery")
	return t, all, nil
}

// Fig7FrequencyBehavior reproduces Fig. 7: average normalized frequencies
// for interactive and batch processing under each policy.
func Fig7FrequencyBehavior() (*Table, error) {
	all, err := RunAll(sim.DefaultScenario())
	if err != nil {
		return nil, err
	}
	paper := map[string][2]string{
		"SprintCon": {"1.00", "0.59"},
		"SGCT":      {"0.64", "0.71"},
		"SGCT-V1":   {"0.84", "0.91"},
		"SGCT-V2":   {"0.94", "0.84"},
	}
	t := &Table{
		ID:      "fig7",
		Title:   "average normalized frequencies (interactive / batch)",
		Columns: []string{"policy", "interactive", "batch", "paper_interactive", "paper_batch"},
	}
	for _, name := range []string{"SprintCon", "SGCT", "SGCT-V1", "SGCT-V2"} {
		r := all[name]
		t.AddRow(name, r.AvgFreqInter, r.AvgFreqBatch, paper[name][0], paper[name][1])
	}
	t.Notes = append(t.Notes,
		"shape check: SprintCon keeps interactive at peak; interactive ordering SprintCon > V2 > V1 > SGCT; batch ordering V1 > V2 > SGCT > SprintCon")
	return t, nil
}

// DeadlineSweep runs all policies across the paper's 9/12/15-minute batch
// deadlines concurrently and returns results[deadline][policy].
func DeadlineSweep() (map[float64]map[string]*sim.Result, error) {
	deadlines := []float64{540, 720, 900}
	var jobs []sim.Job
	for _, d := range deadlines {
		scn := sim.DefaultScenario()
		scn.BatchDeadlineS = d
		for _, p := range policies() {
			jobs = append(jobs, sim.Job{
				Key:      fmt.Sprintf("%s@%.0f", p.Name(), d),
				Scenario: scn,
				Policy:   p,
			})
		}
	}
	flat, err := sim.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := make(map[float64]map[string]*sim.Result)
	for _, d := range deadlines {
		byPolicy := make(map[string]*sim.Result)
		for _, name := range []string{"SprintCon", "SGCT", "SGCT-V1", "SGCT-V2"} {
			byPolicy[name] = flat[fmt.Sprintf("%s@%.0f", name, d)]
		}
		out[d] = byPolicy
	}
	return out, nil
}

// Fig8aTimeUse reproduces Fig. 8(a): normalized batch completion time
// versus deadline for each policy.
func Fig8aTimeUse() (*Table, error) {
	sweep, err := DeadlineSweep()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8a",
		Title:   "normalized time use vs batch deadline",
		Columns: []string{"deadline_min", "SprintCon", "SGCT-V1", "SGCT-V2", "misses"},
	}
	for _, d := range []float64{540, 720, 900} {
		all := sweep[d]
		misses := 0
		for _, name := range []string{"SprintCon", "SGCT-V1", "SGCT-V2"} {
			misses += all[name].DeadlineMisses
		}
		t.AddRow(d/60,
			all["SprintCon"].NormalizedTimeUse(),
			all["SGCT-V1"].NormalizedTimeUse(),
			all["SGCT-V2"].NormalizedTimeUse(),
			misses)
	}
	t.Notes = append(t.Notes,
		"paper expectation: every solution meets the deadlines (time use ≤ 1)",
		"paper expectation: SprintCon's time use is closest to 1 — it alone avoids running batch work needlessly fast")
	return t, nil
}

// Fig8bDoD reproduces Fig. 8(b): UPS depth of discharge per solution per
// deadline, with the battery-life consequences the paper derives.
func Fig8bDoD() (*Table, error) {
	sweep, err := DeadlineSweep()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8b",
		Title:   "UPS depth of discharge vs batch deadline",
		Columns: []string{"deadline_min", "SprintCon", "SGCT", "SGCT-V1", "SGCT-V2"},
	}
	for _, d := range []float64{540, 720, 900} {
		all := sweep[d]
		t.AddRow(d/60,
			all["SprintCon"].UPSDoD,
			all["SGCT"].UPSDoD,
			all["SGCT-V1"].UPSDoD,
			all["SGCT-V2"].UPSDoD)
	}
	t.Notes = append(t.Notes,
		"paper expectation at 12 min: SprintCon ≈0.17, SGCT-V1/V2 ≈0.31, SGCT ≈1.0",
		"paper consequence: at 10 sprints/day SprintCon's pack lasts its 10-year chemical life; the baselines replace packs 3-4 times")
	return t, nil
}

// Headline reproduces the abstract's claims: 6–56 % higher computing
// capacity (from the interactive frequency ratios) and up to 87 % less
// demand of energy storage.
func Headline() (*Table, error) {
	all, err := RunAll(sim.DefaultScenario())
	if err != nil {
		return nil, err
	}
	sc := all["SprintCon"]
	t := &Table{
		ID:    "headline",
		Title: "headline claims: computing-capacity gain and storage savings",
		Columns: []string{"baseline", "capacity_gain_pct", "storage_savings_pct",
			"paper_capacity", "paper_storage"},
	}
	paperCap := map[string]string{"SGCT": "56 (upper bound)", "SGCT-V1": "within 6-56", "SGCT-V2": "6 (lower bound)"}
	for _, name := range []string{"SGCT", "SGCT-V1", "SGCT-V2"} {
		b := all[name]
		gain := 100 * (sc.AvgFreqInter/b.AvgFreqInter - 1)
		sav := 100 * (1 - sc.UPSDischargedWh/b.UPSDischargedWh)
		t.AddRow(name, gain, sav, paperCap[name], "up to 87")
	}
	t.Notes = append(t.Notes,
		"paper derivation: gains span (1/0.94 − 1) to (1/0.64 − 1) = 6–56 %; our SGCT suffers a longer outage, so its gain exceeds the paper's upper bound",
		"storage savings vs SGCT correspond to the paper's 'up to 87 % less demand of energy storage'")
	return t, nil
}
