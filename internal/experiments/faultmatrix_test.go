package experiments

import "testing"

// TestFaultMatrixClaims pins the two E18 acceptance claims: hardened
// SprintCon survives every fault row with zero trips and zero outage, and at
// least one injected fault trips or blacks out the strongest fault-oblivious
// baseline (SGCT-V2).
func TestFaultMatrixClaims(t *testing.T) {
	tbl, err := FaultMatrix()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(FaultRows()) * len(faultPolicies())
	if len(tbl.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), wantRows)
	}
	baselineBroken := false
	for i, row := range tbl.Rows {
		fault, policy := row[0], row[1]
		trips := cell(t, tbl, i, 2)
		outage := cell(t, tbl, i, 3)
		switch {
		case policy == "SprintCon":
			if trips != 0 || outage != 0 {
				t.Errorf("hardened SprintCon unsafe under %s: trips=%v outage=%v",
					fault, trips, outage)
			}
		case fault == "none":
			// Every policy is safe on the paper's default scenario; a
			// failure here means the fault plumbing changed fault-free runs.
			if trips != 0 || outage != 0 {
				t.Errorf("%s unsafe on fault-free control row: trips=%v outage=%v",
					policy, trips, outage)
			}
		case policy == "SGCT-V2" && (trips > 0 || outage > 0):
			baselineBroken = true
		}
	}
	if !baselineBroken {
		t.Error("no fault tripped or blacked out SGCT-V2; the matrix must show at least one baseline failure")
	}
}
