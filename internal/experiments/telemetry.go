package experiments

import (
	"fmt"
	"math"

	"sprintcon/internal/baseline"
	"sprintcon/internal/core"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// TelemetrySummary runs the default scenario under every policy with a
// per-run metrics registry and tabulates the controller-effort counters the
// registry accumulates: how often the QP needed constrained sweeps, how
// hard the allocator adapted, what the guard rejected. It exists both as an
// at-a-glance controller-effort comparison and as an end-to-end exercise of
// the telemetry path through sim.RunWith for every policy family.
//
// Only deterministic instruments are reported (wall-clock histograms such
// as mpc_solve_seconds are deliberately excluded), so the table is stable
// across machines and runs.
func TelemetrySummary() (*Table, error) {
	t := &Table{
		ID:    "telemetry",
		Title: "controller effort per policy (registry counters, default scenario)",
		Columns: []string{"policy", "ticks", "cb_trips", "qp_solves", "qp_sweeps_mean",
			"qp_unconverged", "alloc_moves", "guard_rejected", "decisions"},
		Notes: []string{"qp_* empty for policies without an MPC loop; wall-clock histograms excluded (nondeterministic)"},
	}
	policies := []sim.Policy{
		core.New(core.DefaultConfig()),
		func() sim.Policy {
			cfg := core.DefaultConfig()
			cfg.Controller = core.ControllerPI
			return core.New(cfg)
		}(),
		baseline.New(baseline.SGCT),
		baseline.New(baseline.SGCTV1),
		baseline.New(baseline.SGCTV2),
	}
	for _, p := range policies {
		reg := telemetry.NewRegistry()
		sink := telemetry.NewDecisionSink(discardWriter{})
		res, err := sim.RunWith(sim.DefaultScenario(), p, sim.RunOptions{Metrics: reg, Decisions: sink})
		if err != nil {
			return nil, fmt.Errorf("telemetry: %s: %w", p.Name(), err)
		}
		snap := res.Telemetry
		qpSolves, qpMean := histStats(snap, "qp_iterations")
		t.AddRow(res.Policy,
			counterCell(snap, "sim_ticks_total"),
			counterCell(snap, "cb_trips_total"),
			qpSolves, qpMean,
			counterCell(snap, "qp_unconverged_total"),
			counterCell(snap, "alloc_budget_moves_total"),
			counterCell(snap, "guard_rejected_samples_total"),
			fmt.Sprintf("%d", sink.Count()))
	}
	return t, nil
}

// counterCell renders a counter/gauge value, or "-" if the policy never
// registered the metric.
func counterCell(s telemetry.Snapshot, name string) string {
	p, ok := s.Get(name)
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.0f", p.Value)
}

// histStats renders a histogram's observation count and mean ("-" when the
// metric is absent or empty).
func histStats(s telemetry.Snapshot, name string) (count, mean string) {
	p, ok := s.Get(name)
	if !ok || p.Count == 0 {
		return "-", "-"
	}
	m := p.Value / float64(p.Count)
	if math.IsNaN(m) {
		return fmt.Sprintf("%d", p.Count), "-"
	}
	return fmt.Sprintf("%d", p.Count), fmt.Sprintf("%.2f", m)
}

// discardWriter swallows trace output; TelemetrySummary only wants the
// sink's record count.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
