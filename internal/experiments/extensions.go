package experiments

import (
	"fmt"

	"sprintcon/internal/baseline"
	"sprintcon/internal/cluster"
	"sprintcon/internal/core"
	"sprintcon/internal/daily"
	"sprintcon/internal/qos"
	"sprintcon/internal/sim"
)

// QoSComparison (extension E10) translates the Fig. 7 frequency comparison
// into interactive latency terms with an M/M/1 response-time model: the
// cost of the baselines' interactive throttling in milliseconds and SLO
// violations.
func QoSComparison() (*Table, error) {
	all, err := RunAll(sim.DefaultScenario())
	if err != nil {
		return nil, err
	}
	cfg := qos.DefaultConfig()
	t := &Table{
		ID:    "qos",
		Title: "E10: interactive latency under each policy (M/M/1 lens)",
		Columns: []string{"policy", "mean_ms", "p99_ms", "slo_viol_frac",
			"saturated_frac"},
	}
	for _, name := range []string{"SprintCon", "SGCT", "SGCT-V1", "SGCT-V2"} {
		r := all[name]
		s, err := cfg.Evaluate(r.Series.Demand, r.Series.FreqInter)
		if err != nil {
			return nil, fmt.Errorf("qos %s: %w", name, err)
		}
		t.AddRow(name, s.MeanMs, s.P99Ms, s.SLOViolFrac, s.SaturatedFrac)
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: the paper reports frequencies; this maps them to response times",
		"expectation: SprintCon (peak frequency throughout) has the lowest latency and no saturation outside outages")
	return t, nil
}

// ClusterStagger (extension E12) coordinates four SprintCon racks on one
// data-center feeder: staggering the racks' overload phases flattens the
// aggregate draw, the data-center-level concern the paper's introduction
// raises ("the sprinting power can consume the headroom in the data-center
// level power budget").
func ClusterStagger() (*Table, error) {
	t := &Table{
		ID:    "cluster",
		Title: "E12: four racks on one feeder — synchronized vs staggered overloads",
		Columns: []string{"coordination", "feeder_peak_w", "feeder_mean_w",
			"over_budget_frac", "cb_trips", "misses"},
	}
	for _, stagger := range []bool{false, true} {
		cfg := cluster.DefaultConfig()
		cfg.Stagger = stagger
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		label := "synchronized"
		if stagger {
			label = "staggered"
		}
		t.AddRow(label, res.PeakW, res.MeanW, res.OverBudgetFrac, res.CBTrips, res.DeadlineMisses)
	}
	t.Notes = append(t.Notes,
		"the feeder is provisioned for two concurrent rack overloads; synchronization needs capacity for four",
		"staggering shifts when each rack draws its overload bonus without shedding any energy")
	return t, nil
}

// AblationEstimation (extension E13) evaluates the online model estimation
// hook ([27]): SprintCon with a 3×-miscalibrated power model, with and
// without recursive-least-squares slope adaptation.
func AblationEstimation() (*Table, error) {
	t := &Table{
		ID:    "ablation-estimation",
		Title: "E13: online model estimation under a 3x miscalibrated power model",
		Columns: []string{"variant", "final_k_w_per_ghz", "misses", "time_use",
			"dod", "cb_trips"},
	}
	scn := sim.DefaultScenario()
	run := func(label string, kScale float64, online bool) error {
		cfg := core.DefaultConfig()
		cfg.InitialKScale = kScale
		cfg.OnlineEstimation = online
		p := core.New(cfg)
		res, err := sim.Run(scn, p)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		t.AddRow(label, p.ModelK(), res.DeadlineMisses,
			res.NormalizedTimeUse(), res.UPSDoD, res.CBTrips)
		return nil
	}
	if err := run("calibrated, static (paper)", 1, false); err != nil {
		return nil, err
	}
	if err := run("3x steep, static", 3, false); err != nil {
		return nil, err
	}
	if err := run("3x steep, RLS-adapted", 3, true); err != nil {
		return nil, err
	}
	if err := run("3x shallow, RLS-adapted", 0.34, true); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the RLS estimate converges to the plant's *local* slope at the operating point; from either a 3x-steep or 3x-shallow start the adapted controller meets every deadline",
		"the adapted runs stay somewhat conservative (higher DoD than calibrated) because one global slope cannot capture the plant's frequency-dependent gain",
		"safety (no trips) holds in every variant: feedback, not the model, carries the safety property")
	return t, nil
}

// DailyCost (extension E11) makes the paper's Section VII-D economics
// executable: battery wear, recharge feasibility and dollar costs for the
// "15-minute sprint, 10 times per day, 10 years" regime.
func DailyCost() (*Table, error) {
	plan := daily.DefaultPlan()
	t := &Table{
		ID:    "daily-cost",
		Title: "E11: 10-year cost of 10 sprints/day",
		Columns: []string{"policy", "dod", "battery_life_y", "replacements",
			"recharge_ok", "energy_usd_y", "battery_usd_10y", "total_usd_10y"},
	}
	policies := []sim.Policy{
		core.New(core.DefaultConfig()),
		baseline.New(baseline.SGCT),
		baseline.New(baseline.SGCTV1),
		baseline.New(baseline.SGCTV2),
	}
	for _, p := range policies {
		o, err := daily.Evaluate(plan, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(o.Policy, o.DoD, o.BatteryLifeYears, o.Replacements,
			o.RechargeFeasible, o.EnergyUSDPerYear, o.BatteryUSDPerHorizon,
			o.TotalUSDPerHorizon)
	}
	t.Notes = append(t.Notes,
		"paper Section VII-D: SprintCon needs no battery replacement within the 10-year chemical life; the baselines replace packs 3-4 times",
		"costs use the plan's placeholder prices; the *ratios* are the claim")
	return t, nil
}
