package experiments

import (
	"fmt"

	"sprintcon/internal/baseline"
	"sprintcon/internal/core"
	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
)

// FaultRows returns the E18 fault schedules: one mid-sprint fault per row,
// each timed to strike while it hurts most (monitor faults during the first
// scheduled overload window at 0–150 s, the UPS path failure spanning an
// overload-to-recovery transition where battery cover is mandatory).
func FaultRows() []struct {
	Label string
	Plan  faults.Plan
} {
	return []struct {
		Label string
		Plan  faults.Plan
	}{
		{"none", faults.Plan{}},
		{"monitor-freeze", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MonitorFreeze, OnsetS: 30, DurationS: 300},
		}}},
		{"monitor-dropout", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MonitorDropout, OnsetS: 60, DurationS: 240},
		}}},
		{"monitor-bias-low", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MonitorBias, OnsetS: 30, DurationS: 600, Severity: -0.4},
		}}},
		{"measurement-delay", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.MeasurementDelay, OnsetS: 30, DurationS: 600, Severity: 8},
		}}},
		{"actuator-stuck", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.ActuatorStuck, OnsetS: 60, DurationS: 500, Server: 3},
		}}},
		{"actuator-lag", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.ActuatorLag, OnsetS: 60, DurationS: 500, Severity: 0.3, Server: faults.AllServers},
		}}},
		{"server-crash", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.ServerCrash, OnsetS: 200, DurationS: 300, Server: 5},
		}}},
		{"ups-path-failure", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.UPSPathFailure, OnsetS: 100, DurationS: 500},
		}}},
		{"ups-gauge-high", faults.Plan{Faults: []faults.Fault{
			{Kind: faults.UPSGaugeBias, OnsetS: 0, DurationS: 900, Severity: 0.6},
		}}},
	}
}

// faultPolicies returns fresh instances of the E18 policy set: hardened
// SprintCon, the fault-oblivious (paper-faithful) SprintCon, and SGCT-V2 —
// the strongest baseline, whose oracle-clamped budget survives everything
// the *static* robustness suite throws at it.
func faultPolicies() []sim.Policy {
	return []sim.Policy{
		core.New(core.DefaultConfig()),
		core.New(core.Config{Harden: core.HardeningConfig{Disabled: true}}),
		baseline.New(baseline.SGCTV2),
	}
}

// FaultMatrix is experiment E18: the full fault matrix of DESIGN.md §8.
// Every fault schedule runs under every policy on the paper's default
// 15-minute scenario; the table reports trips, outage, deadline misses and
// battery depth-of-discharge per (fault, policy) pair. The headline claims,
// asserted by tests: hardened SprintCon finishes every row with zero trips
// and zero outage, while at least one fault trips or blacks out a baseline.
func FaultMatrix() (*Table, error) {
	rows := FaultRows()
	var jobs []sim.Job
	for _, r := range rows {
		for _, p := range faultPolicies() {
			scn := sim.DefaultScenario()
			scn.Faults = r.Plan
			jobs = append(jobs, sim.Job{Key: r.Label + "/" + p.Name(), Scenario: scn, Policy: p})
		}
	}
	results, err := sim.RunMany(jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault matrix: %w", err)
	}

	t := &Table{
		ID:      "e18",
		Title:   "fault matrix: mid-sprint faults vs policy (15-min sprint)",
		Columns: []string{"fault", "policy", "trips", "outage_s", "misses", "dod", "avg_fi", "avg_fb"},
	}
	baselineBroken := false
	for _, r := range rows {
		for _, p := range faultPolicies() {
			res := results[r.Label+"/"+p.Name()]
			if res == nil {
				return nil, fmt.Errorf("experiments: missing result for %s/%s", r.Label, p.Name())
			}
			t.AddRow(r.Label, res.Policy, res.CBTrips, res.OutageS,
				res.DeadlineMisses, res.UPSDoD, res.AvgFreqInter, res.AvgFreqBatch)
			if r.Label != "none" && res.Policy == "SGCT-V2" &&
				(res.CBTrips > 0 || res.OutageS > 0) {
				baselineBroken = true
			}
		}
	}
	t.Notes = append(t.Notes,
		"hardened SprintCon must show trips=0 and outage_s=0 on every row",
		"faults that defeat the fault-oblivious baselines: a UPS discharge-path failure or a low-reading monitor leaves the breaker carrying the full overload with no battery cover",
	)
	if baselineBroken {
		t.Notes = append(t.Notes, "confirmed: at least one fault trips or blacks out SGCT-V2")
	}
	return t, nil
}
