package experiments

import (
	"fmt"

	"sprintcon/internal/cluster"
	"sprintcon/internal/hier"
	"sprintcon/internal/stats"
)

// E20 topology: four row feeders of eight racks each. Auto-provisioning
// gives every row its minimum packing (8·rated + ⌈8/3⌉·bonus = 28 kW) and
// the building the sum of the row ratings (112 kW), so the flat strawman
// below runs against exactly the same total budget.
const (
	hierRowCount    = 4
	hierRacksPerRow = 8
)

// HierarchyExceedance is experiment E20: the same building — four row
// feeders of eight paper racks — run twice against the same total budget.
// The hierarchical allocator funds each row within its own breaker rating
// and lets each row's coordinator pack overload slots locally; the flat
// strawman hands the whole building budget to one coordinator that packs
// slots by rack ID, blind to which row feeder each rack hangs from. With
// K = 12 concurrent overloads building-wide, the flat packing puts racks
// 0–11 in the same overload window, so row 0's eight racks sprint together
// and pull ~32 kW through a 28 kW row breaker. The table reports, per row
// feeder and for the building feeder, the exceedance fraction and shadow
// breaker trips under both allocations. The claims, asserted by tests: the
// hierarchy shows zero exceedance and zero trips at every level, while the
// flat allocation overruns at least one row breaker even though the
// building-level record looks identical.
func HierarchyExceedance() (*Table, error) {
	hcfg := hier.DefaultConfig()
	hcfg.Rows = make([]hier.RowConfig, hierRowCount)
	for i := range hcfg.Rows {
		hcfg.Rows[i] = hier.RowConfig{Racks: hierRacksPerRow}
	}
	hres, err := hier.RunLinked(hcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: hierarchy run: %w", err)
	}
	a := hres.Alloc

	// The flat strawman: one coordinator over all racks with the whole
	// building budget. Rack seeds match the hierarchy's global indices
	// (both offset the default scenario's seeds by the rack's building-wide
	// index), so the two runs see identical per-rack traffic.
	fcfg := cluster.DefaultConfig()
	fcfg.NumRacks = hierRowCount * hierRacksPerRow
	fcfg.Scenario = hcfg.Scenario
	fcfg.SprintCon = hcfg.SprintCon
	fcfg.FeederBudgetW = a.BuildingBudgetW
	fcfg.Link.Enabled = true
	fres, err := cluster.RunLinked(fcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: flat run: %w", err)
	}

	t := &Table{
		ID:    "e20",
		Title: "hierarchical vs flat allocation: per-feeder exceedance (4 rows × 8 racks, shared 112 kW budget)",
		Columns: []string{"feeder", "rating_w", "hier_exceed", "hier_trips",
			"flat_exceed", "flat_trips"},
	}
	dt := hcfg.Scenario.DtS
	tol := 1 + cluster.FeederTolerance
	worstFlatRow := 0.0
	for r, row := range a.Rows {
		// Row r's draw under the flat allocation: the summed breaker draw
		// of the racks that hang from its feeder, scored against the row
		// rating the flat coordinator never saw.
		draw := make([]float64, len(fres.AggregateW))
		for i := row.StartRack; i < row.StartRack+row.Racks; i++ {
			for tick, w := range fres.Racks[i].Series.CBW {
				draw[tick] += w
			}
		}
		flatExceed := stats.FracAbove(draw, row.RatingW*tol)
		flatTrips := cluster.ShadowTrips(row.RatingW, draw, dt)
		if flatExceed > worstFlatRow {
			worstFlatRow = flatExceed
		}
		t.AddRow(fmt.Sprintf("row %d", r), row.RatingW,
			hres.Rows[r].FeederExceedFrac, hres.Rows[r].FeederTrips,
			flatExceed, flatTrips)
	}
	t.AddRow("building", a.BuildingBudgetW,
		hres.BuildingExceedFrac, hres.BuildingTrips,
		fres.FeederExceedFrac, fres.FeederTrips)

	kFlat := int((fcfg.FeederBudgetW-float64(fcfg.NumRacks)*a.RatedW)/a.BonusW + 1e-9)
	t.Notes = append(t.Notes,
		fmt.Sprintf("both allocations grant %g W total; only the hierarchy constrains where the concurrency lands", a.BuildingBudgetW),
		"hierarchical rows must show exceed=0 and trips=0 on every feeder",
		fmt.Sprintf("flat packing is row-blind: %d concurrent overloads land on racks 0-%d, so row 0 sprints whole-row against its own breaker", kFlat, kFlat-1),
	)
	if worstFlatRow > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"confirmed: flat allocation overruns a row breaker %.1f%% of the time while the building feeder record stays clean",
			100*worstFlatRow))
	}
	return t, nil
}
