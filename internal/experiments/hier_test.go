package experiments

import (
	"strings"
	"testing"
)

// TestHierarchyExceedanceClaims pins the E20 acceptance claims: the
// hierarchical allocation records zero exceedance and zero shadow trips on
// every feeder (four rows and the building), while the flat allocation —
// same total budget, row-blind slot packing — overruns at least one row
// breaker even though its building-level record stays clean.
func TestHierarchyExceedanceClaims(t *testing.T) {
	tbl, err := HierarchyExceedance()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != hierRowCount+1 {
		t.Fatalf("rows = %d, want %d feeders + building", len(tbl.Rows), hierRowCount)
	}
	flatRowBroken := false
	for i, row := range tbl.Rows {
		feeder := row[0]
		hierExceed := cell(t, tbl, i, 2)
		hierTrips := cell(t, tbl, i, 3)
		flatExceed := cell(t, tbl, i, 4)
		flatTrips := cell(t, tbl, i, 5)
		if hierExceed != 0 || hierTrips != 0 {
			t.Errorf("hierarchy unsafe at %s: exceed=%v trips=%v", feeder, hierExceed, hierTrips)
		}
		if feeder == "building" {
			// The flat run respects the budget it was given — the building
			// feeder. Its failure is invisible at this level.
			if flatTrips != 0 || flatExceed > 0.01 {
				t.Errorf("flat run unsafe at the building feeder: exceed=%v trips=%v", flatExceed, flatTrips)
			}
		} else if flatExceed > 0 {
			flatRowBroken = true
		}
	}
	if !flatRowBroken {
		t.Error("flat allocation overran no row breaker; the table must show the row-blind packing hazard")
	}
	confirmed := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "confirmed") {
			confirmed = true
		}
	}
	if !confirmed {
		t.Error("table notes missing the measured flat-allocation overrun")
	}
}
