// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII) plus the ablations listed in DESIGN.md. Each
// constructor runs the necessary simulations and returns a Table whose rows
// mirror what the paper reports; the cmd/experiments tool prints them and
// the root-level benchmarks wrap them as testing.B targets.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string   // experiment id, e.g. "fig5"
	Title   string   // paper artifact it reproduces
	Columns []string // column headers
	Rows    [][]string
	// Notes record paper-expected versus measured values and any
	// substitution caveats (these feed EXPERIMENTS.md).
	Notes []string
}

// AddRow appends a row, formatting each value with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
