package experiments

import (
	"fmt"

	"sprintcon/internal/alloc"
	"sprintcon/internal/control"
	"sprintcon/internal/core"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
)

// AblationController (A1) compares the MPC server power controller against
// the single-loop PI baseline, both on a step-response micro-benchmark and
// in the full closed-loop sprint.
func AblationController() (*Table, error) {
	t := &Table{
		ID:    "ablation-controller",
		Title: "A1: MPC vs PI server power controller",
		Columns: []string{"controller", "settle_periods", "overshoot_frac",
			"track_rmse_w", "full_sim_misses", "full_sim_dod"},
	}

	// Step-response micro-benchmark on the linear design model.
	step := func(mk func() func(pfb, target float64, freqs []float64) []float64) (int, float64, float64) {
		n := 16
		k := 9.6
		freqs := make([]float64, n)
		for i := range freqs {
			freqs[i] = 0.4
		}
		c := 150.0
		target := c + k*float64(n)*1.5
		ctrl := mk()
		var series []float64
		for s := 0; s < 30; s++ {
			p := c
			for _, f := range freqs {
				p += k * f
			}
			series = append(series, p)
			freqs = ctrl(p, target, freqs)
		}
		settle := stats.SettlingTime(series, target, 0.02*target)
		over := stats.Overshoot(series, series[0], target)
		ref := make([]float64, len(series))
		for i := range ref {
			ref[i] = target
		}
		rmse, err := stats.RMSE(series[len(series)/2:], ref[len(ref)/2:])
		if err != nil {
			rmse = -1
		}
		return settle, over, rmse
	}

	kvec := make([]float64, 16)
	for i := range kvec {
		kvec[i] = 9.6
	}
	mpcSettle, mpcOver, mpcRMSE := step(func() func(float64, float64, []float64) []float64 {
		m, err := control.NewMPC(control.DefaultMPCConfig(kvec))
		if err != nil {
			panic(err)
		}
		weights := make([]float64, 16)
		for i := range weights {
			weights[i] = 1
		}
		return func(pfb, target float64, freqs []float64) []float64 {
			next, err := m.Step(pfb, target, freqs, weights)
			if err != nil {
				panic(err)
			}
			return next
		}
	})
	piSettle, piOver, piRMSE := step(func() func(float64, float64, []float64) []float64 {
		pi, err := control.NewPI(control.DefaultPIConfig(16, 9.6*16))
		if err != nil {
			panic(err)
		}
		return pi.Step
	})

	fullSettle, fullOver, fullRMSE := step(func() func(float64, float64, []float64) []float64 {
		cfg := control.DefaultMPCConfig(kvec)
		cfg.FullHorizon = true
		m, err := control.NewMPC(cfg)
		if err != nil {
			panic(err)
		}
		weights := make([]float64, 16)
		for i := range weights {
			weights[i] = 1
		}
		return func(pfb, target float64, freqs []float64) []float64 {
			next, err := m.Step(pfb, target, freqs, weights)
			if err != nil {
				panic(err)
			}
			return next
		}
	})

	// Full closed-loop comparison.
	mpcRes, err := sim.Run(sim.DefaultScenario(), core.New(core.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	piCfg := core.DefaultConfig()
	piCfg.Controller = core.ControllerPI
	piRes, err := sim.Run(sim.DefaultScenario(), core.New(piCfg))
	if err != nil {
		return nil, err
	}
	fullCfg := core.DefaultConfig()
	fullCfg.Controller = core.ControllerMPCFull
	fullRes, err := sim.Run(sim.DefaultScenario(), core.New(fullCfg))
	if err != nil {
		return nil, err
	}

	t.AddRow("MPC (paper, constant-move)", mpcSettle, mpcOver, mpcRMSE, mpcRes.DeadlineMisses, mpcRes.UPSDoD)
	t.AddRow("MPC (full horizon)", fullSettle, fullOver, fullRMSE, fullRes.DeadlineMisses, fullRes.UPSDoD)
	t.AddRow("PI", piSettle, piOver, piRMSE, piRes.DeadlineMisses, piRes.UPSDoD)
	t.Notes = append(t.Notes,
		"design-choice check: MPC additionally provides per-core deadline weighting (R_{i,j}), which the PI structure cannot express",
		"the full-horizon variant lifts the paper's constant-move prediction simplification; it settles at least as fast with no overshoot")
	return t, nil
}

// AblationOverloadSchedule (A2) compares the paper's periodic CB overload
// schedule against never overloading and against one long constant
// low-degree overload, all under SprintCon.
func AblationOverloadSchedule() (*Table, error) {
	t := &Table{
		ID:    "ablation-schedule",
		Title: "A2: CB overload scheduling strategies",
		Columns: []string{"schedule", "cb_trips", "dod", "avg_batch_freq",
			"time_use", "cb_overload_energy_wh"},
	}
	scn := sim.DefaultScenario()
	variants := []struct {
		label  string
		mutate func(*alloc.Config)
	}{
		{"periodic 1.25x150s/300s (paper)", nil},
		{"no overload (degree→1)", func(c *alloc.Config) {
			c.OverloadDegree = 1.0001
		}},
		{"constant safe degree for whole burst", func(c *alloc.Config) {
			c.MidBurstS = 1000 // put the 900 s burst into the constant-overload regime
		}},
	}
	jobs := make([]sim.Job, len(variants))
	for i, v := range variants {
		acfg := alloc.DefaultConfig(scn.Breaker.RatedPower, scn.Breaker.TripBudget())
		if v.mutate != nil {
			v.mutate(&acfg)
		}
		cfg := core.DefaultConfig()
		cfg.AllocOverride = &acfg
		jobs[i] = sim.Job{Key: v.label, Scenario: scn, Policy: core.New(cfg)}
	}
	results, err := sim.RunManyOrdered(jobs)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		res := results[i]
		t.AddRow(v.label, res.CBTrips, res.UPSDoD, res.AvgFreqBatch,
			res.NormalizedTimeUse(), res.EnergyCBOverWh)
	}
	t.Notes = append(t.Notes,
		"design-choice check: the periodic schedule extracts the most overload energy from the breaker without tripping",
		"no-overload forgoes the CB bonus and must lean on the UPS (or slow batch work) instead")
	return t, nil
}

// AblationUPSControl (A3) compares UPS discharge-control structures:
// feedforward+trim (paper-faithful), feedforward only, and pure PI.
func AblationUPSControl() (*Table, error) {
	t := &Table{
		ID:    "ablation-ups",
		Title: "A3: UPS discharge controller structures",
		Columns: []string{"controller", "cb_over_budget_frac", "cb_track_err_w",
			"dod", "cb_trips"},
	}
	scn := sim.DefaultScenario()
	ff := control.DefaultUPSControllerConfig()
	ffOnly := ff
	ffOnly.TrimKi = 0
	pi := control.UPSControllerConfig{
		PeriodS: 1, TrimKi: 0.4, TrimKp: 0.8, TrimLimitW: 2000,
		Feedforward: false, TargetMarginW: 30,
	}
	variants := []struct {
		label string
		ucfg  control.UPSControllerConfig
	}{
		{"feedforward+trim (paper)", ff},
		{"feedforward only", ffOnly},
		{"pure PI (no feedforward)", pi},
	}
	jobs := make([]sim.Job, len(variants))
	for i, v := range variants {
		cfg := core.DefaultConfig()
		cfg.UPSCtl = v.ucfg
		jobs[i] = sim.Job{Key: v.label, Scenario: scn, Policy: core.New(cfg)}
	}
	results, err := sim.RunManyOrdered(jobs)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		res := results[i]
		t.AddRow(v.label, res.CBOverBudgetFrac, res.CBTrackingErrorW, res.UPSDoD, res.CBTrips)
	}
	t.Notes = append(t.Notes,
		"design-choice check: without feedforward the controller chases interactive fluctuation and violates the CB budget more often")
	return t, nil
}

// Sensitivity (A4) sweeps the server power controller's period and the
// reference-trajectory time constant τ_r.
func Sensitivity() (*Table, error) {
	t := &Table{
		ID:      "sensitivity",
		Title:   "A4: control period and τ_r sensitivity",
		Columns: []string{"period_s", "tau_r_s", "misses", "dod", "time_use", "cb_over_budget_frac"},
	}
	periods := []float64{2, 4, 8}
	taus := []float64{1, 2, 8}
	// The grid's runs are independent seeded simulations: execute them on
	// the worker pool and emit rows in deterministic grid order.
	var jobs []sim.Job
	for _, period := range periods {
		for _, tau := range taus {
			cfg := core.DefaultConfig()
			cfg.ControlPeriodS = period
			cfg.RefTimeConstS = tau
			jobs = append(jobs, sim.Job{
				Key:      fmt.Sprintf("period=%v,tau=%v", period, tau),
				Scenario: sim.DefaultScenario(),
				Policy:   core.New(cfg),
			})
		}
	}
	results, err := sim.RunManyOrdered(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, period := range periods {
		for _, tau := range taus {
			res := results[i]
			i++
			t.AddRow(period, tau, res.DeadlineMisses, res.UPSDoD,
				res.NormalizedTimeUse(), res.CBOverBudgetFrac)
		}
	}
	t.Notes = append(t.Notes,
		"Section V-B: larger τ_r reduces overshoot but slows convergence; the allocator period must exceed the settling time")
	return t, nil
}

// All returns every experiment table in DESIGN.md order.
func All() ([]*Table, error) {
	type ctor func() (*Table, error)
	ctors := []ctor{
		Fig1PerWattSpeedup,
		Fig2TripCurve,
		Fig3PeriodicSprint,
		func() (*Table, error) { t, _, err := Fig5Uncontrolled(); return t, err },
		func() (*Table, error) { t, _, err := Fig6PowerBehavior(); return t, err },
		Fig7FrequencyBehavior,
		Fig8aTimeUse,
		Fig8bDoD,
		Headline,
		AblationController,
		AblationOverloadSchedule,
		AblationUPSControl,
		Sensitivity,
		QoSComparison,
		DailyCost,
		ClusterStagger,
		AblationEstimation,
		BatteryProvisioning,
		BurstRegimes,
		EnergyEfficiency,
		SprintingBenefit,
		FaultMatrix,
		PartitionMatrix,
		HierarchyExceedance,
	}
	var out []*Table
	for _, c := range ctors {
		t, err := c()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
