// Package chippart implements the chip-level power-partitioning hook of
// paper Section IV-D: when batch work is multi-threaded, SprintCon
// "determine[s] the total frequency quota of a group of cores running the
// same application, and then divide[s] the frequency quota to the cores in
// the group" (following the chip-level allocation literature [25]–[28]).
//
// DivideQuota performs the division as weighted water-filling under
// per-core frequency bounds; CriticalPathWeights derives the weights from
// per-thread progress so the group's barrier-lagging threads receive more
// frequency — the allocation that minimizes a fork-join application's
// completion time.
package chippart

import (
	"errors"
	"fmt"
	"math"
)

// DivideQuota splits a total frequency quota (GHz, the sum across the
// group) among n cores proportionally to weights, subject to
// fmin ≤ f_i ≤ fmax. Cores that hit a bound drop out and their share is
// redistributed (iterative water-filling). If the quota lies outside
// [n·fmin, n·fmax] it is clamped to the nearest achievable total.
// The returned frequencies sum to the (clamped) quota up to a small
// tolerance.
func DivideQuota(quotaGHz float64, weights []float64, fmin, fmax float64) ([]float64, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("chippart: empty group")
	}
	if fmin <= 0 || fmax <= fmin {
		return nil, errors.New("chippart: need 0 < fmin < fmax")
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("chippart: weight[%d] = %v must be non-negative", i, w)
		}
	}
	quota := math.Min(math.Max(quotaGHz, float64(n)*fmin), float64(n)*fmax)

	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = fmin
	}
	remaining := quota - float64(n)*fmin
	active := make([]bool, n)
	var wsum float64
	for i, w := range weights {
		if w > 0 {
			active[i] = true
			wsum += w
		}
	}
	// Zero-weight group: spread evenly.
	if wsum == 0 {
		for i := range freqs {
			freqs[i] = quota / float64(n)
		}
		return freqs, nil
	}

	for iter := 0; iter < n+1 && remaining > 1e-12; iter++ {
		if wsum <= 0 {
			break
		}
		perWeight := remaining / wsum
		var overflow float64
		for i := range freqs {
			if !active[i] {
				continue
			}
			add := perWeight * weights[i]
			if freqs[i]+add >= fmax {
				overflow += freqs[i] + add - fmax
				freqs[i] = fmax
				active[i] = false
				wsum -= weights[i]
			} else {
				freqs[i] += add
			}
		}
		remaining = overflow
	}
	// If every positively weighted core pinned at fmax before the quota
	// was spent, spill the rest evenly across the zero-weight cores
	// (they exist, or the clamp above would have capped the quota).
	for iter := 0; iter < n+1 && remaining > 1e-12; iter++ {
		var unpinned int
		for i := range freqs {
			if freqs[i] < fmax {
				unpinned++
			}
		}
		if unpinned == 0 {
			break
		}
		share := remaining / float64(unpinned)
		remaining = 0
		for i := range freqs {
			if freqs[i] >= fmax {
				continue
			}
			if freqs[i]+share >= fmax {
				remaining += freqs[i] + share - fmax
				freqs[i] = fmax
			} else {
				freqs[i] += share
			}
		}
	}
	return freqs, nil
}

// CriticalPathWeights converts per-thread progress (fractions of the
// group's work completed) into division weights: the thread furthest
// behind the group's front-runner gets the largest weight, so a fork-join
// barrier is reached as early as possible. The returned weights are
// strictly positive and sum to 1.
func CriticalPathWeights(progress []float64) ([]float64, error) {
	n := len(progress)
	if n == 0 {
		return nil, errors.New("chippart: empty group")
	}
	maxP := math.Inf(-1)
	for i, p := range progress {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("chippart: progress[%d] = %v outside [0, 1]", i, p)
		}
		maxP = math.Max(maxP, p)
	}
	const eps = 0.02 // keeps the front-runner from starving entirely
	weights := make([]float64, n)
	var sum float64
	for i, p := range progress {
		weights[i] = maxP - p + eps
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}
	return weights, nil
}
