package chippart

import (
	"math"
	"testing"
	"testing/quick"
)

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestDivideQuotaProportional(t *testing.T) {
	// Quota 3.0 GHz over two cores with 2:1 weights, wide bounds:
	// base 2×0.4 = 0.8, surplus 2.2 split 2:1.
	freqs, err := DivideQuota(3.0, []float64{2, 1}, 0.4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	want0 := 0.4 + 2.2*2/3
	want1 := 0.4 + 2.2*1/3
	if math.Abs(freqs[0]-want0) > 1e-9 || math.Abs(freqs[1]-want1) > 1e-9 {
		t.Fatalf("freqs = %v, want [%v %v]", freqs, want0, want1)
	}
	if math.Abs(sum(freqs)-3.0) > 1e-9 {
		t.Fatalf("sum = %v", sum(freqs))
	}
}

func TestDivideQuotaWaterfillsOverflow(t *testing.T) {
	// A dominant weight pins at fmax; its overflow goes to the others.
	freqs, err := DivideQuota(4.0, []float64{100, 1, 1}, 0.4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if freqs[0] != 2.0 {
		t.Fatalf("dominant core %v, want pinned at 2.0", freqs[0])
	}
	if math.Abs(sum(freqs)-4.0) > 1e-9 {
		t.Fatalf("sum = %v, want exactly the quota", sum(freqs))
	}
	if math.Abs(freqs[1]-freqs[2]) > 1e-9 {
		t.Fatalf("equal-weight cores should match: %v", freqs)
	}
}

func TestDivideQuotaClampsInfeasible(t *testing.T) {
	// Quota below the floor: everyone at fmin.
	freqs, err := DivideQuota(0.1, []float64{1, 1}, 0.4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if freqs[0] != 0.4 || freqs[1] != 0.4 {
		t.Fatalf("freqs = %v, want all at fmin", freqs)
	}
	// Quota above the ceiling: everyone at fmax.
	freqs, err = DivideQuota(100, []float64{1, 1}, 0.4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if freqs[0] != 2.0 || freqs[1] != 2.0 {
		t.Fatalf("freqs = %v, want all at fmax", freqs)
	}
}

func TestDivideQuotaZeroWeights(t *testing.T) {
	freqs, err := DivideQuota(2.4, []float64{0, 0, 0}, 0.4, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range freqs {
		if math.Abs(f-0.8) > 1e-9 {
			t.Fatalf("zero weights should spread evenly: %v", freqs)
		}
	}
}

func TestDivideQuotaValidation(t *testing.T) {
	if _, err := DivideQuota(1, nil, 0.4, 2.0); err == nil {
		t.Fatal("empty group should error")
	}
	if _, err := DivideQuota(1, []float64{1}, 2.0, 0.4); err == nil {
		t.Fatal("bad bounds should error")
	}
	if _, err := DivideQuota(1, []float64{-1}, 0.4, 2.0); err == nil {
		t.Fatal("negative weight should error")
	}
}

// Property: the division always sums to the clamped quota and respects the
// bounds, for arbitrary weights and quotas.
func TestDivideQuotaInvariantsProperty(t *testing.T) {
	f := func(rawQuota float64, rawW [6]float64) bool {
		weights := make([]float64, 6)
		for i, w := range rawW {
			weights[i] = math.Mod(math.Abs(w), 10)
		}
		quota := math.Mod(math.Abs(rawQuota), 20)
		freqs, err := DivideQuota(quota, weights, 0.4, 2.0)
		if err != nil {
			return false
		}
		clamped := math.Min(math.Max(quota, 6*0.4), 6*2.0)
		if math.Abs(sum(freqs)-clamped) > 1e-6 {
			return false
		}
		for _, fr := range freqs {
			if fr < 0.4-1e-9 || fr > 2.0+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathWeights(t *testing.T) {
	w, err := CriticalPathWeights([]float64{0.9, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(w)-1) > 1e-12 {
		t.Fatalf("weights sum %v", sum(w))
	}
	// The laggard (0.5) gets the most; the front-runner (0.9) the least,
	// but still something.
	if !(w[1] > w[2] && w[2] > w[0] && w[0] > 0) {
		t.Fatalf("weights = %v", w)
	}
}

func TestCriticalPathWeightsValidation(t *testing.T) {
	if _, err := CriticalPathWeights(nil); err == nil {
		t.Fatal("empty group should error")
	}
	if _, err := CriticalPathWeights([]float64{1.5}); err == nil {
		t.Fatal("progress > 1 should error")
	}
}

// Integration shape: dividing a quota by critical-path weights narrows the
// progress spread over repeated barriers.
func TestQuotaDivisionConvergesBarrier(t *testing.T) {
	progress := []float64{0.0, 0.3, 0.6}
	work := 100.0 // peak-seconds each
	for step := 0; step < 200; step++ {
		w, err := CriticalPathWeights(progress)
		if err != nil {
			t.Fatal(err)
		}
		freqs, err := DivideQuota(3.6, w, 0.4, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range progress {
			progress[i] = math.Min(1, progress[i]+freqs[i]/2.0/work)
		}
	}
	spread := 0.0
	for _, p := range progress {
		for _, q := range progress {
			spread = math.Max(spread, math.Abs(p-q))
		}
	}
	if spread > 0.05 {
		t.Fatalf("threads did not converge: %v (spread %v)", progress, spread)
	}
}
