package chippart_test

import (
	"fmt"

	"sprintcon/internal/chippart"
)

// Divide a group frequency quota among the threads of one application so
// the barrier-lagging thread catches up (paper Section IV-D).
func ExampleDivideQuota() {
	progress := []float64{0.8, 0.3, 0.55} // thread 1 is far behind
	weights, err := chippart.CriticalPathWeights(progress)
	if err != nil {
		panic(err)
	}
	freqs, err := chippart.DivideQuota(3.6, weights, 0.4, 2.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("f = [%.2f %.2f %.2f] GHz\n", freqs[0], freqs[1], freqs[2])
	// Output:
	// f = [0.46 1.94 1.20] GHz
}
