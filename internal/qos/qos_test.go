package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero service", func(c *Config) { c.BaseServiceMs = 0 }},
		{"slo below service", func(c *Config) { c.SLOMs = 1 }},
		{"cap below slo", func(c *Config) { c.SaturationCapMs = 10 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestResponseTimeBasics(t *testing.T) {
	c := DefaultConfig()
	// Unloaded core at peak: exactly the base service time.
	ms, sat := c.ResponseTime(0, 1)
	if sat || ms != c.BaseServiceMs {
		t.Fatalf("unloaded: %v, %v", ms, sat)
	}
	// Half load at peak: 2× the service time (M/M/1).
	ms, sat = c.ResponseTime(0.5, 1)
	if sat || math.Abs(ms-2*c.BaseServiceMs) > 1e-9 {
		t.Fatalf("half load: %v", ms)
	}
	// Same offered load on a half-speed core: saturated.
	_, sat = c.ResponseTime(0.5, 0.5)
	if !sat {
		t.Fatal("ρ = 1 should saturate")
	}
	// Outage.
	ms, sat = c.ResponseTime(0.5, 0)
	if !sat || ms != c.SaturationCapMs {
		t.Fatalf("outage: %v, %v", ms, sat)
	}
}

func TestResponseTimeMonotoneInFrequency(t *testing.T) {
	c := DefaultConfig()
	prev := math.Inf(1)
	for _, f := range []float64{0.5, 0.6, 0.8, 1.0} {
		ms, _ := c.ResponseTime(0.4, f)
		if ms >= prev {
			t.Fatalf("latency should fall with frequency at f=%v", f)
		}
		prev = ms
	}
}

// Property: latency is non-decreasing in demand and capped.
func TestResponseTimeMonotoneDemandProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(d1, d2, rawF float64) bool {
		fr := 0.2 + math.Mod(math.Abs(rawF), 0.8)
		a := math.Mod(math.Abs(d1), 1.2)
		b := math.Mod(math.Abs(d2), 1.2)
		if a > b {
			a, b = b, a
		}
		la, _ := c.ResponseTime(a, fr)
		lb, _ := c.ResponseTime(b, fr)
		return la <= lb+1e-9 && lb <= c.SaturationCapMs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluate(t *testing.T) {
	c := DefaultConfig()
	demand := []float64{0.3, 0.5, 0.9, 0.5}
	freq := []float64{1, 1, 0.5, 1} // third sample saturates
	s, err := c.Evaluate(demand, freq)
	if err != nil {
		t.Fatal(err)
	}
	if s.SaturatedFrac != 0.25 {
		t.Fatalf("SaturatedFrac = %v", s.SaturatedFrac)
	}
	if s.SLOViolFrac != 0.25 {
		t.Fatalf("SLOViolFrac = %v", s.SLOViolFrac)
	}
	if s.MeanMs <= c.BaseServiceMs || s.P99Ms < s.MeanMs {
		t.Fatalf("summary implausible: %+v", s)
	}
	if _, err := c.Evaluate(nil, nil); err == nil {
		t.Fatal("empty series should error")
	}
	if _, err := c.Evaluate(demand, freq[:2]); err == nil {
		t.Fatal("length mismatch should error")
	}
	bad := c
	bad.BaseServiceMs = 0
	if _, err := bad.Evaluate(demand, freq); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestSpeedupForLatency(t *testing.T) {
	c := DefaultConfig()
	// demand 0.5, target 100 ms → f̂ = 0.5 + 20/100 = 0.7.
	f := c.SpeedupForLatency(0.5, 100)
	if math.Abs(f-0.7) > 1e-9 {
		t.Fatalf("SpeedupForLatency = %v, want 0.7", f)
	}
	ms, sat := c.ResponseTime(0.5, f)
	if sat || math.Abs(ms-100) > 1e-6 {
		t.Fatalf("check: %v ms at computed frequency", ms)
	}
	if !math.IsNaN(c.SpeedupForLatency(0.99, 100)) {
		t.Fatal("impossible target should be NaN")
	}
	if !math.IsNaN(c.SpeedupForLatency(0.5, 1)) {
		t.Fatal("target below service time should be NaN")
	}
}
