// Package qos models the latency consequences of frequency decisions on
// interactive workloads. The paper evaluates interactive performance by
// average frequency (Fig. 7); this package extends that with the standard
// M/M/1 response-time lens so the cost of throttling interactive cores
// (as the SGCT baselines do) is visible in milliseconds and SLO terms.
//
// Model: one interactive core serves a request stream whose offered load
// is `demand` (fraction of the core's capacity at peak frequency). At
// normalized frequency f̂ the service rate scales by f̂, so utilization is
// ρ = demand/f̂ and the M/M/1 mean response time is
//
//	T = T_service/(1 − ρ),  T_service = baseMs/f̂.
//
// ρ ≥ 1 means the queue is unstable: the request backlog grows without
// bound for as long as the overload lasts, which we report as saturation
// with a capped latency.
package qos

import (
	"errors"
	"math"

	"sprintcon/internal/stats"
)

// Config parameterizes the latency model.
type Config struct {
	// BaseServiceMs is the mean service time at peak frequency.
	BaseServiceMs float64
	// SLOMs is the response-time objective for SLO accounting.
	SLOMs float64
	// SaturationCapMs is the latency reported for unstable (ρ ≥ 1)
	// periods and outages.
	SaturationCapMs float64
}

// DefaultConfig returns a web-serving flavor: 20 ms mean service time at
// peak, a 200 ms SLO, and a 1 s cap for saturated periods.
func DefaultConfig() Config {
	return Config{BaseServiceMs: 20, SLOMs: 200, SaturationCapMs: 1000}
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	switch {
	case c.BaseServiceMs <= 0:
		return errors.New("qos: BaseServiceMs must be positive")
	case c.SLOMs <= c.BaseServiceMs:
		return errors.New("qos: SLOMs must exceed BaseServiceMs")
	case c.SaturationCapMs < c.SLOMs:
		return errors.New("qos: SaturationCapMs must be at least SLOMs")
	}
	return nil
}

// ResponseTime returns the mean response time in milliseconds for offered
// load demand (fraction of peak capacity) served at normalized frequency
// freqNorm ∈ (0, 1], and whether the core is saturated. freqNorm ≤ 0 (an
// outage) reports the cap.
func (c Config) ResponseTime(demand, freqNorm float64) (ms float64, saturated bool) {
	if freqNorm <= 0 {
		return c.SaturationCapMs, true
	}
	if demand <= 0 {
		return c.BaseServiceMs / freqNorm, false
	}
	rho := demand / freqNorm
	if rho >= 1 {
		return c.SaturationCapMs, true
	}
	t := c.BaseServiceMs / freqNorm / (1 - rho)
	if t > c.SaturationCapMs {
		return c.SaturationCapMs, true
	}
	return t, false
}

// Summary aggregates a latency series.
type Summary struct {
	MeanMs        float64
	P99Ms         float64
	SLOViolFrac   float64 // fraction of samples above the SLO
	SaturatedFrac float64 // fraction of samples with an unstable queue
}

// Evaluate applies the model over parallel demand and normalized-frequency
// series (one sample per tick) and summarizes. Series must have equal,
// non-zero length.
func (c Config) Evaluate(demand, freqNorm []float64) (Summary, error) {
	if err := c.Validate(); err != nil {
		return Summary{}, err
	}
	if len(demand) != len(freqNorm) || len(demand) == 0 {
		return Summary{}, errors.New("qos: need equal non-empty series")
	}
	lat := make([]float64, len(demand))
	var sat, viol int
	for i := range demand {
		ms, s := c.ResponseTime(demand[i], freqNorm[i])
		lat[i] = ms
		if s {
			sat++
		}
		if ms > c.SLOMs {
			viol++
		}
	}
	p99, err := stats.Percentile(lat, 0.99)
	if err != nil {
		return Summary{}, err
	}
	n := float64(len(lat))
	return Summary{
		MeanMs:        stats.Mean(lat),
		P99Ms:         p99,
		SLOViolFrac:   float64(viol) / n,
		SaturatedFrac: float64(sat) / n,
	}, nil
}

// SpeedupForLatency returns the minimum normalized frequency that keeps the
// mean response time at or below targetMs for the given demand, or NaN if
// no frequency in (0, 1] achieves it. Useful for capacity planning around
// a sprint.
func (c Config) SpeedupForLatency(demand, targetMs float64) float64 {
	if targetMs < c.BaseServiceMs {
		return math.NaN()
	}
	// T = base/(f̂ − demand) ≤ target  →  f̂ ≥ demand + base/target.
	f := demand + c.BaseServiceMs/targetMs
	if f > 1 {
		return math.NaN()
	}
	return f
}
