package qos_test

import (
	"fmt"

	"sprintcon/internal/qos"
)

// The latency cost of throttling an interactive core: the same request
// stream at half frequency saturates the queue.
func ExampleConfig_ResponseTime() {
	cfg := qos.DefaultConfig()
	for _, f := range []float64{1.0, 0.7, 0.5} {
		ms, sat := cfg.ResponseTime(0.5, f)
		fmt.Printf("f=%.1f -> %.0f ms (saturated=%v)\n", f, ms, sat)
	}
	// Output:
	// f=1.0 -> 40 ms (saturated=false)
	// f=0.7 -> 100 ms (saturated=false)
	// f=0.5 -> 1000 ms (saturated=true)
}
