package qos

import (
	"math"
	"testing"
)

func repeatF(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestEvaluateQueueNoBacklogUnderCapacity(t *testing.T) {
	c := DefaultConfig()
	s, err := c.EvaluateQueue(repeatF(0.5, 100), repeatF(1.0, 100), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxBacklogS != 0 {
		t.Fatalf("backlog %v under capacity", s.MaxBacklogS)
	}
	// Latency matches the memoryless model when there is no backlog.
	want, _ := c.ResponseTime(0.5, 1.0)
	if math.Abs(s.MeanMs-want) > 1e-9 {
		t.Fatalf("mean %v, want %v", s.MeanMs, want)
	}
	if s.DrainedS != 0 {
		t.Fatalf("DrainedS = %v for an always-empty queue", s.DrainedS)
	}
}

func TestEvaluateQueueBacklogAccumulatesAndDrains(t *testing.T) {
	c := DefaultConfig()
	// 60 s of 20 % overload, then 120 s of 40 % spare capacity.
	demand := append(repeatF(1.2, 60), repeatF(0.6, 120)...)
	freq := repeatF(1.0, 180)
	s, err := c.EvaluateQueue(demand, freq, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Backlog peaks at 0.2·60 = 12 core-seconds.
	if math.Abs(s.MaxBacklogS-12) > 1e-9 {
		t.Fatalf("max backlog %v, want 12", s.MaxBacklogS)
	}
	// Draining 12 s at 0.4 spare takes 30 s.
	if math.Abs(s.DrainedS-30) > 1.5 {
		t.Fatalf("drained in %v s, want ≈30", s.DrainedS)
	}
	// Violations persist beyond the overload window (the backlog's tail).
	if s.SLOViolFrac <= 60.0/180.0 {
		t.Fatalf("SLO violations %v should exceed the overload window fraction", s.SLOViolFrac)
	}
}

func TestEvaluateQueueNeverDrains(t *testing.T) {
	c := DefaultConfig()
	s, err := c.EvaluateQueue(repeatF(1.2, 50), repeatF(1.0, 50), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s.DrainedS, 1) {
		t.Fatalf("permanently overloaded queue reported drain %v", s.DrainedS)
	}
	if s.P99Ms != c.SaturationCapMs {
		t.Fatalf("P99 %v, want pegged at the cap", s.P99Ms)
	}
}

func TestEvaluateQueueValidation(t *testing.T) {
	c := DefaultConfig()
	if _, err := c.EvaluateQueue(nil, nil, 1); err == nil {
		t.Fatal("empty series should error")
	}
	if _, err := c.EvaluateQueue(repeatF(1, 3), repeatF(1, 2), 1); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := c.EvaluateQueue(repeatF(1, 3), repeatF(1, 3), 0); err == nil {
		t.Fatal("zero dt should error")
	}
	bad := c
	bad.BaseServiceMs = 0
	if _, err := bad.EvaluateQueue(repeatF(1, 3), repeatF(1, 3), 1); err == nil {
		t.Fatal("invalid config should error")
	}
}

// An outage (freq 0) pins latency at the cap and accumulates the full
// demand as backlog.
func TestEvaluateQueueOutage(t *testing.T) {
	c := DefaultConfig()
	demand := repeatF(0.5, 20)
	freq := append(repeatF(0.0, 10), repeatF(1.0, 10)...)
	s, err := c.EvaluateQueue(demand, freq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxBacklogS < 4.9 {
		t.Fatalf("outage backlog %v, want ≈5", s.MaxBacklogS)
	}
	if s.P99Ms != c.SaturationCapMs {
		t.Fatalf("P99 %v during outage", s.P99Ms)
	}
}
