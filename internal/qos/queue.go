package qos

import (
	"errors"
	"math"

	"sprintcon/internal/stats"
)

// QueueSummary reports the dynamic (fluid-queue) latency evaluation, which
// unlike the memoryless Evaluate carries request backlog across ticks: a
// saturated period hurts until the queue drains, as in a real service.
type QueueSummary struct {
	MeanMs      float64
	P99Ms       float64
	SLOViolFrac float64
	// MaxBacklogS is the deepest backlog in core-seconds of work.
	MaxBacklogS float64
	// DrainedS is the time between the end of the last overload episode
	// (ticks where arrivals exceeded service) and the queue returning to
	// empty — the user-visible recovery tail. 0 if the queue never
	// filled; +Inf if it never drained by series end.
	DrainedS float64
}

// EvaluateQueue runs a discrete-time fluid queue over parallel demand and
// normalized-frequency series with step dtS:
//
//	backlog' = max(0, backlog + (demand − freqNorm)·dt)
//
// (work arrives at `demand` core-seconds per second and is served at
// `freqNorm`). Per-tick latency is the M/M/1 time at the current
// utilization plus the time to drain the backlog ahead of a new arrival.
func (c Config) EvaluateQueue(demand, freqNorm []float64, dtS float64) (QueueSummary, error) {
	if err := c.Validate(); err != nil {
		return QueueSummary{}, err
	}
	if len(demand) != len(freqNorm) || len(demand) == 0 {
		return QueueSummary{}, errors.New("qos: need equal non-empty series")
	}
	if dtS <= 0 {
		return QueueSummary{}, errors.New("qos: dtS must be positive")
	}

	var backlog float64 // core-seconds of queued work
	lat := make([]float64, len(demand))
	var viol int
	out := QueueSummary{}
	everFilled := false
	lastOverloadEnd := 0.0 // time the most recent arrival-overload ended
	drainAfter := math.Inf(1)
	for i := range demand {
		f := freqNorm[i]
		base, _ := c.ResponseTime(demand[i], f)
		ms := base
		if backlog > 0 && f > 0 {
			ms += backlog / f * 1000
		}
		if ms > c.SaturationCapMs {
			ms = c.SaturationCapMs
		}
		lat[i] = ms
		if ms > c.SLOMs {
			viol++
		}

		if demand[i] > f {
			lastOverloadEnd = float64(i+1) * dtS
		}
		backlog += (demand[i] - f) * dtS
		if backlog < 0 {
			backlog = 0
		}
		if backlog > out.MaxBacklogS {
			out.MaxBacklogS = backlog
		}
		if backlog > 0 {
			everFilled = true
			drainAfter = math.Inf(1)
		} else if everFilled && math.IsInf(drainAfter, 1) {
			drainAfter = float64(i+1)*dtS - lastOverloadEnd
		}
	}
	switch {
	case !everFilled:
		out.DrainedS = 0
	case backlog > 0:
		out.DrainedS = math.Inf(1)
	default:
		out.DrainedS = drainAfter
	}

	p99, err := stats.Percentile(lat, 0.99)
	if err != nil {
		return QueueSummary{}, err
	}
	out.MeanMs = stats.Mean(lat)
	out.P99Ms = p99
	out.SLOViolFrac = float64(viol) / float64(len(lat))
	return out, nil
}
