// Package cpu models CPU cores with per-core DVFS, the hardware adaptation
// knob SprintCon manipulates (paper Section IV-D): a discrete P-state table
// from 400 MHz to 2.0 GHz, per-core frequency and utilization state, and a
// workload-class tag telling the controllers which cores run interactive
// versus batch work.
package cpu

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Class labels what a core is running. SprintCon's server power controller
// keeps Interactive cores at peak frequency and manipulates only Batch cores
// (paper Section IV-C).
type Class int

const (
	// Idle cores run no workload.
	Idle Class = iota
	// Interactive cores serve latency-critical request traffic.
	Interactive
	// Batch cores run throughput work with deadlines in minutes.
	Batch
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Idle:
		return "idle"
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// PStateTable is an immutable, ascending table of available core
// frequencies in GHz. It marshals to JSON as the plain frequency list so
// scenario files stay readable.
type PStateTable struct {
	freqs []float64
}

// MarshalJSON implements json.Marshaler.
func (t PStateTable) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.freqs)
}

// UnmarshalJSON implements json.Unmarshaler, validating that the list is
// non-empty, positive and strictly ascending.
func (t *PStateTable) UnmarshalJSON(data []byte) error {
	var freqs []float64
	if err := json.Unmarshal(data, &freqs); err != nil {
		return err
	}
	if len(freqs) == 0 {
		return errors.New("cpu: empty P-state list")
	}
	for i, f := range freqs {
		if f <= 0 {
			return fmt.Errorf("cpu: P-state %d = %g must be positive", i, f)
		}
		if i > 0 && f <= freqs[i-1] {
			return fmt.Errorf("cpu: P-states not strictly ascending at %d", i)
		}
	}
	t.freqs = freqs
	return nil
}

// NewPStateTable builds a table covering [minGHz, maxGHz] in steps of
// stepGHz (the last state is exactly maxGHz).
func NewPStateTable(minGHz, maxGHz, stepGHz float64) (PStateTable, error) {
	if minGHz <= 0 || maxGHz <= minGHz || stepGHz <= 0 {
		return PStateTable{}, errors.New("cpu: need 0 < min < max and step > 0")
	}
	var freqs []float64
	for f := minGHz; f < maxGHz-1e-9; f += stepGHz {
		freqs = append(freqs, f)
	}
	freqs = append(freqs, maxGHz)
	return PStateTable{freqs: freqs}, nil
}

// DefaultPStates returns the paper's 400 MHz – 2.0 GHz range in 100 MHz steps.
func DefaultPStates() PStateTable {
	t, err := NewPStateTable(0.4, 2.0, 0.1)
	if err != nil {
		panic(err) // statically valid
	}
	return t
}

// Min returns the lowest frequency.
func (t PStateTable) Min() float64 { return t.freqs[0] }

// Max returns the highest frequency.
func (t PStateTable) Max() float64 { return t.freqs[len(t.freqs)-1] }

// Len returns the number of P-states.
func (t PStateTable) Len() int { return len(t.freqs) }

// Freqs returns a copy of the table.
func (t PStateTable) Freqs() []float64 {
	out := make([]float64, len(t.freqs))
	copy(out, t.freqs)
	return out
}

// Quantize maps a requested frequency to the nearest available P-state
// (ties round up), clamping to the table's range.
func (t PStateTable) Quantize(f float64) float64 {
	if f <= t.freqs[0] {
		return t.freqs[0]
	}
	last := len(t.freqs) - 1
	if f >= t.freqs[last] {
		return t.freqs[last]
	}
	// Binary search for the first state ≥ f.
	lo, hi := 0, last
	for lo < hi {
		mid := (lo + hi) / 2
		if t.freqs[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && f-t.freqs[lo-1] < t.freqs[lo]-f {
		return t.freqs[lo-1]
	}
	return t.freqs[lo]
}

// Core is one CPU core's visible state.
type Core struct {
	Freq  float64 // current frequency, GHz (a valid P-state)
	Util  float64 // utilization in [0, 1] over the last period
	Class Class
}

// CPU is a set of cores sharing one P-state table, with per-core DVFS
// (paper Section IV-D: DVFS is applied per core for small overhead).
//
// The per-core state is stored struct-of-arrays — parallel freqs/utils/
// classes slices — so the per-tick plant math (power summation, batch
// frequency writes) runs as contiguous slice sweeps instead of strided
// struct walks. Core(i) reassembles the array-of-structs view on demand.
type CPU struct {
	table   PStateTable
	freqs   []float64
	utils   []float64
	classes []Class
}

// New returns a CPU with n idle cores at the lowest P-state.
func New(n int, table PStateTable) (*CPU, error) {
	if n <= 0 {
		return nil, errors.New("cpu: need at least one core")
	}
	if table.Len() == 0 {
		return nil, errors.New("cpu: empty P-state table")
	}
	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = table.Min()
	}
	return &CPU{
		table:   table,
		freqs:   freqs,
		utils:   make([]float64, n),
		classes: make([]Class, n),
	}, nil
}

// NumCores returns the number of cores.
func (c *CPU) NumCores() int { return len(c.freqs) }

// Table returns the P-state table.
func (c *CPU) Table() PStateTable { return c.table }

// Core returns core i's state.
func (c *CPU) Core(i int) Core {
	return Core{Freq: c.freqs[i], Util: c.utils[i], Class: c.classes[i]}
}

// Freqs returns the per-core frequency slice. It is live state shared with
// the CPU — read-only for callers; use SetFreq to mutate.
func (c *CPU) Freqs() []float64 { return c.freqs }

// Utils returns the per-core utilization slice (live, read-only).
func (c *CPU) Utils() []float64 { return c.utils }

// Classes returns the per-core class slice (live, read-only).
func (c *CPU) Classes() []Class { return c.classes }

// SetFreq requests frequency f on core i; the applied (quantized) frequency
// is returned. This is the paper's "server modulator" writing a frequency.
func (c *CPU) SetFreq(i int, f float64) float64 {
	q := c.table.Quantize(f)
	c.freqs[i] = q
	return q
}

// SetUtil records core i's measured utilization, clamped to [0, 1].
func (c *CPU) SetUtil(i int, u float64) {
	c.utils[i] = math.Min(1, math.Max(0, u))
}

// SetClass assigns the workload class of core i.
func (c *CPU) SetClass(i int, cl Class) { c.classes[i] = cl }

// CoresOf returns the indices of cores with the given class, in order.
func (c *CPU) CoresOf(cl Class) []int {
	var out []int
	for i, cc := range c.classes {
		if cc == cl {
			out = append(out, i)
		}
	}
	return out
}

// MeanFreqOf returns the average frequency of cores in class cl, or 0 when
// the class is empty.
func (c *CPU) MeanFreqOf(cl Class) float64 {
	var sum float64
	var n int
	for i, cc := range c.classes {
		if cc == cl {
			sum += c.freqs[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanUtilOf returns the average utilization of cores in class cl, or 0
// when the class is empty.
func (c *CPU) MeanUtilOf(cl Class) float64 {
	var sum float64
	var n int
	for i, cc := range c.classes {
		if cc == cl {
			sum += c.utils[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
