package cpu

import "testing"

// FuzzQuantize checks that any finite request maps to a table member with
// the round-to-nearest property, without panicking.
func FuzzQuantize(f *testing.F) {
	f.Add(1.23)
	f.Add(-5.0)
	f.Add(1e300)
	f.Fuzz(func(t *testing.T, in float64) {
		tab := DefaultPStates()
		q := tab.Quantize(in)
		member := false
		for _, v := range tab.Freqs() {
			if v == q {
				member = true
				break
			}
		}
		if !member {
			t.Fatalf("Quantize(%v) = %v not in the table", in, q)
		}
		if in >= tab.Min() && in <= tab.Max() {
			if d := q - in; d > 0.05+1e-9 || d < -0.05-1e-9 {
				t.Fatalf("Quantize(%v) = %v further than half a step", in, q)
			}
		}
	})
}
