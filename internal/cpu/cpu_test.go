package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"sprintcon/internal/mathx"
)

func TestNewPStateTableValidation(t *testing.T) {
	if _, err := NewPStateTable(0, 2, 0.1); err == nil {
		t.Error("zero min should fail")
	}
	if _, err := NewPStateTable(2, 1, 0.1); err == nil {
		t.Error("max < min should fail")
	}
	if _, err := NewPStateTable(1, 2, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestDefaultPStates(t *testing.T) {
	tab := DefaultPStates()
	if tab.Min() != 0.4 || tab.Max() != 2.0 {
		t.Fatalf("range [%v, %v], want [0.4, 2.0]", tab.Min(), tab.Max())
	}
	if tab.Len() != 17 {
		t.Fatalf("Len = %d, want 17 (0.4..2.0 by 0.1)", tab.Len())
	}
	fs := tab.Freqs()
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatal("P-states must be strictly ascending")
		}
	}
}

func TestQuantize(t *testing.T) {
	tab := DefaultPStates()
	cases := []struct{ in, want float64 }{
		{0.0, 0.4}, {0.39, 0.4}, {0.44, 0.4}, {0.46, 0.5},
		{1.0, 1.0}, {1.23, 1.2}, {1.26, 1.3}, {2.0, 2.0}, {9.9, 2.0},
	}
	for _, c := range cases {
		if got := tab.Quantize(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: Quantize returns a table member within half a step of any
// in-range request, and is idempotent.
func TestQuantizeProperty(t *testing.T) {
	tab := DefaultPStates()
	member := func(f float64) bool {
		for _, v := range tab.Freqs() {
			if math.Abs(v-f) < 1e-12 {
				return true
			}
		}
		return false
	}
	f := func(raw float64) bool {
		in := 0.4 + math.Mod(math.Abs(raw), 1.6)
		q := tab.Quantize(in)
		if !member(q) {
			return false
		}
		if math.Abs(q-in) > 0.05+1e-9 {
			return false
		}
		return tab.Quantize(q) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUCoreStateManagement(t *testing.T) {
	c, err := New(8, DefaultPStates())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCores() != 8 {
		t.Fatalf("NumCores = %d", c.NumCores())
	}
	for i := 0; i < 4; i++ {
		c.SetClass(i, Interactive)
	}
	for i := 4; i < 8; i++ {
		c.SetClass(i, Batch)
	}
	got := c.CoresOf(Batch)
	if len(got) != 4 || got[0] != 4 {
		t.Fatalf("CoresOf(Batch) = %v", got)
	}
	applied := c.SetFreq(5, 1.234)
	if applied != 1.2 {
		t.Fatalf("SetFreq applied %v, want quantized 1.2", applied)
	}
	if c.Core(5).Freq != 1.2 {
		t.Fatal("core state not updated")
	}
	c.SetUtil(5, 1.7)
	if c.Core(5).Util != 1 {
		t.Fatal("Util should clamp to 1")
	}
	c.SetUtil(5, -0.5)
	if c.Core(5).Util != 0 {
		t.Fatal("Util should clamp to 0")
	}
}

func TestMeanFreqAndUtilOf(t *testing.T) {
	c, _ := New(4, DefaultPStates())
	c.SetClass(0, Batch)
	c.SetClass(1, Batch)
	c.SetFreq(0, 1.0)
	c.SetFreq(1, 2.0)
	c.SetUtil(0, 0.5)
	c.SetUtil(1, 1.0)
	if got := c.MeanFreqOf(Batch); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("MeanFreqOf = %v", got)
	}
	if got := c.MeanUtilOf(Batch); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("MeanUtilOf = %v", got)
	}
	if got := c.MeanFreqOf(Interactive); got != 0 {
		t.Fatalf("empty class mean = %v, want 0", got)
	}
}

func TestClassString(t *testing.T) {
	if Idle.String() != "idle" || Interactive.String() != "interactive" || Batch.String() != "batch" {
		t.Fatal("class names wrong")
	}
	if Class(42).String() == "" {
		t.Fatal("unknown class should still print")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultPStates()); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := New(4, PStateTable{}); err == nil {
		t.Error("empty table should fail")
	}
}

// The mathx batch-quantization kernel must agree bitwise with the scalar
// P-state quantizer at every input — it is the struct-of-arrays counterpart
// of Quantize, and any drift between the two would let a vectorized plant
// path diverge from the per-core model.
func TestQuantizeSliceParityWithTable(t *testing.T) {
	table := DefaultPStates()
	grid := table.Freqs()

	var in []float64
	for f := -0.3; f <= 2.6; f += 0.007 {
		in = append(in, f)
	}
	in = append(in, grid...) // exact P-states map to themselves
	for i := 1; i < len(grid); i++ {
		in = append(in, (grid[i-1]+grid[i])/2) // midpoints: ties round up
	}

	got := make([]float64, len(in))
	copy(got, in)
	mathx.QuantizeSlice(got, grid)
	for i, f := range in {
		want := table.Quantize(f)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("input %v: kernel %v, scalar %v", f, got[i], want)
		}
	}
}
