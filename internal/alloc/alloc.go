// Package alloc implements SprintCon's power load allocator (paper
// Section IV), the component that quantitatively divides sprinting power
// between the two sources:
//
//   - P_cb, the circuit-breaker power target, scheduled from the workload
//     burst duration: unconstrained for sub-minute bursts, a single
//     reduced-degree overload sized to the burst for 5–10 minute bursts,
//     and the periodic overload/recovery square wave for long sprints
//     (1.25× rated for 150 s, rated for 300 s, repeating);
//   - P_batch, the batch power budget, adapted every 30 s from (1) the
//     batch jobs' deadline progress and (2) the interactive workload's
//     recent power demand on the CB headroom.
//
// P_batch is maintained as P_cb(t) − interactive reserve − idle share, plus
// a deadline shift when the CB cannot afford the deadline-required batch
// power on its own. The interactive reserve is adapted every period either
// from a high quantile of the observed interactive power (default) or with
// the paper's literal saturation-threshold stepping rule (ablation mode).
// Because P_cb(t) follows the overload schedule, P_batch inherits the
// overload bonus: batch cores speed up while the breaker is overloaded and
// throttle down while it recovers — the phase-locked batch frequency
// pattern of the paper's Fig. 7(a).
package alloc

import (
	"errors"
	"math"
	"slices"

	"sprintcon/internal/engine"
)

// AdaptMode selects how the interactive reserve is adapted.
type AdaptMode int

const (
	// AdaptQuantile sets the reserve to a high quantile of the observed
	// interactive power each period (default; converges in one period).
	AdaptQuantile AdaptMode = iota
	// AdaptThreshold applies the paper's literal rule: step the budget
	// by a fixed amount when headroom saturation crosses the thresholds.
	AdaptThreshold
)

// Config parameterizes the allocator.
type Config struct {
	// RatedPowerW is the breaker's continuous rating (paper: 3.2 kW).
	RatedPowerW float64
	// OverloadDegree is the periodic-overload degree (paper: 1.25).
	OverloadDegree float64
	// OverloadS and RecoveryS are the periodic schedule's phase lengths
	// (paper: 150 s and 300 s).
	OverloadS float64
	RecoveryS float64
	// TripBudgetS is the breaker's overload-seconds budget
	// Θ = τ(o)·(o²−1), used to size safe constant overloads for
	// medium-length bursts; it must match the breaker's calibration.
	TripBudgetS float64
	// SafetyMargin derates computed overload degrees (fraction).
	SafetyMargin float64
	// ShortBurstS: bursts shorter than this are left uncontrolled
	// (paper: < 1 minute, "perhaps unnecessary to control").
	ShortBurstS float64
	// MidBurstS: bursts up to this length get one constant overload
	// sized to last the whole burst (paper: 5–10 minutes). Longer bursts
	// use the periodic schedule.
	MidBurstS float64
	// PBatchPeriodS is the P_batch adaptation period (paper: 30 s,
	// longer than the server power controller's settling time).
	PBatchPeriodS float64
	// Mode selects quantile (default) or threshold adaptation.
	Mode AdaptMode
	// ReserveQuantile is the interactive-power quantile reserved out of
	// the CB budget in quantile mode.
	ReserveQuantile float64
	// PBatchStepW is the stepping size in threshold mode.
	PBatchStepW float64
	// HeadroomHighFrac / HeadroomLowFrac are the threshold mode's
	// saturation thresholds (paper: "more than 90 % of the time").
	HeadroomHighFrac float64
	HeadroomLowFrac  float64
	// DeadlineMargin inflates the deadline-required batch power
	// (fraction) so that model error does not cause misses.
	DeadlineMargin float64
	// PhaseOffsetS shifts the periodic overload schedule in time, which
	// is how every multi-rack layer packs overload windows: the E12
	// stagger spreads co-located racks' phases evenly, the link
	// coordinator bootstraps and re-packs K-at-a-time slot offsets over
	// the control link, and the hierarchical sweep assigns each rack the
	// offset of slot ⌊rack/K⌋ within its row. All of them flatten the
	// aggregate draw on the feeder above.
	PhaseOffsetS float64
}

// DefaultConfig returns the paper's evaluation settings for a breaker with
// the given rating and trip budget.
func DefaultConfig(ratedW, tripBudgetS float64) Config {
	return Config{
		RatedPowerW:      ratedW,
		OverloadDegree:   1.25,
		OverloadS:        150,
		RecoveryS:        300,
		TripBudgetS:      tripBudgetS,
		SafetyMargin:     0.03,
		ShortBurstS:      60,
		MidBurstS:        600,
		PBatchPeriodS:    30,
		Mode:             AdaptQuantile,
		ReserveQuantile:  0.8,
		PBatchStepW:      160,
		HeadroomHighFrac: 0.9,
		HeadroomLowFrac:  0.5,
		DeadlineMargin:   0.15,
	}
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	switch {
	case c.RatedPowerW <= 0:
		return errors.New("alloc: RatedPowerW must be positive")
	case c.OverloadDegree <= 1:
		return errors.New("alloc: OverloadDegree must exceed 1")
	case c.OverloadS <= 0 || c.RecoveryS <= 0:
		return errors.New("alloc: overload/recovery durations must be positive")
	case c.TripBudgetS <= 0:
		return errors.New("alloc: TripBudgetS must be positive")
	case c.SafetyMargin < 0 || c.SafetyMargin >= 1:
		return errors.New("alloc: SafetyMargin must be in [0, 1)")
	case c.ShortBurstS < 0 || c.MidBurstS <= c.ShortBurstS:
		return errors.New("alloc: need 0 ≤ ShortBurstS < MidBurstS")
	case c.PBatchPeriodS <= 0 || c.PBatchStepW <= 0:
		return errors.New("alloc: P_batch period and step must be positive")
	case c.ReserveQuantile <= 0 || c.ReserveQuantile > 1:
		return errors.New("alloc: ReserveQuantile must be in (0, 1]")
	case c.HeadroomHighFrac <= c.HeadroomLowFrac || c.HeadroomHighFrac > 1 || c.HeadroomLowFrac < 0:
		return errors.New("alloc: need 0 ≤ HeadroomLowFrac < HeadroomHighFrac ≤ 1")
	case c.DeadlineMargin < 0:
		return errors.New("alloc: DeadlineMargin must be non-negative")
	case c.PhaseOffsetS < 0:
		return errors.New("alloc: PhaseOffsetS must be non-negative")
	}
	return nil
}

// Allocator is the mutable allocator state for one sprint.
type Allocator struct {
	cfg        Config
	burstStart float64
	burstDur   float64
	started    bool

	idleW    float64 // design-model estimate of unassigned cores' power
	reserveW float64 // interactive power reserved out of the CB budget
	shiftW   float64 // deadline shift added on top of the CB affordance
	bMin     float64 // physical batch power floor (last reported)
	bMax     float64 // physical batch power ceiling (last reported)

	lastUpdate  float64
	samples     []float64 // interactive power observations this window
	samplesHigh int       // threshold mode: saturated samples
	qScratch    []float64 // reused sort buffer for the reserve quantile

	// conf derates the overload bonus: with measurement confidence c the
	// scheduled budget becomes rated + c·(P_cb − rated). Sprinting past
	// the breaker rating is only safe while the telemetry that closes the
	// loop is trustworthy, so degraded confidence shrinks the overload
	// proportionally and confidence 0 removes it entirely.
	conf float64
}

// maxSamples bounds the observation window (at 1 Hz this is 10 periods).
const maxSamples = 300

// New returns an allocator or an error for invalid configuration.
func New(cfg Config) (*Allocator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Allocator{cfg: cfg, bMax: math.Inf(1), conf: 1}, nil
}

// SetConfidence sets the measurement-confidence factor in [0, 1] that
// derates the overload portion of the CB budget (NaN is treated as 0).
func (a *Allocator) SetConfidence(c float64) {
	if math.IsNaN(c) || c < 0 {
		c = 0
	} else if c > 1 {
		c = 1
	}
	a.conf = c
}

// Confidence returns the current measurement-confidence factor.
func (a *Allocator) Confidence() float64 { return a.conf }

// SetPhaseOffsetS re-phases the periodic overload schedule at runtime — the
// control link's re-pack path moves a rack to a different overload slot this
// way. Non-finite or negative offsets are clamped to 0 (the validated
// config range).
func (a *Allocator) SetPhaseOffsetS(s float64) {
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
		s = 0
	}
	a.cfg.PhaseOffsetS = s
}

// Config returns the allocator configuration.
func (a *Allocator) Config() Config { return a.cfg }

// BurstAnchorS returns the absolute simulation time the current burst's
// periodic schedule is anchored at (StartBurst's now), or 0 when no burst is
// active. PCb's square wave runs on mod(now − anchor + PhaseOffsetS, cycle),
// so a consumer expressing offsets in an absolute t=0 frame — the cluster
// control link's slot assignments — must add the anchor before SetPhaseOffsetS.
func (a *Allocator) BurstAnchorS() float64 {
	if !a.started {
		return 0
	}
	return a.burstStart
}

// StartBurst begins a sprint of the given expected duration at time now.
// idleW is the design-model power of unassigned cores; the initial
// interactive reserve seeds the budget until the first adaptation.
func (a *Allocator) StartBurst(now, expectedDurationS, idleW, initialReserveW float64) {
	a.burstStart = now
	a.burstDur = expectedDurationS
	a.started = true
	a.idleW = idleW
	a.reserveW = math.Max(0, initialReserveW)
	a.shiftW = 0
	// Arm the first P_batch update to fire on the very first control
	// period, so the deadline shift is active from the sprint's start.
	a.lastUpdate = now - a.cfg.PBatchPeriodS
	a.samples = a.samples[:0]
	a.samplesHigh = 0
}

// Started reports whether a burst is active.
func (a *Allocator) Started() bool { return a.started }

// EndBurst stops the sprint.
func (a *Allocator) EndBurst() { a.started = false }

// SafeConstantDegree returns the largest overload degree sustainable for
// durationS seconds within the breaker's trip budget, derated by the safety
// margin and capped at the configured periodic degree. Durations at or
// beyond the budget's reach return 1 (no overload possible for that long).
func (a *Allocator) SafeConstantDegree(durationS float64) float64 {
	if durationS <= 0 {
		return a.cfg.OverloadDegree
	}
	// τ(o) = Θ/(o²−1) = durationS  →  o = √(1 + Θ/durationS).
	o := math.Sqrt(1 + a.cfg.TripBudgetS/durationS)
	o *= 1 - a.cfg.SafetyMargin
	if o > a.cfg.OverloadDegree {
		o = a.cfg.OverloadDegree
	}
	if o < 1 {
		o = 1
	}
	return o
}

// PCb returns the circuit-breaker power target at time now (paper
// Section IV-A). +Inf means "uncontrolled" (sub-minute bursts).
func (a *Allocator) PCb(now float64) float64 {
	if !a.started {
		return a.cfg.RatedPowerW
	}
	switch {
	case a.burstDur < a.cfg.ShortBurstS:
		return math.Inf(1)
	case a.burstDur <= a.cfg.MidBurstS:
		// One constant overload lasting the whole burst, at the
		// largest degree the trip budget allows.
		return a.derate(a.cfg.RatedPowerW * a.SafeConstantDegree(a.burstDur))
	default:
		// Periodic overload: 150 s at degree, 300 s at rated.
		phase := math.Mod(now-a.burstStart+a.cfg.PhaseOffsetS, a.cfg.OverloadS+a.cfg.RecoveryS)
		if phase < 0 {
			phase += a.cfg.OverloadS + a.cfg.RecoveryS
		}
		if phase < a.cfg.OverloadS {
			return a.derate(a.cfg.RatedPowerW * a.cfg.OverloadDegree)
		}
		return a.cfg.RatedPowerW
	}
}

// derate scales the overload portion of a CB budget by the measurement
// confidence: rated + conf·(pcb − rated).
func (a *Allocator) derate(pcbW float64) float64 {
	if a.conf >= 1 || pcbW <= a.cfg.RatedPowerW {
		return pcbW
	}
	return a.cfg.RatedPowerW + a.conf*(pcbW-a.cfg.RatedPowerW)
}

// Overloading reports whether the schedule is in an overload phase at now.
func (a *Allocator) Overloading(now float64) bool {
	return a.PCb(now) > a.cfg.RatedPowerW
}

// OverloadBonusW returns the extra CB power available while overloading:
// rated × (degree − 1).
func (a *Allocator) OverloadBonusW() float64 {
	return a.cfg.RatedPowerW * (a.cfg.OverloadDegree - 1)
}

// OverloadFrac returns the fraction of the periodic schedule spent
// overloading.
func (a *Allocator) OverloadFrac() float64 {
	return a.cfg.OverloadS / (a.cfg.OverloadS + a.cfg.RecoveryS)
}

// avgBonusW returns the cycle-average extra CB power the schedule provides
// above the rating.
func (a *Allocator) avgBonusW() float64 {
	if !a.started {
		return 0
	}
	switch {
	case a.burstDur < a.cfg.ShortBurstS:
		return a.OverloadBonusW()
	case a.burstDur <= a.cfg.MidBurstS:
		return a.cfg.RatedPowerW * (a.SafeConstantDegree(a.burstDur) - 1)
	default:
		return a.OverloadFrac() * a.OverloadBonusW()
	}
}

// InteractiveReserveW returns the current interactive power reserve.
func (a *Allocator) InteractiveReserveW() float64 { return a.reserveW }

// DeadlineShiftW returns the current deadline shift.
func (a *Allocator) DeadlineShiftW() float64 { return a.shiftW }

// PBatchAt returns the batch power budget at time now: the CB target minus
// the interactive reserve and idle share, plus the deadline shift. Because
// P_cb(t) carries the overload schedule, the batch budget rises by the full
// overload bonus while the breaker is overloaded. +Inf P_cb (uncontrolled
// short bursts) yields +Inf (the caller clamps to the batch maximum).
func (a *Allocator) PBatchAt(now float64) float64 {
	pcb := a.PCb(now)
	if math.IsInf(pcb, 1) {
		return a.bMax
	}
	return clampF(pcb-a.reserveW-a.idleW+a.shiftW, a.bMin, a.bMax)
}

// PBatch returns the recovery-phase (rated P_cb) batch budget.
func (a *Allocator) PBatch() float64 {
	return clampF(a.cfg.RatedPowerW-a.reserveW-a.idleW+a.shiftW, a.bMin, a.bMax)
}

// ObserveHeadroom records one interactive-power sample for the adaptation
// window (paper: "the fluctuation of interactive workload power
// consumption" is the second P_batch factor).
func (a *Allocator) ObserveHeadroom(pInterW, now float64) {
	if !a.started {
		return
	}
	if math.IsNaN(pInterW) || math.IsInf(pInterW, 0) {
		// A corrupted sample would poison the reserve quantile for a
		// whole adaptation window; drop it.
		return
	}
	pcb := a.PCb(now)
	if math.IsInf(pcb, 1) {
		return
	}
	if len(a.samples) < maxSamples {
		a.samples = append(a.samples, pInterW)
	}
	if pInterW > pcb-a.PBatchAt(now) {
		a.samplesHigh++
	}
}

// MaybeUpdatePBatch applies the two-factor P_batch adaptation if a full
// period has elapsed. pDeadlineW is the batch power required to meet all
// deadlines (computed by the caller from the progress model);
// pBatchMinW/pBatchMaxW bound the power batch cores can physically consume
// (all at floor / all at peak frequency). It returns whether an update
// occurred.
func (a *Allocator) MaybeUpdatePBatch(now, pDeadlineW, pBatchMinW, pBatchMaxW float64) bool {
	if !a.started || now-a.lastUpdate < a.cfg.PBatchPeriodS {
		return false
	}
	a.lastUpdate = now
	a.bMin, a.bMax = pBatchMinW, pBatchMaxW

	// Factor 2: interactive demand on the CB headroom.
	if len(a.samples) > 0 {
		switch a.cfg.Mode {
		case AdaptThreshold:
			frac := float64(a.samplesHigh) / float64(len(a.samples))
			switch {
			case frac > a.cfg.HeadroomHighFrac:
				// Interactive saturates the headroom: grow the
				// reserve (shrink P_batch) so interactive work
				// draws CB power instead of UPS power.
				a.reserveW += a.cfg.PBatchStepW
			case frac < a.cfg.HeadroomLowFrac:
				a.reserveW = math.Max(0, a.reserveW-a.cfg.PBatchStepW)
			}
		default:
			a.qScratch = append(a.qScratch[:0], a.samples...)
			a.reserveW = quantile(a.qScratch, a.cfg.ReserveQuantile)
		}
	}
	a.samples = a.samples[:0]
	a.samplesHigh = 0

	// Factor 1: deadline requirement. Choose the (signed) shift whose
	// *delivered* cycle-average budget (after clamping to the batch
	// cores' physical range) equals the deadline-required power: a
	// positive shift makes the UPS cover a CB shortfall; a negative one
	// throttles batch work that would otherwise finish needlessly early
	// (paper Section VII-D: "only SprintCon can efficiently make use of
	// the time before deadlines to save the power consumption of batch
	// workloads").
	need := pDeadlineW * (1 + a.cfg.DeadlineMargin)
	phi := a.OverloadFrac()
	base := a.cfg.RatedPowerW - a.reserveW - a.idleW
	bonus := a.OverloadBonusW()
	delivered := func(shift float64) float64 {
		ov := clampF(base+bonus+shift, pBatchMinW, pBatchMaxW)
		rec := clampF(base+shift, pBatchMinW, pBatchMaxW)
		return phi*ov + (1-phi)*rec
	}
	lo := pBatchMinW - base - bonus // delivers the floor everywhere
	hi := pBatchMaxW - base         // delivers the ceiling everywhere
	switch {
	case need <= delivered(lo):
		a.shiftW = lo
	case need >= delivered(hi):
		a.shiftW = hi
	default:
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			if delivered(mid) < need {
				lo = mid
			} else {
				hi = mid
			}
		}
		a.shiftW = hi
	}
	return true
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NextBudgetEdge returns the absolute time of the next point at which the
// CB budget schedule PCb(·) can change value, or +Inf when the schedule is
// constant in time (no burst, uncontrolled short burst, or a single constant
// mid-burst overload). The event engine uses this as its policy-edge
// barrier: a quiescent span must not be fast-forwarded across an
// overload↔recovery transition.
func (a *Allocator) NextBudgetEdge(now float64) float64 {
	if !a.started || a.burstDur <= a.cfg.MidBurstS {
		return math.Inf(1)
	}
	cycle := a.cfg.OverloadS + a.cfg.RecoveryS
	phase := math.Mod(now-a.burstStart+a.cfg.PhaseOffsetS, cycle)
	if phase < 0 {
		phase += cycle
	}
	if phase < a.cfg.OverloadS {
		return now + (a.cfg.OverloadS - phase)
	}
	return now + (cycle - phase)
}

// QuiescenceDigest appends the allocator state that must be bit-stable for
// a quiescent span to the digest. The adaptation-window bookkeeping
// (lastUpdate, samples, samplesHigh, qScratch) is deliberately excluded:
// the event engine replays ObserveHeadroom and MaybeUpdatePBatch exactly
// across a span, so that state evolves identically whether or not ticks are
// fast-forwarded, while the digested fields are proven rewritten-identically
// at a certified fixed point.
func (a *Allocator) QuiescenceDigest(d *engine.Digest) {
	d.F64(a.burstStart)
	d.F64(a.burstDur)
	d.Bool(a.started)
	d.F64(a.idleW)
	d.F64(a.reserveW)
	d.F64(a.shiftW)
	d.F64(a.bMin)
	d.F64(a.bMax)
	d.F64(a.conf)
	d.F64(a.cfg.PhaseOffsetS)
}

// SetReserve overrides the interactive reserve (supervisor degraded modes).
func (a *Allocator) SetReserve(w float64) { a.reserveW = math.Max(0, w) }

// quantile returns the q-quantile of xs (xs is not modified).
// quantile returns the q-quantile of xs, sorting xs in place (callers pass
// a scratch copy so the observation window keeps its arrival order).
func quantile(xs []float64, q float64) float64 {
	slices.Sort(xs)
	if len(xs) == 0 {
		return 0
	}
	idx := int(q*float64(len(xs))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}
