package alloc

import (
	"fmt"
	"math"
)

// State is the serializable snapshot of an allocator mid-sprint. BurstStartS
// stays an absolute simulation time on purpose: the overload/recovery square
// wave is anchored to it, and rebasing it at restore would re-enter an
// overload phase whose thermal budget the breaker already spent.
type State struct {
	BurstStartS float64
	BurstDurS   float64
	Started     bool

	IdleW    float64
	ReserveW float64
	ShiftW   float64
	BMinW    float64
	BMaxW    float64 // +Inf until the first P_batch update

	LastUpdateS float64
	Samples     []float64
	SamplesHigh int
	Confidence  float64
}

// ExportState captures the allocator's mutable state.
func (a *Allocator) ExportState() State {
	return State{
		BurstStartS: a.burstStart,
		BurstDurS:   a.burstDur,
		Started:     a.started,
		IdleW:       a.idleW,
		ReserveW:    a.reserveW,
		ShiftW:      a.shiftW,
		BMinW:       a.bMin,
		BMaxW:       a.bMax,
		LastUpdateS: a.lastUpdate,
		Samples:     append([]float64(nil), a.samples...),
		SamplesHigh: a.samplesHigh,
		Confidence:  a.conf,
	}
}

// RestoreState overwrites the allocator's mutable state from a snapshot.
// BMaxW may legitimately be +Inf (pre-first-update); everything else must be
// finite and within the ranges the allocator's own updates maintain.
func (a *Allocator) RestoreState(st State) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"BurstStartS", st.BurstStartS},
		{"BurstDurS", st.BurstDurS},
		{"IdleW", st.IdleW},
		{"ReserveW", st.ReserveW},
		{"ShiftW", st.ShiftW},
		{"BMinW", st.BMinW},
		{"LastUpdateS", st.LastUpdateS},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("alloc: snapshot %s is %g; must be finite", f.name, f.v)
		}
	}
	switch {
	case math.IsNaN(st.BMaxW) || math.IsInf(st.BMaxW, -1):
		return fmt.Errorf("alloc: snapshot BMaxW is %g", st.BMaxW)
	case st.BMaxW < st.BMinW:
		return fmt.Errorf("alloc: snapshot batch bounds inverted (%g > %g)", st.BMinW, st.BMaxW)
	case st.ReserveW < 0:
		return fmt.Errorf("alloc: snapshot reserve %g W is negative", st.ReserveW)
	case math.IsNaN(st.Confidence) || st.Confidence < 0 || st.Confidence > 1:
		return fmt.Errorf("alloc: snapshot confidence %g outside [0, 1]", st.Confidence)
	case len(st.Samples) > maxSamples:
		return fmt.Errorf("alloc: snapshot holds %d headroom samples (window is %d)", len(st.Samples), maxSamples)
	case st.SamplesHigh < 0 || st.SamplesHigh > maxSamples:
		return fmt.Errorf("alloc: snapshot saturated-sample count %d outside [0, %d]", st.SamplesHigh, maxSamples)
	}
	for _, v := range st.Samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("alloc: snapshot headroom sample is %g; must be finite", v)
		}
	}
	a.burstStart = st.BurstStartS
	a.burstDur = st.BurstDurS
	a.started = st.Started
	a.idleW = st.IdleW
	a.reserveW = st.ReserveW
	a.shiftW = st.ShiftW
	a.bMin = st.BMinW
	a.bMax = st.BMaxW
	a.lastUpdate = st.LastUpdateS
	a.samples = append(a.samples[:0], st.Samples...)
	a.samplesHigh = st.SamplesHigh
	a.conf = st.Confidence
	return nil
}
