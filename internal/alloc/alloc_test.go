package alloc

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

const (
	rated  = 3200.0
	budget = 155 * (1.25*1.25 - 1) // breaker trip budget, ≈87.2 overload-seconds
	idleW  = 0.0
)

func mustNew(t *testing.T) *Allocator {
	t.Helper()
	a, err := New(DefaultConfig(rated, budget))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(rated, budget).Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero rated", func(c *Config) { c.RatedPowerW = 0 }},
		{"degree 1", func(c *Config) { c.OverloadDegree = 1 }},
		{"zero overload", func(c *Config) { c.OverloadS = 0 }},
		{"zero budget", func(c *Config) { c.TripBudgetS = 0 }},
		{"margin 1", func(c *Config) { c.SafetyMargin = 1 }},
		{"mid < short", func(c *Config) { c.MidBurstS = 10 }},
		{"zero period", func(c *Config) { c.PBatchPeriodS = 0 }},
		{"bad quantile", func(c *Config) { c.ReserveQuantile = 0 }},
		{"headroom order", func(c *Config) { c.HeadroomLowFrac = 0.95 }},
		{"negative deadline margin", func(c *Config) { c.DeadlineMargin = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(rated, budget)
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPCbBeforeBurstIsRated(t *testing.T) {
	a := mustNew(t)
	if got := a.PCb(0); got != rated {
		t.Fatalf("PCb = %v, want rated before burst", got)
	}
	if a.Started() {
		t.Fatal("not started")
	}
}

func TestPCbShortBurstUncontrolled(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 30, idleW, 1000)
	if got := a.PCb(10); !math.IsInf(got, 1) {
		t.Fatalf("short burst PCb = %v, want +Inf (uncontrolled)", got)
	}
	if got := a.PBatchAt(10); !math.IsInf(got, 1) {
		t.Fatalf("short burst PBatchAt = %v, want +Inf", got)
	}
}

func TestPCbMidBurstConstantSafeOverload(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 480, idleW, 1000) // 8 minutes
	p0 := a.PCb(10)
	p1 := a.PCb(400)
	if p0 != p1 {
		t.Fatalf("mid burst PCb should be constant: %v vs %v", p0, p1)
	}
	deg := p0 / rated
	if deg <= 1 || deg >= 1.25 {
		t.Fatalf("degree %v should be between 1 and the periodic 1.25", deg)
	}
	// The chosen degree must respect the trip budget over the burst.
	if (deg*deg-1)*480 > budget {
		t.Fatalf("degree %v would trip within 480 s", deg)
	}
}

func TestPCbLongBurstPeriodicSchedule(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 900, idleW, 1000)
	// Paper's example: rated 3.2 kW → 4.0 kW during overload, 3.2 kW
	// during recovery, repeating with 150/300 s phases.
	for _, tc := range []struct {
		at   float64
		want float64
	}{
		{0, 4000}, {149, 4000}, {151, 3200}, {449, 3200}, {451, 4000}, {599, 4000}, {600, 3200},
	} {
		if got := a.PCb(tc.at); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("PCb(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if !a.Overloading(10) || a.Overloading(200) {
		t.Fatal("Overloading phase detection wrong")
	}
}

func TestPeriodicScheduleRespectsBreakerBudget(t *testing.T) {
	// One overload phase must consume less than the full trip budget:
	// 150 s · (1.25²−1) = 84.4 < 87.2.
	a := mustNew(t)
	cfg := a.Config()
	spent := cfg.OverloadS * (cfg.OverloadDegree*cfg.OverloadDegree - 1)
	if spent >= budget {
		t.Fatalf("overload phase spends %v of %v budget", spent, budget)
	}
	// And the recovery phase restores it all: 300 s ≥ full recovery.
	if cfg.RecoveryS < spent/(budget/300) {
		t.Fatalf("recovery %v s cannot restore %v overload-seconds", cfg.RecoveryS, spent)
	}
}

func TestSafeConstantDegreeMonotone(t *testing.T) {
	a := mustNew(t)
	prev := math.Inf(1)
	for _, d := range []float64{60, 120, 300, 600, 1200} {
		o := a.SafeConstantDegree(d)
		if o > prev {
			t.Fatalf("degree should not grow with duration at %v", d)
		}
		if o < 1 || o > 1.25 {
			t.Fatalf("degree %v out of range at duration %v", o, d)
		}
		prev = o
	}
	if got := a.SafeConstantDegree(0); got != 1.25 {
		t.Fatalf("zero duration degree = %v, want cap", got)
	}
}

// Property: a constant overload at SafeConstantDegree(d) held for d seconds
// never exceeds the trip budget.
func TestSafeConstantDegreeNeverTripsProperty(t *testing.T) {
	a, err := New(DefaultConfig(rated, budget))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		d := 30 + math.Mod(math.Abs(raw), 3600)
		o := a.SafeConstantDegree(d)
		return (o*o-1)*d <= budget+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPBatchFollowsOverloadSchedule(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 900, idleW, 1800)
	// During overload the batch budget carries the full +800 W bonus.
	ov := a.PBatchAt(10)   // overload phase
	rec := a.PBatchAt(200) // recovery phase
	if math.Abs((ov-rec)-a.OverloadBonusW()) > 1e-9 {
		t.Fatalf("overload bonus = %v, want %v", ov-rec, a.OverloadBonusW())
	}
	if math.Abs(rec-(rated-1800)) > 1e-9 {
		t.Fatalf("recovery budget = %v, want rated − reserve = %v", rec, rated-1800)
	}
}

func TestQuantileReserveAdapts(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 900, idleW, 500)
	// Feed interactive power samples between 1900 and 2100 W.
	for s := 1; s <= 30; s++ {
		a.ObserveHeadroom(1900+200*float64(s%2), float64(s))
	}
	if !a.MaybeUpdatePBatch(31, 100, 0, 3000) {
		t.Fatal("update should fire after the period")
	}
	r := a.InteractiveReserveW()
	if r < 1900 || r > 2100 {
		t.Fatalf("reserve %v should land in the observed range", r)
	}
}

func TestDeadlineShiftCoversShortfall(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 900, idleW, 500)
	for s := 1; s <= 30; s++ {
		a.ObserveHeadroom(2800, float64(s)) // heavy interactive load
	}
	need := 1500.0
	a.MaybeUpdatePBatch(31, need, 0, 5000)
	// Cycle-average affordance: rated + avg bonus − reserve − idle.
	afford := rated + a.OverloadFrac()*a.OverloadBonusW() - a.InteractiveReserveW()
	wantShift := need*(1+a.Config().DeadlineMargin) - afford
	if math.Abs(a.DeadlineShiftW()-wantShift) > 1e-6 {
		t.Fatalf("shift = %v, want %v", a.DeadlineShiftW(), wantShift)
	}
	// And a *negative* shift when the CB affords far more than the
	// deadline needs: batch work is slowed to finish just in time
	// instead of needlessly early (paper Section VII-D).
	a2 := mustNew(t)
	a2.StartBurst(0, 900, idleW, 500)
	for s := 1; s <= 30; s++ {
		a2.ObserveHeadroom(500, float64(s))
	}
	a2.MaybeUpdatePBatch(31, 100, 0, 5000)
	if a2.DeadlineShiftW() >= 0 {
		t.Fatalf("shift = %v, want negative when CB over-affords", a2.DeadlineShiftW())
	}
	// The delivered cycle-average equals the (margin-inflated) need.
	phi := a2.OverloadFrac()
	deliver := phi*a2.PBatchAt(451) + (1-phi)*a2.PBatchAt(200)
	want := 100 * (1 + a2.Config().DeadlineMargin)
	if math.Abs(deliver-want) > 1 {
		t.Fatalf("delivered %v, want %v", deliver, want)
	}
}

func TestPBatchUpdatePeriodEnforced(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 900, idleW, 500)
	// StartBurst arms an immediate first update.
	if !a.MaybeUpdatePBatch(0, 400, 0, 2000) {
		t.Fatal("first update should fire immediately after StartBurst")
	}
	if a.MaybeUpdatePBatch(10, 400, 0, 2000) {
		t.Fatal("update before the 30 s period should not fire")
	}
	if !a.MaybeUpdatePBatch(30, 400, 0, 2000) {
		t.Fatal("update at the period should fire")
	}
	if a.MaybeUpdatePBatch(45, 400, 0, 2000) {
		t.Fatal("second update too soon")
	}
}

func TestThresholdModeStepsReserve(t *testing.T) {
	cfg := DefaultConfig(rated, budget)
	cfg.Mode = AdaptThreshold
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.StartBurst(0, 900, idleW, 1000)
	// Saturated headroom (interactive above P_cb − P_batch always) →
	// the reserve grows by one step, shrinking P_batch.
	for s := 1; s <= 30; s++ {
		a.ObserveHeadroom(3500, float64(s))
	}
	a.MaybeUpdatePBatch(31, 100, 0, 5000)
	if got := a.InteractiveReserveW(); math.Abs(got-(1000+cfg.PBatchStepW)) > 1e-9 {
		t.Fatalf("reserve = %v, want one step above 1000", got)
	}
	// Idle headroom → the reserve shrinks by one step.
	for s := 32; s <= 62; s++ {
		a.ObserveHeadroom(10, float64(s))
	}
	a.MaybeUpdatePBatch(62, 100, 0, 5000)
	if got := a.InteractiveReserveW(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("reserve = %v, want back to 1000", got)
	}
}

func TestShiftCappedByBatchMax(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 900, idleW, 3000)
	a.MaybeUpdatePBatch(31, 6000, 0, 2500) // absurd deadline demand
	if got := a.PBatch(); got > 2500+1e-9 {
		t.Fatalf("recovery budget %v exceeds batch max 2500", got)
	}
}

func TestSetReserveAndEndBurst(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 900, idleW, 1000)
	a.SetReserve(-5)
	if a.InteractiveReserveW() != 0 {
		t.Fatal("SetReserve should clamp at 0")
	}
	a.EndBurst()
	if a.Started() {
		t.Fatal("EndBurst should stop the sprint")
	}
	if got := a.PCb(1000); got != rated {
		t.Fatalf("PCb after burst = %v, want rated", got)
	}
}

func TestObserveHeadroomIgnoredWhenUncontrolled(t *testing.T) {
	a := mustNew(t)
	a.StartBurst(0, 30, idleW, 1000) // short burst → PCb = +Inf
	a.ObserveHeadroom(5000, 10)
	if len(a.samples) != 0 {
		t.Fatal("uncontrolled phase should not record headroom samples")
	}
}

func TestPhaseOffsetShiftsSchedule(t *testing.T) {
	cfg := DefaultConfig(rated, budget)
	cfg.PhaseOffsetS = 225 // half a 450 s cycle
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.StartBurst(0, 900, idleW, 1000)
	// With a half-cycle offset, t=0 sits mid-recovery and the overload
	// phase begins at t=225.
	if a.Overloading(0) {
		t.Fatal("offset schedule should start in recovery")
	}
	if !a.Overloading(230) {
		t.Fatal("offset schedule should overload at t=230")
	}
	// The unshifted schedule is the complement.
	b := mustNew(t)
	b.StartBurst(0, 900, idleW, 1000)
	if !b.Overloading(0) || b.Overloading(230) {
		t.Fatal("unshifted schedule wrong")
	}
	bad := DefaultConfig(rated, budget)
	bad.PhaseOffsetS = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative offset should fail validation")
	}
}

func TestMidBurstAvgBonusConsistent(t *testing.T) {
	// For a mid-length burst the average bonus equals the constant
	// overload's bonus, so the deadline shift plans with the same
	// affordance PBatchAt delivers.
	a := mustNew(t)
	a.StartBurst(0, 480, idleW, 1000)
	deg := a.SafeConstantDegree(480)
	want := rated * (deg - 1)
	if got := a.avgBonusW(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("avg bonus %v, want %v", got, want)
	}
	// PBatchAt is constant across the burst (single overload phase).
	if a.PBatchAt(10) != a.PBatchAt(400) {
		t.Fatal("mid-burst batch budget should be constant")
	}
}

func TestQuantileHelper(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := quantile(xs, 0.8); got != 4 {
		t.Fatalf("quantile(0.8) = %v, want 4", got)
	}
	if got := quantile(xs, 1.0); got != 5 {
		t.Fatalf("quantile(1.0) = %v, want 5", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("quantile(nil) = %v, want 0", got)
	}
	// quantile sorts in place (callers pass a reused scratch copy so the
	// observation window keeps arrival order and the update allocates
	// nothing in steady state).
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("quantile must sort its scratch input in place")
	}
}
