package ups

import (
	"fmt"
	"math"
)

// State is the serializable snapshot of a UPS battery string's mutable
// state: the remaining energy plus the cycle-accounting fields (DoD floor
// and cumulative discharge) that the paper's battery-lifetime analysis
// depends on.
type State struct {
	EnergyWh     float64
	MinEnergyWh  float64
	DischargedWh float64
	FloorWh      float64
}

// ExportState captures the battery's mutable state.
func (u *UPS) ExportState() State {
	return State{
		EnergyWh:     u.energyWh,
		MinEnergyWh:  u.minEnergyWh,
		DischargedWh: u.dischargedWh,
		FloorWh:      u.floorWh,
	}
}

// RestoreState overwrites the battery's mutable state from a snapshot. A
// corrupt snapshot must never inflate the state of charge past capacity or
// install negative energies, so every field is range-checked against the
// live configuration.
func (u *UPS) RestoreState(st State) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"EnergyWh", st.EnergyWh},
		{"MinEnergyWh", st.MinEnergyWh},
		{"DischargedWh", st.DischargedWh},
		{"FloorWh", st.FloorWh},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("ups: snapshot %s is %g; must be finite", f.name, f.v)
		}
	}
	switch {
	case st.EnergyWh < 0 || st.EnergyWh > u.cfg.CapacityWh:
		return fmt.Errorf("ups: snapshot energy %g Wh outside [0, %g]", st.EnergyWh, u.cfg.CapacityWh)
	case st.MinEnergyWh < 0 || st.MinEnergyWh > u.cfg.CapacityWh:
		return fmt.Errorf("ups: snapshot min energy %g Wh outside [0, %g]", st.MinEnergyWh, u.cfg.CapacityWh)
	case st.MinEnergyWh > st.EnergyWh+1e-9:
		return fmt.Errorf("ups: snapshot min energy %g Wh exceeds energy %g Wh", st.MinEnergyWh, st.EnergyWh)
	case st.DischargedWh < 0:
		return fmt.Errorf("ups: snapshot discharged energy %g Wh is negative", st.DischargedWh)
	case st.FloorWh < 0 || st.FloorWh > u.cfg.CapacityWh:
		return fmt.Errorf("ups: snapshot derating floor %g Wh outside [0, %g]", st.FloorWh, u.cfg.CapacityWh)
	}
	u.energyWh = st.EnergyWh
	u.minEnergyWh = st.MinEnergyWh
	u.dischargedWh = st.DischargedWh
	u.floorWh = st.FloorWh
	return nil
}
