package ups_test

import (
	"fmt"

	"sprintcon/internal/ups"
)

// The LFP cycle-life argument of paper Section VII-D: shallow discharges
// buy disproportionally many cycles.
func ExampleCycleLife() {
	for _, dod := range []float64{0.17, 0.31, 1.0} {
		fmt.Printf("DoD %.0f%% -> %.0fk cycles, %.1f years at 10/day\n",
			100*dod, ups.CycleLife(dod)/1000, ups.LifetimeYears(dod, 10))
	}
	// Output:
	// DoD 17% -> 40k cycles, 10.0 years at 10/day
	// DoD 31% -> 10k cycles, 2.7 years at 10/day
	// DoD 100% -> 1k cycles, 0.2 years at 10/day
}

// Duty-cycled discharge: the UPS delivers a requested share of the rack
// load, quantized to the switch's duty resolution.
func ExampleUPS_Discharge() {
	cfg := ups.DefaultConfig()
	cfg.DutyQuantum = 0.05 // 5 % duty steps
	cfg.DischargeEfficiency = 1
	u, err := ups.New(cfg)
	if err != nil {
		panic(err)
	}
	delivered := u.Discharge(330, 1000, 1) // 33 % of a 1 kW load
	fmt.Printf("delivered %.0f W (rounded to 35%% duty)\n", delivered)
	// Output:
	// delivered 350 W (rounded to 35% duty)
}
