// Package ups models the UPS battery system SprintCon uses as the second
// sprinting power source: energy capacity, state of charge, a duty-cycled
// discharge actuator (paper Section IV-C, following the charge/discharge
// circuit of [24]), depth-of-discharge accounting, and an LFP cycle-life
// model fitted to the points the paper cites from [32] (17 % DoD → >40 000
// cycles, 31 % DoD → <10 000 cycles).
package ups

import (
	"errors"
	"fmt"
	"math"
)

// Config describes a UPS battery string.
type Config struct {
	// CapacityWh is the usable energy capacity in watt-hours
	// (paper: 400 Wh — 5 minutes at the 4.8 kW rack maximum).
	CapacityWh float64
	// MaxDischargeW limits instantaneous discharge power (paper: the UPS
	// can carry the whole rack, so 4.8 kW).
	MaxDischargeW float64
	// MaxChargeW limits recharge power (0 disables recharging).
	MaxChargeW float64
	// DischargeEfficiency is delivered power / energy drawn (0 < η ≤ 1).
	DischargeEfficiency float64
	// DutyQuantum is the resolution of the duty-cycled discharge switch:
	// the discharge fraction of total load is rounded to a multiple of
	// this (paper: "set the duty ratio at x%"). Zero disables quantization.
	DutyQuantum float64
	// InitialSoC in [0, 1]; typically 1 at sprint start.
	InitialSoC float64
	// PeukertExponent models rate-dependent capacity: discharging above
	// PeukertRefW draws cell energy faster than the delivered power by a
	// factor (P/PeukertRefW)^(k−1). Values ≤ 1 (or a zero reference)
	// disable the effect; LFP cells are mild (k ≈ 1.05), lead-acid
	// strings much steeper (k ≈ 1.2–1.3).
	PeukertExponent float64
	PeukertRefW     float64
	// ColdDeratePerC reduces the usable capacity by this fraction per °C
	// below 25 °C (set the operating temperature with SetTemperature).
	// Zero disables temperature derating.
	ColdDeratePerC float64
}

// DefaultConfig returns the paper's evaluation UPS: 400 Wh, able to carry
// the full 4.8 kW rack, 95 % discharge efficiency, 1 % duty quantization.
func DefaultConfig() Config {
	return Config{
		CapacityWh:          400,
		MaxDischargeW:       4800,
		MaxChargeW:          0,
		DischargeEfficiency: 0.95,
		DutyQuantum:         0.01,
		InitialSoC:          1,
	}
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	switch {
	case c.CapacityWh <= 0:
		return errors.New("ups: CapacityWh must be positive")
	case c.MaxDischargeW <= 0:
		return errors.New("ups: MaxDischargeW must be positive")
	case c.MaxChargeW < 0:
		return errors.New("ups: MaxChargeW must be non-negative")
	case c.DischargeEfficiency <= 0 || c.DischargeEfficiency > 1:
		return errors.New("ups: DischargeEfficiency must be in (0, 1]")
	case c.DutyQuantum < 0 || c.DutyQuantum > 1:
		return errors.New("ups: DutyQuantum must be in [0, 1]")
	case c.InitialSoC < 0 || c.InitialSoC > 1:
		return errors.New("ups: InitialSoC must be in [0, 1]")
	case c.PeukertExponent < 0 || (c.PeukertExponent > 1 && c.PeukertRefW <= 0):
		return errors.New("ups: PeukertExponent > 1 needs a positive PeukertRefW")
	case c.ColdDeratePerC < 0 || c.ColdDeratePerC > 0.2:
		return errors.New("ups: ColdDeratePerC must be in [0, 0.2]")
	}
	return nil
}

// UPS is the mutable state of one battery string.
type UPS struct {
	cfg          Config
	energyWh     float64 // remaining usable energy
	minEnergyWh  float64 // lowest energy reached since last ResetCycle
	dischargedWh float64 // cumulative energy drawn since last ResetCycle
	floorWh      float64 // energy made unusable by temperature derating
}

// New returns a UPS at its configured initial state of charge.
func New(cfg Config) (*UPS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := cfg.CapacityWh * cfg.InitialSoC
	return &UPS{cfg: cfg, energyWh: e, minEnergyWh: e}, nil
}

// Config returns the UPS configuration.
func (u *UPS) Config() Config { return u.cfg }

// SoC returns the state of charge in [0, 1].
func (u *UPS) SoC() float64 { return u.energyWh / u.cfg.CapacityWh }

// EnergyWh returns the remaining usable energy in watt-hours.
func (u *UPS) EnergyWh() float64 { return u.energyWh }

// Depleted reports whether the battery can no longer deliver power.
func (u *UPS) Depleted() bool { return u.energyWh <= u.floorWh }

// SetTemperature sets the cell temperature in °C. Below 25 °C the usable
// capacity shrinks by ColdDeratePerC per degree (no effect if derating is
// disabled); above 25 °C there is no bonus.
func (u *UPS) SetTemperature(c float64) {
	if u.cfg.ColdDeratePerC == 0 {
		return
	}
	cold := math.Max(0, 25-c)
	frac := math.Min(0.95, cold*u.cfg.ColdDeratePerC)
	u.floorWh = frac * u.cfg.CapacityWh
}

// peukertFactor returns how much faster than the delivered power the cells
// drain at delivery power p.
func (u *UPS) peukertFactor(p float64) float64 {
	k := u.cfg.PeukertExponent
	if k <= 1 || u.cfg.PeukertRefW <= 0 || p <= u.cfg.PeukertRefW {
		return 1
	}
	return math.Pow(p/u.cfg.PeukertRefW, k-1)
}

// DoD returns the depth of discharge of the current cycle: the maximum
// depletion below full capacity reached since the last ResetCycle,
// as a fraction of capacity. This is the quantity in the paper's Fig. 8(b).
func (u *UPS) DoD() float64 {
	return (u.cfg.CapacityWh - u.minEnergyWh) / u.cfg.CapacityWh
}

// DischargedWh returns the cumulative energy drawn from the battery since
// the last ResetCycle (total use of stored energy, "demand of energy
// storage" in the paper's abstract).
func (u *UPS) DischargedWh() float64 { return u.dischargedWh }

// ResetCycle marks the beginning of a new discharge cycle for DoD and
// cumulative-discharge accounting without altering the state of charge.
func (u *UPS) ResetCycle() {
	u.minEnergyWh = u.energyWh
	u.dischargedWh = 0
}

// Discharge requests that the UPS deliver requestW of the rack's totalW
// demand for dt seconds, and returns the power actually delivered after
// duty-cycle quantization, the discharge power limit, and the remaining
// energy. totalW bounds the delivery (the UPS cannot push more power than
// the load draws).
func (u *UPS) Discharge(requestW, totalW, dt float64) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("ups: negative dt %g", dt))
	}
	if requestW <= 0 || totalW <= 0 || u.Depleted() {
		return 0
	}
	p := math.Min(requestW, totalW)
	p = math.Min(p, u.cfg.MaxDischargeW)
	// Duty-cycled switch: the discharge fraction of the total load is
	// quantized (paper: duty ratio x% of total power consumption).
	if q := u.cfg.DutyQuantum; q > 0 {
		duty := p / totalW
		duty = math.Round(duty/q) * q
		if duty > 1 {
			duty = 1
		}
		p = duty * totalW
		p = math.Min(p, u.cfg.MaxDischargeW)
	}
	if p <= 0 {
		return 0
	}
	// Energy drawn from cells exceeds energy delivered by 1/η, and by
	// the Peukert factor at high discharge rates.
	drawWh := p * dt / 3600 / u.cfg.DischargeEfficiency * u.peukertFactor(p)
	if usable := u.energyWh - u.floorWh; drawWh > usable {
		// Partial delivery in the step that empties the battery.
		frac := usable / drawWh
		p *= frac
		drawWh = usable
	}
	u.energyWh -= drawWh
	u.dischargedWh += drawWh
	if u.energyWh < u.minEnergyWh {
		u.minEnergyWh = u.energyWh
	}
	return p
}

// Recharge stores energy for dt seconds at up to powerW, bounded by the
// configured charge limit and remaining headroom. It returns the charging
// power actually accepted.
func (u *UPS) Recharge(powerW, dt float64) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("ups: negative dt %g", dt))
	}
	if powerW <= 0 || u.cfg.MaxChargeW == 0 {
		return 0
	}
	p := math.Min(powerW, u.cfg.MaxChargeW)
	addWh := p * dt / 3600
	if room := u.cfg.CapacityWh - u.energyWh; addWh > room {
		if room <= 0 {
			return 0
		}
		p *= room / addWh
		addWh = room
	}
	u.energyWh += addWh
	return p
}

// --- LFP cycle-life model -------------------------------------------------

// Cycle-life fit constants: cycles(DoD) = lfpA · DoD^(−lfpB), fitted to the
// two points the paper quotes from Kontorinis et al. [32]:
// DoD 17 % → ≈40 000 cycles and DoD 31 % → ≈10 000 cycles.
const (
	lfpA = 658.0
	lfpB = 2.32
	// MaxCycleLife caps the fit for very shallow discharges.
	MaxCycleLife = 100000
	// ChemicalLifeYears is the calendar life of LFP cells regardless of
	// cycling (the paper: "10 years, which equals the chemical lifetime").
	ChemicalLifeYears = 10
)

// CycleLife returns the number of charge/discharge cycles an LFP battery
// sustains at the given depth of discharge (fraction in (0, 1]).
func CycleLife(dod float64) float64 {
	if dod <= 0 {
		return MaxCycleLife
	}
	if dod > 1 {
		dod = 1
	}
	c := lfpA * math.Pow(dod, -lfpB)
	if c > MaxCycleLife {
		return MaxCycleLife
	}
	return c
}

// LifetimeYears returns the expected battery service life in years when
// cycled at the given DoD cyclesPerDay times per day, capped by the
// chemical calendar life.
func LifetimeYears(dod float64, cyclesPerDay float64) float64 {
	if cyclesPerDay <= 0 {
		return ChemicalLifeYears
	}
	years := CycleLife(dod) / cyclesPerDay / 365
	return math.Min(years, ChemicalLifeYears)
}

// ReplacementsOver returns how many battery replacements are needed to keep
// cycling at the given DoD and rate for horizon years (0 if the pack
// outlives the horizon).
func ReplacementsOver(horizonYears, dod, cyclesPerDay float64) int {
	life := LifetimeYears(dod, cyclesPerDay)
	if life <= 0 {
		return 0
	}
	n := int(math.Ceil(horizonYears/life)) - 1
	if n < 0 {
		return 0
	}
	return n
}
