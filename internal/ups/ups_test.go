package ups

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *UPS {
	t.Helper()
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero capacity", func(c *Config) { c.CapacityWh = 0 }},
		{"zero discharge", func(c *Config) { c.MaxDischargeW = 0 }},
		{"negative charge", func(c *Config) { c.MaxChargeW = -1 }},
		{"bad efficiency", func(c *Config) { c.DischargeEfficiency = 1.2 }},
		{"bad quantum", func(c *Config) { c.DutyQuantum = 2 }},
		{"bad soc", func(c *Config) { c.InitialSoC = -0.1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDischargeDrainsEnergy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DischargeEfficiency = 1
	cfg.DutyQuantum = 0
	u := mustNew(t, cfg)
	// 4.8 kW for 5 minutes = 400 Wh: exactly the capacity.
	for s := 0; s < 300; s++ {
		got := u.Discharge(4800, 4800, 1)
		if s < 299 && got != 4800 {
			t.Fatalf("s=%d delivered %v, want 4800", s, got)
		}
	}
	if !u.Depleted() && u.EnergyWh() > 1e-6 {
		t.Fatalf("battery should be empty, has %v Wh", u.EnergyWh())
	}
	if math.Abs(u.DoD()-1) > 1e-9 {
		t.Fatalf("DoD = %v, want 1", u.DoD())
	}
	if math.Abs(u.DischargedWh()-400) > 1e-6 {
		t.Fatalf("DischargedWh = %v, want 400", u.DischargedWh())
	}
}

func TestDischargeRespectsPowerLimit(t *testing.T) {
	u := mustNew(t, DefaultConfig())
	if got := u.Discharge(10000, 10000, 1); got > u.Config().MaxDischargeW+1e-9 {
		t.Fatalf("delivered %v above limit %v", got, u.Config().MaxDischargeW)
	}
}

func TestDischargeBoundedByTotalLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DutyQuantum = 0
	u := mustNew(t, cfg)
	if got := u.Discharge(3000, 1000, 1); got > 1000+1e-9 {
		t.Fatalf("delivered %v, cannot exceed the 1000 W load", got)
	}
}

func TestDutyQuantization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DutyQuantum = 0.05 // 5 % steps
	cfg.DischargeEfficiency = 1
	u := mustNew(t, cfg)
	got := u.Discharge(330, 1000, 1) // 33 % → rounds to 35 %
	if math.Abs(got-350) > 1e-9 {
		t.Fatalf("quantized delivery = %v, want 350", got)
	}
}

func TestDischargeEfficiencyDrawsMoreThanDelivered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DischargeEfficiency = 0.5
	cfg.DutyQuantum = 0
	u := mustNew(t, cfg)
	before := u.EnergyWh()
	delivered := u.Discharge(1800, 1800, 3600) // 1 hour at 1.8 kW
	drawn := before - u.EnergyWh()
	if delivered <= 0 {
		t.Fatal("no power delivered")
	}
	if math.Abs(drawn-2*delivered*1/1) > 400 {
		// With η = 0.5 the cells supply twice the delivered energy until
		// they empty; here 1.8 kWh demand empties the 400 Wh pack.
		t.Fatalf("drawn %v Wh for delivered %v W·h", drawn, delivered)
	}
	if !u.Depleted() {
		t.Fatal("pack should be depleted")
	}
}

func TestPartialDeliveryOnDepletion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DischargeEfficiency = 1
	cfg.DutyQuantum = 0
	cfg.CapacityWh = 1 // tiny pack: 3600 J
	u := mustNew(t, cfg)
	got := u.Discharge(4800, 4800, 10) // wants 13.3 Wh, has 1 Wh
	want := 1.0 * 3600 / 10            // average power over the step
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("partial delivery %v, want %v", got, want)
	}
	if !u.Depleted() {
		t.Fatal("pack should be empty")
	}
	if got2 := u.Discharge(100, 100, 1); got2 != 0 {
		t.Fatalf("empty pack delivered %v", got2)
	}
}

func TestRecharge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxChargeW = 1000
	cfg.InitialSoC = 0.5
	u := mustNew(t, cfg)
	accepted := u.Recharge(2000, 3600) // limited to 1 kW for 1 h = 1 kWh, room is 200 Wh
	if accepted <= 0 {
		t.Fatal("no charge accepted")
	}
	if math.Abs(u.SoC()-1) > 1e-9 {
		t.Fatalf("SoC = %v, want 1 after filling", u.SoC())
	}
	if got := u.Recharge(100, 10); got != 0 {
		t.Fatalf("full pack accepted %v W", got)
	}
}

func TestRechargeDisabledByDefault(t *testing.T) {
	u := mustNew(t, DefaultConfig())
	if got := u.Recharge(1000, 100); got != 0 {
		t.Fatalf("charging disabled but accepted %v W", got)
	}
}

func TestDoDTracksDeepestPoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxChargeW = 4800
	cfg.DischargeEfficiency = 1
	cfg.DutyQuantum = 0
	u := mustNew(t, cfg)
	u.Discharge(4800, 4800, 75) // 100 Wh → DoD 25 %
	if math.Abs(u.DoD()-0.25) > 1e-6 {
		t.Fatalf("DoD = %v, want 0.25", u.DoD())
	}
	u.Recharge(4800, 75) // refill
	if math.Abs(u.DoD()-0.25) > 1e-6 {
		t.Fatalf("DoD after recharge = %v, must remember deepest point", u.DoD())
	}
	u.ResetCycle()
	if u.DoD() != 0 {
		t.Fatalf("DoD after ResetCycle = %v", u.DoD())
	}
}

func TestPeukertDrawsMoreAtHighRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DischargeEfficiency = 1
	cfg.DutyQuantum = 0
	cfg.PeukertExponent = 1.2
	cfg.PeukertRefW = 1000
	u := mustNew(t, cfg)
	before := u.EnergyWh()
	delivered := u.Discharge(4000, 4000, 60)
	drawn := before - u.EnergyWh()
	deliveredWh := delivered * 60 / 3600
	// 4 kW is 4× the reference: draw multiplier 4^0.2 ≈ 1.32.
	want := deliveredWh * math.Pow(4, 0.2)
	if math.Abs(drawn-want) > 0.01*want {
		t.Fatalf("drawn %v Wh for %v Wh delivered, want ≈%v", drawn, deliveredWh, want)
	}
	// At or below the reference rate the effect vanishes.
	u2 := mustNew(t, cfg)
	before = u2.EnergyWh()
	delivered = u2.Discharge(1000, 1000, 60)
	drawn = before - u2.EnergyWh()
	if math.Abs(drawn-delivered*60/3600) > 1e-9 {
		t.Fatalf("at the reference rate Peukert must be neutral: drawn %v", drawn)
	}
}

func TestPeukertValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeukertExponent = 1.2 // without a reference power
	if _, err := New(cfg); err == nil {
		t.Fatal("Peukert without reference should error")
	}
}

func TestColdDeratingShrinksUsableEnergy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DischargeEfficiency = 1
	cfg.DutyQuantum = 0
	cfg.ColdDeratePerC = 0.01 // 1 %/°C below 25
	u := mustNew(t, cfg)
	u.SetTemperature(5) // 20° cold → 20 % of capacity unusable
	var delivered float64
	for i := 0; i < 600; i++ {
		delivered += u.Discharge(4800, 4800, 1) / 3600
	}
	if !u.Depleted() {
		t.Fatal("cold pack should deplete early")
	}
	want := 0.8 * cfg.CapacityWh
	if math.Abs(delivered-want) > 1 {
		t.Fatalf("cold pack delivered %v Wh, want ≈%v", delivered, want)
	}
	// Warming it back up frees the reserve.
	u.SetTemperature(25)
	if u.Depleted() {
		t.Fatal("warmed pack has usable energy again")
	}
	if _, err := New(Config{CapacityWh: 1, MaxDischargeW: 1, DischargeEfficiency: 1, ColdDeratePerC: 0.5}); err == nil {
		t.Fatal("absurd derate should fail validation")
	}
}

func TestCycleLifeMatchesPaperPoints(t *testing.T) {
	// Paper Section VII-D: DoD 17 % → >40 000 cycles; DoD 31 % → <10 000.
	if c := CycleLife(0.17); c <= 40000 {
		t.Fatalf("CycleLife(0.17) = %v, want > 40000", c)
	}
	if c := CycleLife(0.31); c >= 10000 {
		t.Fatalf("CycleLife(0.31) = %v, want < 10000", c)
	}
}

func TestCycleLifeMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.5} {
		c := CycleLife(d)
		if c > prev {
			t.Fatalf("cycle life not non-increasing at DoD %v", d)
		}
		prev = c
	}
	if CycleLife(0) != MaxCycleLife {
		t.Fatal("zero DoD should return the cap")
	}
}

func TestLifetimeYearsPaperScenario(t *testing.T) {
	// Paper: at 10 sprints/day, SprintCon (DoD 17 %) never replaces the
	// pack within the 10-year chemical life; SGCT-V1/V2 (DoD 31 %)
	// replace it 3–4 times.
	if y := LifetimeYears(0.17, 10); y < ChemicalLifeYears {
		t.Fatalf("SprintCon lifetime %v years, want chemical cap %v", y, ChemicalLifeYears)
	}
	y := LifetimeYears(0.31, 10)
	if y > 3.5 || y < 1.5 {
		t.Fatalf("baseline lifetime %v years, want ~2.7 (→ 3-4 replacements over 10y)", y)
	}
	reps := ReplacementsOver(10, 0.31, 10)
	if reps < 3 || reps > 4 {
		t.Fatalf("replacements = %d, want 3-4", reps)
	}
	if got := ReplacementsOver(10, 0.17, 10); got != 0 {
		t.Fatalf("SprintCon replacements = %d, want 0", got)
	}
}

// Property: energy is conserved — delivered/η never exceeds the drop in
// stored energy, and SoC stays within [0, 1].
func TestEnergyConservationProperty(t *testing.T) {
	f := func(requests [20]float64) bool {
		cfg := DefaultConfig()
		u, err := New(cfg)
		if err != nil {
			return false
		}
		for _, r := range requests {
			req := math.Mod(math.Abs(r), 6000)
			before := u.EnergyWh()
			delivered := u.Discharge(req, 4800, 5)
			drawn := before - u.EnergyWh()
			wantDraw := delivered * 5 / 3600 / cfg.DischargeEfficiency
			if math.Abs(drawn-wantDraw) > 1e-9 {
				return false
			}
			if u.SoC() < -1e-12 || u.SoC() > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDtPanics(t *testing.T) {
	u := mustNew(t, DefaultConfig())
	for name, fn := range map[string]func(){
		"discharge": func() { u.Discharge(1, 1, -1) },
		"recharge":  func() { u.Recharge(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative dt should panic", name)
				}
			}()
			fn()
		}()
	}
}
