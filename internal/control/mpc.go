// Package control implements SprintCon's feedback controllers and their
// defensive instrumentation (paper Sections IV-C and V, DESIGN.md §6 and §8):
//
//   - MPC: the model-predictive server power controller that tracks the
//     batch power budget P_batch (W) by manipulating per-core DVFS
//     frequencies (GHz), minimizing the paper's Eq. (8) cost subject to the
//     Eq. (9) frequency bounds each control period T (s).
//   - UPSController: the UPS power controller that keeps the circuit
//     breaker's delivered power at P_cb (W) by setting the battery discharge
//     to cover the excess (feedforward plus integral trim).
//   - PI: a single-loop proportional-integral power controller, retained to
//     quantify what MPC buys (ablation A1 in DESIGN.md).
//   - MeasurementGuard: the hardening layer's plausibility filter for the
//     rack power monitor (DESIGN.md §8): dropout/freeze/spike detection with
//     last-known-good and model-decay fallback, driving a confidence signal.
//   - RLS: recursive-least-squares estimation of the power-model slope K
//     (W/GHz) from observed (ΔF, Δp) pairs, for the online-estimation
//     ablation (E13).
package control

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/mathx"
	"sprintcon/internal/qp"
)

// MPCConfig parameterizes the server power controller.
type MPCConfig struct {
	// PredictionHorizon is L_p of Eq. (8); ControlHorizon is L_c. Both
	// count control periods (dimensionless).
	PredictionHorizon int
	ControlHorizon    int
	// PeriodS is the control period T in seconds.
	PeriodS float64
	// RefTimeConstS is τ_r of the Eq. (7) reference trajectory in seconds:
	// larger values trade convergence speed for smaller overshoot
	// (Section V-B).
	RefTimeConstS float64
	// QWeight is the tracking-error weight Q (uniform over the horizon),
	// in cost per W² of tracking error.
	QWeight float64
	// RScale converts the dimensionless per-core R weights into the cost
	// function's units, balancing watts² of tracking error against GHz²
	// of control penalty.
	RScale float64
	// KWPerGHz is the design-model slope per batch core (paper Eq. 1–4):
	// the predicted change in batch power per GHz of that core, in W/GHz.
	KWPerGHz []float64
	// FMinGHz and FMaxGHz bound every core's frequency in GHz (Eq. 9).
	FMinGHz, FMaxGHz float64
	// FullHorizon replaces the paper's prediction simplification
	// ("the same operation will continue") with a true receding-horizon
	// optimization over ControlHorizon *distinct* moves. The cumulative
	// moves z_h = Σ_{i≤h} Δ_i substitute as decision variables, so the
	// Eq. (9) bounds stay simple boxes and the same QP solver applies;
	// only the first move is actuated.
	FullHorizon bool
	// WarmStart seeds each period's QP with the previous period's solution
	// (the receding-horizon problems differ only by the measured gap and
	// the shifted bounds, so the previous minimizer is a few coordinate-
	// descent sweeps from the new one). The controller invalidates the
	// cached solution whenever the locked-core mask changes — a stuck
	// actuator being excluded, a probe rejoining, a server crashing — and
	// the cache dies with the controller, so a core-set change or a model
	// rebuild (online estimation) always re-solves cold. The warm solve
	// converges to the same minimizer within the QP's KKT tolerance; see
	// the warm-vs-cold equivalence test in the qp package.
	WarmStart bool
	// LegacyQP forces the original cold QP path: no warm start, no
	// workspace, allocation per solve. It exists so the benchmark harness
	// can measure the warm-started solver against the pre-optimization
	// behavior in the same binary; production configurations leave it
	// false. LegacyQP overrides WarmStart.
	LegacyQP bool
}

// DefaultMPCConfig returns the tuning used throughout the evaluation for a
// rack with the given per-core model slopes (W/GHz), warm-starting enabled.
// With the paper's constant-move prediction simplification, the closed loop
// closes roughly Σh·e_h/Σh² ≈ 40 % of the power gap per period, settling
// well within the allocator's 30 s period at the 4 s control period.
func DefaultMPCConfig(kWPerGHz []float64) MPCConfig {
	return MPCConfig{
		PredictionHorizon: 4,
		ControlHorizon:    2,
		PeriodS:           4,
		RefTimeConstS:     2,
		QWeight:           1,
		RScale:            40,
		KWPerGHz:          kWPerGHz,
		FMinGHz:           0.4,
		FMaxGHz:           2.0,
		WarmStart:         true,
	}
}

// Validate reports structural errors in the configuration.
func (c MPCConfig) Validate() error {
	switch {
	case c.PredictionHorizon <= 0:
		return errors.New("control: PredictionHorizon must be positive")
	case c.ControlHorizon <= 0 || c.ControlHorizon > c.PredictionHorizon:
		return errors.New("control: need 0 < ControlHorizon ≤ PredictionHorizon")
	case c.PeriodS <= 0:
		return errors.New("control: PeriodS must be positive")
	case c.RefTimeConstS <= 0:
		return errors.New("control: RefTimeConstS must be positive")
	case c.QWeight <= 0:
		return errors.New("control: QWeight must be positive")
	case c.RScale <= 0:
		return errors.New("control: RScale must be positive")
	case len(c.KWPerGHz) == 0:
		return errors.New("control: KWPerGHz must not be empty")
	case c.FMinGHz <= 0 || c.FMaxGHz <= c.FMinGHz:
		return errors.New("control: need 0 < FMin < FMax")
	}
	for i, k := range c.KWPerGHz {
		if k <= 0 {
			return fmt.Errorf("control: KWPerGHz[%d] = %g must be positive", i, k)
		}
	}
	return nil
}

// MPC is the model-predictive server power controller. Control-wise it is
// stateless between periods: following the paper's formulation, each period
// solves a fresh constrained optimization from the latest feedback
// measurement (the receding-horizon principle). The retained state never
// feeds back into control *decisions*: the last solve's diagnostics
// (LastSolve) inform only telemetry, and the warm-start cache only chooses
// where the QP's iteration starts, not where it converges.
//
// An MPC instance owns preallocated solve buffers; after the first Step a
// steady-state solve performs no heap allocation. Instances are not safe
// for concurrent use.
type MPC struct {
	cfg  MPCConfig
	last SolveStats

	// Preallocated per-solve state (the zero-alloc tick contract,
	// DESIGN.md §10). Sized n for the constant-move formulation and
	// n·ControlHorizon for FullHorizon.
	h         *mathx.Matrix
	g, lo, hi mathx.Vector
	next      []float64
	ws        *qp.Workspace

	// Warm-start cache: the previous period's QP solution and the locked
	// mask it was solved under. warmOK is false until the first solve and
	// whenever the mask changes.
	warmX    mathx.Vector
	warmMask []bool
	warmOK   bool

	// H generation for the QP's Cholesky factor cache (qp.Options.HGen).
	// The Hessian is a pure function of the fixed configuration and the
	// per-core R weights, so hGen advances exactly when the weights change
	// bit-wise; lastRW holds the weights the current generation was minted
	// for. A model rebuild constructs a fresh MPC (and workspace), so
	// cached factors can never outlive the H they were computed from.
	hGen   uint64
	lastRW []float64
}

// SolveStats reports the diagnostics of the most recent Step, for the
// telemetry layer's qp_iterations histogram and the decision trace.
type SolveStats struct {
	// Sweeps is the QP solver's coordinate-descent sweep count (0 when
	// the unconstrained Cholesky shortcut was feasible).
	Sweeps int
	// Converged reports whether the KKT residual met tolerance.
	Converged bool
	// Objective is the QP objective at the solution.
	Objective float64
	// Warm reports whether the solve was seeded from the previous
	// period's solution.
	Warm bool
}

// LastSolve returns the diagnostics of the most recent Step (zero value
// before the first solve).
func (m *MPC) LastSolve() SolveStats { return m.last }

// ReferenceTrajectory returns the Eq. (7) reference trajectory in absolute
// watts over the prediction horizon: the exponential approach from the
// feedback power toward the target with time constant τ_r. The decision
// trace records it so an operator can see what the controller was steering
// toward, not just where it ended up. It allocates; the hot path calls it
// only when a decision trace is attached.
func (m *MPC) ReferenceTrajectory(pfbW, pTargetW float64) []float64 {
	out := make([]float64, m.cfg.PredictionHorizon)
	gap := pTargetW - pfbW
	for h := 1; h <= m.cfg.PredictionHorizon; h++ {
		out[h-1] = pfbW + gap*(1-math.Exp(-float64(h)*m.cfg.PeriodS/m.cfg.RefTimeConstS))
	}
	return out
}

// NewMPC returns a controller or an error for invalid configuration. All
// solve buffers are allocated here, once, so Step never allocates in steady
// state.
func NewMPC(cfg MPCConfig) (*MPC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.KWPerGHz)
	nv := n
	if cfg.FullHorizon {
		nv = n * cfg.ControlHorizon
	}
	return &MPC{
		cfg:      cfg,
		h:        mathx.NewMatrix(nv, nv),
		g:        mathx.NewVector(nv),
		lo:       mathx.NewVector(nv),
		hi:       mathx.NewVector(nv),
		next:     make([]float64, n),
		ws:       qp.NewWorkspace(nv),
		warmX:    mathx.NewVector(nv),
		warmMask: make([]bool, n),
	}, nil
}

// Config returns the controller configuration.
func (m *MPC) Config() MPCConfig { return m.cfg }

// Step computes the next per-core frequencies.
//
//	pfbW      — Eq. (6) feedback estimate of current batch power (W)
//	pTargetW  — the power budget P_batch from the load allocator (W)
//	freqs     — current frequency of every batch core (GHz)
//	rweights  — per-core urgency weights R_{i,j} (Section V-B),
//	            dimensionless; larger weight pulls that core harder
//	            toward peak frequency
//
// Following the paper's prediction simplification ("assuming the same
// operation will continue in the following L_p control periods"), the move
// Δf is constant over the horizon, so Eq. (8) collapses to a box-constrained
// QP in Δf, solved exactly.
//
// The returned slice is owned by the controller and overwritten by the next
// Step; callers that retain frequencies across periods must copy it.
func (m *MPC) Step(pfbW, pTargetW float64, freqs, rweights []float64) ([]float64, error) {
	return m.StepLocked(pfbW, pTargetW, freqs, rweights, nil)
}

// StepLocked is Step with an exclusion mask: cores whose locked entry is
// true are removed from the move set (their move bounds collapse to zero),
// so the optimizer spreads the power correction over the cores whose DVFS
// actuators are known to respond. A nil mask locks nothing. This is how the
// hardened policy handles a stuck actuator: commanding it is pointless, and
// pretending its moves contribute power would misallocate the budget.
func (m *MPC) StepLocked(pfbW, pTargetW float64, freqs, rweights []float64, locked []bool) ([]float64, error) {
	n := len(m.cfg.KWPerGHz)
	if len(freqs) != n || len(rweights) != n {
		return nil, fmt.Errorf("control: Step got %d freqs and %d weights for %d cores", len(freqs), len(rweights), n)
	}
	if locked != nil && len(locked) != n {
		return nil, fmt.Errorf("control: Step got %d locked flags for %d cores", len(locked), n)
	}
	m.refreshHGen(rweights)
	if m.cfg.FullHorizon {
		return m.stepFullHorizon(pfbW, pTargetW, freqs, rweights, locked)
	}
	k := mathx.Vector(m.cfg.KWPerGHz)

	// H = Σ_{h=1..Lp} Q·h²·kkᵀ + Σ_{m=1..Lc} m²·diag(R·RScale)
	// g = −Σ_{h=1..Lp} Q·h·e_h·k + Σ_{m=1..Lc} m·diag(R·RScale)·d
	// where e_h = p_r(t+h) − p_fb = (P_batch − p_fb)(1 − exp(−h·T/τ_r))
	// (Eq. 7) and d = F − F_max (how far below peak each core sits).
	h := m.h
	h.Zero()
	g := m.g
	for i := range g {
		g[i] = 0
	}
	var sumH2 float64
	gap := pTargetW - pfbW
	for step := 1; step <= m.cfg.PredictionHorizon; step++ {
		hf := float64(step)
		sumH2 += hf * hf
		eh := gap * (1 - math.Exp(-hf*m.cfg.PeriodS/m.cfg.RefTimeConstS))
		g.AXPY(-m.cfg.QWeight*hf*eh, k)
	}
	h.OuterAdd(m.cfg.QWeight*sumH2, k, k)

	var sumM, sumM2 float64
	for mv := 1; mv <= m.cfg.ControlHorizon; mv++ {
		sumM += float64(mv)
		sumM2 += float64(mv) * float64(mv)
	}
	for i := 0; i < n; i++ {
		r := m.cfg.RScale * math.Max(rweights[i], 1e-6)
		h.Inc(i, i, sumM2*r)
		g[i] += sumM * r * (freqs[i] - m.cfg.FMaxGHz)
	}

	lo, hi := m.lo, m.hi
	for i := 0; i < n; i++ {
		if locked != nil && locked[i] {
			lo[i], hi[i] = 0, 0 // no move for this core
			continue
		}
		lo[i] = m.cfg.FMinGHz - freqs[i]
		hi[i] = m.cfg.FMaxGHz - freqs[i]
	}

	res, err := m.solve(locked)
	if err != nil {
		return nil, fmt.Errorf("control: MPC QP: %w", err)
	}
	next := m.next
	for i := 0; i < n; i++ {
		next[i] = freqs[i] + res.X[i]
		// Guard against accumulation error; the QP bounds already
		// enforce this up to tolerance.
		if next[i] < m.cfg.FMinGHz {
			next[i] = m.cfg.FMinGHz
		} else if next[i] > m.cfg.FMaxGHz {
			next[i] = m.cfg.FMaxGHz
		}
	}
	return next, nil
}

// stepFullHorizon solves the receding-horizon problem with ControlHorizon
// distinct moves. Decision variables are the cumulative moves
// z_h ∈ Rⁿ (h = 1..L_c); the predicted power at horizon step h is
// p_fb + K·z_{min(h,L_c)} and the Eq. (9) bounds apply to F + z_h.
func (m *MPC) stepFullHorizon(pfbW, pTargetW float64, freqs, rweights []float64, locked []bool) ([]float64, error) {
	n := len(m.cfg.KWPerGHz)
	lc := m.cfg.ControlHorizon
	k := mathx.Vector(m.cfg.KWPerGHz)
	gap := pTargetW - pfbW

	h := m.h
	h.Zero()
	g := m.g
	for i := range g {
		g[i] = 0
	}

	// Tracking term: for each prediction step hp, the active block is
	// m(hp) = min(hp, Lc); accumulate Q·kkᵀ and −Q·e_hp·k there.
	var blockQ [maxControlHorizon + 1]float64 // Σ Q over steps mapped to block
	var blockE [maxControlHorizon + 1]float64 // Σ Q·e_hp over steps mapped to block
	if lc > maxControlHorizon {
		return nil, fmt.Errorf("control: ControlHorizon %d exceeds supported maximum %d", lc, maxControlHorizon)
	}
	for b := range blockQ[:lc+1] {
		blockQ[b], blockE[b] = 0, 0
	}
	for hp := 1; hp <= m.cfg.PredictionHorizon; hp++ {
		blk := hp
		if blk > lc {
			blk = lc
		}
		e := gap * (1 - math.Exp(-float64(hp)*m.cfg.PeriodS/m.cfg.RefTimeConstS))
		blockQ[blk] += m.cfg.QWeight
		blockE[blk] += m.cfg.QWeight * e
	}
	for blk := 1; blk <= lc; blk++ {
		off := (blk - 1) * n
		for i := 0; i < n; i++ {
			gi := -blockE[blk] * k[i]
			g[off+i] += gi
			for j := 0; j < n; j++ {
				h.Inc(off+i, off+j, blockQ[blk]*k[i]*k[j])
			}
		}
	}

	// Control penalty: Σ_{h=1..Lc} ||F + z_h − F_max||²_R.
	for blk := 1; blk <= lc; blk++ {
		off := (blk - 1) * n
		for i := 0; i < n; i++ {
			r := m.cfg.RScale * math.Max(rweights[i], 1e-6)
			h.Inc(off+i, off+i, r)
			g[off+i] += r * (freqs[i] - m.cfg.FMaxGHz)
		}
	}

	lo, hi := m.lo, m.hi
	for blk := 0; blk < lc; blk++ {
		for i := 0; i < n; i++ {
			if locked != nil && locked[i] {
				lo[blk*n+i], hi[blk*n+i] = 0, 0 // excluded from the move set
				continue
			}
			lo[blk*n+i] = m.cfg.FMinGHz - freqs[i]
			hi[blk*n+i] = m.cfg.FMaxGHz - freqs[i]
		}
	}

	res, err := m.solve(locked)
	if err != nil {
		return nil, fmt.Errorf("control: full-horizon MPC QP: %w", err)
	}
	next := m.next
	for i := 0; i < n; i++ {
		next[i] = freqs[i] + res.X[i] // first cumulative move z_1
		if next[i] < m.cfg.FMinGHz {
			next[i] = m.cfg.FMinGHz
		} else if next[i] > m.cfg.FMaxGHz {
			next[i] = m.cfg.FMaxGHz
		}
	}
	return next, nil
}

// maxControlHorizon bounds the stack-allocated per-block accumulators of the
// full-horizon formulation; real deployments use L_c of 2–4.
const maxControlHorizon = 32

// refreshHGen advances the H generation when the per-core R weights differ
// bit-wise from the ones the current generation was minted for. Equality is
// exact (Float64bits), never tolerance-based: a one-ulp weight change
// changes H and must invalidate cached factors.
func (m *MPC) refreshHGen(rweights []float64) {
	if len(m.lastRW) == len(rweights) {
		same := true
		for i, w := range rweights {
			if math.Float64bits(m.lastRW[i]) != math.Float64bits(w) {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	m.hGen++
	m.lastRW = append(m.lastRW[:0], rweights...)
}

// FactorCacheStats returns the QP workspace's Cholesky factor cache
// counters, for the qp_cache_hits / qp_cache_evictions telemetry gauges.
func (m *MPC) FactorCacheStats() qp.CacheStats { return m.ws.FactorCacheStats() }

// solve runs the QP over the prepared h/g/lo/hi buffers, warm-starting from
// the cached previous solution when the configuration allows it and the
// locked mask is unchanged, and refreshes the cache and LastSolve stats.
func (m *MPC) solve(locked []bool) (qp.Result, error) {
	if m.cfg.LegacyQP {
		res, err := qp.Solve(qp.Problem{H: m.h, G: m.g, Lo: m.lo, Hi: m.hi}, qp.Options{})
		if err != nil {
			return res, err
		}
		m.last = SolveStats{Sweeps: res.Sweeps, Converged: res.Converged, Objective: res.Objective}
		return res, nil
	}
	opt := qp.Options{Ws: m.ws, HGen: m.hGen}
	warm := false
	if m.cfg.WarmStart && m.warmOK && maskUnchanged(m.warmMask, locked) {
		opt.Warm = m.warmX
		warm = true
	}
	res, err := qp.Solve(qp.Problem{H: m.h, G: m.g, Lo: m.lo, Hi: m.hi}, opt)
	if err != nil {
		m.warmOK = false
		return res, err
	}
	if m.cfg.WarmStart {
		copy(m.warmX, res.X)
		for i := range m.warmMask {
			m.warmMask[i] = locked != nil && locked[i]
		}
		m.warmOK = true
	}
	m.last = SolveStats{Sweeps: res.Sweeps, Converged: res.Converged, Objective: res.Objective, Warm: warm}
	return res, nil
}

// maskUnchanged reports whether the cached mask equals the requested one
// (nil meaning all-unlocked).
func maskUnchanged(cached []bool, locked []bool) bool {
	for i, c := range cached {
		l := locked != nil && locked[i]
		if c != l {
			return false
		}
	}
	return true
}

// PredictPower returns the design model's one-step power prediction (W) for
// a frequency move, used by tests and the allocator's what-if analysis.
func (m *MPC) PredictPower(pfbW float64, dFreqs []float64) float64 {
	p := pfbW
	for i, k := range m.cfg.KWPerGHz {
		p += k * dFreqs[i]
	}
	return p
}
