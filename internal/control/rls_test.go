package control

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewRLSValidation(t *testing.T) {
	if _, err := NewRLS(10, 0, 1, 20); err == nil {
		t.Fatal("zero lambda should error")
	}
	if _, err := NewRLS(10, 0.99, 20, 1); err == nil {
		t.Fatal("bad bounds should error")
	}
	if _, err := NewRLS(100, 0.99, 1, 20); err == nil {
		t.Fatal("k0 outside bounds should error")
	}
}

func TestRLSConvergesToTrueSlope(t *testing.T) {
	// True slope 9.6 W/GHz, start 3× off, noisy observations.
	r, err := NewRLS(28.8, 0.98, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const truth = 9.6
	for i := 0; i < 200; i++ {
		df := rng.NormFloat64() * 2
		dp := truth*df + rng.NormFloat64()*5
		r.Observe(df, dp, 0.05)
	}
	if math.Abs(r.K()-truth) > 1 {
		t.Fatalf("K = %v after 200 observations, want ≈%v", r.K(), truth)
	}
	if r.Updates() == 0 {
		t.Fatal("no updates recorded")
	}
}

func TestRLSTracksDrift(t *testing.T) {
	r, _ := NewRLS(9.6, 0.95, 1, 40)
	rng := rand.New(rand.NewSource(6))
	// Slope drifts from 9.6 to 15 (more batch cores activated).
	for i := 0; i < 300; i++ {
		truth := 9.6
		if i >= 100 {
			truth = 15
		}
		df := rng.NormFloat64() * 2
		r.Observe(df, truth*df+rng.NormFloat64()*3, 0.05)
	}
	if math.Abs(r.K()-15) > 1.5 {
		t.Fatalf("K = %v, want to have tracked the drift to 15", r.K())
	}
}

func TestRLSIgnoresWeakExcitation(t *testing.T) {
	r, _ := NewRLS(9.6, 0.98, 1, 40)
	for i := 0; i < 100; i++ {
		r.Observe(0.001, 50, 0.05) // tiny ΔF, big noise power
	}
	if r.Updates() != 0 || r.K() != 9.6 {
		t.Fatalf("weak excitation should be ignored: K=%v updates=%d", r.K(), r.Updates())
	}
}

func TestRLSIgnoresNonFinite(t *testing.T) {
	r, _ := NewRLS(9.6, 0.98, 1, 40)
	r.Observe(math.NaN(), 1, 0.05)
	r.Observe(1, math.Inf(1), 0.05)
	if r.Updates() != 0 {
		t.Fatal("non-finite observations must be ignored")
	}
}

func TestRLSBoundsRespected(t *testing.T) {
	r, _ := NewRLS(9.6, 0.9, 5, 12)
	// Absurd observations pull toward a slope of 1000; bounds must hold.
	for i := 0; i < 50; i++ {
		r.Observe(1, 1000, 0.05)
	}
	if r.K() > 12 {
		t.Fatalf("K = %v escaped its upper bound", r.K())
	}
	for i := 0; i < 50; i++ {
		r.Observe(1, 0.1, 0.05)
	}
	if r.K() < 5 {
		t.Fatalf("K = %v escaped its lower bound", r.K())
	}
}
