package control

import (
	"math"
	"testing"

	"sprintcon/internal/cpu"
	"sprintcon/internal/server"
)

func uniformK(n int, k float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = k
	}
	return out
}

func ones(n int) []float64 { return uniformK(n, 1) }

// linearPlant evaluates the design model p = Σ k·f + C.
func linearPlant(k []float64, freqs []float64, c float64) float64 {
	p := c
	for i := range k {
		p += k[i] * freqs[i]
	}
	return p
}

func TestMPCConfigValidate(t *testing.T) {
	good := DefaultMPCConfig(uniformK(4, 9.6))
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*MPCConfig)
	}{
		{"zero horizon", func(c *MPCConfig) { c.PredictionHorizon = 0 }},
		{"control > prediction", func(c *MPCConfig) { c.ControlHorizon = 99 }},
		{"zero period", func(c *MPCConfig) { c.PeriodS = 0 }},
		{"zero tau", func(c *MPCConfig) { c.RefTimeConstS = 0 }},
		{"zero Q", func(c *MPCConfig) { c.QWeight = 0 }},
		{"zero Rscale", func(c *MPCConfig) { c.RScale = 0 }},
		{"empty K", func(c *MPCConfig) { c.KWPerGHz = nil }},
		{"negative k", func(c *MPCConfig) { c.KWPerGHz = []float64{9, -1} }},
		{"bad bounds", func(c *MPCConfig) { c.FMinGHz = 2.0; c.FMaxGHz = 0.4 }},
	}
	for _, tc := range cases {
		cfg := DefaultMPCConfig(uniformK(4, 9.6))
		tc.mutate(&cfg)
		if _, err := NewMPC(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMPCStepDimensionCheck(t *testing.T) {
	m, _ := NewMPC(DefaultMPCConfig(uniformK(4, 9.6)))
	if _, err := m.Step(100, 200, []float64{1, 1}, ones(4)); err == nil {
		t.Fatal("wrong freqs length should fail")
	}
	if _, err := m.Step(100, 200, ones(4), []float64{1}); err == nil {
		t.Fatal("wrong weights length should fail")
	}
}

func TestMPCRespectsFrequencyBounds(t *testing.T) {
	m, _ := NewMPC(DefaultMPCConfig(uniformK(8, 9.6)))
	// Huge positive gap: wants max frequency everywhere.
	next, err := m.Step(0, 1e6, uniformK(8, 1.0), ones(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range next {
		if f < 0.4-1e-9 || f > 2.0+1e-9 {
			t.Fatalf("core %d frequency %v out of bounds", i, f)
		}
	}
	// Huge negative gap: wants min frequency everywhere.
	next, err = m.Step(1e6, 0, uniformK(8, 1.0), ones(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range next {
		if f < 0.4-1e-9 || f > 2.0+1e-9 {
			t.Fatalf("core %d frequency %v out of bounds", i, f)
		}
	}
}

// The stability property DESIGN.md promises: the closed loop on the design
// model settles well within the allocator's 30 s period.
func TestMPCSettlesWithinAllocatorPeriod(t *testing.T) {
	n := 16
	k := uniformK(n, 9.6)
	cfg := DefaultMPCConfig(k)
	m, _ := NewMPC(cfg)
	c := 150.0
	freqs := uniformK(n, 0.4)
	target := c + 9.6*float64(n)*1.5 // reachable: mean f = 1.5

	steps := int(30 / cfg.PeriodS)
	var p float64
	for s := 0; s < steps; s++ {
		p = linearPlant(k, freqs, c)
		next, err := m.Step(p, target, freqs, ones(n))
		if err != nil {
			t.Fatal(err)
		}
		freqs = next
	}
	p = linearPlant(k, freqs, c)
	if rel := math.Abs(p-target) / target; rel > 0.03 {
		t.Fatalf("after 30 s: power %v vs target %v (rel %.3f)", p, target, rel)
	}
}

func TestMPCNoOvershootWithLargeTau(t *testing.T) {
	// Section V-B: larger τ_r → smaller overshoot. Track the step
	// response and require it to approach from below.
	n := 8
	k := uniformK(n, 9.6)
	cfg := DefaultMPCConfig(k)
	cfg.RefTimeConstS = 16
	m, _ := NewMPC(cfg)
	c := 100.0
	freqs := uniformK(n, 0.4)
	target := c + 9.6*float64(n)*1.2
	maxP := 0.0
	for s := 0; s < 40; s++ {
		p := linearPlant(k, freqs, c)
		maxP = math.Max(maxP, p)
		next, err := m.Step(p, target, freqs, ones(n))
		if err != nil {
			t.Fatal(err)
		}
		freqs = next
	}
	if maxP > target*1.02 {
		t.Fatalf("overshoot: peak %v vs target %v", maxP, target)
	}
}

func TestMPCUnreachableTargetSaturatesAtPeak(t *testing.T) {
	n := 4
	k := uniformK(n, 9.6)
	m, _ := NewMPC(DefaultMPCConfig(k))
	freqs := uniformK(n, 1.0)
	for s := 0; s < 30; s++ {
		p := linearPlant(k, freqs, 50)
		next, err := m.Step(p, 1e5, freqs, ones(n))
		if err != nil {
			t.Fatal(err)
		}
		freqs = next
	}
	for i, f := range freqs {
		if math.Abs(f-2.0) > 1e-6 {
			t.Fatalf("core %d at %v, want saturated at 2.0", i, f)
		}
	}
}

func TestMPCUrgentCoresGetMoreFrequency(t *testing.T) {
	// Section V-B: the workload with less progress / less remaining time
	// has the larger R and must receive more power when the budget is
	// scarce.
	n := 8
	k := uniformK(n, 9.6)
	m, _ := NewMPC(DefaultMPCConfig(k))
	freqs := uniformK(n, 1.2)
	weights := ones(n)
	weights[0] = 10  // far behind schedule
	weights[1] = 0.1 // nearly done
	c := 100.0
	// Scarce budget: mean frequency ≈ 1.0.
	target := c + 9.6*float64(n)*1.0
	for s := 0; s < 30; s++ {
		p := linearPlant(k, freqs, c)
		next, err := m.Step(p, target, freqs, weights)
		if err != nil {
			t.Fatal(err)
		}
		freqs = next
	}
	if freqs[0] <= freqs[1] {
		t.Fatalf("urgent core %v should run faster than relaxed core %v", freqs[0], freqs[1])
	}
	if freqs[0] <= freqs[2] || freqs[1] >= freqs[2] {
		t.Fatalf("ordering wrong: urgent %v, normal %v, relaxed %v", freqs[0], freqs[2], freqs[1])
	}
}

// Robustness (paper Section V-C / VI-A): the controller designed on the
// linear model must converge when the plant is the richer Horvath-Skadron
// measurement model with fan disturbance.
func TestMPCConvergesOnNonlinearPlant(t *testing.T) {
	params := server.DefaultParams()
	srv, err := server.New(0, params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		srv.CPU().SetClass(i, cpu.Batch)
		srv.CPU().SetUtil(i, 0.95)
		srv.CPU().SetFreq(i, 0.4)
	}
	co := params.DesignCoeffs(0.9)
	m, _ := NewMPC(DefaultMPCConfig(uniformK(8, co.KWPerGHz)))
	env := server.Environment{AmbientC: 28} // off-nominal ambient

	target := 230.0 // between idle 150 and full ~300
	// The controller tracks its own commanded (continuous) frequencies;
	// the modulator quantizes to P-states. Feeding quantized values back
	// into the optimizer would deadband small corrective moves.
	cmd := uniformK(8, 0.4)
	var p float64
	for s := 0; s < 30; s++ {
		p = srv.Power(env)
		next, err := m.Step(p, target, cmd, ones(8))
		if err != nil {
			t.Fatal(err)
		}
		cmd = next
		for i := 0; i < 8; i++ {
			srv.CPU().SetFreq(i, next[i]) // quantized by the P-state table
		}
	}
	p = srv.Power(env)
	if rel := math.Abs(p-target) / target; rel > 0.05 {
		t.Fatalf("nonlinear plant: settled at %v vs target %v (rel %.3f)", p, target, rel)
	}
}

func TestMPCPredictPower(t *testing.T) {
	m, _ := NewMPC(DefaultMPCConfig([]float64{10, 20}))
	if got := m.PredictPower(100, []float64{0.1, 0.2}); math.Abs(got-105) > 1e-9 {
		t.Fatalf("PredictPower = %v, want 105", got)
	}
}
