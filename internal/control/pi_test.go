package control

import (
	"math"
	"testing"
)

func TestPIConfigValidate(t *testing.T) {
	good := DefaultPIConfig(8, 8*9.6)
	if err := good.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*PIConfig)
	}{
		{"zero kp", func(c *PIConfig) { c.Kp = 0 }},
		{"negative ki", func(c *PIConfig) { c.Ki = -1 }},
		{"zero period", func(c *PIConfig) { c.PeriodS = 0 }},
		{"bad bounds", func(c *PIConfig) { c.FMaxGHz = 0.1 }},
		{"zero cores", func(c *PIConfig) { c.Cores = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultPIConfig(8, 8*9.6)
		tc.mutate(&cfg)
		if _, err := NewPI(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPIConvergesOnLinearPlant(t *testing.T) {
	n := 16
	k := uniformK(n, 9.6)
	sumK := 9.6 * float64(n)
	pi, _ := NewPI(DefaultPIConfig(n, sumK))
	c := 150.0
	freqs := uniformK(n, 0.4)
	target := c + sumK*1.4
	var p float64
	for s := 0; s < 40; s++ {
		p = linearPlant(k, freqs, c)
		freqs = pi.Step(p, target, freqs)
	}
	p = linearPlant(k, freqs, c)
	if rel := math.Abs(p-target) / target; rel > 0.03 {
		t.Fatalf("PI settled at %v vs %v (rel %.3f)", p, target, rel)
	}
}

func TestPIRespectsBounds(t *testing.T) {
	pi, _ := NewPI(DefaultPIConfig(4, 4*9.6))
	freqs := pi.Step(0, 1e6, uniformK(4, 1.0))
	for _, f := range freqs {
		if f > 2.0 {
			t.Fatalf("frequency %v above bound", f)
		}
	}
	freqs = pi.Step(1e6, 0, uniformK(4, 1.0))
	for _, f := range freqs {
		if f < 0.4 {
			t.Fatalf("frequency %v below bound", f)
		}
	}
}

func TestPIAntiWindup(t *testing.T) {
	// Hold an unreachable target for a long time, then drop it; the
	// integral must not have wound up so far that recovery stalls.
	n := 4
	k := uniformK(n, 9.6)
	sumK := 9.6 * float64(n)
	pi, _ := NewPI(DefaultPIConfig(n, sumK))
	c := 50.0
	freqs := uniformK(n, 1.0)
	for s := 0; s < 200; s++ {
		p := linearPlant(k, freqs, c)
		freqs = pi.Step(p, 1e5, freqs) // unreachable
	}
	target := c + sumK*1.0
	var p float64
	for s := 0; s < 40; s++ {
		p = linearPlant(k, freqs, c)
		freqs = pi.Step(p, target, freqs)
	}
	p = linearPlant(k, freqs, c)
	if rel := math.Abs(p-target) / target; rel > 0.05 {
		t.Fatalf("post-windup recovery failed: %v vs %v", p, target)
	}
}

func TestPIReset(t *testing.T) {
	pi, _ := NewPI(DefaultPIConfig(2, 2*9.6))
	pi.Step(0, 1000, uniformK(2, 1.0))
	pi.Reset()
	if pi.integral != 0 {
		t.Fatal("Reset should clear the integral")
	}
}

func TestPIUniformMove(t *testing.T) {
	// The PI baseline cannot differentiate cores: all moves are equal.
	pi, _ := NewPI(DefaultPIConfig(3, 3*9.6))
	next := pi.Step(100, 200, []float64{1.0, 1.0, 1.0})
	if next[0] != next[1] || next[1] != next[2] {
		t.Fatalf("PI moves must be uniform, got %v", next)
	}
}
