package control

import (
	"fmt"
	"math"
)

// This file holds the serializable state snapshots of every stateful
// controller in the package, for the crash-safe checkpoint subsystem
// (DESIGN.md §11). Exports are cheap deep copies; restores range-check
// every field against the live configuration so a corrupt snapshot can
// never install a state the controller could not have reached itself.

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// GuardState snapshots a MeasurementGuard.
type GuardState struct {
	Held       float64
	HaveHeld   bool
	PrevRaw    float64
	HavePrev   bool
	Identical  int
	Confidence float64
}

// ExportState captures the guard's mutable state.
func (g *MeasurementGuard) ExportState() GuardState {
	return GuardState{
		Held:       g.held,
		HaveHeld:   g.haveHeld,
		PrevRaw:    g.prevRaw,
		HavePrev:   g.havePrev,
		Identical:  g.identical,
		Confidence: g.confidence,
	}
}

// RestoreState overwrites the guard's mutable state from a snapshot.
func (g *MeasurementGuard) RestoreState(st GuardState) error {
	switch {
	case !finite(st.Held) && st.HaveHeld:
		return fmt.Errorf("control: guard snapshot held value %g not finite", st.Held)
	case !finite(st.PrevRaw) && st.HavePrev:
		return fmt.Errorf("control: guard snapshot previous reading %g not finite", st.PrevRaw)
	case math.IsNaN(st.Confidence) || st.Confidence < 0 || st.Confidence > 1:
		return fmt.Errorf("control: guard snapshot confidence %g outside [0, 1]", st.Confidence)
	case st.Identical < 0:
		return fmt.Errorf("control: guard snapshot identical count %d is negative", st.Identical)
	}
	g.held = st.Held
	g.haveHeld = st.HaveHeld
	g.prevRaw = st.PrevRaw
	g.havePrev = st.HavePrev
	g.identical = st.Identical
	g.confidence = st.Confidence
	return nil
}

// RLSState snapshots an RLS estimator.
type RLSState struct {
	K       float64
	P       float64
	Updates int
}

// ExportState captures the estimator's mutable state.
func (r *RLS) ExportState() RLSState {
	return RLSState{K: r.k, P: r.p, Updates: r.updates}
}

// RestoreState overwrites the estimator's mutable state from a snapshot.
// The slope must respect the live physical bounds and the covariance the
// same guards Observe enforces.
func (r *RLS) RestoreState(st RLSState) error {
	switch {
	case math.IsNaN(st.K) || st.K < r.min || st.K > r.max:
		return fmt.Errorf("control: RLS snapshot slope %g outside [%g, %g]", st.K, r.min, r.max)
	case math.IsNaN(st.P) || st.P < 1e-9 || st.P > 1e6:
		return fmt.Errorf("control: RLS snapshot covariance %g outside [1e-9, 1e6]", st.P)
	case st.Updates < 0:
		return fmt.Errorf("control: RLS snapshot update count %d is negative", st.Updates)
	}
	r.k = st.K
	r.p = st.P
	r.updates = st.Updates
	return nil
}

// Trim returns the UPS controller's integral trim in watts.
func (u *UPSController) Trim() float64 { return u.trim }

// RestoreTrim sets the integral trim from a snapshot, clamped to the
// configured authority; non-finite values reset the trim to zero.
func (u *UPSController) RestoreTrim(trimW float64) {
	if !finite(trimW) {
		trimW = 0
	}
	u.trim = math.Max(-u.cfg.TrimLimitW, math.Min(u.cfg.TrimLimitW, trimW))
}

// Integral returns the PI controller's integral state.
func (p *PI) Integral() float64 { return p.integral }

// RestoreIntegral sets the integral state from a snapshot, clamped to the
// same ±1e6 band the anti-windup guard enforces; non-finite values reset
// the integral to zero.
func (p *PI) RestoreIntegral(v float64) {
	if !finite(v) {
		v = 0
	}
	p.integral = math.Max(-1e6, math.Min(1e6, v))
}

// MPCWarmState snapshots the MPC warm-start cache. Losing it is never
// unsafe — the next solve falls back to a cold start — but restoring it
// keeps a resumed run's QP iterate sequence, and therefore its commanded
// frequencies, bit-identical to the uninterrupted run.
type MPCWarmState struct {
	X    []float64
	Mask []bool
	OK   bool
}

// ExportWarmState captures the warm-start cache.
func (m *MPC) ExportWarmState() MPCWarmState {
	return MPCWarmState{
		X:    append([]float64(nil), m.warmX...),
		Mask: append([]bool(nil), m.warmMask...),
		OK:   m.warmOK,
	}
}

// RestoreWarmState installs a warm-start cache. Dimension mismatches or
// non-finite entries leave the cache cold (warmOK false) rather than fail:
// a cold start is always a safe solver state.
func (m *MPC) RestoreWarmState(st MPCWarmState) {
	m.warmOK = false
	if !st.OK || len(st.X) != len(m.warmX) || len(st.Mask) != len(m.warmMask) {
		return
	}
	for _, v := range st.X {
		if !finite(v) {
			return
		}
	}
	copy(m.warmX, st.X)
	copy(m.warmMask, st.Mask)
	m.warmOK = true
}
