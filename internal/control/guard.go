package control

import (
	"errors"
	"math"
)

// MeasurementGuardConfig parameterizes the power-measurement plausibility
// filter that sits between the rack power monitor and every consumer of its
// readings. The guard exists because a sprinting controller that trusts a
// frozen or absent monitor during a scheduled breaker overload will ride
// the overload with no real feedback — the exact failure mode the safety
// supervisor must never allow.
type MeasurementGuardConfig struct {
	// FreezeTicks flags the stream as frozen after this many consecutive
	// bit-identical readings. Real monitors carry noise, so exact repeats
	// are a reliable stuck-at signature; set 0 to disable (mandatory when
	// the monitor is configured noise-free, where repeats are legitimate).
	FreezeTicks int
	// SlewFrac bounds the plausible relative change between consecutive
	// accepted readings; SlewFloorW is the absolute floor of that band so
	// small rack power does not make the band degenerate. A reading
	// outside last-known-good ± max(SlewFrac·good, SlewFloorW) is
	// rejected as a spike or step fault.
	SlewFrac   float64
	SlewFloorW float64
	// DecayPerTick moves the held last-known-good value toward the design
	// model's power estimate while readings are invalid, so a long outage
	// degrades gracefully to model-based open-loop operation instead of
	// serving an ever-staler sample.
	DecayPerTick float64
	// ConfidenceDecay multiplies the confidence on each invalid reading;
	// ConfidenceRecover is added back per valid reading. Confidence is
	// clamped to [0, 1] and starts at 1.
	ConfidenceDecay   float64
	ConfidenceRecover float64
}

// DefaultMeasurementGuardConfig returns the hardened-policy defaults: three
// identical samples flag a freeze, the slew band tolerates the largest
// legitimate per-tick power moves with a wide margin, and confidence
// collapses within roughly one 4-second control period of telemetry loss.
func DefaultMeasurementGuardConfig() MeasurementGuardConfig {
	return MeasurementGuardConfig{
		FreezeTicks:       3,
		SlewFrac:          0.30,
		SlewFloorW:        250,
		DecayPerTick:      0.25,
		ConfidenceDecay:   0.5,
		ConfidenceRecover: 0.34,
	}
}

// Validate reports structural errors in the configuration.
func (c MeasurementGuardConfig) Validate() error {
	switch {
	case c.FreezeTicks < 0:
		return errors.New("control: FreezeTicks must be non-negative")
	case c.SlewFrac <= 0 || c.SlewFloorW <= 0:
		return errors.New("control: slew band must be positive")
	case c.DecayPerTick < 0 || c.DecayPerTick > 1:
		return errors.New("control: DecayPerTick must be in [0, 1]")
	case c.ConfidenceDecay <= 0 || c.ConfidenceDecay >= 1:
		return errors.New("control: ConfidenceDecay must be in (0, 1)")
	case c.ConfidenceRecover <= 0:
		return errors.New("control: ConfidenceRecover must be positive")
	}
	return nil
}

// MeasurementGuard validates each power reading and substitutes a
// last-known-good estimate when the monitor misbehaves. It also maintains a
// confidence score the supervisor and allocator act on: the allocator
// derates the overload budget proportionally, and the supervisor refuses to
// overload at all below its confidence floor.
type MeasurementGuard struct {
	cfg MeasurementGuardConfig

	held       float64 // last-known-good (or decayed) value served downstream
	haveHeld   bool
	prevRaw    float64 // previous raw reading, for freeze detection
	havePrev   bool
	identical  int // consecutive bit-identical raw readings
	confidence float64
}

// NewMeasurementGuard returns a guard or an error for invalid config.
func NewMeasurementGuard(cfg MeasurementGuardConfig) (*MeasurementGuard, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MeasurementGuard{cfg: cfg, confidence: 1}, nil
}

// Confidence returns the current measurement confidence in [0, 1].
func (g *MeasurementGuard) Confidence() float64 { return g.confidence }

// Held returns the value the guard currently serves downstream.
func (g *MeasurementGuard) Held() float64 { return g.held }

// Step validates one reading. modelEstW is the design model's estimate of
// the same quantity, used only as the decay target while readings are
// invalid. It returns the value downstream consumers should use and whether
// the raw reading was accepted.
func (g *MeasurementGuard) Step(rawW, modelEstW float64) (float64, bool) {
	valid := !math.IsNaN(rawW) && !math.IsInf(rawW, 0) && rawW >= 0

	// Freeze detection: bit-identical repeats. Tracked on the raw stream
	// before any other check so a frozen-then-biased chain still counts.
	if valid && g.cfg.FreezeTicks > 0 {
		if g.havePrev && rawW == g.prevRaw {
			g.identical++
			if g.identical >= g.cfg.FreezeTicks {
				valid = false
			}
		} else {
			g.identical = 0
		}
	}
	if !math.IsNaN(rawW) {
		g.prevRaw = rawW
		g.havePrev = true
	}

	// Slew check: an implausible jump from the last accepted value is a
	// spike or a step fault (e.g. bias onset), not physics — the rack
	// cannot move that much power in one tick.
	if valid && g.haveHeld {
		band := math.Max(g.cfg.SlewFrac*math.Abs(g.held), g.cfg.SlewFloorW)
		if math.Abs(rawW-g.held) > band {
			valid = false
		}
	}

	if valid {
		g.held = rawW
		g.haveHeld = true
		g.confidence = math.Min(1, g.confidence+g.cfg.ConfidenceRecover)
		return rawW, true
	}

	g.confidence *= g.cfg.ConfidenceDecay
	if !g.haveHeld {
		// Never saw a good reading: the model estimate is all there is.
		g.held = modelEstW
		g.haveHeld = true
	} else if !math.IsNaN(modelEstW) && !math.IsInf(modelEstW, 0) {
		g.held += g.cfg.DecayPerTick * (modelEstW - g.held)
	}
	return g.held, false
}
