package control

import (
	"errors"
	"math"
)

// UPSControllerConfig parameterizes the UPS power controller
// (paper Section IV-C): in every control period the UPS discharge must equal
// p_total − P_cb (or zero when total demand fits under the CB budget) so the
// breaker carries exactly its target.
type UPSControllerConfig struct {
	// PeriodS is the control period in seconds (fast: 1 s).
	PeriodS float64
	// TrimKi is the integral gain (W of request per W·s of CB error)
	// correcting residual error from duty-cycle quantization and monitor
	// noise. Zero yields pure feedforward.
	TrimKi float64
	// TrimLimitW bounds the integral trim authority.
	TrimLimitW float64
	// Feedforward selects whether the p_total − P_cb feedforward term is
	// used (disabled only by the A3 ablation, which then needs TrimKp).
	Feedforward bool
	// TrimKp is a proportional gain on the CB error, used mainly by the
	// pure-PI ablation variant.
	TrimKp float64
	// TargetMarginW derates the CB budget: the controller regulates to
	// P_cb − margin so that one-period measurement lag and duty-cycle
	// quantization produce errors *around* a point safely below the
	// budget instead of straddling it.
	TargetMarginW float64
}

// DefaultUPSControllerConfig returns the paper-faithful controller:
// feedforward with a small integral trim.
func DefaultUPSControllerConfig() UPSControllerConfig {
	return UPSControllerConfig{
		PeriodS:       1,
		TrimKi:        0.2,
		TrimLimitW:    400,
		Feedforward:   true,
		TrimKp:        0,
		TargetMarginW: 30,
	}
}

// Validate reports structural errors in the configuration.
func (c UPSControllerConfig) Validate() error {
	switch {
	case c.PeriodS <= 0:
		return errors.New("control: PeriodS must be positive")
	case c.TrimKi < 0 || c.TrimKp < 0:
		return errors.New("control: trim gains must be non-negative")
	case c.TrimLimitW < 0:
		return errors.New("control: TrimLimitW must be non-negative")
	case c.TargetMarginW < 0:
		return errors.New("control: TargetMarginW must be non-negative")
	case !c.Feedforward && c.TrimKi == 0 && c.TrimKp == 0:
		return errors.New("control: disabled feedforward requires trim gains")
	}
	return nil
}

// UPSController computes the battery discharge request each period.
type UPSController struct {
	cfg  UPSControllerConfig
	trim float64
}

// NewUPSController returns a controller or an error for invalid config.
func NewUPSController(cfg UPSControllerConfig) (*UPSController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &UPSController{cfg: cfg}, nil
}

// Reset clears the integral trim.
func (u *UPSController) Reset() { u.trim = 0 }

// Step returns the discharge power to request from the UPS for the next
// period, given the measured rack total and measured CB power from the last
// period and the allocator's CB budget P_cb. Non-negative by construction:
// the UPS never absorbs power here (recharge is scheduled off-sprint).
func (u *UPSController) Step(measuredTotalW, measuredCBW, pcbTargetW float64) float64 {
	// A NaN anywhere would poison the integral trim permanently; with no
	// usable inputs the only safe request is zero (the breaker-side
	// overload protection still applies).
	if math.IsNaN(measuredTotalW) || math.IsNaN(measuredCBW) || math.IsNaN(pcbTargetW) {
		return 0
	}
	pcbTargetW -= u.cfg.TargetMarginW
	cbErr := measuredCBW - pcbTargetW // positive: breaker over budget

	var req float64
	if u.cfg.Feedforward {
		req = measuredTotalW - pcbTargetW
	}
	req += u.cfg.TrimKp * cbErr

	u.trim += u.cfg.TrimKi * cbErr * u.cfg.PeriodS
	if u.trim > u.cfg.TrimLimitW {
		u.trim = u.cfg.TrimLimitW
	} else if u.trim < -u.cfg.TrimLimitW {
		u.trim = -u.cfg.TrimLimitW
	}
	req += u.trim

	if req < 0 {
		// Anti-windup: when no discharge is needed, bleed the trim so
		// it cannot push the breaker under budget later.
		u.trim *= 0.5
		return 0
	}
	return req
}
