package control

import (
	"errors"
	"math"
)

// PIConfig parameterizes the single-loop PI power controller used as the
// ablation baseline for MPC (DESIGN.md A1). It closes one loop on total
// batch power and distributes the frequency move uniformly across cores —
// the structure classic server power capping uses [8].
type PIConfig struct {
	// Kp and Ki are the proportional and integral gains in GHz per watt
	// (per core, applied to the aggregate error).
	Kp, Ki float64
	// PeriodS is the control period in seconds.
	PeriodS float64
	// FMinGHz and FMaxGHz bound every core's frequency.
	FMinGHz, FMaxGHz float64
	// Cores is the number of controlled cores.
	Cores int
}

// DefaultPIConfig returns gains tuned for the default rack: the aggregate
// plant gain is Σk ≈ 64 cores × 9.6 W/GHz, so Kp ≈ 0.5/Σk gives a
// half-error step per period.
func DefaultPIConfig(cores int, sumKWPerGHz float64) PIConfig {
	return PIConfig{
		Kp:      0.5 / sumKWPerGHz,
		Ki:      0.15 / sumKWPerGHz,
		PeriodS: 4,
		FMinGHz: 0.4,
		FMaxGHz: 2.0,
		Cores:   cores,
	}
}

// Validate reports structural errors in the configuration.
func (c PIConfig) Validate() error {
	switch {
	case c.Kp <= 0 || c.Ki < 0:
		return errors.New("control: need Kp > 0 and Ki ≥ 0")
	case c.PeriodS <= 0:
		return errors.New("control: PeriodS must be positive")
	case c.FMinGHz <= 0 || c.FMaxGHz <= c.FMinGHz:
		return errors.New("control: need 0 < FMin < FMax")
	case c.Cores <= 0:
		return errors.New("control: Cores must be positive")
	}
	return nil
}

// PI is the stateful single-loop controller. Like MPC, it owns its output
// buffer: the slice returned by Step is reused by the next call.
type PI struct {
	cfg      PIConfig
	integral float64
	next     []float64
}

// NewPI returns a controller or an error for invalid configuration.
func NewPI(cfg PIConfig) (*PI, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PI{cfg: cfg, next: make([]float64, cfg.Cores)}, nil
}

// Reset clears the integral state.
func (p *PI) Reset() { p.integral = 0 }

// Step computes the next per-core frequencies from the aggregate batch
// power error (W in, GHz out). All cores receive the same move (the PI
// baseline has no notion of per-core urgency, which is one of the things
// MPC adds). The returned slice is reused by the next call; copy it to
// retain.
func (p *PI) Step(pfbW, pTargetW float64, freqs []float64) []float64 {
	err := pTargetW - pfbW
	p.integral += err * p.cfg.PeriodS
	move := p.cfg.Kp*err + p.cfg.Ki*p.integral

	next := p.next
	if len(next) != len(freqs) {
		next = make([]float64, len(freqs))
		p.next = next
	}
	var saturated bool
	for i, f := range freqs {
		nf := f + move
		if nf < p.cfg.FMinGHz {
			nf = p.cfg.FMinGHz
			saturated = true
		} else if nf > p.cfg.FMaxGHz {
			nf = p.cfg.FMaxGHz
			saturated = true
		}
		next[i] = nf
	}
	// Anti-windup: stop integrating while the actuators are pinned and
	// the error keeps pushing in the saturated direction.
	if saturated {
		p.integral -= err * p.cfg.PeriodS
		p.integral = math.Max(-1e6, math.Min(1e6, p.integral))
	}
	return next
}
