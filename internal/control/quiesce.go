package control

import "sprintcon/internal/engine"

// This file holds the controllers' quiescence-digest hooks for the
// discrete-event simulation engine (DESIGN.md §15). Each method appends the
// controller's complete mutable state — every field a Step can read or
// write on the next control period — to the digest, so that two consecutive
// control periods hashing equal certifies an exact floating-point fixed
// point of that controller. Preallocated scratch (solver workspaces,
// output buffers) is excluded only where it is provably a pure function of
// the digested inputs, rebuilt from scratch on every solve.

// QuiescenceDigest appends the MPC's mutable cross-period state: the
// warm-start cache and the last solve diagnostics. The per-solve h/g/lo/hi
// vectors and the QP workspace are rebuilt in full on every Step from the
// digested inputs, so they carry no state across periods.
func (m *MPC) QuiescenceDigest(d *engine.Digest) {
	d.F64s(m.warmX)
	d.Bools(m.warmMask)
	d.Bool(m.warmOK)
	d.Int(m.last.Sweeps)
	d.Bool(m.last.Converged)
	d.F64(m.last.Objective)
	d.Bool(m.last.Warm)
}

// QuiescenceDigest appends the PI controller's integrator. A drifting
// integral keeps the digest moving, so PI-driven runs simply never open
// quiescent spans — the honest outcome for a controller without a
// fixed-point structure.
func (p *PI) QuiescenceDigest(d *engine.Digest) {
	d.F64(p.integral)
}

// QuiescenceDigest appends the UPS controller's feedback trim.
func (u *UPSController) QuiescenceDigest(d *engine.Digest) {
	d.F64(u.trim)
}

// QuiescenceDigest appends the measurement guard's filter state.
func (g *MeasurementGuard) QuiescenceDigest(d *engine.Digest) {
	d.F64(g.held)
	d.Bool(g.haveHeld)
	d.F64(g.prevRaw)
	d.Bool(g.havePrev)
	d.Int(g.identical)
	d.F64(g.confidence)
}
