package control

import (
	"math"
	"testing"

	"sprintcon/internal/ups"
)

func TestUPSControllerConfigValidate(t *testing.T) {
	if err := DefaultUPSControllerConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*UPSControllerConfig)
	}{
		{"zero period", func(c *UPSControllerConfig) { c.PeriodS = 0 }},
		{"negative ki", func(c *UPSControllerConfig) { c.TrimKi = -1 }},
		{"negative limit", func(c *UPSControllerConfig) { c.TrimLimitW = -1 }},
		{"no authority", func(c *UPSControllerConfig) { c.Feedforward = false; c.TrimKi = 0; c.TrimKp = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultUPSControllerConfig()
		tc.mutate(&cfg)
		if _, err := NewUPSController(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestFeedforwardExactWithoutError(t *testing.T) {
	cfg := DefaultUPSControllerConfig()
	cfg.TargetMarginW = 0
	c, _ := NewUPSController(cfg)
	// CB exactly on budget → request is exactly the excess.
	got := c.Step(4000, 3200, 3200)
	if math.Abs(got-800) > 1e-9 {
		t.Fatalf("request = %v, want 800", got)
	}
}

func TestTargetMarginBiasesBelowBudget(t *testing.T) {
	cfg := DefaultUPSControllerConfig()
	cfg.TargetMarginW = 30
	c, _ := NewUPSController(cfg)
	// On budget → the margin still requests a little extra discharge.
	got := c.Step(4000, 3200, 3200)
	if got <= 800 {
		t.Fatalf("request = %v, want > 800 with a safety margin", got)
	}
}

func TestNoDischargeUnderBudget(t *testing.T) {
	c, _ := NewUPSController(DefaultUPSControllerConfig())
	if got := c.Step(3000, 3000, 3200); got != 0 {
		t.Fatalf("request = %v, want 0 when under budget", got)
	}
}

func TestTrimCorrectsQuantizationBias(t *testing.T) {
	// Closed loop against a real UPS with coarse 5 % duty quantization:
	// the integral trim must drive the mean CB power to the budget.
	upsCfg := ups.DefaultConfig()
	upsCfg.DutyQuantum = 0.05
	battery, err := ups.New(upsCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctlCfg := DefaultUPSControllerConfig()
	ctlCfg.TargetMarginW = 0 // isolate the trim behaviour
	ctl, _ := NewUPSController(ctlCfg)
	pcb := 3200.0
	total := 4000.0
	cb := total
	var sumErr float64
	const steps = 300
	for s := 0; s < steps; s++ {
		req := ctl.Step(total, cb, pcb)
		delivered := battery.Discharge(req, total, 1)
		cb = total - delivered
		if s >= steps/2 {
			sumErr += cb - pcb
		}
	}
	meanErr := sumErr / float64(steps/2)
	if math.Abs(meanErr) > 20 {
		t.Fatalf("steady-state CB error %v W too large", meanErr)
	}
}

func TestTrimBounded(t *testing.T) {
	cfg := DefaultUPSControllerConfig()
	cfg.TrimLimitW = 100
	c, _ := NewUPSController(cfg)
	for s := 0; s < 1000; s++ {
		c.Step(5000, 5000, 3200) // persistent large error
	}
	if c.trim > 100+1e-9 {
		t.Fatalf("trim %v exceeded limit", c.trim)
	}
}

func TestRequestNeverNegative(t *testing.T) {
	c, _ := NewUPSController(DefaultUPSControllerConfig())
	for s := 0; s < 100; s++ {
		if got := c.Step(1000, 1000, 3200); got < 0 {
			t.Fatalf("negative request %v", got)
		}
	}
}

func TestPurePIVariantStillRegulates(t *testing.T) {
	// Ablation A3: without feedforward, a PI on the CB error alone must
	// still converge, only slower.
	cfg := UPSControllerConfig{PeriodS: 1, TrimKi: 0.3, TrimKp: 0.5, TrimLimitW: 2000, Feedforward: false}
	ctl, err := NewUPSController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	upsCfg := ups.DefaultConfig()
	upsCfg.DutyQuantum = 0
	battery, _ := ups.New(upsCfg)
	pcb := 3200.0
	total := 4000.0
	cb := total
	for s := 0; s < 200; s++ {
		req := ctl.Step(total, cb, pcb)
		delivered := battery.Discharge(req, total, 1)
		cb = total - delivered
	}
	if math.Abs(cb-pcb) > 50 {
		t.Fatalf("pure-PI variant settled at CB %v vs budget %v", cb, pcb)
	}
}

func TestUPSControllerReset(t *testing.T) {
	c, _ := NewUPSController(DefaultUPSControllerConfig())
	c.Step(5000, 5000, 3200)
	c.Reset()
	if c.trim != 0 {
		t.Fatal("Reset should clear trim")
	}
}
