package control

import (
	"errors"
	"math"
)

// RLS is a recursive-least-squares estimator with exponential forgetting
// for the server power model's frequency slope K (watts per GHz): the
// online model estimation the paper cites from the chip-level power
// control literature [27]. Each control period contributes one observation
// Δp ≈ K·ΔF (paper Eq. 4, with ΔF the summed per-core frequency move), and
// the estimate adapts if the true slope drifts (utilization changes, jobs
// arrive/leave).
type RLS struct {
	k        float64 // current estimate
	p        float64 // estimate covariance
	lambda   float64 // forgetting factor
	min, max float64 // physical bounds on the slope
	updates  int
}

// NewRLS returns an estimator starting at k0 with the given forgetting
// factor λ ∈ (0, 1] and physical bounds on the slope.
func NewRLS(k0, lambda, kMin, kMax float64) (*RLS, error) {
	switch {
	case lambda <= 0 || lambda > 1:
		return nil, errors.New("control: RLS forgetting factor must be in (0, 1]")
	case kMin <= 0 || kMax <= kMin:
		return nil, errors.New("control: need 0 < kMin < kMax")
	case k0 < kMin || k0 > kMax:
		return nil, errors.New("control: k0 outside [kMin, kMax]")
	}
	return &RLS{k: k0, p: 1, lambda: lambda, min: kMin, max: kMax}, nil
}

// K returns the current slope estimate.
func (r *RLS) K() float64 { return r.k }

// Updates returns how many observations have been absorbed.
func (r *RLS) Updates() int { return r.updates }

// Observe absorbs one (ΔF, Δp) pair. Observations with too little
// excitation (|ΔF| below minExcitation) are ignored — they carry only
// noise. Non-finite inputs are ignored.
func (r *RLS) Observe(dFreqSumGHz, dPowerW, minExcitation float64) {
	phi := dFreqSumGHz
	if math.Abs(phi) < minExcitation ||
		math.IsNaN(phi) || math.IsInf(phi, 0) ||
		math.IsNaN(dPowerW) || math.IsInf(dPowerW, 0) {
		return
	}
	e := dPowerW - r.k*phi
	denom := r.lambda + phi*r.p*phi
	g := r.p * phi / denom
	r.k += g * e
	r.p = (r.p - g*phi*r.p) / r.lambda
	// Covariance and estimate guards keep the adaptation benign under
	// pathological inputs.
	if r.p > 1e6 {
		r.p = 1e6
	}
	if r.p < 1e-9 {
		r.p = 1e-9
	}
	if r.k < r.min {
		r.k = r.min
	}
	if r.k > r.max {
		r.k = r.max
	}
	r.updates++
}
