package control

import (
	"math"
	"testing"
)

func fullCfg(n int) MPCConfig {
	cfg := DefaultMPCConfig(uniformK(n, 9.6))
	cfg.FullHorizon = true
	return cfg
}

func TestFullHorizonRespectsBounds(t *testing.T) {
	m, err := NewMPC(fullCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ pfb, target float64 }{{0, 1e6}, {1e6, 0}} {
		next, err := m.Step(tc.pfb, tc.target, uniformK(8, 1.0), ones(8))
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range next {
			if f < 0.4-1e-9 || f > 2.0+1e-9 {
				t.Fatalf("core %d frequency %v out of bounds", i, f)
			}
		}
	}
}

func TestFullHorizonConvergesFasterThanSimplified(t *testing.T) {
	// The constant-move simplification averages the first move down; the
	// full horizon may take a larger first step and must close the gap
	// at least as fast on the design model.
	n := 16
	k := uniformK(n, 9.6)
	c := 150.0
	target := c + 9.6*float64(n)*1.5

	settle := func(cfg MPCConfig) int {
		m, err := NewMPC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		freqs := uniformK(n, 0.4)
		for s := 0; s < 40; s++ {
			p := linearPlant(k, freqs, c)
			if math.Abs(p-target) <= 0.02*target {
				return s
			}
			next, err := m.Step(p, target, freqs, ones(n))
			if err != nil {
				t.Fatal(err)
			}
			freqs = next
		}
		return 40
	}
	simple := settle(DefaultMPCConfig(k))
	full := settle(fullCfg(n))
	if full > simple {
		t.Fatalf("full horizon settles in %d periods, simplified in %d", full, simple)
	}
	if full == 40 {
		t.Fatal("full horizon never settled")
	}
}

func TestFullHorizonNoOvershoot(t *testing.T) {
	n := 8
	k := uniformK(n, 9.6)
	cfg := fullCfg(n)
	m, _ := NewMPC(cfg)
	c := 100.0
	freqs := uniformK(n, 0.4)
	target := c + 9.6*float64(n)*1.2
	maxP := 0.0
	for s := 0; s < 40; s++ {
		p := linearPlant(k, freqs, c)
		maxP = math.Max(maxP, p)
		next, err := m.Step(p, target, freqs, ones(n))
		if err != nil {
			t.Fatal(err)
		}
		freqs = next
	}
	if maxP > target*1.03 {
		t.Fatalf("overshoot: peak %v vs target %v", maxP, target)
	}
}

func TestFullHorizonUrgencyOrdering(t *testing.T) {
	n := 8
	k := uniformK(n, 9.6)
	m, _ := NewMPC(fullCfg(n))
	freqs := uniformK(n, 1.2)
	weights := ones(n)
	weights[0] = 10
	weights[1] = 0.1
	c := 100.0
	target := c + 9.6*float64(n)*1.0
	for s := 0; s < 30; s++ {
		p := linearPlant(k, freqs, c)
		next, err := m.Step(p, target, freqs, weights)
		if err != nil {
			t.Fatal(err)
		}
		freqs = next
	}
	if freqs[0] <= freqs[1] {
		t.Fatalf("urgent core %v should outrun relaxed core %v", freqs[0], freqs[1])
	}
}
