package control

import (
	"testing"
)

func newTestMPC(t *testing.T, n int) *MPC {
	t.Helper()
	k := make([]float64, n)
	for i := range k {
		k[i] = 9.6
	}
	m, err := NewMPC(DefaultMPCConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A steady-state MPC step must not allocate: all solve buffers are owned by
// the controller (DESIGN.md §10).
func TestMPCStepZeroAlloc(t *testing.T) {
	const n = 32
	m := newTestMPC(t, n)
	freqs := make([]float64, n)
	weights := make([]float64, n)
	for i := range freqs {
		freqs[i] = 1.2
		weights[i] = 1
	}
	// Prime the warm cache and any lazily sized state.
	if _, err := m.Step(3000, 3100, freqs, weights); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Step(3000, 3100, freqs, weights); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MPC.Step allocates %.1f times per run, want 0", allocs)
	}
}

// The warm-start cache must be used only while the locked mask is
// unchanged: a stuck-core exclusion (or recovery) invalidates it for one
// solve, after which warm solving resumes under the new mask.
func TestMPCWarmCacheInvalidation(t *testing.T) {
	const n = 8
	m := newTestMPC(t, n)
	freqs := make([]float64, n)
	weights := make([]float64, n)
	for i := range freqs {
		freqs[i] = 1.0
		weights[i] = 1
	}

	step := func(locked []bool) SolveStats {
		t.Helper()
		if _, err := m.StepLocked(800, 900, freqs, weights, locked); err != nil {
			t.Fatal(err)
		}
		return m.LastSolve()
	}

	if st := step(nil); st.Warm {
		t.Fatal("first solve cannot be warm")
	}
	if st := step(nil); !st.Warm {
		t.Fatal("second solve with unchanged mask must be warm")
	}

	locked := make([]bool, n)
	locked[3] = true
	if st := step(locked); st.Warm {
		t.Fatal("mask change must invalidate the warm cache")
	}
	if st := step(locked); !st.Warm {
		t.Fatal("solve under the repeated mask must be warm again")
	}
	// Reverting to all-unlocked is a mask change too.
	if st := step(nil); st.Warm {
		t.Fatal("mask revert must invalidate the warm cache")
	}
}

// With WarmStart disabled (the zero-value config), no solve is ever warm —
// the legacy behavior.
func TestMPCWarmStartDisabled(t *testing.T) {
	const n = 8
	k := make([]float64, n)
	for i := range k {
		k[i] = 9.6
	}
	cfg := DefaultMPCConfig(k)
	cfg.WarmStart = false
	m, err := NewMPC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([]float64, n)
	weights := make([]float64, n)
	for i := range freqs {
		freqs[i] = 1.0
		weights[i] = 1
	}
	for range 3 {
		if _, err := m.Step(800, 900, freqs, weights); err != nil {
			t.Fatal(err)
		}
		if m.LastSolve().Warm {
			t.Fatal("WarmStart=false must never solve warm")
		}
	}
}
