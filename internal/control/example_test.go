package control_test

import (
	"fmt"

	"sprintcon/internal/control"
)

// Close the loop on the linear design model: the MPC tracks a batch power
// budget by moving core frequencies.
func ExampleMPC_Step() {
	const n = 8
	k := make([]float64, n)
	for i := range k {
		k[i] = 9.6 // watts per GHz per core
	}
	m, err := control.NewMPC(control.DefaultMPCConfig(k))
	if err != nil {
		panic(err)
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}

	freqs := make([]float64, n)
	for i := range freqs {
		freqs[i] = 0.4
	}
	const c = 150.0
	target := c + 9.6*n*1.5 // reachable at mean 1.5 GHz
	plant := func() float64 {
		p := c
		for _, f := range freqs {
			p += 9.6 * f
		}
		return p
	}
	for s := 0; s < 10; s++ {
		next, err := m.Step(plant(), target, freqs, weights)
		if err != nil {
			panic(err)
		}
		freqs = next
	}
	fmt.Printf("power within 1%%: %v\n", plant() > 0.99*target && plant() < 1.01*target)
	// Output:
	// power within 1%: true
}

// The UPS power controller covers exactly the load above the breaker
// budget.
func ExampleUPSController_Step() {
	cfg := control.DefaultUPSControllerConfig()
	cfg.TargetMarginW = 0
	c, err := control.NewUPSController(cfg)
	if err != nil {
		panic(err)
	}
	req := c.Step(4000, 3200, 3200) // 4 kW rack, 3.2 kW CB budget
	fmt.Printf("discharge request: %.0f W\n", req)
	// Output:
	// discharge request: 800 W
}
