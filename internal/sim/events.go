package sim

import (
	"fmt"
	"sort"
)

// Event is one timestamped occurrence during a sprint: a supervisor mode
// transition, a breaker trip or reclose, an outage boundary, a budget
// change. The event log is how an operator reconstructs what a controller
// did and why.
type Event struct {
	T    float64 // simulation time in seconds
	Kind string  // stable machine-readable kind, e.g. "cb-trip"
	Msg  string  // human-readable detail
}

// String formats the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("[%7.1fs] %-14s %s", e.T, e.Kind, e.Msg)
}

// EventLog collects events during a run. The engine stamps the current
// simulation time; policies append through Logf without tracking time
// themselves. The zero value is unusable; the engine provides one in Env.
type EventLog struct {
	now    float64
	events []Event
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// SetNow stamps the time attached to subsequent events (engine use).
func (l *EventLog) SetNow(t float64) { l.now = t }

// Logf appends an event at the current simulation time.
func (l *EventLog) Logf(kind, format string, args ...interface{}) {
	l.events = append(l.events, Event{T: l.now, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Events returns the recorded events in time order.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// OfKind returns the events with the given kind, in time order.
func (l *EventLog) OfKind(kind string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
