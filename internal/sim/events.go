package sim

import (
	"fmt"
	"sort"
)

// Event is one timestamped occurrence during a sprint: a supervisor mode
// transition, a breaker trip or reclose, an outage boundary, a budget
// change. The event log is how an operator reconstructs what a controller
// did and why.
type Event struct {
	T    float64 // simulation time in seconds
	Kind string  // stable machine-readable kind, e.g. "cb-trip"
	Msg  string  // human-readable detail
	// Seq is the append order within the run; it breaks ties between
	// events stamped at the same instant (e.g. a fault onset and the
	// supervisor reaction it provokes) so that identical runs always
	// produce byte-identical logs.
	Seq int
}

// String formats the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("[%7.1fs] %-14s %s", e.T, e.Kind, e.Msg)
}

// EventLog collects events during a run. The engine stamps the current
// simulation time; policies append through Logf without tracking time
// themselves. The zero value is unusable; the engine provides one in Env.
type EventLog struct {
	now    float64
	base   int // sequence offset for resumed runs
	drop   bool
	events []Event
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// SetNow stamps the time attached to subsequent events (engine use).
func (l *EventLog) SetNow(t float64) { l.now = t }

// SetBase offsets subsequent sequence numbers (engine use, for runs resumed
// from a checkpoint): the resumed log continues numbering where the original
// run stopped, so merged logs keep a single total order.
func (l *EventLog) SetBase(n int) { l.base = n }

// Len returns the next sequence number to be assigned (base + events logged
// so far) — what a checkpoint records so a resumed log continues numbering.
func (l *EventLog) Len() int { return l.base + len(l.events) }

// Discard switches the log to drop mode: subsequent Logf calls are
// no-ops and Len stops advancing. Used by benchmarks that measure the
// engine's allocation cost, where formatting log entries would be noise.
func (l *EventLog) Discard() { l.drop = true }

// Enabled reports whether Logf records anything. Hot call sites check it
// before building a Logf call: the variadic arguments are boxed by the
// caller, so skipping the call is the only way to keep a dropped log
// allocation-free.
func (l *EventLog) Enabled() bool { return !l.drop }

// Logf appends an event at the current simulation time.
func (l *EventLog) Logf(kind, format string, args ...interface{}) {
	if l.drop {
		return
	}
	l.events = append(l.events, Event{
		T:    l.now,
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
		Seq:  l.base + len(l.events),
	})
}

// Events returns the recorded events in stable time order: ties at the same
// instant keep their append order via Seq, so two identical seeded runs
// render byte-identical logs.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// OfKind returns the events with the given kind, in time order. It filters
// before sorting: copying and re-sorting the full log per call made
// OfKind O(n log n) in the *total* event count for every query, which adds
// up in chaos tests that interrogate the log after every storm.
func (l *EventLog) OfKind(kind string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	// l.events is in append (Seq) order already; a stable sort by time
	// alone therefore preserves Seq order within ties, matching Events().
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
