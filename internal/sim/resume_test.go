package sim_test

import (
	"math"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/core"
	"sprintcon/internal/sim"
)

// grabStore retains the first snapshot at or after a target simulation time.
type grabStore struct {
	at float64
	sp *checkpoint.Snapshot
}

func (g *grabStore) Save(s *checkpoint.Snapshot) (int, error) {
	if g.sp == nil && s.SimTimeS >= g.at {
		cp := *s
		g.sp = &cp
	}
	return 0, nil
}
func (g *grabStore) Latest() (*checkpoint.Snapshot, error) { return g.sp, nil }

// TestResumeContinuationBitIdentical pins full-process resume
// (RunOptions.Resume, the -restore path): a run resumed from a mid-run
// snapshot must reproduce the uninterrupted run's tail bit-identically —
// plant, RNG streams, engine accumulators and controller all restored. The
// snapshot round-trips through the wire encoding first, so gob's bit-exact
// float64 handling is on the test path too.
func TestResumeContinuationBitIdentical(t *testing.T) {
	const resumeAt = 450
	scn := sim.DefaultScenario()
	store := &grabStore{at: resumeAt}
	full, err := sim.RunWith(scn, core.New(core.DefaultConfig()), sim.RunOptions{
		Checkpoint: &sim.CheckpointOptions{Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.sp == nil {
		t.Fatalf("no snapshot captured at t=%ds", resumeAt)
	}

	fs := checkpoint.NewFileStore(t.TempDir() + "/resume.ckpt")
	if _, err := fs.Save(store.sp); err != nil {
		t.Fatal(err)
	}
	sp, err := checkpoint.ReadFile(fs.Path())
	if err != nil {
		t.Fatal(err)
	}

	tail, err := sim.RunWith(scn, core.New(core.DefaultConfig()), sim.RunOptions{Resume: sp})
	if err != nil {
		t.Fatal(err)
	}

	off := int(sp.Step)
	f := &full.Series
	r := &tail.Series
	if len(r.Time) != len(f.Time)-off {
		t.Fatalf("resumed series has %d ticks, want %d", len(r.Time), len(f.Time)-off)
	}
	cols := []struct {
		name       string
		full, tail []float64
	}{
		{"Time", f.Time, r.Time},
		{"TotalW", f.TotalW, r.TotalW},
		{"CBW", f.CBW, r.CBW},
		{"UPSW", f.UPSW, r.UPSW},
		{"PCbW", f.PCbW, r.PCbW},
		{"PBatchW", f.PBatchW, r.PBatchW},
		{"FreqInter", f.FreqInter, r.FreqInter},
		{"FreqBatch", f.FreqBatch, r.FreqBatch},
		{"SoC", f.SoC, r.SoC},
		{"Demand", f.Demand, r.Demand},
	}
	for _, c := range cols {
		for i := range c.tail {
			a, b := c.full[off+i], c.tail[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("%s diverged at t=%.0fs: full=%v resumed=%v", c.name, c.tail[0]+float64(i), a, b)
			}
		}
	}

	// The resumed run's event log continues sequence numbering where the
	// original stopped, and replays no pre-snapshot event.
	for _, e := range tail.Events {
		if e.T < sp.SimTimeS-1e-9 {
			t.Errorf("resumed run logged a pre-snapshot event: %v", e)
		}
		if e.Seq < sp.Plant.Engine.EventSeq {
			t.Errorf("resumed event %v reuses a sequence number below the snapshot's %d", e, sp.Plant.Engine.EventSeq)
		}
	}
	if full.CBTrips != tail.CBTrips {
		t.Errorf("trips diverged: full=%d resumed=%d", full.CBTrips, tail.CBTrips)
	}
}

// TestResumeRejectsMismatches pins the resume guardrails: a snapshot from a
// different scenario or policy must be refused, not silently restored into
// a plant it does not describe.
func TestResumeRejectsMismatches(t *testing.T) {
	scn := sim.DefaultScenario()
	store := &grabStore{at: 100}
	if _, err := sim.RunWith(scn, core.New(core.DefaultConfig()), sim.RunOptions{
		Checkpoint: &sim.CheckpointOptions{Store: store},
	}); err != nil {
		t.Fatal(err)
	}
	sp := store.sp

	t.Run("different-scenario", func(t *testing.T) {
		other := scn
		other.BatchDeadlineS = 600
		if _, err := sim.RunWith(other, core.New(core.DefaultConfig()), sim.RunOptions{Resume: sp}); err == nil {
			t.Fatal("resume accepted a snapshot from a different scenario")
		}
	})
	t.Run("different-policy", func(t *testing.T) {
		cfg := core.DefaultConfig()
		cfg.Controller = core.ControllerPI
		if _, err := sim.RunWith(scn, core.New(cfg), sim.RunOptions{Resume: sp}); err == nil {
			t.Fatal("resume accepted a snapshot from a different policy")
		}
	})
	t.Run("tampered-step", func(t *testing.T) {
		bad := *sp
		bad.Step += 3 // now disagrees with SimTimeS
		if _, err := sim.RunWith(scn, core.New(core.DefaultConfig()), sim.RunOptions{Resume: &bad}); err == nil {
			t.Fatal("resume accepted a snapshot whose step and time disagree")
		}
	})
}
