package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// exampleScenarios reads the committed example scenario files — the fuzz
// seeds, also pinned valid by TestExampleScenariosLoad.
func exampleScenarios(tb testing.TB) map[string][]byte {
	tb.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "scenarios", "*.json"))
	if err != nil {
		tb.Fatal(err)
	}
	if len(paths) == 0 {
		tb.Fatal("no example scenarios committed under testdata/scenarios")
	}
	out := map[string][]byte{}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		out[filepath.Base(p)] = b
	}
	return out
}

// TestExampleScenariosLoad keeps the committed examples loadable: they are
// the -scenario documentation and the fuzz corpus, so drift in the schema
// must update them.
func TestExampleScenariosLoad(t *testing.T) {
	for name, b := range exampleScenarios(t) {
		scn, err := ScenarioFromJSON(bytes.NewReader(b))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if _, err := ScenarioSum(scn); err != nil {
			t.Errorf("%s: fingerprint: %v", name, err)
		}
	}
}

// FuzzScenarioJSON holds the scenario loader to its contract: arbitrary
// bytes either produce a descriptive error or a scenario that passes
// Validate and runs through the engine's own pre-flight checks — never a
// panic, and never a scenario whose fault plan the fault layer rejects
// (a malformed controller-crash spec must not reach the run and restore
// into an overload-enabled state).
func FuzzScenarioJSON(f *testing.F) {
	for _, b := range exampleScenarios(f) {
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"DurationS": 1e308, "DtS": 1e-308}`))
	f.Add([]byte(`{"Faults": {"Faults": [{"Kind": "controller-crash", "OnsetS": -1, "DurationS": 0, "Severity": -5}]}}`))

	f.Fuzz(func(t *testing.T, b []byte) {
		scn, err := ScenarioFromJSON(bytes.NewReader(b))
		if err != nil {
			return
		}
		if verr := scn.Validate(); verr != nil {
			t.Fatalf("loader accepted a scenario Validate rejects: %v", verr)
		}
		for _, flt := range scn.Faults.Faults {
			if flt.Kind == "controller-crash" && flt.Severity < 0 {
				t.Fatalf("loader accepted a negative controller-crash restart delay: %+v", flt)
			}
		}
	})
}
