// Package sim is the discrete-time simulation engine of the evaluation
// (paper Section VI-A): it assembles the 16-server rack, circuit breaker,
// UPS and workload traces, advances the physics each tick, applies a
// sprinting policy's actuation, and collects the metrics every figure of
// the paper is built from (power curves, frequency curves, DoD, trips,
// outage time, deadline compliance).
package sim

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/breaker"
	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/obs"
	"sprintcon/internal/rack"
	"sprintcon/internal/telemetry"
	"sprintcon/internal/ups"
	"sprintcon/internal/workload"
)

// Env bundles the physical system a policy senses and actuates.
type Env struct {
	Rack    *rack.Rack
	Breaker *breaker.Breaker
	UPS     *ups.UPS
	Trace   *workload.InteractiveTrace
	// Events is the run's structured event log; policies may append
	// through Logf (mode changes, budget moves), and the engine records
	// trips, recloses and outage boundaries.
	Events *EventLog
	// Metrics is the run's telemetry registry. It is nil unless the run
	// was started through RunWith with RunOptions.Metrics — all
	// instruments obtained from a nil registry are nil and no-op, so
	// policies instrument unconditionally.
	Metrics *telemetry.Registry
	// Decisions is the per-control-period decision-trace sink (JSONL).
	// Nil unless enabled through RunOptions; telemetry.DecisionSink is
	// nil-safe, so policies emit unconditionally.
	Decisions *telemetry.DecisionSink
	// Obs is the rack's causal observability plane (spans, health
	// rollups, anomaly detectors). Nil unless enabled through
	// RunOptions.Obs; obs.Plane is nil-safe, so policies observe
	// unconditionally.
	Obs *obs.Plane
}

// Snapshot is the measurement set a policy sees at the start of a tick.
// All power values are from the previous tick (sensors report history, not
// the future).
type Snapshot struct {
	Now float64
	Dt  float64
	// MeasuredTotalW is the rack power monitor's (noisy) last reading.
	MeasuredTotalW float64
	// CBPowerW is the power the breaker conducted last tick.
	CBPowerW float64
	// UPSPowerW is the battery power delivered last tick.
	UPSPowerW float64
	// CBThermalFraction, CBNearTrip and CBTripped report breaker state.
	CBThermalFraction float64
	CBNearTrip        bool
	CBTripped         bool
	// UPSSoC and UPSDepleted report battery state.
	UPSSoC      float64
	UPSDepleted bool
	// Outage reports that the rack lost power entirely last tick.
	Outage bool
}

// Policy is a sprinting power-management strategy. Implementations actuate
// the rack (frequencies) inside Tick and return the UPS discharge request
// for the coming tick.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// Start binds the policy to a fresh environment at sprint begin.
	Start(env *Env, scn Scenario) error
	// Tick runs one control step and returns the requested UPS
	// discharge power for this tick (0 for none).
	Tick(env *Env, s Snapshot) (upsRequestW float64)
}

// TargetReporter is optionally implemented by policies that maintain
// explicit power targets; the engine records them into the result series
// (needed for the paper's Fig. 6 "CB budget power" curve).
type TargetReporter interface {
	Targets(now float64) (pcbW, pbatchW float64)
}

// Scenario configures one simulation run.
type Scenario struct {
	// DurationS is the simulated time; DtS the physics step.
	DurationS float64
	DtS       float64
	// BurstDurationS is the announced workload-burst duration the policy
	// plans for (paper: T_burst).
	BurstDurationS float64
	// BatchDeadlineS is the absolute deadline for every batch job
	// (paper Fig. 8: 9, 12, 15 minutes).
	BatchDeadlineS float64
	// WorkFillMin/Max size each job's work as a fraction of
	// WorkReferenceS: a fill of 0.58 with the reference equal to the
	// deadline needs average rate 0.58 to finish exactly on time.
	WorkFillMin, WorkFillMax float64
	// WorkReferenceS anchors job sizes so that sweeping the deadline
	// (paper Fig. 8: 9/12/15 min) varies urgency over the *same* work
	// rather than resizing the jobs.
	WorkReferenceS float64
	// AmbientBaseC and AmbientSwingC drive the fan disturbance.
	AmbientBaseC, AmbientSwingC float64
	// Rack, breaker, UPS and interactive-trace configurations.
	Rack        rack.Config
	Breaker     breaker.Config
	UPS         ups.Config
	Interactive workload.InteractiveConfig
	// Trace, when non-nil, replaces the generated interactive trace —
	// e.g. a production trace loaded with workload.TraceFromCSV.
	Trace *workload.InteractiveTrace
	// Faults is the run's fault-injection schedule (empty = no faults).
	Faults faults.Plan
	// BatchSpecs, when non-empty, replaces the default SpecCPU2006 batch
	// mix; jobs are assigned round-robin exactly as with the default set.
	// Steady-state benchmark scenarios use a single-phase mix here so
	// that re-executing jobs hold constant utilization (multi-phase specs
	// re-walk their phases forever, which genuinely perturbs the plant
	// and caps the event engine's quiescent spans).
	BatchSpecs []workload.BatchSpec
}

// DefaultScenario returns the paper's evaluation setup: a 15-minute sprint
// on the 16-server rack with 12-minute batch deadlines.
func DefaultScenario() Scenario {
	return Scenario{
		DurationS:      900,
		DtS:            1,
		BurstDurationS: 900,
		BatchDeadlineS: 720,
		WorkFillMin:    0.34,
		WorkFillMax:    0.45,
		WorkReferenceS: 720,
		AmbientBaseC:   25,
		AmbientSwingC:  3,
		Rack:           rack.DefaultConfig(),
		Breaker:        breaker.DefaultConfig(),
		UPS:            ups.DefaultConfig(),
		Interactive:    workload.DefaultInteractiveConfig(),
	}
}

// Validate reports structural errors in the scenario. Beyond the zero
// checks it rejects NaN/Inf in every numeric field: a single NaN duration
// or ambient swing silently corrupts an entire run's physics, so it must be
// caught at configuration time with a descriptive error.
func (s Scenario) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DurationS", s.DurationS},
		{"DtS", s.DtS},
		{"BurstDurationS", s.BurstDurationS},
		{"BatchDeadlineS", s.BatchDeadlineS},
		{"WorkFillMin", s.WorkFillMin},
		{"WorkFillMax", s.WorkFillMax},
		{"WorkReferenceS", s.WorkReferenceS},
		{"AmbientBaseC", s.AmbientBaseC},
		{"AmbientSwingC", s.AmbientSwingC},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("sim: %s is %g; every scenario field must be finite", f.name, f.v)
		}
	}
	switch {
	case s.DurationS <= 0 || s.DtS <= 0:
		return errors.New("sim: duration and dt must be positive")
	case s.DtS > s.DurationS:
		return errors.New("sim: dt exceeds duration")
	case s.BurstDurationS <= 0:
		return errors.New("sim: burst duration must be positive")
	case s.BatchDeadlineS <= 0:
		return errors.New("sim: batch deadline must be positive")
	case s.WorkFillMin <= 0 || s.WorkFillMax < s.WorkFillMin || s.WorkFillMax > 1:
		return errors.New("sim: need 0 < WorkFillMin ≤ WorkFillMax ≤ 1")
	case s.WorkReferenceS <= 0:
		return errors.New("sim: WorkReferenceS must be positive")
	}
	if err := s.Rack.Validate(); err != nil {
		return err
	}
	if err := s.Breaker.Validate(); err != nil {
		return err
	}
	if err := s.UPS.Validate(); err != nil {
		return err
	}
	if err := s.Faults.ValidateForRack(s.Rack.NumServers); err != nil {
		return err
	}
	for _, sp := range s.BatchSpecs {
		if err := sp.Validate(); err != nil {
			return err
		}
	}
	return s.Interactive.Validate()
}

// Series holds the per-tick time series of one run.
type Series struct {
	DtS       float64
	Time      []float64
	TotalW    []float64 // rack power
	CBW       []float64 // breaker-conducted power
	UPSW      []float64 // battery-delivered power
	PCbW      []float64 // policy's CB budget (NaN if not reported)
	PBatchW   []float64 // policy's batch budget (NaN if not reported)
	FreqInter []float64 // mean normalized interactive frequency (0 in outage)
	FreqBatch []float64 // mean normalized batch frequency (0 in outage)
	SoC       []float64 // UPS state of charge
	Demand    []float64 // interactive demand fraction offered by the trace
}

// grow preallocates every channel for n ticks so the per-tick appends in
// recordTick never reallocate mid-run.
func (s *Series) grow(n int) {
	s.Time = make([]float64, 0, n)
	s.TotalW = make([]float64, 0, n)
	s.CBW = make([]float64, 0, n)
	s.UPSW = make([]float64, 0, n)
	s.PCbW = make([]float64, 0, n)
	s.PBatchW = make([]float64, 0, n)
	s.FreqInter = make([]float64, 0, n)
	s.FreqBatch = make([]float64, 0, n)
	s.SoC = make([]float64, 0, n)
	s.Demand = make([]float64, 0, n)
}

// Result aggregates one run.
type Result struct {
	Policy   string
	Scenario Scenario
	Series   Series

	// AvgFreqInter/Batch are the time-averaged normalized frequencies
	// (the paper's Fig. 5/7 headline numbers); outage ticks count as 0.
	AvgFreqInter float64
	AvgFreqBatch float64

	CBTrips int
	OutageS float64

	UPSDoD          float64
	UPSDischargedWh float64

	JobsTotal          int
	JobsCompletedOnce  int
	DeadlineMisses     int
	MaxCompletionTimeS float64 // latest first completion (+Inf if any job never finished)
	Jobs               []JobResult

	// CB budget tracking quality (only meaningful for TargetReporters):
	// fraction of ticks the conducted power exceeded the budget by >1 %,
	// and the mean absolute tracking error in watts while controlled.
	CBOverBudgetFrac  float64
	CBTrackingErrorW  float64
	EnergyCBWh        float64 // total energy through the breaker
	EnergyCBOverWh    float64 // breaker energy above its rating
	EnergyTotalWh     float64 // total rack energy
	BatchWorkDoneS    float64 // total batch work executed, in peak-seconds
	InteractiveDemand workload.Stats
	// Events is the run's structured event log, time-ordered.
	Events []Event
	// Telemetry is the final registry snapshot of an instrumented run
	// (nil when the run had no registry) — the experiments harness
	// aggregates these into its reports.
	Telemetry telemetry.Snapshot
	// Engine reports how the run was executed (tick loop versus
	// discrete-event core) and how much work the event core elided.
	Engine EngineStats

	// Summary accumulators, maintained per tick by recordTick in the same
	// per-tick operation order the series-walking finalize loop used, so
	// summary statistics stay bit-identical at any series stride.
	nTicks       int
	sumFreqInter float64
	sumFreqBatch float64
}

// EngineStats describes the execution engine's work for one run.
type EngineStats struct {
	// Name is "tick" or "event".
	Name string
	// Spans is the number of quiescent spans the event engine closed
	// analytically; TicksSkipped is the number of plant ticks those spans
	// covered (0 under the tick engine).
	Spans        int
	TicksSkipped int
	// Events is the number of discrete events (barriers) the event engine
	// dequeued while planning spans.
	Events int
}

// JobResult summarizes one batch job's outcome.
type JobResult struct {
	Name        string  // benchmark name
	Core        string  // core reference, e.g. "s3/c5"
	CompletionS float64 // first completion time (NaN if never)
	Progress    float64 // progress of the current execution at sim end
	Missed      bool    // missed its deadline
}

// NormalizedTimeUse returns the paper's Fig. 8(a) metric: the latest batch
// first-completion time over the deadline (>1 means a miss; +Inf if some
// job never completed).
func (r *Result) NormalizedTimeUse() float64 {
	return r.MaxCompletionTimeS / r.Scenario.BatchDeadlineS
}

// RunOptions attaches observability to a run. The zero value disables all
// telemetry, which keeps the tick loop on the exact legacy hot path (one
// nil check per tick).
type RunOptions struct {
	// Metrics, when non-nil, is installed as Env.Metrics: the engine and
	// the policy register and update instruments there, and the final
	// snapshot lands in Result.Telemetry. Use one registry per run
	// (RunMany jobs run concurrently and would interleave samples).
	Metrics *telemetry.Registry
	// Decisions, when non-nil, is installed as Env.Decisions and receives
	// one structured JSONL record per policy control period.
	Decisions *telemetry.DecisionSink
	// Obs, when non-nil, is installed as Env.Obs: the policy emits
	// control-period spans, health rollups and anomaly alerts there.
	Obs *obs.Plane
	// Status, when non-nil, is refreshed every tick with the live run
	// state, for the /status endpoint of a metrics server.
	Status *telemetry.RunStatus
	// Checkpoint, when non-nil, serializes the run's control state into
	// its Store on the configured cadence, and controller restarts (the
	// controller-crash fault) restore from the latest usable snapshot.
	Checkpoint *CheckpointOptions
	// Resume, when non-nil, restores the whole run — plant, engine
	// accumulators, controller — from the snapshot and continues from its
	// step instead of starting at t=0. The Result then covers only the
	// resumed window.
	Resume *checkpoint.Snapshot
	// Engine selects the execution core: "" or "tick" runs the classic
	// fixed-step loop; "event" runs the discrete-event core, which
	// advances time by next-event deltas and closes provably quiescent
	// spans analytically. Results are bit-identical between the two.
	Engine string
	// SeriesStride records every SeriesStride-th tick into Result.Series
	// (0 or 1 records every tick). Summary statistics are unaffected:
	// they accumulate per tick regardless of the stride. Long diurnal
	// runs use a stride to keep Series memory bounded.
	SeriesStride int
	// DropEvents discards event-log appends: Result.Events comes back
	// empty. Control behavior is unaffected — nothing reads the log
	// mid-run — so results stay bit-identical to a logging run. Benchmarks
	// use it to measure the engine's steady-state allocation cost without
	// counting diagnostic log volume (each entry must box its format
	// arguments and build a fresh string).
	DropEvents bool
	// Stop, when non-nil, is polled between ticks: once it closes, RunWith
	// (and the event engine) abandon the run and return ErrCanceled. The
	// check sits outside Runner.Step, so lock-step drivers that call Step
	// directly (cluster.RunLinked) implement their own cancellation and
	// the per-tick hot path is unchanged for runs that never cancel.
	Stop <-chan struct{}
}

// ErrCanceled is returned by run loops abandoned through RunOptions.Stop
// (or a lock-step driver's stop channel). Callers distinguish it from real
// failures with errors.Is.
var ErrCanceled = errors.New("sim: run canceled")

// stopped reports whether the stop channel (if any) has closed.
func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Run simulates the scenario under the policy with telemetry disabled.
func Run(scn Scenario, p Policy) (*Result, error) {
	return RunWith(scn, p, RunOptions{})
}

// engineMetrics holds the engine's own instruments, resolved once before
// the tick loop so the hot path performs no registry lookups. The zero
// value (all nil instruments) is the disabled state.
type engineMetrics struct {
	enabled     bool
	ticks       *telemetry.Counter
	trips       *telemetry.Counter
	outageS     *telemetry.Counter
	totalW      *telemetry.Gauge
	cbW         *telemetry.Gauge
	upsW        *telemetry.Gauge
	soc         *telemetry.Gauge
	thermMargin *telemetry.Gauge
	demand      *telemetry.Gauge
	nowS        *telemetry.Gauge
	tickSeconds *telemetry.Histogram
}

func newEngineMetrics(r *telemetry.Registry) engineMetrics {
	if r == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		enabled: true,
		ticks:   r.Counter("sim_ticks_total", "simulation ticks executed"),
		trips:   r.Counter("cb_trips_total", "circuit breaker trips"),
		outageS: r.Counter("outage_seconds_total", "simulated seconds with the rack dark"),
		totalW:  r.Gauge("rack_power_w", "true rack power this tick"),
		cbW:     r.Gauge("cb_power_w", "breaker-conducted power this tick"),
		upsW:    r.Gauge("ups_power_w", "battery-delivered power this tick"),
		soc:     r.Gauge("ups_soc", "UPS state of charge"),
		thermMargin: r.Gauge("cb_thermal_margin",
			"remaining fraction of the breaker trip budget (1 − thermal fraction)"),
		demand: r.Gauge("interactive_demand_frac", "interactive demand fraction offered by the trace"),
		nowS:   r.Gauge("sim_now_seconds", "current simulation time"),
		tickSeconds: r.Histogram("engine_tick_seconds",
			"wall-clock time per engine tick (excluded from golden comparisons)",
			telemetry.DefTimeBuckets()),
	}
}

// observeTick records one tick's plant state (no-op when disabled).
func (em *engineMetrics) observeTick(now, pTotal, cbW, upsW float64, env *Env) {
	em.ticks.Inc()
	em.nowS.Set(now)
	em.totalW.Set(pTotal)
	em.cbW.Set(cbW)
	em.upsW.Set(upsW)
	em.soc.Set(env.UPS.SoC())
	em.thermMargin.Set(1 - env.Breaker.ThermalFraction())
	em.demand.Set(env.Trace.At(now))
}

// RunWith simulates the scenario under the policy with the given
// observability options. It is the convenience loop over a Runner; callers
// that need to interleave work between ticks (the cluster's lock-step
// control link) drive the Runner directly and get bit-identical results.
func RunWith(scn Scenario, p Policy, opts RunOptions) (*Result, error) {
	r, err := NewRunner(scn, p, opts)
	if err != nil {
		return nil, err
	}
	switch opts.Engine {
	case "", "tick":
		for !r.Done() {
			if stopped(opts.Stop) {
				return nil, ErrCanceled
			}
			if err := r.Step(); err != nil {
				return nil, err
			}
		}
	case "event":
		if err := r.RunEvent(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sim: unknown engine %q (want \"tick\" or \"event\")", opts.Engine)
	}
	return r.Finish(), nil
}

// BuildEnv assembles the rack, breaker, UPS, interactive trace and batch
// jobs of a scenario. Exported for policies' unit tests.
func BuildEnv(scn Scenario) (*Env, error) {
	r, err := rack.New(scn.Rack)
	if err != nil {
		return nil, err
	}
	b, err := breaker.New(scn.Breaker)
	if err != nil {
		return nil, err
	}
	u, err := ups.New(scn.UPS)
	if err != nil {
		return nil, err
	}
	tr := scn.Trace
	if tr == nil {
		var err error
		tr, err = workload.GenInteractive(scn.Interactive, scn.DurationS, scn.DtS)
		if err != nil {
			return nil, err
		}
	}
	specs := scn.BatchSpecs
	if len(specs) == 0 {
		specs = workload.SpecCPU2006()
	}
	for i, ref := range r.BatchCores() {
		spec := specs[i%len(specs)]
		j, err := workload.NewBatchJob(spec, 0, scn.BatchDeadlineS)
		if err != nil {
			return nil, err
		}
		// Deterministic per-core fill in [WorkFillMin, WorkFillMax]
		// via the golden-ratio low-discrepancy sequence.
		frac := math.Mod(float64(i)*0.6180339887498949, 1)
		fill := scn.WorkFillMin + (scn.WorkFillMax-scn.WorkFillMin)*frac
		j.ScaleWork(fill * scn.WorkReferenceS / spec.PeakSeconds)
		if err := r.BindJob(ref, j); err != nil {
			return nil, err
		}
	}
	return &Env{Rack: r, Breaker: b, UPS: u, Trace: tr, Events: NewEventLog()}, nil
}

func nextSnapshot(now, dt, measured, cbW, upsW float64, env *Env, outage bool) Snapshot {
	return Snapshot{
		Now:               now,
		Dt:                dt,
		MeasuredTotalW:    measured,
		CBPowerW:          cbW,
		UPSPowerW:         upsW,
		CBThermalFraction: env.Breaker.ThermalFraction(),
		CBNearTrip:        env.Breaker.NearTrip(),
		CBTripped:         env.Breaker.Tripped(),
		UPSSoC:            env.UPS.SoC(),
		UPSDepleted:       env.UPS.Depleted(),
		Outage:            outage,
	}
}

// recordTick accumulates one tick into the result's summary statistics and,
// when keep is set, appends the tick to the series. The accumulator updates
// run in the same per-tick operation order the old series-walking finalize
// loop used, so summaries are bit-identical at any series stride.
func recordTick(res *Result, reporter TargetReporter, now, pTotal, cbW, upsW float64, env *Env, outage, keep bool) {
	fi, fb := 0.0, 0.0
	if !outage {
		fi = env.Rack.MeanInteractiveFreqNorm()
		fb = env.Rack.MeanBatchFreqNorm()
	}

	s := &res.Series
	res.nTicks++
	res.sumFreqInter += fi
	res.sumFreqBatch += fb
	res.EnergyTotalWh += pTotal * s.DtS / 3600
	res.EnergyCBWh += cbW * s.DtS / 3600
	if ov := cbW - env.Breaker.RatedPower(); ov > 0 {
		res.EnergyCBOverWh += ov * s.DtS / 3600
	}
	if !keep {
		return
	}

	s.Time = append(s.Time, now)
	s.TotalW = append(s.TotalW, pTotal)
	s.Demand = append(s.Demand, env.Trace.At(now))
	s.CBW = append(s.CBW, cbW)
	s.UPSW = append(s.UPSW, upsW)
	s.SoC = append(s.SoC, env.UPS.SoC())

	pcb, pbatch := math.NaN(), math.NaN()
	if reporter != nil {
		pcb, pbatch = reporter.Targets(now)
	}
	s.PCbW = append(s.PCbW, pcb)
	s.PBatchW = append(s.PBatchW, pbatch)

	s.FreqInter = append(s.FreqInter, fi)
	s.FreqBatch = append(s.FreqBatch, fb)
}

func finalize(res *Result, env *Env, controlled, over int, trackErrSum float64) {
	n := float64(res.nTicks)
	if n == 0 {
		return
	}
	res.AvgFreqInter = res.sumFreqInter / n
	res.AvgFreqBatch = res.sumFreqBatch / n

	res.UPSDoD = env.UPS.DoD()
	res.UPSDischargedWh = env.UPS.DischargedWh()

	end := res.Scenario.DurationS
	latest := 0.0
	for _, ref := range env.Rack.BatchCores() {
		j := env.Rack.Job(ref)
		if j == nil {
			continue
		}
		res.JobsTotal++
		if j.Completed() {
			res.JobsCompletedOnce++
			latest = math.Max(latest, j.CompletionTime())
		} else {
			latest = math.Inf(1)
		}
		missed := j.MissedDeadline(end)
		if missed {
			res.DeadlineMisses++
		}
		res.BatchWorkDoneS += j.WorkDone()
		res.Jobs = append(res.Jobs, JobResult{
			Name:        j.Spec.Name,
			Core:        ref.String(),
			CompletionS: j.CompletionTime(),
			Progress:    j.Progress(),
			Missed:      missed,
		})
	}
	res.MaxCompletionTimeS = latest

	if controlled > 0 {
		res.CBOverBudgetFrac = float64(over) / float64(controlled)
		res.CBTrackingErrorW = trackErrSum / float64(controlled)
	}
	res.Events = env.Events.Events()
}
