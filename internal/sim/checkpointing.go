package sim

import (
	"fmt"
	"hash/fnv"
	"math"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/telemetry"
)

// Checkpointable is optionally implemented by policies whose complete
// control state can be exported into a checkpoint and restored after a
// crash (DESIGN.md §11). RestoreCheckpoint with a nil state is the
// fail-safe restart: the policy must come up in its worst-case-safe
// configuration and re-estimate from live telemetry. Restores must not
// actuate the rack — the plant kept running while the controller was down.
type Checkpointable interface {
	Policy
	ExportCheckpoint(now float64) checkpoint.ControllerState
	RestoreCheckpoint(env *Env, scn Scenario, st *checkpoint.ControllerState, now float64) error
}

// CheckpointOptions enables control-state snapshots during a run.
type CheckpointOptions struct {
	// Store receives one snapshot per capture and serves the latest one
	// back at controller restarts. Nil disables capture (injected
	// controller crashes then always restart fail-safe).
	Store checkpoint.Store
	// EveryS is the capture cadence in simulated seconds; 0 captures every
	// tick (what bit-identical crash/restore continuation requires).
	EveryS float64
	// MaxAgeS, when positive, makes a restart discard snapshots older than
	// this and take the fail-safe path instead.
	MaxAgeS float64
}

// ScenarioSum fingerprints the scenario configuration: FNV-64a over its
// canonical JSON. Snapshots embed it so a restore can reject state from a
// run whose plant it does not describe.
func ScenarioSum(scn Scenario) (uint64, error) {
	h := fnv.New64a()
	if err := scn.WriteJSON(h); err != nil {
		return 0, fmt.Errorf("sim: scenario fingerprint: %w", err)
	}
	return h.Sum64(), nil
}

// ckptMetrics holds the engine's checkpoint/restart instruments. They are
// registered only for runs that checkpoint or inject controller crashes, so
// ordinary runs' telemetry is unchanged.
type ckptMetrics struct {
	enabled  bool
	saves    *telemetry.Counter
	saveErrs *telemetry.Counter
	bytes    *telemetry.Gauge
	ageS     *telemetry.Gauge
	restarts *telemetry.Counter
	failSafe *telemetry.Counter
}

func newCkptMetrics(r *telemetry.Registry) ckptMetrics {
	if r == nil {
		return ckptMetrics{}
	}
	return ckptMetrics{
		enabled: true,
		saves:   r.Counter("checkpoint_saves_total", "control-state snapshots persisted"),
		saveErrs: r.Counter("checkpoint_save_errors_total",
			"snapshot captures that failed to persist"),
		bytes: r.Gauge("checkpoint_bytes",
			"encoded size of the latest snapshot (0 for in-memory stores)"),
		ageS: r.Gauge("checkpoint_age_seconds",
			"simulated seconds since the latest snapshot"),
		restarts: r.Counter("ctl_restarts_total",
			"controller restarts after injected crashes"),
		failSafe: r.Counter("ctl_failsafe_restarts_total",
			"controller restarts without a usable checkpoint (fail-safe)"),
	}
}

// ckRuntime is the engine-side checkpoint and controller-crash state of one
// run. It exists only when the run checkpoints or its fault plan contains a
// controller crash; fault-free uncheckpointed runs keep the legacy path.
type ckRuntime struct {
	store   checkpoint.Store
	everyS  float64
	maxAgeS float64
	p       Policy
	cp      Checkpointable // nil when the policy cannot checkpoint
	scn     Scenario
	sum     uint64
	cm      ckptMetrics

	lastSaveS float64
	haveSave  bool
	saves     int64
	lastBytes int

	ctlDead      bool
	ctlRestartAt float64
	restarts     int
	failsafes    int
}

func newCkRuntime(p Policy, scn Scenario, opts RunOptions) (*ckRuntime, error) {
	hasCrash := false
	for _, f := range scn.Faults.Faults {
		if f.Kind == faults.ControllerCrash {
			hasCrash = true
			break
		}
	}
	if opts.Checkpoint == nil && !hasCrash {
		return nil, nil
	}
	sum, err := ScenarioSum(scn)
	if err != nil {
		return nil, err
	}
	c := &ckRuntime{
		p:            p,
		scn:          scn,
		sum:          sum,
		cm:           newCkptMetrics(opts.Metrics),
		lastSaveS:    math.Inf(-1),
		ctlRestartAt: math.Inf(-1),
	}
	c.cp, _ = p.(Checkpointable)
	if opts.Checkpoint != nil {
		c.store = opts.Checkpoint.Store
		c.everyS = opts.Checkpoint.EveryS
		c.maxAgeS = opts.Checkpoint.MaxAgeS
	}
	return c, nil
}

// noteCrash records an injected controller-crash onset: the controller is
// dead from now until now+delayS (overlapping crashes extend the window).
func (c *ckRuntime) noteCrash(env *Env, now, delayS float64) {
	restartAt := now + delayS
	if !c.ctlDead {
		c.ctlDead = true
		c.ctlRestartAt = restartAt
		env.Events.Logf("ctl-crash", "controller process died; restart scheduled in %g s", delayS)
		return
	}
	if restartAt > c.ctlRestartAt {
		c.ctlRestartAt = restartAt
	}
}

// maybeRestart brings a dead controller back once its restart time arrives:
// from the latest usable checkpoint when one exists, through the policy's
// fail-safe restore otherwise. It is called on powered ticks just before
// the policy would tick.
func (c *ckRuntime) maybeRestart(env *Env, now float64) error {
	if !c.ctlDead || now < c.ctlRestartAt-1e-9 {
		return nil
	}
	c.ctlDead = false
	c.restarts++
	c.cm.restarts.Inc()

	if c.cp == nil {
		// The policy cannot restore state; a cold start is all there is.
		env.Events.Logf("ctl-restart", "controller restarted cold (policy %s does not checkpoint)", c.p.Name())
		if err := c.p.Start(env, c.scn); err != nil {
			return fmt.Errorf("sim: controller restart: %w", err)
		}
		return nil
	}

	var st *checkpoint.ControllerState
	reason := "no checkpoint store"
	if c.store != nil {
		last, err := c.store.Latest()
		switch {
		case err != nil:
			reason = fmt.Sprintf("checkpoint unusable: %v", err)
		case last == nil:
			reason = "no checkpoint on record"
		case last.PolicyName != c.p.Name():
			reason = fmt.Sprintf("checkpoint belongs to policy %q", last.PolicyName)
		case last.ScenarioSum != c.sum:
			reason = "checkpoint fingerprints a different scenario"
		case !last.HasController:
			reason = "checkpoint carries no controller state"
		case c.maxAgeS > 0 && now-last.SimTimeS > c.maxAgeS+1e-9:
			reason = fmt.Sprintf("checkpoint %.0f s stale (limit %.0f s)", now-last.SimTimeS, c.maxAgeS)
		default:
			st = &last.Controller
		}
	}
	if st != nil {
		err := c.cp.RestoreCheckpoint(env, c.scn, st, now)
		if err == nil {
			env.Events.Logf("ctl-restart", "controller restored from checkpoint t=%g s", st.CapturedAtS)
			return nil
		}
		reason = fmt.Sprintf("checkpoint rejected: %v", err)
	}
	c.failsafes++
	c.cm.failSafe.Inc()
	env.Events.Logf("ctl-restart", "controller restarted fail-safe (%s)", reason)
	if err := c.cp.RestoreCheckpoint(env, c.scn, nil, now); err != nil {
		return fmt.Errorf("sim: fail-safe controller restart: %w", err)
	}
	return nil
}

// capture serializes the run state at the boundary after the current tick
// (tNext, stepNext are the time and index of the next tick to execute).
// While the controller is dead nothing is saved: the checkpointer is part
// of the controller process, and overwriting the last pre-crash snapshot
// with controller-less state would defeat the restore.
func (c *ckRuntime) capture(env *Env, inj *faults.Injector, res *Result,
	tNext float64, stepNext int, snap Snapshot, outage bool,
	controlled, over int, trackErrSum float64) {
	if c.store == nil || c.ctlDead {
		return
	}
	if c.cm.enabled && c.haveSave {
		c.cm.ageS.Set(tNext - c.lastSaveS)
	}
	if c.haveSave && c.everyS > 0 && tNext < c.lastSaveS+c.everyS-1e-9 {
		return
	}
	sp := &checkpoint.Snapshot{
		Version:     checkpoint.Version,
		SimTimeS:    tNext,
		Step:        int64(stepNext),
		PolicyName:  c.p.Name(),
		ScenarioSum: c.sum,
	}
	if c.cp != nil {
		sp.HasController = true
		sp.Controller = c.cp.ExportCheckpoint(tNext)
	}
	sp.Plant = checkpoint.PlantState{
		Breaker: env.Breaker.ExportState(),
		UPS:     env.UPS.ExportState(),
		Rack:    env.Rack.ExportState(),
		Engine: checkpoint.EngineState{
			Outage:          outage,
			OutageS:         res.OutageS,
			CBTrips:         res.CBTrips,
			ControlledTicks: controlled,
			OverTicks:       over,
			TrackErrSum:     trackErrSum,
			EventSeq:        env.Events.Len(),
			Snap:            snapToState(snap),
		},
	}
	if inj != nil {
		sp.Plant.HasInjector = true
		sp.Plant.Injector = inj.ExportState()
	}
	n, err := c.store.Save(sp)
	if err != nil {
		c.cm.saveErrs.Inc()
		env.Events.Logf("checkpoint", "save failed: %v", err)
		return
	}
	c.saves++
	c.lastBytes = n
	c.lastSaveS = tNext
	c.haveSave = true
	if c.cm.enabled {
		c.cm.saves.Inc()
		c.cm.bytes.Set(float64(n))
		c.cm.ageS.Set(0)
	}
}

func snapToState(s Snapshot) checkpoint.SnapState {
	return checkpoint.SnapState{
		NowS:              s.Now,
		DtS:               s.Dt,
		MeasuredTotalW:    s.MeasuredTotalW,
		CBPowerW:          s.CBPowerW,
		UPSPowerW:         s.UPSPowerW,
		CBThermalFraction: s.CBThermalFraction,
		CBNearTrip:        s.CBNearTrip,
		CBTripped:         s.CBTripped,
		UPSSoC:            s.UPSSoC,
		UPSDepleted:       s.UPSDepleted,
		Outage:            s.Outage,
	}
}

func snapFromState(st checkpoint.SnapState) Snapshot {
	return Snapshot{
		Now:               st.NowS,
		Dt:                st.DtS,
		MeasuredTotalW:    st.MeasuredTotalW,
		CBPowerW:          st.CBPowerW,
		UPSPowerW:         st.UPSPowerW,
		CBThermalFraction: st.CBThermalFraction,
		CBNearTrip:        st.CBNearTrip,
		CBTripped:         st.CBTripped,
		UPSSoC:            st.UPSSoC,
		UPSDepleted:       st.UPSDepleted,
		Outage:            st.Outage,
	}
}

// ExportSnapshot captures the run's complete state at the current tick
// boundary — the position of the next tick to execute — as a validated
// checkpoint.Snapshot, independent of any per-rack CheckpointOptions
// cadence. Lock-step drivers use it to assemble *coherent* multi-rack
// snapshots: calling it on every rack of a row between two lock-step ticks
// yields one snapshot per rack, all at the same step, which is what a
// service-level restart needs to resume the whole row (per-rack
// CheckpointOptions captures skip ticks while an injected crash holds the
// controller down, so their latest steps can disagree across racks).
//
// Policies that do not implement Checkpointable still get a plant-only
// snapshot (HasController false); a resume then restarts the policy fresh
// against the restored plant.
func (r *Runner) ExportSnapshot() (*checkpoint.Snapshot, error) {
	if r.scnSum == 0 {
		sum, err := ScenarioSum(r.scn)
		if err != nil {
			return nil, err
		}
		r.scnSum = sum
	}
	now := r.Now()
	sp := &checkpoint.Snapshot{
		Version:     checkpoint.Version,
		SimTimeS:    now,
		Step:        int64(r.step),
		PolicyName:  r.p.Name(),
		ScenarioSum: r.scnSum,
	}
	if cp, ok := r.p.(Checkpointable); ok {
		sp.HasController = true
		sp.Controller = cp.ExportCheckpoint(now)
	}
	sp.Plant = checkpoint.PlantState{
		Breaker: r.env.Breaker.ExportState(),
		UPS:     r.env.UPS.ExportState(),
		Rack:    r.env.Rack.ExportState(),
		Engine: checkpoint.EngineState{
			Outage:          r.outage,
			OutageS:         r.res.OutageS,
			CBTrips:         r.res.CBTrips,
			ControlledTicks: r.controlledTicks,
			OverTicks:       r.overTicks,
			TrackErrSum:     r.trackErrSum,
			EventSeq:        r.env.Events.Len(),
			Snap:            snapToState(r.snap),
		},
	}
	if r.inj != nil {
		sp.Plant.HasInjector = true
		sp.Plant.Injector = r.inj.ExportState()
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// resumeState is what applyResume hands back to the tick loop.
type resumeState struct {
	startStep   int
	outage      bool
	controlled  int
	over        int
	trackErrSum float64
	snap        Snapshot
}

// applyResume restores the full process state — plant, engine accumulators,
// injector, controller — from a snapshot, for runs resumed with
// RunOptions.Resume. The policy side goes through RestoreCheckpoint when
// the policy supports it (fail-safe when the snapshot carries no controller
// state); other policies start fresh against the restored plant.
func applyResume(env *Env, scn Scenario, p Policy, inj *faults.Injector, sp *checkpoint.Snapshot, res *Result) (resumeState, error) {
	var rs resumeState
	if err := sp.Validate(); err != nil {
		return rs, err
	}
	sum, err := ScenarioSum(scn)
	if err != nil {
		return rs, err
	}
	steps := int(math.Round(scn.DurationS / scn.DtS))
	switch {
	case sp.PolicyName != p.Name():
		return rs, fmt.Errorf("sim: resume: snapshot belongs to policy %q, running %q", sp.PolicyName, p.Name())
	case sp.ScenarioSum != sum:
		return rs, fmt.Errorf("sim: resume: snapshot fingerprints a different scenario (%016x, want %016x)", sp.ScenarioSum, sum)
	case sp.Step > int64(steps):
		return rs, fmt.Errorf("sim: resume: snapshot step %d beyond the scenario's %d steps", sp.Step, steps)
	case math.Abs(sp.SimTimeS-float64(sp.Step)*scn.DtS) > 1e-6:
		return rs, fmt.Errorf("sim: resume: snapshot time %g s disagrees with step %d at dt %g s", sp.SimTimeS, sp.Step, scn.DtS)
	}
	if err := env.Breaker.RestoreState(sp.Plant.Breaker); err != nil {
		return rs, err
	}
	if err := env.UPS.RestoreState(sp.Plant.UPS); err != nil {
		return rs, err
	}
	if err := env.Rack.RestoreState(sp.Plant.Rack); err != nil {
		return rs, err
	}
	if sp.Plant.HasInjector != (inj != nil) {
		return rs, fmt.Errorf("sim: resume: snapshot injector state (%v) disagrees with the scenario's fault plan (%v)",
			sp.Plant.HasInjector, inj != nil)
	}
	if inj != nil {
		if err := inj.RestoreState(sp.Plant.Injector); err != nil {
			return rs, err
		}
	}
	e := sp.Plant.Engine
	res.OutageS = e.OutageS
	res.CBTrips = e.CBTrips
	env.Events.SetBase(e.EventSeq)
	rs.startStep = int(sp.Step)
	rs.outage = e.Outage
	rs.controlled = e.ControlledTicks
	rs.over = e.OverTicks
	rs.trackErrSum = e.TrackErrSum
	rs.snap = snapFromState(e.Snap)

	if cp, ok := p.(Checkpointable); ok {
		var st *checkpoint.ControllerState
		if sp.HasController {
			st = &sp.Controller
		}
		if err := cp.RestoreCheckpoint(env, scn, st, sp.SimTimeS); err != nil {
			return rs, fmt.Errorf("sim: resume: %w", err)
		}
	} else if err := p.Start(env, scn); err != nil {
		return rs, fmt.Errorf("sim: resume: policy %s start: %w", p.Name(), err)
	}
	return rs, nil
}
