package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Job names one simulation of a parameter sweep.
type Job struct {
	// Key identifies the job in the result map (e.g. "SprintCon@540s").
	Key string
	// Scenario and Policy define the run. Policies must not be shared
	// between jobs — they carry per-run state.
	Scenario Scenario
	Policy   Policy
	// Opts carries per-job run options (engine selection, series stride,
	// checkpointing, sinks). The zero value is the default tick engine.
	Opts RunOptions
}

// RunMany executes the jobs concurrently (bounded by GOMAXPROCS) and
// returns results keyed by Job.Key. Each simulation is fully independent —
// its own rack, breaker, UPS and trace — so the sweep parallelizes
// embarrassingly; this is what makes the full experiment suite fast enough
// to run in CI. The first error aborts the sweep.
func RunMany(jobs []Job) (map[string]*Result, error) {
	if len(jobs) == 0 {
		return map[string]*Result{}, nil
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("sim: job with empty key")
		}
		if seen[j.Key] {
			return nil, fmt.Errorf("sim: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
	}

	type outcome struct {
		key string
		res *Result
		err error
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	results := make(chan outcome, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := runJob(j)
			results <- outcome{key: j.Key, res: res, err: err}
		}(j)
	}
	wg.Wait()
	close(results)

	out := make(map[string]*Result, len(jobs))
	for o := range results {
		if o.err != nil {
			return nil, fmt.Errorf("sim: job %s: %w", o.key, o.err)
		}
		out[o.key] = o.res
	}
	return out, nil
}

// RunManyOrdered executes the jobs concurrently (bounded by GOMAXPROCS) and
// returns results in job order, so callers that depend on positional
// identity — cluster racks, sweep rows — get deterministic output
// regardless of scheduling. Each simulation is fully independent and every
// run is seeded, so the results are bit-identical to running the same jobs
// serially. The first error (by job order) aborts the sweep.
func RunManyOrdered(jobs []Job) ([]*Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	out := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = runJob(j)
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			name := jobs[i].Key
			if name == "" {
				name = fmt.Sprintf("#%d", i)
			}
			return nil, fmt.Errorf("sim: job %s: %w", name, err)
		}
	}
	return out, nil
}

// runJob executes one job with panic isolation: a panic on the worker
// goroutine becomes a *PanicError instead of crashing the pool.
func runJob(j Job) (res *Result, err error) {
	defer RecoverPanic(&err)
	return RunWith(j.Scenario, j.Policy, j.Opts)
}
