package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the scenario as indented JSON — the config-as-data
// format the cmd tools read with -scenario. A replayed Trace is not
// serialized (reference it by CSV file instead).
func (s Scenario) WriteJSON(w io.Writer) error {
	s.Trace = nil
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ScenarioFromJSON parses and validates a scenario. Unknown fields are
// rejected so typos in config files fail loudly instead of silently using
// defaults.
func ScenarioFromJSON(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("sim: scenario JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
