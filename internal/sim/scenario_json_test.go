package sim

import (
	"bytes"
	"strings"
	"testing"

	"sprintcon/internal/workload"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	orig := DefaultScenario()
	orig.BatchDeadlineS = 555
	orig.Rack.NumServers = 8
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ScenarioFromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.BatchDeadlineS != 555 || got.Rack.NumServers != 8 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Rack.ServerParams.PStates.Len() != orig.Rack.ServerParams.PStates.Len() {
		t.Fatal("P-state table lost in round trip")
	}
	if got.Rack.ServerParams.PStates.Max() != 2.0 {
		t.Fatalf("P-state max = %v", got.Rack.ServerParams.PStates.Max())
	}
	// The loaded scenario actually runs.
	got.DurationS = 30
	got.BurstDurationS = 30
	got.BatchDeadlineS = 25
	if _, err := Run(got, &stubPolicy{name: "x"}); err != nil {
		t.Fatalf("loaded scenario does not run: %v", err)
	}
}

func TestScenarioFromJSONRejectsBadInput(t *testing.T) {
	if _, err := ScenarioFromJSON(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON should error")
	}
	if _, err := ScenarioFromJSON(strings.NewReader(`{"NoSuchField": 1}`)); err == nil {
		t.Fatal("unknown fields should be rejected")
	}
	// Structurally valid JSON but an invalid scenario.
	var buf bytes.Buffer
	s := DefaultScenario()
	s.DurationS = -1
	enc := s
	if err := enc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioFromJSON(&buf); err == nil {
		t.Fatal("invalid scenario should fail validation")
	}
	// Broken P-state list.
	bad := strings.Replace(jsonOf(t, DefaultScenario()), `[
        0.4,`, `[
        9.4,`, 1)
	if _, err := ScenarioFromJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("non-ascending P-states should be rejected")
	}
}

func jsonOf(t *testing.T, s Scenario) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestScenarioJSONOmitsTrace(t *testing.T) {
	s := DefaultScenario()
	tr, err := workload.GenInteractive(s.Interactive, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Trace = tr
	js := jsonOf(t, s)
	if strings.Contains(js, `"Demand"`) {
		t.Fatal("trace data must not be serialized")
	}
}
