package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sprintcon/internal/faults"
)

// Fault plumbing through the engine: scheduling, validation, serialization
// and determinism of faulted runs.

func faultedScenario() Scenario {
	scn := shortScenario()
	scn.Faults = faults.Plan{Faults: []faults.Fault{
		{Kind: faults.MonitorDropout, OnsetS: 10, DurationS: 15},
		{Kind: faults.ServerCrash, OnsetS: 20, DurationS: 20, Server: 2},
	}}
	return scn
}

func TestScenarioValidateRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"NaN duration", func(s *Scenario) { s.DurationS = nan }},
		{"Inf duration", func(s *Scenario) { s.DurationS = inf }},
		{"NaN dt", func(s *Scenario) { s.DtS = nan }},
		{"NaN burst", func(s *Scenario) { s.BurstDurationS = nan }},
		{"Inf deadline", func(s *Scenario) { s.BatchDeadlineS = inf }},
		{"NaN fill min", func(s *Scenario) { s.WorkFillMin = nan }},
		{"NaN fill max", func(s *Scenario) { s.WorkFillMax = nan }},
		{"NaN reference", func(s *Scenario) { s.WorkReferenceS = nan }},
		{"NaN ambient base", func(s *Scenario) { s.AmbientBaseC = nan }},
		{"Inf ambient swing", func(s *Scenario) { s.AmbientSwingC = inf }},
		{"unknown fault kind", func(s *Scenario) {
			s.Faults.Faults = []faults.Fault{{Kind: "no-such-fault", OnsetS: 1, DurationS: 1}}
		}},
		{"NaN fault onset", func(s *Scenario) {
			s.Faults.Faults = []faults.Fault{{Kind: faults.MonitorFreeze, OnsetS: nan, DurationS: 1}}
		}},
		{"negative fault onset", func(s *Scenario) {
			s.Faults.Faults = []faults.Fault{{Kind: faults.MonitorFreeze, OnsetS: -1, DurationS: 1}}
		}},
		{"zero fault duration", func(s *Scenario) {
			s.Faults.Faults = []faults.Fault{{Kind: faults.MonitorFreeze, OnsetS: 1, DurationS: 0}}
		}},
		{"Inf fault severity", func(s *Scenario) {
			s.Faults.Faults = []faults.Fault{{Kind: faults.MonitorBias, OnsetS: 1, DurationS: 1, Severity: inf}}
		}},
		{"fault server out of range", func(s *Scenario) {
			s.Faults.Faults = []faults.Fault{{Kind: faults.ServerCrash, OnsetS: 1, DurationS: 1, Server: 99}}
		}},
	}
	for _, tc := range cases {
		scn := DefaultScenario()
		tc.mutate(&scn)
		err := scn.Validate()
		if err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
			continue
		}
		if _, rerr := Run(scn, &stubPolicy{name: "stub"}); rerr == nil {
			t.Errorf("%s: Run should reject the scenario", tc.name)
		}
	}
}

func TestScenarioJSONRoundTripWithFaults(t *testing.T) {
	orig := faultedScenario()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ScenarioFromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Faults.Faults) != 2 {
		t.Fatalf("faults lost in round trip: %+v", got.Faults)
	}
	f := got.Faults.Faults[1]
	if f.Kind != faults.ServerCrash || f.OnsetS != 20 || f.DurationS != 20 || f.Server != 2 {
		t.Fatalf("fault fields corrupted: %+v", f)
	}
	// An invalid plan must fail JSON loading, not only direct Validate.
	bad := strings.Replace(jsonOf(t, orig), `"server-crash"`, `"bogus-kind"`, 1)
	if _, err := ScenarioFromJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("bad fault kind should fail ScenarioFromJSON")
	}
}

func TestFaultEventsLogged(t *testing.T) {
	res, err := Run(faultedScenario(), &stubPolicy{name: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	var onsets, clears int
	for _, e := range res.Events {
		switch e.Kind {
		case "fault-onset":
			onsets++
		case "fault-clear":
			clears++
		}
	}
	if onsets != 2 || clears != 2 {
		t.Fatalf("fault events: %d onsets, %d clears (want 2/2): %v",
			onsets, clears, res.Events)
	}
}

// TestEventLogByteIdentical pins run determinism at the strictest level the
// issue demands: two runs of the same seeded, faulted scenario must render
// byte-identical event logs.
func TestEventLogByteIdentical(t *testing.T) {
	render := func() string {
		res, err := Run(faultedScenario(), &stubPolicy{name: "stub"})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, e := range res.Events {
			sb.WriteString(e.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("event logs diverged:\n--- run A ---\n%s--- run B ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("faulted run produced no events")
	}
}

// TestEventOrderStableAtSameInstant checks the Seq tie-breaker directly:
// events stamped at the same instant keep append order after sorting.
func TestEventOrderStableAtSameInstant(t *testing.T) {
	l := NewEventLog()
	l.SetNow(5)
	l.Logf("a", "first")
	l.Logf("b", "second")
	l.SetNow(1)
	l.Logf("c", "earlier")
	ev := l.Events()
	if ev[0].Kind != "c" || ev[1].Kind != "a" || ev[2].Kind != "b" {
		t.Fatalf("order wrong: %v", ev)
	}
}
