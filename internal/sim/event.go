package sim

import (
	"math"

	"sprintcon/internal/engine"
)

// This file is the discrete-event execution core (DESIGN.md §15). RunEvent
// produces results bit-identical to the fixed-step tick loop while skipping
// the plant and controller work of provably quiescent spans:
//
//  1. After every normal tick it hashes the complete mutable controller +
//     plant state (minus a small replayed-exactly remainder) into an
//     engine.Digest. Once the digest has been bit-identical for more than
//     one full controller adaptation cadence AND the tick inputs (trace
//     demand, measured power) have been bit-identical at least as long,
//     the run is at an exact floating-point fixed point: every skipped
//     Tick would rewrite the same state and return the same outputs.
//  2. It then plans a span: the distance to the nearest barrier event —
//     run end, a trace edge, a batch-job phase boundary, a policy budget
//     edge (overload/recovery wave, fail-safe expiry), a fault onset or
//     clear, a checkpoint capture becoming due — merged through the
//     deterministic engine.Queue. UPS and breaker thresholds need no
//     barrier kinds of their own: a quiescent span requires zero UPS
//     discharge and zero breaker thermal accumulation, so neither state
//     can cross a threshold inside one.
//  3. fastForward closes the span analytically: per-tick accumulators are
//     advanced by per-tick loops over precomputed constants (never n·x,
//     preserving bit-exact float addition order), series rows append at
//     the configured stride, batch jobs replay through the rack's
//     job-major kernel, and the policy replays its digest-excluded state
//     (headroom samples, control-period clock, P_batch adaptation).
//
// Anything the proof does not cover falls back to normal ticking: noisy
// monitors, utilization jitter, ambient swing, live telemetry, and
// non-quiescent controllers (a drifting PI integral, probing locked-core
// defenses) simply never open spans and run the exact legacy path.

// QuiescentPolicy is the optional policy contract for event-driven
// execution. A policy implementing it certifies fixed points and replays
// its excluded state; policies without it run tick-by-tick under RunEvent.
type QuiescentPolicy interface {
	Policy
	// QuiescenceDigest appends all mutable controller state (except what
	// AdvanceQuiescent replays) to the digest, returning false when the
	// policy is structurally ineligible for span fast-forwarding.
	QuiescenceDigest(env *Env, d *engine.Digest) bool
	// QuiescenceCadenceTicks is the number of consecutive bit-identical
	// digests required to certify a fixed point; it must strictly exceed
	// the controller's slowest internal period in ticks.
	QuiescenceCadenceTicks(dt float64) int
	// QuiescentHorizonTicks conservatively bounds the ticks until the
	// policy's scheduled budget can next change, capped at maxTicks.
	QuiescentHorizonTicks(now, dt float64, maxTicks int) int
	// AdvanceQuiescent replays the digest-excluded state across n skipped
	// ticks at times (step0+k)·dt, bit-identically to n Tick calls at a
	// certified fixed point.
	AdvanceQuiescent(env *Env, step0 int, dt float64, n int)
}

// minSpanTicks is the smallest span worth closing analytically; shorter
// plans just run normal ticks (span setup costs a few barrier queries).
const minSpanTicks = 8

// eventCore is the event engine's working state on a Runner.
type eventCore struct {
	qp      QuiescentPolicy
	q       engine.Queue
	dig     engine.Digest
	cadence int

	// Fixed-point certification: the streak of consecutive ticks whose
	// post-tick digest was bit-identical.
	stable  int
	lastDig uint64
	haveDig bool

	// Input-change guard: the last step whose tick inputs (trace demand,
	// measured total power) differed from the previous tick's. The
	// controller's state lags its inputs by up to one control period
	// (e.g. the batch-feedback path), so a span may only open once the
	// inputs have been constant for a full cadence too.
	lastInputChange int
	prevDemand      float64
	prevMeasured    float64
	havePrev        bool
}

// eventEligible reports whether the run's static configuration permits
// quiescent spans at all. Stochastic per-tick state (monitor noise,
// utilization jitter), a time-varying ambient, or any live per-tick
// observability sink forces pure tick-by-tick execution.
func (r *Runner) eventEligible() bool {
	return r.scn.AmbientSwingC == 0 &&
		r.scn.Rack.MonitorNoiseStd == 0 &&
		r.scn.Rack.UtilJitterStd == 0 &&
		r.opts.Metrics == nil &&
		r.opts.Decisions == nil &&
		r.opts.Obs == nil &&
		r.opts.Status == nil
}

// RunEvent drives the run to completion on the discrete-event core.
func (r *Runner) RunEvent() error {
	qp, ok := r.p.(QuiescentPolicy)
	if !ok || !r.eventEligible() {
		// No fixed-point contract or statically ineligible: the event
		// engine degenerates to the exact tick loop (0 spans reported).
		for !r.Done() {
			if stopped(r.opts.Stop) {
				return ErrCanceled
			}
			if err := r.Step(); err != nil {
				return err
			}
		}
		return nil
	}
	r.ev = &eventCore{
		qp:              qp,
		dig:             engine.NewDigest(),
		cadence:         qp.QuiescenceCadenceTicks(r.dt),
		lastInputChange: r.step,
	}
	for !r.Done() {
		if stopped(r.opts.Stop) {
			return ErrCanceled
		}
		if r.spanReady() {
			if n := r.planSpan(); n >= minSpanTicks {
				r.fastForward(n)
				r.probeQuiescence()
				continue
			}
		}
		if err := r.Step(); err != nil {
			return err
		}
		r.probeQuiescence()
	}
	return nil
}

// spanReady reports whether the next tick may open a quiescent span: the
// digest streak and the input-constancy window both exceed the cadence,
// and the plant is in the quiescent regime right now.
func (r *Runner) spanReady() bool {
	ev := r.ev
	return ev.stable > ev.cadence &&
		r.step-ev.lastInputChange > ev.cadence &&
		!r.outage
}

// probeQuiescence runs after each executed tick (or fast-forwarded span):
// it tracks input changes and extends or resets the fixed-point streak.
func (r *Runner) probeQuiescence() {
	ev := r.ev
	if r.step == 0 {
		return
	}
	now := float64(r.step-1) * r.dt
	demand := r.env.Trace.At(now)
	m := r.snap.MeasuredTotalW
	if !ev.havePrev || demand != ev.prevDemand || m != ev.prevMeasured {
		ev.lastInputChange = r.step - 1
		ev.havePrev = true
	}
	ev.prevDemand, ev.prevMeasured = demand, m

	if !r.plantQuiescent() {
		ev.stable, ev.haveDig = 0, false
		return
	}
	ev.dig.Reset()
	if !ev.qp.QuiescenceDigest(r.env, &ev.dig) {
		ev.stable, ev.haveDig = 0, false
		return
	}
	r.plantDigest(&ev.dig)
	sum := ev.dig.Sum()
	if ev.haveDig && sum == ev.lastDig {
		ev.stable++
		return
	}
	ev.lastDig, ev.haveDig, ev.stable = sum, true, 1
}

// plantQuiescent reports whether the plant side of the state machine is in
// the regime where every skipped per-tick plant call is provably the
// identity: no outage, a closed and thermally drained breaker conducting at
// or below its rating, zero UPS discharge, no active fault, no dead or
// capture-pending checkpoint runtime, and a rack whose true power equals
// the last delivered measurement (so a job-phase or demand edge at a span
// boundary cannot leak stale inputs into an immediately following span).
func (r *Runner) plantQuiescent() bool {
	env := r.env
	if r.outage || r.snap.Outage || env.Breaker.Tripped() {
		return false
	}
	if env.Breaker.ThermalFraction() != 0 || r.lastCBW > env.Breaker.RatedPower() {
		return false
	}
	if r.snap.UPSPowerW != 0 {
		return false
	}
	if r.inj != nil && r.inj.AnyFaultActive() {
		return false
	}
	if r.ckr != nil {
		if r.ckr.ctlDead {
			return false
		}
		// A store with no save yet (or no cadence) would fire a capture
		// on an unpredictable tick; only the periodic steady state has a
		// computable capture-due barrier.
		if r.ckr.store != nil && (!r.ckr.haveSave || r.ckr.everyS <= 0) {
			return false
		}
	}
	return env.Rack.TruePower() == r.snap.MeasuredTotalW
}

// plantDigest appends the engine-side mutable state to the digest: the
// pending snapshot (minus Now, which advances every tick by construction),
// the last conducted power, and the rack's frequency summary (covering
// every DVFS actuation the skipped ticks would re-apply).
func (r *Runner) plantDigest(d *engine.Digest) {
	s := &r.snap
	d.F64(s.MeasuredTotalW)
	d.F64(s.CBPowerW)
	d.F64(s.UPSPowerW)
	d.F64(s.CBThermalFraction)
	d.Bool(s.CBNearTrip)
	d.Bool(s.CBTripped)
	d.F64(s.UPSSoC)
	d.Bool(s.UPSDepleted)
	d.Bool(s.Outage)
	d.F64(r.lastCBW)
	d.F64(r.env.Rack.MeanInteractiveFreqNorm())
	d.F64(r.env.Rack.MeanBatchFreqNorm())
}

// planSpan merges every barrier bounding a span that starts at the current
// step and returns the span length in ticks (possibly 0). The earliest
// pending event is the binding barrier; the span must end strictly before
// it so the barrier tick itself executes as a normal tick.
func (r *Runner) planSpan() int {
	ev := r.ev
	step0 := r.step
	now0 := float64(step0) * r.dt
	remaining := r.steps - step0
	q := &ev.q
	q.Reset()

	q.Push(int64(r.steps), engine.KindRunEnd)
	q.Push(int64(step0+r.env.Rack.BatchStableTicks(r.dt, remaining)), engine.KindJobPhase)
	q.Push(int64(step0+ev.qp.QuiescentHorizonTicks(now0, r.dt, remaining)), engine.KindPolicyEdge)
	if r.inj != nil {
		q.Push(int64(step0+r.inj.StableTicks(now0, r.dt, remaining)), engine.KindFaultTransition)
	}
	if r.ckr != nil && r.ckr.store != nil {
		// Next capture fires at the first tick whose time tNext crosses
		// lastSaveS+everyS−ε; stop two ticks short so the float compare
		// margin can never land a capture inside the span.
		cn := int((r.ckr.lastSaveS+r.ckr.everyS-1e-9-now0)/r.dt) - 2
		if cn < 0 {
			cn = 0
		}
		q.Push(int64(step0+cn), engine.KindCaptureDue)
	}

	// Trace edge: first tick whose demand differs from the demand the
	// plant is actually running (applied by the last executed tick). The
	// scan starts at k = 0: a span opening exactly on a demand edge would
	// freeze the old interactive power under the new recorded demand — the
	// edge tick must run for real to apply it. The scan is capped at the
	// earliest cheap barrier, so its cost is bounded by the span it
	// enables (and is a slice lookup per tick, ~4 orders of magnitude
	// cheaper than the tick it elides).
	scanCap := remaining
	if e, ok := q.Peek(); ok && int(e.Step)-step0 < scanCap {
		scanCap = int(e.Step) - step0
	}
	d0 := r.env.Trace.At(float64(step0-1) * r.dt)
	edge := scanCap
	for k := 0; k < scanCap; k++ {
		if r.env.Trace.At(float64(step0+k)*r.dt) != d0 {
			edge = k
			break
		}
	}
	q.Push(int64(step0+edge), engine.KindTraceEdge)

	e, _ := q.Pop()
	r.res.Engine.Events++
	n := int(e.Step) - step0
	if n < 0 {
		n = 0
	}
	if n > remaining {
		n = remaining
	}
	return n
}

// fastForward closes a span of n ticks starting at the current step
// analytically, bit-identically to n Runner.Step calls at the certified
// fixed point. See the file comment for the proof obligations; every
// skipped call is either state-invariant in the quiescent regime (breaker
// step at zero thermal load, zero-delivery UPS discharge, idempotent
// frequency and utilization writes, below-cadence checkpoint captures) or
// replayed exactly (batch-job progress, the policy's excluded state, the
// injector's delay ring).
func (r *Runner) fastForward(n int) {
	env, res, ev := r.env, r.res, r.ev
	dt := r.dt
	step0 := r.step
	now0 := float64(step0) * dt
	stride := r.stride

	// Span constants: the plant is frozen, so one evaluation each.
	pTotal := env.Rack.TruePower()
	cbW := pTotal // breaker conducts everything: zero UPS share, no trip
	upsW := 0.0
	fi := env.Rack.MeanInteractiveFreqNorm()
	fb := env.Rack.MeanBatchFreqNorm()
	soc := env.UPS.SoC()

	// Policy replay first (Tick precedes AdvanceBatch within a real tick;
	// the two are independent here because completed jobs' weights are
	// constants, but the order documents the correspondence).
	ev.qp.AdvanceQuiescent(env, step0, dt, n)
	env.Rack.AdvanceBatchTicks(dt, now0, n)
	if r.inj != nil {
		r.inj.AdvanceConstant(pTotal, n)
	}

	// Accumulators advance by per-tick loops over precomputed per-tick
	// increments — the increments are bit-identical to the per-tick
	// expressions (same operands), and looped addition preserves the tick
	// loop's exact float summation order.
	eTot := pTotal * res.Series.DtS / 3600
	eCB := cbW * res.Series.DtS / 3600
	ov := cbW - env.Breaker.RatedPower()
	eOver := 0.0
	if ov > 0 {
		eOver = ov * res.Series.DtS / 3600
	}
	s := &res.Series
	for k := 0; k < n; k++ {
		res.nTicks++
		res.sumFreqInter += fi
		res.sumFreqBatch += fb
		res.EnergyTotalWh += eTot
		res.EnergyCBWh += eCB
		if ov > 0 {
			res.EnergyCBOverWh += eOver
		}
		if (step0+k)%stride != 0 {
			continue
		}
		nowK := float64(step0+k) * dt
		s.Time = append(s.Time, nowK)
		s.TotalW = append(s.TotalW, pTotal)
		s.Demand = append(s.Demand, env.Trace.At(nowK))
		s.CBW = append(s.CBW, cbW)
		s.UPSW = append(s.UPSW, upsW)
		s.SoC = append(s.SoC, soc)
		pcb, pbatch := math.NaN(), math.NaN()
		if r.reporter != nil {
			pcb, pbatch = r.reporter.Targets(nowK)
		}
		s.PCbW = append(s.PCbW, pcb)
		s.PBatchW = append(s.PBatchW, pbatch)
		s.FreqInter = append(s.FreqInter, fi)
		s.FreqBatch = append(s.FreqBatch, fb)
	}

	// Budget-tracking quality accumulates per tick with span-constant
	// terms (the policy's targets are digest-certified constants).
	if r.reporter != nil {
		pcb, _ := r.reporter.Targets(now0)
		if !math.IsInf(pcb, 1) && !math.IsNaN(pcb) {
			trackErr := math.Abs(cbW - pcb)
			over := cbW > pcb*1.01
			for k := 0; k < n; k++ {
				r.controlledTicks++
				r.trackErrSum += trackErr
				if over {
					r.overTicks++
				}
			}
		}
	}

	// Span-end state: the snapshot the barrier tick will consume. Its Now
	// must be built as lastTickNow+dt (the tick loop's expression), not
	// float64(step0+n)·dt — the two can differ in the last bit.
	lastNow := float64(step0+n-1) * dt
	r.lastCBW = cbW
	r.snap = nextSnapshot(lastNow+dt, dt, pTotal, cbW, upsW, env, false)
	if r.inj != nil {
		r.snap.UPSSoC, r.snap.UPSDepleted = r.inj.FilterSoC(r.snap.UPSSoC, r.snap.UPSDepleted)
	}
	r.step += n

	res.Engine.Spans++
	res.Engine.TicksSkipped += n
}
