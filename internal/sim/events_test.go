package sim

import (
	"strings"
	"testing"
)

func TestEventLogBasics(t *testing.T) {
	l := NewEventLog()
	l.SetNow(5)
	l.Logf("a", "hello %d", 1)
	l.SetNow(2)
	l.Logf("b", "world")
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	// Time-ordered regardless of append order.
	if evs[0].T != 2 || evs[1].T != 5 {
		t.Fatalf("order wrong: %v", evs)
	}
	if evs[1].Msg != "hello 1" || evs[1].Kind != "a" {
		t.Fatalf("event = %+v", evs[1])
	}
	if got := l.OfKind("b"); len(got) != 1 || got[0].Kind != "b" {
		t.Fatalf("OfKind = %v", got)
	}
	if !strings.Contains(evs[0].String(), "world") {
		t.Fatalf("String = %q", evs[0].String())
	}
	// Events() returns a copy.
	evs[0].Kind = "mutated"
	if l.Events()[0].Kind == "mutated" {
		t.Fatal("Events must return a copy")
	}
}

func TestEngineRecordsTripAndOutageEvents(t *testing.T) {
	scn := DefaultScenario()
	p := &stubPolicy{name: "maxpower", onTick: func(env *Env, s Snapshot) float64 {
		for _, srv := range env.Rack.Servers() {
			for c := 0; c < srv.CPU().NumCores(); c++ {
				srv.CPU().SetFreq(c, 2.0)
			}
		}
		return 0
	}}
	res, err := Run(scn, p)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range res.Events {
		kinds[e.Kind]++
	}
	if kinds["cb-trip"] == 0 {
		t.Fatalf("no cb-trip event recorded: %v", kinds)
	}
	if kinds["outage"] == 0 {
		t.Fatalf("no outage event recorded: %v", kinds)
	}
	if kinds["cb-reclose"] == 0 {
		t.Fatalf("no cb-reclose event recorded: %v", kinds)
	}
	// Events carry plausible timestamps within the run.
	for _, e := range res.Events {
		if e.T < 0 || e.T > scn.DurationS {
			t.Fatalf("event time %v outside the run", e.T)
		}
	}
}
