package sim

import (
	"testing"
)

func TestRunManyMatchesSequential(t *testing.T) {
	scn := shortScenario()
	seq, err := Run(scn, &stubPolicy{name: "a"})
	if err != nil {
		t.Fatal(err)
	}

	jobs := []Job{
		{Key: "a", Scenario: scn, Policy: &stubPolicy{name: "a"}},
		{Key: "b", Scenario: scn, Policy: &stubPolicy{name: "b", upsReq: 300}},
		{Key: "c", Scenario: scn, Policy: &stubPolicy{name: "c"}},
	}
	got, err := RunMany(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("results = %d", len(got))
	}
	// Determinism: the concurrent run of job "a" matches the sequential run.
	if got["a"].EnergyTotalWh != seq.EnergyTotalWh || got["a"].UPSDoD != seq.UPSDoD {
		t.Fatal("concurrent result differs from sequential")
	}
	// The UPS-using job actually differs.
	if got["b"].UPSDischargedWh == 0 {
		t.Fatal("job b should have discharged the UPS")
	}
}

func TestRunManyValidation(t *testing.T) {
	scn := shortScenario()
	if _, err := RunMany([]Job{{Key: "", Scenario: scn, Policy: &stubPolicy{name: "x"}}}); err == nil {
		t.Fatal("empty key should error")
	}
	if _, err := RunMany([]Job{
		{Key: "dup", Scenario: scn, Policy: &stubPolicy{name: "x"}},
		{Key: "dup", Scenario: scn, Policy: &stubPolicy{name: "y"}},
	}); err == nil {
		t.Fatal("duplicate keys should error")
	}
	empty, err := RunMany(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("nil jobs: %v, %v", empty, err)
	}
	bad := scn
	bad.DurationS = 0
	if _, err := RunMany([]Job{{Key: "bad", Scenario: bad, Policy: &stubPolicy{name: "x"}}}); err == nil {
		t.Fatal("invalid scenario should propagate")
	}
}
