package sim

import (
	"errors"
	"math"
	"testing"

	"sprintcon/internal/cpu"
)

// stubPolicy exercises the engine without any control logic.
type stubPolicy struct {
	name     string
	startErr error
	ticks    int
	upsReq   float64
	onTick   func(env *Env, s Snapshot) float64
}

func (p *stubPolicy) Name() string { return p.name }
func (p *stubPolicy) Start(env *Env, scn Scenario) error {
	return p.startErr
}
func (p *stubPolicy) Tick(env *Env, s Snapshot) float64 {
	p.ticks++
	if p.onTick != nil {
		return p.onTick(env, s)
	}
	return p.upsReq
}

func shortScenario() Scenario {
	scn := DefaultScenario()
	scn.DurationS = 60
	scn.BurstDurationS = 60
	scn.BatchDeadlineS = 50
	return scn
}

func TestScenarioValidate(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"zero duration", func(s *Scenario) { s.DurationS = 0 }},
		{"dt > duration", func(s *Scenario) { s.DtS = 1e6 }},
		{"zero burst", func(s *Scenario) { s.BurstDurationS = 0 }},
		{"zero deadline", func(s *Scenario) { s.BatchDeadlineS = 0 }},
		{"bad fills", func(s *Scenario) { s.WorkFillMin = 0 }},
		{"fill order", func(s *Scenario) { s.WorkFillMin = 0.9; s.WorkFillMax = 0.5 }},
		{"zero reference", func(s *Scenario) { s.WorkReferenceS = 0 }},
		{"bad rack", func(s *Scenario) { s.Rack.NumServers = 0 }},
		{"bad breaker", func(s *Scenario) { s.Breaker.RatedPower = 0 }},
		{"bad ups", func(s *Scenario) { s.UPS.CapacityWh = 0 }},
		{"bad trace", func(s *Scenario) { s.Interactive.Base = 2 }},
	}
	for _, tc := range cases {
		scn := DefaultScenario()
		tc.mutate(&scn)
		if err := scn.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
		if _, err := Run(scn, &stubPolicy{name: "stub"}); err == nil {
			t.Errorf("%s: Run should reject invalid scenario", tc.name)
		}
	}
}

func TestBuildEnvBindsAllBatchCores(t *testing.T) {
	env, err := BuildEnv(DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(env.Rack.Jobs()); got != 64 {
		t.Fatalf("jobs bound = %d, want 64", got)
	}
	// Jobs carry different fills (work sizes) deterministically.
	w0 := env.Rack.Jobs()[0].RemainingSeconds(2.0, 2.0)
	w1 := env.Rack.Jobs()[8].RemainingSeconds(2.0, 2.0) // same spec, next round
	if w0 == w1 {
		t.Fatal("fills should differ across cores of the same benchmark")
	}
	env2, err := BuildEnv(DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if env2.Rack.Jobs()[0].RemainingSeconds(2.0, 2.0) != w0 {
		t.Fatal("BuildEnv must be deterministic")
	}
}

func TestRunPropagatesStartError(t *testing.T) {
	p := &stubPolicy{name: "bad", startErr: errors.New("boom")}
	if _, err := Run(shortScenario(), p); err == nil {
		t.Fatal("Start error should propagate")
	}
}

func TestRunTicksAndSeriesLengths(t *testing.T) {
	p := &stubPolicy{name: "stub"}
	res, err := Run(shortScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	if p.ticks != 60 {
		t.Fatalf("policy ticked %d times, want 60", p.ticks)
	}
	s := res.Series
	n := len(s.Time)
	if n != 60 {
		t.Fatalf("series length %d, want 60", n)
	}
	for name, l := range map[string]int{
		"TotalW": len(s.TotalW), "CBW": len(s.CBW), "UPSW": len(s.UPSW),
		"PCbW": len(s.PCbW), "PBatchW": len(s.PBatchW),
		"FreqInter": len(s.FreqInter), "FreqBatch": len(s.FreqBatch), "SoC": len(s.SoC),
	} {
		if l != n {
			t.Fatalf("series %s length %d, want %d", name, l, n)
		}
	}
	if res.Policy != "stub" {
		t.Fatalf("policy name %q", res.Policy)
	}
	// Without a TargetReporter the target series are NaN.
	if !math.IsNaN(s.PCbW[0]) || !math.IsNaN(s.PBatchW[0]) {
		t.Fatal("non-reporting policy should record NaN targets")
	}
}

func TestEnergyConservationAcrossSources(t *testing.T) {
	// Whatever happens, CB energy + UPS energy == total rack energy
	// (while no outage).
	p := &stubPolicy{name: "stub", upsReq: 500}
	res, err := Run(shortScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Series.Time {
		total := res.Series.TotalW[i]
		split := res.Series.CBW[i] + res.Series.UPSW[i]
		if math.Abs(total-split) > 1e-6 {
			t.Fatalf("tick %d: total %v != CB %v + UPS %v", i, total, res.Series.CBW[i], res.Series.UPSW[i])
		}
	}
	if res.EnergyTotalWh <= 0 || res.EnergyCBWh <= 0 {
		t.Fatal("energy accounting missing")
	}
}

func TestUPSRequestHonored(t *testing.T) {
	p := &stubPolicy{name: "stub", upsReq: 400}
	res, err := Run(shortScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	// After the first tick the UPS should deliver ≈400 W (duty-quantized).
	mid := res.Series.UPSW[30]
	if mid < 300 || mid > 500 {
		t.Fatalf("UPS delivery %v, want ≈400", mid)
	}
	if res.UPSDischargedWh <= 0 {
		t.Fatal("no discharge recorded")
	}
}

func TestNegativeAndNaNUPSRequestsIgnored(t *testing.T) {
	p := &stubPolicy{name: "stub", onTick: func(env *Env, s Snapshot) float64 {
		if int(s.Now)%2 == 0 {
			return -100
		}
		return math.NaN()
	}}
	res, err := Run(shortScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Series.UPSW {
		if u != 0 {
			t.Fatalf("tick %d: UPS delivered %v for invalid requests", i, u)
		}
	}
}

// overloadPolicy forces everything to peak so the breaker trips, then the
// engine must route power through the UPS and eventually black out.
func TestTripUPSCarryAndOutage(t *testing.T) {
	scn := DefaultScenario()
	scn.DurationS = 900
	scn.BurstDurationS = 900
	p := &stubPolicy{name: "maxpower", onTick: func(env *Env, s Snapshot) float64 {
		for _, srv := range env.Rack.Servers() {
			for c := 0; c < srv.CPU().NumCores(); c++ {
				srv.CPU().SetFreq(c, 2.0)
			}
		}
		return 0
	}}
	res, err := Run(scn, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CBTrips == 0 {
		t.Fatal("full rack power at 1.4× rating must trip the breaker")
	}
	if res.UPSDoD < 0.95 {
		t.Fatalf("UPS DoD = %v, want near-full depletion carrying the rack", res.UPSDoD)
	}
	if res.OutageS <= 0 {
		t.Fatal("depleted UPS with open breaker must cause an outage")
	}
	// During outage ticks, frequencies are recorded as zero.
	sawZero := false
	for i := range res.Series.Time {
		if res.Series.FreqInter[i] == 0 && res.Series.TotalW[i] == 0 {
			sawZero = true
			break
		}
	}
	if !sawZero {
		t.Fatal("outage ticks should record zero frequency and power")
	}
}

func TestBreakerReclosesAfterOutage(t *testing.T) {
	// Same as above but long enough to see the reclose: after the
	// breaker cools (≤300 s), power returns.
	scn := DefaultScenario()
	scn.DurationS = 900
	scn.BurstDurationS = 900
	p := &stubPolicy{name: "maxpower", onTick: func(env *Env, s Snapshot) float64 {
		for _, srv := range env.Rack.Servers() {
			for c := 0; c < srv.CPU().NumCores(); c++ {
				srv.CPU().SetFreq(c, 2.0)
			}
		}
		return 0
	}}
	res, err := Run(scn, p)
	if err != nil {
		t.Fatal(err)
	}
	// Find an outage tick followed later by a powered tick.
	firstOutage := -1
	recovered := false
	for i := range res.Series.Time {
		dark := res.Series.TotalW[i] == 0
		if dark && firstOutage < 0 {
			firstOutage = i
		}
		if firstOutage >= 0 && !dark && i > firstOutage {
			recovered = true
			break
		}
	}
	if firstOutage < 0 {
		t.Fatal("expected an outage")
	}
	if !recovered {
		t.Fatal("rack should re-power after the breaker recloses")
	}
	// Each individual outage window is bounded by the breaker's recovery
	// time (the total may span several trip/reclose cycles).
	var longest, cur float64
	for i := range res.Series.Time {
		if res.Series.TotalW[i] == 0 {
			cur += scn.DtS
			longest = math.Max(longest, cur)
		} else {
			cur = 0
		}
	}
	if longest > scn.Breaker.RecoveryTime+2 {
		t.Fatalf("longest outage window %v s exceeds breaker recovery time", longest)
	}
}

func TestBatchProgressOnlyWhilePowered(t *testing.T) {
	scn := shortScenario()
	p := &stubPolicy{name: "stub"}
	res, err := Run(scn, p)
	if err != nil {
		t.Fatal(err)
	}
	// Batch cores start at the floor frequency; jobs advance.
	for _, j := range res.Jobs {
		if j.Progress <= 0 && math.IsNaN(j.CompletionS) {
			t.Fatalf("job %s/%s made no progress", j.Name, j.Core)
		}
	}
	if res.JobsTotal != 64 {
		t.Fatalf("JobsTotal = %d", res.JobsTotal)
	}
}

func TestNormalizedTimeUse(t *testing.T) {
	r := &Result{MaxCompletionTimeS: 600}
	r.Scenario.BatchDeadlineS = 720
	if got := r.NormalizedTimeUse(); math.Abs(got-600.0/720.0) > 1e-12 {
		t.Fatalf("NormalizedTimeUse = %v", got)
	}
}

func TestInteractiveDemandStatsRecorded(t *testing.T) {
	res, err := Run(shortScenario(), &stubPolicy{name: "stub"})
	if err != nil {
		t.Fatal(err)
	}
	if res.InteractiveDemand.Max <= 0 || res.InteractiveDemand.Mean <= 0 {
		t.Fatal("interactive demand stats missing")
	}
}

// reporterPolicy reports fixed targets to test CB tracking metrics.
type reporterPolicy struct {
	stubPolicy
	pcb float64
}

func (p *reporterPolicy) Targets(now float64) (float64, float64) { return p.pcb, 1000 }

func TestCBTrackingMetrics(t *testing.T) {
	p := &reporterPolicy{stubPolicy: stubPolicy{name: "rep"}, pcb: 1.0}
	// Absurdly low budget: every tick is over budget.
	res, err := Run(shortScenario(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CBOverBudgetFrac < 0.99 {
		t.Fatalf("over-budget fraction %v, want ≈1", res.CBOverBudgetFrac)
	}
	if res.CBTrackingErrorW <= 0 {
		t.Fatal("tracking error should be positive")
	}
	if math.IsNaN(res.Series.PCbW[0]) {
		t.Fatal("reporter targets should be recorded")
	}
	// Interactive cores run at peak by default (rack construction).
	if res.Series.FreqInter[0] != 1 {
		t.Fatalf("interactive norm freq %v, want 1", res.Series.FreqInter[0])
	}
	_ = cpu.Interactive // document the class under test
}
