package sim

import (
	"fmt"
	"math"
	"time"

	"sprintcon/internal/faults"
	"sprintcon/internal/rack"
	"sprintcon/internal/telemetry"
)

// Runner is the steppable form of the simulation engine: NewRunner builds
// the environment and binds the policy exactly as RunWith does, Step
// advances one tick, and Finish assembles the Result. RunWith is the
// convenience loop over a Runner, so single-rack runs and lock-step cluster
// runs (cluster.RunLinked, which interleaves a coordinator and a message
// transport between rack ticks) share one engine and stay bit-identical.
type Runner struct {
	scn  Scenario
	p    Policy
	opts RunOptions

	env    *Env
	res    *Result
	inj    *faults.Injector
	ckr    *ckRuntime
	scnSum uint64 // lazy scenario fingerprint for ExportSnapshot

	reporter TargetReporter
	em       engineMetrics

	steps  int
	step   int
	dt     float64
	stride int // record every stride-th tick into the series (≥1)

	outage          bool
	controlledTicks int
	overTicks       int
	trackErrSum     float64
	lastCBW         float64
	snap            Snapshot

	// ev is the discrete-event core's state; nil until RunEvent builds it.
	ev *eventCore

	finished bool
}

// NewRunner validates the scenario, builds the environment and starts (or
// resumes) the policy, leaving the run positioned before its first tick.
func NewRunner(scn Scenario, p Policy, opts RunOptions) (*Runner, error) {
	switch opts.Engine {
	case "", "tick", "event":
	default:
		return nil, fmt.Errorf("sim: unknown engine %q (want \"tick\" or \"event\")", opts.Engine)
	}
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	env, err := BuildEnv(scn)
	if err != nil {
		return nil, err
	}
	env.Metrics = opts.Metrics
	env.Decisions = opts.Decisions
	env.Obs = opts.Obs
	if opts.DropEvents {
		env.Events.Discard()
	}

	res := &Result{Policy: p.Name(), Scenario: scn, MaxCompletionTimeS: math.NaN()}
	res.InteractiveDemand = env.Trace.Summary()
	res.Series.DtS = scn.DtS
	res.Engine.Name = opts.Engine
	if res.Engine.Name == "" {
		res.Engine.Name = "tick"
	}

	// Fault injection: nil when the plan is empty, so fault-free runs
	// follow the exact legacy code path (bit-identical results). Built
	// before the policy binds so a resumed run restores it first.
	var inj *faults.Injector
	if !scn.Faults.Empty() {
		inj = faults.NewInjector(scn.Faults, scn.DtS)
	}

	// Checkpoint/crash runtime: nil unless the run checkpoints or its
	// fault plan kills the controller, keeping ordinary runs untouched.
	ckr, err := newCkRuntime(p, scn, opts)
	if err != nil {
		return nil, err
	}

	stride := opts.SeriesStride
	if stride < 1 {
		stride = 1
	}
	r := &Runner{
		scn:    scn,
		p:      p,
		opts:   opts,
		env:    env,
		res:    res,
		inj:    inj,
		ckr:    ckr,
		steps:  int(math.Round(scn.DurationS / scn.DtS)),
		dt:     scn.DtS,
		stride: stride,
	}
	if opts.Resume != nil {
		rs, err := applyResume(env, scn, p, inj, opts.Resume, res)
		if err != nil {
			return nil, err
		}
		r.step = rs.startStep
		r.outage = rs.outage
		r.controlledTicks, r.overTicks, r.trackErrSum = rs.controlled, rs.over, rs.trackErrSum
		r.snap = rs.snap
	} else {
		if err := p.Start(env, scn); err != nil {
			return nil, fmt.Errorf("sim: policy %s start: %w", p.Name(), err)
		}
		initialMeasured := env.Rack.MeasuredPower()
		if inj != nil {
			// Primes the injector's last-reading state before any fault is
			// active, so an onset-0 freeze holds a real pre-fault value.
			initialMeasured = inj.FilterMeasurement(initialMeasured)
		}
		r.snap = Snapshot{
			Dt:             r.dt,
			MeasuredTotalW: initialMeasured,
			CBPowerW:       env.Rack.TruePower(),
			UPSSoC:         env.UPS.SoC(),
		}
	}
	res.Series.grow((r.steps-r.step+stride-1)/stride + 1)

	r.reporter, _ = p.(TargetReporter)
	// Engine telemetry: instruments resolve to nil-safe no-ops when
	// opts.Metrics is nil, and the wall clock is only read when enabled.
	r.em = newEngineMetrics(opts.Metrics)
	return r, nil
}

// Env exposes the run's environment (for lock-step coordinators that read
// plant state between ticks — heartbeat telemetry, aggregate power).
func (r *Runner) Env() *Env { return r.env }

// Policy returns the bound policy.
func (r *Runner) Policy() Policy { return r.p }

// Now returns the simulation time of the next tick to execute.
func (r *Runner) Now() float64 { return float64(r.step) * r.dt }

// StepIndex returns the index of the next tick to execute.
func (r *Runner) StepIndex() int { return r.step }

// StepsTotal returns the run's total tick count.
func (r *Runner) StepsTotal() int { return r.steps }

// Done reports whether every tick has executed.
func (r *Runner) Done() bool { return r.step >= r.steps }

// ControllerDead reports whether a controller-crash fault currently has the
// rack's controller process down (always false without checkpointing).
func (r *Runner) ControllerDead() bool { return r.ckr != nil && r.ckr.ctlDead }

// Dark reports whether the rack is currently in a power outage (breaker open
// with the UPS exhausted): nothing executes, so a dark rack can neither send
// heartbeats nor act on grants.
func (r *Runner) Dark() bool { return r.outage }

// LastCBPowerW returns the breaker-conducted power of the most recent tick
// (0 before the first). Lock-step cluster runs sum this across racks into
// the feeder draw without touching the plant's noise streams.
func (r *Runner) LastCBPowerW() float64 { return r.lastCBW }

// status refreshes the live /status snapshot when the run is instrumented.
func (r *Runner) status(now float64, pTotal, cbW, upsW float64, done bool) {
	if r.opts.Status == nil {
		return
	}
	ss := telemetry.StatusSnapshot{
		Policy:    r.p.Name(),
		NowS:      now,
		DurationS: r.scn.DurationS,
		Progress:  math.Min(1, now/r.scn.DurationS),
		Ticks:     int64(r.res.nTicks),
		TotalW:    pTotal,
		CBW:       cbW,
		UPSW:      upsW,
		SoC:       r.env.UPS.SoC(),
		CBTrips:   r.res.CBTrips,
		OutageS:   r.res.OutageS,
		Done:      done,
	}
	if r.ckr != nil {
		ss.CheckpointSaves = r.ckr.saves
		ss.CheckpointBytes = r.ckr.lastBytes
		if r.ckr.haveSave {
			ss.CheckpointAgeS = math.Max(0, now-r.ckr.lastSaveS)
		}
		ss.CtlRestarts = r.ckr.restarts
		ss.CtlFailSafeRestarts = r.ckr.failsafes
	}
	r.opts.Status.Set(ss)
}

// Step advances the simulation by one tick. Calling Step on a finished run
// is a no-op returning nil.
func (r *Runner) Step() error {
	if r.Done() {
		return nil
	}
	env, res, inj, ckr, dt := r.env, r.res, r.inj, r.ckr, r.dt
	scn := r.scn
	now := float64(r.step) * dt
	var tickStart time.Time
	if r.em.enabled {
		tickStart = time.Now()
	}
	env.Events.SetNow(now)
	env.Rack.SetAmbient(scn.AmbientBaseC + scn.AmbientSwingC*math.Sin(2*math.Pi*now/1800))

	if inj != nil {
		onsets, clears := inj.Step(now)
		for _, f := range onsets {
			env.Events.Logf("fault-onset", "%s", f)
			if f.Kind == faults.ControllerCrash {
				// ckr is always non-nil when the plan contains a
				// controller crash (newCkRuntime guarantees it).
				ckr.noteCrash(env, now, f.Severity)
			}
		}
		for _, f := range clears {
			env.Events.Logf("fault-clear", "%s cleared", f.Kind)
		}
		if len(onsets)+len(clears) > 0 {
			for i, st := range inj.ServerStates(scn.Rack.NumServers) {
				env.Rack.SetFaultState(i, rack.FaultState{
					Offline: st.Offline,
					Stuck:   st.Stuck,
					LagFrac: st.LagFrac,
				})
			}
		}
	}

	if r.outage {
		// The rack is dark: breaker cools; nothing executes.
		env.Breaker.Cool(dt)
		if env.Breaker.CanReclose() {
			if err := env.Breaker.Reclose(); err == nil {
				r.outage = false
				env.Events.Logf("cb-reclose", "breaker recovered; rack re-powered")
			}
		}
	}
	if r.outage {
		res.OutageS += dt
		r.lastCBW = 0
		recordTick(res, r.reporter, now, 0, 0, 0, env, true, r.step%r.stride == 0)
		r.snap = nextSnapshot(now+dt, dt, 0, 0, 0, env, true)
		if inj != nil {
			r.snap.UPSSoC, r.snap.UPSDepleted = inj.FilterSoC(r.snap.UPSSoC, r.snap.UPSDepleted)
		}
		if ckr != nil {
			ckr.capture(env, inj, res, now+dt, r.step+1, r.snap, true, r.controlledTicks, r.overTicks, r.trackErrSum)
		}
		if r.em.enabled {
			r.em.outageS.Add(dt)
			r.em.observeTick(now, 0, 0, 0, env)
			r.em.tickSeconds.Observe(time.Since(tickStart).Seconds())
		}
		r.status(now, 0, 0, 0, false)
		r.step++
		return nil
	}

	// Workload arrives; policy senses and actuates.
	env.Rack.ApplyInteractiveDemand(env.Trace.At(now))
	r.snap.Now = now
	var upsReq float64
	ctlDead := false
	if ckr != nil {
		if err := ckr.maybeRestart(env, now); err != nil {
			return err
		}
		ctlDead = ckr.ctlDead
	}
	if !ctlDead {
		upsReq = r.p.Tick(env, r.snap)
	}
	// A dead controller issues nothing: the rack holds its last
	// commanded frequencies and the UPS receives no request.
	if upsReq < 0 || math.IsNaN(upsReq) {
		upsReq = 0
	}

	pTotal := env.Rack.TruePower()
	measured := env.Rack.Measure(pTotal)
	if inj != nil {
		measured = inj.FilterMeasurement(measured)
	}
	upsPathOpen := inj != nil && inj.UPSPathFailed()

	var cbW, upsW float64
	if !env.Breaker.Tripped() {
		if !upsPathOpen {
			upsW = env.UPS.Discharge(upsReq, pTotal, dt)
		}
		cbW = env.Breaker.Step(pTotal-upsW, dt)
		if env.Breaker.Tripped() {
			res.CBTrips++
			r.em.trips.Inc()
			env.Events.Logf("cb-trip", "breaker tripped at %.0f W conducted", cbW)
		}
	} else {
		// Open breaker: cool toward reclose; the UPS must carry
		// the whole rack or the rack goes dark.
		env.Breaker.Cool(dt)
		if env.Breaker.CanReclose() {
			_ = env.Breaker.Reclose()
		}
		if !upsPathOpen {
			upsW = env.UPS.Discharge(pTotal, pTotal, dt)
		}
		if upsW < pTotal-1e-6 {
			r.outage = true
			env.Events.Logf("outage", "UPS exhausted with the breaker open; rack dark")
		}
	}

	if !r.outage {
		env.Rack.AdvanceBatch(dt, now)
	} else {
		res.OutageS += dt
		r.em.outageS.Add(dt)
	}

	r.lastCBW = cbW
	recordTick(res, r.reporter, now, pTotal, cbW, upsW, env, r.outage, r.step%r.stride == 0)
	if r.em.enabled {
		r.em.observeTick(now, pTotal, cbW, upsW, env)
		r.em.tickSeconds.Observe(time.Since(tickStart).Seconds())
	}
	r.status(now, pTotal, cbW, upsW, false)

	// CB budget tracking quality (dead-controller ticks are not
	// "controlled": nothing was tracking the budget).
	if r.reporter != nil && !ctlDead {
		pcb, _ := r.reporter.Targets(now)
		if !math.IsInf(pcb, 1) && !math.IsNaN(pcb) && !r.outage {
			r.controlledTicks++
			r.trackErrSum += math.Abs(cbW - pcb)
			if cbW > pcb*1.01 {
				r.overTicks++
			}
		}
	}

	r.snap = nextSnapshot(now+dt, dt, measured, cbW, upsW, env, r.outage)
	if inj != nil {
		r.snap.UPSSoC, r.snap.UPSDepleted = inj.FilterSoC(r.snap.UPSSoC, r.snap.UPSDepleted)
	}
	if ckr != nil {
		ckr.capture(env, inj, res, now+dt, r.step+1, r.snap, r.outage, r.controlledTicks, r.overTicks, r.trackErrSum)
	}
	r.step++
	return nil
}

// Finish finalizes the result after the last tick (summary statistics,
// telemetry snapshot, final status). Idempotent: further calls return the
// same Result.
func (r *Runner) Finish() *Result {
	if r.finished {
		return r.res
	}
	r.finished = true
	finalize(r.res, r.env, r.controlledTicks, r.overTicks, r.trackErrSum)
	r.status(r.scn.DurationS, r.snap.MeasuredTotalW, r.snap.CBPowerW, r.snap.UPSPowerW, true)
	r.res.Telemetry = r.opts.Metrics.Snapshot()
	return r.res
}
