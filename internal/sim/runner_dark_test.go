package sim

import "testing"

// Dark must report the rack's power-outage state tick by tick: the linked
// cluster loop uses it to suppress heartbeats from a dark rack so the
// coordinator's timeout path reclaims its overload slot.
func TestRunnerDarkReportsOutage(t *testing.T) {
	scn := DefaultScenario()
	// Pin every core at peak frequency: the breaker trips, the UPS drains,
	// and the rack eventually goes dark (same recipe as the outage-event
	// test).
	p := &stubPolicy{name: "maxpower", onTick: func(env *Env, s Snapshot) float64 {
		for _, srv := range env.Rack.Servers() {
			for c := 0; c < srv.CPU().NumCores(); c++ {
				srv.CPU().SetFreq(c, 2.0)
			}
		}
		return 0
	}}
	r, err := NewRunner(scn, p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	darkTicks := 0
	for !r.Done() {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
		if r.Dark() {
			darkTicks++
		}
	}
	if darkTicks == 0 {
		t.Fatal("max-power run never reported Dark() despite guaranteed outage")
	}
	res := r.Finish()
	if res.OutageS == 0 {
		t.Fatal("run recorded no outage seconds; the Dark() recipe is broken")
	}
}
