package sim

import (
	"fmt"
	"runtime/debug"
)

// PanicError wraps a panic recovered on a run worker goroutine, carrying
// the panic value and the goroutine stack at the point of the panic.
// Callers detect it with errors.As.
type PanicError struct {
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: panic: %v\n%s", e.Val, e.Stack)
}

// RecoverPanic is a deferred helper that converts a panic on the current
// goroutine into a *PanicError assigned to *errp. Every goroutine the run
// fan-out spawns (sim worker jobs, cluster rack steps, hier rows) defers
// it, so a panicking policy, model or callback fails its run with a
// diagnosable error instead of killing the whole process — the isolation
// sprintd's supervisor relies on to keep serving across a bad run.
func RecoverPanic(errp *error) {
	if p := recover(); p != nil {
		*errp = &PanicError{Val: p, Stack: debug.Stack()}
	}
}
