package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v", got)
	}
	if got := Std(xs); got != 2 {
		t.Fatalf("Std = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || got != c.want {
			t.Fatalf("Percentile(%v) = %v, %v; want %v", c.p, got, err, c.want)
		}
	}
	if got, _ := Percentile(xs, 0.9); math.Abs(got-4.6) > 1e-12 {
		t.Fatalf("interpolated Percentile(0.9) = %v, want 4.6", got)
	}
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := Percentile(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile should error")
	}
	if got, _ := Percentile([]float64{7}, 0.3); got != 7 {
		t.Fatal("single element percentile")
	}
	// Must not mutate the input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 0.5)
	if ys[0] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(16.0 / 3.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	// Value 10 for 1 s, then 20 for 3 s: mean = (10+60)/4 = 17.5.
	got, err := TimeWeightedMean([]float64{0, 1}, []float64{10, 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 17.5 {
		t.Fatalf("TimeWeightedMean = %v, want 17.5", got)
	}
	if _, err := TimeWeightedMean([]float64{0, 1}, []float64{1}, 2); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := TimeWeightedMean([]float64{0, 2}, []float64{1, 2}, 1); err == nil {
		t.Fatal("end before last sample should error")
	}
	if _, err := TimeWeightedMean([]float64{2, 1, 3}, []float64{1, 2, 3}, 4); err == nil {
		t.Fatal("non-ascending timestamps should error")
	}
	// Zero-span series returns the last value.
	got, err = TimeWeightedMean([]float64{5}, []float64{42}, 5)
	if err != nil || got != 42 {
		t.Fatalf("zero-span = %v, %v", got, err)
	}
}

func TestFracAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FracAbove(xs, 2); got != 0.5 {
		t.Fatalf("FracAbove = %v", got)
	}
	if FracAbove(nil, 0) != 0 {
		t.Fatal("empty FracAbove should be 0")
	}
}

func TestSettlingTime(t *testing.T) {
	xs := []float64{0, 5, 9, 10.5, 10.1, 9.9, 10.05}
	if got := SettlingTime(xs, 10, 0.5); got != 3 {
		t.Fatalf("SettlingTime = %v, want 3", got)
	}
	if got := SettlingTime([]float64{0, 1, 2}, 10, 0.5); got != -1 {
		t.Fatalf("never settles: %v", got)
	}
	// A late excursion resets the settling point.
	xs2 := []float64{10, 10, 15, 10}
	if got := SettlingTime(xs2, 10, 0.5); got != 3 {
		t.Fatalf("late excursion: %v, want 3", got)
	}
}

func TestOvershoot(t *testing.T) {
	// Step from 0 to 10, peak 12 → overshoot 20 %.
	xs := []float64{0, 6, 12, 10}
	if got := Overshoot(xs, 0, 10); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Overshoot = %v, want 0.2", got)
	}
	// Downward step from 10 to 0, trough −1 → 10 %.
	xs = []float64{10, 4, -1, 0}
	if got := Overshoot(xs, 10, 0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("downward Overshoot = %v, want 0.1", got)
	}
	if Overshoot(xs, 5, 5) != 0 {
		t.Fatal("zero step should be 0")
	}
	if Overshoot([]float64{1, 2, 3}, 0, 10) != 0 {
		t.Fatal("never crossing target should be 0")
	}
}

// Property: the p-quantile lies within [Min, Max] and is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw [9]float64, p1, p2 float64) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Mod(v, 1e9)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		a := math.Mod(math.Abs(p1), 1)
		b := math.Mod(math.Abs(p2), 1)
		if a > b {
			a, b = b, a
		}
		qa, err1 := Percentile(xs, a)
		qb, err2 := Percentile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return qa <= qb+1e-9 && qa >= Min(xs)-1e-9 && qb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
