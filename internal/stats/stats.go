// Package stats provides the summary statistics the experiment harness
// reports: means, percentiles, time-weighted averages and RMS errors over
// simulation time series.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics. It returns an error for empty
// input or p outside [0, 1].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: Percentile of empty slice")
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: quantile must be in [0, 1]")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	if len(tmp) == 1 {
		return tmp[0], nil
	}
	pos := p * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo], nil
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac, nil
}

// Min returns the smallest element (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the largest element (−Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// RMSE returns the root-mean-square difference between a and b; it returns
// an error on length mismatch or empty input.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0, errors.New("stats: RMSE of empty slices")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// TimeWeightedMean integrates a piecewise-constant series sampled at times
// ts (ascending) with values xs, over [ts[0], end]. Each value holds from
// its timestamp to the next. It returns an error on malformed input.
func TimeWeightedMean(ts, xs []float64, end float64) (float64, error) {
	if len(ts) != len(xs) || len(ts) == 0 {
		return 0, errors.New("stats: TimeWeightedMean needs equal non-empty series")
	}
	if end < ts[len(ts)-1] {
		return 0, errors.New("stats: end precedes last sample")
	}
	var area, span float64
	for i := range ts {
		t1 := end
		if i+1 < len(ts) {
			t1 = ts[i+1]
			if t1 < ts[i] {
				return 0, errors.New("stats: timestamps not ascending")
			}
		}
		dt := t1 - ts[i]
		area += xs[i] * dt
		span += dt
	}
	if span == 0 {
		return xs[len(xs)-1], nil
	}
	return area / span, nil
}

// FracAbove returns the fraction of samples strictly above the threshold.
func FracAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var n int
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// SettlingTime returns the first time index i such that |xs[j] − target| ≤
// tol for all j ≥ i, or −1 if the series never settles. Used by the
// controller ablations to compare MPC and PI step responses.
func SettlingTime(xs []float64, target, tol float64) int {
	settled := -1
	for i, x := range xs {
		if math.Abs(x-target) <= tol {
			if settled < 0 {
				settled = i
			}
		} else {
			settled = -1
		}
	}
	return settled
}

// Overshoot returns the maximum excursion of xs beyond target relative to
// the step size |target − from| (0 if the series never crosses target, or
// for a zero-size step).
func Overshoot(xs []float64, from, target float64) float64 {
	step := target - from
	if step == 0 {
		return 0
	}
	var worst float64
	for _, x := range xs {
		var over float64
		if step > 0 {
			over = x - target
		} else {
			over = target - x
		}
		if over > worst {
			worst = over
		}
	}
	return worst / math.Abs(step)
}
