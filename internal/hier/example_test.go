package hier_test

import (
	"fmt"

	"sprintcon/internal/hier"
)

// ExampleAllocate resolves the acceptance topology's budget waterfall:
// a building feeding four rows of sixteen paper racks. Each row needs
// ⌈16/3⌉ = 6 overload slots, so every level lands exactly at its minimum
// packing and the waterfall grants the whole building budget.
func ExampleAllocate() {
	cfg := hier.DefaultConfig()
	a, err := hier.Allocate(cfg)
	if err != nil {
		fmt.Println("allocate:", err)
		return
	}
	fmt.Printf("building %.0f W, %d racks, %d slots/cycle\n", a.BuildingBudgetW, a.TotalRacks, a.NumSlots)
	for i, r := range a.Rows {
		fmt.Printf("row %d: %d racks, budget %.0f W (K=%d concurrent overloads)\n", i, r.Racks, r.BudgetW, r.SlotCapacity)
	}
	fmt.Printf("granted %.0f W of %.0f W\n", a.TotalGrantedW(), a.BuildingBudgetW)
	// Output:
	// building 224000 W, 64 racks, 3 slots/cycle
	// row 0: 16 racks, budget 56000 W (K=6 concurrent overloads)
	// row 1: 16 racks, budget 56000 W (K=6 concurrent overloads)
	// row 2: 16 racks, budget 56000 W (K=6 concurrent overloads)
	// row 3: 16 racks, budget 56000 W (K=6 concurrent overloads)
	// granted 224000 W of 224000 W
}
