package hier

import (
	"fmt"
	"sync"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/cluster"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
)

// Result aggregates a hierarchical linked run: the resolved allocation,
// every row's linked-cluster result, and the building-level safety record.
type Result struct {
	// Alloc is the budget waterfall the run executed.
	Alloc Allocation
	// Rows holds each row's linked result (feeder record, link accounting,
	// per-rack results), index = row id.
	Rows []*cluster.LinkedResult

	// ResumeStep is the first step of the building-level series: 0 for a
	// fresh run; for a run resumed through Config.Resume it is the latest
	// row's resume step, since the building draw is only defined where
	// every row has samples. Per-row statistics cover each row's own
	// resumed window.
	ResumeStep int

	// BuildingAggregateW is the building feeder draw per tick from
	// ResumeStep on — the sum of the row aggregates over the common
	// window.
	BuildingAggregateW []float64
	// BuildingPeakW and BuildingMeanW summarize the building draw.
	BuildingPeakW, BuildingMeanW float64
	// BuildingExceedFrac is the fraction of ticks the building draw
	// exceeded the building budget by more than cluster.FeederTolerance.
	BuildingExceedFrac float64
	// BuildingTrips counts trips of a shadow breaker rated at the building
	// budget (metric-only, like the rows' feeder breakers).
	BuildingTrips int

	// Safety rollups summed across every rack in the building.
	CBTrips        int
	OutageS        float64
	DeadlineMisses int
}

// DegradedS sums degraded-mode seconds across every rack in the building.
func (r *Result) DegradedS() float64 {
	var s float64
	for _, row := range r.Rows {
		s += row.DegradedS()
	}
	return s
}

// Resyncs sums degraded→coordinated recoveries across the building.
func (r *Result) Resyncs() int {
	var n int
	for _, row := range r.Rows {
		n += row.Resyncs()
	}
	return n
}

// RowTrips returns each row's shadow feeder-breaker trip count.
func (r *Result) RowTrips() []int {
	out := make([]int, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.FeederTrips
	}
	return out
}

// rowScenario builds row r's scenario: the shared scenario with seeds
// offset by the row's first global rack index (the row's cluster offsets a
// further +i per rack, so every rack in the building draws distinct
// traffic, noise and fault timings), and the row's fault-plan override if
// one is configured.
func rowScenario(c Config, ra RowAllocation, row int) sim.Scenario {
	scn := c.Scenario
	if c.Rows[row].Faults != nil {
		scn.Faults = *c.Rows[row].Faults
	}
	start := int64(ra.StartRack)
	scn.Interactive.Seed += start
	scn.Rack.Seed += start
	scn.Faults.Seed += start
	return scn
}

// rowClusterConfig assembles row r's linked-cluster configuration from the
// shared scenario and the row's granted budget.
func rowClusterConfig(c Config, a Allocation, row int) cluster.Config {
	ra := a.Rows[row]
	ccfg := cluster.Config{
		NumRacks:      ra.Racks,
		Scenario:      rowScenario(c, ra, row),
		FeederBudgetW: ra.BudgetW,
		SprintCon:     c.SprintCon,
		Serial:        c.Serial,
		Stop:          c.Stop,
	}
	if c.CheckpointEveryS > 0 && c.OnRowCheckpoint != nil {
		sink := c.OnRowCheckpoint
		ccfg.Checkpoint = &cluster.LinkedCheckpoint{
			EveryS: c.CheckpointEveryS,
			Sink:   func(snaps []*checkpoint.Snapshot) { sink(row, snaps) },
		}
	}
	if c.Resume != nil && row < len(c.Resume) {
		ccfg.Resume = c.Resume[row]
	}
	ccfg.Link.Enabled = true
	ccfg.Link.Seed = c.Seed + int64(row)
	if len(c.Obs) > 0 {
		ccfg.Link.Obs = c.Obs[row]
	}
	if c.RackOptions != nil {
		ccfg.Link.RackOptions = func(rack int) sim.RunOptions {
			return c.RackOptions(row, rack)
		}
	}
	if c.OnRowTick != nil {
		ccfg.Link.OnTick = func(step int, nowS, aggregateW float64) {
			c.OnRowTick(row, step, nowS, aggregateW)
		}
	}
	return ccfg
}

// RunLinked executes the building: Allocate resolves the waterfall, then
// every row runs as an independent linked cluster (concurrently unless
// Config.Serial — rows only share the read-only configuration, so results
// are bit-identical either way) against its granted budget. The building
// draw, the sum of the row aggregates, is scored against a shadow breaker
// at the building budget.
func RunLinked(c Config) (*Result, error) {
	a, err := Allocate(c)
	if err != nil {
		return nil, err
	}
	out := &Result{Alloc: a, Rows: make([]*cluster.LinkedResult, len(a.Rows))}
	errs := make([]error, len(a.Rows))
	runRow := func(i int) {
		// A panic in a row (policy, link callback, checkpoint sink) fails
		// the run with a *sim.PanicError instead of killing the process.
		defer sim.RecoverPanic(&errs[i])
		out.Rows[i], errs[i] = cluster.RunLinked(rowClusterConfig(c, a, i))
	}
	if c.Serial {
		for i := range a.Rows {
			runRow(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range a.Rows {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runRow(i)
			}(i)
		}
		wg.Wait()
	}
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("hier: row %d: %w", i, e)
		}
	}

	// Building draw over the common window: rows resumed from journaled
	// snapshots may start at different steps, so the building series is
	// only defined from the latest row start on. Fresh runs have every
	// StartStep zero and the legacy full-length behavior.
	steps := -1
	for i, row := range out.Rows {
		if row.StartStep > out.ResumeStep {
			out.ResumeStep = row.StartStep
		}
		if rowSteps := row.StartStep + len(row.AggregateW); steps == -1 {
			steps = rowSteps
		} else if rowSteps != steps {
			return nil, fmt.Errorf("hier: row %d aggregate length mismatch", i)
		}
	}
	out.BuildingAggregateW = make([]float64, steps-out.ResumeStep)
	for _, row := range out.Rows {
		out.CBTrips += row.CBTrips
		out.OutageS += row.OutageS
		out.DeadlineMisses += row.DeadlineMisses
		off := out.ResumeStep - row.StartStep
		for t := range out.BuildingAggregateW {
			out.BuildingAggregateW[t] += row.AggregateW[off+t]
		}
	}
	out.BuildingPeakW = stats.Max(out.BuildingAggregateW)
	out.BuildingMeanW = stats.Mean(out.BuildingAggregateW)
	out.BuildingExceedFrac = stats.FracAbove(out.BuildingAggregateW, a.BuildingBudgetW*(1+cluster.FeederTolerance))
	out.BuildingTrips = cluster.ShadowTrips(a.BuildingBudgetW, out.BuildingAggregateW, c.Scenario.DtS)

	if c.Metrics != nil {
		registerHierMetrics(c, out)
	}
	return out, nil
}

// registerHierMetrics publishes the run's per-level safety record on the
// configured registry.
func registerHierMetrics(c Config, out *Result) {
	m := c.Metrics
	m.Gauge("hier_building_budget_w", "building feeder rating").Set(out.Alloc.BuildingBudgetW)
	m.Gauge("hier_building_granted_w", "sum of row budgets granted by the waterfall").Set(out.Alloc.TotalGrantedW())
	m.Gauge("hier_building_peak_w", "peak building feeder draw").Set(out.BuildingPeakW)
	m.Gauge("hier_building_exceed_frac", "fraction of ticks the building draw exceeded its budget beyond tolerance").Set(out.BuildingExceedFrac)
	m.Gauge("hier_building_trips", "building shadow-breaker trips").Set(float64(out.BuildingTrips))
	m.Gauge("hier_degraded_seconds", "rack-seconds in the degraded standalone fallback across the building").Set(out.DegradedS())
	m.Counter("hier_cb_trips_total", "rack breaker trips across the building").Add(float64(out.CBTrips))
	m.Counter("hier_deadline_misses_total", "batch deadline misses across the building").Add(float64(out.DeadlineMisses))
	m.Counter("hier_resyncs_total", "degraded→coordinated recoveries across the building").Add(float64(out.Resyncs()))
	for i, row := range out.Rows {
		p := fmt.Sprintf("hier_row%d_", i)
		m.Gauge(p+"budget_w", "row feeder budget granted by the waterfall").Set(out.Alloc.Rows[i].BudgetW)
		m.Gauge(p+"exceed_frac", "fraction of ticks the row draw exceeded its budget beyond tolerance").Set(row.FeederExceedFrac)
		m.Gauge(p+"trips", "row shadow-breaker trips").Set(float64(row.FeederTrips))
		m.Gauge(p+"degraded_seconds", "rack-seconds in the degraded fallback on this row").Set(row.DegradedS())
	}
}
