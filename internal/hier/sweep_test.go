package hier

import (
	"testing"
)

// identical asserts two sweeps are bit-identical, series for series.
func identical(t *testing.T, serial, parallel *SweepResult) {
	t.Helper()
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row count %d != %d", len(serial.Rows), len(parallel.Rows))
	}
	for r := range serial.Rows {
		if len(serial.Rows[r]) != len(parallel.Rows[r]) {
			t.Fatalf("row %d rack count differs", r)
		}
		for j := range serial.Rows[r] {
			a, b := serial.Rows[r][j].Series, parallel.Rows[r][j].Series
			for tick := range a.CBW {
				if a.CBW[tick] != b.CBW[tick] || a.SoC[tick] != b.SoC[tick] || a.TotalW[tick] != b.TotalW[tick] {
					t.Fatalf("row %d rack %d tick %d differs between serial and parallel", r, j, tick)
				}
			}
		}
	}
	for tick := range serial.BuildingAggregateW {
		if serial.BuildingAggregateW[tick] != parallel.BuildingAggregateW[tick] {
			t.Fatalf("building aggregate differs at tick %d", tick)
		}
	}
	if serial.CBTrips != parallel.CBTrips || serial.DeadlineMisses != parallel.DeadlineMisses {
		t.Fatal("summary stats differ between serial and parallel sweep")
	}
}

// TestSweepBitIdentity: the sharded parallel sweep must reproduce the
// serial run bit for bit on a small mixed topology.
func TestSweepBitIdentity(t *testing.T) {
	c := DefaultConfig()
	c.Rows = []RowConfig{{Racks: 3}, {Racks: 5}, {Racks: 4}}
	c.Scenario.DurationS = 300

	c.Serial = true
	serial, err := RunSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Serial = false
	var done []int
	c.OnRowDone = func(row int) { done = append(done, row) }
	parallel, err := RunSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	identical(t, serial, parallel)
	if len(done) != 3 || done[0] != 0 || done[1] != 1 || done[2] != 2 {
		t.Fatalf("OnRowDone order = %v, want [0 1 2]", done)
	}
}

// TestSweep1000RacksBitIdentity is the acceptance-scale check: a 1000-rack
// building (4 rows × 250 racks), sharded per row on the worker pool, must
// be bit-identical to the serial run.
func TestSweep1000RacksBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-rack sweep skipped in -short mode")
	}
	c := DefaultConfig()
	c.Rows = []RowConfig{{Racks: 250}, {Racks: 250}, {Racks: 250}, {Racks: 250}}
	c.Scenario.DurationS = 120

	c.Serial = true
	serial, err := RunSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Serial = false
	parallel, err := RunSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	identical(t, serial, parallel)
	if got := serial.Alloc.TotalRacks; got != 1000 {
		t.Fatalf("TotalRacks = %d, want 1000", got)
	}
}

// TestSweepCleanRunStaysInsideEveryBreaker: with auto-provisioned budgets
// and slot-packed offsets, no level of the hierarchy may register an
// exceedance or a shadow trip.
func TestSweepCleanRunStaysInsideEveryBreaker(t *testing.T) {
	c := DefaultConfig()
	c.Rows = []RowConfig{{Racks: 6}, {Racks: 6}}
	c.Scenario.DurationS = 450
	res, err := RunSweep(c)
	if err != nil {
		t.Fatal(err)
	}
	for r := range res.Rows {
		if res.RowExceedFrac[r] != 0 || res.RowTrips[r] != 0 {
			t.Errorf("row %d: exceed frac %g, trips %d", r, res.RowExceedFrac[r], res.RowTrips[r])
		}
	}
	if res.BuildingExceedFrac != 0 || res.BuildingTrips != 0 {
		t.Errorf("building: exceed frac %g, trips %d", res.BuildingExceedFrac, res.BuildingTrips)
	}
}
