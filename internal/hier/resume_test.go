package hier

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/sim"
)

// TestRunLinkedCancelAndResume: a building run canceled mid-flight returns
// sim.ErrCanceled, leaves one final coherent checkpoint per row, and a run
// resumed from those snapshots covers the remaining common window —
// Result.ResumeStep is the latest row start and the building series has
// exactly steps−ResumeStep samples.
func TestRunLinkedCancelAndResume(t *testing.T) {
	c := testConfig()
	stop := make(chan struct{})
	c.Stop = stop
	var mu sync.Mutex
	latest := map[int][]*checkpoint.Snapshot{}
	c.CheckpointEveryS = 100
	c.OnRowCheckpoint = func(row int, snaps []*checkpoint.Snapshot) {
		mu.Lock()
		latest[row] = snaps
		mu.Unlock()
	}
	var once sync.Once
	c.OnRowTick = func(row, step int, _, _ float64) {
		if step >= 199 {
			once.Do(func() { close(stop) })
		}
	}
	_, err := RunLinked(c)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want sim.ErrCanceled", err)
	}
	mu.Lock()
	resume := [][]*checkpoint.Snapshot{latest[0], latest[1]}
	mu.Unlock()
	for row, snaps := range resume {
		if len(snaps) != c.Rows[row].Racks {
			t.Fatalf("row %d final capture has %d racks, want %d", row, len(snaps), c.Rows[row].Racks)
		}
	}

	c2 := testConfig()
	c2.Resume = resume
	res, err := RunLinked(c2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for row, snaps := range resume {
		start := int(snaps[0].Step)
		if res.Rows[row].StartStep != start {
			t.Errorf("row %d StartStep = %d, want %d", row, res.Rows[row].StartStep, start)
		}
		if start > want {
			want = start
		}
	}
	if res.ResumeStep != want {
		t.Errorf("ResumeStep = %d, want %d (latest row start)", res.ResumeStep, want)
	}
	steps := int(c2.Scenario.DurationS / c2.Scenario.DtS)
	if len(res.BuildingAggregateW) != steps-res.ResumeStep {
		t.Errorf("building series covers %d steps, want %d", len(res.BuildingAggregateW), steps-res.ResumeStep)
	}
	if res.CBTrips != 0 || res.OutageS != 0 {
		t.Errorf("resumed building tripped: cb=%d outage=%g", res.CBTrips, res.OutageS)
	}
}

// TestRunSweepCancel: sweeps poll the stop channel too — both between rows
// and inside the racks' tick loops.
func TestRunSweepCancel(t *testing.T) {
	c := testConfig()
	stop := make(chan struct{})
	close(stop)
	c.Stop = stop
	if _, err := RunSweep(c); !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("pre-closed stop: err = %v, want sim.ErrCanceled", err)
	}
}

// TestRunLinkedPanicIsolated: a panic inside a row callback surfaces as a
// *sim.PanicError naming the row instead of crashing the process.
func TestRunLinkedPanicIsolated(t *testing.T) {
	c := testConfig()
	c.OnRowTick = func(row, step int, _, _ float64) {
		if row == 1 && step == 10 {
			panic("boom from row 1")
		}
	}
	_, err := RunLinked(c)
	if err == nil {
		t.Fatal("panicking run returned nil error")
	}
	var pe *sim.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *sim.PanicError", err)
	}
	if !strings.Contains(err.Error(), "boom from row 1") || !strings.Contains(err.Error(), "hier: row 1") {
		t.Fatalf("error lacks panic value or row attribution: %v", err)
	}
}
