package hier

import (
	"math"
	"testing"

	"sprintcon/internal/sim"
	"sprintcon/internal/workload"
)

// quiesceSweepConfig builds a small building whose racks the event engine
// can fast-forward: deterministic plant, piecewise-constant diurnal demand
// with plateaus in the settling regime, and sprinting disabled so the
// overload schedule stays invisible.
func quiesceSweepConfig(t *testing.T, durationS float64) Config {
	t.Helper()
	c := DefaultConfig()
	c.Rows = []RowConfig{{Racks: 3}, {Racks: 2}}
	c.Scenario.DurationS = durationS
	c.Scenario.BurstDurationS = durationS
	c.Scenario.AmbientSwingC = 0
	c.Scenario.Rack.MonitorNoiseStd = 0
	c.Scenario.Rack.UtilJitterStd = 0
	c.Scenario.BatchSpecs = workload.SteadyStateSpecs()
	tr, err := workload.SteppedDiurnal([]float64{0.5, 0.62, 0.75, 0.55}, 900, durationS, c.Scenario.DtS)
	if err != nil {
		t.Fatal(err)
	}
	c.Scenario.Trace = tr
	c.SprintCon.NoSprint = true
	return c
}

// bitEqualSweep asserts two sweeps are bit-identical: every per-rack series
// column, the aggregates at every level, and the safety rollups.
func bitEqualSweep(t *testing.T, a, b *SweepResult) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row count %d != %d", len(a.Rows), len(b.Rows))
	}
	for r := range a.Rows {
		if len(a.Rows[r]) != len(b.Rows[r]) {
			t.Fatalf("row %d rack count differs", r)
		}
		for j := range a.Rows[r] {
			x, y := &a.Rows[r][j].Series, &b.Rows[r][j].Series
			cols := []struct {
				name string
				a, b []float64
			}{
				{"Time", x.Time, y.Time},
				{"TotalW", x.TotalW, y.TotalW},
				{"CBW", x.CBW, y.CBW},
				{"UPSW", x.UPSW, y.UPSW},
				{"PCbW", x.PCbW, y.PCbW},
				{"PBatchW", x.PBatchW, y.PBatchW},
				{"FreqInter", x.FreqInter, y.FreqInter},
				{"FreqBatch", x.FreqBatch, y.FreqBatch},
				{"SoC", x.SoC, y.SoC},
				{"Demand", x.Demand, y.Demand},
			}
			for _, c := range cols {
				if len(c.a) != len(c.b) {
					t.Fatalf("row %d rack %d %s: length %d vs %d", r, j, c.name, len(c.a), len(c.b))
				}
				for i := range c.a {
					if math.Float64bits(c.a[i]) != math.Float64bits(c.b[i]) {
						t.Fatalf("row %d rack %d %s[%d]: %v vs %v", r, j, c.name, i, c.a[i], c.b[i])
					}
				}
			}
		}
	}
	for r := range a.RowAggregateW {
		for i := range a.RowAggregateW[r] {
			if math.Float64bits(a.RowAggregateW[r][i]) != math.Float64bits(b.RowAggregateW[r][i]) {
				t.Fatalf("row %d aggregate differs at tick %d", r, i)
			}
		}
	}
	for i := range a.BuildingAggregateW {
		if math.Float64bits(a.BuildingAggregateW[i]) != math.Float64bits(b.BuildingAggregateW[i]) {
			t.Fatalf("building aggregate differs at tick %d", i)
		}
	}
	if a.CBTrips != b.CBTrips || a.DeadlineMisses != b.DeadlineMisses ||
		math.Float64bits(a.OutageS) != math.Float64bits(b.OutageS) {
		t.Fatal("safety rollups differ")
	}
	if a.BuildingTrips != b.BuildingTrips ||
		math.Float64bits(a.BuildingExceedFrac) != math.Float64bits(b.BuildingExceedFrac) {
		t.Fatal("building shadow-breaker scores differ")
	}
}

// A sweep under the event engine must be bit-identical to the tick-engine
// sweep — racks are independent single-rack runs, so the per-rack engine
// equivalence lifts to every aggregate in the waterfall — and the racks must
// genuinely fast-forward (spans open, ticks get skipped).
func TestSweepEventEngineBitIdentical(t *testing.T) {
	c := quiesceSweepConfig(t, 3600)

	c.Serial = true
	tick, err := RunSweep(c)
	if err != nil {
		t.Fatal(err)
	}

	ce := c
	ce.Serial = false
	ce.RackOptions = func(row, rack int) sim.RunOptions {
		return sim.RunOptions{Engine: "event"}
	}
	event, err := RunSweep(ce)
	if err != nil {
		t.Fatal(err)
	}

	bitEqualSweep(t, tick, event)

	var spans, skipped int
	for r := range event.Rows {
		for j, res := range event.Rows[r] {
			if res.Engine.Name != "event" {
				t.Fatalf("row %d rack %d ran engine %q", r, j, res.Engine.Name)
			}
			spans += res.Engine.Spans
			skipped += res.Engine.TicksSkipped
		}
	}
	if spans == 0 || skipped == 0 {
		t.Fatalf("sweep racks never fast-forwarded: spans=%d skipped=%d", spans, skipped)
	}
	t.Logf("spans=%d skipped=%d across %d racks", spans, skipped, tick.Alloc.TotalRacks)

	// The serial event sweep matches too: engine choice and scheduling
	// commute.
	cs := ce
	cs.Serial = true
	serialEvent, err := RunSweep(cs)
	if err != nil {
		t.Fatal(err)
	}
	bitEqualSweep(t, tick, serialEvent)
}

// An unknown engine name from RackOptions must surface as an error, not run
// silently on the default engine.
func TestSweepRejectsUnknownEngine(t *testing.T) {
	c := quiesceSweepConfig(t, 600)
	c.RackOptions = func(row, rack int) sim.RunOptions {
		return sim.RunOptions{Engine: "warp"}
	}
	if _, err := RunSweep(c); err == nil {
		t.Fatal("sweep accepted an unknown engine name")
	}
	c.Serial = true
	if _, err := RunSweep(c); err == nil {
		t.Fatal("serial sweep accepted an unknown engine name")
	}
}
