// Package hier composes the per-rack SprintCon allocator under row- and
// building-level breakers — the hierarchical shape a production datacenter
// runs: one building feeder supplies several row feeders, each row feeder
// supplies a group of racks, and every level has its own breaker rating.
//
// # Budget waterfall
//
// Allocate turns a building budget into per-row budgets with the same
// tighten-only discipline the linked cluster applies per rack: a child
// level never receives more than its parent can fund, and the sum of the
// budgets granted to the children of any node never exceeds that node's
// own budget. Budgets move in whole overload-bonus quanta
// (rated·(degree−1), one rack's overload surcharge), because that is the
// granularity at which the coordinator's slot packing can actually spend
// them: a row's budget N·rated + K·bonus funds exactly K concurrent
// overloads.
//
// Every row is first granted its minimum packing ⌈N/slots⌉ — the smallest
// slot capacity that lets the row coordinator give each of its N racks an
// overload slot among the cycle's ⌊cycle/overload⌋ windows. Remaining
// building headroom is distributed round-robin, one bonus at a time, up to
// each row's own breaker rating. A building that cannot fund every row's
// minimum packing is a configuration error, reported by Allocate.
//
// # Runtime
//
// RunLinked drives each row as an independent cluster.RunLinked — a row
// coordinator, a lossy transport, and lease-based clients per rack — with
// the row's granted budget as its feeder budget. Partitions therefore
// degrade one subtree: a row whose network fails falls back to rated-power
// autonomy (the degraded ladder of DESIGN.md §12) while the other rows
// keep sprinting on their leases, and the building aggregate stays inside
// its breaker. Every level is scored by a shadow breaker
// (cluster.ShadowTrips) and an exceedance fraction with the same
// cluster.FeederTolerance slack.
//
// RunSweep is the uncoordinated counterpart for capacity studies at
// thousands of racks: static slot-packed phase offsets per row, executed
// on the sim worker pool sharded row by row (sim.RunManyOrdered), with
// results bit-identical between serial and parallel execution.
//
// Rack seeds are offset by the rack's global index across the whole
// building, so every rack sees distinct traffic, noise and fault timings,
// and a flat cluster over the same racks is directly comparable
// (experiment E20).
package hier
