package hier

import (
	"math"
	"strings"
	"testing"

	"sprintcon/internal/cluster"
	"sprintcon/internal/faults"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// testConfig returns a small building: two rows (4 and 5 racks), every
// level auto-provisioned, one full overload cycle of simulated time. Rows
// are at least the paper's four racks: the exceedance tolerance is tuned
// for tracking noise averaged over a feeder group of that size, and a
// smaller row's relative noise can cross it on single ticks.
func testConfig() Config {
	c := DefaultConfig()
	c.Rows = []RowConfig{{Racks: 4}, {Racks: 5}}
	c.Scenario.DurationS = 450
	return c
}

// TestAllocateTightenOnly is the table-driven conservation check: whatever
// the topology and ratings, the waterfall never grants a child level more
// than its parent holds, never exceeds a row's own rating, and always
// funds at least the minimum packing (or errors).
func TestAllocateTightenOnly(t *testing.T) {
	// The paper rack: rated 3200 W, bonus 800 W, 3 slots per cycle.
	const rated, bonus = 3200, 800
	cases := []struct {
		name     string
		building float64
		rows     []RowConfig
		wantK    []int   // expected per-row slot capacities ("" = skip)
		wantErr  string  // non-empty = Allocate must fail with this substring
		wantBldg float64 // expected resolved building budget (0 = skip)
	}{
		{
			name: "auto-everything minimum packing",
			rows: []RowConfig{{Racks: 3}, {Racks: 4}},
			// Kmin = ceil(3/3)=1, ceil(4/3)=2; auto ratings leave no spare.
			wantK:    []int{1, 2},
			wantBldg: (3*rated + 1*bonus) + (4*rated + 2*bonus),
		},
		{
			name:     "generous building capped by row ratings",
			building: 1e9,
			rows: []RowConfig{
				{Racks: 3, RatingW: 3*rated + 3*bonus},
				{Racks: 4, RatingW: 4*rated + 4*bonus},
			},
			// Spare headroom is huge; rows cap at their own ratings.
			wantK: []int{3, 4},
		},
		{
			name: "tight building rations round-robin",
			// Funds the minimum packing (1+2 bonuses) plus two spare
			// bonuses: round-robin gives one to each row.
			building: 7*rated + 5*bonus,
			rows: []RowConfig{
				{Racks: 3, RatingW: 3*rated + 3*bonus},
				{Racks: 4, RatingW: 4*rated + 4*bonus},
			},
			wantK: []int{2, 3},
		},
		{
			name:     "building cannot fund minimum packing",
			building: 7*rated + 2*bonus, // needs 3 bonuses minimum
			rows:     []RowConfig{{Racks: 3}, {Racks: 4}},
			wantErr:  "cannot fund the minimum packing",
		},
		{
			name:    "row rating below its own minimum packing",
			rows:    []RowConfig{{Racks: 4, RatingW: 4*rated + 1*bonus}},
			wantErr: "for a full packing",
		},
		{
			name:     "sixteen-rack acceptance rows",
			building: 4 * (16*rated + 6*bonus),
			rows:     []RowConfig{{Racks: 16}, {Racks: 16}, {Racks: 16}, {Racks: 16}},
			wantK:    []int{6, 6, 6, 6},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			c.BuildingBudgetW = tc.building
			c.Rows = tc.rows
			a, err := Allocate(c)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Allocate error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantBldg != 0 && math.Abs(a.BuildingBudgetW-tc.wantBldg) > 1e-6 {
				t.Errorf("building budget = %g, want %g", a.BuildingBudgetW, tc.wantBldg)
			}
			// Conservation at the building level.
			if got := a.TotalGrantedW(); got > a.BuildingBudgetW+1e-6 {
				t.Errorf("granted %g W exceeds building budget %g W", got, a.BuildingBudgetW)
			}
			for i, r := range a.Rows {
				if tc.wantK != nil && r.SlotCapacity != tc.wantK[i] {
					t.Errorf("row %d slot capacity = %d, want %d", i, r.SlotCapacity, tc.wantK[i])
				}
				// Conservation at the row level, and the packing floor.
				if r.BudgetW > r.RatingW+1e-6 {
					t.Errorf("row %d budget %g W exceeds its rating %g W", i, r.BudgetW, r.RatingW)
				}
				if kmin := (r.Racks + a.NumSlots - 1) / a.NumSlots; r.SlotCapacity < kmin {
					t.Errorf("row %d slot capacity %d below minimum packing %d", i, r.SlotCapacity, kmin)
				}
				want := float64(r.Racks)*a.RatedW + float64(r.SlotCapacity)*a.BonusW
				if math.Abs(r.BudgetW-want) > 1e-6 {
					t.Errorf("row %d budget %g W inconsistent with K=%d (want %g)", i, r.BudgetW, r.SlotCapacity, want)
				}
			}
		})
	}
}

// TestRunLinkedConservationPerPeriod runs a small clean building and checks
// the tighten-only invariant at runtime, every tick: the sum of the racks'
// granted CB budgets (the policies' P_cb targets) never exceeds the row
// budget, the row budgets never sum above the building budget, and no
// level's shadow breaker records an exceedance or trip.
func TestRunLinkedConservationPerPeriod(t *testing.T) {
	c := testConfig()
	c.Serial = true
	res, err := RunLinked(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Alloc.TotalGrantedW(); got > res.Alloc.BuildingBudgetW+1e-6 {
		t.Fatalf("granted %g W exceeds building budget %g W", got, res.Alloc.BuildingBudgetW)
	}
	for r, row := range res.Rows {
		budget := res.Alloc.Rows[r].BudgetW
		steps := len(row.AggregateW)
		for tick := 0; tick < steps; tick++ {
			var sum float64
			for _, rack := range row.Racks {
				if v := rack.Series.PCbW[tick]; !math.IsNaN(v) {
					sum += v
				}
			}
			if sum > budget*(1+1e-9) {
				t.Fatalf("row %d tick %d: ΣP_cb targets %g W exceed the row budget %g W", r, tick, sum, budget)
			}
		}
		if row.FeederExceedFrac != 0 || row.FeederTrips != 0 {
			t.Errorf("row %d: exceed frac %g, trips %d on a clean run", r, row.FeederExceedFrac, row.FeederTrips)
		}
	}
	if res.BuildingExceedFrac != 0 || res.BuildingTrips != 0 {
		t.Errorf("building: exceed frac %g, trips %d on a clean run", res.BuildingExceedFrac, res.BuildingTrips)
	}
	if res.CBTrips != 0 || res.OutageS != 0 {
		t.Errorf("safety: %d rack trips, %g s outage on a clean run", res.CBTrips, res.OutageS)
	}
}

// TestRunLinkedParallelMatchesSerial: rows only share read-only
// configuration, so the concurrent row fan-out must be bit-identical to
// the serial path.
func TestRunLinkedParallelMatchesSerial(t *testing.T) {
	c := testConfig()
	c.Serial = true
	serial, err := RunLinked(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Serial = false
	parallel, err := RunLinked(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.BuildingAggregateW {
		if serial.BuildingAggregateW[i] != parallel.BuildingAggregateW[i] {
			t.Fatalf("tick %d: serial %v != parallel %v", i, serial.BuildingAggregateW[i], parallel.BuildingAggregateW[i])
		}
	}
	if serial.DegradedS() != parallel.DegradedS() || serial.CBTrips != parallel.CBTrips {
		t.Fatal("summary stats differ between serial and parallel row execution")
	}
}

// TestPartitionDegradesOneRow fails one row's network for 300 s: that row
// must spend time in the degraded fallback while the other rows stay fully
// coordinated, and no level's shadow breaker may record a trip — a
// partition degrades one subtree, never the building.
func TestPartitionDegradesOneRow(t *testing.T) {
	c := DefaultConfig()
	c.Rows = []RowConfig{
		{Racks: 4},
		{Racks: 4, Faults: &faults.Plan{Faults: []faults.Fault{
			{Kind: faults.LinkPartition, Server: faults.AllRacks, OnsetS: 100, DurationS: 300, Severity: 1},
		}}},
		{Racks: 4},
	}
	res, err := RunLinked(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[1].DegradedS(); got == 0 {
		t.Error("partitioned row recorded zero degraded seconds")
	}
	for _, r := range []int{0, 2} {
		if got := res.Rows[r].DegradedS(); got != 0 {
			t.Errorf("healthy row %d recorded %g degraded seconds", r, got)
		}
	}
	if res.BuildingTrips != 0 || res.BuildingExceedFrac != 0 {
		t.Errorf("building: %d trips, exceed frac %g under a single-row partition", res.BuildingTrips, res.BuildingExceedFrac)
	}
	for r, row := range res.Rows {
		if row.FeederTrips != 0 {
			t.Errorf("row %d: %d shadow trips", r, row.FeederTrips)
		}
	}
	if res.CBTrips != 0 {
		t.Errorf("%d rack breaker trips", res.CBTrips)
	}
}

// TestRunLinkedMetricsAndHooks exercises the registry instruments and the
// per-tick progress hook.
func TestRunLinkedMetricsAndHooks(t *testing.T) {
	c := testConfig()
	c.Metrics = telemetry.NewRegistry()
	var mu chan struct{} // serialize the concurrent hook without sync import
	mu = make(chan struct{}, 1)
	ticks := map[int]int{}
	c.OnRowTick = func(row, step int, nowS, aggW float64) {
		mu <- struct{}{}
		if step > ticks[row] {
			ticks[row] = step
		}
		<-mu
	}
	var opts int
	c.RackOptions = func(row, rack int) sim.RunOptions {
		opts++
		return sim.RunOptions{}
	}
	res, err := RunLinked(c)
	if err != nil {
		t.Fatal(err)
	}
	steps := len(res.BuildingAggregateW)
	for r := range c.Rows {
		if ticks[r] != steps-1 {
			t.Errorf("row %d last observed step = %d, want %d", r, ticks[r], steps-1)
		}
	}
	if want := 4 + 5; opts != want {
		t.Errorf("RackOptions called %d times, want %d", opts, want)
	}
	var found bool
	for _, m := range c.Metrics.Snapshot() {
		if m.Name == "hier_building_exceed_frac" {
			found = true
			if m.Value != 0 {
				t.Errorf("hier_building_exceed_frac = %g, want 0", m.Value)
			}
		}
	}
	if !found {
		t.Error("hier_building_exceed_frac not registered")
	}
}

// TestShadowTolerancesShared pins the hier scoring to the cluster's: the
// tolerance constant is shared, so a future re-tuning cannot silently
// diverge the levels.
func TestShadowTolerancesShared(t *testing.T) {
	if cluster.FeederTolerance != 0.035 {
		t.Fatalf("cluster.FeederTolerance = %g; DESIGN.md §12/§14 document 0.035 — update both if this is intentional", cluster.FeederTolerance)
	}
}
