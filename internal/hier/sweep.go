package hier

import (
	"fmt"
	"math"

	"sprintcon/internal/cluster"
	"sprintcon/internal/core"
	"sprintcon/internal/sim"
	"sprintcon/internal/stats"
)

// SweepResult aggregates a hierarchical static-offset sweep.
type SweepResult struct {
	// Alloc is the budget waterfall the sweep executed.
	Alloc Allocation
	// Rows holds each row's per-rack results, index = [row][rack].
	Rows [][]*sim.Result

	// RowAggregateW is each row's feeder draw per tick; RowExceedFrac and
	// RowTrips the per-row exceedance fraction and shadow-breaker trips
	// against the granted row budgets.
	RowAggregateW [][]float64
	RowExceedFrac []float64
	RowTrips      []int

	// BuildingAggregateW, BuildingExceedFrac and BuildingTrips mirror the
	// row records at the building level.
	BuildingAggregateW           []float64
	BuildingPeakW, BuildingMeanW float64
	BuildingExceedFrac           float64
	BuildingTrips                int

	// Safety rollups summed across every rack in the building.
	CBTrips        int
	OutageS        float64
	DeadlineMisses int
}

// sweepJob builds the scenario and policy for rack j of row r: seeds offset
// by the rack's global index, the row's fault override (link-scoped faults
// stripped — a sweep has no link), and the statically slot-packed phase
// offset slot = ⌊j/K⌋, the same packing the row coordinator would bootstrap.
func sweepJob(c Config, a Allocation, row, j int) (sim.Scenario, sim.Policy) {
	ra := a.Rows[row]
	scn := c.Scenario
	if c.Rows[row].Faults != nil {
		scn.Faults = *c.Rows[row].Faults
	}
	rackPlan, _ := scn.Faults.Split()
	scn.Faults = rackPlan
	g := int64(ra.StartRack + j)
	scn.Interactive.Seed += g
	scn.Rack.Seed += g
	scn.Faults.Seed += g

	pcfg := c.SprintCon
	acfg := c.allocConfig()
	cycle := acfg.OverloadS + acfg.RecoveryS
	slot := j / ra.SlotCapacity
	acfg.PhaseOffsetS = math.Mod(cycle-float64(slot)*acfg.OverloadS, cycle)
	pcfg.AllocOverride = &acfg
	return scn, core.New(pcfg)
}

// RunSweep executes the building with static, per-row slot-packed phase
// offsets — no control link, no coordinator — on the sim worker pool,
// sharded row by row: each row's racks run as one sim.RunManyOrdered batch
// (Config.Serial runs them one at a time instead), rows in order. Results
// are bit-identical between the serial and parallel paths. Budgets come
// from the same Allocate waterfall as RunLinked, and every level is scored
// by the same shadow breakers.
func RunSweep(c Config) (*SweepResult, error) {
	a, err := Allocate(c)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{
		Alloc:         a,
		Rows:          make([][]*sim.Result, len(a.Rows)),
		RowAggregateW: make([][]float64, len(a.Rows)),
		RowExceedFrac: make([]float64, len(a.Rows)),
		RowTrips:      make([]int, len(a.Rows)),
	}
	for r := range a.Rows {
		if c.Stop != nil {
			select {
			case <-c.Stop:
				return nil, fmt.Errorf("hier: row %d: %w", r, sim.ErrCanceled)
			default:
			}
		}
		n := a.Rows[r].Racks
		opts := func(j int) sim.RunOptions {
			o := sim.RunOptions{}
			if c.RackOptions != nil {
				o = c.RackOptions(r, j)
			}
			o.Stop = c.Stop
			return o
		}
		if c.Serial {
			out.Rows[r] = make([]*sim.Result, n)
			for j := 0; j < n; j++ {
				scn, p := sweepJob(c, a, r, j)
				res, err := sim.RunWith(scn, p, opts(j))
				if err != nil {
					return nil, fmt.Errorf("hier: row %d rack %d: %w", r, j, err)
				}
				out.Rows[r][j] = res
			}
		} else {
			jobs := make([]sim.Job, n)
			for j := range jobs {
				scn, p := sweepJob(c, a, r, j)
				jobs[j] = sim.Job{Key: fmt.Sprintf("row%d-rack%d", r, j), Scenario: scn, Policy: p, Opts: opts(j)}
			}
			out.Rows[r], err = sim.RunManyOrdered(jobs)
			if err != nil {
				return nil, fmt.Errorf("hier: row %d: %w", r, err)
			}
		}
		if c.OnRowDone != nil {
			c.OnRowDone(r)
		}
	}

	dt := c.Scenario.DtS
	for r, racks := range out.Rows {
		var agg []float64
		for j, res := range racks {
			out.CBTrips += res.CBTrips
			out.OutageS += res.OutageS
			out.DeadlineMisses += res.DeadlineMisses
			if agg == nil {
				agg = make([]float64, len(res.Series.CBW))
			}
			if len(res.Series.CBW) != len(agg) {
				return nil, fmt.Errorf("hier: row %d rack %d series length mismatch", r, j)
			}
			for t, w := range res.Series.CBW {
				agg[t] += w
			}
		}
		out.RowAggregateW[r] = agg
		out.RowExceedFrac[r] = stats.FracAbove(agg, a.Rows[r].BudgetW*(1+cluster.FeederTolerance))
		out.RowTrips[r] = cluster.ShadowTrips(a.Rows[r].BudgetW, agg, dt)
		if out.BuildingAggregateW == nil {
			out.BuildingAggregateW = make([]float64, len(agg))
		}
		for t, w := range agg {
			out.BuildingAggregateW[t] += w
		}
	}
	out.BuildingPeakW = stats.Max(out.BuildingAggregateW)
	out.BuildingMeanW = stats.Mean(out.BuildingAggregateW)
	out.BuildingExceedFrac = stats.FracAbove(out.BuildingAggregateW, a.BuildingBudgetW*(1+cluster.FeederTolerance))
	out.BuildingTrips = cluster.ShadowTrips(a.BuildingBudgetW, out.BuildingAggregateW, dt)
	return out, nil
}
