package hier

import (
	"errors"
	"fmt"
	"math"

	"sprintcon/internal/alloc"
	"sprintcon/internal/checkpoint"
	"sprintcon/internal/core"
	"sprintcon/internal/faults"
	"sprintcon/internal/obs"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// RowConfig describes one row feeder and the racks behind it.
type RowConfig struct {
	// Racks is the number of racks on the row feeder, in [1, cluster.MaxRacks].
	Racks int
	// RatingW is the row breaker rating (W). Zero auto-provisions the row
	// at its minimum packing, racks·rated + ⌈racks/slots⌉·bonus — the
	// smallest budget that gives every rack an overload slot. A non-zero
	// rating caps how much building headroom the row can absorb, and must
	// be at least the minimum packing.
	RatingW float64
	// Faults, when non-nil, replaces the shared scenario's fault plan for
	// this row only — the hook partition experiments use to fail one
	// subtree's network while the rest of the building stays healthy.
	Faults *faults.Plan
}

// Config describes the building: the shared per-rack scenario and policy,
// the row topology, and the building feeder rating above it.
type Config struct {
	// BuildingBudgetW is the building feeder rating (W). Zero
	// auto-provisions at the sum of the row ratings (after the rows' own
	// auto-provisioning), which funds every row to its rating exactly.
	BuildingBudgetW float64
	// Rows lists the row feeders, top-to-bottom order is the allocation
	// round-robin order.
	Rows []RowConfig
	// Scenario is the per-rack scenario. Rack seeds (interactive, rack,
	// faults) are offset by each rack's global index across the building.
	Scenario sim.Scenario
	// SprintCon tunes the per-rack policy (shared by every rack).
	SprintCon core.Config
	// Seed drives the per-row link transports' fault randomness; row r
	// uses Seed+r so rows draw independent loss/delay/duplication series.
	Seed int64
	// Serial runs rows, and the racks within them, one at a time.
	// Results are bit-identical either way.
	Serial bool
	// Metrics, when non-nil, receives the hierarchy instruments
	// (per-level budgets, exceedance fractions, shadow trips, degraded
	// seconds) after a run completes.
	Metrics *telemetry.Registry
	// Obs, when non-nil, holds one observability plane per row (index =
	// row id); RunLinked attaches row r's planes to row r's coordinator
	// and racks. Must be empty or have one entry per row.
	Obs []*obs.Cluster
	// RackOptions, when non-nil, supplies per-rack run options for
	// RunLinked and RunSweep — the hook sprintd uses to attach
	// decision-trace sinks, and sweeps use to select the event engine.
	RackOptions func(row, rack int) sim.RunOptions
	// OnRowTick, when non-nil, is called after every lock-step tick of
	// every row with that row's id, step index, simulated time and feeder
	// aggregate draw. Rows run concurrently, so the callback must be safe
	// for concurrent use. It must return quickly: the row waits on it.
	OnRowTick func(row, step int, nowS, aggregateW float64)
	// OnRowDone, when non-nil, is called after each row's sweep shard
	// completes (RunSweep only; shards finish in row order).
	OnRowDone func(row int)
	// Stop, when non-nil, cancels the run once the channel closes. Linked
	// rows poll it between lock-step ticks, sweep racks between sim ticks,
	// so cancellation lands within one tick of simulated progress; the
	// canceled run returns an error satisfying errors.Is(err,
	// sim.ErrCanceled).
	Stop <-chan struct{}
	// CheckpointEveryS, when positive together with OnRowCheckpoint,
	// captures coherent per-row snapshots during RunLinked: every rack of
	// a row exported at the same tick boundary, every CheckpointEveryS
	// simulated seconds, plus a final set when the run cancels. Rows run
	// concurrently, so OnRowCheckpoint must be safe for concurrent use
	// across different row ids.
	CheckpointEveryS float64
	OnRowCheckpoint  func(row int, snaps []*checkpoint.Snapshot)
	// Resume, when non-nil, resumes a linked run from journaled row
	// snapshots: index = row id, each entry a coherent per-rack set as
	// OnRowCheckpoint received it (nil entries start their row from step
	// 0). Rows may resume from different steps — each row's snapshots are
	// captured on its own lock-step cadence — so the building-level series
	// and statistics cover the common window ⟦max(row starts), end⟧ (see
	// Result.ResumeStep).
	Resume [][]*checkpoint.Snapshot
}

// DefaultConfig returns the acceptance topology: four rows of sixteen
// paper racks each, every level auto-provisioned at its minimum packing.
func DefaultConfig() Config {
	return Config{
		Rows:      []RowConfig{{Racks: 16}, {Racks: 16}, {Racks: 16}, {Racks: 16}},
		Scenario:  sim.DefaultScenario(),
		SprintCon: core.DefaultConfig(),
	}
}

// RowAllocation is one row's resolved share of the building budget.
type RowAllocation struct {
	// Racks is the row size; StartRack its first rack's global index.
	Racks     int
	StartRack int
	// RatingW is the row breaker rating (auto-provisioned when the
	// configuration left it zero); BudgetW the granted budget,
	// ≤ min(RatingW, the row's share of the building budget).
	RatingW float64
	BudgetW float64
	// SlotCapacity is K, the number of concurrent overloads BudgetW
	// funds: BudgetW = Racks·rated + K·bonus.
	SlotCapacity int
}

// Allocation is the resolved budget waterfall: building rating at the
// top, one granted budget per row below it.
type Allocation struct {
	// BuildingBudgetW is the building feeder rating (auto-provisioned
	// when the configuration left it zero).
	BuildingBudgetW float64
	// RatedW is one rack's breaker rating; BonusW its overload surcharge
	// rated·(degree−1) — the allocation quantum.
	RatedW float64
	BonusW float64
	// NumSlots is the overload windows per cycle, ⌊cycle/overload⌋.
	NumSlots int
	// TotalRacks counts racks across all rows.
	TotalRacks int
	// Rows holds the per-row grants, index = row id.
	Rows []RowAllocation
}

// TotalGrantedW sums the row budgets — by construction at most
// BuildingBudgetW.
func (a Allocation) TotalGrantedW() float64 {
	var s float64
	for _, r := range a.Rows {
		s += r.BudgetW
	}
	return s
}

// allocConfig resolves the per-rack allocator configuration (the override,
// or the default for the scenario's breaker).
func (c Config) allocConfig() alloc.Config {
	if c.SprintCon.AllocOverride != nil {
		return *c.SprintCon.AllocOverride
	}
	return alloc.DefaultConfig(c.Scenario.Breaker.RatedPower, c.Scenario.Breaker.TripBudget())
}

// Validate reports structural errors in the configuration: a building
// budget that cannot fund every row's minimum packing, and any error the
// per-row linked-cluster configurations would report (scenario, fault
// plan, link protocol, slot packing).
func (c Config) Validate() error {
	a, err := Allocate(c)
	if err != nil {
		return err
	}
	for i := range a.Rows {
		if err := rowClusterConfig(c, a, i).Validate(); err != nil {
			return fmt.Errorf("hier: row %d: %w", i, err)
		}
	}
	return nil
}

// Allocate resolves the tighten-only budget waterfall: every row gets its
// minimum packing ⌈racks/slots⌉ overload bonuses, then remaining building
// headroom is distributed round-robin one bonus at a time up to each
// row's breaker rating. The returned allocation satisfies, at every
// level, sum(child budgets) ≤ parent budget.
func Allocate(c Config) (Allocation, error) {
	if len(c.Rows) == 0 {
		return Allocation{}, errors.New("hier: at least one row is required")
	}
	if math.IsNaN(c.BuildingBudgetW) || math.IsInf(c.BuildingBudgetW, 0) || c.BuildingBudgetW < 0 {
		return Allocation{}, fmt.Errorf("hier: BuildingBudgetW is %g; the building rating must be finite and non-negative", c.BuildingBudgetW)
	}
	acfg := c.allocConfig()
	if err := acfg.Validate(); err != nil {
		return Allocation{}, fmt.Errorf("hier: allocator config: %w", err)
	}
	rated := c.Scenario.Breaker.RatedPower
	bonus := rated * (acfg.OverloadDegree - 1)
	slots := int(math.Floor((acfg.OverloadS+acfg.RecoveryS)/acfg.OverloadS + 1e-9))

	a := Allocation{
		BuildingBudgetW: c.BuildingBudgetW,
		RatedW:          rated,
		BonusW:          bonus,
		NumSlots:        slots,
		Rows:            make([]RowAllocation, len(c.Rows)),
	}
	kmin := make([]int, len(c.Rows))
	kmax := make([]int, len(c.Rows))
	for i, row := range c.Rows {
		if row.Racks <= 0 {
			return Allocation{}, fmt.Errorf("hier: row %d has %d racks; every row needs at least one", i, row.Racks)
		}
		if math.IsNaN(row.RatingW) || math.IsInf(row.RatingW, 0) || row.RatingW < 0 {
			return Allocation{}, fmt.Errorf("hier: row %d rating is %g; row ratings must be finite and non-negative", i, row.RatingW)
		}
		kmin[i] = (row.Racks + slots - 1) / slots
		base := float64(row.Racks) * rated
		rating := row.RatingW
		if rating == 0 {
			rating = base + float64(kmin[i])*bonus
		}
		// Floor with a tolerance: a rating assembled as base + K·bonus can
		// land a hair under the exact product in floats.
		kmax[i] = int((rating-base)/bonus + 1e-9)
		if kmax[i] < kmin[i] {
			return Allocation{}, fmt.Errorf(
				"hier: row %d rating %g W funds %d concurrent overloads but its %d racks need %d (⌈%d/%d slots⌉) for a full packing",
				i, rating, kmax[i], row.Racks, kmin[i], row.Racks, slots)
		}
		a.Rows[i] = RowAllocation{Racks: row.Racks, StartRack: a.TotalRacks, RatingW: rating}
		a.TotalRacks += row.Racks
	}

	building := c.BuildingBudgetW
	if building == 0 {
		for _, r := range a.Rows {
			building += r.RatingW
		}
		a.BuildingBudgetW = building
	}

	// Grant the minimum packing everywhere, then hand out the remaining
	// headroom round-robin in whole bonuses, capped by each row's rating.
	baseW := float64(a.TotalRacks) * rated
	spare := int((building-baseW)/bonus + 1e-9)
	for i := range a.Rows {
		spare -= kmin[i]
	}
	if building < baseW || spare < 0 {
		return Allocation{}, fmt.Errorf(
			"hier: building budget %g W cannot fund the minimum packing %g W (%d racks at %g W rated plus %g W per overload slot)",
			building, baseW+float64(sum(kmin))*bonus, a.TotalRacks, rated, bonus)
	}
	k := append([]int(nil), kmin...)
	for spare > 0 {
		granted := false
		for i := range k {
			if spare == 0 {
				break
			}
			if k[i] < kmax[i] {
				k[i]++
				spare--
				granted = true
			}
		}
		if !granted {
			break // every row is at its rating; leave the rest unspent
		}
	}
	for i := range a.Rows {
		a.Rows[i].SlotCapacity = k[i]
		a.Rows[i].BudgetW = float64(a.Rows[i].Racks)*rated + float64(k[i])*bonus
	}
	return a, nil
}

func sum(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}
