package checkpoint

import (
	"math"
	"reflect"
	"testing"
)

// sampleSnapshot exercises the awkward corners of the wire format: the
// non-finite floats gob must round-trip bit-exactly (+Inf CB budget,
// −Inf pre-first-tick control timestamp) and every nested section.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Version:       Version,
		SimTimeS:      301,
		Step:          301,
		PolicyName:    "sprintcon",
		ScenarioSum:   0xdeadbeefcafef00d,
		HasController: true,
		Controller: ControllerState{
			CapturedAtS:    301,
			Mode:           1,
			EverNearTrip:   true,
			FailSafeUntilS: math.Inf(-1),
			LastCtlS:       math.Inf(-1),
			CurPCbW:        math.Inf(1),
			CurPBatchW:     1234.5,
			CmdFreqsGHz:    []float64{1.2, 2.7, 2.7},
			KModel:         11.5,
			PrevPfbW:       2000,
			HavePrev:       true,
			PIIntegral:     -3.25,
			UPSTrimW:       12,
			InvFreqBounds:  2,
		},
		Plant: PlantState{
			Engine: EngineState{
				OutageS:         0,
				ControlledTicks: 300,
				OverTicks:       3,
				TrackErrSum:     19.5,
				EventSeq:        7,
				Snap: SnapState{
					NowS:           301,
					DtS:            1,
					MeasuredTotalW: 3800.25,
					UPSSoC:         0.83,
				},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	b, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	// DeepEqual compares the non-finite floats by bit pattern semantics
	// we need here: Inf==Inf holds, and the sample contains no NaN (gob
	// round-trips NaN too, but DeepEqual would report it unequal).
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:10] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"version-skew", func(b []byte) []byte { b[7] = 99; return b }},
		{"length-lies", func(b []byte) []byte { b[11] ^= 0x01; return b }},
		{"payload-bit-flip", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"crc-bit-flip", func(b []byte) []byte { b[13] ^= 0x40; return b }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xAA, 0xBB) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), good...))
			if s, err := Decode(b); err == nil {
				t.Fatalf("corrupt input decoded: %+v", s)
			}
		})
	}
}

func TestDecodeRejectsInvalidFields(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s *Snapshot)
	}{
		{"time-nan", func(s *Snapshot) { s.SimTimeS = math.NaN() }},
		{"time-negative", func(s *Snapshot) { s.SimTimeS = -1 }},
		{"step-negative", func(s *Snapshot) { s.Step = -1 }},
		{"counters-negative", func(s *Snapshot) { s.Plant.Engine.CBTrips = -1 }},
		{"over-exceeds-controlled", func(s *Snapshot) { s.Plant.Engine.OverTicks = 1000 }},
		{"trackerr-nan", func(s *Snapshot) { s.Plant.Engine.TrackErrSum = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sampleSnapshot()
			tc.mut(s)
			// Encode does not validate (it serializes what it is given);
			// Decode must refuse to hand the state back.
			b, err := Encode(s)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := Decode(b); err == nil {
				t.Fatalf("invalid snapshot decoded: %+v", got)
			}
		})
	}
}

func TestFileStoreAtomicRoundTrip(t *testing.T) {
	path := t.TempDir() + "/run.ckpt"
	fs := NewFileStore(path)

	// Absent file: (nil, nil), not an error.
	if s, err := fs.Latest(); s != nil || err != nil {
		t.Fatalf("Latest on absent file: %v, %v", s, err)
	}

	want := sampleSnapshot()
	n, err := fs.Save(want)
	if err != nil {
		t.Fatal(err)
	}
	if n <= headerLen {
		t.Fatalf("Save reported %d bytes", n)
	}
	got, err := fs.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("file round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}

	// A second Save replaces the first atomically.
	want2 := sampleSnapshot()
	want2.SimTimeS, want2.Step = 302, 302
	if _, err := fs.Save(want2); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Step != 302 {
		t.Fatalf("second save not visible: step %d", got2.Step)
	}
}

func TestMemStoreDrop(t *testing.T) {
	ms := NewMemStore()
	if _, err := ms.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if s, err := ms.Latest(); s == nil || err != nil {
		t.Fatalf("Latest after Save: %v, %v", s, err)
	}
	ms.Drop()
	if s, err := ms.Latest(); s != nil || err != nil {
		t.Fatalf("Latest after Drop: %v, %v", s, err)
	}
}
