package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store persists snapshots. The engine calls Save on its checkpoint cadence
// and Latest once per controller restart.
type Store interface {
	// Save persists the snapshot, replacing any previous one. It returns
	// the encoded size in bytes (0 for stores that keep the snapshot
	// in memory without encoding).
	Save(s *Snapshot) (int, error)
	// Latest returns the most recent snapshot, or (nil, nil) when none
	// has been saved. A decode or validation failure is an error — the
	// caller treats both absence and corruption as the fail-safe case.
	Latest() (*Snapshot, error)
}

// MemStore keeps the latest snapshot in memory, unencoded. It is the
// cheap store for in-process crash/restart simulation (no serialization on
// the tick path); FileStore is the durable one.
type MemStore struct {
	last *Snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save retains the snapshot. The engine builds a fresh snapshot per capture
// (every Export deep-copies its slices), so retaining the pointer is safe.
func (m *MemStore) Save(s *Snapshot) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("checkpoint: save nil snapshot")
	}
	m.last = s
	return 0, nil
}

// Latest returns the retained snapshot ((nil, nil) when none).
func (m *MemStore) Latest() (*Snapshot, error) {
	if m.last == nil {
		return nil, nil
	}
	if err := m.last.Validate(); err != nil {
		return nil, err
	}
	return m.last, nil
}

// Drop discards the retained snapshot (test support for the
// absent-checkpoint restart path).
func (m *MemStore) Drop() { m.last = nil }

// FileStore persists the latest snapshot to one file, atomically: each Save
// encodes to a temp file in the same directory and renames it over the
// target, so a crash mid-write leaves the previous intact checkpoint.
type FileStore struct {
	path string
}

// NewFileStore returns a store writing to path.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Path returns the checkpoint file path.
func (f *FileStore) Path() string { return f.path }

// Save atomically replaces the checkpoint file and returns its size.
func (f *FileStore) Save(s *Snapshot) (int, error) {
	b, err := Encode(s)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	return len(b), nil
}

// Latest reads and decodes the checkpoint file ((nil, nil) when absent).
func (f *FileStore) Latest() (*Snapshot, error) {
	b, err := os.ReadFile(f.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", f.path, err)
	}
	return s, nil
}

// ReadFile loads one snapshot from a checkpoint file (for -restore/-replay).
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return s, nil
}
