package checkpoint

import (
	"reflect"
	"testing"
)

// FuzzDecode holds Decode to its contract: whatever the bytes — torn
// writes, bit rot, hostile gob streams — it returns an error rather than
// panicking, and anything it does accept passes validation and re-encodes
// to an equivalent snapshot (so a restore can never act on out-of-range
// state). The corpus seeds the interesting shapes: a full valid frame, a
// controller-less frame, and corrupted variants of both.
func FuzzDecode(f *testing.F) {
	full, err := Encode(sampleSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	plantOnly := sampleSnapshot()
	plantOnly.HasController = false
	plantOnly.Controller = ControllerState{}
	po, err := Encode(plantOnly)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(po)
	f.Add([]byte("SPCK"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)
	f.Add(full[:headerLen])

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Decode accepted a snapshot Validate rejects: %v", verr)
		}
		b2, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		s2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !reflect.DeepEqual(stripNaN(s), stripNaN(s2)) {
			t.Fatalf("decode/encode/decode diverged:\n%+v\n%+v", s, s2)
		}
	})
}

// stripNaN zeroes every NaN float in a copy of the snapshot:
// reflect.DeepEqual treats NaN != NaN, so a fuzz input carrying NaN in a
// slot where it is legal would fail the round-trip comparison spuriously
// even though gob preserves it bit-exactly. The cleaning writes through any
// shared slices, which is fine here: both snapshots are test-local decodes
// that get the same treatment before the comparison.
func stripNaN(s *Snapshot) Snapshot {
	c := *s
	cleanStructFloats(reflect.ValueOf(&c).Elem())
	return c
}

// cleanStructFloats recursively zeroes every NaN float64 reachable from v.
func cleanStructFloats(v reflect.Value) {
	switch v.Kind() {
	case reflect.Float64:
		if v.Float() != v.Float() && v.CanSet() {
			v.SetFloat(0)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			cleanStructFloats(v.Field(i))
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			cleanStructFloats(v.Index(i))
		}
	}
}
