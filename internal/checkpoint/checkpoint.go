// Package checkpoint implements crash-safe snapshots of the full control
// state (DESIGN.md §11): the breaker thermal accumulator, UPS state of
// charge, per-job batch progress, power-model parameters, measurement-guard
// history, MPC warm cache, hardening flags and noise-stream positions. The
// simulation engine serializes a snapshot every control period; after a
// controller crash the controller restores from the latest one and
// continues — bit-identically when the snapshot is fresh, through the
// fail-safe ladder when it is missing, stale or corrupt.
//
// Snapshots are versioned, checksummed and written atomically
// (temp + rename), so a crash during the write of checkpoint N leaves the
// intact checkpoint N−1 in place rather than a torn file.
package checkpoint

import (
	"fmt"
	"math"

	"sprintcon/internal/alloc"
	"sprintcon/internal/breaker"
	"sprintcon/internal/control"
	"sprintcon/internal/faults"
	"sprintcon/internal/link"
	"sprintcon/internal/rack"
	"sprintcon/internal/ups"
)

// Version is the snapshot schema version. Decoders reject snapshots from a
// different version: schema drift across binaries must fail loudly into the
// fail-safe path, not restore garbage.
const Version = 1

// Snapshot is one complete capture of a run's mutable state at a tick
// boundary (taken after the tick completed, so SimTimeS is the time of the
// next tick to execute).
type Snapshot struct {
	Version  int
	SimTimeS float64
	// Step is the index of the next engine step to execute.
	Step int64
	// PolicyName guards against restoring one policy's state into another.
	PolicyName string
	// ScenarioSum fingerprints the scenario configuration (FNV-64a over
	// its canonical JSON); restores reject snapshots from a different
	// scenario, whose plant the state would not describe.
	ScenarioSum uint64
	// HasController marks snapshots carrying controller state (policies
	// that do not support checkpointing still get plant snapshots, which
	// -restore can resume with a fresh policy start).
	HasController bool
	Controller    ControllerState
	Plant         PlantState
}

// ControllerState is the SprintCon controller's complete mutable state.
type ControllerState struct {
	// CapturedAtS is the simulation time the state was exported; the
	// restore path compares it against the restore time to detect stale
	// snapshots (clock skew).
	CapturedAtS float64

	// Supervisor state.
	Mode           int
	EverNearTrip   bool
	EverDepleted   bool
	FailSafeUntilS float64

	// Control-period state.
	LastCtlS    float64
	CurPCbW     float64 // may be +Inf (uncontrolled short bursts)
	CurPBatchW  float64
	CmdFreqsGHz []float64

	// Power model and per-loop controller state.
	KModel      float64
	PrevPfbW    float64
	LastMoveSum float64
	HavePrev    bool
	PIIntegral  float64
	UPSTrimW    float64
	HasRLS      bool
	RLS         control.RLSState
	Alloc       alloc.State
	MPCWarm     control.MPCWarmState

	// Hardening state (absent for the unhardened ablation).
	HasHarden bool
	Harden    HardenState

	// Invariant-supervisor breach counters, carried across restarts so a
	// resumed run reports cumulative totals.
	InvCBMargin   int
	InvSoCFloor   int
	InvFreqBounds int
	InvDeadline   int

	// Control-link client state (linked cluster runs only). A restore
	// without it — e.g. a snapshot taken before the rack was linked —
	// drops the lease and re-enters degraded mode until the coordinator
	// re-grants, the safe direction.
	HasLink bool
	Link    link.ClientState
}

// HardenState is the hardened controller's watchdog state.
type HardenState struct {
	Guard       control.GuardState
	Degraded    bool
	UPSLastReqW float64
	UPSFailTick int
	UPSFailed   bool
	LastApplied []float64
	StuckCount  []int
	Locked      []bool
	ProbeLeft   []int
}

// PlantState is the physical plant and engine-accounting state, used by
// full-process resume (-restore) and replay. A mid-run controller restart
// restores only the Controller part — the plant kept running while the
// controller was down.
type PlantState struct {
	Breaker     breaker.State
	UPS         ups.State
	Rack        rack.State
	HasInjector bool
	Injector    faults.InjectorState
	Engine      EngineState
}

// EngineState is the simulation engine's accumulator state at the snapshot
// boundary.
type EngineState struct {
	Outage          bool
	OutageS         float64
	CBTrips         int
	ControlledTicks int
	OverTicks       int
	TrackErrSum     float64
	// EventSeq is the number of events logged so far; a resumed run's log
	// continues sequence numbers from here so merged logs stay ordered.
	EventSeq int
	// Snap is the measurement snapshot the next tick's policy will see.
	Snap SnapState
}

// SnapState mirrors the engine's per-tick measurement snapshot (the sim
// package imports this one, so the type is duplicated here).
type SnapState struct {
	NowS              float64
	DtS               float64
	MeasuredTotalW    float64
	CBPowerW          float64
	UPSPowerW         float64
	CBThermalFraction float64
	CBNearTrip        bool
	CBTripped         bool
	UPSSoC            float64
	UPSDepleted       bool
	Outage            bool
}

// Validate reports structural errors in a decoded snapshot. It checks the
// fields the checkpoint layer owns; each subsystem's RestoreState performs
// the deep range checks against its live configuration.
func (s *Snapshot) Validate() error {
	if s == nil {
		return fmt.Errorf("checkpoint: nil snapshot")
	}
	if s.Version != Version {
		return fmt.Errorf("checkpoint: snapshot version %d, this binary speaks %d", s.Version, Version)
	}
	if math.IsNaN(s.SimTimeS) || math.IsInf(s.SimTimeS, 0) || s.SimTimeS < 0 {
		return fmt.Errorf("checkpoint: snapshot time %g must be finite and non-negative", s.SimTimeS)
	}
	if s.Step < 0 {
		return fmt.Errorf("checkpoint: snapshot step %d is negative", s.Step)
	}
	e := &s.Plant.Engine
	switch {
	case e.OutageS < 0 || math.IsNaN(e.OutageS):
		return fmt.Errorf("checkpoint: snapshot outage accumulator %g invalid", e.OutageS)
	case e.CBTrips < 0 || e.ControlledTicks < 0 || e.OverTicks < 0 || e.EventSeq < 0:
		return fmt.Errorf("checkpoint: snapshot engine counters negative")
	case e.OverTicks > e.ControlledTicks:
		return fmt.Errorf("checkpoint: snapshot over-budget ticks %d exceed controlled ticks %d",
			e.OverTicks, e.ControlledTicks)
	case math.IsNaN(e.TrackErrSum) || e.TrackErrSum < 0:
		return fmt.Errorf("checkpoint: snapshot tracking-error accumulator %g invalid", e.TrackErrSum)
	}
	return nil
}
