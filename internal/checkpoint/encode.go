package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
)

// Wire format: a fixed 16-byte header followed by a gob-encoded Snapshot.
//
//	bytes 0..3   magic "SPCK"
//	bytes 4..7   format version, big-endian uint32
//	bytes 8..11  payload length, big-endian uint32
//	bytes 12..15 CRC-32 (IEEE) of the payload
//
// gob rather than JSON because controller state legitimately contains
// non-finite floats (an uncontrolled CB budget is +Inf, the pre-first-tick
// control timestamp −Inf) and because gob round-trips float64 bit-exactly —
// a requirement for bit-identical crash/restore continuation.
const (
	magic      = "SPCK"
	headerLen  = 16
	maxPayload = 64 << 20 // a corrupt length field must not drive a 4 GiB allocation
)

// Encode serializes a snapshot into the framed wire format.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("checkpoint: encode nil snapshot")
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	var hdr [12]byte
	buf.Write(hdr[:]) // reserved for version/length/CRC, patched below
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	out := buf.Bytes()
	payload := out[headerLen:]
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("checkpoint: snapshot payload %d bytes exceeds %d", len(payload), maxPayload)
	}
	binary.BigEndian.PutUint32(out[4:8], Version)
	binary.BigEndian.PutUint32(out[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[12:16], crc32.ChecksumIEEE(payload))
	return out, nil
}

// Decode parses and validates a framed snapshot. Any corruption — bad
// magic, version skew, truncation, checksum mismatch, malformed gob,
// out-of-range fields — returns an error; Decode never panics, whatever the
// input (the fuzz target holds it to that).
func Decode(b []byte) (s *Snapshot, err error) {
	// gob's decoder is defensive, but a decoder panic on hostile input
	// must surface as an error: the caller's response to a corrupt
	// checkpoint is the fail-safe path, not a crash loop.
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("checkpoint: decode panic: %v", r)
		}
	}()

	if len(b) < headerLen {
		return nil, fmt.Errorf("checkpoint: %d bytes is shorter than the %d-byte header", len(b), headerLen)
	}
	if string(b[:4]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", b[:4])
	}
	if v := binary.BigEndian.Uint32(b[4:8]); v != Version {
		return nil, fmt.Errorf("checkpoint: format version %d, this binary speaks %d", v, Version)
	}
	n := binary.BigEndian.Uint32(b[8:12])
	if n > maxPayload {
		return nil, fmt.Errorf("checkpoint: payload length %d exceeds %d", n, maxPayload)
	}
	payload := b[headerLen:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("checkpoint: payload is %d bytes, header says %d", len(payload), n)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[12:16]); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (got %08x, want %08x)", got, want)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return &snap, nil
}
